package burtree_test

import (
	"fmt"
	"log"

	"burtree"
)

// The basic lifecycle: open an index with the generalized bottom-up
// strategy, insert, move, query.
func Example() {
	idx, err := burtree.Open(burtree.Options{Strategy: burtree.GeneralizedBottomUp})
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.Insert(7, burtree.Point{X: 0.30, Y: 0.60}); err != nil {
		log.Fatal(err)
	}
	if err := idx.Update(7, burtree.Point{X: 0.31, Y: 0.61}); err != nil {
		log.Fatal(err)
	}
	ids, err := idx.Search(burtree.NewRect(0.3, 0.6, 0.4, 0.7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [7]
}

// Update-heavy feeds (fleets, sensor swarms) should buffer reports and
// apply them through UpdateBatch: repeated moves of the same object are
// coalesced to the final position, and the surviving changes are
// grouped by target leaf so each group costs one leaf read and write
// instead of one per object.
func Example_batchUpdate() {
	idx, err := burtree.Open(burtree.Options{Strategy: burtree.GeneralizedBottomUp})
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		idx.Insert(i, burtree.Point{X: float64(i) / 100, Y: 0.5})
	}
	res, err := idx.UpdateBatch([]burtree.Change{
		{ID: 10, To: burtree.Point{X: 0.101, Y: 0.501}},
		{ID: 20, To: burtree.Point{X: 0.201, Y: 0.501}},
		{ID: 10, To: burtree.Point{X: 0.102, Y: 0.502}}, // supersedes the first move
	})
	if err != nil {
		log.Fatal(err)
	}
	p, _ := idx.Location(10)
	fmt.Printf("applied=%d coalesced=%d object 10 at (%.3f, %.3f)\n",
		res.Applied, res.Coalesced, p.X, p.Y)
	// Output: applied=2 coalesced=1 object 10 at (0.102, 0.502)
}

// Nearest-neighbour queries use the standard best-first traversal.
func ExampleIndex_Nearest() {
	idx, err := burtree.Open(burtree.Options{Strategy: burtree.TopDown})
	if err != nil {
		log.Fatal(err)
	}
	idx.Insert(1, burtree.Point{X: 0.1, Y: 0.1})
	idx.Insert(2, burtree.Point{X: 0.2, Y: 0.2})
	idx.Insert(3, burtree.Point{X: 0.9, Y: 0.9})
	nb, err := idx.Nearest(burtree.Point{X: 0.15, Y: 0.15}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nb {
		fmt.Println(n.ID)
	}
	// Output:
	// 1
	// 2
}

// Stats expose the paper's disk-access accounting and the breakdown of
// how bottom-up updates were resolved.
func ExampleIndex_Stats() {
	idx, err := burtree.Open(burtree.Options{Strategy: burtree.GeneralizedBottomUp})
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		idx.Insert(i, burtree.Point{X: float64(i) / 100, Y: 0.5})
	}
	idx.ResetStats()
	// A tiny move resolves inside the leaf: one hash read, one leaf
	// read, one leaf write.
	if err := idx.Update(50, burtree.Point{X: 0.501, Y: 0.5}); err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("reads=%d writes=%d inLeaf=%d\n", st.DiskReads, st.DiskWrites, st.Outcomes.InLeaf)
	// Output: reads=2 writes=1 inLeaf=1
}
