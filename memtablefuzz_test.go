package burtree

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"burtree/internal/geom"
)

// FuzzMemtableMerge decodes arbitrary bytes into an operation sequence
// against a memtable-enabled GBU index with a tiny delta-tier budget,
// so size-triggered merge-downs trip constantly — and one opcode
// forces a drain outright, landing merges at adversarial points in the
// sequence. After every operation the complete invariants (including
// the memtable overlay accounting) are validated and the full object
// set observed through Search is compared against a map oracle, so any
// divergence between the buffered deltas and the tree is caught at the
// operation that introduced it.
//
// Encoding: each operation consumes 4 bytes [op, id, x, y]:
//
//	op % 8 == 0,7  insert id at (x, y)
//	op % 8 == 1    update id to (x, y)
//	op % 8 == 2    delete id
//	op % 8 == 3    window query centered near (x, y), side from id byte
//	op % 8 == 4    k-NN query at (x, y), k = id%8 + 1
//	op % 8 == 5    UpdateBatch of the next id%4+1 chunks (as moves)
//	op % 8 == 6    force a merge-down of the delta tier
//
// ids come from a small space (id % 48) so duplicate inserts, updates
// of deleted objects and tombstone revivals happen constantly.
func FuzzMemtableMerge(f *testing.F) {
	// Churn with forced drains between mutations.
	f.Add([]byte{0, 1, 10, 20, 0, 2, 30, 40, 1, 1, 200, 200, 6, 0, 0, 0, 2, 1, 0, 0, 6, 0, 0, 0})
	// Batch absorb then queries.
	f.Add([]byte{0, 1, 1, 1, 0, 2, 2, 2, 5, 3, 128, 128, 1, 2, 3, 4, 3, 9, 9, 9, 4, 3, 50, 50})
	// Delete/re-insert cycling (tombstone revival) across a drain.
	f.Add([]byte{0, 5, 100, 100, 6, 0, 0, 0, 2, 5, 0, 0, 0, 5, 60, 60, 2, 5, 0, 0, 6, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 160
		idx, err := Open(Options{
			Strategy:        GeneralizedBottomUp,
			PageSize:        256, // tiny fanout: structural churn on few objects
			BufferPages:     4,
			ExpectedObjects: 64,
			Memtable:        Memtable{Enabled: true, MaxObjects: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[uint64]Point)

		decodePoint := func(xb, yb byte) Point {
			return Point{
				X: float64(xb)/255*1.3 - 0.15,
				Y: float64(yb)/255*1.3 - 0.15,
			}
		}
		everything := NewRect(-1, -1, 2, 2) // covers the whole coordinate domain

		ops := 0
		for i := 0; i+4 <= len(data) && ops < maxOps; ops++ {
			op, idb, xb, yb := data[i]%8, data[i+1], data[i+2], data[i+3]
			i += 4
			id := uint64(idb % 48)
			p := decodePoint(xb, yb)
			switch op {
			case 0, 7:
				err := idx.Insert(id, p)
				if _, exists := oracle[id]; exists {
					if !errors.Is(err, ErrDuplicateObject) {
						t.Fatalf("op %d: duplicate insert %d: got %v, want ErrDuplicateObject", ops, id, err)
					}
				} else {
					if err != nil {
						t.Fatalf("op %d: insert %d at %v: %v", ops, id, p, err)
					}
					oracle[id] = p
				}
			case 1:
				err := idx.Update(id, p)
				if _, exists := oracle[id]; exists {
					if err != nil {
						t.Fatalf("op %d: update %d to %v: %v", ops, id, p, err)
					}
					oracle[id] = p
				} else if !errors.Is(err, ErrUnknownObject) {
					t.Fatalf("op %d: update of unknown %d: got %v, want ErrUnknownObject", ops, id, err)
				}
			case 2:
				err := idx.Delete(id)
				if _, exists := oracle[id]; exists {
					if err != nil {
						t.Fatalf("op %d: delete %d: %v", ops, id, err)
					}
					delete(oracle, id)
				} else if !errors.Is(err, ErrUnknownObject) {
					t.Fatalf("op %d: delete of unknown %d: got %v, want ErrUnknownObject", ops, id, err)
				}
			case 3:
				c := decodePoint(xb, yb)
				side := float64(idb) / 255 * 0.8
				q := NewRect(c.X-side/2, c.Y-side/2, c.X+side/2, c.Y+side/2)
				got, err := idx.Search(q)
				if err != nil {
					t.Fatalf("op %d: search %v: %v", ops, q, err)
				}
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				var want []uint64
				for oid, op := range oracle {
					if q.ContainsPoint(op) {
						want = append(want, oid)
					}
				}
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("op %d: window %v: got %v, oracle %v", ops, q, got, want)
				}
			case 4:
				k := int(idb%8) + 1
				ns, err := idx.Nearest(p, k)
				if err != nil {
					t.Fatalf("op %d: nearest %v k=%d: %v", ops, p, k, err)
				}
				var dists []float64
				for _, op := range oracle {
					dists = append(dists, geom.Dist(p, op))
				}
				sort.Float64s(dists)
				if len(dists) > k {
					dists = dists[:k]
				}
				if len(ns) != len(dists) {
					t.Fatalf("op %d: nearest %v k=%d: %d results, oracle %d", ops, p, k, len(ns), len(dists))
				}
				for j := range ns {
					if ns[j].Dist != dists[j] {
						t.Fatalf("op %d: nearest %v k=%d: dist[%d] = %g, oracle %g", ops, p, k, j, ns[j].Dist, dists[j])
					}
				}
			case 5:
				nc := int(idb%4) + 1
				var batch []Change
				allKnown := true
				for j := 0; j < nc && i+4 <= len(data); j++ {
					bid := uint64(data[i+1] % 48)
					bp := decodePoint(data[i+2], data[i+3])
					i += 4
					batch = append(batch, Change{ID: bid, To: bp})
					if _, exists := oracle[bid]; !exists {
						allKnown = false
					}
				}
				if len(batch) == 0 {
					continue
				}
				res, err := idx.UpdateBatch(batch)
				if allKnown {
					if err != nil {
						t.Fatalf("op %d: batch %v: %v", ops, batch, err)
					}
					if res.Absorbed == 0 {
						t.Fatalf("op %d: batch %v: absorbed 0 with memtable enabled", ops, batch)
					}
					for _, c := range batch {
						oracle[c.ID] = c.To
					}
				} else if !errors.Is(err, ErrUnknownObject) {
					t.Fatalf("op %d: batch with unknown id: got %v, want ErrUnknownObject", ops, err)
				}
			case 6:
				if err := idx.drainMemtable(); err != nil {
					t.Fatalf("op %d: forced drain: %v", ops, err)
				}
			}
			if err := idx.CheckInvariants(); err != nil {
				t.Fatalf("op %d: invariants: %v", ops, err)
			}
			if idx.Len() != len(oracle) {
				t.Fatalf("op %d: Len %d, oracle %d", ops, idx.Len(), len(oracle))
			}
			// Oracle equality after every op: the merged view (overlay
			// plus tree) must hold exactly the oracle's object set.
			got, err := idx.Search(everything)
			if err != nil {
				t.Fatalf("op %d: full sweep: %v", ops, err)
			}
			if len(got) != len(oracle) {
				t.Fatalf("op %d: full sweep saw %d objects, oracle %d", ops, len(got), len(oracle))
			}
			for _, oid := range got {
				if _, ok := oracle[oid]; !ok {
					t.Fatalf("op %d: full sweep surfaced unknown id %d", ops, oid)
				}
			}
			for oid, want := range oracle {
				pos, ok := idx.Location(oid)
				if !ok || pos != want {
					t.Fatalf("op %d: Location(%d) = %v,%v, oracle %v", ops, oid, pos, ok, want)
				}
			}
		}
	})
}
