package burtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Race stress for the memtable tier: concurrent writers (single
// updates and batches on disjoint id ranges), readers (window, k-NN
// and count queries) and a checkpointer all run against a durable,
// memtable-enabled index while the background merger drains — the test
// exists to be run under -race, and finishes with an invariant check
// plus an exact per-object position check against each writer's last
// write.

// raceFrontEnd is the surface the stress exercises; both concurrent
// front-ends implement it.
type raceFrontEnd interface {
	BulkInsert(ids []uint64, pts []Point, method PackMethod) error
	Update(id uint64, p Point) error
	UpdateBatch(changes []Change) (BatchResult, error)
	Search(q Rect) ([]uint64, error)
	Count(q Rect) (int, error)
	Nearest(p Point, k int) ([]Neighbor, error)
	Checkpoint() error
	CheckInvariants() error
	Location(id uint64) (Point, bool)
	Len() int
	Close() error
}

func memtableStress(t *testing.T, idx raceFrontEnd) {
	const (
		numObjects = 2000
		numWriters = 8
	)
	iters := 600
	if testing.Short() {
		iters = 150
	}

	ids := make([]uint64, numObjects)
	pts := make([]Point, numObjects)
	seedRng := rand.New(rand.NewSource(7))
	for i := range ids {
		ids[i] = uint64(i)
		pts[i] = Point{X: seedRng.Float64(), Y: seedRng.Float64()}
	}
	if err := idx.BulkInsert(ids, pts, PackSTR); err != nil {
		t.Fatal(err)
	}

	var writers, aux sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, numWriters+4)

	// Writers: each owns a disjoint id range, mixing single updates
	// with batches; the final position of every id is recorded for the
	// post-run exactness check.
	finals := make([]map[uint64]Point, numWriters)
	per := numObjects / numWriters
	for w := 0; w < numWriters; w++ {
		w := w
		finals[w] = make(map[uint64]Point, per)
		lo := uint64(w * per)
		writers.Add(1)
		go func() {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				if rng.Intn(4) == 0 {
					n := rng.Intn(8) + 2
					batch := make([]Change, n)
					for j := range batch {
						id := lo + uint64(rng.Intn(per))
						p := Point{X: rng.Float64(), Y: rng.Float64()}
						batch[j] = Change{ID: id, To: p}
					}
					if _, err := idx.UpdateBatch(batch); err != nil {
						errs <- fmt.Errorf("writer %d batch: %w", w, err)
						return
					}
					for _, c := range batch {
						finals[w][c.ID] = c.To
					}
				} else {
					id := lo + uint64(rng.Intn(per))
					p := Point{X: rng.Float64(), Y: rng.Float64()}
					if err := idx.Update(id, p); err != nil {
						errs <- fmt.Errorf("writer %d update: %w", w, err)
						return
					}
					finals[w][id] = p
				}
			}
		}()
	}

	// Readers: window scans, counts and k-NN against the moving state;
	// only liveness and error-freedom are checked here (exactness is
	// the replay suite's job; under concurrent writes there is no
	// stable oracle).
	for r := 0; r < 2; r++ {
		r := r
		aux.Add(1)
		go func() {
			defer aux.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				c := Point{X: rng.Float64(), Y: rng.Float64()}
				q := NewRect(c.X-0.1, c.Y-0.1, c.X+0.1, c.Y+0.1)
				if _, err := idx.Search(q); err != nil {
					errs <- fmt.Errorf("reader %d search: %w", r, err)
					return
				}
				if _, err := idx.Count(q); err != nil {
					errs <- fmt.Errorf("reader %d count: %w", r, err)
					return
				}
				if _, err := idx.Nearest(c, 5); err != nil {
					errs <- fmt.Errorf("reader %d nearest: %w", r, err)
					return
				}
			}
		}()
	}

	// Checkpointer: drains the memtable and truncates the log under
	// the exclusive gate, racing the background merger and the writers.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			if err := idx.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()

	// Wait for the writers, then stop the readers and checkpointer.
	writerDone := make(chan struct{})
	go func() {
		writers.Wait()
		close(writerDone)
	}()
	select {
	case err := <-errs:
		close(stop)
		t.Fatal(err)
	case <-time.After(2 * time.Minute):
		close(stop)
		t.Fatal("stress did not finish in time")
	case <-writerDone:
	}
	close(stop)
	aux.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if err := idx.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stress: %v", err)
	}
	if idx.Len() != numObjects {
		t.Fatalf("Len = %d, want %d", idx.Len(), numObjects)
	}
	// Writers own disjoint ranges, so every id's final position is the
	// owner's last write — whether it is still buffered, mid-merge or
	// already in the tree.
	for w := range finals {
		for id, want := range finals[w] {
			got, ok := idx.Location(id)
			if !ok || got != want {
				t.Fatalf("object %d: got %v,%v want %v", id, got, ok, want)
			}
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("close after stress: %v", err)
	}
}

func stressOpts(dir string) Options {
	return Options{
		Strategy:        GeneralizedBottomUp,
		BufferPages:     64,
		ExpectedObjects: 2000,
		Durability:      Durability{Mode: DurabilityBatch, Dir: dir},
		Memtable: Memtable{
			Enabled:          true,
			MaxObjects:       256,
			MaxAge:           2 * time.Millisecond,
			MergeParallelism: 2,
		},
	}
}

func TestMemtableRaceConcurrent(t *testing.T) {
	idx, err := OpenConcurrent(stressOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	memtableStress(t, idx)
}

func TestMemtableRaceSharded(t *testing.T) {
	idx, err := OpenSharded(stressOpts(t.TempDir()), ShardOptions{Shards: 4, Partition: ShardGrid})
	if err != nil {
		t.Fatal(err)
	}
	memtableStress(t, idx)
}
