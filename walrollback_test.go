package burtree

import (
	"errors"
	"testing"

	"burtree/internal/wal"
)

// This file pins the single-index and concurrent-index analogues of the
// sharded WAL-failure rollbacks (shardedbugfix_test.go): an operation
// whose durable append fails must leave no acked-but-unlogged state in
// the tree, the object table or the memtable delta tier — recovery
// would silently disagree with what the index still serves. The gaps
// were found by the errflow analyzer (internal/lint/analyzers/errflow)
// and fixed together with its introduction.

// rollbackIndex is the surface the rollback tests need from both
// front-ends.
type rollbackIndex interface {
	Insert(id uint64, p Point) error
	Update(id uint64, p Point) error
	UpdateBatch(changes []Change) (BatchResult, error)
	Delete(id uint64) error
	Len() int
	Location(id uint64) (Point, bool)
	SearchFunc(q Rect, visit func(uint64, Point) bool) error
	Close() error
}

// rollbackFlavors enumerates the four code paths with distinct
// rollback logic: each front-end with the tree path and with the
// memtable delta tier absorbing writes.
var rollbackFlavors = []struct {
	name     string
	memtable bool
	open     func(t *testing.T, opts Options) rollbackIndex
}{
	{"Index", false, openIndexT},
	{"IndexMemtable", true, openIndexT},
	{"ConcurrentIndex", false, openConcurrentT},
	{"ConcurrentIndexMemtable", true, openConcurrentT},
}

func openIndexT(t *testing.T, opts Options) rollbackIndex {
	t.Helper()
	x, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func openConcurrentT(t *testing.T, opts Options) rollbackIndex {
	t.Helper()
	x, err := OpenConcurrent(opts)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// failIndexWAL force-closes the index's write-ahead log so the next
// append fails with wal.ErrClosed while the tree keeps working — the
// same observable state as a full log device.
func failIndexWAL(t *testing.T, idx rollbackIndex) {
	t.Helper()
	var log *wal.Log
	switch v := idx.(type) {
	case *Index:
		log = v.wal
	case *ConcurrentIndex:
		log = v.wal
	default:
		t.Fatalf("unknown index type %T", idx)
	}
	if log == nil {
		t.Fatal("index is not durable")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// expectIndexObjects asserts the queryable state: exactly the given
// objects, each findable at its position by Location and search.
func expectIndexObjects(t *testing.T, idx rollbackIndex, want map[uint64]Point) {
	t.Helper()
	if got := idx.Len(); got != len(want) {
		t.Fatalf("Len() = %d, want %d", got, len(want))
	}
	got := objectsOf(t, idx)
	if len(got) != len(want) {
		t.Fatalf("search found %d objects, want %d: %v", len(got), len(want), got)
	}
	for id, p := range want {
		if gp, ok := got[id]; !ok || gp != p {
			t.Fatalf("object %d: search sees %v (present %v), want %v", id, gp, ok, p)
		}
		if lp, ok := idx.Location(id); !ok || lp != p {
			t.Fatalf("object %d: Location sees %v (present %v), want %v", id, lp, ok, p)
		}
	}
}

func rollbackOpts(t *testing.T, memtable bool) Options {
	opts := durableOpts(t.TempDir(), DurabilityBatch)
	if memtable {
		opts.Memtable = Memtable{Enabled: true}
	}
	return opts
}

// expectWALClosed asserts the operation surfaced the append failure.
func expectWALClosed(t *testing.T, op string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s with failed WAL returned nil", op)
	}
	if !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("%s error %v does not wrap wal.ErrClosed", op, err)
	}
}

// TestIndexWALFailureRollsBackInsert checks that an insert whose
// durable append fails is fully undone in every front-end flavor.
func TestIndexWALFailureRollsBackInsert(t *testing.T) {
	for _, f := range rollbackFlavors {
		t.Run(f.name, func(t *testing.T) {
			x := f.open(t, rollbackOpts(t, f.memtable))
			defer x.Close() // double-closes the failed log; the state checks are the test

			keep := Point{X: 0.2, Y: 0.2}
			if err := x.Insert(1, keep); err != nil {
				t.Fatal(err)
			}
			failIndexWAL(t, x)

			expectWALClosed(t, "insert", x.Insert(2, Point{X: 0.6, Y: 0.6}))
			expectIndexObjects(t, x, map[uint64]Point{1: keep})
		})
	}
}

// TestIndexWALFailureRollsBackUpdate checks that the object stays at
// its old position after a failed append.
func TestIndexWALFailureRollsBackUpdate(t *testing.T) {
	for _, f := range rollbackFlavors {
		t.Run(f.name, func(t *testing.T) {
			x := f.open(t, rollbackOpts(t, f.memtable))
			defer x.Close()

			old := Point{X: 0.2, Y: 0.2}
			if err := x.Insert(1, old); err != nil {
				t.Fatal(err)
			}
			failIndexWAL(t, x)

			expectWALClosed(t, "update", x.Update(1, Point{X: 0.8, Y: 0.8}))
			expectIndexObjects(t, x, map[uint64]Point{1: old})
		})
	}
}

// TestIndexWALFailureRollsBackDelete checks that the object is
// resurrected at its old position after a failed append.
func TestIndexWALFailureRollsBackDelete(t *testing.T) {
	for _, f := range rollbackFlavors {
		t.Run(f.name, func(t *testing.T) {
			x := f.open(t, rollbackOpts(t, f.memtable))
			defer x.Close()

			p := Point{X: 0.4, Y: 0.4}
			if err := x.Insert(1, p); err != nil {
				t.Fatal(err)
			}
			failIndexWAL(t, x)

			expectWALClosed(t, "delete", x.Delete(1))
			expectIndexObjects(t, x, map[uint64]Point{1: p})
		})
	}
}

// TestIndexWALFailureRollsBackBatch checks the memtable absorb path's
// batch atomicity: a batch whose single log record fails must unwind
// every absorbed delta and report zero applied changes.
func TestIndexWALFailureRollsBackBatch(t *testing.T) {
	for _, f := range rollbackFlavors {
		if !f.memtable {
			continue // the tree path acks per-op and logs the applied prefix
		}
		t.Run(f.name, func(t *testing.T) {
			x := f.open(t, rollbackOpts(t, f.memtable))
			defer x.Close()

			want := map[uint64]Point{
				1: {X: 0.1, Y: 0.1},
				2: {X: 0.7, Y: 0.3},
			}
			for id, p := range want {
				if err := x.Insert(id, p); err != nil {
					t.Fatal(err)
				}
			}
			failIndexWAL(t, x)

			res, err := x.UpdateBatch([]Change{
				{ID: 1, To: Point{X: 0.5, Y: 0.5}},
				{ID: 2, To: Point{X: 0.6, Y: 0.6}},
			})
			expectWALClosed(t, "batch update", err)
			if res.Applied != 0 || res.Absorbed != 0 {
				t.Fatalf("failed batch reports Applied=%d Absorbed=%d, want 0/0", res.Applied, res.Absorbed)
			}
			expectIndexObjects(t, x, want)
		})
	}
}
