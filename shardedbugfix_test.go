package burtree

import (
	"errors"
	"math"
	"sort"
	"testing"

	"burtree/internal/wal"
)

// This file pins the cross-shard consistency fixes with regression
// tests that fail on the pre-fix code:
//
//  1. A WAL append that fails after the shard tree applied the
//     mutation must roll the mutation back — an acked-but-unlogged
//     object would silently vanish on recovery.
//  2. A scatter racing a cross-shard move can find the same id in two
//     shards; the gather must de-duplicate (Search, SearchFunc, Count,
//     Nearest).
//  3. Nearest must not prune shards while its result set is still
//     under-filled, even when every object lives in one distant shard.

// failShardWAL force-closes shard s's write-ahead log so the next
// append fails with wal.ErrClosed while the shard trees keep working —
// the same observable state as a full log device.
func failShardWAL(t *testing.T, x *ShardedIndex, s int) {
	t.Helper()
	if x.wals == nil {
		t.Fatal("index is not durable")
	}
	if err := x.wals[s].Close(); err != nil {
		t.Fatal(err)
	}
}

// expectObjects asserts the index's queryable state: exactly the given
// objects, each findable at its position by Location and Search.
func expectObjects(t *testing.T, x *ShardedIndex, want map[uint64]Point) {
	t.Helper()
	if got := x.Len(); got != len(want) {
		t.Fatalf("Len() = %d, want %d", got, len(want))
	}
	got := objectsOf(t, x)
	if len(got) != len(want) {
		t.Fatalf("search found %d objects, want %d", len(got), len(want))
	}
	for id, p := range want {
		if gp, ok := got[id]; !ok || gp != p {
			t.Fatalf("object %d: search sees %v (present %v), want %v", id, gp, ok, p)
		}
		if lp, ok := x.Location(id); !ok || lp != p {
			t.Fatalf("object %d: Location sees %v (present %v), want %v", id, lp, ok, p)
		}
	}
}

// TestWALFailureRollsBackInsert checks that an insert whose durable
// append fails is fully undone: the object is in neither the shard tree
// nor the object table.
func TestWALFailureRollsBackInsert(t *testing.T) {
	x, err := OpenSharded(durableOpts(t.TempDir(), DurabilityBatch), ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close() // double-closes the failed log; the state checks above are the test

	if err := x.Insert(1, Point{X: 0.2, Y: 0.2}); err != nil {
		t.Fatal(err)
	}
	failShardWAL(t, x, 0)

	err = x.Insert(2, Point{X: 0.6, Y: 0.6})
	if err == nil {
		t.Fatal("insert with failed WAL returned nil")
	}
	if !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("insert error %v does not wrap wal.ErrClosed", err)
	}
	expectObjects(t, x, map[uint64]Point{1: {X: 0.2, Y: 0.2}})
}

// TestWALFailureRollsBackUpdate checks the in-shard move rollback: the
// object must remain at its old position after a failed append.
func TestWALFailureRollsBackUpdate(t *testing.T) {
	x, err := OpenSharded(durableOpts(t.TempDir(), DurabilityBatch), ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	old := Point{X: 0.2, Y: 0.2}
	if err := x.Insert(1, old); err != nil {
		t.Fatal(err)
	}
	failShardWAL(t, x, 0)

	err = x.Update(1, Point{X: 0.8, Y: 0.8})
	if err == nil {
		t.Fatal("update with failed WAL returned nil")
	}
	if !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("update error %v does not wrap wal.ErrClosed", err)
	}
	expectObjects(t, x, map[uint64]Point{1: old})
}

// TestWALFailureRollsBackCrossShardUpdate checks the cross-shard move
// rollback: the delete in the source shard and the insert in the
// destination shard must both be undone when the destination's log
// append fails.
func TestWALFailureRollsBackCrossShardUpdate(t *testing.T) {
	x, err := OpenSharded(durableOpts(t.TempDir(), DurabilityBatch), ShardOptions{Shards: 4, Partition: ShardGrid})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	// 2×2 grid: (0.1,0.1) and (0.9,0.9) land in different shards.
	old := Point{X: 0.1, Y: 0.1}
	np := Point{X: 0.9, Y: 0.9}
	src := x.router.ShardOf(old)
	dst := x.router.ShardOf(np)
	if src == dst {
		t.Fatalf("setup: src %d == dst %d, points do not cross shards", src, dst)
	}
	if err := x.Insert(1, old); err != nil {
		t.Fatal(err)
	}
	failShardWAL(t, x, dst) // the move logs at its destination

	err = x.Update(1, np)
	if err == nil {
		t.Fatal("cross-shard update with failed WAL returned nil")
	}
	if !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("update error %v does not wrap wal.ErrClosed", err)
	}
	expectObjects(t, x, map[uint64]Point{1: old})
	// The object must be back in the source shard's tree, not the
	// destination's.
	if n := x.shards[src].Len(); n != 1 {
		t.Fatalf("source shard holds %d objects, want 1", n)
	}
	if n := x.shards[dst].Len(); n != 0 {
		t.Fatalf("destination shard holds %d objects, want 0", n)
	}
}

// TestWALFailureRollsBackDelete checks the delete rollback: the object
// must be re-inserted at its old position after a failed append.
func TestWALFailureRollsBackDelete(t *testing.T) {
	x, err := OpenSharded(durableOpts(t.TempDir(), DurabilityBatch), ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	p := Point{X: 0.4, Y: 0.4}
	if err := x.Insert(1, p); err != nil {
		t.Fatal(err)
	}
	failShardWAL(t, x, 0)

	err = x.Delete(1)
	if err == nil {
		t.Fatal("delete with failed WAL returned nil")
	}
	if !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("delete error %v does not wrap wal.ErrClosed", err)
	}
	expectObjects(t, x, map[uint64]Point{1: p})
}

// plantDuplicate bypasses routing and inserts the same id into two
// shard trees directly — the transient state a scatter can observe
// while racing a cross-shard move (insert into the destination applied,
// delete from the source not yet visible).
func plantDuplicate(t *testing.T, x *ShardedIndex, id uint64, a, b int, pa, pb Point) {
	t.Helper()
	if err := x.shards[a].Insert(id, pa); err != nil {
		t.Fatal(err)
	}
	if err := x.shards[b].Insert(id, pb); err != nil {
		t.Fatal(err)
	}
	x.mu.Lock()
	x.objects[id] = pb
	x.mu.Unlock()
}

// TestScatterDedup pins the gather de-duplication: with the same id
// present in two shards (the racing-reader anomaly), Search, SearchFunc,
// Count and Nearest must each report the object exactly once.
func TestScatterDedup(t *testing.T) {
	x := openShardedTest(t, GeneralizedBottomUp, ShardOptions{Shards: 4, Partition: ShardGrid})
	defer x.Close()

	// A normal object in each quadrant, then one id planted in two shards.
	if err := x.Insert(1, Point{X: 0.1, Y: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(2, Point{X: 0.9, Y: 0.9}); err != nil {
		t.Fatal(err)
	}
	pa := Point{X: 0.2, Y: 0.2}
	pb := Point{X: 0.8, Y: 0.2}
	a, b := x.router.ShardOf(pa), x.router.ShardOf(pb)
	if a == b {
		t.Fatalf("setup: both copies route to shard %d", a)
	}
	plantDuplicate(t, x, 42, a, b, pa, pb)

	whole := NewRect(0, 0, 1, 1)

	got, err := x.Search(whole)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]int)
	for _, id := range got {
		seen[id]++
	}
	if seen[42] != 1 {
		t.Fatalf("Search returned id 42 %d times, want once (results %v)", seen[42], got)
	}
	if len(got) != 3 {
		t.Fatalf("Search returned %d ids, want 3: %v", len(got), got)
	}

	visits := 0
	err = x.SearchFunc(whole, func(id uint64, p Point) bool {
		if id == 42 {
			visits++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 1 {
		t.Fatalf("SearchFunc visited id 42 %d times, want once", visits)
	}

	n, err := x.Count(whole)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}

	// Nearest from beside copy A: id 42 appears once, at its nearest
	// copy's distance.
	q := Point{X: 0.21, Y: 0.21}
	ns, err := x.Nearest(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, nb := range ns {
		if nb.ID == 42 {
			hits++
			wantDist := math.Hypot(q.X-pa.X, q.Y-pa.Y)
			if math.Abs(nb.Dist-wantDist) > 1e-12 {
				t.Fatalf("Nearest kept the far copy of id 42: dist %g, want %g", nb.Dist, wantDist)
			}
		}
	}
	if hits != 1 {
		t.Fatalf("Nearest returned id 42 %d times, want once (%v)", hits, ns)
	}
}

// TestNearestUnderfilledShards pins the best-first pruning guard: with
// every object concentrated in one shard far from the query point and
// k larger than the object count, Nearest must keep visiting shards
// until the result is as full as the data allows, matching brute force.
func TestNearestUnderfilledShards(t *testing.T) {
	x := openShardedTest(t, GeneralizedBottomUp, ShardOptions{Shards: 8, Partition: ShardHilbert})
	defer x.Close()

	// Per-object inserts do not rebuild the uniform Hilbert router, so
	// clustering every object near one corner leaves seven shards empty.
	pts := make([]Point, 20)
	for i := range pts {
		pts[i] = Point{X: 0.93 + 0.003*float64(i%5), Y: 0.93 + 0.003*float64(i/5)}
		if err := x.Insert(uint64(i), pts[i]); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for _, n := range x.ShardLens() {
		if n > 0 {
			occupied++
		}
	}
	if occupied > 2 {
		t.Fatalf("setup: cluster spread over %d shards, want <= 2", occupied)
	}

	q := Point{X: 0.02, Y: 0.02} // opposite corner: every region is "far"
	for _, k := range []int{5, 20, 50} {
		ns, err := x.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := k
		if wantLen > len(pts) {
			wantLen = len(pts)
		}
		if len(ns) != wantLen {
			t.Fatalf("Nearest(k=%d) returned %d results, want %d", k, len(ns), wantLen)
		}
		// Brute-force oracle.
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = math.Hypot(q.X-p.X, q.Y-p.Y)
		}
		sort.Float64s(dists)
		for i, nb := range ns {
			if math.Abs(nb.Dist-dists[i]) > 1e-12 {
				t.Fatalf("Nearest(k=%d) result %d at dist %g, brute force says %g", k, i, nb.Dist, dists[i])
			}
		}
	}
}
