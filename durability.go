package burtree

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"burtree/internal/wal"
)

// DurabilityMode selects how updates are made crash-safe.
type DurabilityMode int

const (
	// DurabilityOff disables the write-ahead log entirely (the default).
	// The index is volatile between explicit SaveFile snapshots.
	DurabilityOff DurabilityMode = iota
	// DurabilityBatch fsyncs the log once per acknowledged operation
	// (per update, per batch): when a call returns, its changes are on
	// disk. The durable baseline — every commit pays a device sync.
	DurabilityBatch
	// DurabilityGroup enables group commit: concurrent committers
	// append their records and piggyback on one shared fsync, so the
	// durable write path stays O(1) amortized per update. When a call
	// returns, a sync covering its record has completed — the guarantee
	// is the same as DurabilityBatch, only the syncs are shared.
	DurabilityGroup
)

func (m DurabilityMode) String() string {
	switch m {
	case DurabilityOff:
		return "off"
	case DurabilityBatch:
		return "per-batch"
	case DurabilityGroup:
		return "group-commit"
	default:
		return fmt.Sprintf("DurabilityMode(%d)", int(m))
	}
}

// Durability configures crash safety. With a Mode other than
// DurabilityOff, every acknowledged insert, delete, update and batched
// update is appended to a segmented, checksummed, redo-only write-ahead
// log under Dir before the call returns; Checkpoint writes an atomic
// snapshot and truncates the log; Recover (or RecoverConcurrent /
// RecoverSharded) rebuilds the index after a crash by loading the
// latest snapshot and replaying the log tail through the batched
// update path.
//
// A ShardedIndex gives each shard its own log (Dir/shard-NNN) so commit
// streams share no fsync, lock or buffer — their records carry
// sequences from one shared atomic counter, so recovery merges the
// per-shard streams back into a single total order.
type Durability struct {
	// Mode selects the commit policy; DurabilityOff disables logging.
	Mode DurabilityMode
	// Dir is where the log segments and the checkpoint snapshot live.
	// Required when Mode is not DurabilityOff.
	Dir string
	// GroupWindow is how long a group-commit sync leader waits for
	// concurrent committers to pile on before issuing the shared fsync
	// (DurabilityGroup only). Zero still piggybacks naturally:
	// committers that arrive while a sync is in flight are covered by
	// the next one. Larger windows trade commit latency for fewer
	// device syncs.
	GroupWindow time.Duration
	// SegmentBytes caps one log segment file (default 16 MiB).
	SegmentBytes int
	// SyncDelay adds a simulated device-sync latency on top of the real
	// fsync, mirroring the page store's simulated access latency so the
	// wal experiment measures the commit policy rather than the host's
	// page cache. Zero (the default) for real use.
	SyncDelay time.Duration
}

// enabled reports whether the configuration asks for logging.
func (d Durability) enabled() bool { return d.Mode != DurabilityOff }

// validate checks an enabled configuration.
func (d Durability) validate() error {
	switch d.Mode {
	case DurabilityOff, DurabilityBatch, DurabilityGroup:
	default:
		return fmt.Errorf("burtree: unknown durability mode %d", int(d.Mode))
	}
	if d.enabled() && d.Dir == "" {
		return errors.New("burtree: durability requires Options.Durability.Dir")
	}
	return nil
}

// logOptions converts the public config to wal options.
func (d Durability) logOptions(startAfter uint64, nextSeq func() uint64) wal.Options {
	sync := wal.SyncEach
	if d.Mode == DurabilityGroup {
		sync = wal.SyncGroup
	}
	return wal.Options{
		Sync:         sync,
		GroupWindow:  d.GroupWindow,
		SegmentBytes: int64(d.SegmentBytes),
		SyncDelay:    d.SyncDelay,
		NextSeq:      nextSeq,
		StartAfter:   startAfter,
	}
}

// snapshotFileName is the checkpoint snapshot inside Durability.Dir.
const snapshotFileName = "snapshot.burtree"

// shardLogDir returns shard i's log directory under the durability dir.
func shardLogDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// ErrRecovery reports that crash recovery could not replay the log tail
// onto the snapshot. The index state on disk is left untouched.
var ErrRecovery = errors.New("burtree: recovery failed")

// ErrExistingState reports an Open with durability enabled on a
// directory that already holds a snapshot or log segments; opening
// fresh would shadow (and eventually truncate) real data. Use Recover
// to resume from it, or point Dir at an empty directory.
var ErrExistingState = errors.New("burtree: durability dir already holds state; use Recover")

// hasDurableState reports whether dir holds a snapshot or log segments
// (top-level or per-shard).
func hasDurableState(dir string) (bool, error) {
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err == nil {
		return true, nil
	} else if !os.IsNotExist(err) {
		return false, err
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return false, err
	}
	if len(segs) > 0 {
		return true, nil
	}
	shardSegs, err := filepath.Glob(filepath.Join(dir, "shard-*", "wal-*.seg"))
	if err != nil {
		return false, err
	}
	return len(shardSegs) > 0, nil
}

// shardLogSegments lists per-shard log segments under dir.
func shardLogSegments(dir string) []string {
	segs, _ := filepath.Glob(filepath.Join(dir, "shard-*", "wal-*.seg"))
	return segs
}

// topLogSegments lists top-level (single-index) log segments under dir.
func topLogSegments(dir string) []string {
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	return segs
}

// checkFreshDir validates that an Open with durability enabled targets
// a directory without prior durable state.
func checkFreshDir(dir string) error {
	has, err := hasDurableState(dir)
	if err != nil {
		return fmt.Errorf("burtree: durability dir: %w", err)
	}
	if has {
		return fmt.Errorf("%w: %s", ErrExistingState, dir)
	}
	return nil
}

// applier is the mutation surface shared by the three front-ends,
// used to replay log records during recovery (with logging detached,
// so replay does not re-log itself).
type applier interface {
	Insert(id uint64, p Point) error
	Delete(id uint64) error
	UpdateBatch(changes []Change) (BatchResult, error)
}

// replayRecords applies a sequence-ordered record stream. Any apply
// failure aborts with ErrRecovery: a record that was acknowledged
// against the pre-crash state must apply cleanly onto the snapshot
// plus the records before it, so a failure means the log and snapshot
// disagree.
func replayRecords(a applier, recs []wal.Record) error {
	for _, r := range recs {
		var err error
		switch r.Type {
		case wal.TypeInsert:
			if len(r.Ops) != 1 {
				err = fmt.Errorf("insert record carries %d ops", len(r.Ops))
				break
			}
			err = a.Insert(r.Ops[0].ID, Point{X: r.Ops[0].X, Y: r.Ops[0].Y})
		case wal.TypeDelete:
			if len(r.Ops) != 1 {
				err = fmt.Errorf("delete record carries %d ops", len(r.Ops))
				break
			}
			err = a.Delete(r.Ops[0].ID)
		case wal.TypeBatch:
			changes := make([]Change, len(r.Ops))
			for i, op := range r.Ops {
				changes[i] = Change{ID: op.ID, To: Point{X: op.X, Y: op.Y}}
			}
			_, err = a.UpdateBatch(changes)
		default:
			err = fmt.Errorf("unknown record type %d", r.Type)
		}
		if err != nil {
			return fmt.Errorf("%w: replaying record %d: %v", ErrRecovery, r.Seq, err)
		}
	}
	return nil
}

// opsFromChanges converts applied batch changes to log ops.
func opsFromChanges(changes []Change) []wal.Op {
	ops := make([]wal.Op, len(changes))
	for i, c := range changes {
		ops[i] = wal.Op{ID: c.ID, X: c.To.X, Y: c.To.Y}
	}
	return ops
}

// loadOrFresh is the shared snapshot-or-empty step of single-index
// recovery: it loads the checkpoint snapshot when one exists and opens
// an empty index (durability stripped; the caller attaches the log)
// otherwise.
func loadOrFresh[T any](opts Options, loadSnap func(string) (T, error), open func(Options) (T, error)) (T, error) {
	var zero T
	snapPath := filepath.Join(opts.Durability.Dir, snapshotFileName)
	if _, err := os.Stat(snapPath); err == nil {
		idx, err := loadSnap(snapPath)
		if err != nil {
			return zero, fmt.Errorf("%w: %v", ErrRecovery, err)
		}
		return idx, nil
	} else if !os.IsNotExist(err) {
		return zero, fmt.Errorf("%w: %v", ErrRecovery, err)
	}
	fresh := opts
	fresh.Durability = Durability{}
	return open(fresh)
}

// recoverTail replays the log tail beyond afterSeq onto a and re-opens
// the log for appending. A directory holding per-shard logs belongs to
// a ShardedIndex: refusing it here keeps a mistaken Recover /
// RecoverConcurrent from silently dropping the acked records in the
// shard logs (the top-level scan would never see them).
func recoverTail(d Durability, a applier, afterSeq uint64) (*wal.Log, error) {
	if segs := shardLogSegments(d.Dir); len(segs) > 0 {
		return nil, fmt.Errorf("%w: %s holds per-shard logs; recover it with RecoverSharded", ErrRecovery, d.Dir)
	}
	recs, _, err := wal.ReadDir(d.Dir, afterSeq)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRecovery, err)
	}
	if err := replayRecords(a, recs); err != nil {
		return nil, err
	}
	return wal.Open(d.Dir, d.logOptions(afterSeq, nil))
}

// Recover rebuilds an Index from its durability directory: the latest
// checkpoint snapshot (if one exists) plus a replay of the log tail
// through the batched update path, exactly the acknowledged prefix the
// configured sync policy made durable. The options are used as given
// when no snapshot exists yet (an empty or never-checkpointed
// directory); otherwise the snapshot's embedded options win, as with
// Load. The returned index continues logging to the same directory.
func Recover(opts Options) (*Index, error) {
	d := opts.Durability
	if err := d.validate(); err != nil {
		return nil, err
	}
	if !d.enabled() {
		return nil, errors.New("burtree: Recover requires a durability mode")
	}
	idx, err := loadOrFresh(opts, LoadFile, Open)
	if err != nil {
		return nil, err
	}
	// Like Durability, the delta tier is the caller's runtime choice,
	// not snapshot state: re-enable it (if asked for) before the replay,
	// so the log tail is absorbed exactly as the pre-crash writes were.
	idx.ensureMemtable(opts.Memtable)
	log, err := recoverTail(d, idx, idx.walSeq)
	if err != nil {
		return nil, err
	}
	idx.wal = log
	idx.options.Durability = d
	return idx, nil
}

// RecoverConcurrent rebuilds a ConcurrentIndex from its durability
// directory, exactly as Recover does for an Index.
func RecoverConcurrent(opts Options) (*ConcurrentIndex, error) {
	d := opts.Durability
	if err := d.validate(); err != nil {
		return nil, err
	}
	if !d.enabled() {
		return nil, errors.New("burtree: RecoverConcurrent requires a durability mode")
	}
	idx, err := loadOrFresh(opts, LoadConcurrentFile, OpenConcurrent)
	if err != nil {
		return nil, err
	}
	idx.ensureMemtable(opts.Memtable)
	log, err := recoverTail(d, idx, idx.walSeq)
	if err != nil {
		return nil, err
	}
	idx.wal = log
	idx.options.Durability = d
	return idx, nil
}

// RecoverSharded rebuilds a ShardedIndex from its durability directory:
// the latest checkpoint snapshot (which carries the saved partitioning)
// plus the per-shard log tails merged back into one total order by
// their shared sequence counter and replayed through the sharded update
// path. With no snapshot yet, the index starts from opts/sopts as
// OpenSharded would. The returned index continues logging, one log per
// shard.
func RecoverSharded(opts Options, sopts ShardOptions) (*ShardedIndex, error) {
	d := opts.Durability
	if err := d.validate(); err != nil {
		return nil, err
	}
	if !d.enabled() {
		return nil, errors.New("burtree: RecoverSharded requires a durability mode")
	}
	var x *ShardedIndex
	snapPath := filepath.Join(d.Dir, snapshotFileName)
	if _, err := os.Stat(snapPath); err == nil {
		x, err = LoadShardedFile(snapPath)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRecovery, err)
		}
	} else if os.IsNotExist(err) {
		fresh := opts
		fresh.Durability = Durability{}
		x, err = OpenSharded(fresh, sopts)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("%w: %v", ErrRecovery, err)
	}

	// Refuse to recover past acked data this scan would never see:
	// top-level segments belong to a single-index log (use Recover),
	// and shard directories beyond the count being restored belong to a
	// crashed instance with more shards and no checkpoint yet.
	if segs := topLogSegments(d.Dir); len(segs) > 0 {
		return nil, fmt.Errorf("%w: %s holds a single-index log; recover it with Recover or RecoverConcurrent", ErrRecovery, d.Dir)
	}
	for _, seg := range shardLogSegments(d.Dir) {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(filepath.Dir(seg)), "shard-%d", &i); err == nil && i >= len(x.shards) {
			return nil, fmt.Errorf("%w: log directory %s exceeds the %d shards being restored (recover with the original shard count)",
				ErrRecovery, filepath.Dir(seg), len(x.shards))
		}
	}

	// Re-enable the per-shard delta tiers (the caller's runtime choice,
	// as with Durability) before the replay, so the log tails are
	// absorbed exactly as the pre-crash writes were.
	x.ensureMemtable(opts.Memtable)

	var all []wal.Record
	maxSeq := x.walSeq
	for i := range x.shards {
		recs, _, err := wal.ReadDir(shardLogDir(d.Dir, i), x.walSeq)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d log: %v", ErrRecovery, i, err)
		}
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	for i := 1; i < len(all); i++ {
		if all[i].Seq == all[i-1].Seq {
			return nil, fmt.Errorf("%w: sequence %d appears in two shard logs", ErrRecovery, all[i].Seq)
		}
	}
	if err := replayRecords(x, all); err != nil {
		return nil, err
	}
	if n := len(all); n > 0 {
		maxSeq = all[n-1].Seq
	}

	x.lsn.Store(maxSeq)
	x.wals = make([]*wal.Log, len(x.shards))
	for i := range x.shards {
		log, err := wal.Open(shardLogDir(d.Dir, i), d.logOptions(maxSeq, x.nextLSN))
		if err != nil {
			return nil, err
		}
		x.wals[i] = log
	}
	x.options.Durability = d
	// Rebalancing, like the delta tier, is the caller's runtime choice
	// rather than snapshot state: apply it last so the background loop
	// never races the replay.
	x.SetRebalance(sopts.Rebalance)
	return x, nil
}
