package burtree

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"burtree/internal/shard"
	"burtree/internal/wal"
)

// PartitionScheme selects how a ShardedIndex splits the data space.
type PartitionScheme int

const (
	// ShardGrid tiles the unit square into equal cells, one per shard
	// (the default; best on uniform data).
	ShardGrid PartitionScheme = iota
	// ShardHilbert splits a Hilbert linearization of the space into
	// contiguous ranges, balanced by object count at bulk-load time;
	// better on skewed data.
	ShardHilbert
)

func (p PartitionScheme) String() string {
	switch p {
	case ShardGrid:
		return "grid"
	case ShardHilbert:
		return "hilbert"
	default:
		return fmt.Sprintf("PartitionScheme(%d)", int(p))
	}
}

// ShardOptions configures the partitioning of a ShardedIndex.
type ShardOptions struct {
	// Shards is the number of partitions (default 4, max
	// shard.MaxShards). Each shard is a self-contained ConcurrentIndex
	// with its own page store, buffer pool, hash index and lock manager.
	Shards int
	// Partition picks the space-splitting scheme.
	Partition PartitionScheme
	// Rebalance configures the online load-based rebalancer (off by
	// default); see RebalanceOptions.
	Rebalance RebalanceOptions
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Shards == 0 {
		o.Shards = 4
	}
	return o
}

// ShardedIndex partitions the data space across N self-contained
// ConcurrentIndex shards so that updates in different regions contend on
// nothing at all — not even a shared buffer-pool latch or lock-manager
// mutex. It offers the familiar front-end API: updates, batched updates,
// window and nearest-neighbour queries, bulk loading and snapshots, and
// is safe for concurrent use by any number of goroutines.
//
//   - Writes route by target cell: an object lives in the shard owning
//     its current position. A move within one shard is that shard's
//     bottom-up update; a move across shards becomes a delete in the
//     source and an insert in the destination.
//   - Search and Count scatter to the shards overlapping the window and
//     gather the results; each object is owned by exactly one shard, so
//     the union is exact and duplicate-free.
//   - Nearest runs best-first over a shard priority queue ordered by the
//     MinDist of each shard's responsibility region, stopping as soon as
//     the next region lies farther than the current k-th neighbour.
//
// Consistency is per shard: a query observes each shard it touches at a
// consistent point (DGL granule locks, as ConcurrentIndex), but a
// scatter is not one global snapshot — a reader racing a cross-shard
// move can miss the mover (read after its delete, before its insert).
// The dual anomaly, observing the mover twice when shard visits
// straddle the move, is absorbed by the gather: Search, SearchFunc,
// Count and Nearest de-duplicate by id, so a racing reader sees each
// object at most once. Readers that need a globally consistent view
// quiesce writers first, as Save does.
type ShardedIndex struct {
	router  *shard.Router
	shards  []*ConcurrentIndex
	options Options      // as passed to OpenSharded (totals, not per shard)
	sopts   ShardOptions // normalized

	// opMu is the snapshot gate: operations hold it shared for their
	// whole duration, Save/BulkInsert/Flush hold it exclusively so they
	// observe (and produce) a quiescent, globally consistent state.
	// With durability enabled it doubles as the checkpoint gate: log
	// appends happen inside the operation's shared hold, so an
	// exclusive holder never catches an operation between applying and
	// logging.
	opMu sync.RWMutex

	mu      sync.RWMutex
	objects map[uint64]Point

	// wals holds one write-ahead log per shard when durability is
	// enabled (nil otherwise): commit streams share no fsync, lock or
	// buffer — only the lsn counter, one atomic increment per record,
	// which stitches the per-shard streams into a single total order
	// for recovery. walSeq is the sequence the loaded snapshot covers.
	wals   []*wal.Log
	lsn    atomic.Uint64
	walSeq uint64

	// load accumulates per-shard operation counts and the per-cell
	// update histogram the rebalancer splits on; see ShardLoads.
	load *shard.LoadTracker
	// routerEpoch counts boundary changes (guarded by opMu; bumped under
	// the exclusive gate, persisted in the sharded manifest).
	routerEpoch uint64
	// pageBase carries each shard slot's cumulative foreground page
	// count across shard rebuilds (guarded by opMu like the shards
	// slice): a boundary change that replaces the shards would otherwise
	// reset their page counters to zero and make the cumulative sequence
	// fgPages feeds to LoadTracker.SampleAt run backward.
	pageBase []uint64
	// ioLatency remembers the simulated per-page latency so shards
	// rebuilt by a rebalance keep paying it.
	ioLatency atomic.Int64

	// rebalMu guards the rebalancer configuration and loop lifecycle.
	rebalMu   sync.Mutex
	ropts     RebalanceOptions
	rebalCool int // qualifying windows left to skip (Cooldown hysteresis)
	rebalStop chan struct{}
	rebalWG   sync.WaitGroup

	// hotCells is the current phase-batched cell set (nil ⇒ phase
	// batching inactive; see phasebatch.go), phaseWin the accumulation
	// window, and combiners the per-shard phase combiners. The set and
	// window are atomics so the batch routing loop pays one pointer load
	// when the feature is off.
	hotCells  atomic.Pointer[hotCellSet]
	phaseWin  atomic.Int64
	combiners []*phaseCombiner
}

// newCombiners builds one phase combiner per shard.
func newCombiners(n int) []*phaseCombiner {
	out := make([]*phaseCombiner, n)
	for i := range out {
		out[i] = &phaseCombiner{}
	}
	return out
}

// ioMark brackets one shard operation for foreground I/O attribution:
// done() reports the pages the shard spent since the mark, minus the
// background merge-down pages, clamped at zero. Pages from overlapping
// operations on the same shard land in every open bracket, so the
// bracketed costs over-count under concurrency — they feed per-cell
// attribution and observability, where only relative weight within a
// shard matters. The rebalancer's per-shard share signal samples the
// exact cumulative page counters instead (fgPages → SampleAt).
type ioMark struct {
	sh    *ConcurrentIndex
	pages uint64
	bg    uint64
}

func meterShard(sh *ConcurrentIndex) ioMark {
	return ioMark{sh: sh, pages: sh.pagesNow(), bg: sh.bgPages.Load()}
}

func (m ioMark) done() uint64 {
	return uint64(foregroundPages(m.sh.pagesNow()-m.pages, m.sh.bgPages.Load()-m.bg))
}

// fgPages snapshots every shard's exact cumulative foreground page
// count — pages read plus written, minus background merge-down pages —
// offset by pageBase so the sequence stays monotone across shard
// rebuilds. This is the page stream LoadTracker.SampleAt consumes.
func (x *ShardedIndex) fgPages() []uint64 {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	return x.fgPagesLocked()
}

// fgPagesLocked is fgPages for callers already holding opMu (shared or
// exclusive).
func (x *ShardedIndex) fgPagesLocked() []uint64 {
	out := make([]uint64, len(x.shards))
	for s, sh := range x.shards {
		out[s] = x.pageBase[s] + uint64(foregroundPages(sh.pagesNow(), sh.bgPages.Load()))
	}
	return out
}

// retirePagesLocked folds the retiring shards' foreground page counts
// into pageBase before a rebuild replaces them; caller holds opMu
// exclusively.
func (x *ShardedIndex) retirePagesLocked() {
	for s, sh := range x.shards {
		x.pageBase[s] += uint64(foregroundPages(sh.pagesNow(), sh.bgPages.Load()))
	}
}

// addCellCount accumulates one cell's op count in a small slice keyed
// by linear scan: batches concentrate on few distinct cells (that is
// what makes batching pay), so the scan beats a map and allocates only
// on new cells.
func addCellCount(cells []shard.CellCount, cell uint64, n int) []shard.CellCount {
	for i := range cells {
		if cells[i].Cell == cell {
			cells[i].N += n
			return cells
		}
	}
	return append(cells, shard.CellCount{Cell: cell, N: n})
}

// nextLSN hands out globally ordered record sequences to the per-shard
// logs.
func (x *ShardedIndex) nextLSN() uint64 { return x.lsn.Add(1) }

// logTo records an acknowledged mutation in shard s's log, blocking
// until durable under the configured sync policy. Caller holds opMu
// shared. No-op when durability is off.
func (x *ShardedIndex) logTo(s int, typ wal.Type, ops []wal.Op) error {
	if x.wals == nil || len(ops) == 0 {
		return nil
	}
	if x.shards[s].mem != nil {
		// Memtable mode acknowledges at the log append alone: the
		// background group-commit leader advances the durable horizon,
		// and Checkpoint/Save/Close flush hard. See Options.Memtable.
		if _, err := x.wals[s].AppendAsync(typ, ops); err != nil {
			return fmt.Errorf("burtree: durability: %w", err)
		}
		return nil
	}
	if _, err := x.wals[s].Append(typ, ops); err != nil {
		return fmt.Errorf("burtree: durability: %w", err)
	}
	return nil
}

// OpenSharded creates an empty sharded index. The Options are totals for
// the whole index: the buffer pool and hash-index budgets are divided
// evenly among the shards, so comparing shard counts compares equal
// hardware.
func OpenSharded(opts Options, sopts ShardOptions) (*ShardedIndex, error) {
	if err := opts.Durability.validate(); err != nil {
		return nil, err
	}
	sopts = sopts.withDefaults()
	var router *shard.Router
	var err error
	switch sopts.Partition {
	case ShardHilbert:
		router, err = shard.NewHilbertUniform(sopts.Shards)
	default:
		router, err = shard.NewGrid(sopts.Shards)
	}
	if err != nil {
		return nil, fmt.Errorf("burtree: %w", err)
	}
	shards, err := openShards(opts, sopts.Shards)
	if err != nil {
		return nil, err
	}
	x := &ShardedIndex{
		router:    router,
		shards:    shards,
		options:   opts,
		sopts:     sopts,
		objects:   make(map[uint64]Point),
		load:      shard.NewLoadTracker(sopts.Shards),
		pageBase:  make([]uint64, sopts.Shards),
		ropts:     sopts.Rebalance.withDefaults(),
		combiners: newCombiners(sopts.Shards),
	}
	if d := opts.Durability; d.enabled() {
		if err := checkFreshDir(d.Dir); err != nil {
			return nil, err
		}
		x.wals = make([]*wal.Log, len(shards))
		for i := range shards {
			dir := shardLogDir(d.Dir, i)
			if err := checkFreshDir(dir); err != nil {
				return nil, err
			}
			log, err := wal.Open(dir, d.logOptions(0, x.nextLSN))
			if err != nil {
				return nil, err
			}
			x.wals[i] = log
		}
	}
	x.rebalMu.Lock()
	x.startRebalancerLocked()
	x.rebalMu.Unlock()
	return x, nil
}

// perShardOptions divides the index-wide budgets across n shards. The
// shard indexes never log for themselves — the sharded front-end owns
// the per-shard logs — so any durability config is stripped. The
// memtable budget, by contrast, is divided, not stripped: the delta
// tier is per shard (each shard absorbs and merges its own deltas
// independently), which is what keeps merge-down traffic as parallel
// as the write traffic.
func perShardOptions(opts Options, n int) Options {
	per := opts
	per.Durability = Durability{}
	if per.Memtable.Enabled {
		per.Memtable = per.Memtable.withDefaults()
		per.Memtable.MaxObjects = per.Memtable.MaxObjects / n
		if per.Memtable.MaxObjects < 16 {
			per.Memtable.MaxObjects = 16
		}
	}
	if per.ExpectedObjects == 0 {
		per.ExpectedObjects = 1024
	}
	per.ExpectedObjects = per.ExpectedObjects / n
	if per.ExpectedObjects < 64 {
		per.ExpectedObjects = 64
	}
	if per.BufferPages > 0 {
		per.BufferPages = per.BufferPages / n
		if per.BufferPages < 1 {
			per.BufferPages = 1
		}
	}
	return per
}

func openShards(opts Options, n int) ([]*ConcurrentIndex, error) {
	per := perShardOptions(opts, n)
	shards := make([]*ConcurrentIndex, n)
	for i := range shards {
		ci, err := OpenConcurrent(per)
		if err != nil {
			return nil, err
		}
		shards[i] = ci
	}
	return shards, nil
}

// NumShards returns the shard count.
func (x *ShardedIndex) NumShards() int {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	return len(x.shards)
}

// Partition returns the partitioning scheme in use. A grid partition
// reports ShardHilbert after its first rebalance upgraded it to Hilbert
// ranges.
func (x *ShardedIndex) Partition() PartitionScheme {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	return x.sopts.Partition
}

// ShardLens returns the number of objects per shard (diagnostics and
// balance monitoring).
func (x *ShardedIndex) ShardLens() []int {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	out := make([]int, len(x.shards))
	for i, s := range x.shards {
		out[i] = s.Len()
	}
	return out
}

// SetIOLatency simulates a per-page-access service time on every shard's
// store. Zero disables the simulation. The setting survives rebalances:
// shards rebuilt by a partition upgrade inherit it.
func (x *ShardedIndex) SetIOLatency(d time.Duration) {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	x.ioLatency.Store(int64(d))
	for _, s := range x.shards {
		s.SetIOLatency(d)
	}
}

// BulkInsert loads many objects at once into an empty index. With the
// ShardHilbert partition the router is rebuilt first so the Hilbert
// ranges are balanced over the actual data; the objects are then routed
// and every shard bulk-loads its partition in parallel. The whole index
// is locked exclusively for the duration.
func (x *ShardedIndex) BulkInsert(ids []uint64, pts []Point, method PackMethod) error {
	x.opMu.Lock()
	defer x.opMu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.objects) != 0 {
		return fmt.Errorf("burtree: BulkInsert on non-empty index")
	}
	if len(ids) != len(pts) {
		return fmt.Errorf("burtree: BulkInsert: %d ids for %d points", len(ids), len(pts))
	}
	if x.sopts.Partition == ShardHilbert {
		router, err := shard.NewHilbertBalanced(len(x.shards), pts)
		if err != nil {
			return fmt.Errorf("burtree: %w", err)
		}
		x.router = router
	}
	objects := make(map[uint64]Point, len(ids))
	perIDs := make([][]uint64, len(x.shards))
	perPts := make([][]Point, len(x.shards))
	for i, id := range ids {
		if _, dup := objects[id]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicateObject, id)
		}
		// Validate every point before any shard loads anything, matching
		// the single-tree path (which validates all rects before packing):
		// a mid-load failure would leave some shards populated and others
		// empty, with no way back to a loadable state.
		if pts[i].X != pts[i].X || pts[i].Y != pts[i].Y {
			return fmt.Errorf("burtree: BulkInsert: object %d has NaN coordinates", id)
		}
		objects[id] = pts[i]
		s := x.router.ShardOf(pts[i])
		perIDs[s] = append(perIDs[s], id)
		perPts[s] = append(perPts[s], pts[i])
	}
	errs := make([]error, len(x.shards))
	var wg sync.WaitGroup
	for s := range x.shards {
		if len(perIDs[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = x.shards[s].BulkInsert(perIDs[s], perPts[s], method)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// A shard failed mid-load while others succeeded. Rebuild every
			// shard empty so the index returns to its pre-call state and a
			// corrected retry is possible. The replaced shards are closed
			// first so their background mergers do not leak.
			if fresh, rerr := openShards(x.options, len(x.shards)); rerr == nil {
				x.retirePagesLocked()
				for _, s := range x.shards {
					_ = s.Close()
				}
				x.shards = fresh
			}
			return err
		}
	}
	x.objects = objects
	// With durability on, the snapshot (not per-object log records) is
	// the durable form of a bulk load — it also persists the router the
	// Hilbert path just rebuilt, which recovery must route with.
	if x.wals != nil {
		return x.checkpointLocked()
	}
	return nil
}

// Checkpoint makes the whole index state durable in one snapshot and
// truncates every shard's log: the sharded snapshot (manifest, router
// spec and one blob per shard) is written atomically to the durability
// directory, embedding the shared log sequence it covers. The whole
// index is gated exclusively, so the snapshot is a globally quiescent
// point. Requires durability to be enabled.
func (x *ShardedIndex) Checkpoint() error {
	x.opMu.Lock()
	defer x.opMu.Unlock()
	return x.checkpointLocked()
}

// checkpointLocked is Checkpoint with the snapshot gate already held.
func (x *ShardedIndex) checkpointLocked() error {
	if x.wals == nil {
		return errors.New("burtree: Checkpoint requires durability to be enabled")
	}
	for _, l := range x.wals {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	seq := x.lsn.Load()
	path := filepath.Join(x.options.Durability.Dir, snapshotFileName)
	if err := saveToFile(path, x.saveLocked); err != nil {
		return err
	}
	for _, l := range x.wals {
		if err := l.TruncateThrough(seq); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the rebalancer loop (if running) and closes every shard
// (stopping its background merger and merging buffered deltas down),
// then syncs and closes every shard's write-ahead log (no-op without
// durability). Reads keep working; further mutations fail their durable
// append. Close does not checkpoint: recovery replays the logs onto the
// last snapshot.
func (x *ShardedIndex) Close() error {
	x.stopRebalancer()
	var err error
	for _, s := range x.shards {
		err = errors.Join(err, s.Close())
	}
	if x.wals == nil {
		return err
	}
	for _, l := range x.wals {
		err = errors.Join(err, l.Close())
	}
	return err
}

// ensureMemtable re-enables the per-shard delta tiers on a loaded
// snapshot (loaders never enable the tier themselves); used by
// RecoverSharded before replaying the log tails.
func (x *ShardedIndex) ensureMemtable(cfg Memtable) {
	cfg = cfg.withDefaults()
	x.options.Memtable = cfg
	if !cfg.Enabled {
		return
	}
	per := perShardOptions(x.options, len(x.shards))
	for _, s := range x.shards {
		s.ensureMemtable(per.Memtable)
	}
}

// Insert adds a new object at p, routed to the shard owning p.
func (x *ShardedIndex) Insert(id uint64, p Point) error {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	x.mu.Lock()
	if _, ok := x.objects[id]; ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrDuplicateObject, id)
	}
	x.objects[id] = p
	x.mu.Unlock()
	s := x.router.ShardOf(p)
	m := meterShard(x.shards[s])
	if err := x.shards[s].Insert(id, p); err != nil {
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			delete(x.objects, id)
		}
		x.mu.Unlock()
		return err
	}
	if err := x.logTo(s, wal.TypeInsert, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
		// Applied but not logged: the caller sees an error, so the state
		// change must not stick — recovery would silently lose an object
		// the index still serves. Roll the tree and table back, mirroring
		// the apply-error path above.
		err = errors.Join(err, x.shards[s].Delete(id))
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			delete(x.objects, id)
		}
		x.mu.Unlock()
		return err
	}
	x.load.RecordUpdates(s, shard.CellKey(p), 1, m.done())
	return nil
}

// Update moves an existing object to p. A move within one shard runs
// that shard's bottom-up update; a move across shards becomes a delete
// in the source shard followed by an insert in the destination. As with
// ConcurrentIndex, racing updates of the same object are last-writer-
// wins on the object table; callers that need per-object ordering
// serialize their own access.
func (x *ShardedIndex) Update(id uint64, p Point) error {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	x.mu.Lock()
	old, ok := x.objects[id]
	if !ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	x.objects[id] = p
	x.mu.Unlock()
	src, dst := x.router.ShardOf(old), x.router.ShardOf(p)
	mDst := meterShard(x.shards[dst])
	var mSrc ioMark
	if src != dst {
		mSrc = meterShard(x.shards[src])
	}
	err := x.moveRouted(id, old, p)
	if err != nil {
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	// The move is logged once, in the shard that now owns the object;
	// replay re-routes it, re-deriving the cross-shard delete+insert.
	if err := x.logTo(dst, wal.TypeBatch, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
		// Applied but not logged: move the object back and restore the
		// table so the errored call leaves no acked-but-unreplayable state.
		err = errors.Join(err, x.moveRouted(id, p, old))
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	// The operation is accounted to the destination; a cross-shard move
	// additionally charges the source its real departure I/O as a
	// zero-op cost record at the object's old cell.
	x.load.RecordUpdates(dst, shard.CellKey(p), 1, mDst.done())
	if src != dst {
		x.load.RecordUpdates(src, shard.CellKey(old), 0, mSrc.done())
	}
	return nil
}

// moveRouted applies one move against the shard trees: in-shard update
// or cross-shard delete+insert. The caller owns the object-table entry.
func (x *ShardedIndex) moveRouted(id uint64, old, p Point) error {
	src, dst := x.router.ShardOf(old), x.router.ShardOf(p)
	if src == dst {
		return x.shards[src].Update(id, p)
	}
	if err := x.shards[src].Delete(id); err != nil {
		return err
	}
	if err := x.shards[dst].Insert(id, p); err != nil {
		// Try to put the object back where it was so the index stays
		// complete; if even that fails the object is lost from the trees
		// and the sticky shard error will surface in CheckInvariants.
		if rerr := x.shards[src].Insert(id, old); rerr != nil {
			return fmt.Errorf("burtree: cross-shard move of %d failed (%w) and rollback failed: %v", id, err, rerr)
		}
		return err
	}
	return nil
}

// Delete removes an object from its owning shard.
func (x *ShardedIndex) Delete(id uint64) error {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	x.mu.Lock()
	old, ok := x.objects[id]
	if !ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	delete(x.objects, id)
	x.mu.Unlock()
	s := x.router.ShardOf(old)
	m := meterShard(x.shards[s])
	if err := x.shards[s].Delete(id); err != nil {
		x.mu.Lock()
		if _, ok := x.objects[id]; !ok {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	if err := x.logTo(s, wal.TypeDelete, []wal.Op{{ID: id}}); err != nil {
		// Applied but not logged: resurrect the object so the errored
		// delete leaves nothing for recovery to disagree about.
		err = errors.Join(err, x.shards[s].Insert(id, old))
		x.mu.Lock()
		if _, ok := x.objects[id]; !ok {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	x.load.RecordUpdates(s, shard.CellKey(old), 1, m.done())
	return nil
}

// crossMove is one batch change that leaves its shard: a delete in src
// followed by an insert in dst, with enough state to roll back.
type crossMove struct {
	id       uint64
	old, new Point
	src, dst int
	departed bool // the src delete succeeded; dst owes an insert
}

// shardWork is one shard's slice of a batch: in-shard moves plus its
// sides of the cross-shard moves.
type shardWork struct {
	stay []Change     // moves that stay in this shard
	del  []*crossMove // departures (delete here)
	ins  []*crossMove // arrivals (insert here)
}

// UpdateBatch moves many objects at once. The batch is coalesced once
// against the global object table, routed to shards by target cell, and
// applied per shard in parallel: each shard receives its in-shard moves
// as one batched bottom-up pass (its ConcurrentIndex.UpdateBatch) plus
// its share of the cross-shard moves as delete+insert pairs. Work inside
// a shard is applied in a deterministic order (departures sorted by id,
// then the batched moves, then arrivals sorted by id) and no operation
// ever holds locks in two shards, so the schedule is deadlock-free by
// construction. All departures complete before any arrival starts, so
// no mover ever resides in two shards at once (a racing scatter can
// still observe one twice if its shard visits straddle the move; see
// the type comment).
//
// Every id must already be in the index; an unknown id fails the whole
// batch before anything is applied. A batch is not atomic: on error the
// changes already applied remain applied (the returned BatchResult
// counts them). Concurrent writes to ids that are also in the batch
// race with it — a racing cross-shard move can make part of the batch
// fail against the moved object's old shard — so callers that need
// per-object ordering serialize their own access (disjoint id ranges
// per writer, as the experiment harness and examples do).
func (x *ShardedIndex) UpdateBatch(changes []Change) (BatchResult, error) {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	var res BatchResult
	// Load accounting tallies the offered stream, before coalescing: a
	// hot object updated many times per batch coalesces into one applied
	// change, but each of those updates was traffic the owning shard
	// absorbed — undercounting them would hide exactly the skew the
	// rebalancer exists to detect. The tallies are recorded after the
	// apply phases, together with each shard's measured page I/O.
	offered := make([][]shard.CellCount, len(x.shards))
	for _, c := range changes {
		s := x.router.ShardOf(c.To)
		offered[s] = addCellCount(offered[s], shard.CellKey(c.To), 1)
	}
	x.mu.RLock()
	coalesced, dropped, err := coalesceChanges(changes, func(id uint64) (Point, bool) {
		p, ok := x.objects[id]
		return p, ok
	})
	x.mu.RUnlock()
	if err != nil {
		return res, err
	}
	res.Coalesced = dropped

	// Hot-cell diversion: in-shard moves targeting a phase-batched cell
	// are combined across callers (see phasebatch.go) instead of riding
	// this caller's per-shard batch. Their offered tally moves with them
	// — the phase leader records one op (with measured pages) per
	// combined change, so the deduction here keeps the op stream exact.
	hot := x.hotCells.Load()
	var hotWork [][]Change
	if hot != nil {
		hotWork = make([][]Change, len(x.shards))
	}
	work := make([]shardWork, len(x.shards))
	for _, c := range coalesced {
		src, dst := x.router.ShardOf(c.Old), x.router.ShardOf(c.New)
		if src == dst {
			if hot != nil {
				if _, ok := (*hot)[shard.CellKey(c.New)]; ok {
					hotWork[src] = append(hotWork[src], Change{ID: c.OID, To: c.New})
					offered[src] = addCellCount(offered[src], shard.CellKey(c.New), -1)
					continue
				}
			}
			work[src].stay = append(work[src].stay, Change{ID: c.OID, To: c.New})
			continue
		}
		cm := &crossMove{id: c.OID, old: c.Old, new: c.New, src: src, dst: dst}
		work[src].del = append(work[src].del, cm)
		work[dst].ins = append(work[dst].ins, cm)
	}
	var joins []phaseJoin
	if hot != nil {
		// Join before the ordinary phases run so the combiner accumulates
		// other callers' changes while this caller does its cold work.
		joins = x.joinPhases(hotWork)
	}

	pagesTally := make([]uint64, len(x.shards))
	var resMu sync.Mutex

	// Phase 1, per shard in parallel: departures (sorted by id), then
	// the in-shard batch. An error stops that shard's remaining work;
	// the other shards and phase 2 still run, so every departed mover
	// gets its arrival attempted — a batch is not atomic, but it never
	// strands an object outside every shard.
	errs := make([]error, len(x.shards))
	var wg sync.WaitGroup
	for s := range x.shards {
		w := &work[s]
		if len(w.stay) == 0 && len(w.del) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, w *shardWork) {
			defer wg.Done()
			m := meterShard(x.shards[s])
			defer func() { pagesTally[s] += m.done() }()
			sort.Slice(w.del, func(i, j int) bool { return w.del[i].id < w.del[j].id })
			for _, cm := range w.del {
				if err := x.shards[s].Delete(cm.id); err != nil {
					errs[s] = err
					return
				}
				cm.departed = true
			}
			if len(w.stay) == 0 {
				return
			}
			br, err := x.shards[s].UpdateBatch(w.stay)
			resMu.Lock()
			res.Applied += br.Applied
			res.Groups += br.Groups
			res.GroupResolved += br.GroupResolved
			res.Fallback += br.Fallback
			res.Absorbed += br.Absorbed
			resMu.Unlock()
			// Reconcile the global table with whatever prefix the shard
			// applied (all of it when err == nil), collecting the applied
			// changes for the shard's log record.
			var applied []wal.Op
			x.mu.Lock()
			for _, c := range w.stay {
				if p, ok := x.shards[s].Location(c.ID); ok {
					x.objects[c.ID] = p
					if x.wals != nil && p == c.To {
						applied = append(applied, wal.Op{ID: c.ID, X: p.X, Y: p.Y})
					}
				}
			}
			x.mu.Unlock()
			if werr := x.logTo(s, wal.TypeBatch, applied); werr != nil {
				err = errors.Join(err, werr)
			}
			if err != nil {
				errs[s] = err
			}
		}(s, w)
	}
	wg.Wait()

	// Phase 2, per shard in parallel: arrivals (sorted by id) of the
	// movers whose departure succeeded. The barrier between the phases
	// is what keeps a mover from being visible in two shards at once.
	for s := range x.shards {
		w := &work[s]
		if len(w.ins) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, w *shardWork) {
			defer wg.Done()
			m := meterShard(x.shards[s])
			defer func() { pagesTally[s] += m.done() }()
			sort.Slice(w.ins, func(i, j int) bool { return w.ins[i].id < w.ins[j].id })
			var arrived []wal.Op
			for _, cm := range w.ins {
				if !cm.departed {
					continue
				}
				if err := x.shards[s].Insert(cm.id, cm.new); err != nil {
					// Put the object back in its source shard so the index
					// stays complete; the global table keeps the old point.
					if rerr := x.shards[cm.src].Insert(cm.id, cm.old); rerr != nil {
						err = fmt.Errorf("burtree: cross-shard move of %d failed (%w) and rollback failed: %v", cm.id, err, rerr)
					}
					// Join rather than keep-first: a phase-1 error must not
					// mask an arrival failure (possible object loss).
					errs[s] = errors.Join(errs[s], err)
					continue
				}
				x.mu.Lock()
				x.objects[cm.id] = cm.new
				x.mu.Unlock()
				resMu.Lock()
				res.Applied++
				res.CrossShard++
				if x.shards[s].mem != nil {
					res.Absorbed++
				}
				resMu.Unlock()
				if x.wals != nil {
					arrived = append(arrived, wal.Op{ID: cm.id, X: cm.new.X, Y: cm.new.Y})
				}
			}
			// One record covers this shard's arrivals; replay re-routes
			// each move, re-deriving the cross-shard delete+insert.
			if werr := x.logTo(s, wal.TypeBatch, arrived); werr != nil {
				errs[s] = errors.Join(errs[s], werr)
			}
		}(s, w)
	}
	wg.Wait()
	// Record each shard's offered ops with its measured foreground pages
	// (even on error — the I/O was spent). Departure-only shards record
	// pages with zero histogram ops: their moves were tallied at the
	// destination.
	for s := range x.shards {
		if len(offered[s]) > 0 || pagesTally[s] > 0 {
			x.load.RecordBatch(s, pagesTally[s], offered[s])
			res.PageIO += int(pagesTally[s])
		}
	}
	if joins != nil {
		x.settlePhases(joins, &res, errs)
	}
	for _, e := range errs {
		if e != nil {
			return res, e
		}
	}
	return res, nil
}

// Search returns the ids of all objects inside the window q, scattering
// to the shards overlapping q in parallel and gathering the results.
// Each object is owned by exactly one shard at any instant, but a
// scatter racing a cross-shard move can still see the mover in both its
// shards (delete not yet visited, insert already visited), so the
// gather de-duplicates: every id appears at most once.
func (x *ShardedIndex) Search(q Rect) ([]uint64, error) {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	targets := x.router.ShardsFor(q)
	// Each shard visit is charged its actual page I/O, not a flat count:
	// a wide window over a cold or empty shard costs that shard almost
	// nothing, and the load signal must say so.
	if len(targets) == 1 {
		s := targets[0]
		m := meterShard(x.shards[s])
		out, err := x.shards[s].Search(q)
		x.load.RecordQuery(s, m.done())
		return out, err
	}
	outs := make([][]uint64, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			m := meterShard(x.shards[s])
			outs[i], errs[i] = x.shards[s].Search(q)
			x.load.RecordQuery(s, m.done())
		}(i, s)
	}
	wg.Wait()
	total := 0
	for i := range targets {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(outs[i])
	}
	seen := make(map[uint64]struct{}, total)
	out := make([]uint64, 0, total)
	for i := range targets {
		for _, id := range outs[i] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out, nil
}

// SearchFunc streams the objects inside q to visit; return false to stop
// early. The scatter is sequential in shard order so the callback is
// never invoked concurrently; each shard is visited under its own shared
// granule locks. Each id is visited at most once, even when the scatter
// races a cross-shard move that makes the object surface in two shards.
func (x *ShardedIndex) SearchFunc(q Rect, visit func(id uint64, p Point) bool) error {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	targets := x.router.ShardsFor(q)
	var seen map[uint64]struct{}
	if len(targets) > 1 {
		seen = make(map[uint64]struct{})
	}
	stopped := false
	for _, s := range targets {
		m := meterShard(x.shards[s])
		err := x.shards[s].SearchFunc(q, func(id uint64, p Point) bool {
			if seen != nil {
				if _, dup := seen[id]; dup {
					return true
				}
				seen[id] = struct{}{}
			}
			if !visit(id, p) {
				stopped = true
				return false
			}
			return true
		})
		x.load.RecordQuery(s, m.done())
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Count returns the number of objects inside q. A single-shard window
// counts directly in that shard; a multi-shard window gathers ids and
// counts the distinct ones — summing per-shard counts would double-count
// an object a racing cross-shard move surfaced in two shard visits.
func (x *ShardedIndex) Count(q Rect) (int, error) {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	targets := x.router.ShardsFor(q)
	if len(targets) == 1 {
		s := targets[0]
		m := meterShard(x.shards[s])
		n, err := x.shards[s].Count(q)
		x.load.RecordQuery(s, m.done())
		return n, err
	}
	outs := make([][]uint64, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			m := meterShard(x.shards[s])
			outs[i], errs[i] = x.shards[s].Search(q)
			x.load.RecordQuery(s, m.done())
		}(i, s)
	}
	wg.Wait()
	seen := make(map[uint64]struct{})
	for i := range targets {
		if errs[i] != nil {
			return 0, errs[i]
		}
		for _, id := range outs[i] {
			seen[id] = struct{}{}
		}
	}
	return len(seen), nil
}

// Nearest returns the k objects nearest to p in increasing distance. The
// shards are visited best-first in order of the MinDist from p to each
// shard's responsibility region; the scan stops as soon as the next
// region lies farther than the current k-th neighbour, so on clustered
// queries most shards are never touched. Within each visited shard the
// query holds that shard's whole-tree granule shared — updates elsewhere
// keep running, which is the point of sharding the NN path.
func (x *ShardedIndex) Nearest(p Point, k int) ([]Neighbor, error) {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	if k <= 0 {
		return nil, nil
	}
	type shardDist struct {
		s    int
		dist float64
	}
	order := make([]shardDist, len(x.shards))
	for s := range x.shards {
		order[s] = shardDist{s: s, dist: x.router.Region(s).MinDistPoint(p)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].dist != order[j].dist {
			return order[i].dist < order[j].dist
		}
		return order[i].s < order[j].s
	})
	var best []Neighbor
	for _, sd := range order {
		// Prune only when k candidates are already in hand: with fewer
		// than k gathered (empty or sparse shards — the common state under
		// skew), every remaining shard must still be visited no matter how
		// far its region lies, or the scan would return an under-filled
		// result while farther shards hold real neighbours.
		if len(best) == k && sd.dist > best[k-1].Dist {
			break
		}
		m := meterShard(x.shards[sd.s])
		ns, err := x.shards[sd.s].Nearest(p, k)
		x.load.RecordQuery(sd.s, m.done())
		if err != nil {
			return nil, err
		}
		best = mergeNeighbors(best, ns, k)
	}
	return best, nil
}

// mergeNeighbors merges two ascending neighbour lists, keeping the k
// nearest with deterministic (distance, id) ordering. Ids are
// de-duplicated, keeping the nearest copy: shard visits racing a
// cross-shard move can both report the mover.
func mergeNeighbors(a, b []Neighbor, k int) []Neighbor {
	out := append(a, b...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	seen := make(map[uint64]struct{}, len(out))
	kept := out[:0]
	for _, n := range out {
		if _, dup := seen[n.ID]; dup {
			continue
		}
		seen[n.ID] = struct{}{}
		kept = append(kept, n)
	}
	out = kept
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Len returns the number of indexed objects.
func (x *ShardedIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.objects)
}

// Location returns the last position accepted for the object.
func (x *ShardedIndex) Location(id uint64) (Point, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	p, ok := x.objects[id]
	return p, ok
}

// Stats returns the aggregated physical counters and tree shape (sums
// over the shards; Height is the maximum shard height) plus each shard's
// lock-layer counters.
func (x *ShardedIndex) Stats() (Stats, []ConcurrencyStats) {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	var agg Stats
	cs := make([]ConcurrencyStats, len(x.shards))
	for i, s := range x.shards {
		st, c := s.Stats()
		cs[i] = c
		agg.DiskReads += st.DiskReads
		agg.DiskWrites += st.DiskWrites
		agg.BufferHits += st.BufferHits
		agg.Splits += st.Splits
		agg.Reinserts += st.Reinserts
		agg.Pages += st.Pages
		agg.Size += st.Size
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
		agg.Outcomes.InLeaf += st.Outcomes.InLeaf
		agg.Outcomes.Extended += st.Outcomes.Extended
		agg.Outcomes.Shifted += st.Outcomes.Shifted
		agg.Outcomes.Piggyback += st.Outcomes.Piggyback
		agg.Outcomes.Ascended += st.Outcomes.Ascended
		agg.Outcomes.TopDown += st.Outcomes.TopDown
		agg.Memtable = agg.Memtable.add(st.Memtable)
	}
	return agg, cs
}

// ResetStats zeroes the physical counters of every shard.
func (x *ShardedIndex) ResetStats() {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	for _, s := range x.shards {
		s.ResetStats()
	}
}

// Flush writes all buffered dirty pages of every shard to the simulated
// disk, with the whole index locked exclusively.
func (x *ShardedIndex) Flush() error {
	x.opMu.Lock()
	defer x.opMu.Unlock()
	for _, s := range x.shards {
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants validates every shard plus the sharding invariants:
// the global object table partitions exactly into the shard tables, and
// every object lives in the shard its position routes to. Callers must
// ensure no updates are in flight.
func (x *ShardedIndex) CheckInvariants() error {
	x.opMu.RLock()
	defer x.opMu.RUnlock()
	total := 0
	for i, s := range x.shards {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		total += s.Len()
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	if total != len(x.objects) {
		return fmt.Errorf("burtree: shard sizes sum to %d, global table has %d", total, len(x.objects))
	}
	for id, p := range x.objects {
		s := x.router.ShardOf(p)
		got, ok := x.shards[s].Location(id)
		if !ok {
			return fmt.Errorf("burtree: object %d (at %v) missing from owning shard %d", id, p, s)
		}
		if got != p {
			return fmt.Errorf("burtree: object %d at %v in shard %d, global table says %v", id, got, s, p)
		}
	}
	return nil
}
