package burtree

import (
	"fmt"
	"sync"
	"time"

	"burtree/internal/buffer"
	"burtree/internal/concurrent"
	"burtree/internal/core"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
)

// ConcurrentIndex is the multi-threaded variant of Index: operations are
// isolated with Dynamic-Granular-Locking-style granule locks (paper
// §3.2.2 and §5.4) so bottom-up updates in disjoint regions proceed in
// parallel while top-down work holds the whole tree. It is safe for
// concurrent use by any number of goroutines.
type ConcurrentIndex struct {
	store *pagestore.Store
	io    *stats.IO
	db    *concurrent.DB

	mu      sync.RWMutex
	objects map[uint64]Point
}

// OpenConcurrent creates an empty concurrent index.
func OpenConcurrent(opts Options) (*ConcurrentIndex, error) {
	kind, err := opts.Strategy.kind()
	if err != nil {
		return nil, err
	}
	if opts.PageSize == 0 {
		opts.PageSize = pagestore.DefaultPageSize
	}
	if opts.ExpectedObjects == 0 {
		opts.ExpectedObjects = 1024
	}
	reinsert := opts.ReinsertFraction
	if reinsert == 0 {
		reinsert = 0.3
	}
	if reinsert < 0 {
		reinsert = 0
	}
	lvl := opts.LevelThreshold
	if lvl == 0 {
		lvl = core.UnrestrictedLevels
	}
	io := &stats.IO{}
	store := pagestore.New(opts.PageSize, io)
	pool := buffer.New(store, opts.BufferPages)
	u, err := core.New(pool, core.Options{
		Strategy:          kind,
		Epsilon:           opts.Epsilon,
		DistanceThreshold: opts.DistanceThreshold,
		LevelThreshold:    lvl,
		NoPiggyback:       opts.DisablePiggyback,
		NoSummaryQueries:  opts.DisableSummaryQueries,
		ExpectedObjects:   opts.ExpectedObjects,
		Tree: rtree.Config{
			ReinsertFraction: reinsert,
			Split:            opts.SplitAlgorithm,
		},
	})
	if err != nil {
		return nil, err
	}
	return &ConcurrentIndex{
		store:   store,
		io:      io,
		db:      concurrent.New(u, 32),
		objects: make(map[uint64]Point),
	}, nil
}

// SetIOLatency simulates a per-page-access service time, making
// throughput figures I/O-bound as on the paper's hardware. Zero disables
// the simulation.
func (x *ConcurrentIndex) SetIOLatency(d time.Duration) { x.store.SetLatency(d) }

// Insert adds a new object at p.
func (x *ConcurrentIndex) Insert(id uint64, p Point) error {
	x.mu.Lock()
	if _, ok := x.objects[id]; ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrDuplicateObject, id)
	}
	// Reserve the id before releasing the map lock so concurrent inserts
	// of the same id cannot race; roll back on failure.
	x.objects[id] = p
	x.mu.Unlock()
	if err := x.db.Insert(id, p); err != nil {
		x.mu.Lock()
		delete(x.objects, id)
		x.mu.Unlock()
		return err
	}
	return nil
}

// Update moves an existing object to p. Updates to the same object are
// serialized; updates to different objects run in parallel when the
// strategy can resolve them locally.
func (x *ConcurrentIndex) Update(id uint64, p Point) error {
	x.mu.Lock()
	old, ok := x.objects[id]
	if !ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	x.objects[id] = p
	x.mu.Unlock()
	if err := x.db.Update(id, old, p); err != nil {
		x.mu.Lock()
		x.objects[id] = old
		x.mu.Unlock()
		return err
	}
	return nil
}

// UpdateBatch moves many objects at once through the batched bottom-up
// pipeline. Changes are coalesced to the last position per object and
// grouped by target leaf; each group acquires its granule locks once —
// the union of the members' movement cells plus the group's leaf and
// parent page granules — and is applied in one bottom-up pass under the
// shared latch, so a batch pays one lock acquisition and one leaf
// read/write per group instead of one per object. Changes that need an
// ascent or a top-down pass escalate to the exclusive path exactly as
// Update does.
//
// Every id must already be in the index; an unknown id fails the whole
// batch before anything is applied. A batch is not atomic: concurrent
// readers may observe a partially applied batch, and on error the
// changes before the failure remain applied. Concurrent Update calls on
// ids that are also in the batch race with it (last writer wins);
// callers that need per-object ordering serialize their own access, as
// with Update.
func (x *ConcurrentIndex) UpdateBatch(changes []Change) (BatchResult, error) {
	var res BatchResult
	x.mu.RLock()
	coalesced, dropped, err := coalesceChanges(changes, func(id uint64) (Point, bool) {
		p, ok := x.objects[id]
		return p, ok
	})
	x.mu.RUnlock()
	if err != nil {
		return res, err
	}
	res.Coalesced = dropped
	st, err := x.db.UpdateBatch(coalesced, func(c core.BatchChange) {
		x.mu.Lock()
		x.objects[c.OID] = c.New
		x.mu.Unlock()
		res.Applied++
	})
	res.Groups = st.Groups
	res.GroupResolved = st.GroupResolved
	res.Fallback = st.LocalFallback + st.Sequential
	return res, err
}

// Delete removes an object.
func (x *ConcurrentIndex) Delete(id uint64) error {
	x.mu.Lock()
	old, ok := x.objects[id]
	if !ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	delete(x.objects, id)
	x.mu.Unlock()
	if err := x.db.Delete(id, old); err != nil {
		x.mu.Lock()
		x.objects[id] = old
		x.mu.Unlock()
		return err
	}
	return nil
}

// Count returns the number of objects inside q under shared granule
// locks (phantom-protected at granule granularity).
func (x *ConcurrentIndex) Count(q Rect) (int, error) {
	return x.db.Query(q)
}

// Len returns the number of indexed objects.
func (x *ConcurrentIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.objects)
}

// Location returns the last position accepted for the object. Under
// concurrent updates of the same id the value may be superseded by the
// time the caller uses it; callers that need stable read-modify-write
// semantics serialize their own per-object access.
func (x *ConcurrentIndex) Location(id uint64) (Point, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	p, ok := x.objects[id]
	return p, ok
}

// ConcurrencyStats reports lock-layer behaviour.
type ConcurrencyStats = concurrent.Stats

// Stats returns physical counters, tree shape and lock-layer counters.
func (x *ConcurrentIndex) Stats() (Stats, ConcurrencyStats) {
	s := x.io.Snapshot()
	u := x.db.Updater()
	return Stats{
		DiskReads:  s.Reads,
		DiskWrites: s.Writes,
		BufferHits: s.BufferHits,
		Splits:     s.Splits,
		Reinserts:  s.Reinserts,
		Height:     u.Tree().Height(),
		Pages:      x.store.NumPages(),
		Size:       u.Tree().Size(),
		Outcomes:   u.Outcomes(),
	}, x.db.Stats()
}

// CheckInvariants validates the index; callers must ensure quiescence.
func (x *ConcurrentIndex) CheckInvariants() error {
	u := x.db.Updater()
	if err := u.Err(); err != nil {
		return err
	}
	if err := u.Tree().CheckInvariants(); err != nil {
		return err
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	if u.Tree().Size() != len(x.objects) {
		return fmt.Errorf("burtree: tree size %d != tracked objects %d", u.Tree().Size(), len(x.objects))
	}
	return nil
}
