package burtree

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"burtree/internal/buffer"
	"burtree/internal/concurrent"
	"burtree/internal/core"
	"burtree/internal/memtable"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
	"burtree/internal/wal"
)

// ConcurrentIndex is the multi-threaded variant of Index: operations are
// isolated with Dynamic-Granular-Locking-style granule locks (paper
// §3.2.2 and §5.4) so bottom-up updates in disjoint regions proceed in
// parallel while top-down work holds the whole tree. It offers the full
// Index API — updates, batched updates, window and nearest-neighbour
// queries, bulk loading and snapshots — and is safe for concurrent use
// by any number of goroutines.
//
// Reads run under shared granule locks: a window query locks the grid
// cells covering its window in S mode, so no update can move an object
// into or out of the window while the query scans it (phantom
// protection at granule granularity); a nearest-neighbour query, whose
// footprint cannot be pre-declared, takes the whole-tree granule in S
// mode. Queries therefore observe a consistent snapshot of the region
// they read, and run in parallel with each other and with updates
// elsewhere in the data space.
type ConcurrentIndex struct {
	store *pagestore.Store
	pool  *buffer.Pool
	io    *stats.IO
	db    *concurrent.DB

	mu      sync.RWMutex
	objects map[uint64]Point
	options Options // normalized copy, retained for persistence

	// ckpt is the durability gate: mutating operations hold it shared
	// across apply + log append, Save and Checkpoint hold it exclusively
	// so the snapshot's embedded log sequence is consistent with its
	// contents (no operation is ever caught between applying and
	// logging). Uncontended outside checkpoints.
	ckpt   sync.RWMutex
	wal    *wal.Log
	walSeq uint64

	// mem is the in-memory delta tier when Options.Memtable is enabled
	// (nil otherwise); merge is the background merge-down loop draining
	// it. mergeMu serializes drains (background, checkpoint-time and
	// close-time), and is the outermost of the drain's locks: a drain
	// never takes ckpt, so checkpoints (which hold ckpt exclusively and
	// then drain) cannot deadlock against the background merger.
	mem     *memtable.Table
	mergeMu sync.Mutex
	merge   *merger

	// bgPages counts physical page accesses incurred by background
	// merge-down drains, so foreground cost attribution (the sharded
	// front-end's load metering and BatchResult.PageIO) can subtract
	// deferred work from the window deltas it measures around x.io.
	bgPages atomic.Uint64
}

// pagesNow returns the cumulative physical page accesses (reads +
// writes) this index has performed. Together with BackgroundPages it
// lets callers bracket an operation and attribute the delta as that
// operation's foreground I/O. Under concurrency the delta can include
// pages from overlapping operations on the same index; the attribution
// is per shard either way, so the rebalancer's share signal keeps its
// direction.
func (x *ConcurrentIndex) pagesNow() uint64 {
	return uint64(x.io.Reads() + x.io.Writes())
}

// BackgroundPages returns the cumulative physical page accesses
// incurred by background memtable merge-down drains.
func (x *ConcurrentIndex) BackgroundPages() uint64 { return x.bgPages.Load() }

// OpenConcurrent creates an empty concurrent index. With
// Options.Durability enabled, the durability directory must not
// already hold a snapshot or log segments — resume existing durable
// state with RecoverConcurrent instead.
func OpenConcurrent(opts Options) (*ConcurrentIndex, error) {
	if err := opts.Durability.validate(); err != nil {
		return nil, err
	}
	parts, err := openParts(opts)
	if err != nil {
		return nil, err
	}
	x := &ConcurrentIndex{
		store:   parts.store,
		pool:    parts.pool,
		io:      parts.io,
		db:      concurrent.New(parts.u, 32),
		objects: make(map[uint64]Point),
		options: parts.opts,
	}
	x.ensureMemtable(parts.opts.Memtable)
	if d := opts.Durability; d.enabled() {
		if err := checkFreshDir(d.Dir); err != nil {
			return nil, err
		}
		log, err := wal.Open(d.Dir, d.logOptions(0, nil))
		if err != nil {
			return nil, err
		}
		x.wal = log
	}
	return x, nil
}

// logAppend records an acknowledged mutation, blocking until durable
// under the configured sync policy (concurrent callers piggyback on
// shared fsyncs in group-commit mode). Caller holds ckpt shared.
func (x *ConcurrentIndex) logAppend(typ wal.Type, ops []wal.Op) error {
	if x.wal == nil || len(ops) == 0 {
		return nil
	}
	if x.mem != nil {
		// Memtable mode acknowledges at the log append alone: the
		// background group-commit leader advances the durable horizon,
		// and Checkpoint/Save/Close flush hard. See Options.Memtable.
		if _, err := x.wal.AppendAsync(typ, ops); err != nil {
			return fmt.Errorf("burtree: durability: %w", err)
		}
		return nil
	}
	if _, err := x.wal.Append(typ, ops); err != nil {
		return fmt.Errorf("burtree: durability: %w", err)
	}
	return nil
}

// SetIOLatency simulates a per-page-access service time, making
// throughput figures I/O-bound as on the paper's hardware. Zero disables
// the simulation.
func (x *ConcurrentIndex) SetIOLatency(d time.Duration) { x.store.SetLatency(d) }

// BulkInsert loads many objects at once into an empty index using the
// chosen packing method at ~66% node fill. The whole index is locked
// exclusively for the duration: bulk loading rebuilds the tree from
// scratch, so no reader or writer may observe the intermediate state.
func (x *ConcurrentIndex) BulkInsert(ids []uint64, pts []Point, method PackMethod) error {
	items, objects, err := packItems(ids, pts)
	if err != nil {
		return err
	}
	err = x.db.Exclusive(func(u core.Updater) error {
		x.mu.Lock()
		defer x.mu.Unlock()
		if len(x.objects) != 0 {
			return fmt.Errorf("burtree: BulkInsert on non-empty index")
		}
		if err := bulkLoad(u, items, method); err != nil {
			return err
		}
		x.objects = objects
		return nil
	})
	if err != nil {
		return err
	}
	// With durability on, the snapshot (not per-object log records) is
	// the durable form of a bulk load.
	if x.wal != nil {
		return x.Checkpoint()
	}
	return nil
}

// Checkpoint makes the whole index state durable in one snapshot and
// truncates the log, like Index.Checkpoint. The index is gated
// exclusively for the duration: no operation is caught between
// applying and logging, so the snapshot's embedded log sequence is
// exact.
func (x *ConcurrentIndex) Checkpoint() error {
	if x.wal == nil {
		return errors.New("burtree: Checkpoint requires durability to be enabled")
	}
	x.ckpt.Lock()
	defer x.ckpt.Unlock()
	if err := x.wal.Sync(); err != nil {
		return err
	}
	seq := x.wal.LastSeq()
	path := filepath.Join(x.options.Durability.Dir, snapshotFileName)
	if err := saveToFile(path, x.saveLocked); err != nil {
		return err
	}
	return x.wal.TruncateThrough(seq)
}

// Close stops the background merger and merges any buffered deltas
// down to the tree, then syncs and closes the write-ahead log (no-op
// without durability). Reads keep working; further mutations fail
// their durable append. Close does not checkpoint: recovery replays
// the log onto the last snapshot.
func (x *ConcurrentIndex) Close() error {
	if x.merge != nil {
		x.merge.halt()
	}
	derr := x.drainMemtable()
	if x.wal == nil {
		return derr
	}
	return errors.Join(derr, x.wal.Close())
}

// ensureMemtable installs the delta tier from cfg and starts the
// background merge-down loop; used at OpenConcurrent and when recovery
// re-enables the tier on a loaded snapshot.
func (x *ConcurrentIndex) ensureMemtable(cfg Memtable) {
	cfg = cfg.withDefaults()
	x.options.Memtable = cfg
	if !cfg.Enabled {
		return
	}
	if x.mem == nil {
		x.mem = memtable.New(cfg.config())
	}
	if x.merge == nil {
		x.merge = newMerger()
		x.merge.done.Add(1)
		go x.merge.run(cfg.MaxAge,
			func() bool { return x.mem.NeedsMerge(time.Now()) },
			func() { _ = x.drainMemtable() }) // failure is sticky; surfaces via CheckInvariants/Checkpoint
	}
}

// signalMerge hands the background merger a pass when a write tripped
// the tier's threshold. Never blocks the writer.
func (x *ConcurrentIndex) signalMerge() {
	if x.merge != nil && x.mem.NeedsMerge(time.Now()) {
		x.merge.kick()
	}
}

// drainMemtable merges every buffered delta down to the tree, splitting
// the moves across Memtable.MergeParallelism concurrent group-apply
// chunks. Serialized with other drains by mergeMu; a failure to apply
// an acknowledged delta is sticky — see memtable.Table.Fail. No-op when
// the tier is disabled.
func (x *ConcurrentIndex) drainMemtable() error {
	if x.mem == nil {
		return nil
	}
	x.mergeMu.Lock()
	defer x.mergeMu.Unlock()
	entries := x.mem.BeginDrain()
	if entries == nil {
		return x.mem.Err()
	}
	// The drain's page accesses are background work: deferred I/O from
	// updates acknowledged in earlier windows. Attribute them to bgPages
	// (and the memtable's merge stats) so foreground cost metering can
	// subtract them — charging them to whichever foreground op happens to
	// overlap the drain would re-skew the balance the cost weighting
	// exists to fix. Attributed even on failure: the pages were spent.
	pre := x.pagesNow()
	err := drainEntries(entries, x.db.Delete, x.db.Insert, func(chs []core.BatchChange) error {
		_, err := x.db.UpdateBatch(chs, func(core.BatchChange) {})
		return err
	}, x.options.Memtable.MergeParallelism)
	if d := x.pagesNow() - pre; d > 0 {
		x.bgPages.Add(d)
		x.mem.AddMergePages(d)
	}
	if err != nil {
		x.mem.Fail(err)
		return fmt.Errorf("burtree: memtable merge: %w", err)
	}
	x.mem.EndDrain()
	return nil
}

// Insert adds a new object at p.
func (x *ConcurrentIndex) Insert(id uint64, p Point) error {
	x.ckpt.RLock()
	defer x.ckpt.RUnlock()
	if x.mem != nil {
		if err := validatePoint(p); err != nil {
			return err
		}
		x.mu.Lock()
		if _, ok := x.objects[id]; ok {
			x.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrDuplicateObject, id)
		}
		// The object table and the delta tier transition together under
		// the map lock, so racing writers to the same id absorb their
		// deltas in the same order the table accepts them.
		x.objects[id] = p
		x.mem.Insert(id, p)
		x.mu.Unlock()
		if err := x.logAppend(wal.TypeInsert, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
			// Absorbed but not logged: cancel the absorbed insert — unless
			// a concurrent writer already superseded the entry, in which
			// case its state must survive.
			x.mu.Lock()
			if cur, ok := x.objects[id]; ok && cur == p {
				delete(x.objects, id)
				x.mem.Delete(id, p)
			}
			x.mu.Unlock()
			return err
		}
		x.signalMerge()
		return nil
	}
	x.mu.Lock()
	if _, ok := x.objects[id]; ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrDuplicateObject, id)
	}
	// Reserve the id before releasing the map lock so concurrent inserts
	// of the same id cannot race; roll back on failure.
	x.objects[id] = p
	x.mu.Unlock()
	if err := x.db.Insert(id, p); err != nil {
		// Compare-and-delete: remove the reservation only if the entry
		// still holds the value this call wrote — a concurrent writer may
		// have superseded it in the meantime, and its entry must survive.
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			delete(x.objects, id)
		}
		x.mu.Unlock()
		return err
	}
	if err := x.logAppend(wal.TypeInsert, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
		// Applied but not logged: roll the tree and table back
		// (compare-and-delete, as in the apply-error path above).
		err = errors.Join(err, x.db.Delete(id, p))
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			delete(x.objects, id)
		}
		x.mu.Unlock()
		return err
	}
	return nil
}

// Update moves an existing object to p. Updates to different objects
// run in parallel when the strategy can resolve them locally. Updates
// to the same object are last-writer-wins on the object table only;
// callers that race same-object updates can see one fail against the
// other's tree state, so callers that need per-object ordering
// serialize their own access (disjoint id ranges per writer, or a
// striped lock, as the examples do).
func (x *ConcurrentIndex) Update(id uint64, p Point) error {
	x.ckpt.RLock()
	defer x.ckpt.RUnlock()
	if x.mem != nil {
		if err := validatePoint(p); err != nil {
			return err
		}
		x.mu.Lock()
		old, ok := x.objects[id]
		if !ok {
			x.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrUnknownObject, id)
		}
		x.objects[id] = p
		x.mem.Update(id, p, old)
		x.mu.Unlock()
		if err := x.logAppend(wal.TypeBatch, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
			// Absorbed but not logged: re-absorb the old position unless a
			// newer concurrent write superseded this one.
			x.mu.Lock()
			if cur, ok := x.objects[id]; ok && cur == p {
				x.objects[id] = old
				x.mem.Update(id, old, p)
			}
			x.mu.Unlock()
			return err
		}
		x.signalMerge()
		return nil
	}
	x.mu.Lock()
	old, ok := x.objects[id]
	if !ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	x.objects[id] = p
	x.mu.Unlock()
	if err := x.db.Update(id, old, p); err != nil {
		// Compare-and-restore: put the old position back only if the
		// entry still holds the value this call wrote. An unconditional
		// restore could clobber a newer concurrent write that succeeded
		// between our failure and the rollback, diverging the object
		// table from the tree.
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	if err := x.logAppend(wal.TypeBatch, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
		// Applied but not logged: move the object back (compare-and-
		// restore, as in the apply-error path above).
		err = errors.Join(err, x.db.Update(id, p, old))
		x.mu.Lock()
		if cur, ok := x.objects[id]; ok && cur == p {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	return nil
}

// UpdateBatch moves many objects at once through the batched bottom-up
// pipeline. Changes are coalesced to the last position per object and
// grouped by target leaf; each group acquires its granule locks once —
// the union of the members' movement cells plus the group's leaf and
// parent page granules — and is applied in one bottom-up pass under the
// shared latch, so a batch pays one lock acquisition and one leaf
// read/write per group instead of one per object. Changes that need an
// ascent or a top-down pass escalate to the exclusive path exactly as
// Update does.
//
// Every id must already be in the index; an unknown id fails the whole
// batch before anything is applied. A batch is not atomic: concurrent
// readers may observe a partially applied batch, and on error the
// changes before the failure remain applied. Concurrent Update calls on
// ids that are also in the batch race with it (last writer wins);
// callers that need per-object ordering serialize their own access, as
// with Update.
func (x *ConcurrentIndex) UpdateBatch(changes []Change) (BatchResult, error) {
	x.ckpt.RLock()
	defer x.ckpt.RUnlock()
	var res BatchResult
	if x.mem != nil {
		return x.absorbBatch(changes, res)
	}
	x.mu.RLock()
	coalesced, dropped, err := coalesceChanges(changes, func(id uint64) (Point, bool) {
		p, ok := x.objects[id]
		return p, ok
	})
	x.mu.RUnlock()
	if err != nil {
		return res, err
	}
	res.Coalesced = dropped
	var applied []wal.Op
	prePages, preBG := x.pagesNow(), x.bgPages.Load()
	st, err := x.db.UpdateBatch(coalesced, func(c core.BatchChange) {
		x.mu.Lock()
		x.objects[c.OID] = c.New
		x.mu.Unlock()
		res.Applied++
		if x.wal != nil {
			applied = append(applied, wal.Op{ID: c.OID, X: c.New.X, Y: c.New.Y})
		}
	})
	res.Groups = st.Groups
	res.GroupResolved = st.GroupResolved
	res.Fallback = st.LocalFallback + st.Sequential
	res.PageIO = foregroundPages(x.pagesNow()-prePages, x.bgPages.Load()-preBG)
	// One record covers the applied prefix — all of the batch on
	// success, exactly the changes before the failure otherwise.
	if werr := x.logAppend(wal.TypeBatch, applied); werr != nil {
		return res, errors.Join(err, werr)
	}
	return res, err
}

// Delete removes an object.
func (x *ConcurrentIndex) Delete(id uint64) error {
	x.ckpt.RLock()
	defer x.ckpt.RUnlock()
	if x.mem != nil {
		x.mu.Lock()
		old, ok := x.objects[id]
		if !ok {
			x.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrUnknownObject, id)
		}
		delete(x.objects, id)
		x.mem.Delete(id, old)
		x.mu.Unlock()
		if err := x.logAppend(wal.TypeDelete, []wal.Op{{ID: id}}); err != nil {
			// Absorbed but not logged: resurrect the object unless a
			// concurrent Insert re-created the id.
			x.mu.Lock()
			if _, ok := x.objects[id]; !ok {
				x.objects[id] = old
				x.mem.Insert(id, old)
			}
			x.mu.Unlock()
			return err
		}
		x.signalMerge()
		return nil
	}
	x.mu.Lock()
	old, ok := x.objects[id]
	if !ok {
		x.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	delete(x.objects, id)
	x.mu.Unlock()
	if err := x.db.Delete(id, old); err != nil {
		// Compare-and-restore: re-add the entry only if the id is still
		// absent — a concurrent Insert of the same id may have succeeded
		// after our removal, and its entry must survive.
		x.mu.Lock()
		if _, ok := x.objects[id]; !ok {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	if err := x.logAppend(wal.TypeDelete, []wal.Op{{ID: id}}); err != nil {
		// Applied but not logged: resurrect the object in tree and table
		// (compare-and-restore, as in the apply-error path above).
		err = errors.Join(err, x.db.Insert(id, old))
		x.mu.Lock()
		if _, ok := x.objects[id]; !ok {
			x.objects[id] = old
		}
		x.mu.Unlock()
		return err
	}
	return nil
}

// absorbBatch is the memtable-mode tail of UpdateBatch: the batch is
// coalesced and absorbed into the delta tier atomically under the map
// lock — racing writers see either none or all of it at the ack level
// — then logged as one record. Caller holds ckpt shared.
func (x *ConcurrentIndex) absorbBatch(changes []Change, res BatchResult) (BatchResult, error) {
	x.mu.Lock()
	coalesced, dropped, err := coalesceChanges(changes, func(id uint64) (Point, bool) {
		p, ok := x.objects[id]
		return p, ok
	})
	if err == nil {
		for _, c := range coalesced {
			if err = validatePoint(c.New); err != nil {
				break
			}
		}
	}
	if err != nil {
		x.mu.Unlock()
		return res, err
	}
	applied := make([]wal.Op, 0, len(coalesced))
	for _, c := range coalesced {
		x.objects[c.OID] = c.New
		x.mem.Update(c.OID, c.New, c.Old)
		applied = append(applied, wal.Op{ID: c.OID, X: c.New.X, Y: c.New.Y})
	}
	x.mu.Unlock()
	res.Coalesced = dropped
	res.Applied = len(coalesced)
	res.Absorbed = len(coalesced)
	if err := x.logAppend(wal.TypeBatch, applied); err != nil {
		// Absorbed but not logged: unwind each delta (compare-and-restore
		// per object — concurrent writers that superseded an entry keep
		// theirs), so the failed batch acks nothing.
		x.mu.Lock()
		for _, c := range coalesced {
			if cur, ok := x.objects[c.OID]; ok && cur == c.New {
				x.objects[c.OID] = c.Old
				x.mem.Update(c.OID, c.Old, c.New)
			}
		}
		x.mu.Unlock()
		res.Applied = 0
		res.Absorbed = 0
		return res, err
	}
	x.signalMerge()
	return res, nil
}

// Search returns the ids of all objects inside the window q, under
// shared granule locks covering the window (phantom-protected at
// granule granularity).
func (x *ConcurrentIndex) Search(q Rect) ([]uint64, error) {
	var out []uint64
	err := x.SearchFunc(q, func(id uint64, p Point) bool {
		out = append(out, id)
		return true
	})
	return out, err
}

// SearchFunc streams the objects inside q to visit; return false to
// stop early. The visit callback runs with the query's shared locks
// held: it must be fast and must not call back into the index, or
// updates to the locked region stall behind it.
func (x *ConcurrentIndex) SearchFunc(q Rect, visit func(id uint64, p Point) bool) error {
	if x.mem != nil {
		// The overlay snapshot is taken before the tree scan: a merge
		// completing in between leaves its objects masked in the scan and
		// reported from the overlay, never missed (see overlaySearch). The
		// overlay portion of the results streams after the tree's shared
		// locks are released.
		if overlay := x.mem.Snapshot(); overlay != nil {
			return overlaySearch(overlay, q, func(emit func(uint64, Rect) bool) error {
				return x.db.Search(q, emit)
			}, visit)
		}
	}
	return x.db.Search(q, func(oid uint64, r Rect) bool {
		return visit(oid, Point{X: r.MinX, Y: r.MinY})
	})
}

// Count returns the number of objects inside q under shared granule
// locks (phantom-protected at granule granularity). With the delta
// tier enabled, buffered writes count through the overlay.
func (x *ConcurrentIndex) Count(q Rect) (int, error) {
	if x.mem != nil && x.mem.Len() > 0 {
		n := 0
		err := x.SearchFunc(q, func(uint64, Point) bool { n++; return true })
		return n, err
	}
	return x.db.Query(q)
}

// Nearest returns the k objects nearest to p in increasing distance.
// The traversal's footprint cannot be declared up front, so the query
// holds the whole-tree granule shared: it runs in parallel with other
// reads but excludes updates for its duration.
func (x *ConcurrentIndex) Nearest(p Point, k int) ([]Neighbor, error) {
	if x.mem != nil {
		if overlay := x.mem.Snapshot(); overlay != nil {
			return overlayNearest(overlay, p, k, func(k int) ([]rtree.Neighbor, error) {
				return x.db.Nearest(p, k)
			})
		}
	}
	res, err := x.db.Nearest(p, k)
	if err != nil {
		return nil, err
	}
	return neighborsFromTree(res), nil
}

// Len returns the number of indexed objects.
func (x *ConcurrentIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.objects)
}

// Location returns the last position accepted for the object. Under
// concurrent updates of the same id the value may be superseded by the
// time the caller uses it; callers that need stable read-modify-write
// semantics serialize their own per-object access.
func (x *ConcurrentIndex) Location(id uint64) (Point, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	p, ok := x.objects[id]
	return p, ok
}

// ConcurrencyStats reports lock-layer behaviour.
type ConcurrencyStats = concurrent.Stats

// Stats returns physical counters, tree shape and lock-layer counters.
// The snapshot is taken under the shared physical latch, so the tree
// shape values are mutually consistent; the atomic I/O counters may
// include operations still in their lock-acquisition phase.
func (x *ConcurrentIndex) Stats() (Stats, ConcurrencyStats) {
	var st Stats
	x.db.View(func(u core.Updater) {
		s := x.io.Snapshot()
		st = Stats{
			DiskReads:  s.Reads,
			DiskWrites: s.Writes,
			BufferHits: s.BufferHits,
			Splits:     s.Splits,
			Reinserts:  s.Reinserts,
			Height:     u.Tree().Height(),
			Pages:      x.store.NumPages(),
			Size:       u.Tree().Size(),
			Outcomes:   u.Outcomes(),
			Memtable:   memStatsOf(x.mem),
		}
	})
	return st, x.db.Stats()
}

// ResetStats zeroes the physical counters (tree shape is unaffected).
// Operations in flight keep counting after the reset point.
func (x *ConcurrentIndex) ResetStats() { x.io.Reset() }

// Flush writes all buffered dirty pages to the simulated disk, with the
// index locked exclusively so no update is mid-way through a multi-page
// change when the pages go out.
func (x *ConcurrentIndex) Flush() error {
	return x.db.Exclusive(func(core.Updater) error { return x.pool.Flush() })
}

// CheckInvariants validates the index. It holds the shared latch for the
// tree walk, so concurrent readers keep running, but callers must still
// ensure no updates are in flight: the tree/object-table size comparison
// is only meaningful at a quiescent point.
func (x *ConcurrentIndex) CheckInvariants() error {
	// Holding mergeMu excludes drains for the duration, so the delta
	// overlay and the tree are compared at a point where no generation
	// is half-applied.
	if x.mem != nil {
		x.mergeMu.Lock()
		defer x.mergeMu.Unlock()
	}
	var err error
	x.db.View(func(u core.Updater) {
		if err = u.Err(); err != nil {
			return
		}
		if err = u.Tree().CheckInvariants(); err != nil {
			return
		}
		x.mu.RLock()
		defer x.mu.RUnlock()
		if x.mem != nil {
			err = checkMemOverlay(x.mem, x.objects, u.Tree().Size())
			return
		}
		if u.Tree().Size() != len(x.objects) {
			err = fmt.Errorf("burtree: tree size %d != tracked objects %d", u.Tree().Size(), len(x.objects))
		}
	})
	return err
}
