package burtree

import (
	"errors"
	"sync"
	"time"

	"burtree/internal/shard"
	"burtree/internal/wal"
)

// This file implements hot-object phase batching for ShardedIndex.
// Under extreme skew a handful of Hilbert cells absorb most of the
// update stream, and every caller's batch pays its own lock
// acquisition, leaf read and leaf write against the same hot leaf —
// the leaf ping-pongs between callers. When the rebalancer's sampling
// window finds a cell whose weighted load exceeds the configured
// threshold (RebalanceOptions.HotCellFactor), updates targeting that
// cell are diverted through a per-shard combiner: the first caller of
// a phase becomes its leader, concurrent callers append their hot
// changes to the open phase, and after a short accumulation window
// (RebalanceOptions.PhaseWindow) the leader applies the combined
// changes as one batch through the shard's ordinary stay path — one
// lock acquisition and one leaf pass per phase instead of one per
// caller. Followers wait for the leader's apply and share its error,
// exactly like the WAL group-commit leader shares its sync.

// hotCellSet is the set of phase-batched cell keys, swapped atomically
// so the batch routing loop reads it with one pointer load (nil ⇒
// phase batching off ⇒ zero cost on the update path).
type hotCellSet map[uint64]struct{}

// maxHotCells bounds the hot set: phase batching targets the few cells
// that dominate the histogram, and a large set would divert general
// traffic into needless serialization.
const maxHotCells = 16

// refreshHotCells recomputes the hot-cell set from one sampling
// window's weighted cell histogram. Called by Rebalance on every
// Sample; outside rebalancing (PhaseWindow off, or a window too quiet
// to judge) the set is cleared or kept as-is respectively.
func (x *ShardedIndex) refreshHotCells(o RebalanceOptions, cells []uint64, ops uint64) {
	if o.PhaseWindow <= 0 {
		x.hotCells.Store(nil)
		x.phaseWin.Store(0)
		return
	}
	x.phaseWin.Store(int64(o.PhaseWindow))
	if ops < o.MinOps {
		return // too quiet to re-judge; keep the current set
	}
	var total uint64
	for _, c := range cells {
		total += c
	}
	if total == 0 {
		return
	}
	threshold := o.HotCellFactor * float64(total) / float64(shard.NumCells)
	hs := make(hotCellSet)
	for cell, c := range cells {
		if float64(c) > threshold {
			hs[uint64(cell)] = struct{}{}
		}
	}
	for len(hs) > maxHotCells {
		// Evict the lightest member so the set keeps only the dominant
		// cells; len(hs) is tiny, so the repeated min scan is cheap.
		coldest, coldestLoad := uint64(0), ^uint64(0)
		for cell := range hs {
			if cells[cell] < coldestLoad {
				coldest, coldestLoad = cell, cells[cell]
			}
		}
		delete(hs, coldest)
	}
	if len(hs) == 0 {
		x.hotCells.Store(nil)
		return
	}
	x.hotCells.Store(&hs)
}

// HotCells reports the cells currently routed through phase batching
// (diagnostics; empty when phase batching is off or nothing is hot).
func (x *ShardedIndex) HotCells() []uint64 {
	hs := x.hotCells.Load()
	if hs == nil {
		return nil
	}
	out := make([]uint64, 0, len(*hs))
	for cell := range *hs {
		out = append(out, cell)
	}
	return out
}

// phaseBatch is one open phase: the changes accumulated across callers
// and the completion the followers wait on.
type phaseBatch struct {
	changes []Change
	callers int
	done    chan struct{}
	res     BatchResult
	err     error
}

// phaseCombiner coalesces hot-cell updates across callers for one
// shard. The mutex only covers phase bookkeeping (pointer swap and
// slice append), never tree work: the leader applies the detached
// phase outside the lock.
type phaseCombiner struct {
	mu  sync.Mutex
	cur *phaseBatch
}

// join adds the caller's hot changes to the shard's open phase,
// opening one if none is accumulating. The returned lead flag makes
// the caller this phase's leader: it must apply the phase (via
// leadPhase) after its accumulation window. This is the per-op buffer
// path — one mutex hold and one slice append per caller.
//
//burlint:hotpath
func (c *phaseCombiner) join(changes []Change) (ph *phaseBatch, lead bool) {
	c.mu.Lock()
	ph = c.cur
	if ph == nil {
		ph = &phaseBatch{done: make(chan struct{})}
		c.cur = ph
		lead = true
	}
	ph.changes = append(ph.changes, changes...)
	ph.callers++
	c.mu.Unlock()
	return ph, lead
}

// detach closes the phase for new joiners; the leader owns ph.changes
// afterwards.
func (c *phaseCombiner) detach(ph *phaseBatch) {
	c.mu.Lock()
	if c.cur == ph {
		c.cur = nil
	}
	c.mu.Unlock()
}

// phaseJoin tracks one caller's participation in a shard's phase.
type phaseJoin struct {
	s    int
	ph   *phaseBatch
	n    int // this caller's change count in the phase
	lead bool
}

// joinPhases enters each non-empty per-shard hot slice into its
// combiner, returning the joins the caller must settle after its
// ordinary work. Caller holds opMu shared.
func (x *ShardedIndex) joinPhases(hotWork [][]Change) []phaseJoin {
	var joins []phaseJoin
	for s, hc := range hotWork {
		if len(hc) == 0 {
			continue
		}
		ph, lead := x.combiners[s].join(hc)
		joins = append(joins, phaseJoin{s: s, ph: ph, n: len(hc), lead: lead})
	}
	return joins
}

// settlePhases completes the caller's joined phases: one accumulation
// window for all the phases it leads, then each led phase is detached
// and applied, then every join is awaited and folded into res. The
// caller holds opMu shared throughout, so a leader's sleep is bounded
// and an exclusive-gate acquirer (Save, Rebalance) waits at most one
// window. Leaders close their phase's done channel unconditionally, so
// follower waits always terminate.
func (x *ShardedIndex) settlePhases(joins []phaseJoin, res *BatchResult, errs []error) {
	leads := false
	for _, j := range joins {
		leads = leads || j.lead
	}
	if leads {
		if win := time.Duration(x.phaseWin.Load()); win > 0 {
			time.Sleep(win)
		}
		for _, j := range joins {
			if !j.lead {
				continue
			}
			x.combiners[j.s].detach(j.ph)
			j.ph.res, j.ph.err = x.applyPhase(j.s, j.ph.changes)
			close(j.ph.done)
		}
	}
	for _, j := range joins {
		<-j.ph.done
		if j.ph.err != nil {
			errs[j.s] = errors.Join(errs[j.s], j.ph.err)
		}
		if j.lead {
			// The phase's Applied covers every caller's changes, but the
			// followers report theirs as Combined — count only the
			// leader's own here so Applied+Combined summed across callers
			// equals the changes offered. Clamped: when callers' changes
			// coalesce across the phase (same hot id from two callers),
			// the distinct-id count can drop below the followers' share.
			own := j.ph.res.Applied - (len(j.ph.changes) - j.n)
			if own < 0 {
				own = 0
			}
			res.Applied += own
			res.Coalesced += j.ph.res.Coalesced
			res.Groups += j.ph.res.Groups
			res.GroupResolved += j.ph.res.GroupResolved
			res.Fallback += j.ph.res.Fallback
			res.Absorbed += j.ph.res.Absorbed
			res.PageIO += j.ph.res.PageIO
		} else {
			// The leader's result accounted this caller's changes; report
			// them here as combined so the caller's Applied+Combined still
			// sums to its end-to-end total.
			res.Combined += j.n
		}
	}
}

// applyPhase applies one detached phase's combined changes to shard s
// through the ordinary stay path: the shard's batched bottom-up
// UpdateBatch, the global object-table reconcile, the shard's WAL
// record, and cost-weighted load accounting for the measured pages.
// Caller (the phase leader) holds opMu shared.
func (x *ShardedIndex) applyPhase(s int, changes []Change) (BatchResult, error) {
	sh := x.shards[s]
	m := meterShard(sh)
	var res BatchResult
	br, err := sh.UpdateBatch(changes)
	res.Applied = br.Applied
	res.Coalesced = br.Coalesced
	res.Groups = br.Groups
	res.GroupResolved = br.GroupResolved
	res.Fallback = br.Fallback
	res.Absorbed = br.Absorbed
	// Reconcile the global table with whatever the shard now holds and
	// collect the log record, exactly as the phase-1 stay path does.
	// Changes from different callers may target the same object; the
	// shard coalesced them, so Location reports the survivor.
	var applied []wal.Op
	x.mu.Lock()
	for _, c := range changes {
		if p, ok := sh.Location(c.ID); ok {
			x.objects[c.ID] = p
			if x.wals != nil && p == c.To {
				applied = append(applied, wal.Op{ID: c.ID, X: p.X, Y: p.Y})
			}
		}
	}
	x.mu.Unlock()
	if werr := x.logTo(s, wal.TypeBatch, applied); werr != nil {
		err = errors.Join(err, werr)
	}
	pages := m.done()
	res.PageIO = int(pages)
	// The phase's ops were deducted from each caller's offered tally at
	// divert time; charge them here with the measured pages.
	var cells []shard.CellCount
	for _, c := range changes {
		cells = addCellCount(cells, shard.CellKey(c.To), 1)
	}
	x.load.RecordBatch(s, pages, cells)
	return res, err
}
