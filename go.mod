module burtree

go 1.24
