package burtree

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func openTest(t testing.TB, s Strategy) *Index {
	t.Helper()
	x, err := Open(Options{Strategy: s, ExpectedObjects: 4000, BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func allFacadeStrategies() []Strategy {
	return []Strategy{TopDown, LocalizedBottomUp, GeneralizedBottomUp}
}

func TestOpenRejectsUnknownStrategy(t *testing.T) {
	if _, err := Open(Options{Strategy: Strategy(42)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestInsertUpdateDeleteLifecycle(t *testing.T) {
	for _, s := range allFacadeStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			x := openTest(t, s)
			if err := x.Insert(1, Point{X: 0.25, Y: 0.25}); err != nil {
				t.Fatal(err)
			}
			if err := x.Insert(1, Point{X: 0.5, Y: 0.5}); !errors.Is(err, ErrDuplicateObject) {
				t.Fatalf("duplicate insert err = %v", err)
			}
			if err := x.Update(2, Point{X: 0.5, Y: 0.5}); !errors.Is(err, ErrUnknownObject) {
				t.Fatalf("unknown update err = %v", err)
			}
			if err := x.Update(1, Point{X: 0.75, Y: 0.75}); err != nil {
				t.Fatal(err)
			}
			if p, ok := x.Location(1); !ok || p != (Point{X: 0.75, Y: 0.75}) {
				t.Fatalf("Location = %v, %v", p, ok)
			}
			ids, err := x.Search(NewRect(0.7, 0.7, 0.8, 0.8))
			if err != nil || len(ids) != 1 || ids[0] != 1 {
				t.Fatalf("search = %v, %v", ids, err)
			}
			if err := x.Delete(1); err != nil {
				t.Fatal(err)
			}
			if err := x.Delete(1); !errors.Is(err, ErrUnknownObject) {
				t.Fatalf("double delete err = %v", err)
			}
			if x.Len() != 0 {
				t.Fatalf("Len = %d", x.Len())
			}
			if err := x.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFacadeRandomWorkload(t *testing.T) {
	for _, s := range allFacadeStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			x := openTest(t, s)
			rng := rand.New(rand.NewSource(42))
			const n = 2000
			for i := 0; i < n; i++ {
				if err := x.Insert(uint64(i), Point{X: rng.Float64(), Y: rng.Float64()}); err != nil {
					t.Fatal(err)
				}
			}
			for step := 0; step < 6000; step++ {
				id := uint64(rng.Intn(n))
				p, _ := x.Location(id)
				np := Point{X: p.X + (rng.Float64()-0.5)*0.05, Y: p.Y + (rng.Float64()-0.5)*0.05}
				if err := x.Update(id, np); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if err := x.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Oracle queries.
			for q := 0; q < 25; q++ {
				cx, cy := rng.Float64(), rng.Float64()
				window := NewRect(cx, cy, cx+rng.Float64()*0.1, cy+rng.Float64()*0.1)
				got, err := x.Search(window)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				var want []uint64
				for id := 0; id < n; id++ {
					if p, _ := x.Location(uint64(id)); window.ContainsPoint(p) {
						want = append(want, uint64(id))
					}
				}
				if len(got) != len(want) {
					t.Fatalf("query %v: %d results, want %d", window, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("query %v: result %d mismatch", window, i)
					}
				}
			}
			st := x.Stats()
			if st.Size != n || st.Height < 2 || st.DiskReads == 0 {
				t.Fatalf("stats = %+v", st)
			}
			if st.Outcomes.Total() != 6000 {
				t.Fatalf("outcomes total = %d", st.Outcomes.Total())
			}
		})
	}
}

func TestCountAndSearchFunc(t *testing.T) {
	x := openTest(t, GeneralizedBottomUp)
	for i := 0; i < 100; i++ {
		if err := x.Insert(uint64(i), Point{X: float64(i) / 100, Y: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := x.Count(NewRect(0, 0, 0.5, 1))
	if err != nil || n != 51 { // x = 0.00 .. 0.50 inclusive
		t.Fatalf("Count = %d, %v; want 51", n, err)
	}
	// Early stop.
	seen := 0
	err = x.SearchFunc(NewRect(0, 0, 1, 1), func(uint64, Point) bool {
		seen++
		return seen < 10
	})
	if err != nil || seen != 10 {
		t.Fatalf("early stop saw %d, err %v", seen, err)
	}
}

func TestNearestFacade(t *testing.T) {
	x := openTest(t, GeneralizedBottomUp)
	pts := []Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}, {X: 0.9, Y: 0.9}, {X: 0.5, Y: 0.5}}
	for i, p := range pts {
		if err := x.Insert(uint64(i), p); err != nil {
			t.Fatal(err)
		}
	}
	nb, err := x.Nearest(Point{X: 0.12, Y: 0.12}, 2)
	if err != nil || len(nb) != 2 {
		t.Fatalf("Nearest = %v, %v", nb, err)
	}
	if nb[0].ID != 0 || nb[1].ID != 1 {
		t.Fatalf("neighbors = %+v", nb)
	}
}

func TestStatsResetAndFlush(t *testing.T) {
	x := openTest(t, TopDown)
	if err := x.Insert(1, Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := x.Flush(); err != nil {
		t.Fatal(err)
	}
	if x.Stats().DiskWrites == 0 {
		t.Fatal("no writes recorded")
	}
	x.ResetStats()
	if s := x.Stats(); s.DiskReads != 0 || s.DiskWrites != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
	if x.Stats().Size != 1 {
		t.Fatal("reset clobbered tree state")
	}
}

func TestStrategyNames(t *testing.T) {
	if TopDown.String() != "TopDown" ||
		LocalizedBottomUp.String() != "LocalizedBottomUp" ||
		GeneralizedBottomUp.String() != "GeneralizedBottomUp" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy name empty")
	}
}

func TestConcurrentIndex(t *testing.T) {
	x, err := OpenConcurrent(Options{Strategy: GeneralizedBottomUp, ExpectedObjects: 2000, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 1000
	for i := 0; i < n; i++ {
		if err := x.Insert(uint64(i), Point{X: rng.Float64(), Y: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 100)))
			for i := 0; i < 200; i++ {
				if r.Float64() < 0.6 {
					id := uint64(w*100 + r.Intn(100)) // disjoint id ranges per worker
					np := Point{X: r.Float64(), Y: r.Float64()}
					if err := x.Update(id, np); err != nil {
						t.Error(err)
						return
					}
				} else {
					cx, cy := r.Float64(), r.Float64()
					if _, err := x.Count(NewRect(cx, cy, cx+0.05, cy+0.05)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if x.Len() != n {
		t.Fatalf("Len = %d", x.Len())
	}
	st, cs := x.Stats()
	if st.Size != n || cs.Updates == 0 || cs.Queries == 0 {
		t.Fatalf("stats = %+v / %+v", st, cs)
	}
	if cs.Local == 0 {
		t.Fatal("no updates took the fine-grained path")
	}
}

func TestConcurrentIndexErrors(t *testing.T) {
	x, err := OpenConcurrent(Options{Strategy: TopDown})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Update(5, Point{}); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("unknown update err = %v", err)
	}
	if err := x.Insert(5, Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(5, Point{X: 0.5, Y: 0.5}); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("duplicate insert err = %v", err)
	}
	if err := x.Delete(9); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("unknown delete err = %v", err)
	}
	if err := x.Delete(5); err != nil {
		t.Fatal(err)
	}
}

func TestBulkInsert(t *testing.T) {
	for _, method := range []PackMethod{PackSTR, PackHilbert} {
		x := openTest(t, GeneralizedBottomUp)
		rng := rand.New(rand.NewSource(9))
		const n = 3000
		ids := make([]uint64, n)
		pts := make([]Point, n)
		for i := range ids {
			ids[i] = uint64(i)
			pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
		}
		if err := x.BulkInsert(ids, pts, method); err != nil {
			t.Fatal(err)
		}
		if x.Len() != n {
			t.Fatalf("Len = %d", x.Len())
		}
		if err := x.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Bottom-up updates work immediately after a bulk load (hash and
		// summary were populated by the load).
		for step := 0; step < 1500; step++ {
			id := uint64(rng.Intn(n))
			p, _ := x.Location(id)
			if err := x.Update(id, Point{X: p.X + 0.002, Y: p.Y + 0.002}); err != nil {
				t.Fatal(err)
			}
		}
		if err := x.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		out := x.Stats().Outcomes
		if out.InLeaf == 0 {
			t.Fatalf("no in-leaf updates after %v bulk load: %+v", method, out)
		}
	}
}

func TestBulkInsertErrors(t *testing.T) {
	x := openTest(t, TopDown)
	if err := x.BulkInsert([]uint64{1, 2}, []Point{{X: 0.1, Y: 0.1}}, PackSTR); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := x.Insert(5, Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := x.BulkInsert([]uint64{1}, []Point{{X: 0.1, Y: 0.1}}, PackSTR); err == nil {
		t.Fatal("bulk insert into non-empty index accepted")
	}
}
