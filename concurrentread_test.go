package burtree

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func openConcurrentTest(t testing.TB, s Strategy) *ConcurrentIndex {
	t.Helper()
	x, err := OpenConcurrent(Options{Strategy: s, ExpectedObjects: 4000, BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// bulkLoadConcurrent fills a concurrent index with n deterministic
// uniform points and returns them.
func bulkLoadConcurrent(t testing.TB, x *ConcurrentIndex, n int, seed int64) []Point {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uint64, n)
	pts := make([]Point, n)
	for i := range ids {
		ids[i] = uint64(i)
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	if err := x.BulkInsert(ids, pts, PackSTR); err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestConcurrentReadWriteStress mixes every operation the index offers
// from many goroutines; it exists to run under -race. Correctness of
// the surviving state is checked after quiescence.
func TestConcurrentReadWriteStress(t *testing.T) {
	for _, s := range []Strategy{TopDown, GeneralizedBottomUp} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			const n = 1200
			x := openConcurrentTest(t, s)
			bulkLoadConcurrent(t, x, n, 7)

			var wg sync.WaitGroup
			errCh := make(chan error, 16)
			fail := func(err error) {
				select {
				case errCh <- err:
				default:
				}
			}

			// Updaters: single moves, each worker on a disjoint id range
			// (the index's contract: per-object ordering is the caller's).
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < 250; i++ {
						id := uint64(w*300 + rng.Intn(300))
						p, ok := x.Location(id)
						if !ok {
							continue
						}
						np := Point{X: p.X + (rng.Float64()-0.5)*0.02, Y: p.Y + (rng.Float64()-0.5)*0.02}
						if err := x.Update(id, np); err != nil {
							fail(err)
							return
						}
					}
				}(w)
			}

			// Batch updater, on its own id range for the same reason.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(200))
				for b := 0; b < 20; b++ {
					changes := make([]Change, 0, 32)
					for i := 0; i < 32; i++ {
						id := uint64(900 + rng.Intn(n-900))
						p, ok := x.Location(id)
						if !ok {
							continue
						}
						changes = append(changes, Change{ID: id, To: Point{
							X: p.X + (rng.Float64()-0.5)*0.02, Y: p.Y + (rng.Float64()-0.5)*0.02}})
					}
					if _, err := x.UpdateBatch(changes); err != nil {
						fail(err)
						return
					}
				}
			}()

			// Window searches + counts.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(300 + w)))
					for i := 0; i < 150; i++ {
						cx, cy := rng.Float64(), rng.Float64()
						win := NewRect(cx, cy, cx+0.05, cy+0.05)
						if i%2 == 0 {
							if _, err := x.Search(win); err != nil {
								fail(err)
								return
							}
						} else if _, err := x.Count(win); err != nil {
							fail(err)
							return
						}
					}
				}(w)
			}

			// Nearest-neighbour queries.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(400))
				for i := 0; i < 80; i++ {
					res, err := x.Nearest(Point{X: rng.Float64(), Y: rng.Float64()}, 5)
					if err != nil {
						fail(err)
						return
					}
					for j := 1; j < len(res); j++ {
						if res[j].Dist < res[j-1].Dist {
							fail(errors.New("nearest results out of order"))
							return
						}
					}
				}
			}()

			// Insert/delete churn on a dedicated high id range: every
			// object inserted here is deleted again, so the final size
			// is the bulk-loaded n.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(500))
				for i := 0; i < 120; i++ {
					id := uint64(10_000 + i)
					p := Point{X: rng.Float64(), Y: rng.Float64()}
					if err := x.Insert(id, p); err != nil {
						fail(err)
						return
					}
					if err := x.Update(id, Point{X: rng.Float64(), Y: rng.Float64()}); err != nil {
						fail(err)
						return
					}
					if err := x.Delete(id); err != nil {
						fail(err)
						return
					}
				}
			}()

			// Stats poller (the §5.4 monitoring thread).
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					st, cs := x.Stats()
					if st.Size < 0 || cs.Updates < 0 {
						fail(errors.New("implausible stats"))
						return
					}
					x.Len()
				}
			}()

			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}
			if x.Len() != n {
				t.Fatalf("Len = %d, want %d", x.Len(), n)
			}
			if err := x.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentReadEquivalence applies the same update set to a
// sequential Index (in id order) and a ConcurrentIndex (concurrently,
// with interleaved queries), then asserts the quiesced read results
// match: the object positions are identical, so window queries must
// return identical id sets and NN queries identical distance profiles,
// whatever structural differences the different application orders
// produced.
func TestConcurrentReadEquivalence(t *testing.T) {
	for _, s := range allFacadeStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			const n = 1500
			seq := openTest(t, s)
			conc := openConcurrentTest(t, s)

			rng := rand.New(rand.NewSource(11))
			ids := make([]uint64, n)
			pts := make([]Point, n)
			for i := range ids {
				ids[i] = uint64(i)
				pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
			}
			if err := seq.BulkInsert(ids, pts, PackSTR); err != nil {
				t.Fatal(err)
			}
			if err := conc.BulkInsert(ids, pts, PackSTR); err != nil {
				t.Fatal(err)
			}

			// One deterministic move per object.
			newPos := make([]Point, n)
			for i := range newPos {
				newPos[i] = Point{X: pts[i].X + (rng.Float64()-0.5)*0.04, Y: pts[i].Y + (rng.Float64()-0.5)*0.04}
			}
			for i := 0; i < n; i++ {
				if err := seq.Update(uint64(i), newPos[i]); err != nil {
					t.Fatal(err)
				}
			}

			const workers = 8
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			per := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					hi := (w + 1) * per
					if hi > n {
						hi = n
					}
					for i := w * per; i < hi; i++ {
						if err := conc.Update(uint64(i), newPos[i]); err != nil {
							errCh <- err
							return
						}
						// Interleave reads so updates and queries contend.
						if i%64 == 0 {
							cx, cy := r.Float64(), r.Float64()
							if _, err := conc.Count(NewRect(cx, cy, cx+0.03, cy+0.03)); err != nil {
								errCh <- err
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			// Quiesced: window queries must agree exactly.
			for q := 0; q < 30; q++ {
				cx, cy := rng.Float64(), rng.Float64()
				win := NewRect(cx, cy, cx+rng.Float64()*0.15, cy+rng.Float64()*0.15)
				want, err := seq.Search(win)
				if err != nil {
					t.Fatal(err)
				}
				got, err := conc.Search(win)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("window %v: concurrent %d ids, sequential %d", win, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("window %v: id %d vs %d at position %d", win, got[i], want[i], i)
					}
				}
				cnt, err := conc.Count(win)
				if err != nil || cnt != len(want) {
					t.Fatalf("Count(%v) = %d, %v; want %d", win, cnt, err, len(want))
				}
			}

			// NN queries must agree on the distance profile.
			for q := 0; q < 10; q++ {
				p := Point{X: rng.Float64(), Y: rng.Float64()}
				want, err := seq.Nearest(p, 10)
				if err != nil {
					t.Fatal(err)
				}
				got, err := conc.Nearest(p, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("Nearest(%v): %d results, want %d", p, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
						t.Fatalf("Nearest(%v): dist[%d] = %g vs %g", p, i, got[i].Dist, want[i].Dist)
					}
					if got[i].ID != want[i].ID {
						t.Fatalf("Nearest(%v): id[%d] = %d vs %d", p, i, got[i].ID, want[i].ID)
					}
				}
			}
		})
	}
}

// TestConcurrentSaveLoadRoundTrip snapshots a concurrent index and
// restores it through both front-ends; the snapshots are
// interchangeable by design.
func TestConcurrentSaveLoadRoundTrip(t *testing.T) {
	x := openConcurrentTest(t, GeneralizedBottomUp)
	pts := bulkLoadConcurrent(t, x, 800, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		id := uint64(rng.Intn(len(pts)))
		p, _ := x.Location(id)
		if err := x.Update(id, Point{X: p.X + (rng.Float64()-0.5)*0.03, Y: p.Y + (rng.Float64()-0.5)*0.03}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	// Restore as a ConcurrentIndex.
	y, err := LoadConcurrent(bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != x.Len() {
		t.Fatalf("loaded Len = %d, want %d", y.Len(), x.Len())
	}
	if err := y.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Restore as a sequential Index from the same snapshot.
	z, err := Load(bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 20; q++ {
		cx, cy := rng.Float64(), rng.Float64()
		win := NewRect(cx, cy, cx+0.1, cy+0.1)
		a, err := x.Search(win)
		if err != nil {
			t.Fatal(err)
		}
		b, err := y.Search(win)
		if err != nil {
			t.Fatal(err)
		}
		c, err := z.Search(win)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("window %v: %d / %d / %d results", win, len(a), len(b), len(c))
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("window %v: result %d diverges", win, i)
			}
		}
	}
	na, err := x.Nearest(Point{X: 0.5, Y: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := y.Nearest(Point{X: 0.5, Y: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(na) != len(nb) {
		t.Fatalf("Nearest: %d vs %d results", len(na), len(nb))
	}
	for i := range na {
		if na[i].ID != nb[i].ID {
			t.Fatalf("Nearest result %d: %d vs %d", i, na[i].ID, nb[i].ID)
		}
	}

	// The restored concurrent index keeps absorbing concurrent updates.
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(40 + w)))
			for i := 0; i < 100; i++ {
				id := uint64(r.Intn(len(pts)))
				p, ok := y.Location(id)
				if !ok {
					continue
				}
				if err := y.Update(id, Point{X: p.X + (r.Float64()-0.5)*0.02, Y: p.Y + (r.Float64()-0.5)*0.02}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := y.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// And the sequential front-end's snapshot loads concurrently too.
	buf.Reset()
	if err := z.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadConcurrent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != z.Len() {
		t.Fatalf("cross-load Len = %d, want %d", w2.Len(), z.Len())
	}
	if err := w2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentBulkInsertErrors(t *testing.T) {
	x := openConcurrentTest(t, GeneralizedBottomUp)
	if err := x.BulkInsert([]uint64{1, 2}, []Point{{X: 0.1, Y: 0.1}}, PackSTR); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := x.BulkInsert([]uint64{1, 1}, []Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, PackSTR); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("duplicate ids err = %v", err)
	}
	if err := x.BulkInsert([]uint64{1, 2}, []Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := x.BulkInsert([]uint64{3}, []Point{{X: 0.3, Y: 0.3}}, PackSTR); err == nil {
		t.Fatal("BulkInsert on non-empty index accepted")
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d", x.Len())
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentFlushAndResetStats(t *testing.T) {
	x := openConcurrentTest(t, GeneralizedBottomUp)
	bulkLoadConcurrent(t, x, 500, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		id := uint64(rng.Intn(500))
		p, _ := x.Location(id)
		if err := x.Update(id, Point{X: p.X + 0.001, Y: p.Y + 0.001}); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ := x.Stats()
	if st.DiskWrites == 0 {
		t.Fatalf("no writes recorded before reset: %+v", st)
	}
	x.ResetStats()
	st, _ = x.Stats()
	if st.DiskReads != 0 || st.DiskWrites != 0 {
		t.Fatalf("counters not reset: %+v", st)
	}
	if st.Size != 500 {
		t.Fatalf("tree shape lost on reset: %+v", st)
	}
}
