package burtree

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"burtree/internal/atomicfile"
	"burtree/internal/buffer"
	"burtree/internal/concurrent"
	"burtree/internal/core"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/shard"
	"burtree/internal/stats"
)

// Snapshot envelopes start with an 8-byte magic so a reader can tell a
// single-tree snapshot from a sharded one (and reject files that are
// neither) before any decoding happens.
var (
	snapshotMagic = [8]byte{'B', 'U', 'R', 'S', 'N', 'A', 'P', '2'}
	shardedMagic  = [8]byte{'B', 'U', 'R', 'S', 'H', 'R', 'D', '2'}
)

// ErrBadSnapshot reports a reader that does not hold a burtree snapshot
// (wrong magic, truncated header, or corrupt body).
var ErrBadSnapshot = errors.New("burtree: not a valid snapshot")

// savedIndex is the on-disk form of an Index: the full simulated page
// store plus the metadata needed to re-attach the strategy. The summary
// structure is main-memory only (as in the paper) and is rebuilt on
// load. The format is shared by Index and ConcurrentIndex, so a
// snapshot taken from either can be restored as either.
type savedIndex struct {
	Format int // format version

	Strategy              Strategy
	PageSize              int
	BufferPages           int
	Epsilon               float64
	DistanceThreshold     float64
	LevelThreshold        int
	ExpectedObjects       int
	ReinsertFraction      float64
	SplitAlgorithm        int
	DisablePiggyback      bool
	DisableSummaryQueries bool

	Pages [][]byte
	Freed []uint64

	Root   uint64
	Height int
	Size   int

	HashDirectory []uint64
	HashSize      int

	Objects map[uint64]Point

	// WALSeq is the write-ahead log sequence this snapshot covers:
	// recovery replays only records with greater sequences. Zero for
	// snapshots taken without durability (gob also leaves it zero when
	// decoding snapshots from before the field existed).
	WALSeq uint64
}

const saveFormat = 1

// savedSharded is the on-disk form of a ShardedIndex: a manifest (the
// partitioning spec and the index-wide options) plus one complete
// single-index snapshot per shard. Any front-end can load it — Load and
// LoadConcurrent merge the shards into one tree, LoadSharded restores
// the partition as saved.
type savedSharded struct {
	Format int

	Options Options // index-wide options (totals, as passed to OpenSharded)

	// Partitioning spec (mirrors shard.Spec).
	Scheme int
	Shards int
	GridX  int
	GridY  int
	Bounds []uint64

	// Blobs holds one complete single-index snapshot (magic included)
	// per shard; len(Blobs) must equal Shards.
	Blobs [][]byte

	// Counts is the manifest's per-shard object count, written alongside
	// the blobs so a reader can verify that manifest and blobs agree —
	// in particular that a zero-entry shard really is empty rather than
	// a truncated blob. Nil in snapshots from before the field existed
	// (the check is skipped then).
	Counts []int

	// WALSeq is the shared log sequence this snapshot covers (see
	// savedIndex.WALSeq); the per-shard log tails replay from it.
	WALSeq uint64

	// RouterEpoch counts the boundary changes the saved index had
	// performed (rebalancer steps and partition upgrades); restored so
	// monitors see a monotone epoch across snapshots. Zero in snapshots
	// from before the field existed.
	RouterEpoch uint64
}

const shardedFormat = 1

// saveSnapshot flushes the pool and encodes the complete index state to
// w. Shared by both single-tree front-ends; the ConcurrentIndex caller
// holds the exclusive latch so the snapshot is quiescent.
func saveSnapshot(w io.Writer, store *pagestore.Store, pool *buffer.Pool, u core.Updater, objects map[uint64]Point, opts Options, walSeq uint64) error {
	if err := pool.Flush(); err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	st, err := core.SaveState(u)
	if err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	pageSize, pages, freed := store.Dump()

	s := savedIndex{
		Format:                saveFormat,
		Strategy:              opts.Strategy,
		PageSize:              pageSize,
		BufferPages:           opts.BufferPages,
		Epsilon:               opts.Epsilon,
		DistanceThreshold:     opts.DistanceThreshold,
		LevelThreshold:        opts.LevelThreshold,
		ExpectedObjects:       opts.ExpectedObjects,
		ReinsertFraction:      opts.ReinsertFraction,
		SplitAlgorithm:        int(opts.SplitAlgorithm),
		DisablePiggyback:      opts.DisablePiggyback,
		DisableSummaryQueries: opts.DisableSummaryQueries,
		Pages:                 pages,
		Root:                  uint64(st.Root),
		Height:                st.Height,
		Size:                  st.Size,
		HashSize:              st.HashSize,
		Objects:               objects,
		WALSeq:                walSeq,
	}
	for _, f := range freed {
		s.Freed = append(s.Freed, uint64(f))
	}
	for _, p := range st.HashDirectory {
		s.HashDirectory = append(s.HashDirectory, uint64(p))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	return bw.Flush()
}

// Save serializes the complete index — pages, structural metadata and
// the object table — to w. Buffered delta-tier entries are merged down
// first and the buffer pool is flushed, so the snapshot is
// self-consistent and never depends on memtable contents. With
// durability enabled the snapshot embeds the log sequence it covers,
// so it can serve as a recovery base.
func (x *Index) Save(w io.Writer) error {
	if err := x.drainMemtable(); err != nil {
		return err
	}
	var seq uint64
	if x.wal != nil {
		seq = x.wal.LastSeq()
	}
	return saveSnapshot(w, x.store, x.pool, x.updater, x.objects, x.options, seq)
}

// SaveFile writes the index snapshot to a file.
func (x *Index) SaveFile(path string) error {
	return saveToFile(path, x.Save)
}

// Save serializes the complete index to w. The whole index is locked
// exclusively for the duration — the buffer flush and page dump must
// not interleave with updates — so the snapshot is a quiescent point:
// every operation that completed before Save returned is in it, none
// that started after. With durability enabled the checkpoint gate is
// held too, so no operation is caught between applying and logging and
// the embedded log sequence is exact.
func (x *ConcurrentIndex) Save(w io.Writer) error {
	x.ckpt.Lock()
	defer x.ckpt.Unlock()
	return x.saveLocked(w)
}

// saveLocked is Save with the checkpoint gate already held. The delta
// tier is merged down first — under the gate no writer can refill it,
// so the snapshot captures every acknowledged operation in the tree
// and a subsequent log truncation (Checkpoint) cannot drop records
// whose effects lived only in the memtable.
func (x *ConcurrentIndex) saveLocked(w io.Writer) error {
	if err := x.drainMemtable(); err != nil {
		return err
	}
	var seq uint64
	if x.wal != nil {
		seq = x.wal.LastSeq()
	}
	return x.db.Exclusive(func(u core.Updater) error {
		x.mu.RLock()
		defer x.mu.RUnlock()
		return saveSnapshot(w, x.store, x.pool, u, x.objects, x.options, seq)
	})
}

// SaveFile writes the index snapshot to a file under the exclusive
// lock, like Save.
func (x *ConcurrentIndex) SaveFile(path string) error {
	return saveToFile(path, x.Save)
}

// Save serializes the sharded index to w: a manifest carrying the
// partitioning spec plus one complete single-index snapshot per shard.
// The whole index is gated exclusively for the duration, so the
// snapshot is a globally quiescent point — no cross-shard move is ever
// captured half-applied.
func (x *ShardedIndex) Save(w io.Writer) error {
	x.opMu.Lock()
	defer x.opMu.Unlock()
	return x.saveLocked(w)
}

// saveLocked is Save with the snapshot gate already held. The manifest
// records each shard's object count next to its blob so a reader can
// verify the two agree — a zero-count shard must decode as an empty
// tree, not pass as a damaged blob.
func (x *ShardedIndex) saveLocked(w io.Writer) error {
	spec := x.router.Spec()
	s := savedSharded{
		Format:      shardedFormat,
		Options:     x.options,
		Scheme:      int(spec.Scheme),
		Shards:      spec.Shards,
		GridX:       spec.GridX,
		GridY:       spec.GridY,
		Bounds:      spec.Bounds,
		Blobs:       make([][]byte, len(x.shards)),
		Counts:      make([]int, len(x.shards)),
		WALSeq:      x.lsn.Load(),
		RouterEpoch: x.routerEpoch,
	}
	for i, sh := range x.shards {
		var buf bytes.Buffer
		if err := sh.Save(&buf); err != nil {
			return fmt.Errorf("burtree: save shard %d: %w", i, err)
		}
		s.Blobs[i] = buf.Bytes()
		s.Counts[i] = sh.Len()
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(shardedMagic[:]); err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes the sharded snapshot to a file, like Save.
func (x *ShardedIndex) SaveFile(path string) error {
	return saveToFile(path, x.Save)
}

// saveToFile writes a snapshot atomically through the shared
// temp+fsync+rename helper: a failure at any point leaves the previous
// snapshot intact — the destination is never truncated before its
// replacement is safely on disk.
func saveToFile(path string, save func(io.Writer) error) error {
	return atomicfile.Write(path, save)
}

// readMagic consumes and returns the 8-byte envelope magic.
func readMagic(br *bufio.Reader) ([8]byte, error) {
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return m, fmt.Errorf("%w: reading magic: %v", ErrBadSnapshot, err)
	}
	return m, nil
}

// decodeSavedIndex decodes and sanity-checks a single-index snapshot
// body, so corrupt input fails with an error instead of panicking in
// the rebuild machinery.
func decodeSavedIndex(br *bufio.Reader) (savedIndex, error) {
	var s savedIndex
	if err := gob.NewDecoder(br).Decode(&s); err != nil {
		return s, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if s.Format != saveFormat {
		return s, fmt.Errorf("burtree: load: unsupported format %d", s.Format)
	}
	if s.PageSize < pagestore.MinPageSize {
		return s, fmt.Errorf("%w: page size %d below minimum %d", ErrBadSnapshot, s.PageSize, pagestore.MinPageSize)
	}
	if s.Size < 0 || s.Height < 0 || s.HashSize < 0 {
		return s, fmt.Errorf("%w: negative structural counts", ErrBadSnapshot)
	}
	if s.Root > uint64(len(s.Pages)) {
		return s, fmt.Errorf("%w: root page %d beyond %d pages", ErrBadSnapshot, s.Root, len(s.Pages))
	}
	if s.Root == 0 && s.Size > 0 {
		return s, fmt.Errorf("%w: %d objects but no root page", ErrBadSnapshot, s.Size)
	}
	return s, nil
}

// buildFromSaved rebuilds the shared machinery from a decoded snapshot:
// page store, buffer pool, re-attached strategy and object table.
func buildFromSaved(s savedIndex) (indexParts, map[uint64]Point, error) {
	var parts indexParts
	kind, err := s.Strategy.kind()
	if err != nil {
		return parts, nil, fmt.Errorf("burtree: load: %w", err)
	}
	io := &stats.IO{}
	freed := make([]pagestore.PageID, len(s.Freed))
	for i, f := range s.Freed {
		freed[i] = pagestore.PageID(f)
	}
	store, err := pagestore.NewFromDump(s.PageSize, s.Pages, freed, io)
	if err != nil {
		return parts, nil, fmt.Errorf("burtree: load: %w", err)
	}
	pool := buffer.New(store, s.BufferPages)

	reinsert := s.ReinsertFraction
	if reinsert == 0 {
		reinsert = 0.3
	}
	if reinsert < 0 {
		reinsert = 0
	}
	lvl := s.LevelThreshold
	if lvl == 0 {
		lvl = core.UnrestrictedLevels
	}
	expected := s.ExpectedObjects
	if expected == 0 {
		expected = 1024
	}
	dir := make([]rtree.PageID, len(s.HashDirectory))
	for i, p := range s.HashDirectory {
		dir[i] = rtree.PageID(p)
	}
	u, err := core.Restore(pool, core.Options{
		Strategy:          kind,
		Epsilon:           s.Epsilon,
		DistanceThreshold: s.DistanceThreshold,
		LevelThreshold:    lvl,
		NoPiggyback:       s.DisablePiggyback,
		NoSummaryQueries:  s.DisableSummaryQueries,
		ExpectedObjects:   expected,
		Tree: rtree.Config{
			ReinsertFraction: reinsert,
			Split:            rtree.SplitAlgorithm(s.SplitAlgorithm),
		},
	}, core.RestoreState{
		Root:          rtree.PageID(s.Root),
		Height:        s.Height,
		Size:          s.Size,
		HashDirectory: dir,
		HashSize:      s.HashSize,
	})
	if err != nil {
		return parts, nil, fmt.Errorf("burtree: load: %w", err)
	}
	objects := s.Objects
	if objects == nil {
		objects = make(map[uint64]Point)
	}
	parts = indexParts{
		store:  store,
		pool:   pool,
		io:     io,
		u:      u,
		walSeq: s.WALSeq,
		opts: Options{
			Strategy:              s.Strategy,
			PageSize:              s.PageSize,
			BufferPages:           s.BufferPages,
			Epsilon:               s.Epsilon,
			DistanceThreshold:     s.DistanceThreshold,
			LevelThreshold:        s.LevelThreshold,
			ExpectedObjects:       s.ExpectedObjects,
			ReinsertFraction:      s.ReinsertFraction,
			SplitAlgorithm:        rtree.SplitAlgorithm(s.SplitAlgorithm),
			DisablePiggyback:      s.DisablePiggyback,
			DisableSummaryQueries: s.DisableSummaryQueries,
		},
	}
	return parts, objects, nil
}

// decodeSavedSharded decodes and sanity-checks a sharded snapshot body.
func decodeSavedSharded(br *bufio.Reader) (savedSharded, error) {
	var s savedSharded
	if err := gob.NewDecoder(br).Decode(&s); err != nil {
		return s, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if s.Format != shardedFormat {
		return s, fmt.Errorf("burtree: load: unsupported sharded format %d", s.Format)
	}
	if len(s.Blobs) != s.Shards {
		return s, fmt.Errorf("%w: manifest declares %d shards but snapshot carries %d", ErrBadSnapshot, s.Shards, len(s.Blobs))
	}
	if s.Counts != nil && len(s.Counts) != s.Shards {
		return s, fmt.Errorf("%w: manifest carries %d shard counts for %d shards", ErrBadSnapshot, len(s.Counts), s.Shards)
	}
	for i, c := range s.Counts {
		if c < 0 {
			return s, fmt.Errorf("%w: shard %d declares negative object count %d", ErrBadSnapshot, i, c)
		}
	}
	return s, nil
}

// checkShardCount verifies one decoded shard blob against the
// manifest's declared object count (skipped for pre-count snapshots,
// whose manifests carry no Counts).
func checkShardCount(s savedSharded, i, got int) error {
	if s.Counts == nil {
		return nil
	}
	if want := s.Counts[i]; got != want {
		return fmt.Errorf("%w: shard %d blob holds %d objects, manifest declares %d", ErrBadSnapshot, i, got, want)
	}
	return nil
}

// mergedObjects collects the object tables of every shard blob without
// rebuilding the shard trees, verifying that no object appears twice.
func mergedObjects(s savedSharded) (map[uint64]Point, error) {
	merged := make(map[uint64]Point)
	for i, blob := range s.Blobs {
		br := bufio.NewReader(bytes.NewReader(blob))
		magic, err := readMagic(br)
		if err != nil {
			return nil, fmt.Errorf("burtree: load shard %d: %w", i, err)
		}
		if magic != snapshotMagic {
			return nil, fmt.Errorf("%w: shard %d blob has wrong magic", ErrBadSnapshot, i)
		}
		dec, err := decodeSavedIndex(br)
		if err != nil {
			return nil, fmt.Errorf("burtree: load shard %d: %w", i, err)
		}
		if err := checkShardCount(s, i, len(dec.Objects)); err != nil {
			return nil, err
		}
		for id, p := range dec.Objects {
			if _, dup := merged[id]; dup {
				return nil, fmt.Errorf("%w: object %d present in multiple shards", ErrBadSnapshot, id)
			}
			merged[id] = p
		}
	}
	return merged, nil
}

// mergeInto bulk-loads the union of a sharded snapshot's objects into a
// freshly opened front-end (ids in ascending order, so the merge is
// deterministic).
func mergeInto(s savedSharded, bulk func(ids []uint64, pts []Point) error) error {
	objects, err := mergedObjects(s)
	if err != nil {
		return err
	}
	ids := make([]uint64, 0, len(objects))
	for id := range objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pts := make([]Point, len(ids))
	for i, id := range ids {
		pts[i] = objects[id]
	}
	return bulk(ids, pts)
}

// loadDispatch reads the envelope magic and hands the decoded snapshot
// to the matching constructor hook: single receives the rebuilt
// machinery of a single-tree snapshot, sharded receives the decoded
// manifest of a sharded one. It is the one place that understands the
// envelope, shared by Load and LoadConcurrent.
func loadDispatch(r io.Reader, single func(indexParts, map[uint64]Point) error, sharded func(savedSharded) error) error {
	br := bufio.NewReader(r)
	magic, err := readMagic(br)
	if err != nil {
		return err
	}
	switch magic {
	case snapshotMagic:
		s, err := decodeSavedIndex(br)
		if err != nil {
			return err
		}
		parts, objects, err := buildFromSaved(s)
		if err != nil {
			return err
		}
		return single(parts, objects)
	case shardedMagic:
		s, err := decodeSavedSharded(br)
		if err != nil {
			return err
		}
		return sharded(s)
	default:
		return fmt.Errorf("%w: unrecognized magic %q", ErrBadSnapshot, magic[:])
	}
}

// Load reconstructs an index from a Save snapshot. A single-tree
// snapshot restores identically to the original: same pages, same
// strategy, same object table (the main-memory summary structure is
// rebuilt by one tree walk). A sharded snapshot is merged: the union of
// the shards' objects is bulk-loaded into one fresh tree under the
// manifest's options.
func Load(r io.Reader) (*Index, error) {
	var idx *Index
	err := loadDispatch(r,
		func(parts indexParts, objects map[uint64]Point) error {
			idx = &Index{
				store:   parts.store,
				pool:    parts.pool,
				io:      parts.io,
				updater: parts.u,
				objects: objects,
				options: parts.opts,
				walSeq:  parts.walSeq,
			}
			return nil
		},
		func(s savedSharded) error {
			// Loaders are not log- or memtable-aware: drop any durability
			// or delta-tier config the manifest carried (Recover re-attaches
			// logs and re-enables the tier explicitly).
			o := s.Options
			o.Durability = Durability{}
			o.Memtable = Memtable{}
			var err error
			idx, err = Open(o)
			if err != nil {
				return err
			}
			return mergeInto(s, func(ids []uint64, pts []Point) error {
				return idx.BulkInsert(ids, pts, PackSTR)
			})
		})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// LoadFile reads an index snapshot from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadConcurrent reconstructs a ConcurrentIndex from a Save snapshot.
// Snapshots are interchangeable between the front-ends: a single-tree
// snapshot written by an Index restores directly, and a sharded
// snapshot is merged into one tree exactly as Load does.
func LoadConcurrent(r io.Reader) (*ConcurrentIndex, error) {
	var idx *ConcurrentIndex
	err := loadDispatch(r,
		func(parts indexParts, objects map[uint64]Point) error {
			idx = &ConcurrentIndex{
				store:   parts.store,
				pool:    parts.pool,
				io:      parts.io,
				db:      concurrent.New(parts.u, 32),
				objects: objects,
				options: parts.opts,
				walSeq:  parts.walSeq,
			}
			return nil
		},
		func(s savedSharded) error {
			o := s.Options
			o.Durability = Durability{}
			o.Memtable = Memtable{}
			var err error
			idx, err = OpenConcurrent(o)
			if err != nil {
				return err
			}
			return mergeInto(s, func(ids []uint64, pts []Point) error {
				return idx.BulkInsert(ids, pts, PackSTR)
			})
		})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// LoadConcurrentFile reads a snapshot from a file into a
// ConcurrentIndex.
func LoadConcurrentFile(path string) (*ConcurrentIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadConcurrent(f)
}

// LoadSharded reconstructs a ShardedIndex from a sharded snapshot,
// restoring the saved partitioning (scheme, shard count and range
// boundaries) and every shard's tree exactly. Single-tree snapshots are
// rejected: load those through Load or LoadConcurrent, then BulkInsert
// into a fresh sharded index to re-partition.
func LoadSharded(r io.Reader) (*ShardedIndex, error) {
	br := bufio.NewReader(r)
	magic, err := readMagic(br)
	if err != nil {
		return nil, err
	}
	switch magic {
	case shardedMagic:
	case snapshotMagic:
		return nil, fmt.Errorf("burtree: LoadSharded: single-tree snapshot; load it with Load or LoadConcurrent and BulkInsert into a new sharded index")
	default:
		return nil, fmt.Errorf("%w: unrecognized magic %q", ErrBadSnapshot, magic[:])
	}
	s, err := decodeSavedSharded(br)
	if err != nil {
		return nil, err
	}
	router, err := shard.FromSpec(shard.Spec{
		Scheme: shard.Scheme(s.Scheme),
		Shards: s.Shards,
		GridX:  s.GridX,
		GridY:  s.GridY,
		Bounds: s.Bounds,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	shards := make([]*ConcurrentIndex, s.Shards)
	objects := make(map[uint64]Point)
	for i, blob := range s.Blobs {
		ci, err := LoadConcurrent(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("burtree: load shard %d: %w", i, err)
		}
		if err := checkShardCount(s, i, len(ci.objects)); err != nil {
			return nil, err
		}
		shards[i] = ci
		for id, p := range ci.objects {
			if _, dup := objects[id]; dup {
				return nil, fmt.Errorf("%w: object %d present in multiple shards", ErrBadSnapshot, id)
			}
			if owner := router.ShardOf(p); owner != i {
				return nil, fmt.Errorf("%w: object %d at %v stored in shard %d but routes to %d", ErrBadSnapshot, id, p, i, owner)
			}
			objects[id] = p
		}
	}
	scheme := ShardGrid
	if shard.Scheme(s.Scheme) == shard.HilbertRange {
		scheme = ShardHilbert
	}
	o := s.Options
	// Loaders are not log- or memtable-aware; see Recover.
	o.Durability = Durability{}
	o.Memtable = Memtable{}
	x := &ShardedIndex{
		router:      router,
		shards:      shards,
		options:     o,
		sopts:       ShardOptions{Shards: s.Shards, Partition: scheme},
		objects:     objects,
		walSeq:      s.WALSeq,
		load:        shard.NewLoadTracker(s.Shards),
		pageBase:    make([]uint64, s.Shards),
		ropts:       RebalanceOptions{}.withDefaults(),
		routerEpoch: s.RouterEpoch,
		combiners:   newCombiners(s.Shards),
	}
	return x, nil
}

// LoadShardedFile reads a sharded snapshot from a file.
func LoadShardedFile(path string) (*ShardedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSharded(f)
}
