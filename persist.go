package burtree

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"burtree/internal/buffer"
	"burtree/internal/concurrent"
	"burtree/internal/core"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
)

// savedIndex is the on-disk form of an Index: the full simulated page
// store plus the metadata needed to re-attach the strategy. The summary
// structure is main-memory only (as in the paper) and is rebuilt on
// load. The format is shared by Index and ConcurrentIndex, so a
// snapshot taken from either can be restored as either.
type savedIndex struct {
	Format int // format version

	Strategy              Strategy
	PageSize              int
	BufferPages           int
	Epsilon               float64
	DistanceThreshold     float64
	LevelThreshold        int
	ExpectedObjects       int
	ReinsertFraction      float64
	SplitAlgorithm        int
	DisablePiggyback      bool
	DisableSummaryQueries bool

	Pages [][]byte
	Freed []uint64

	Root   uint64
	Height int
	Size   int

	HashDirectory []uint64
	HashSize      int

	Objects map[uint64]Point
}

const saveFormat = 1

// saveSnapshot flushes the pool and encodes the complete index state to
// w. Shared by both index front-ends; the ConcurrentIndex caller holds
// the exclusive latch so the snapshot is quiescent.
func saveSnapshot(w io.Writer, store *pagestore.Store, pool *buffer.Pool, u core.Updater, objects map[uint64]Point, opts Options) error {
	if err := pool.Flush(); err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	st, err := core.SaveState(u)
	if err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	pageSize, pages, freed := store.Dump()

	s := savedIndex{
		Format:                saveFormat,
		Strategy:              opts.Strategy,
		PageSize:              pageSize,
		BufferPages:           opts.BufferPages,
		Epsilon:               opts.Epsilon,
		DistanceThreshold:     opts.DistanceThreshold,
		LevelThreshold:        opts.LevelThreshold,
		ExpectedObjects:       opts.ExpectedObjects,
		ReinsertFraction:      opts.ReinsertFraction,
		SplitAlgorithm:        int(opts.SplitAlgorithm),
		DisablePiggyback:      opts.DisablePiggyback,
		DisableSummaryQueries: opts.DisableSummaryQueries,
		Pages:                 pages,
		Root:                  uint64(st.Root),
		Height:                st.Height,
		Size:                  st.Size,
		HashSize:              st.HashSize,
		Objects:               objects,
	}
	for _, f := range freed {
		s.Freed = append(s.Freed, uint64(f))
	}
	for _, p := range st.HashDirectory {
		s.HashDirectory = append(s.HashDirectory, uint64(p))
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(&s); err != nil {
		return fmt.Errorf("burtree: save: %w", err)
	}
	return bw.Flush()
}

// Save serializes the complete index — pages, structural metadata and
// the object table — to w. The buffer pool is flushed first, so the
// snapshot is self-consistent.
func (x *Index) Save(w io.Writer) error {
	return saveSnapshot(w, x.store, x.pool, x.updater, x.objects, x.options)
}

// SaveFile writes the index snapshot to a file.
func (x *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := x.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Save serializes the complete index to w. The whole index is locked
// exclusively for the duration — the buffer flush and page dump must
// not interleave with updates — so the snapshot is a quiescent point:
// every operation that completed before Save returned is in it, none
// that started after.
func (x *ConcurrentIndex) Save(w io.Writer) error {
	return x.db.Exclusive(func(u core.Updater) error {
		x.mu.RLock()
		defer x.mu.RUnlock()
		return saveSnapshot(w, x.store, x.pool, u, x.objects, x.options)
	})
}

// SaveFile writes the index snapshot to a file under the exclusive
// lock, like Save.
func (x *ConcurrentIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := x.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// loadSnapshot decodes a snapshot and rebuilds the shared machinery:
// page store, buffer pool, re-attached strategy and object table.
func loadSnapshot(r io.Reader) (indexParts, map[uint64]Point, error) {
	var parts indexParts
	var s savedIndex
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&s); err != nil {
		return parts, nil, fmt.Errorf("burtree: load: %w", err)
	}
	if s.Format != saveFormat {
		return parts, nil, fmt.Errorf("burtree: load: unsupported format %d", s.Format)
	}
	kind, err := s.Strategy.kind()
	if err != nil {
		return parts, nil, fmt.Errorf("burtree: load: %w", err)
	}
	io := &stats.IO{}
	freed := make([]pagestore.PageID, len(s.Freed))
	for i, f := range s.Freed {
		freed[i] = pagestore.PageID(f)
	}
	store, err := pagestore.NewFromDump(s.PageSize, s.Pages, freed, io)
	if err != nil {
		return parts, nil, fmt.Errorf("burtree: load: %w", err)
	}
	pool := buffer.New(store, s.BufferPages)

	reinsert := s.ReinsertFraction
	if reinsert == 0 {
		reinsert = 0.3
	}
	if reinsert < 0 {
		reinsert = 0
	}
	lvl := s.LevelThreshold
	if lvl == 0 {
		lvl = core.UnrestrictedLevels
	}
	expected := s.ExpectedObjects
	if expected == 0 {
		expected = 1024
	}
	dir := make([]rtree.PageID, len(s.HashDirectory))
	for i, p := range s.HashDirectory {
		dir[i] = rtree.PageID(p)
	}
	u, err := core.Restore(pool, core.Options{
		Strategy:          kind,
		Epsilon:           s.Epsilon,
		DistanceThreshold: s.DistanceThreshold,
		LevelThreshold:    lvl,
		NoPiggyback:       s.DisablePiggyback,
		NoSummaryQueries:  s.DisableSummaryQueries,
		ExpectedObjects:   expected,
		Tree: rtree.Config{
			ReinsertFraction: reinsert,
			Split:            rtree.SplitAlgorithm(s.SplitAlgorithm),
		},
	}, core.RestoreState{
		Root:          rtree.PageID(s.Root),
		Height:        s.Height,
		Size:          s.Size,
		HashDirectory: dir,
		HashSize:      s.HashSize,
	})
	if err != nil {
		return parts, nil, fmt.Errorf("burtree: load: %w", err)
	}
	objects := s.Objects
	if objects == nil {
		objects = make(map[uint64]Point)
	}
	parts = indexParts{
		store: store,
		pool:  pool,
		io:    io,
		u:     u,
		opts: Options{
			Strategy:              s.Strategy,
			PageSize:              s.PageSize,
			BufferPages:           s.BufferPages,
			Epsilon:               s.Epsilon,
			DistanceThreshold:     s.DistanceThreshold,
			LevelThreshold:        s.LevelThreshold,
			ExpectedObjects:       s.ExpectedObjects,
			ReinsertFraction:      s.ReinsertFraction,
			SplitAlgorithm:        rtree.SplitAlgorithm(s.SplitAlgorithm),
			DisablePiggyback:      s.DisablePiggyback,
			DisableSummaryQueries: s.DisableSummaryQueries,
		},
	}
	return parts, objects, nil
}

// Load reconstructs an index from a Save snapshot. The restored index
// behaves identically to the original: same pages, same strategy, same
// object table; the main-memory summary structure is rebuilt by one
// tree walk.
func Load(r io.Reader) (*Index, error) {
	parts, objects, err := loadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Index{
		store:   parts.store,
		pool:    parts.pool,
		io:      parts.io,
		updater: parts.u,
		objects: objects,
		options: parts.opts,
	}, nil
}

// LoadFile reads an index snapshot from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadConcurrent reconstructs a ConcurrentIndex from a Save snapshot.
// Snapshots are interchangeable between the two front-ends: a snapshot
// written by an Index can be restored as a ConcurrentIndex and vice
// versa.
func LoadConcurrent(r io.Reader) (*ConcurrentIndex, error) {
	parts, objects, err := loadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &ConcurrentIndex{
		store:   parts.store,
		pool:    parts.pool,
		io:      parts.io,
		db:      concurrent.New(parts.u, 32),
		objects: objects,
		options: parts.opts,
	}, nil
}

// LoadConcurrentFile reads a snapshot from a file into a
// ConcurrentIndex.
func LoadConcurrentFile(path string) (*ConcurrentIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadConcurrent(f)
}
