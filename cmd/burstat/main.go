// Command burstat builds an index from a synthetic workload and prints
// its physical statistics: per-level node counts and fill factors, MBR
// overlap, the summary-structure footprint (paper §3.2), and the §4
// cost-model predictions for the resulting tree.
//
// Usage:
//
//	burstat -objects 100000 -strategy GBU -updates 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"burtree/internal/buffer"
	"burtree/internal/core"
	"burtree/internal/costmodel"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
	"burtree/internal/summary"
	"burtree/internal/workload"
)

func main() {
	var (
		objects = flag.Int("objects", 50_000, "number of objects")
		updates = flag.Int("updates", 0, "updates to apply before measuring")
		strat   = flag.String("strategy", "GBU", "strategy: TD|LBU|GBU|NAIVE")
		dist    = flag.String("dist", "uniform", "distribution: uniform|gaussian|skewed")
		maxDist = flag.Float64("maxdist", 0.03, "max distance moved per update")
		seed    = flag.Int64("seed", 1, "random seed")
		qSide   = flag.Float64("query", 0.1, "query side for the cost-model prediction")
	)
	flag.Parse()

	kind, err := core.ParseKind(*strat)
	if err != nil {
		fatal(err)
	}
	d, err := workload.ParseDistribution(*dist)
	if err != nil {
		fatal(err)
	}

	io := &stats.IO{}
	store := pagestore.New(pagestore.DefaultPageSize, io)
	pool := buffer.New(store, 0)
	u, err := core.New(pool, core.Options{
		Strategy:        kind,
		ExpectedObjects: *objects,
		Tree:            rtree.Config{ReinsertFraction: 0.3},
	})
	if err != nil {
		fatal(err)
	}
	gen := workload.NewGenerator(workload.Spec{
		NumObjects: *objects, Distribution: d, MaxDistance: *maxDist, Seed: *seed,
	})
	for i, p := range gen.Positions() {
		if err := u.Insert(rtree.OID(i), p); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < *updates; i++ {
		up := gen.NextUpdate()
		if err := u.Update(up.OID, up.Old, up.New); err != nil {
			fatal(err)
		}
	}
	if err := u.Tree().CheckInvariants(); err != nil {
		fatal(fmt.Errorf("invariants: %w", err))
	}

	ts, err := u.Tree().ComputeStats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("strategy        %s\n", kind)
	fmt.Printf("objects         %d (after %d updates)\n", ts.Size, *updates)
	fmt.Printf("height          %d\n", ts.Height)
	fmt.Printf("nodes           %d (fanout %d)\n", ts.Nodes, u.Tree().MaxEntries())
	fmt.Printf("database pages  %d (%.1f MB at 1 KB pages)\n", store.NumPages(), float64(store.NumPages())/1024)
	fmt.Printf("root MBR area   %.4f\n", ts.RootMBRArea)
	fmt.Println("\nper level (0 = leaves):")
	fmt.Printf("  %-6s %8s %9s %8s %12s %12s\n", "level", "nodes", "entries", "fill", "area sum", "overlap")
	for _, l := range ts.Levels {
		fmt.Printf("  %-6d %8d %9d %7.1f%% %12.4f %12.6f\n",
			l.Level, l.Nodes, l.Entries, l.AvgFill*100, l.AreaSum, l.Overlap)
	}

	type summarized interface{ Summary() *summary.Structure }
	if g, ok := u.(summarized); ok {
		sum := g.Summary()
		internal, leaves := sum.Counts()
		treeBytes := ts.Nodes * pagestore.DefaultPageSize
		fmt.Println("\nsummary structure (paper §3.2):")
		fmt.Printf("  internal entries   %d, leaves tracked %d\n", internal, leaves)
		fmt.Printf("  size               %d bytes\n", sum.SizeBytes())
		fmt.Printf("  table/tree ratio   %.3f%%\n", 100*float64(sum.SizeBytes())/float64(treeBytes))
	}

	prof, err := costmodel.ProfileTree(u.Tree())
	if err != nil {
		fatal(err)
	}
	fmt.Println("\ncost model (paper §4):")
	fmt.Printf("  E[query accesses] at %gx%g window: %.2f\n", *qSide, *qSide,
		costmodel.ExpectedQueryAccesses(prof, *qSide, *qSide))
	fmt.Printf("  TD update cost (2A+1):             %.2f\n", costmodel.TopDownUpdateCost(prof))
	fmt.Printf("  TD best case (2h+1):               %.0f\n", costmodel.TopDownBestCase(ts.Height))
	b, t := costmodel.WorstCaseBound(ts.Height)
	fmt.Printf("  BU worst case vs TD best case:     %.2f <= %.0f\n", b, t)

	fmt.Printf("\nupdate outcomes: %+v\n", u.Outcomes())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "burstat:", err)
	os.Exit(1)
}
