// Command burbench reproduces the tables and figures of the paper's
// performance study (§5). Each experiment prints the same series the
// paper plots: rows are strategies, columns the swept parameter.
//
// Usage:
//
//	burbench -list
//	burbench -experiment fig5a
//	burbench -experiment all -scale 0.5
//	burbench -experiment fig8 -paper        # full 1M-object workloads
//	burbench -experiment fig6e -csv -o out.csv
//	burbench -experiment shard -json BENCH_shard.json
//
// The default scale is 1/50 of the paper's workloads (20k objects, 20k
// updates) so the complete suite finishes in minutes; -scale multiplies
// it and -paper selects the paper's sizes (expect hours).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"burtree/internal/atomicfile"
	"burtree/internal/exp"
)

// jsonReport is the machine-readable output of a burbench run
// (-json <path>): run metadata plus every produced table, so perf
// trajectories can be tracked file-to-file across commits.
type jsonReport struct {
	Tool        string        `json:"tool"`
	Seed        int64         `json:"seed"`
	Scale       exp.Scale     `json:"scale"`
	Experiments []*jsonResult `json:"experiments"`
}

type jsonResult struct {
	ID      string    `json:"id"`
	Figure  string    `json:"figure"`
	Title   string    `json:"title"`
	XLabel  string    `json:"xlabel"`
	YLabel  string    `json:"ylabel"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Elapsed float64   `json:"elapsed_seconds"`
}

type jsonRow struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list), comma-separated list, or 'all'")
		list       = flag.Bool("list", false, "list available experiments and exit")
		scale      = flag.Float64("scale", 1.0, "workload scale factor relative to the default (1/50 of the paper)")
		paper      = flag.Bool("paper", false, "use the paper's full workload sizes (1M objects; slow)")
		seed       = flag.Int64("seed", 1, "random seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut    = flag.String("json", "", "also write machine-readable results to this file")
		out        = flag.String("o", "", "write output to a file instead of stdout")
		threads    = flag.Int("threads", 0, "override thread count for the throughput study (default 50)")
		batch      = flag.Int("batch", 0, "pin the batch experiment's sweep to {1, N} instead of the default sizes")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments (paper reference — title):")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-20s %-12s %s\n", e.ID, e.Figure, e.Title)
		}
		fmt.Println("\nDefault workload parameters (paper Table 1, bold values):")
		fmt.Println("  page size 1024 B, buffer 1% of database, epsilon 0.003,")
		fmt.Println("  distance threshold 0.03, level threshold max, uniform data,")
		fmt.Println("  max distance moved 0.03, query side in [0, 0.1]")
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "burbench: -experiment required (try -list)")
		os.Exit(2)
	}

	s := exp.DefaultScale()
	if *paper {
		s = exp.PaperScale()
	}
	if *scale != 1.0 {
		s.Objects = int(float64(s.Objects) * *scale)
		s.Updates = int(float64(s.Updates) * *scale)
		s.Queries = int(float64(s.Queries) * *scale)
		s.Ops = int(float64(s.Ops) * *scale)
	}
	if *threads > 0 {
		s.Threads = *threads
	}
	if *batch > 0 {
		s.Batch = *batch
	}

	var ids []string
	if *experiment == "all" {
		for _, e := range exp.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*experiment, ",")
	}

	// Results stream to stdout directly; a -o report is accumulated in
	// memory and written atomically at the end, so an interrupted run
	// never leaves a torn report where a previous one stood.
	var w io.Writer = os.Stdout
	var outBuf bytes.Buffer
	if *out != "" {
		w = &outBuf
	}

	report := jsonReport{Tool: "burbench", Seed: *seed, Scale: s}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := exp.Find(id)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
		}
		fmt.Fprintf(os.Stderr, "running %s (%s) at %d objects / %d updates / %d queries ...\n",
			e.ID, e.Figure, s.Objects, s.Updates, s.Queries)
		start := time.Now()
		tab, err := e.Run(s, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "  done in %v\n", elapsed.Round(time.Millisecond))
		if *csv {
			fmt.Fprintf(w, "# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		} else {
			fmt.Fprintf(w, "%s\n", tab.Render())
		}
		jr := &jsonResult{
			ID: tab.ID, Figure: e.Figure, Title: tab.Title,
			XLabel: tab.XLabel, YLabel: tab.YLabel, Columns: tab.Columns,
			Elapsed: elapsed.Seconds(),
		}
		for _, r := range tab.Rows {
			jr.Rows = append(jr.Rows, jsonRow{Label: r.Label, Values: r.Values})
		}
		report.Experiments = append(report.Experiments, jr)
	}
	if *out != "" {
		if err := atomicfile.WriteBytes(*out, outBuf.Bytes()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := atomicfile.WriteBytes(*jsonOut, append(data, '\n')); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "burbench:", err)
	os.Exit(1)
}
