// Command burload generates, inspects and replays GSTD-style workload
// traces (paper §5): an initial distribution of moving point objects,
// a bounded-movement update stream, and a uniform window-query stream.
//
// Usage:
//
//	burload -gen -objects 100000 -updates 200000 -queries 1000 \
//	        -dist gaussian -maxdist 0.03 -seed 7 -out trace.gob
//	burload -info -in trace.gob
//	burload -replay -in trace.gob -strategy GBU
//
// Replay builds the index from the trace's initial positions, applies
// the update stream, then the query stream, and reports the same
// "Avg Disk I/O" metrics the paper's figures use — on a byte-identical
// workload for every strategy.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"burtree/internal/buffer"
	"burtree/internal/core"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
	"burtree/internal/workload"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		info    = flag.Bool("info", false, "describe a trace")
		replay  = flag.Bool("replay", false, "replay a trace against a strategy")
		objects = flag.Int("objects", 100_000, "number of objects")
		updates = flag.Int("updates", 200_000, "number of updates")
		queries = flag.Int("queries", 1_000, "number of queries")
		dist    = flag.String("dist", "uniform", "initial distribution: uniform|gaussian|skewed")
		maxDist = flag.Float64("maxdist", 0.03, "maximum distance moved per update")
		seed    = flag.Int64("seed", 1, "random seed")
		in      = flag.String("in", "", "input trace file")
		out     = flag.String("out", "trace.gob", "output trace file")
		strat   = flag.String("strategy", "GBU", "replay strategy: TD|LBU|GBU|NAIVE")
		bufFrac = flag.Float64("buffer", 0.01, "buffer pool fraction of database size")
	)
	flag.Parse()

	switch {
	case *gen:
		d, err := workload.ParseDistribution(*dist)
		if err != nil {
			fatal(err)
		}
		spec := workload.Spec{
			NumObjects:   *objects,
			Distribution: d,
			MaxDistance:  *maxDist,
			Seed:         *seed,
		}
		fmt.Fprintf(os.Stderr, "generating %d objects, %d updates, %d queries (%s)...\n",
			*objects, *updates, *queries, d)
		tr := workload.BuildTrace(spec, *updates, *queries)
		if err := tr.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)

	case *info:
		tr := mustRead(*in)
		fmt.Printf("spec: %+v\n", tr.Spec)
		fmt.Printf("initial positions: %d\n", len(tr.Initial))
		fmt.Printf("updates:           %d\n", len(tr.Updates))
		fmt.Printf("queries:           %d\n", len(tr.Queries))
		if len(tr.Updates) > 0 {
			var total float64
			for _, u := range tr.Updates {
				total += geom.Dist(u.Old, u.New)
			}
			fmt.Printf("mean move dist:    %.5f\n", total/float64(len(tr.Updates)))
		}

	case *replay:
		tr := mustRead(*in)
		kind, err := core.ParseKind(*strat)
		if err != nil {
			fatal(err)
		}
		if err := replayTrace(tr, kind, *bufFrac); err != nil {
			fatal(err)
		}

	default:
		fmt.Fprintln(os.Stderr, "burload: one of -gen, -info, -replay required")
		os.Exit(2)
	}
}

func mustRead(path string) *workload.Trace {
	if path == "" {
		fatal(fmt.Errorf("-in required"))
	}
	tr, err := workload.ReadTraceFile(path)
	if err != nil {
		fatal(err)
	}
	return tr
}

func replayTrace(tr *workload.Trace, kind core.Kind, bufFrac float64) error {
	io := &stats.IO{}
	store := pagestore.New(pagestore.DefaultPageSize, io)
	fanout := rtree.MaxEntriesFor(pagestore.DefaultPageSize, kind == core.LBU)
	estPages := float64(len(tr.Initial)) / (float64(fanout) * 0.66) * 1.1
	pool := buffer.New(store, int(bufFrac*estPages))
	u, err := core.New(pool, core.Options{
		Strategy:        kind,
		ExpectedObjects: len(tr.Initial),
		Tree:            rtree.Config{ReinsertFraction: 0.3},
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "building %s index from %d objects...\n", kind, len(tr.Initial))
	start := time.Now()
	for i, p := range tr.Initial {
		if err := u.Insert(rtree.OID(i), p); err != nil {
			return err
		}
	}
	if err := u.Tree().Flush(); err != nil {
		return err
	}
	buildSnap := io.Snapshot()
	fmt.Fprintf(os.Stderr, "  built in %v (height %d)\n", time.Since(start).Round(time.Millisecond), u.Tree().Height())

	start = time.Now()
	for i, up := range tr.Updates {
		if err := u.Update(up.OID, up.Old, up.New); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	if err := u.Tree().Flush(); err != nil {
		return err
	}
	updWall := time.Since(start)
	updSnap := io.Snapshot()

	start = time.Now()
	hits := int64(0)
	for _, q := range tr.Queries {
		if err := u.Search(q, func(rtree.OID, geom.Rect) bool { hits++; return true }); err != nil {
			return err
		}
	}
	qryWall := time.Since(start)
	qrySnap := io.Snapshot()

	upd := updSnap.Sub(buildSnap)
	qry := qrySnap.Sub(updSnap)
	fmt.Printf("strategy           %s\n", kind)
	fmt.Printf("tree height        %d\n", u.Tree().Height())
	fmt.Printf("database pages     %d\n", store.NumPages())
	if n := len(tr.Updates); n > 0 {
		fmt.Printf("avg update I/O     %.3f (CPU %.2fs)\n", float64(upd.Total())/float64(n), updWall.Seconds())
	}
	if n := len(tr.Queries); n > 0 {
		fmt.Printf("avg query I/O      %.3f (CPU %.2fs, %d hits)\n", float64(qry.Total())/float64(n), qryWall.Seconds(), hits)
	}
	fmt.Printf("update outcomes    %+v\n", u.Outcomes())
	if err := u.Err(); err != nil {
		return err
	}
	return u.Tree().CheckInvariants()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "burload:", err)
	os.Exit(1)
}
