// Command burlint runs the repo's invariant analyzers
// (internal/lint). It speaks two protocols:
//
//   - go vet's -vettool protocol (the unitchecker contract): go vet
//     invokes the tool once per compilation unit with a *.cfg file
//     describing sources and export data. This is the CI entry point:
//
//     go build -o bin/burlint ./cmd/burlint
//     go vet -vettool=$PWD/bin/burlint ./...
//
//   - standalone package patterns, loaded via `go list -export`:
//
//     bin/burlint ./...
//
// Diagnostics print as file:line:col: [analyzer] message; the exit
// status is 1 if any finding survives //burlint:ignore suppression.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"burtree/internal/lint"
	"burtree/internal/lint/framework"
	"burtree/internal/lint/loader"
)

func main() {
	// go vet probes the tool with -V=full and -flags before handing it
	// compilation units; both must be handled before normal flag
	// parsing (see cmd/go/internal/work/buildid.go and
	// cmd/go/internal/vet/vetflag.go).
	args := os.Args[1:]
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		printVersion()
		return
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		// burlint defines no tool-specific flags.
		fmt.Println("[]")
		return
	}

	list := flag.Bool("list", false, "list the analyzers and their invariants")
	flag.Usage = usage
	flag.Parse()
	if *list {
		listAnalyzers()
		return
	}

	rest := flag.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitcheck(rest[0]))
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	os.Exit(standalone(rest))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  burlint [packages]       analyze packages (default ./...)
  burlint -list            describe the analyzers
  go vet -vettool=$(command -v burlint) [packages]
`)
}

func listAnalyzers() {
	for _, a := range lint.All() {
		fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
	}
}

// printVersion answers go vet's -V=full probe. The token embeds a
// content hash of the executable so the build cache invalidates vet
// results when the tool changes.
func printVersion() {
	name, token := "burlint", "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				token = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			_ = f.Close() // read-only hash; nothing to surface
		}
	}
	fmt.Printf("%s version %s\n", name, token)
}

// standalone loads packages with `go list -export` and analyzes them.
func standalone(patterns []string) int {
	pkgs, err := loader.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "burlint:", err)
		return 2
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "burlint:", err)
			return 2
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if found {
		return 1
	}
	return 0
}

// vetConfig is the unitchecker Config schema go vet writes (see
// cmd/vendor/golang.org/x/tools/go/analysis/unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one go vet compilation unit.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "burlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "burlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fmt.Fprintln(os.Stderr, "burlint:", err)
			return 2
		}
		files = append(files, f)
	}

	// Resolve imports through the unit's ImportMap to export data in
	// PackageFile — the same lookup the real unitchecker performs.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: goVersion(cfg.GoVersion),
	}
	info := loader.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintln(os.Stderr, "burlint:", err)
		return 2
	}

	diags, err := framework.RunAnalyzers(fset, files, pkg, info, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "burlint:", err)
		return 2
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 1
}

// writeVetx writes the (empty) facts file go vet expects at
// VetxOutput; burlint's analyzers exchange no facts.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.MkdirAll(filepath.Dir(cfg.VetxOutput), 0o777); err == nil {
		//burlint:ignore atomicwrite vetx files are go-vet cache entries keyed by content hash; a torn write is a cache miss, not a torn artifact
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "burlint:", err)
			return 2
		}
	}
	return 0
}

// goVersion sanitizes the config's language version for go/types,
// which rejects anything not of the form "go1.N[.M]".
func goVersion(v string) string {
	if strings.HasPrefix(v, "go1") {
		return v
	}
	return ""
}
