// Package burtree is a disk-oriented R-tree index for frequently updated
// point data — a faithful, production-grade reproduction of
//
//	Lee, Hsu, Jensen, Cui, Teo:
//	"Supporting Frequent Updates in R-Trees: A Bottom-Up Approach",
//	VLDB 2003.
//
// The package indexes moving 2-D point objects and supports three update
// strategies from the paper:
//
//   - TopDown — the classical R-tree update (delete + insert, both
//     top-down): the baseline.
//   - LocalizedBottomUp — Algorithm 1: direct leaf access through a
//     secondary object-id hash index, uniform ε-enlargement of leaf MBRs
//     (bounded by the parent, via leaf parent pointers), sibling shifts.
//   - GeneralizedBottomUp — Algorithm 2: a compact main-memory summary
//     structure over the internal nodes plus a leaf fullness bit vector
//     enables directional ε-extension, bit-vector-screened sibling shifts
//     with piggybacking, ascent to the lowest bounding ancestor
//     (Algorithm 3), and memory-resident query planning.
//
// Beyond the paper, UpdateBatch applies buffered moves through a
// batched bottom-up pipeline: repeated moves of an object coalesce to
// the final position and the surviving changes are grouped by target
// leaf, so each group costs one leaf read, one MBR extension decision
// and one write instead of one of each per object.
//
// Storage is a simulated page store (1 KB pages by default, as in the
// paper) behind an LRU buffer pool, with physical reads and writes
// counted exactly the way the paper's evaluation reports them. The same
// counters are exposed through Stats, so applications can reproduce the
// paper's measurements on their own workloads.
//
// An Index is not safe for concurrent use; see ConcurrentIndex for the
// DGL-locked multi-threaded variant used in the paper's throughput
// study, which offers the same API — updates, batched updates, window
// and nearest-neighbour queries, bulk loading and snapshots — under
// granule locks.
package burtree

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"burtree/internal/buffer"
	"burtree/internal/core"
	"burtree/internal/geom"
	"burtree/internal/memtable"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
	"burtree/internal/wal"
)

// Point is a location in the 2-D data space.
type Point = geom.Point

// Rect is an axis-aligned query window.
type Rect = geom.Rect

// NewRect builds a rectangle from two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// Strategy selects the update algorithm.
type Strategy int

const (
	// TopDown is the traditional R-tree update (paper baseline "TD").
	TopDown Strategy = iota
	// LocalizedBottomUp is the paper's Algorithm 1 ("LBU").
	LocalizedBottomUp
	// GeneralizedBottomUp is the paper's Algorithm 2 ("GBU") and the
	// recommended default for update-heavy workloads.
	GeneralizedBottomUp
)

func (s Strategy) String() string {
	switch s {
	case TopDown:
		return "TopDown"
	case LocalizedBottomUp:
		return "LocalizedBottomUp"
	case GeneralizedBottomUp:
		return "GeneralizedBottomUp"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

func (s Strategy) kind() (core.Kind, error) {
	switch s {
	case TopDown:
		return core.TD, nil
	case LocalizedBottomUp:
		return core.LBU, nil
	case GeneralizedBottomUp:
		return core.GBU, nil
	default:
		return 0, fmt.Errorf("burtree: unknown strategy %d", int(s))
	}
}

// Options configures an Index. The zero value selects the paper's
// defaults (the bold entries of its Table 1) with the TopDown strategy;
// set Strategy to GeneralizedBottomUp for the paper's recommended
// configuration.
//
// The tuning parameters carry the paper's names:
//
//	field              paper  default  used by
//	Epsilon            ε      0.003    LBU, GBU (MBR enlargement cap)
//	DistanceThreshold  δ      0.03     GBU (shift-before-extend cutoff)
//	LevelThreshold     λ      ∞        GBU (max ascent above the leaves)
//	PageSize           —      1024 B   all (node fanout follows)
//	ReinsertFraction   —      0.3      all (R*-style forced reinsertion)
type Options struct {
	// Strategy picks the update algorithm.
	Strategy Strategy
	// PageSize is the simulated disk page size in bytes (default 1024,
	// the paper's setting). Node fanout follows from it.
	PageSize int
	// BufferPages is the LRU buffer pool capacity in pages. Zero
	// disables caching (every access is a disk access).
	BufferPages int
	// Epsilon is the paper's ε parameter: the cap on how far a leaf MBR
	// may be enlarged per update (default 0.003, in data-space units of
	// the unit square). LBU enlarges uniformly in all directions; GBU
	// enlarges only toward the movement (Algorithm 4). TopDown ignores
	// it.
	Epsilon float64
	// DistanceThreshold is the paper's δ parameter (default 0.03):
	// objects that moved farther than δ since their last position are
	// likely to leave the neighbourhood for good, so GBU tries a sibling
	// shift before an ε-extension for them, and the reverse for slow
	// movers (§3.2.1 optimization 2).
	DistanceThreshold float64
	// LevelThreshold is the paper's λ parameter: how many levels above
	// the leaves a GBU update may ascend when the local repair fails
	// (Algorithm 3). Zero (the default) means unrestricted — ascend as
	// far as necessary, the paper's recommended setting.
	LevelThreshold int
	// ExpectedObjects sizes the secondary object-id hash index of the
	// bottom-up strategies (default 1024; undersizing costs overflow
	// pages, not correctness).
	ExpectedObjects int
	// ReinsertFraction enables R*-style forced reinsertion on overflow
	// (default 0.3, matching the paper's "R-tree with reinsertions";
	// set negative to disable).
	ReinsertFraction float64
	// SplitAlgorithm selects the node split (default Guttman quadratic).
	SplitAlgorithm rtree.SplitAlgorithm
	// DisablePiggyback turns off the GBU shift piggybacking optimization.
	DisablePiggyback bool
	// DisableSummaryQueries turns off GBU's memory-assisted queries.
	DisableSummaryQueries bool
	// Durability configures the write-ahead log. The zero value keeps
	// the index volatile (snapshots only); see Durability for the
	// per-batch and group-commit modes, Checkpoint and Recover.
	Durability Durability
	// Memtable configures the in-memory delta tier: writes are absorbed
	// into a memory buffer and acknowledged after the WAL append alone,
	// with the tree pass deferred to a background merge-down. The zero
	// value disables the tier; see the Memtable type for the ack, read
	// and recovery semantics.
	Memtable Memtable
}

// ErrUnknownObject reports an operation on an object id that is not in
// the index.
var ErrUnknownObject = errors.New("burtree: unknown object id")

// ErrDuplicateObject reports an insert of an existing object id.
var ErrDuplicateObject = errors.New("burtree: object id already present")

// Index is a single-writer R-tree over moving point objects.
type Index struct {
	store   *pagestore.Store
	pool    *buffer.Pool
	io      *stats.IO
	updater core.Updater
	objects map[uint64]Point
	options Options // as passed to Open, for persistence

	// wal is the write-ahead log when durability is enabled (nil
	// otherwise); walSeq is the log sequence the loaded snapshot covers.
	wal    *wal.Log
	walSeq uint64

	// mem is the in-memory delta tier when Options.Memtable is enabled
	// (nil otherwise). The single-writer Index merges it down inline
	// whenever a write trips the size or age threshold.
	mem *memtable.Table
}

// indexParts is the machinery shared by Index and ConcurrentIndex: the
// simulated store, its buffer pool, the physical counters and the
// configured update strategy.
type indexParts struct {
	store  *pagestore.Store
	pool   *buffer.Pool
	io     *stats.IO
	u      core.Updater
	opts   Options // normalized copy, retained for persistence
	walSeq uint64  // log sequence a loaded snapshot covers (0 when fresh)
}

// openParts builds the common machinery from user options, normalizing
// the zero-value defaults exactly once for both index front-ends.
func openParts(opts Options) (indexParts, error) {
	var parts indexParts
	kind, err := opts.Strategy.kind()
	if err != nil {
		return parts, err
	}
	if opts.PageSize == 0 {
		opts.PageSize = pagestore.DefaultPageSize
	}
	if opts.ExpectedObjects == 0 {
		opts.ExpectedObjects = 1024
	}
	reinsert := opts.ReinsertFraction
	if reinsert == 0 {
		reinsert = 0.3
	}
	if reinsert < 0 {
		reinsert = 0
	}
	lvl := opts.LevelThreshold
	if lvl == 0 {
		lvl = core.UnrestrictedLevels
	}
	opts.Memtable = opts.Memtable.withDefaults()
	io := &stats.IO{}
	store := pagestore.New(opts.PageSize, io)
	pool := buffer.New(store, opts.BufferPages)
	u, err := core.New(pool, core.Options{
		Strategy:          kind,
		Epsilon:           opts.Epsilon,
		DistanceThreshold: opts.DistanceThreshold,
		LevelThreshold:    lvl,
		NoPiggyback:       opts.DisablePiggyback,
		NoSummaryQueries:  opts.DisableSummaryQueries,
		ExpectedObjects:   opts.ExpectedObjects,
		Tree: rtree.Config{
			ReinsertFraction: reinsert,
			Split:            opts.SplitAlgorithm,
		},
	})
	if err != nil {
		return parts, err
	}
	return indexParts{store: store, pool: pool, io: io, u: u, opts: opts}, nil
}

// Open creates an empty index. With Options.Durability enabled, the
// durability directory must not already hold a snapshot or log
// segments — resume existing durable state with Recover instead.
func Open(opts Options) (*Index, error) {
	if err := opts.Durability.validate(); err != nil {
		return nil, err
	}
	parts, err := openParts(opts)
	if err != nil {
		return nil, err
	}
	x := &Index{
		store:   parts.store,
		pool:    parts.pool,
		io:      parts.io,
		updater: parts.u,
		objects: make(map[uint64]Point),
		options: parts.opts,
	}
	x.ensureMemtable(parts.opts.Memtable)
	if d := opts.Durability; d.enabled() {
		if err := checkFreshDir(d.Dir); err != nil {
			return nil, err
		}
		log, err := wal.Open(d.Dir, d.logOptions(0, nil))
		if err != nil {
			return nil, err
		}
		x.wal = log
	}
	return x, nil
}

// PackMethod selects the bulk-load packing algorithm.
type PackMethod int

const (
	// PackSTR uses Sort-Tile-Recursive packing (the default).
	PackSTR PackMethod = iota
	// PackHilbert orders entries along a Hilbert curve before packing
	// (Kamel & Faloutsos), often better on skewed data.
	PackHilbert
)

// packItems validates a bulk-load input and converts it to tree items
// plus a fresh object table, so a failed load leaves the caller's state
// untouched. Shared by both index front-ends.
func packItems(ids []uint64, pts []Point) ([]rtree.Item, map[uint64]Point, error) {
	if len(ids) != len(pts) {
		return nil, nil, fmt.Errorf("burtree: BulkInsert: %d ids for %d points", len(ids), len(pts))
	}
	objects := make(map[uint64]Point, len(ids))
	items := make([]rtree.Item, len(ids))
	for i := range ids {
		if _, dup := objects[ids[i]]; dup {
			return nil, nil, fmt.Errorf("%w: %d", ErrDuplicateObject, ids[i])
		}
		items[i] = rtree.Item{OID: ids[i], Rect: geom.RectFromPoint(pts[i])}
		objects[ids[i]] = pts[i]
	}
	return items, objects, nil
}

// bulkLoad packs items into the strategy's tree with the chosen method.
func bulkLoad(u core.Updater, items []rtree.Item, method PackMethod) error {
	switch method {
	case PackHilbert:
		return u.Tree().BulkLoadHilbert(items, 0.66)
	default:
		return u.Tree().BulkLoad(items, 0.66)
	}
}

// BulkInsert loads many objects at once into an empty index using the
// chosen packing method at ~66% node fill — far faster than repeated
// Insert calls and the usual way to start the paper's experiments.
// With durability enabled, a successful bulk load checkpoints
// immediately: the snapshot, not per-object log records, is the
// durable form of a bulk load.
func (x *Index) BulkInsert(ids []uint64, pts []Point, method PackMethod) error {
	if len(x.objects) != 0 {
		return fmt.Errorf("burtree: BulkInsert on non-empty index")
	}
	items, objects, err := packItems(ids, pts)
	if err != nil {
		return err
	}
	if err := bulkLoad(x.updater, items, method); err != nil {
		return err
	}
	x.objects = objects
	if x.wal != nil {
		return x.Checkpoint()
	}
	return nil
}

// logAppend records an acknowledged mutation in the write-ahead log,
// blocking until it is durable under the configured sync policy.
// No-op when durability is off.
func (x *Index) logAppend(typ wal.Type, ops []wal.Op) error {
	if x.wal == nil || len(ops) == 0 {
		return nil
	}
	if x.mem != nil {
		// Memtable mode acknowledges at the log append alone: the
		// background group-commit leader advances the durable horizon,
		// and Checkpoint/Save/Close flush hard. See Options.Memtable.
		if _, err := x.wal.AppendAsync(typ, ops); err != nil {
			return fmt.Errorf("burtree: durability: %w", err)
		}
		return nil
	}
	if _, err := x.wal.Append(typ, ops); err != nil {
		return fmt.Errorf("burtree: durability: %w", err)
	}
	return nil
}

// Checkpoint makes the whole index state durable in one snapshot and
// truncates the log: the snapshot is written atomically to the
// durability directory (temp file, fsync, rename), embedding the log
// sequence it covers, and every log segment whose records the snapshot
// covers is deleted. Requires durability to be enabled.
func (x *Index) Checkpoint() error {
	if x.wal == nil {
		return errors.New("burtree: Checkpoint requires durability to be enabled")
	}
	if err := x.wal.Sync(); err != nil {
		return err
	}
	seq := x.wal.LastSeq()
	path := filepath.Join(x.options.Durability.Dir, snapshotFileName)
	if err := saveToFile(path, x.Save); err != nil {
		return err
	}
	return x.wal.TruncateThrough(seq)
}

// Close merges any buffered deltas down to the tree, then syncs and
// closes the write-ahead log (no-op without durability). The index
// itself stays usable for reads; further mutations fail their durable
// append. Close does not checkpoint: recovery replays the log onto the
// last snapshot.
func (x *Index) Close() error {
	derr := x.drainMemtable()
	if x.wal == nil {
		return derr
	}
	return errors.Join(derr, x.wal.Close())
}

// ensureMemtable installs the delta tier from cfg; used at Open and
// when recovery re-enables the tier on a loaded snapshot.
func (x *Index) ensureMemtable(cfg Memtable) {
	cfg = cfg.withDefaults()
	x.options.Memtable = cfg
	if cfg.Enabled && x.mem == nil {
		x.mem = memtable.New(cfg.config())
	}
}

// maybeMerge merges the delta tier down inline when a write tripped
// its size or age threshold (the single-writer Index has no background
// goroutine to hand the work to).
func (x *Index) maybeMerge() error {
	if x.mem != nil && x.mem.NeedsMerge(time.Now()) {
		return x.drainMemtable()
	}
	return nil
}

// drainMemtable merges every buffered delta down to the tree. A
// failure to apply an acknowledged delta is sticky — see
// memtable.Table.Fail. No-op when the tier is disabled.
func (x *Index) drainMemtable() error {
	if x.mem == nil {
		return nil
	}
	entries := x.mem.BeginDrain()
	if entries == nil {
		return x.mem.Err()
	}
	// Attribute the drain's page accesses to the tier's merge counter
	// (even on failure — the pages were spent), mirroring the background
	// attribution on ConcurrentIndex; the single-writer Index just runs
	// its merges inline.
	pre := uint64(x.io.Reads() + x.io.Writes())
	err := drainEntries(entries, x.updater.Delete, x.updater.Insert, func(chs []core.BatchChange) error {
		_, err := core.ApplyBatch(x.updater, chs, func(core.BatchChange) {})
		return err
	}, 1)
	if d := uint64(x.io.Reads()+x.io.Writes()) - pre; d > 0 {
		x.mem.AddMergePages(d)
	}
	if err != nil {
		x.mem.Fail(err)
		return fmt.Errorf("burtree: memtable merge: %w", err)
	}
	x.mem.EndDrain()
	return nil
}

// Insert adds a new object at p.
func (x *Index) Insert(id uint64, p Point) error {
	if _, ok := x.objects[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateObject, id)
	}
	if x.mem != nil {
		if err := validatePoint(p); err != nil {
			return err
		}
		x.mem.Insert(id, p)
		x.objects[id] = p
		if err := x.logAppend(wal.TypeInsert, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
			// Absorbed but not logged: the caller sees an error, so the
			// insert must not stick — recovery would silently lose an
			// object the index still serves. The delete delta cancels the
			// absorbed insert outright.
			x.mem.Delete(id, p)
			delete(x.objects, id)
			return err
		}
		return x.maybeMerge()
	}
	if err := x.updater.Insert(id, p); err != nil {
		return err
	}
	x.objects[id] = p
	if err := x.logAppend(wal.TypeInsert, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
		// Applied but not logged: roll the tree and table back, as the
		// sharded front-end does.
		err = errors.Join(err, x.updater.Delete(id, p))
		delete(x.objects, id)
		return err
	}
	return nil
}

// Update moves an existing object to p using the configured strategy.
// The index tracks each object's current position, so callers only
// supply the new one.
func (x *Index) Update(id uint64, p Point) error {
	old, ok := x.objects[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	if x.mem != nil {
		if err := validatePoint(p); err != nil {
			return err
		}
		x.mem.Update(id, p, old)
		x.objects[id] = p
		if err := x.logAppend(wal.TypeBatch, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
			// Absorbed but not logged: re-absorb the old position so the
			// errored move leaves no acked-but-unreplayable state.
			x.mem.Update(id, old, p)
			x.objects[id] = old
			return err
		}
		return x.maybeMerge()
	}
	if err := x.updater.Update(id, old, p); err != nil {
		return err
	}
	x.objects[id] = p
	if err := x.logAppend(wal.TypeBatch, []wal.Op{{ID: id, X: p.X, Y: p.Y}}); err != nil {
		// Applied but not logged: move the object back and restore the
		// table, mirroring the sharded front-end's rollback.
		err = errors.Join(err, x.updater.Update(id, p, old))
		x.objects[id] = old
		return err
	}
	return nil
}

// Change is one object move inside a batch: object ID moves to
// position To. The index knows each object's current position, so a
// change carries only the destination, like Update.
type Change struct {
	// ID names an object already in the index.
	ID uint64
	// To is the object's new position.
	To Point
}

// BatchResult reports how UpdateBatch resolved a batch.
type BatchResult struct {
	// Applied is the number of moves applied to the index after
	// coalescing (one per distinct object id in the batch).
	Applied int
	// Coalesced is the number of input changes superseded by a later
	// move of the same object within the batch; they cost no index work.
	Coalesced int
	// Groups is the number of target-leaf groups the batch formed.
	Groups int
	// GroupResolved is the number of changes resolved by a shared
	// per-leaf pass: one leaf read, one extension decision and one write
	// covering the whole group.
	GroupResolved int
	// Fallback is the number of changes applied through a per-object
	// path instead of a shared group pass: changes the group pass
	// declined (sibling shift, ascent, top-down), plus every change of
	// a batch when the strategy has no group support at all (TopDown
	// runs batches sequentially, so there Fallback equals Applied).
	Fallback int
	// CrossShard is the number of changes that moved an object between
	// shards (ShardedIndex only: each is a delete in the source shard
	// plus an insert in the destination).
	CrossShard int
	// Absorbed is the number of changes absorbed by the in-memory delta
	// tier instead of being applied to the tree (memtable mode only;
	// such changes count in Applied but in none of the tree-path
	// counters, since their tree work happens at merge-down time).
	Absorbed int
	// PageIO is the number of physical page accesses (reads + writes)
	// the batch's foreground apply incurred, background merge-down work
	// excluded. Under concurrent batches on the same index the figure
	// can include pages from overlapping operations; it is an
	// attribution signal, not an exact ledger. Absorbed batches report
	// ~0: their tree I/O is deferred to merge-down.
	PageIO int
	// Combined is the number of this caller's changes handed to a
	// hot-cell phase leader and applied as part of another caller's
	// combined batch (ShardedIndex phase batching only). Such changes
	// are applied, just not by this caller, so Applied+Combined is this
	// caller's end-to-end total; the phase leader excludes followers'
	// changes from its own Applied while reporting the phase-level
	// Coalesced/Groups/PageIO once, in its result.
	Combined int
}

// foregroundPages converts a bracketed (pages, background-pages) delta
// pair into the foreground page count, clamped at zero: a background
// drain finishing inside the bracket can make the background delta
// exceed the foreground one.
func foregroundPages(pages, bg uint64) int {
	if bg >= pages {
		return 0
	}
	return int(pages - bg)
}

// coalesceChanges validates every id against lookup, then coalesces
// repeated moves of the same object to the final position through
// core.Coalesce (one shared definition of the last-write-wins rule).
// It returns the number of superseded input changes; an unknown id
// aborts with ErrUnknownObject. Shared by Index and ConcurrentIndex.
func coalesceChanges(changes []Change, lookup func(uint64) (Point, bool)) ([]core.BatchChange, int, error) {
	raw := make([]core.BatchChange, len(changes))
	for i, c := range changes {
		old, ok := lookup(c.ID)
		if !ok {
			return nil, 0, fmt.Errorf("%w: %d", ErrUnknownObject, c.ID)
		}
		raw[i] = core.BatchChange{OID: c.ID, Old: old, New: c.To}
	}
	out, dropped := core.Coalesce(raw)
	return out, dropped, nil
}

// UpdateBatch moves many objects at once through the batched bottom-up
// pipeline: repeated moves of the same object are coalesced to the last
// position, the surviving changes are grouped by target leaf via the
// secondary hash index, and each leaf's group is applied in one
// bottom-up pass — one leaf read, one MBR extension decision covering
// the whole group, one write — falling back to the configured
// strategy's per-object path only for the changes the group pass cannot
// resolve. With the TopDown strategy (which has no per-leaf state to
// amortize) the batch degrades to a sequential application.
//
// Every id must already be in the index; an unknown id fails the whole
// batch before anything is applied. A batch is not atomic with respect
// to errors: if a change fails mid-batch, the error is returned and the
// changes before it remain applied (the returned BatchResult counts
// them).
func (x *Index) UpdateBatch(changes []Change) (BatchResult, error) {
	var res BatchResult
	coalesced, dropped, err := coalesceChanges(changes, func(id uint64) (Point, bool) {
		p, ok := x.objects[id]
		return p, ok
	})
	if err != nil {
		return res, err
	}
	res.Coalesced = dropped
	if x.mem != nil {
		return x.absorbBatch(coalesced, res)
	}
	var applied []wal.Op
	prePages := uint64(x.io.Reads() + x.io.Writes())
	st, err := core.ApplyBatch(x.updater, coalesced, func(c core.BatchChange) {
		x.objects[c.OID] = c.New
		res.Applied++
		if x.wal != nil {
			applied = append(applied, wal.Op{ID: c.OID, X: c.New.X, Y: c.New.Y})
		}
	})
	res.Groups = st.Groups
	res.GroupResolved = st.GroupResolved
	res.Fallback = st.LocalFallback + st.Sequential
	res.PageIO = foregroundPages(uint64(x.io.Reads()+x.io.Writes())-prePages, 0)
	// One record covers the applied prefix — all of the batch on
	// success, exactly the changes before the failure otherwise.
	if werr := x.logAppend(wal.TypeBatch, applied); werr != nil {
		return res, errors.Join(err, werr)
	}
	return res, err
}

// absorbBatch is the memtable-mode tail of UpdateBatch: the coalesced
// changes are absorbed into the delta tier (atomically — no partial
// batches at the ack level), logged as one record, and merged down
// inline if the batch tripped the tier's threshold.
func (x *Index) absorbBatch(coalesced []core.BatchChange, res BatchResult) (BatchResult, error) {
	for _, c := range coalesced {
		if err := validatePoint(c.New); err != nil {
			return res, err
		}
	}
	applied := make([]wal.Op, 0, len(coalesced))
	for _, c := range coalesced {
		x.mem.Update(c.OID, c.New, c.Old)
		x.objects[c.OID] = c.New
		applied = append(applied, wal.Op{ID: c.OID, X: c.New.X, Y: c.New.Y})
	}
	res.Applied = len(coalesced)
	res.Absorbed = len(coalesced)
	if err := x.logAppend(wal.TypeBatch, applied); err != nil {
		// Absorbed but not logged: unwind every delta so the failed
		// batch leaves the tier exactly as it was — the absorb path is
		// atomic at the ack level, so the rollback must be too.
		for _, c := range coalesced {
			x.mem.Update(c.OID, c.Old, c.New)
			x.objects[c.OID] = c.Old
		}
		res.Applied = 0
		res.Absorbed = 0
		return res, err
	}
	return res, x.maybeMerge()
}

// Delete removes an object.
func (x *Index) Delete(id uint64) error {
	old, ok := x.objects[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	if x.mem != nil {
		x.mem.Delete(id, old)
		delete(x.objects, id)
		if err := x.logAppend(wal.TypeDelete, []wal.Op{{ID: id}}); err != nil {
			// Absorbed but not logged: resurrect the object so the
			// errored delete leaves nothing for recovery to disagree
			// about.
			x.mem.Insert(id, old)
			x.objects[id] = old
			return err
		}
		return x.maybeMerge()
	}
	if err := x.updater.Delete(id, old); err != nil {
		return err
	}
	delete(x.objects, id)
	if err := x.logAppend(wal.TypeDelete, []wal.Op{{ID: id}}); err != nil {
		// Applied but not logged: resurrect the object in tree and
		// table, mirroring the sharded front-end's rollback.
		err = errors.Join(err, x.updater.Insert(id, old))
		x.objects[id] = old
		return err
	}
	return nil
}

// Location returns the current indexed position of an object.
func (x *Index) Location(id uint64) (Point, bool) {
	p, ok := x.objects[id]
	return p, ok
}

// Len returns the number of indexed objects.
func (x *Index) Len() int { return len(x.objects) }

// Search returns the ids of all objects inside the window q.
func (x *Index) Search(q Rect) ([]uint64, error) {
	var out []uint64
	err := x.SearchFunc(q, func(id uint64, p Point) bool {
		out = append(out, id)
		return true
	})
	return out, err
}

// SearchFunc streams the objects inside q to visit; return false to stop
// early. With the delta tier enabled, buffered writes are merged into
// the results (read-your-writes; tombstones mask deleted objects).
func (x *Index) SearchFunc(q Rect, visit func(id uint64, p Point) bool) error {
	if x.mem != nil {
		if overlay := x.mem.Snapshot(); overlay != nil {
			return overlaySearch(overlay, q, func(emit func(uint64, Rect) bool) error {
				return x.updater.Search(q, emit)
			}, visit)
		}
	}
	return x.updater.Search(q, func(oid rtree.OID, r geom.Rect) bool {
		return visit(oid, Point{X: r.MinX, Y: r.MinY})
	})
}

// Count returns the number of objects inside q.
func (x *Index) Count(q Rect) (int, error) {
	n := 0
	err := x.SearchFunc(q, func(uint64, Point) bool { n++; return true })
	return n, err
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	ID       uint64
	Location Point
	Dist     float64
}

// Nearest returns the k objects nearest to p in increasing distance.
func (x *Index) Nearest(p Point, k int) ([]Neighbor, error) {
	if x.mem != nil {
		if overlay := x.mem.Snapshot(); overlay != nil {
			return overlayNearest(overlay, p, k, func(k int) ([]rtree.Neighbor, error) {
				return x.updater.Nearest(p, k)
			})
		}
	}
	res, err := x.updater.Nearest(p, k)
	if err != nil {
		return nil, err
	}
	return neighborsFromTree(res), nil
}

// neighborsFromTree converts tree-level NN results to the public type.
func neighborsFromTree(res []rtree.Neighbor) []Neighbor {
	out := make([]Neighbor, len(res))
	for i, n := range res {
		out[i] = Neighbor{ID: n.OID, Location: Point{X: n.Rect.MinX, Y: n.Rect.MinY}, Dist: n.Dist}
	}
	return out
}

// Stats reports the physical counters and tree shape.
type Stats struct {
	DiskReads  int64
	DiskWrites int64
	BufferHits int64
	Splits     int64
	Reinserts  int64

	Height int
	Pages  int
	Size   int

	// Outcomes classifies how updates were resolved (bottom-up
	// strategies; TopDown reports everything as TopDown).
	Outcomes core.Outcomes

	// Memtable reports the in-memory delta tier's counters (zero when
	// Options.Memtable is disabled).
	Memtable MemtableStats
}

// Stats returns a snapshot of the counters.
func (x *Index) Stats() Stats {
	s := x.io.Snapshot()
	return Stats{
		DiskReads:  s.Reads,
		DiskWrites: s.Writes,
		BufferHits: s.BufferHits,
		Splits:     s.Splits,
		Reinserts:  s.Reinserts,
		Height:     x.updater.Tree().Height(),
		Pages:      x.store.NumPages(),
		Size:       x.updater.Tree().Size(),
		Outcomes:   x.updater.Outcomes(),
		Memtable:   memStatsOf(x.mem),
	}
}

// ResetStats zeroes the physical counters (tree shape is unaffected).
func (x *Index) ResetStats() { x.io.Reset() }

// Flush writes all buffered dirty pages to the simulated disk.
func (x *Index) Flush() error { return x.pool.Flush() }

// CheckInvariants validates the complete index structure; it is meant
// for tests and costs a full tree walk.
func (x *Index) CheckInvariants() error {
	if err := x.updater.Err(); err != nil {
		return err
	}
	if err := x.updater.Tree().CheckInvariants(); err != nil {
		return err
	}
	if x.mem != nil {
		return checkMemOverlay(x.mem, x.objects, x.updater.Tree().Size())
	}
	if x.updater.Tree().Size() != len(x.objects) {
		return fmt.Errorf("burtree: tree size %d != tracked objects %d", x.updater.Tree().Size(), len(x.objects))
	}
	return nil
}

// Updater exposes the underlying strategy for advanced integrations
// (e.g. wrapping in a ConcurrentIndex).
func (x *Index) Updater() core.Updater { return x.updater }
