package burtree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func buildForPersist(t *testing.T, s Strategy) (*Index, *rand.Rand) {
	t.Helper()
	x, err := Open(Options{Strategy: s, ExpectedObjects: 2000, BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 1500; i++ {
		if err := x.Insert(uint64(i), Point{X: rng.Float64(), Y: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 2000; step++ {
		id := uint64(rng.Intn(1500))
		p, _ := x.Location(id)
		np := Point{X: p.X + (rng.Float64()-0.5)*0.05, Y: p.Y + (rng.Float64()-0.5)*0.05}
		if err := x.Update(id, np); err != nil {
			t.Fatal(err)
		}
	}
	return x, rng
}

func queriesMatch(t *testing.T, a, b *Index, rng *rand.Rand, n int) {
	t.Helper()
	for q := 0; q < n; q++ {
		cx, cy := rng.Float64(), rng.Float64()
		w := NewRect(cx, cy, cx+rng.Float64()*0.1, cy+rng.Float64()*0.1)
		ra, err := a.Search(w)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(w)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ra, func(i, j int) bool { return ra[i] < ra[j] })
		sort.Slice(rb, func(i, j int) bool { return rb[i] < rb[j] })
		if len(ra) != len(rb) {
			t.Fatalf("query %v: %d vs %d results", w, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %v: result %d differs", w, i)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, s := range allFacadeStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			orig, rng := buildForPersist(t, s)
			var buf bytes.Buffer
			if err := orig.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Len() != orig.Len() {
				t.Fatalf("Len = %d, want %d", loaded.Len(), orig.Len())
			}
			if err := loaded.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			queriesMatch(t, orig, loaded, rng, 30)
		})
	}
}

func TestLoadedIndexKeepsWorking(t *testing.T) {
	orig, rng := buildForPersist(t, GeneralizedBottomUp)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	x, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded index must accept the full op mix: updates (all
	// bottom-up paths), inserts, deletes.
	for step := 0; step < 3000; step++ {
		id := uint64(rng.Intn(1500))
		p, ok := x.Location(id)
		if !ok {
			continue
		}
		np := Point{X: p.X + (rng.Float64()-0.5)*0.08, Y: p.Y + (rng.Float64()-0.5)*0.08}
		if err := x.Update(id, np); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for i := 1500; i < 1700; i++ {
		if err := x.Insert(uint64(i), Point{X: rng.Float64(), Y: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := x.Delete(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", x.Len())
	}
	// Update outcomes should include local resolutions (summary and hash
	// were rebuilt correctly).
	out := x.Stats().Outcomes
	if out.InLeaf+out.Extended+out.Shifted == 0 {
		t.Fatalf("no local resolutions after load: %+v", out)
	}
}

func TestSaveLoadFile(t *testing.T) {
	orig, rng := buildForPersist(t, LocalizedBottomUp)
	path := t.TempDir() + "/index.bur"
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	queriesMatch(t, orig, loaded, rng, 15)
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var empty bytes.Buffer
	if _, err := Load(&empty); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSaveLoadEmptyIndex(t *testing.T) {
	x, err := Open(Options{Strategy: GeneralizedBottomUp})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	// And it accepts inserts.
	if err := loaded.Insert(1, Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
