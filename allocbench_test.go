package burtree_test

// Per-op allocation benchmarks for the hot batch path, plus the budget
// gate that holds them to the thresholds committed in
// BENCH_allocs.json. The static side of the same contract is the
// hotpath analyzer (internal/lint/analyzers/hotpath): burlint rejects
// per-op allocation sites reachable from //burlint:hotpath roots, and
// this gate catches what escapes static analysis (allocations inside
// the runtime, map growth, append growth).
//
// To re-baseline after an intentional change, run
//
//	go test -run TestAllocBudget -v .
//
// and copy the reported allocs/op into BENCH_allocs.json with ~25%
// headroom (the paths are deterministic, but map/append growth varies
// a little with b.N).

import (
	"encoding/json"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"burtree"
)

// benchAllocUpdateBatch drives steady-state batched updates against a
// populated index; allocs/op is the allocation cost of one whole batch
// window (256 moves).
func benchAllocUpdateBatch(b *testing.B, s burtree.Strategy, memtable bool) {
	const n = 4096
	const batch = 256
	opts := burtree.Options{Strategy: s, ExpectedObjects: n, BufferPages: 256}
	if memtable {
		// A threshold the bench never trips: the gate measures the pure
		// absorb path, not the amortized merge-down.
		opts.Memtable = burtree.Memtable{Enabled: true, MaxObjects: 1 << 20}
	}
	x, err := burtree.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		if err := x.Insert(uint64(i), burtree.Point{X: rng.Float64(), Y: rng.Float64()}); err != nil {
			b.Fatal(err)
		}
	}
	changes := make([]burtree.Change, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range changes {
			id := uint64(rng.Intn(n))
			p, _ := x.Location(id)
			changes[j] = burtree.Change{ID: id, To: burtree.Point{
				X: p.X + (rng.Float64()*2-1)*0.03,
				Y: p.Y + (rng.Float64()*2-1)*0.03,
			}}
		}
		if _, err := x.UpdateBatch(changes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateBatchAllocsGBU(b *testing.B) {
	benchAllocUpdateBatch(b, burtree.GeneralizedBottomUp, false)
}

func BenchmarkUpdateBatchAllocsLBU(b *testing.B) {
	benchAllocUpdateBatch(b, burtree.LocalizedBottomUp, false)
}

func BenchmarkUpdateBatchAllocsMemtable(b *testing.B) {
	benchAllocUpdateBatch(b, burtree.GeneralizedBottomUp, true)
}

// BenchmarkUpdateBatchAllocsPhase drives batched updates through the
// hot-object phase-batching path of a ShardedIndex: every change
// targets one phase-batched cell, so each batch joins a phase, leads
// it, and applies it through the combiner. The budget holds the
// combiner's per-batch buffer path (join, detach, settle, apply) to a
// fixed allocation cost on top of the shard's ordinary batch work.
func BenchmarkUpdateBatchAllocsPhase(b *testing.B) {
	const n = 512
	const batch = 256
	x, err := burtree.OpenSharded(burtree.Options{
		Strategy:        burtree.GeneralizedBottomUp,
		ExpectedObjects: n,
		BufferPages:     256,
	}, burtree.ShardOptions{Shards: 2, Partition: burtree.ShardHilbert})
	if err != nil {
		b.Fatal(err)
	}
	defer x.Close()
	// Cluster every object in one cell so the priming window marks it
	// hot; jitter keeps updates real (no same-point no-ops).
	center := burtree.Point{X: 0.015, Y: 0.015}
	rng := rand.New(rand.NewSource(11))
	jitter := func() burtree.Point {
		return burtree.Point{
			X: center.X + (rng.Float64()*2-1)*0.002,
			Y: center.Y + (rng.Float64()*2-1)*0.002,
		}
	}
	for i := 0; i < n; i++ {
		if err := x.Insert(uint64(i), jitter()); err != nil {
			b.Fatal(err)
		}
	}
	// A sub-millisecond window keeps the leader's accumulation sleep out
	// of the measurement's way; HotFactor is set absurdly high so no
	// boundary ever moves mid-benchmark.
	x.SetRebalance(burtree.RebalanceOptions{
		PhaseWindow:   50 * time.Microsecond,
		HotCellFactor: 2,
		MinOps:        1,
		HotFactor:     1e9,
	})
	changes := make([]burtree.Change, batch)
	for j := range changes {
		changes[j] = burtree.Change{ID: uint64(rng.Intn(n)), To: jitter()}
	}
	if _, err := x.UpdateBatch(changes); err != nil {
		b.Fatal(err)
	}
	if _, err := x.Rebalance(); err != nil {
		b.Fatal(err)
	}
	if len(x.HotCells()) == 0 {
		b.Fatal("priming did not mark the cluster cell hot")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range changes {
			changes[j] = burtree.Change{ID: uint64(rng.Intn(n)), To: jitter()}
		}
		if _, err := x.UpdateBatch(changes); err != nil {
			b.Fatal(err)
		}
	}
}

// allocBudgetBenches maps each budget entry in BENCH_allocs.json to
// the benchmark that measures it.
var allocBudgetBenches = map[string]func(*testing.B){
	"UpdateBatchGBU":      BenchmarkUpdateBatchAllocsGBU,
	"UpdateBatchLBU":      BenchmarkUpdateBatchAllocsLBU,
	"UpdateBatchMemtable": BenchmarkUpdateBatchAllocsMemtable,
	"UpdateBatchPhase":    BenchmarkUpdateBatchAllocsPhase,
}

// allocBudgetFile is the committed allocation-threshold schema.
type allocBudgetFile struct {
	// Note documents the file for readers landing on the JSON.
	Note string `json:"note"`
	// Budgets maps benchmark key to the maximum allowed allocs/op.
	Budgets map[string]int64 `json:"budgets"`
}

// TestAllocBudget fails when a hot-path benchmark exceeds its
// committed allocs/op threshold — the dynamic complement of the
// hotpath analyzer. Run without -short (CI has a dedicated step).
func TestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget gate runs full benchmarks; skipped with -short")
	}
	data, err := os.ReadFile("BENCH_allocs.json")
	if err != nil {
		t.Fatal(err)
	}
	var f allocBudgetFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("parsing BENCH_allocs.json: %v", err)
	}
	for name := range f.Budgets {
		if _, ok := allocBudgetBenches[name]; !ok {
			t.Errorf("BENCH_allocs.json budgets %q but no benchmark measures it", name)
		}
	}
	names := make([]string, 0, len(allocBudgetBenches))
	for name := range allocBudgetBenches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		budget, ok := f.Budgets[name]
		if !ok {
			t.Errorf("%s: no budget in BENCH_allocs.json", name)
			continue
		}
		r := testing.Benchmark(allocBudgetBenches[name])
		got := r.AllocsPerOp()
		if got > budget {
			t.Errorf("%s: %d allocs/op exceeds the committed budget %d; "+
				"hoist the new per-op allocation or re-baseline BENCH_allocs.json with the regression explained",
				name, got, budget)
			continue
		}
		t.Logf("%s: %d allocs/op (budget %d)", name, got, budget)
	}
}
