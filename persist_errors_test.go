package burtree

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"
)

// Error-path coverage for the persistence layer: truncated files,
// corrupt bodies, wrong magic and sharded-manifest mismatches must all
// surface as errors — never panics — from every load entry point.

// loadEntryPoints runs all three loaders on the same bytes; each must
// return an error (and must not panic).
func loadEntryPoints(t *testing.T, label string, raw []byte) {
	t.Helper()
	for name, load := range map[string]func() error{
		"Load":           func() error { _, err := Load(bytes.NewReader(raw)); return err },
		"LoadConcurrent": func() error { _, err := LoadConcurrent(bytes.NewReader(raw)); return err },
		"LoadSharded":    func() error { _, err := LoadSharded(bytes.NewReader(raw)); return err },
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: %s panicked: %v", label, name, r)
				}
			}()
			if err := load(); err == nil {
				t.Errorf("%s: %s returned nil error", label, name)
			}
		}()
	}
}

func savedSingleSnapshot(t *testing.T) []byte {
	t.Helper()
	idx, err := Open(Options{Strategy: GeneralizedBottomUp, ExpectedObjects: 256})
	if err != nil {
		t.Fatal(err)
	}
	ids, pts := randomPoints(400, 31)
	if err := idx.BulkInsert(ids, pts, PackSTR); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func savedShardedSnapshot(t *testing.T) []byte {
	t.Helper()
	sh, err := OpenSharded(Options{Strategy: GeneralizedBottomUp, ExpectedObjects: 512}, ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids, pts := randomPoints(400, 32)
	if err := sh.BulkInsert(ids, pts, PackSTR); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadTruncated(t *testing.T) {
	for label, raw := range map[string][]byte{
		"single":  savedSingleSnapshot(t),
		"sharded": savedShardedSnapshot(t),
	} {
		// Cut at the empty prefix, inside the magic, just after the magic,
		// and at several points inside the gob body.
		cuts := []int{0, 3, 8, 9, len(raw) / 4, len(raw) / 2, len(raw) - 1}
		for _, cut := range cuts {
			loadEntryPoints(t, fmt.Sprintf("%s truncated at %d/%d", label, cut, len(raw)), raw[:cut])
		}
	}
}

func TestLoadWrongMagic(t *testing.T) {
	raw := savedSingleSnapshot(t)
	bad := append([]byte(nil), raw...)
	copy(bad, []byte("NOTBURTR"))
	loadEntryPoints(t, "wrong magic", bad)

	var errBad error
	_, errBad = Load(bytes.NewReader(bad))
	if !errors.Is(errBad, ErrBadSnapshot) {
		t.Fatalf("wrong magic error is not ErrBadSnapshot: %v", errBad)
	}
	// Garbage after a valid magic must fail in the decoder, not panic.
	garbage := append(append([]byte(nil), raw[:8]...), []byte("complete nonsense, not gob")...)
	loadEntryPoints(t, "garbage body", garbage)
}

// TestLoadCorruptBody flips bytes throughout the body and requires
// every loader to either fail cleanly or produce a structurally valid
// index — never panic, never return a silently broken index.
func TestLoadCorruptBody(t *testing.T) {
	raw := savedSingleSnapshot(t)
	step := len(raw) / 40
	if step == 0 {
		step = 1
	}
	for pos := 9; pos < len(raw); pos += step {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0xA5
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte flip at %d: Load panicked: %v", pos, r)
				}
			}()
			idx, err := Load(bytes.NewReader(bad))
			if err != nil {
				return // clean failure
			}
			// The flip may have landed in page payload or the object table
			// — that can load, but the structure must still be coherent
			// enough to validate or to fail validation cleanly.
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte flip at %d: CheckInvariants panicked: %v", pos, r)
				}
			}()
			_ = idx.CheckInvariants()
		}()
	}
}

// TestLoadShardedManifestMismatch rewrites a sharded manifest so the
// declared shard count disagrees with the carried blobs.
func TestLoadShardedManifestMismatch(t *testing.T) {
	raw := savedShardedSnapshot(t)
	var s savedSharded
	if err := gob.NewDecoder(bufio.NewReader(bytes.NewReader(raw[8:]))).Decode(&s); err != nil {
		t.Fatal(err)
	}

	reencode := func(s savedSharded) []byte {
		var buf bytes.Buffer
		buf.Write(shardedMagic[:])
		if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Manifest declares more shards than the snapshot carries.
	more := s
	more.Shards = s.Shards + 1
	loadEntryPoints(t, "count mismatch (declared high)", reencode(more))

	// Blob list loses a shard.
	fewer := s
	fewer.Blobs = s.Blobs[:len(s.Blobs)-1]
	loadEntryPoints(t, "count mismatch (blob missing)", reencode(fewer))

	// A shard blob is truncated mid-body.
	cut := s
	cut.Blobs = append([][]byte(nil), s.Blobs...)
	cut.Blobs[1] = cut.Blobs[1][:len(cut.Blobs[1])/2]
	loadEntryPoints(t, "corrupt shard blob", reencode(cut))

	// A shard blob carries the wrong magic.
	wrongInner := s
	wrongInner.Blobs = append([][]byte(nil), s.Blobs...)
	wrongInner.Blobs[0] = append([]byte(nil), s.Blobs[0]...)
	copy(wrongInner.Blobs[0], []byte("XXXXXXXX"))
	loadEntryPoints(t, "wrong inner magic", reencode(wrongInner))

	// A corrupt partition spec (grid that does not factor the count).
	badSpec := s
	badSpec.GridX, badSpec.GridY = 7, 9
	if _, err := LoadSharded(bytes.NewReader(reencode(badSpec))); err == nil {
		t.Fatal("LoadSharded accepted an inconsistent partition spec")
	}

	// The untampered snapshot still loads everywhere (the fixture is not
	// vacuous).
	if _, err := LoadSharded(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConcurrent(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
}

// TestLoadShardedRejectsMisrouted covers the cross-check that every
// object in a shard blob actually routes to that shard.
func TestLoadShardedRejectsMisrouted(t *testing.T) {
	raw := savedShardedSnapshot(t)
	var s savedSharded
	if err := gob.NewDecoder(bufio.NewReader(bytes.NewReader(raw[8:]))).Decode(&s); err != nil {
		t.Fatal(err)
	}
	// Swap two shard blobs: their object tables no longer match the
	// partition spec.
	s.Blobs[0], s.Blobs[1] = s.Blobs[1], s.Blobs[0]
	var buf bytes.Buffer
	buf.Write(shardedMagic[:])
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("LoadSharded accepted misrouted shard contents")
	}
}

func TestLoadSingleIntoShardedRejected(t *testing.T) {
	raw := savedSingleSnapshot(t)
	if _, err := LoadSharded(bytes.NewReader(raw)); err == nil {
		t.Fatal("LoadSharded must reject single-tree snapshots")
	}
}
