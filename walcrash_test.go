package burtree

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// The crash-injection harness: a deterministic operation stream is
// applied to a durable index, then the "crash" is injected — the log is
// truncated at arbitrary byte offsets, or the whole process is
// SIGKILLed — and recovery is checked against a brute-force oracle:
// the recovered object table must equal the oracle state after exactly
// the durable prefix of operations, and every acknowledged operation
// must be inside that prefix.

// crashOpts returns the durable index configuration shared by the
// parent and child halves of the harness (they must agree bit for bit).
func crashOpts(stateDir string) Options {
	return Options{
		Strategy:        GeneralizedBottomUp,
		PageSize:        256,
		BufferPages:     8,
		ExpectedObjects: 256,
		Durability:      Durability{Mode: DurabilityBatch, Dir: stateDir},
	}
}

// memtableCrashOpts is crashOpts with the delta tier enabled at a
// budget small enough that merge-downs trip every few operations, so
// crashes land mid-merge and recovery must rebuild state whose tree
// half and memtable half were torn arbitrarily.
func memtableCrashOpts(stateDir string) Options {
	o := crashOpts(stateDir)
	o.Memtable = Memtable{Enabled: true, MaxObjects: 8}
	return o
}

// crashStream generates the deterministic op stream: every op maps to
// exactly one log record, and the stream only issues valid operations
// (inserts of fresh ids, updates/deletes/batches over live ids).
type crashStream struct {
	rng    *rand.Rand
	oracle map[uint64]Point
	ids    []uint64 // live ids in insertion order (deterministic picks)
	nextID uint64
	op     int
}

func newCrashStream() *crashStream {
	return &crashStream{rng: rand.New(rand.NewSource(42)), oracle: make(map[uint64]Point)}
}

// apply issues the next operation against a (nil = oracle only) and
// mirrors it into the oracle.
func (s *crashStream) apply(a applier) error {
	defer func() { s.op++ }()
	insert := func() error {
		id := s.nextID
		s.nextID++
		p := Point{X: s.rng.Float64(), Y: s.rng.Float64()}
		if a != nil {
			if err := a.Insert(id, p); err != nil {
				return err
			}
		}
		s.oracle[id] = p
		s.ids = append(s.ids, id)
		return nil
	}
	if s.op < 24 || len(s.ids) == 0 {
		return insert()
	}
	switch s.rng.Intn(5) {
	case 0:
		return insert()
	case 1: // delete a live id
		i := s.rng.Intn(len(s.ids))
		id := s.ids[i]
		if a != nil {
			if err := a.Delete(id); err != nil {
				return err
			}
		}
		delete(s.oracle, id)
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
		return nil
	case 2: // single update
		id := s.ids[s.rng.Intn(len(s.ids))]
		p := Point{X: s.rng.Float64(), Y: s.rng.Float64()}
		if a != nil {
			if u, ok := a.(interface{ Update(uint64, Point) error }); ok {
				if err := u.Update(id, p); err != nil {
					return err
				}
			}
		}
		s.oracle[id] = p
		return nil
	default: // batch of moves (possibly with repeats, exercising coalescing)
		n := s.rng.Intn(6) + 2
		batch := make([]Change, 0, n)
		for j := 0; j < n; j++ {
			id := s.ids[s.rng.Intn(len(s.ids))]
			p := Point{X: s.rng.Float64(), Y: s.rng.Float64()}
			batch = append(batch, Change{ID: id, To: p})
		}
		if a != nil {
			if _, err := a.UpdateBatch(batch); err != nil {
				return err
			}
		}
		for _, c := range batch {
			s.oracle[c.ID] = c.To
		}
		return nil
	}
}

// fingerprint canonicalizes an object table for exact comparison.
func fingerprint(objects map[uint64]Point) string {
	ids := make([]uint64, 0, len(objects))
	for id := range objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		p := objects[id]
		fmt.Fprintf(&b, "%d:%x:%x;", id, math.Float64bits(p.X), math.Float64bits(p.Y))
	}
	return b.String()
}

// searcher is any front-end that can stream its contents.
type searcher interface {
	SearchFunc(Rect, func(uint64, Point) bool) error
}

func recoveredObjects(t *testing.T, idx searcher) map[uint64]Point {
	t.Helper()
	out := make(map[uint64]Point)
	err := idx.SearchFunc(NewRect(-10, -10, 10, 10), func(id uint64, p Point) bool {
		out[id] = p
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func recoveredFingerprint(t *testing.T, idx searcher) string {
	t.Helper()
	return fingerprint(recoveredObjects(t, idx))
}

// checkOldOrNew verifies a recovered table against the oracle state
// before (a) and after (b) the single op in flight at the crash: ids
// the op does not touch must survive exactly, ids it touches may hold
// the old or the new value (a batch is not atomic, so per-shard slices
// of the in-flight batch may be independently durable).
func checkOldOrNew(rec, a, b map[uint64]Point) error {
	for id, p := range rec {
		pa, inA := a[id]
		pb, inB := b[id]
		if (inA && p == pa) || (inB && p == pb) {
			continue
		}
		return fmt.Errorf("object %d recovered at %v, in neither oracle state", id, p)
	}
	for id, pa := range a {
		pb, inB := b[id]
		got, ok := rec[id]
		if inB && pa == pb {
			// Untouched by the in-flight op: acked state must survive.
			if !ok || got != pa {
				return fmt.Errorf("acked object %d lost or moved (got %v,%v want %v)", id, got, ok, pa)
			}
			continue
		}
		if ok && got != pa && (!inB || got != pb) {
			return fmt.Errorf("object %d at %v, want old %v or new state", id, got, pa)
		}
	}
	return nil
}

// TestCrashTruncationSweep runs the deterministic stream against a
// per-batch durable index, then for byte offsets across the log file
// truncates a copy at that offset and recovers: the result must equal
// the oracle state after exactly the operations whose records fit
// inside the truncated length — recovery restores the acked prefix,
// nothing more, nothing less. Record extents are measured externally
// (file size after each synced op), so the check does not trust the
// log reader's own framing.
//
// The memtable leg runs the identical sweep with the delta tier
// enabled on both halves: writes are acked out of the memtable (merges
// never touch the log), and recovery replays the durable tail back
// into a fresh memtable — truncating at any byte must still restore
// exactly the acked prefix, even when the original process crashed
// with deltas buffered or a merge mid-flight.
func TestCrashTruncationSweep(t *testing.T) {
	t.Run("plain", func(t *testing.T) { runTruncationSweep(t, crashOpts) })
	t.Run("memtable", func(t *testing.T) { runTruncationSweep(t, memtableCrashOpts) })
}

func runTruncationSweep(t *testing.T, mkOpts func(string) Options) {
	base := t.TempDir()
	stateDir := filepath.Join(base, "state")
	idx, err := Open(mkOpts(stateDir))
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(stateDir, "wal-00000001.seg")
	stat, err := os.Stat(segPath)
	if err != nil {
		t.Fatalf("expected active segment at %s: %v", segPath, err)
	}
	s := newCrashStream()
	sizes := []int64{stat.Size()} // sizes[k] = file size after k ops
	fps := []string{fingerprint(s.oracle)}
	const ops = 60
	for i := 0; i < ops; i++ {
		if err := s.apply(idx); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		stat, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, stat.Size())
		fps = append(fps, fingerprint(s.oracle))
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != sizes[ops] {
		t.Fatalf("log is %d bytes, expected %d", len(data), sizes[ops])
	}

	// Offsets: every record boundary +/- 1, plus a stride across the
	// whole file (every byte when not -short).
	offsets := make(map[int64]bool)
	for _, sz := range sizes {
		for _, d := range []int64{-1, 0, 1} {
			if o := sz + d; o >= 0 && o <= int64(len(data)) {
				offsets[o] = true
			}
		}
	}
	stride := int64(1)
	if testing.Short() {
		stride = 53
	}
	for o := int64(0); o <= int64(len(data)); o += stride {
		offsets[o] = true
	}

	workRoot := filepath.Join(base, "work")
	n := 0
	for off := range offsets {
		n++
		dir := filepath.Join(workRoot, fmt.Sprintf("t%d", n))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(mkOpts(dir))
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		// k = number of ops whose records fit entirely within off.
		k := sort.Search(len(sizes), func(i int) bool { return sizes[i] > off }) - 1
		if k < 0 {
			k = 0
		}
		if got := recoveredFingerprint(t, rec); got != fps[k] {
			t.Fatalf("offset %d: recovered state != oracle after %d ops (%d objects vs %d)",
				off, k, rec.Len(), strings.Count(fps[k], ";"))
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("offset %d: invariants: %v", off, err)
		}
		rec.Close()
		os.RemoveAll(dir)
	}
}

// TestCrashChildProcess is the re-executed child half of the kill test:
// it applies the deterministic stream to a per-batch durable index,
// acknowledging each completed op in an acks file, until it is killed.
func TestCrashChildProcess(t *testing.T) {
	dir := os.Getenv("BURTREE_CRASH_DIR")
	if dir == "" {
		t.Skip("crash child; driven by TestCrashKillRecovers")
	}
	stateDir := filepath.Join(dir, "state")
	var a applier
	var err error
	switch os.Getenv("BURTREE_CRASH_KIND") {
	case "sharded":
		a, err = RecoverSharded(crashOpts(stateDir), ShardOptions{Shards: 4})
	case "memtable":
		a, err = Recover(memtableCrashOpts(stateDir))
	case "sharded-memtable":
		a, err = RecoverSharded(memtableCrashOpts(stateDir), ShardOptions{Shards: 4})
	default:
		a, err = Recover(crashOpts(stateDir))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "child recover:", err)
		os.Exit(3)
	}
	acks, err := os.OpenFile(filepath.Join(dir, "acks"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child acks:", err)
		os.Exit(3)
	}
	s := newCrashStream()
	for i := 0; i < 200_000; i++ {
		if err := s.apply(a); err != nil {
			fmt.Fprintf(os.Stderr, "child op %d: %v\n", i, err)
			os.Exit(3)
		}
		fmt.Fprintf(acks, "%d\n", i+1)
	}
}

// TestCrashKillRecovers SIGKILLs a child process mid-stream and
// verifies that recovery restores exactly the acked prefix: every
// acknowledged op survives, and at most the single op in flight at
// kill time may additionally be present. The memtable kinds run the
// child with the delta tier enabled at a tiny budget, so the kill
// routinely lands with deltas buffered in memory or a merge-down
// mid-flight — an acked op's tree work may not have happened yet, but
// its log record has, and that is all recovery needs.
func TestCrashKillRecovers(t *testing.T) {
	for _, kind := range []string{"index", "sharded", "memtable", "sharded-memtable"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChildProcess$", "-test.v")
			cmd.Env = append(os.Environ(), "BURTREE_CRASH_DIR="+dir, "BURTREE_CRASH_KIND="+kind)
			var out strings.Builder
			cmd.Stdout, cmd.Stderr = &out, &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(80 * time.Millisecond) // let it ack a few dozen ops
			cmd.Process.Kill()
			err := cmd.Wait()
			if err == nil {
				t.Fatalf("child was not killed; output:\n%s", out.String())
			}
			if code := cmd.ProcessState.ExitCode(); code == 3 {
				t.Fatalf("child failed before the kill:\n%s", out.String())
			}

			// Count acknowledged ops.
			acked := 0
			if f, err := os.Open(filepath.Join(dir, "acks")); err == nil {
				sc := bufio.NewScanner(f)
				for sc.Scan() {
					if line := strings.TrimSpace(sc.Text()); line != "" {
						fmt.Sscanf(line, "%d", &acked)
					}
				}
				f.Close()
			}
			if acked == 0 {
				t.Fatalf("child acked no ops in 80ms; output:\n%s", out.String())
			}

			// Oracle states around the durable horizon: after the acked
			// prefix, and after the single op in flight at kill time.
			s := newCrashStream()
			for i := 0; i < acked; i++ {
				if err := s.apply(nil); err != nil {
					t.Fatal(err)
				}
			}
			before := make(map[uint64]Point, len(s.oracle))
			for id, p := range s.oracle {
				before[id] = p
			}
			if err := s.apply(nil); err != nil {
				t.Fatal(err)
			}
			after := s.oracle

			stateDir := filepath.Join(dir, "state")
			mkOpts := crashOpts
			if strings.Contains(kind, "memtable") {
				mkOpts = memtableCrashOpts
			}
			var rec map[uint64]Point
			if strings.HasPrefix(kind, "sharded") {
				x, err := RecoverSharded(mkOpts(stateDir), ShardOptions{Shards: 4})
				if err != nil {
					t.Fatalf("recovery after kill: %v", err)
				}
				defer x.Close()
				if err := x.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				rec = recoveredObjects(t, x)
			} else {
				x, err := Recover(mkOpts(stateDir))
				if err != nil {
					t.Fatalf("recovery after kill: %v", err)
				}
				defer x.Close()
				if err := x.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				rec = recoveredObjects(t, x)
				// A single-log front-end writes one record per op, so the
				// recovered state is exactly one of the two oracle states.
				if got := fingerprint(rec); got != fingerprint(before) && got != fingerprint(after) {
					t.Fatalf("recovered state matches neither oracle[%d] nor oracle[%d]", acked, acked+1)
				}
			}
			// Every acked op is durable (per-batch fsync before return);
			// the op in flight at the kill may be partially durable per
			// shard, but per object only old-or-new is legal.
			if err := checkOldOrNew(rec, before, after); err != nil {
				t.Fatalf("%s (acked=%d): %v", kind, acked, err)
			}
			t.Logf("%s: killed after %d acked ops; recovery verified", kind, acked)
		})
	}
}

// FuzzWALRecover mutates the log bytes — truncation or a byte flip at
// an arbitrary offset — and requires recovery to either restore a
// state the oracle passed through (the acked prefix: damage truncates
// the log at the first bad record) or fail with the typed ErrRecovery.
// It must never panic and never invent state the stream did not
// produce.
func FuzzWALRecover(f *testing.F) {
	// Template: checkpointed prefix plus a live log tail.
	tmpl := filepath.Join(f.TempDir(), "tmpl")
	idx, err := Open(crashOpts(tmpl))
	if err != nil {
		f.Fatal(err)
	}
	s := newCrashStream()
	const head, tail = 24, 16
	for i := 0; i < head; i++ {
		if err := s.apply(idx); err != nil {
			f.Fatal(err)
		}
	}
	if err := idx.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	okStates := map[string]bool{fingerprint(s.oracle): true}
	for i := 0; i < tail; i++ {
		if err := s.apply(idx); err != nil {
			f.Fatal(err)
		}
		okStates[fingerprint(s.oracle)] = true
	}
	if err := idx.Close(); err != nil {
		f.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(tmpl, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		f.Fatalf("template segments: %v %v", segs, err)
	}
	logBytes, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(tmpl, snapshotFileName))
	if err != nil {
		f.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	// Input: [mode][offset u32 LE][xor value].
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 200, 0, 0, 0, 0})
	f.Add([]byte{1, 100, 0, 0, 0, 0xff})
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff, 0})
	f.Add([]byte{1, 9, 0, 0, 0, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		mode := data[0] % 2
		off := int(binary.LittleEndian.Uint32(data[1:5]))
		val := data[5]

		mutated := append([]byte(nil), logBytes...)
		if mode == 0 { // truncate
			if off > len(mutated) {
				off = len(mutated)
			}
			mutated = mutated[:off]
		} else { // flip a byte
			if len(mutated) == 0 {
				return
			}
			off %= len(mutated)
			if val == 0 {
				val = 0xff
			}
			mutated[off] ^= val
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapshotFileName), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(crashOpts(dir))
		if err != nil {
			if !errors.Is(err, ErrRecovery) {
				t.Fatalf("recovery failed with untyped error: %v", err)
			}
			return
		}
		defer rec.Close()
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("recovered index invalid: %v", err)
		}
		if got := recoveredFingerprint(t, rec); !okStates[got] {
			t.Fatalf("recovered state (%d objects) matches no oracle prefix — resurrected or invented writes", rec.Len())
		}
	})
}
