package burtree

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"burtree/internal/shard"
)

// cellMidpoints probes the unit square at Hilbert-cell midpoints and
// returns those owned by the given shard, so tests can place load in a
// known shard without depending on the curve layout.
func cellMidpoints(x *ShardedIndex, s int) []Point {
	var out []Point
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			p := Point{X: (float64(i) + 0.5) / 32, Y: (float64(j) + 0.5) / 32}
			if x.router.ShardOf(p) == s {
				out = append(out, p)
			}
		}
	}
	return out
}

// TestScatterQueryCostPerShard is the regression test for scatter-read
// accounting: a wide window visits every shard, and before cost
// weighting each visit was indistinguishable — one count per shard,
// whether the shard answered from a deep tree or was empty. The
// per-shard cost must now reflect the pages actually visited: the
// populated shard pays real I/O, the empty shards almost none.
func TestScatterQueryCostPerShard(t *testing.T) {
	x, err := OpenSharded(Options{
		Strategy: GeneralizedBottomUp,
		// One buffer page per shard, so the populated shard's window scan
		// pays physical reads instead of disappearing into the pool.
		BufferPages:     4,
		ExpectedObjects: 4096,
	}, ShardOptions{Shards: 4, Partition: ShardGrid})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	// All objects in one quadrant: three shards stay empty.
	rng := rand.New(rand.NewSource(3))
	ids := make([]uint64, 600)
	pts := make([]Point, 600)
	for i := range ids {
		ids[i] = uint64(i)
		pts[i] = Point{X: rng.Float64() * 0.5, Y: rng.Float64() * 0.5}
	}
	if err := x.BulkInsert(ids, pts, PackSTR); err != nil {
		t.Fatal(err)
	}

	if _, err := x.Search(NewRect(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}

	loads := x.ShardLoads()
	popCost, emptyMax := uint64(0), uint64(0)
	for _, l := range loads {
		// The op-count signal cannot tell the visits apart — that is the
		// bug this test pins down.
		if l.Queries != 1 {
			t.Fatalf("whole-space scatter: per-shard visit counts %+v, want 1 each", loads)
		}
		if l.Objects > 0 {
			popCost = l.Cost
		} else if l.Cost > emptyMax {
			emptyMax = l.Cost
		}
	}
	if popCost == 0 {
		t.Fatalf("populated shard recorded no cost: %+v", loads)
	}
	// The populated shard's scan read real pages; an empty shard's visit
	// is nearly free (at most the base unit plus a root touch).
	if popCost < 8*(emptyMax+1) {
		t.Fatalf("populated shard cost %d not ≫ empty shard cost %d: %+v", popCost, emptyMax, loads)
	}
}

// weightedWorkloadRound drives one window of the cheap-hot /
// expensive-cold workload: a large batched update stream hammering a
// few objects in one cell of shard 0 (coalesces to almost no I/O), and
// a small single-update stream spreading shard 1's objects across its
// whole region (every op pays real leaf I/O through a one-page buffer).
// Op counts and I/O disagree by construction: shard 0 wins the op
// count, shard 1 the actual page traffic.
func weightedWorkloadRound(t *testing.T, x *ShardedIndex, hotIDs []uint64, hotCenter Point,
	coldIDs []uint64, coldPts []Point, r int, rng *rand.Rand) {
	t.Helper()
	batch := make([]Change, 256)
	for j := range batch {
		batch[j] = Change{
			ID: hotIDs[j%len(hotIDs)],
			To: Point{
				X: hotCenter.X + (rng.Float64()*2-1)*0.002,
				Y: hotCenter.Y + (rng.Float64()*2-1)*0.002,
			},
		}
	}
	if _, err := x.UpdateBatch(batch); err != nil {
		t.Fatal(err)
	}
	for k, id := range coldIDs {
		p := coldPts[(k+r*7)%len(coldPts)]
		p.X += (rng.Float64()*2 - 1) * 0.002
		p.Y += (rng.Float64()*2 - 1) * 0.002
		if err := x.Update(id, p); err != nil {
			t.Fatal(err)
		}
	}
}

// openCheapHotExpensiveCold builds the two-shard index for the
// weighted-signal tests and populates it: a few hot objects clustered
// in one cell of shard 0, many cold objects spread over shard 1.
func openCheapHotExpensiveCold(t *testing.T) (x *ShardedIndex, hotIDs []uint64, hotCenter Point, coldIDs []uint64, coldPts []Point) {
	t.Helper()
	x, err := OpenSharded(Options{
		Strategy:        GeneralizedBottomUp,
		BufferPages:     2, // one page per shard: cold updates pay physical I/O
		ExpectedObjects: 512,
	}, ShardOptions{Shards: 2, Partition: ShardHilbert})
	if err != nil {
		t.Fatal(err)
	}
	hotPts := cellMidpoints(x, 0)
	coldPts = cellMidpoints(x, 1)
	if len(hotPts) == 0 || len(coldPts) < 64 {
		t.Fatalf("probing found %d shard-0 and %d shard-1 cells", len(hotPts), len(coldPts))
	}
	// A cluster cell early on the curve, so the op-count arm's quantile
	// target lands clearly inside shard 0's range.
	hotCenter = hotPts[0]
	for _, p := range hotPts {
		if shard.CellKey(p) < shard.CellKey(hotCenter) {
			hotCenter = p
		}
	}
	for i := 0; i < 4; i++ {
		id := uint64(1000 + i)
		hotIDs = append(hotIDs, id)
		if err := x.Insert(id, hotCenter); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		id := uint64(2000 + i)
		coldIDs = append(coldIDs, id)
		if err := x.Insert(id, coldPts[i%len(coldPts)]); err != nil {
			t.Fatal(err)
		}
	}
	return x, hotIDs, hotCenter, coldIDs, coldPts
}

// TestWeightedSharesCheapHotExpensiveCold is the workload where op
// counts and I/O disagree by construction: shard 0 absorbs 4× the
// operations at almost no page cost, shard 1 takes a quarter of the
// ops but pays real I/O for each. The op-count shares must favor
// shard 0 and the cost-weighted shares shard 1.
func TestWeightedSharesCheapHotExpensiveCold(t *testing.T) {
	x, hotIDs, hotCenter, coldIDs, coldPts := openCheapHotExpensiveCold(t)
	defer x.Close()

	rng := rand.New(rand.NewSource(19))
	for r := 0; r < 4; r++ {
		weightedWorkloadRound(t, x, hotIDs, hotCenter, coldIDs, coldPts, r, rng)
		x.load.SampleAt(x.fgPages())
	}

	loads := x.ShardLoads()
	if loads[0].Updates <= loads[1].Updates {
		t.Fatalf("setup: hot shard should win the op count: %+v", loads)
	}
	if loads[1].Cost <= loads[0].Cost {
		t.Fatalf("setup: cold shard should win the cost: %+v", loads)
	}
	if loads[0].OpShare < 0.6 {
		t.Fatalf("op-count share of the op-heavy shard = %.2f, want > 0.6: %+v", loads[0].OpShare, loads)
	}
	if loads[1].Share < 0.6 {
		t.Fatalf("weighted share of the I/O-heavy shard = %.2f, want > 0.6: %+v", loads[1].Share, loads)
	}
}

// TestWeightedRebalanceDirection runs the cheap-hot/expensive-cold
// workload twice and checks the rebalancer's boundary moves in
// opposite directions under the two signals: the cost-weighted default
// judges the I/O-heavy shard 1 hot and raises the cut (shedding
// shard 1's cells to shard 0), while the op-count arm chases the
// cheap update stream and lowers the cut toward shard 0's hot cell.
func TestWeightedRebalanceDirection(t *testing.T) {
	run := func(opCounts bool) (before, after uint64) {
		x, hotIDs, hotCenter, coldIDs, coldPts := openCheapHotExpensiveCold(t)
		defer x.Close()
		rng := rand.New(rand.NewSource(23))
		for r := 0; r < 4; r++ {
			weightedWorkloadRound(t, x, hotIDs, hotCenter, coldIDs, coldPts, r, rng)
			x.load.SampleAt(x.fgPages())
		}
		// One more window feeds the Rebalance call's own sample.
		weightedWorkloadRound(t, x, hotIDs, hotCenter, coldIDs, coldPts, 4, rng)
		x.SetRebalance(RebalanceOptions{
			HotFactor:   1.1,
			MinOps:      64,
			MaxStep:     1 << 20,
			UseOpCounts: opCounts,
		})
		before = x.router.Bounds()[0]
		if _, err := x.Rebalance(); err != nil {
			t.Fatal(err)
		}
		if got := x.RouterEpoch(); got != 1 {
			t.Fatalf("rebalance (opCounts=%v) did not move a boundary: epoch %d, loads %+v",
				opCounts, got, x.ShardLoads())
		}
		if err := x.CheckInvariants(); err != nil {
			t.Fatalf("invariants after rebalance (opCounts=%v): %v", opCounts, err)
		}
		return before, x.router.Bounds()[0]
	}

	before, weighted := run(false)
	if weighted <= before {
		t.Fatalf("weighted rebalance moved the cut %d -> %d; want raised (shrinking the I/O-heavy shard)", before, weighted)
	}
	before, opcount := run(true)
	if opcount >= before {
		t.Fatalf("op-count rebalance moved the cut %d -> %d; want lowered (chasing the op-heavy shard)", before, opcount)
	}
}

// phaseBatchFixture opens a two-shard index with a populated hot-cell
// set: ids clustered in one cell of shard 0, primed and sampled so the
// rebalancer marks the cell for phase batching.
func phaseBatchFixture(t *testing.T, window time.Duration, nIDs int) (*ShardedIndex, []uint64, Point) {
	t.Helper()
	x, err := OpenSharded(Options{
		Strategy:        GeneralizedBottomUp,
		BufferPages:     64,
		ExpectedObjects: 2048,
	}, ShardOptions{Shards: 2, Partition: ShardHilbert})
	if err != nil {
		t.Fatal(err)
	}
	pts := cellMidpoints(x, 0)
	if len(pts) == 0 {
		t.Fatal("probing found no shard-0 cells")
	}
	center := pts[0]
	ids := make([]uint64, nIDs)
	rng := rand.New(rand.NewSource(29))
	for i := range ids {
		ids[i] = uint64(i)
		p := Point{
			X: center.X + (rng.Float64()*2-1)*0.002,
			Y: center.Y + (rng.Float64()*2-1)*0.002,
		}
		if err := x.Insert(ids[i], p); err != nil {
			t.Fatal(err)
		}
	}
	// HotFactor is set absurdly high so the priming window marks the
	// cell hot without ever moving a boundary.
	x.SetRebalance(RebalanceOptions{
		PhaseWindow:   window,
		HotCellFactor: 2,
		MinOps:        1,
		HotFactor:     1e9,
	})
	prime := make([]Change, 64)
	for j := range prime {
		prime[j] = Change{ID: ids[j%len(ids)], To: Point{
			X: center.X + (rng.Float64()*2-1)*0.002,
			Y: center.Y + (rng.Float64()*2-1)*0.002,
		}}
	}
	if _, err := x.UpdateBatch(prime); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if len(x.HotCells()) == 0 {
		t.Fatalf("priming did not mark the cluster cell hot; loads %+v", x.ShardLoads())
	}
	return x, ids, center
}

// TestPhaseBatchingSingleCaller routes one caller's batch through the
// phase path: with the cell marked hot the caller leads its own phase,
// and the result must account every change exactly as the ordinary
// path would.
func TestPhaseBatchingSingleCaller(t *testing.T) {
	x, ids, center := phaseBatchFixture(t, time.Millisecond, 8)
	defer x.Close()

	targets := make(map[uint64]Point, len(ids))
	batch := make([]Change, 0, len(ids))
	rng := rand.New(rand.NewSource(31))
	for _, id := range ids {
		p := Point{
			X: center.X + (rng.Float64()*2-1)*0.002,
			Y: center.Y + (rng.Float64()*2-1)*0.002,
		}
		targets[id] = p
		batch = append(batch, Change{ID: id, To: p})
	}
	res, err := x.UpdateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != len(ids) || res.Combined != 0 {
		t.Fatalf("single-caller phase batch: Applied %d Combined %d, want %d/0", res.Applied, res.Combined, len(ids))
	}
	for id, want := range targets {
		if got, ok := x.Location(id); !ok || got != want {
			t.Fatalf("object %d at %v after phase batch, want %v", id, got, want)
		}
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Turning phase batching off clears the hot set immediately and the
	// next batch takes the ordinary path.
	x.SetRebalance(RebalanceOptions{})
	if got := x.HotCells(); len(got) != 0 {
		t.Fatalf("hot set survived disabling phase batching: %v", got)
	}
}

// TestPhaseBatchingCombinesCallers releases several concurrent callers
// into one accumulation window: the first joiner leads, the rest must
// ride its phase and report their changes as combined. Every object
// still lands exactly where its caller sent it.
func TestPhaseBatchingCombinesCallers(t *testing.T) {
	const callers, perCaller = 6, 4
	x, ids, center := phaseBatchFixture(t, 300*time.Millisecond, callers*perCaller)
	defer x.Close()

	targets := make([]map[uint64]Point, callers)
	results := make([]BatchResult, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		targets[g] = make(map[uint64]Point, perCaller)
		batch := make([]Change, 0, perCaller)
		rng := rand.New(rand.NewSource(int64(37 + g)))
		for i := 0; i < perCaller; i++ {
			id := ids[g*perCaller+i]
			p := Point{
				X: center.X + (rng.Float64()*2-1)*0.002,
				Y: center.Y + (rng.Float64()*2-1)*0.002,
			}
			targets[g][id] = p
			batch = append(batch, Change{ID: id, To: p})
		}
		wg.Add(1)
		go func(g int, batch []Change) {
			defer wg.Done()
			<-start
			results[g], errs[g] = x.UpdateBatch(batch)
		}(g, batch)
	}
	close(start)
	wg.Wait()

	applied, combined := 0, 0
	for g := 0; g < callers; g++ {
		if errs[g] != nil {
			t.Fatalf("caller %d: %v", g, errs[g])
		}
		applied += results[g].Applied
		combined += results[g].Combined
	}
	// Callers move disjoint ids, so Applied+Combined across callers must
	// equal the offered stream exactly: a leader counting its followers'
	// changes in Applied (while they also report Combined) double-counts.
	if applied+combined != callers*perCaller {
		t.Fatalf("Applied %d + Combined %d != %d offered changes", applied, combined, callers*perCaller)
	}
	// With a 300ms window and callers released together, followers must
	// have ridden the leader's phase.
	if combined == 0 {
		t.Fatalf("no caller combined into a shared phase: results %+v", results)
	}
	for g := 0; g < callers; g++ {
		for id, want := range targets[g] {
			if got, ok := x.Location(id); !ok || got != want {
				t.Fatalf("object %d at %v after combined phases, want %v", id, got, want)
			}
		}
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
