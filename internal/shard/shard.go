// Package shard partitions the 2-D data space into N disjoint regions so
// a sharded index can run one self-contained tree — with its own buffer
// pool, hash index and lock manager — per region.
//
// Two schemes are provided:
//
//   - Grid: the unit square is tiled into a gx×gy grid of equal cells,
//     one shard per cell. Cheap to route, ideal for uniform data.
//   - HilbertRange: a fine 2^k × 2^k cell grid is linearized along a
//     Hilbert curve and split into N contiguous curve ranges. When built
//     from a data sample the ranges are balanced by object count, which
//     adapts the partition to skewed distributions while keeping each
//     shard spatially compact (Hilbert ranges are clustered).
//
// Every point maps to exactly one shard. Points outside the unit square
// are clamped onto the boundary cells, so boundary shards own the
// overflow space; Region reports each shard's responsibility rectangle
// with boundary sides extended accordingly, which is what makes
// MinDist-based pruning of nearest-neighbour scatter safe.
package shard

import (
	"fmt"
	"sort"

	"burtree/internal/geom"
	"burtree/internal/hilbert"
)

// Scheme selects the partitioning algorithm.
type Scheme int

const (
	// Grid tiles the unit square into equal rectangular cells.
	Grid Scheme = iota
	// HilbertRange splits a Hilbert linearization of the space into
	// contiguous, optionally data-balanced ranges.
	HilbertRange
)

func (s Scheme) String() string {
	switch s {
	case Grid:
		return "grid"
	case HilbertRange:
		return "hilbert"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// hilbertOrder is the resolution of the Hilbert partition: the space is
// cut into 2^hilbertOrder cells per axis (32×32 = 1024 cells), which
// bounds routing cost while leaving plenty of granularity for balanced
// splits at realistic shard counts.
const hilbertOrder = 5

// hilbertSide is the cell-grid side length of the Hilbert partition.
const hilbertSide = 1 << hilbertOrder

// MaxShards bounds the shard count; beyond this the per-shard fixed
// costs (buffer pool, hash directory, lock table) dominate.
const MaxShards = 256

// NumCells is the number of Hilbert cells the load tracker and the
// balanced-bounds builders histogram over (one per cell of the routing
// grid).
const NumCells = hilbertSide * hilbertSide

// Router maps points and rectangles to shards.
type Router struct {
	scheme Scheme
	n      int

	// Grid scheme.
	gx, gy int

	// HilbertRange scheme: sorted curve positions (cell granularity);
	// shard(i) owns curve range [bounds[i-1], bounds[i]), with bounds[-1]
	// = 0 and bounds[n-1] = +inf implied. len(bounds) == n-1.
	bounds []uint64

	regions []geom.Rect // cached per-shard responsibility rectangles
}

// NewGrid builds an n-shard grid router. n is factored into the most
// square gx×gy decomposition available (a prime n degrades to stripes).
func NewGrid(n int) (*Router, error) {
	if err := checkShards(n); err != nil {
		return nil, err
	}
	gx := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			gx = d
		}
	}
	r := &Router{scheme: Grid, n: n, gx: n / gx, gy: gx}
	r.buildRegions()
	return r, nil
}

// NewHilbertUniform builds an n-shard Hilbert-range router with ranges
// of equal curve length (the choice when no data sample is available).
func NewHilbertUniform(n int) (*Router, error) {
	if err := checkShards(n); err != nil {
		return nil, err
	}
	total := uint64(hilbertSide) * uint64(hilbertSide)
	bounds := make([]uint64, n-1)
	for i := range bounds {
		bounds[i] = uint64(i+1) * total / uint64(n)
	}
	r := &Router{scheme: HilbertRange, n: n, bounds: bounds}
	r.buildRegions()
	return r, nil
}

// NewHilbertBalanced builds an n-shard Hilbert-range router whose range
// boundaries are quantiles of the sample's curve positions, so each
// shard starts with roughly len(sample)/n objects even on skewed data.
// An empty sample falls back to uniform ranges.
func NewHilbertBalanced(n int, sample []geom.Point) (*Router, error) {
	if len(sample) == 0 {
		return NewHilbertUniform(n)
	}
	if err := checkShards(n); err != nil {
		return nil, err
	}
	keys := make([]uint64, len(sample))
	for i, p := range sample {
		cx, cy := cellOf(p, hilbertSide)
		keys[i] = hilbert.D(uint32(cx), uint32(cy), hilbertOrder)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	total := uint64(hilbertSide) * uint64(hilbertSide)
	bounds := make([]uint64, n-1)
	prev := uint64(0)
	for i := range bounds {
		b := keys[(i+1)*len(keys)/n]
		// Boundaries must be strictly increasing to keep every shard's
		// range non-empty; degenerate quantiles (heavy ties) fall back to
		// the next free curve position.
		if b <= prev {
			b = prev + 1
		}
		if max := total - uint64(n-1-i); b > max {
			b = max
		}
		bounds[i] = b
		prev = b
	}
	r := &Router{scheme: HilbertRange, n: n, bounds: bounds}
	r.buildRegions()
	return r, nil
}

// NewHilbertBounds builds an n-shard Hilbert-range router from explicit
// curve boundaries (len(bounds) == n-1, strictly increasing within
// (0, NumCells)). This is how the rebalancer installs nudged boundaries;
// validation matches FromSpec so a bad nudge fails loudly.
func NewHilbertBounds(bounds []uint64) (*Router, error) {
	return FromSpec(Spec{Scheme: HilbertRange, Shards: len(bounds) + 1, Bounds: bounds})
}

// LoadQuantileBounds computes n-shard Hilbert boundaries as load
// quantiles over a per-cell histogram (indexed by curve position,
// len == NumCells): each shard's range receives ≈ 1/n of the observed
// load. Every cell is smoothed by +1 so unobserved space still spreads
// across shards instead of collapsing into one range; ties fall back to
// the next free curve position, exactly like NewHilbertBalanced.
func LoadQuantileBounds(n int, cellLoad []uint64) ([]uint64, error) {
	if err := checkShards(n); err != nil {
		return nil, err
	}
	if len(cellLoad) != NumCells {
		return nil, fmt.Errorf("shard: cell histogram has %d cells, want %d", len(cellLoad), NumCells)
	}
	total := uint64(0)
	for _, c := range cellLoad {
		total += c + 1
	}
	bounds := make([]uint64, n-1)
	acc := uint64(0)
	next := 0 // next boundary to place
	for cell := 0; cell < NumCells && next < len(bounds); cell++ {
		before := acc
		acc += cellLoad[cell] + 1
		// Place every boundary whose load quantile this cell crosses —
		// before the cell when the pre-cell cumulative is closer to the
		// target, which isolates a cell heavy enough to cross several
		// quantiles on its own into a minimal range instead of gluing the
		// whole cold prefix to it.
		for next < len(bounds) && acc >= uint64(next+1)*total/uint64(n) {
			target := uint64(next+1) * total / uint64(n)
			b := uint64(cell + 1)
			if target-before < acc-target {
				b = uint64(cell)
			}
			bounds[next] = b
			next++
		}
	}
	// Enforce strict monotonicity within (0, NumCells): heavy
	// concentration can put several quantiles in one cell.
	prev := uint64(0)
	for i := range bounds {
		b := bounds[i]
		if b <= prev {
			b = prev + 1
		}
		if max := uint64(NumCells) - uint64(n-1-i); b > max {
			b = max
		}
		bounds[i] = b
		prev = b
	}
	// Snap each cut to the load valley nearest its quantile position: a
	// boundary flanked by hot cells sits inside a cluster, and objects
	// orbiting there cross shards on every other move. Minimizing the
	// load adjacent to the cut keeps clusters whole on one side at the
	// cost of at most snapWindow cells of balance. Ties (uniform load)
	// keep the exact quantile position.
	prev = 0
	for i := range bounds {
		lo, hi := bounds[i], bounds[i]
		if lo > snapWindow && lo-snapWindow > prev {
			lo = bounds[i] - snapWindow
		} else {
			lo = prev + 1
		}
		if max := uint64(NumCells) - uint64(n-1-i); hi+snapWindow <= max {
			hi = bounds[i] + snapWindow
		} else {
			hi = max
		}
		start := bounds[i]
		if start < lo {
			start = lo
		} else if start > hi {
			start = hi
		}
		best, bestScore := start, cellLoad[start-1]+cellLoad[start]
		for b := lo; b <= hi; b++ {
			score := cellLoad[b-1] + cellLoad[b]
			if score < bestScore || (score == bestScore && absDiff(b, bounds[i]) < absDiff(best, bounds[i])) {
				best, bestScore = b, score
			}
		}
		bounds[i] = best
		prev = best
	}
	return bounds, nil
}

// snapWindow is how far (in Hilbert cells) a quantile cut may move to
// settle in a load valley.
const snapWindow = 8

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func checkShards(n int) error {
	if n < 1 || n > MaxShards {
		return fmt.Errorf("shard: shard count %d outside [1, %d]", n, MaxShards)
	}
	return nil
}

// Scheme returns the partitioning scheme.
func (r *Router) Scheme() Scheme { return r.scheme }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return r.n }

// cellOf clamps p into the unit square and returns its cell coordinates
// on a side×side grid. Clamping is monotone, which is what guarantees
// that a point inside a window always routes to a shard covering that
// window (see ShardsFor).
func cellOf(p geom.Point, side int) (int, int) {
	return geom.ClampCell(p.X, side), geom.ClampCell(p.Y, side)
}

// CellKey returns p's Hilbert curve position at routing-cell granularity
// (in [0, NumCells)). It is scheme-independent: load histograms are kept
// in curve space even while a grid router is installed, so a grid
// partition can upgrade to load-balanced Hilbert ranges without
// re-observing the workload.
func CellKey(p geom.Point) uint64 {
	cx, cy := cellOf(p, hilbertSide)
	return hilbert.D(uint32(cx), uint32(cy), hilbertOrder)
}

// Bounds returns a copy of the Hilbert range boundaries (nil for a grid
// router).
func (r *Router) Bounds() []uint64 {
	if r.bounds == nil {
		return nil
	}
	return append([]uint64(nil), r.bounds...)
}

// ShardOf returns the shard owning p.
func (r *Router) ShardOf(p geom.Point) int {
	switch r.scheme {
	case Grid:
		cx := geom.ClampCell(p.X, r.gx)
		cy := geom.ClampCell(p.Y, r.gy)
		return cy*r.gx + cx
	default:
		cx, cy := cellOf(p, hilbertSide)
		return r.shardOfKey(hilbert.D(uint32(cx), uint32(cy), hilbertOrder))
	}
}

// shardOfKey locates a curve position in the boundary list.
func (r *Router) shardOfKey(h uint64) int {
	return sort.Search(len(r.bounds), func(i int) bool { return r.bounds[i] > h })
}

// ShardsFor returns the sorted, deduplicated list of shards whose region
// intersects q. Every object inside q is owned by one of them: object
// routing clamps positions exactly the way the query window is clamped
// here, and clamping is monotone.
func (r *Router) ShardsFor(q geom.Rect) []int {
	// An inverted (or NaN) window contains no points; the single-tree
	// search answers it with an empty result, so the scatter must too —
	// and must not compute a negative covering-range size.
	if !q.Valid() {
		return nil
	}
	if r.n == 1 {
		return []int{0}
	}
	switch r.scheme {
	case Grid:
		x0 := geom.ClampCell(q.MinX, r.gx)
		x1 := geom.ClampCell(q.MaxX, r.gx)
		y0 := geom.ClampCell(q.MinY, r.gy)
		y1 := geom.ClampCell(q.MaxY, r.gy)
		out := make([]int, 0, (x1-x0+1)*(y1-y0+1))
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				out = append(out, cy*r.gx+cx)
			}
		}
		return out
	default:
		x0 := geom.ClampCell(q.MinX, hilbertSide)
		x1 := geom.ClampCell(q.MaxX, hilbertSide)
		y0 := geom.ClampCell(q.MinY, hilbertSide)
		y1 := geom.ClampCell(q.MaxY, hilbertSide)
		seen := make([]bool, r.n)
		var out []int
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				s := r.shardOfKey(hilbert.D(uint32(cx), uint32(cy), hilbertOrder))
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
		}
		sort.Ints(out)
		return out
	}
}

// Region returns shard i's responsibility rectangle: the bounding box of
// its cells, with any side that touches the unit-square boundary pushed
// out to the world bound (boundary cells own the clamped overflow space,
// so objects that drift outside the square still satisfy
// Region.MinDistPoint ≤ their true distance — the invariant
// nearest-neighbour pruning relies on).
func (r *Router) Region(i int) geom.Rect { return r.regions[i] }

func (r *Router) buildRegions() {
	r.regions = make([]geom.Rect, r.n)
	switch r.scheme {
	case Grid:
		for cy := 0; cy < r.gy; cy++ {
			for cx := 0; cx < r.gx; cx++ {
				rect := geom.Rect{
					MinX: float64(cx) / float64(r.gx),
					MinY: float64(cy) / float64(r.gy),
					MaxX: float64(cx+1) / float64(r.gx),
					MaxY: float64(cy+1) / float64(r.gy),
				}
				r.regions[cy*r.gx+cx] = extendAtBoundary(rect)
			}
		}
	default:
		have := make([]bool, r.n)
		for cy := 0; cy < hilbertSide; cy++ {
			for cx := 0; cx < hilbertSide; cx++ {
				s := r.shardOfKey(hilbert.D(uint32(cx), uint32(cy), hilbertOrder))
				rect := geom.Rect{
					MinX: float64(cx) / hilbertSide,
					MinY: float64(cy) / hilbertSide,
					MaxX: float64(cx+1) / hilbertSide,
					MaxY: float64(cy+1) / hilbertSide,
				}
				rect = extendAtBoundary(rect)
				if !have[s] {
					have[s] = true
					r.regions[s] = rect
				} else {
					r.regions[s] = r.regions[s].Union(rect)
				}
			}
		}
	}
}

// extendAtBoundary pushes sides lying on the unit-square boundary out to
// the world bound.
func extendAtBoundary(rect geom.Rect) geom.Rect {
	if rect.MinX <= 0 {
		rect.MinX = geom.WorldRect.MinX
	}
	if rect.MinY <= 0 {
		rect.MinY = geom.WorldRect.MinY
	}
	if rect.MaxX >= 1 {
		rect.MaxX = geom.WorldRect.MaxX
	}
	if rect.MaxY >= 1 {
		rect.MaxY = geom.WorldRect.MaxY
	}
	return rect
}

// Spec is the serializable form of a Router (the sharded-snapshot
// manifest embeds it).
type Spec struct {
	Scheme Scheme
	Shards int
	GridX  int
	GridY  int
	Bounds []uint64
}

// Spec returns the router's serializable description.
func (r *Router) Spec() Spec {
	return Spec{
		Scheme: r.scheme,
		Shards: r.n,
		GridX:  r.gx,
		GridY:  r.gy,
		Bounds: append([]uint64(nil), r.bounds...),
	}
}

// FromSpec reconstructs a router, validating the description so corrupt
// snapshots fail with an error rather than a panic.
func FromSpec(s Spec) (*Router, error) {
	if err := checkShards(s.Shards); err != nil {
		return nil, err
	}
	switch s.Scheme {
	case Grid:
		if s.GridX < 1 || s.GridY < 1 || s.GridX*s.GridY != s.Shards {
			return nil, fmt.Errorf("shard: grid %dx%d does not cover %d shards", s.GridX, s.GridY, s.Shards)
		}
		r := &Router{scheme: Grid, n: s.Shards, gx: s.GridX, gy: s.GridY}
		r.buildRegions()
		return r, nil
	case HilbertRange:
		if len(s.Bounds) != s.Shards-1 {
			return nil, fmt.Errorf("shard: %d Hilbert boundaries for %d shards", len(s.Bounds), s.Shards)
		}
		total := uint64(hilbertSide) * uint64(hilbertSide)
		prev := uint64(0)
		for i, b := range s.Bounds {
			if b <= prev || b >= total {
				return nil, fmt.Errorf("shard: Hilbert boundary %d (%d) not strictly increasing within (0, %d)", i, b, total)
			}
			prev = b
		}
		r := &Router{scheme: HilbertRange, n: s.Shards, bounds: append([]uint64(nil), s.Bounds...)}
		r.buildRegions()
		return r, nil
	default:
		return nil, fmt.Errorf("shard: unknown scheme %d", int(s.Scheme))
	}
}
