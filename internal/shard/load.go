package shard

import (
	"sync"
	"sync/atomic"
)

// LoadTracker accumulates per-shard operation counts and a per-Hilbert-
// cell update histogram, and maintains a windowed EWMA of each shard's
// share of the recent load. The counters are atomics so the sharded
// front-end can record from its per-shard worker goroutines without
// extra locking; Sample/Shares snapshots are serialized by a mutex.
//
// The EWMA is sample-indexed, not wall-clock-indexed: every Sample call
// closes one window, computes each shard's share of the operations that
// arrived during the window and folds it in with weight ½. Rebalancing
// decisions therefore depend only on the operation stream, which keeps
// tests deterministic and the tracker free of time arithmetic.
type LoadTracker struct {
	updates []atomic.Uint64 // per-shard update ops (insert/update/delete), cumulative
	queries []atomic.Uint64 // per-shard read ops (search/nearest visits), cumulative
	cells   []atomic.Uint64 // per-Hilbert-cell update counts, cumulative

	mu      sync.Mutex
	last    []uint64  // updates+queries snapshot at the previous Sample
	ewma    []float64 // EWMA of per-shard load share
	sampled bool      // true once the first window has closed
}

// NewLoadTracker builds a tracker for n shards.
func NewLoadTracker(n int) *LoadTracker {
	return &LoadTracker{
		updates: make([]atomic.Uint64, n),
		queries: make([]atomic.Uint64, n),
		cells:   make([]atomic.Uint64, NumCells),
		last:    make([]uint64, n),
		ewma:    make([]float64, n),
	}
}

// NumShards returns the tracked shard count.
func (t *LoadTracker) NumShards() int { return len(t.updates) }

// RecordUpdates adds n update operations to shard s and the cell
// histogram at curve position cell.
func (t *LoadTracker) RecordUpdates(s int, cell uint64, n int) {
	t.updates[s].Add(uint64(n))
	t.cells[cell].Add(uint64(n))
}

// RecordQuery adds one read operation to shard s.
func (t *LoadTracker) RecordQuery(s int) { t.queries[s].Add(1) }

// UpdateCount returns shard s's cumulative update-operation count.
func (t *LoadTracker) UpdateCount(s int) uint64 { return t.updates[s].Load() }

// QueryCount returns shard s's cumulative read-operation count.
func (t *LoadTracker) QueryCount(s int) uint64 { return t.queries[s].Load() }

// Sample closes the current window: it computes each shard's share of
// the operations recorded since the previous Sample, folds the shares
// into the EWMA with weight ½, and returns the updated EWMA plus the
// window's operation count. A window with no operations leaves the EWMA
// untouched.
func (t *LoadTracker) Sample() (shares []float64, ops uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.updates)
	cur := make([]uint64, n)
	var total uint64
	for i := 0; i < n; i++ {
		cur[i] = t.updates[i].Load() + t.queries[i].Load()
		total += cur[i] - t.last[i]
	}
	if total > 0 {
		for i := 0; i < n; i++ {
			share := float64(cur[i]-t.last[i]) / float64(total)
			if t.sampled {
				t.ewma[i] = 0.5*t.ewma[i] + 0.5*share
			} else {
				t.ewma[i] = share
			}
		}
		t.sampled = true
		copy(t.last, cur)
	}
	return append([]float64(nil), t.ewma...), total
}

// Shares returns the current EWMA load shares without closing a window.
func (t *LoadTracker) Shares() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]float64(nil), t.ewma...)
}

// CellLoads snapshots the per-cell update histogram (len == NumCells).
func (t *LoadTracker) CellLoads() []uint64 {
	out := make([]uint64, len(t.cells))
	for i := range t.cells {
		out[i] = t.cells[i].Load()
	}
	return out
}

// DecayCells halves every cell count so past hotspots fade from the
// histogram instead of anchoring boundaries forever. Called after each
// rebalance step while the front-end holds its exclusive gate.
func (t *LoadTracker) DecayCells() {
	for i := range t.cells {
		for {
			v := t.cells[i].Load()
			if t.cells[i].CompareAndSwap(v, v/2) {
				break
			}
		}
	}
}

// ResetShares forgets the EWMA history and restarts the current window
// at the present counter values. Called after a boundary change: the old
// shares describe shards that no longer exist.
func (t *LoadTracker) ResetShares() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.ewma {
		t.ewma[i] = 0
		t.last[i] = t.updates[i].Load() + t.queries[i].Load()
	}
	t.sampled = false
}
