package shard

import (
	"sync"
	"sync/atomic"
)

// CostPerPage is the weight of one physical page access (read or write)
// in load-cost units. Every operation carries a base cost of one unit —
// the latch, hash-directory and object-table work it costs even when it
// never touches a page — and each page access adds CostPerPage on top.
// The base unit keeps the share signal defined when a window's writes
// are all absorbed by the memtable or the buffer pool (zero pages
// everywhere would make every share 0/0); the page weight makes I/O
// dominate whenever it is present, which is the point: the rebalancer
// consumes *shares* of the cost stream, so any constant of the right
// order of magnitude yields the same boundary decisions.
const CostPerPage = 64

// CellCount pairs a routing-cell curve position with the number of
// update operations a batch aimed at it; RecordBatch distributes the
// batch's measured I/O cost over these.
type CellCount struct {
	Cell uint64
	N    int
}

// Window is one closed sampling window: the EWMA share vectors plus the
// cell histograms, snapshot together under the tracker's mutex so a
// concurrent DecayCells (another rebalance step finishing) cannot zero
// the histogram between the share sample and the boundary decision
// computed from it.
type Window struct {
	// Shares is the EWMA of per-shard cost shares — operations weighted
	// by the page I/O they actually incurred. This is the rebalancer's
	// default trigger signal.
	Shares []float64
	// OpShares is the EWMA of per-shard raw operation-count shares (the
	// pre-cost signal), kept for observability and comparison runs.
	OpShares []float64
	// Ops and Cost are the window's totals: operations recorded and
	// cost units accumulated since the previous Sample.
	Ops  uint64
	Cost uint64
	// Cells is the cost-weighted per-cell update histogram; CellOps is
	// the op-count histogram. Both are cumulative (decayed after each
	// boundary change, not reset per window).
	Cells   []uint64
	CellOps []uint64
}

// LoadTracker accumulates per-shard load and a per-Hilbert-cell update
// histogram, and maintains a windowed EWMA of each shard's share of the
// recent load. Counters are atomics so the sharded front-end can record
// from its per-shard worker goroutines without extra locking;
// Sample/Shares snapshots and histogram decay are serialized by a
// mutex.
//
// Load is tracked twice: as raw operation counts (updates, queries) and
// as *cost* — each operation's base unit plus CostPerPage per physical
// page it read or wrote. Under extreme skew the two diverge: the
// hottest objects coalesce in batches, absorb into the memtable and hit
// the buffer pool, so they are nearly free while cold traffic pays full
// I/O, and a rebalancer that chases op counts moves boundaries toward
// the wrong shards. The EWMA shares and the cell histogram the
// quantile cuts consume are therefore cost-weighted by default; op
// counts stay available for observability.
//
// Background merge-down I/O (the memtable tier draining to the tree)
// is attributed separately via RecordBackground: it is deferred work
// already acknowledged in a previous window, and folding it into the
// foreground signal would re-skew the balance the weighting exists to
// fix.
//
// The EWMA is sample-indexed, not wall-clock-indexed: every Sample call
// closes one window, computes each shard's share of the cost that
// arrived during the window and folds it in with weight ½. Rebalancing
// decisions therefore depend only on the operation stream, which keeps
// tests deterministic and the tracker free of time arithmetic.
type LoadTracker struct {
	updates []atomic.Uint64 // per-shard update ops (insert/update/delete), cumulative
	queries []atomic.Uint64 // per-shard read ops (search/nearest visits), cumulative
	cost    []atomic.Uint64 // per-shard foreground cost units, cumulative
	bg      []atomic.Uint64 // per-shard background merge-down pages, cumulative
	cells   []atomic.Uint64 // per-cell cost-weighted update histogram, cumulative
	cellOps []atomic.Uint64 // per-cell update-op histogram, cumulative

	mu        sync.Mutex
	lastOps   []uint64  // updates+queries snapshot at the previous Sample
	lastCost  []uint64  // cost snapshot at the previous Sample
	lastPages []uint64  // exact page-counter snapshot at the previous SampleAt
	ewma      []float64 // EWMA of per-shard cost share
	ewmaOps   []float64 // EWMA of per-shard op-count share
	sampled   bool      // true once the first window has closed
}

// NewLoadTracker builds a tracker for n shards.
func NewLoadTracker(n int) *LoadTracker {
	return &LoadTracker{
		updates:   make([]atomic.Uint64, n),
		queries:   make([]atomic.Uint64, n),
		cost:      make([]atomic.Uint64, n),
		bg:        make([]atomic.Uint64, n),
		cells:     make([]atomic.Uint64, NumCells),
		cellOps:   make([]atomic.Uint64, NumCells),
		lastOps:   make([]uint64, n),
		lastCost:  make([]uint64, n),
		lastPages: make([]uint64, n),
		ewma:      make([]float64, n),
		ewmaOps:   make([]float64, n),
	}
}

// NumShards returns the tracked shard count.
func (t *LoadTracker) NumShards() int { return len(t.updates) }

// RecordUpdates adds n update operations that together incurred pages
// physical page accesses to shard s and the cell histograms at curve
// position cell. n may be zero with pages non-zero: the source side of
// a cross-shard move pays real I/O for an operation accounted to the
// destination.
func (t *LoadTracker) RecordUpdates(s int, cell uint64, n int, pages uint64) {
	c := uint64(n) + pages*CostPerPage
	if n != 0 {
		t.updates[s].Add(uint64(n))
		t.cellOps[cell].Add(uint64(n))
	}
	if c != 0 {
		t.cost[s].Add(c)
		t.cells[cell].Add(c)
	}
}

// RecordBatch charges shard s with one batch's worth of update
// operations — the per-cell op counts in cells, whose applies together
// incurred pages physical page accesses — distributing the page cost
// over the cells in proportion to their op counts. A batch with page
// cost but no ops (pure cross-shard departures) charges the shard
// without touching the histogram: the ops were accounted to their
// destination cells.
func (t *LoadTracker) RecordBatch(s int, pages uint64, cells []CellCount) {
	total := 0
	for _, cc := range cells {
		total += cc.N
	}
	pageCost := pages * CostPerPage
	t.cost[s].Add(uint64(total) + pageCost)
	if total == 0 {
		return
	}
	t.updates[s].Add(uint64(total))
	// Distribute pageCost over cells ∝ op counts with a running
	// cumulative so integer rounding never loses cost units.
	cum, assigned := 0, uint64(0)
	for _, cc := range cells {
		cum += cc.N
		upto := pageCost * uint64(cum) / uint64(total)
		t.cellOps[cc.Cell].Add(uint64(cc.N))
		t.cells[cc.Cell].Add(uint64(cc.N) + (upto - assigned))
		assigned = upto
	}
}

// RecordQuery adds one read operation that incurred pages physical page
// accesses in shard s. Charging actual pages (instead of a flat visit)
// keeps broad windows over cold shards from inflating their apparent
// load: a scatter leg that answers from an empty or fully-buffered
// shard costs its base unit, nothing more.
func (t *LoadTracker) RecordQuery(s int, pages uint64) {
	t.queries[s].Add(1)
	t.cost[s].Add(1 + pages*CostPerPage)
}

// RecordBackground attributes pages of background merge-down I/O to
// shard s. Background pages are excluded from the foreground cost
// shares — they are deferred work from already-acknowledged updates —
// but kept per shard for observability (ShardLoads).
func (t *LoadTracker) RecordBackground(s int, pages uint64) {
	if pages != 0 {
		t.bg[s].Add(pages)
	}
}

// UpdateCount returns shard s's cumulative update-operation count.
func (t *LoadTracker) UpdateCount(s int) uint64 { return t.updates[s].Load() }

// QueryCount returns shard s's cumulative read-operation count.
func (t *LoadTracker) QueryCount(s int) uint64 { return t.queries[s].Load() }

// CostOf returns shard s's cumulative foreground cost units.
func (t *LoadTracker) CostOf(s int) uint64 { return t.cost[s].Load() }

// BackgroundPages returns shard s's cumulative background merge-down
// page count.
func (t *LoadTracker) BackgroundPages(s int) uint64 { return t.bg[s].Load() }

// Sample closes the current window: it computes each shard's share of
// the cost (and, separately, of the raw op count) recorded since the
// previous Sample, folds the shares into the EWMAs with weight ½, and
// returns the updated shares together with a snapshot of the cell
// histograms. The histogram snapshot is taken under the same mutex
// hold, so a concurrent DecayCells cannot zero the cells between the
// share sample and a boundary decision computed from the returned
// Window. A window with no operations leaves the EWMAs untouched.
//
// The window cost is taken from the per-operation cost counters, which
// measure each operation's page I/O with a bracket around the call.
// Brackets from concurrent operations on the same shard overlap and
// each measures the union of the interval, so the recorded cost
// over-counts under concurrency; when an exact cumulative page counter
// per shard is available, use SampleAt instead.
func (t *LoadTracker) Sample() Window { return t.sample(nil) }

// SampleAt closes the current window like Sample, but computes each
// shard's window cost from pages — the caller's exact cumulative
// foreground page counters, one per shard, monotone across calls —
// instead of the bracket-measured cost counters: window cost =
// window ops + CostPerPage × window pages. This keeps the share signal
// exact under concurrency, where per-operation brackets overlap and
// inflate the recorded cost roughly quadratically with the number of
// concurrent operations per shard. The bracket-based counters remain
// the source for cell attribution and observability.
func (t *LoadTracker) SampleAt(pages []uint64) Window { return t.sample(pages) }

func (t *LoadTracker) sample(pages []uint64) Window {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.updates)
	curOps := make([]uint64, n)
	curCost := make([]uint64, n)
	var ops, cost uint64
	for i := 0; i < n; i++ {
		curOps[i] = t.updates[i].Load() + t.queries[i].Load()
		curCost[i] = t.cost[i].Load()
		if pages != nil {
			winPages := uint64(0)
			if pages[i] > t.lastPages[i] {
				winPages = pages[i] - t.lastPages[i]
			}
			curCost[i] = t.lastCost[i] + (curOps[i] - t.lastOps[i]) + winPages*CostPerPage
		}
		ops += curOps[i] - t.lastOps[i]
		cost += curCost[i] - t.lastCost[i]
	}
	if ops > 0 {
		for i := 0; i < n; i++ {
			opShare := float64(curOps[i]-t.lastOps[i]) / float64(ops)
			costShare := opShare
			if cost > 0 {
				costShare = float64(curCost[i]-t.lastCost[i]) / float64(cost)
			}
			if t.sampled {
				t.ewma[i] = 0.5*t.ewma[i] + 0.5*costShare
				t.ewmaOps[i] = 0.5*t.ewmaOps[i] + 0.5*opShare
			} else {
				t.ewma[i] = costShare
				t.ewmaOps[i] = opShare
			}
		}
		t.sampled = true
		copy(t.lastOps, curOps)
		copy(t.lastCost, curCost)
		if pages != nil {
			copy(t.lastPages, pages)
		}
	}
	return Window{
		Shares:   append([]float64(nil), t.ewma...),
		OpShares: append([]float64(nil), t.ewmaOps...),
		Ops:      ops,
		Cost:     cost,
		Cells:    t.cellSnapshotLocked(t.cells),
		CellOps:  t.cellSnapshotLocked(t.cellOps),
	}
}

// cellSnapshotLocked copies one cell histogram; caller holds t.mu.
func (t *LoadTracker) cellSnapshotLocked(cells []atomic.Uint64) []uint64 {
	out := make([]uint64, len(cells))
	for i := range cells {
		out[i] = cells[i].Load()
	}
	return out
}

// Shares returns the current EWMA cost shares without closing a window.
func (t *LoadTracker) Shares() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]float64(nil), t.ewma...)
}

// OpShares returns the current EWMA op-count shares without closing a
// window.
func (t *LoadTracker) OpShares() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]float64(nil), t.ewmaOps...)
}

// CellLoads snapshots the cost-weighted per-cell update histogram
// (len == NumCells). Boundary decisions should use the Window returned
// by Sample instead, whose snapshot is atomic with the shares.
func (t *LoadTracker) CellLoads() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cellSnapshotLocked(t.cells)
}

// DecayCells halves every cell count so past hotspots fade from the
// histograms instead of anchoring boundaries forever. Called after each
// rebalance step while the front-end holds its exclusive gate;
// serialized with Sample so a decay never lands between a share sample
// and the histogram snapshot it pairs with.
func (t *LoadTracker) DecayCells() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, cells := range [][]atomic.Uint64{t.cells, t.cellOps} {
		for i := range cells {
			for {
				v := cells[i].Load()
				if cells[i].CompareAndSwap(v, v/2) {
					break
				}
			}
		}
	}
}

// ResetShares forgets the EWMA history and restarts the current window
// at the present counter values. Called after a boundary change: the old
// shares describe shards that no longer exist. pages, when non-nil, is
// the caller's exact cumulative foreground page snapshot (as passed to
// SampleAt) taken after the boundary change, so the migration I/O the
// change itself paid is charged to the closed history rather than
// polluting the first window of the new layout.
func (t *LoadTracker) ResetShares(pages []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.ewma {
		t.ewma[i] = 0
		t.ewmaOps[i] = 0
		t.lastOps[i] = t.updates[i].Load() + t.queries[i].Load()
		t.lastCost[i] = t.cost[i].Load()
	}
	if pages != nil {
		copy(t.lastPages, pages)
	}
	t.sampled = false
}
