package shard

import (
	"math/rand"
	"testing"

	"burtree/internal/geom"
)

func routersForTest(t *testing.T, n int, sample []geom.Point) map[string]*Router {
	t.Helper()
	grid, err := NewGrid(n)
	if err != nil {
		t.Fatal(err)
	}
	hu, err := NewHilbertUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHilbertBalanced(n, sample)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Router{"grid": grid, "hilbert-uniform": hu, "hilbert-balanced": hb}
}

func samplePoints(n int, seed int64, skewed bool) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		x, y := rng.Float64(), rng.Float64()
		if skewed {
			x, y = x*x*x, y*y*y
		}
		pts[i] = geom.Point{X: x, Y: y}
	}
	return pts
}

// Every point must route to exactly one shard, and that shard must be
// among ShardsFor of any window containing the point (the scatter-read
// correctness invariant).
func TestRouterCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		for name, r := range routersForTest(t, n, samplePoints(500, 7, true)) {
			if r.NumShards() != n {
				t.Fatalf("%s: NumShards = %d, want %d", name, r.NumShards(), n)
			}
			rng := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < 2000; i++ {
				// Include positions outside the unit square: objects drift.
				p := geom.Point{X: rng.Float64()*1.6 - 0.3, Y: rng.Float64()*1.6 - 0.3}
				s := r.ShardOf(p)
				if s < 0 || s >= n {
					t.Fatalf("%s n=%d: ShardOf(%v) = %d out of range", name, n, p, s)
				}
				w := rng.Float64() * 0.2
				q := geom.Rect{MinX: p.X - w, MinY: p.Y - w, MaxX: p.X + w, MaxY: p.Y + w}
				if !containsInt(r.ShardsFor(q), s) {
					t.Fatalf("%s n=%d: shard %d of point %v not in ShardsFor(%v) = %v",
						name, n, s, p, q, r.ShardsFor(q))
				}
				// Region must bound the owning shard's responsibility: the
				// point's distance to the region must be zero (it is inside).
				if d := r.Region(s).MinDistPoint(p); d > 0 {
					t.Fatalf("%s n=%d: point %v outside owning region %v (dist %g)",
						name, n, p, r.Region(s), d)
				}
			}
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Extreme coordinates — far beyond the float→int conversion range —
// must still route and scatter consistently: no panic, no empty
// covering set for a window that contains an owned point.
func TestRouterExtremeCoordinates(t *testing.T) {
	pts := []geom.Point{
		{X: 1e20, Y: 0.5},
		{X: -1e20, Y: -1e20},
		{X: 1e300, Y: 1e300},
		{X: 0.95, Y: 0.5},
	}
	for _, n := range []int{2, 4, 8} {
		for name, r := range routersForTest(t, n, samplePoints(200, 1, false)) {
			for _, p := range pts {
				s := r.ShardOf(p)
				if s < 0 || s >= n {
					t.Fatalf("%s n=%d: ShardOf(%v) = %d", name, n, p, s)
				}
				q := geom.Rect{MinX: p.X - 0.5, MinY: p.Y - 0.5, MaxX: p.X + 1e20, MaxY: p.Y + 1e20}
				if !containsInt(r.ShardsFor(q), s) {
					t.Fatalf("%s n=%d: shard %d of %v not in ShardsFor(%v)", name, n, s, p, q)
				}
			}
			// The classic overflow repro: a window reaching past the int64
			// conversion range must not panic or come back empty.
			got := r.ShardsFor(geom.Rect{MinX: 0.8, MinY: 0, MaxX: 1e20, MaxY: 1})
			if len(got) == 0 {
				t.Fatalf("%s n=%d: huge window scatters to no shards", name, n)
			}
		}
	}
}

// A whole-space window must scatter to every shard.
func TestShardsForWholeSpace(t *testing.T) {
	for name, r := range routersForTest(t, 8, samplePoints(300, 3, false)) {
		got := r.ShardsFor(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2})
		if len(got) != 8 {
			t.Fatalf("%s: whole-space query hits %d of 8 shards: %v", name, len(got), got)
		}
	}
}

// The balanced Hilbert split must distribute a skewed sample far more
// evenly than the grid does.
func TestHilbertBalancedSkew(t *testing.T) {
	const n = 8
	pts := samplePoints(8000, 11, true)
	r, err := NewHilbertBalanced(n, pts)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for _, p := range pts {
		counts[r.ShardOf(p)]++
	}
	want := len(pts) / n
	for s, c := range counts {
		if c < want/4 || c > want*4 {
			t.Fatalf("balanced hilbert: shard %d holds %d of %d (want ≈%d): %v", s, c, len(pts), want, counts)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for name, r := range routersForTest(t, 6, samplePoints(1000, 5, true)) {
		r2, err := FromSpec(r.Spec())
		if err != nil {
			t.Fatalf("%s: FromSpec: %v", name, err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 500; i++ {
			p := geom.Point{X: rng.Float64()*1.4 - 0.2, Y: rng.Float64()*1.4 - 0.2}
			if r.ShardOf(p) != r2.ShardOf(p) {
				t.Fatalf("%s: ShardOf(%v) differs after round trip: %d vs %d",
					name, p, r.ShardOf(p), r2.ShardOf(p))
			}
		}
	}
}

func TestFromSpecRejectsCorrupt(t *testing.T) {
	cases := []Spec{
		{Scheme: Grid, Shards: 0},
		{Scheme: Grid, Shards: MaxShards + 1},
		{Scheme: Grid, Shards: 4, GridX: 3, GridY: 2},
		{Scheme: Grid, Shards: 4, GridX: 0, GridY: 0},
		{Scheme: HilbertRange, Shards: 4, Bounds: []uint64{1, 2}},    // wrong arity
		{Scheme: HilbertRange, Shards: 3, Bounds: []uint64{5, 5}},    // not increasing
		{Scheme: HilbertRange, Shards: 3, Bounds: []uint64{0, 7}},    // zero boundary
		{Scheme: HilbertRange, Shards: 2, Bounds: []uint64{1 << 62}}, // beyond curve
		{Scheme: Scheme(99), Shards: 2},
	}
	for i, c := range cases {
		if _, err := FromSpec(c); err == nil {
			t.Fatalf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestGridFactorization(t *testing.T) {
	for _, tc := range []struct{ n, gx, gy int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {7, 7, 1}, {8, 4, 2}, {9, 3, 3}, {12, 4, 3},
	} {
		r, err := NewGrid(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if r.gx != tc.gx || r.gy != tc.gy {
			t.Fatalf("NewGrid(%d): %dx%d, want %dx%d", tc.n, r.gx, r.gy, tc.gx, tc.gy)
		}
	}
}
