package shard

import (
	"math"
	"sync"
	"testing"

	"burtree/internal/geom"
)

func TestCellKeyRange(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 0.5, Y: 0.5},
		{X: -3, Y: 2}, {X: 0.999, Y: 0.001},
	}
	for _, p := range pts {
		k := CellKey(p)
		if k >= NumCells {
			t.Fatalf("CellKey(%v) = %d out of range", p, k)
		}
	}
	// CellKey must agree with Hilbert routing: the shard owning p is the
	// shard owning p's cell key.
	r, err := NewHilbertUniform(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if got, want := r.shardOfKey(CellKey(p)), r.ShardOf(p); got != want {
			t.Fatalf("CellKey routing mismatch at %v: %d vs %d", p, got, want)
		}
	}
}

func TestBoundsAccessor(t *testing.T) {
	g, _ := NewGrid(4)
	if g.Bounds() != nil {
		t.Fatal("grid router reports bounds")
	}
	h, _ := NewHilbertUniform(4)
	b := h.Bounds()
	if len(b) != 3 {
		t.Fatalf("bounds len = %d", len(b))
	}
	b[0] = 9999 // mutation must not leak into the router
	if h.Bounds()[0] == 9999 {
		t.Fatal("Bounds returned internal slice")
	}
}

func TestNewHilbertBounds(t *testing.T) {
	r, err := NewHilbertBounds([]uint64{100, 500, 900})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 || r.Scheme() != HilbertRange {
		t.Fatalf("router = %d shards scheme %v", r.NumShards(), r.Scheme())
	}
	if _, err := NewHilbertBounds([]uint64{500, 500}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewHilbertBounds([]uint64{NumCells}); err == nil {
		t.Fatal("out-of-range bound accepted")
	}
}

func TestLoadQuantileBounds(t *testing.T) {
	// All load in one cell: the boundaries must still be strictly
	// increasing and valid router input.
	cells := make([]uint64, NumCells)
	cells[300] = 1_000_000
	b, err := LoadQuantileBounds(8, cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHilbertBounds(b); err != nil {
		t.Fatalf("quantile bounds rejected by router: %v", err)
	}
	// The hot cell must sit in a narrow range: its owning shard's curve
	// range should be far smaller than the uniform 1/8 split.
	r, _ := NewHilbertBounds(b)
	hot := r.shardOfKey(300)
	lo, hi := uint64(0), uint64(NumCells)
	if hot > 0 {
		lo = b[hot-1]
	}
	if hot < len(b) {
		hi = b[hot]
	}
	if hi-lo > NumCells/16 {
		t.Fatalf("hot shard owns %d cells, want a narrow range", hi-lo)
	}

	// Uniform load: quantile bounds must approximate the uniform split.
	for i := range cells {
		cells[i] = 10
	}
	b, err = LoadQuantileBounds(4, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{256, 512, 768} {
		if math.Abs(float64(b[i])-float64(want)) > 4 {
			t.Fatalf("uniform quantile bound %d = %d, want ≈ %d", i, b[i], want)
		}
	}

	if _, err := LoadQuantileBounds(4, make([]uint64, 10)); err == nil {
		t.Fatal("short histogram accepted")
	}
}

func TestLoadTrackerSampleEWMA(t *testing.T) {
	tr := NewLoadTracker(4)
	tr.RecordUpdates(0, 5, 30, 0)
	tr.RecordUpdates(1, 900, 10, 0)
	w := tr.Sample()
	if w.Ops != 40 {
		t.Fatalf("window ops = %d, want 40", w.Ops)
	}
	// No page I/O: cost shares equal op shares.
	if w.Shares[0] != 0.75 || w.Shares[1] != 0.25 || w.Shares[2] != 0 {
		t.Fatalf("first-window shares = %v", w.Shares)
	}
	if w.OpShares[0] != 0.75 || w.OpShares[1] != 0.25 {
		t.Fatalf("first-window op shares = %v", w.OpShares)
	}
	// Second window: all load on shard 2 → EWMA folds with weight ½.
	for i := 0; i < 20; i++ {
		tr.RecordQuery(2, 0)
	}
	w = tr.Sample()
	if w.Ops != 20 {
		t.Fatalf("second window ops = %d", w.Ops)
	}
	if w.Shares[0] != 0.375 || w.Shares[2] != 0.5 {
		t.Fatalf("EWMA shares = %v", w.Shares)
	}
	// Empty window leaves the EWMA untouched.
	again := tr.Sample()
	if again.Ops != 0 || again.Shares[0] != 0.375 {
		t.Fatalf("empty window changed shares: %v (ops %d)", again.Shares, again.Ops)
	}
	if got := tr.UpdateCount(0); got != 30 {
		t.Fatalf("UpdateCount(0) = %d", got)
	}
	if got := tr.QueryCount(2); got != 20 {
		t.Fatalf("QueryCount(2) = %d", got)
	}
}

func TestLoadTrackerCostWeighting(t *testing.T) {
	tr := NewLoadTracker(2)
	// Shard 0: many cheap ops (no pages). Shard 1: few expensive ops.
	// Op shares say shard 0 is hot; cost shares must say shard 1 is.
	tr.RecordUpdates(0, 5, 90, 0)
	tr.RecordUpdates(1, 900, 10, 90) // 90 pages → 10 + 90·CostPerPage cost
	w := tr.Sample()
	if w.OpShares[0] != 0.9 {
		t.Fatalf("op shares = %v, want shard 0 at 0.9", w.OpShares)
	}
	if w.Shares[1] <= w.Shares[0] {
		t.Fatalf("cost shares = %v, want shard 1 dominant", w.Shares)
	}
	if want := uint64(100 + 90*CostPerPage); w.Cost != want {
		t.Fatalf("window cost = %d, want %d", w.Cost, want)
	}
	// The cell histogram is cost-weighted too; the op histogram is not.
	if w.Cells[900] <= w.Cells[5] {
		t.Fatalf("cost cells = %d vs %d, want cell 900 dominant", w.Cells[900], w.Cells[5])
	}
	if w.CellOps[5] != 90 || w.CellOps[900] != 10 {
		t.Fatalf("op cells = %d / %d", w.CellOps[5], w.CellOps[900])
	}
}

func TestLoadTrackerRecordBatch(t *testing.T) {
	tr := NewLoadTracker(2)
	// 10 ops over two cells, 7 pages: page cost distributes ∝ op counts
	// and no unit is lost to rounding.
	tr.RecordBatch(0, 7, []CellCount{{Cell: 3, N: 6}, {Cell: 4, N: 4}})
	if got := tr.UpdateCount(0); got != 10 {
		t.Fatalf("UpdateCount = %d", got)
	}
	wantCost := uint64(10 + 7*CostPerPage)
	if got := tr.CostOf(0); got != wantCost {
		t.Fatalf("CostOf = %d, want %d", got, wantCost)
	}
	cl := tr.CellLoads()
	if cl[3]+cl[4] != wantCost {
		t.Fatalf("cell cost %d + %d != %d", cl[3], cl[4], wantCost)
	}
	if cl[3] <= cl[4] {
		t.Fatalf("cell 3 (%d) should carry more cost than cell 4 (%d)", cl[3], cl[4])
	}
	// Zero ops with pages: shard is charged, histogram untouched (the ops
	// were accounted to their destination cells).
	tr.RecordBatch(1, 3, nil)
	if got := tr.CostOf(1); got != 3*CostPerPage {
		t.Fatalf("departure-only cost = %d", got)
	}
	if got := tr.UpdateCount(1); got != 0 {
		t.Fatalf("departure-only ops = %d", got)
	}
}

func TestLoadTrackerQueryPages(t *testing.T) {
	tr := NewLoadTracker(2)
	// A scatter read touching both shards: shard 0 answers from 12 pages,
	// shard 1 is empty. Equal-per-visit accounting would charge them the
	// same; per-page accounting must not.
	tr.RecordQuery(0, 12)
	tr.RecordQuery(1, 0)
	if q0, q1 := tr.QueryCount(0), tr.QueryCount(1); q0 != 1 || q1 != 1 {
		t.Fatalf("query counts = %d / %d", q0, q1)
	}
	if c0, c1 := tr.CostOf(0), tr.CostOf(1); c0 != 1+12*CostPerPage || c1 != 1 {
		t.Fatalf("query costs = %d / %d", c0, c1)
	}
}

func TestLoadTrackerBackground(t *testing.T) {
	tr := NewLoadTracker(2)
	tr.RecordUpdates(0, 0, 10, 0)
	tr.RecordBackground(0, 500)
	if got := tr.BackgroundPages(0); got != 500 {
		t.Fatalf("BackgroundPages = %d", got)
	}
	// Background pages must not leak into the foreground cost signal.
	if got := tr.CostOf(0); got != 10 {
		t.Fatalf("CostOf = %d, want 10", got)
	}
}

func TestLoadTrackerCells(t *testing.T) {
	tr := NewLoadTracker(2)
	tr.RecordUpdates(0, 7, 8, 0)
	tr.RecordUpdates(1, 7, 4, 0)
	cl := tr.CellLoads()
	if cl[7] != 12 {
		t.Fatalf("cell 7 load = %d", cl[7])
	}
	tr.DecayCells()
	if cl = tr.CellLoads(); cl[7] != 6 {
		t.Fatalf("decayed cell 7 load = %d", cl[7])
	}
}

// TestLoadTrackerSampleDecayAtomic is the regression test for the
// decay-vs-sample race: a DecayCells landing between the share sample
// and a CellLoads read could zero the histogram a boundary cut was
// computed from. Sample's Window snapshots the cells under the same
// mutex hold, so concurrent decays can halve what later samples see but
// never desynchronize one Window's shares from its cells.
func TestLoadTrackerSampleDecayAtomic(t *testing.T) {
	tr := NewLoadTracker(2)
	tr.RecordUpdates(0, 42, 1<<20, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.DecayCells()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		w := tr.Sample()
		// The recorded load only ever halves; whatever survives must sit
		// in cell 42, and shares/cells must describe the same state: if
		// the share says shard 0 carried everything, the histogram must
		// not be empty-at-42 while nonzero elsewhere.
		for c, v := range w.Cells {
			if c != 42 && v != 0 {
				t.Fatalf("cost leaked to cell %d: %d", c, v)
			}
		}
		if w.Shares[0] == 1 && w.Cells[42] == 0 && w.Ops > 0 {
			t.Fatalf("window shares %v with zeroed histogram", w.Shares)
		}
	}
	close(stop)
	wg.Wait()
}

func TestLoadTrackerResetShares(t *testing.T) {
	tr := NewLoadTracker(2)
	tr.RecordUpdates(0, 0, 100, 0)
	tr.Sample()
	tr.ResetShares(nil)
	if s := tr.Shares(); s[0] != 0 || s[1] != 0 {
		t.Fatalf("shares after reset = %v", s)
	}
	if s := tr.OpShares(); s[0] != 0 || s[1] != 0 {
		t.Fatalf("op shares after reset = %v", s)
	}
	// The reset also restarts the window: the old 100 ops must not count
	// toward the next sample.
	tr.RecordUpdates(1, 0, 10, 0)
	w := tr.Sample()
	if w.Ops != 10 || w.Shares[1] != 1 {
		t.Fatalf("post-reset window = %v (ops %d)", w.Shares, w.Ops)
	}
}

// SampleAt must derive each shard's window cost from the caller's exact
// cumulative page counters, not the bracket-recorded cost: with equal op
// counts and equal (inflated) recorded costs, the shard whose exact
// pages advanced dominates the cost share while op shares stay even.
func TestLoadTrackerSampleAt(t *testing.T) {
	tr := NewLoadTracker(2)
	// Both shards record 10 ops with 50 bracketed pages each — as if
	// overlapping brackets double-counted identically on both.
	tr.RecordUpdates(0, 0, 10, 50)
	tr.RecordUpdates(1, 1, 10, 50)
	w := tr.SampleAt([]uint64{0, 90})
	if w.OpShares[0] != 0.5 || w.OpShares[1] != 0.5 {
		t.Fatalf("op shares = %v, want even", w.OpShares)
	}
	if w.Shares[1] < 0.9 {
		t.Fatalf("cost shares = %v, want shard 1 dominant (exact pages 90 vs 0)", w.Shares)
	}
	// The exact cost is ops + pages*CostPerPage, unaffected by the
	// inflated recorded 100 pages.
	if want := uint64(20 + 90*CostPerPage); w.Cost != want {
		t.Fatalf("window cost = %d, want %d", w.Cost, want)
	}
	// The next window consumes only the page delta since the last
	// SampleAt; a counter that does not advance contributes its base
	// units alone.
	tr.RecordUpdates(0, 0, 10, 0)
	tr.RecordUpdates(1, 1, 10, 0)
	w = tr.SampleAt([]uint64{8, 90})
	if want := uint64(20 + 8*CostPerPage); w.Cost != want {
		t.Fatalf("second window cost = %d, want %d", w.Cost, want)
	}
	// EWMA: shard 0 carried this window's pages, pulling its share up
	// from ~0 toward (0.5·prev + 0.5·now).
	if w.Shares[0] < 0.3 || w.Shares[0] > 0.5 {
		t.Fatalf("folded cost shares = %v", w.Shares)
	}
}

func TestLoadTrackerConcurrent(t *testing.T) {
	tr := NewLoadTracker(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.RecordUpdates(w%4, uint64(i%NumCells), 1, uint64(i%3))
				tr.RecordQuery(w%4, uint64(i%2))
				tr.RecordBackground(w%4, 1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Sample()
				tr.Shares()
			}
		}
	}()
	wg.Wait()
	close(done)
	tr.Sample()
	var tot uint64
	for s := 0; s < 4; s++ {
		tot += tr.UpdateCount(s) + tr.QueryCount(s)
	}
	if tot != 16000 {
		t.Fatalf("total recorded ops = %d, want 16000", tot)
	}
}
