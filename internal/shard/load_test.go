package shard

import (
	"math"
	"sync"
	"testing"

	"burtree/internal/geom"
)

func TestCellKeyRange(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 0.5, Y: 0.5},
		{X: -3, Y: 2}, {X: 0.999, Y: 0.001},
	}
	for _, p := range pts {
		k := CellKey(p)
		if k >= NumCells {
			t.Fatalf("CellKey(%v) = %d out of range", p, k)
		}
	}
	// CellKey must agree with Hilbert routing: the shard owning p is the
	// shard owning p's cell key.
	r, err := NewHilbertUniform(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if got, want := r.shardOfKey(CellKey(p)), r.ShardOf(p); got != want {
			t.Fatalf("CellKey routing mismatch at %v: %d vs %d", p, got, want)
		}
	}
}

func TestBoundsAccessor(t *testing.T) {
	g, _ := NewGrid(4)
	if g.Bounds() != nil {
		t.Fatal("grid router reports bounds")
	}
	h, _ := NewHilbertUniform(4)
	b := h.Bounds()
	if len(b) != 3 {
		t.Fatalf("bounds len = %d", len(b))
	}
	b[0] = 9999 // mutation must not leak into the router
	if h.Bounds()[0] == 9999 {
		t.Fatal("Bounds returned internal slice")
	}
}

func TestNewHilbertBounds(t *testing.T) {
	r, err := NewHilbertBounds([]uint64{100, 500, 900})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 || r.Scheme() != HilbertRange {
		t.Fatalf("router = %d shards scheme %v", r.NumShards(), r.Scheme())
	}
	if _, err := NewHilbertBounds([]uint64{500, 500}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewHilbertBounds([]uint64{NumCells}); err == nil {
		t.Fatal("out-of-range bound accepted")
	}
}

func TestLoadQuantileBounds(t *testing.T) {
	// All load in one cell: the boundaries must still be strictly
	// increasing and valid router input.
	cells := make([]uint64, NumCells)
	cells[300] = 1_000_000
	b, err := LoadQuantileBounds(8, cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHilbertBounds(b); err != nil {
		t.Fatalf("quantile bounds rejected by router: %v", err)
	}
	// The hot cell must sit in a narrow range: its owning shard's curve
	// range should be far smaller than the uniform 1/8 split.
	r, _ := NewHilbertBounds(b)
	hot := r.shardOfKey(300)
	lo, hi := uint64(0), uint64(NumCells)
	if hot > 0 {
		lo = b[hot-1]
	}
	if hot < len(b) {
		hi = b[hot]
	}
	if hi-lo > NumCells/16 {
		t.Fatalf("hot shard owns %d cells, want a narrow range", hi-lo)
	}

	// Uniform load: quantile bounds must approximate the uniform split.
	for i := range cells {
		cells[i] = 10
	}
	b, err = LoadQuantileBounds(4, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{256, 512, 768} {
		if math.Abs(float64(b[i])-float64(want)) > 4 {
			t.Fatalf("uniform quantile bound %d = %d, want ≈ %d", i, b[i], want)
		}
	}

	if _, err := LoadQuantileBounds(4, make([]uint64, 10)); err == nil {
		t.Fatal("short histogram accepted")
	}
}

func TestLoadTrackerSampleEWMA(t *testing.T) {
	tr := NewLoadTracker(4)
	tr.RecordUpdates(0, 5, 30)
	tr.RecordUpdates(1, 900, 10)
	shares, ops := tr.Sample()
	if ops != 40 {
		t.Fatalf("window ops = %d, want 40", ops)
	}
	if shares[0] != 0.75 || shares[1] != 0.25 || shares[2] != 0 {
		t.Fatalf("first-window shares = %v", shares)
	}
	// Second window: all load on shard 2 → EWMA folds with weight ½.
	for i := 0; i < 20; i++ {
		tr.RecordQuery(2)
	}
	shares, ops = tr.Sample()
	if ops != 20 {
		t.Fatalf("second window ops = %d", ops)
	}
	if shares[0] != 0.375 || shares[2] != 0.5 {
		t.Fatalf("EWMA shares = %v", shares)
	}
	// Empty window leaves the EWMA untouched.
	again, ops := tr.Sample()
	if ops != 0 || again[0] != 0.375 {
		t.Fatalf("empty window changed shares: %v (ops %d)", again, ops)
	}
	if got := tr.UpdateCount(0); got != 30 {
		t.Fatalf("UpdateCount(0) = %d", got)
	}
	if got := tr.QueryCount(2); got != 20 {
		t.Fatalf("QueryCount(2) = %d", got)
	}
}

func TestLoadTrackerCells(t *testing.T) {
	tr := NewLoadTracker(2)
	tr.RecordUpdates(0, 7, 8)
	tr.RecordUpdates(1, 7, 4)
	cl := tr.CellLoads()
	if cl[7] != 12 {
		t.Fatalf("cell 7 load = %d", cl[7])
	}
	tr.DecayCells()
	if cl = tr.CellLoads(); cl[7] != 6 {
		t.Fatalf("decayed cell 7 load = %d", cl[7])
	}
}

func TestLoadTrackerResetShares(t *testing.T) {
	tr := NewLoadTracker(2)
	tr.RecordUpdates(0, 0, 100)
	tr.Sample()
	tr.ResetShares()
	if s := tr.Shares(); s[0] != 0 || s[1] != 0 {
		t.Fatalf("shares after reset = %v", s)
	}
	// The reset also restarts the window: the old 100 ops must not count
	// toward the next sample.
	tr.RecordUpdates(1, 0, 10)
	shares, ops := tr.Sample()
	if ops != 10 || shares[1] != 1 {
		t.Fatalf("post-reset window = %v (ops %d)", shares, ops)
	}
}

func TestLoadTrackerConcurrent(t *testing.T) {
	tr := NewLoadTracker(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.RecordUpdates(w%4, uint64(i%NumCells), 1)
				tr.RecordQuery(w % 4)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Sample()
				tr.Shares()
			}
		}
	}()
	wg.Wait()
	close(done)
	tr.Sample()
	var tot uint64
	for s := 0; s < 4; s++ {
		tot += tr.UpdateCount(s) + tr.QueryCount(s)
	}
	if tot != 16000 {
		t.Fatalf("total recorded ops = %d, want 16000", tot)
	}
}
