package costmodel

// Average-case extension of the §4 analysis. The paper bounds the
// bottom-up worst case; for tuning it is more useful to know the
// *expected* update cost under the workload's actual movement
// distribution (GSTD draws the distance uniformly from [0, maxDist]).
// This file integrates the §4 per-distance cost over that distribution
// and derives the analytic crossover distance at which bottom-up and
// top-down updates break even.

import "math"

// ExpectedBottomUpCost integrates BottomUpUpdateCost over distances
// drawn uniformly from [0, maxDist], using n trapezoid steps (n >= 1).
func ExpectedBottomUpCost(maxDist float64, prm BottomUpParams, n int) float64 {
	if maxDist <= 0 {
		return BottomUpUpdateCost(0, prm)
	}
	if n < 1 {
		n = 64
	}
	h := maxDist / float64(n)
	sum := 0.5 * (BottomUpUpdateCost(0, prm) + BottomUpUpdateCost(maxDist, prm))
	for i := 1; i < n; i++ {
		sum += BottomUpUpdateCost(float64(i)*h, prm)
	}
	return sum * h / maxDist
}

// CrossoverDistance returns the smallest movement distance at which the
// per-update bottom-up cost reaches the given top-down cost, found by
// bisection over [0, √2]. If bottom-up stays cheaper everywhere the
// second result is false — for the paper's parameters this is the
// common case, since the bottom-up worst case is bounded by the
// top-down best case.
func CrossoverDistance(tdCost float64, prm BottomUpParams) (float64, bool) {
	lo, hi := 0.0, MaxMoveDistance
	if BottomUpUpdateCost(hi, prm) < tdCost {
		return 0, false
	}
	if BottomUpUpdateCost(lo, prm) >= tdCost {
		return 0, true
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if BottomUpUpdateCost(mid, prm) < tdCost {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, true
}

// LeafExtentForUniform estimates the side length of a leaf MBR for n
// uniformly distributed points in the unit square with the given
// average leaf occupancy — the quantity that fixes the locality regime
// (see EXPERIMENTS.md on length rescaling).
func LeafExtentForUniform(n int, avgLeafEntries float64) float64 {
	if n <= 0 || avgLeafEntries <= 0 {
		return 0
	}
	return math.Sqrt(avgLeafEntries / float64(n))
}
