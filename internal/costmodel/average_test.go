package costmodel

import (
	"math"
	"testing"
)

func TestExpectedBottomUpCostBounds(t *testing.T) {
	prm := BottomUpParams{LeafW: 0.05, LeafH: 0.05, Height: 5, UseSummary: true}
	// The average over [0, d] lies between the endpoint costs.
	for _, d := range []float64{0.01, 0.05, 0.2} {
		avg := ExpectedBottomUpCost(d, prm, 128)
		lo := BottomUpUpdateCost(0, prm)
		hi := BottomUpUpdateCost(d, prm)
		if avg < lo-1e-9 || avg > hi+1e-9 {
			t.Fatalf("d=%v: avg %v outside [%v, %v]", d, avg, lo, hi)
		}
	}
	// Zero distance degenerates to the in-leaf cost.
	if got := ExpectedBottomUpCost(0, prm, 10); got != 3 {
		t.Fatalf("avg at d=0 = %v, want 3", got)
	}
}

func TestExpectedBottomUpCostMonotoneInMaxDist(t *testing.T) {
	prm := BottomUpParams{LeafW: 0.03, LeafH: 0.03, Height: 4, UseSummary: true}
	prev := 0.0
	for _, d := range []float64{0.005, 0.01, 0.03, 0.06, 0.1} {
		avg := ExpectedBottomUpCost(d, prm, 64)
		if avg < prev-1e-9 {
			t.Fatalf("avg cost decreased at maxDist=%v", d)
		}
		prev = avg
	}
}

func TestCrossoverDistance(t *testing.T) {
	prm := BottomUpParams{LeafW: 0.02, LeafH: 0.02, Height: 5, UseSummary: true}
	// Top-down cheaper than the bottom-up floor: crossover at zero.
	if d, ok := CrossoverDistance(2.9, prm); !ok || d != 0 {
		t.Fatalf("crossover vs 2.9 = %v, %v; want 0, true", d, ok)
	}
	// Top-down more expensive than the bottom-up ceiling (7 with the
	// summary structure): never crosses.
	if _, ok := CrossoverDistance(8, prm); ok {
		t.Fatal("crossover found although bottom-up is always cheaper")
	}
	// In between: the crossover must satisfy B(d*) ≈ td.
	td := 5.0
	d, ok := CrossoverDistance(td, prm)
	if !ok {
		t.Fatal("no crossover found for td=5")
	}
	if got := BottomUpUpdateCost(d, prm); math.Abs(got-td) > 0.05 {
		t.Fatalf("B(%v) = %v, want ≈ %v", d, got, td)
	}
}

func TestLeafExtentForUniform(t *testing.T) {
	// 1M points at ~16 entries/leaf: extent ≈ 0.004 — the paper regime
	// discussed in EXPERIMENTS.md.
	got := LeafExtentForUniform(1_000_000, 16)
	if math.Abs(got-0.004) > 1e-6 {
		t.Fatalf("extent = %v, want 0.004", got)
	}
	// Scaling law: quartering the population doubles the extent.
	a := LeafExtentForUniform(20_000, 16)
	b := LeafExtentForUniform(80_000, 16)
	if math.Abs(a/b-2) > 1e-9 {
		t.Fatalf("scaling law violated: %v / %v", a, b)
	}
	if LeafExtentForUniform(0, 16) != 0 || LeafExtentForUniform(100, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}
