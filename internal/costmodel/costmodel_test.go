package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"burtree/internal/buffer"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
)

func TestLemma1(t *testing.T) {
	if got := ProbPointInWindow(0.1, 0.2); math.Abs(got-0.02) > 1e-15 {
		t.Fatalf("P = %v, want 0.02", got)
	}
	if got := ProbPointInWindow(2, 3); got != 1 {
		t.Fatalf("oversized window P = %v, want 1", got)
	}
	if got := ProbPointInWindow(0, 0.5); got != 0 {
		t.Fatalf("empty window P = %v, want 0", got)
	}
}

func TestLemma2(t *testing.T) {
	if got := ProbWindowsOverlap(0.1, 0.1, 0.2, 0.3); math.Abs(got-0.12) > 1e-15 {
		t.Fatalf("P = %v, want 0.12", got)
	}
	if got := ProbWindowsOverlap(0.8, 0.8, 0.8, 0.8); got != 1 {
		t.Fatalf("P = %v, want clamped 1", got)
	}
	// Symmetric in the two windows.
	if ProbWindowsOverlap(0.1, 0.2, 0.3, 0.4) != ProbWindowsOverlap(0.3, 0.4, 0.1, 0.2) {
		t.Fatal("Lemma 2 not symmetric")
	}
}

func TestLemma2MatchesSimulation(t *testing.T) {
	// Monte-Carlo check of the overlap probability for small windows
	// (the lemma ignores boundary effects, so keep windows tiny and
	// place them with wraparound semantics approximated by the interior).
	rng := rand.New(rand.NewSource(1))
	const trials = 200000
	x1, y1, x2, y2 := 0.05, 0.04, 0.06, 0.03
	hits := 0
	for i := 0; i < trials; i++ {
		// Centers uniform in the unit square (interior placement).
		a := geom.Rect{MinX: rng.Float64(), MinY: rng.Float64()}
		a.MaxX, a.MaxY = a.MinX+x1, a.MinY+y1
		b := geom.Rect{MinX: rng.Float64(), MinY: rng.Float64()}
		b.MaxX, b.MaxY = b.MinX+x2, b.MinY+y2
		if a.Intersects(b) {
			hits++
		}
	}
	got := float64(hits) / trials
	want := ProbWindowsOverlap(x1, y1, x2, y2)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("simulated overlap %.4f vs lemma %.4f", got, want)
	}
}

func TestExpectedQueryAccessesHandComputed(t *testing.T) {
	p := &TreeProfile{Levels: [][]NodeExtent{
		{{0.1, 0.1}, {0.2, 0.1}}, // two leaves
		{{0.3, 0.2}},             // root
	}}
	q := 0.1
	want := ProbWindowsOverlap(0.1, 0.1, q, q) +
		ProbWindowsOverlap(0.2, 0.1, q, q) +
		ProbWindowsOverlap(0.3, 0.2, q, q)
	if got := ExpectedQueryAccesses(p, q, q); math.Abs(got-want) > 1e-15 {
		t.Fatalf("accesses = %v, want %v", got, want)
	}
}

func TestTopDownCost(t *testing.T) {
	p := &TreeProfile{Levels: [][]NodeExtent{
		{{0.1, 0.1}},
		{{0.5, 0.5}},
	}}
	want := 2*(0.1*0.1+0.5*0.5) + 1
	if got := TopDownUpdateCost(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TD cost = %v, want %v", got, want)
	}
	if TopDownBestCase(4) != 9 {
		t.Fatalf("best case h=4 = %v, want 9", TopDownBestCase(4))
	}
}

func TestProbStayInLeaf(t *testing.T) {
	if got := ProbStayInLeaf(0, 0.1, 0.1); got != 1 {
		t.Fatalf("P(stay|d=0) = %v, want 1", got)
	}
	if got := ProbStayInLeaf(0.1, 0.1, 0.1); got != 0 {
		t.Fatalf("P(stay|d=w) = %v, want 0", got)
	}
	if got := ProbStayInLeaf(0.05, 0.1, 0.1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("P = %v, want 0.25", got)
	}
	if ProbStayInLeaf(0.5, 0, 0) != 0 {
		t.Fatal("degenerate leaf should have P=0")
	}
}

func TestBottomUpCostMonotoneInDistance(t *testing.T) {
	prm := BottomUpParams{LeafW: 0.05, LeafH: 0.05, Height: 5, UseSummary: true}
	prev := -1.0
	for d := 0.0; d <= 0.06; d += 0.005 {
		c := BottomUpUpdateCost(d, prm)
		if c < prev-1e-12 {
			t.Fatalf("cost decreased at d=%v: %v < %v", d, c, prev)
		}
		prev = c
	}
	// At d=0 everything resolves in-leaf: cost = 3.
	if got := BottomUpUpdateCost(0, prm); math.Abs(got-3) > 1e-12 {
		t.Fatalf("B(0) = %v, want 3", got)
	}
}

func TestWorstCaseBoundHoldsForPaperHeights(t *testing.T) {
	// The paper: "the theoretical upper bound for bottom-up update is
	// equivalent to the lower bound for top-down update" for trees of
	// height >= 3; their experiments use height 4-5.
	for h := 3; h <= 7; h++ {
		b, td := WorstCaseBound(h)
		if b > td {
			t.Fatalf("height %d: bottom-up worst %v > top-down best %v", h, b, td)
		}
	}
}

func TestBottomUpWithoutSummaryScalesWithAscent(t *testing.T) {
	base := BottomUpParams{LeafW: 0.01, LeafH: 0.01, Height: 6}
	p1 := base
	p1.AscendLevels = 1
	p3 := base
	p3.AscendLevels = 3
	c1 := BottomUpUpdateCost(1, p1)
	c3 := BottomUpUpdateCost(1, p3)
	if c3 <= c1 {
		t.Fatalf("climbing 3 levels (%v) should cost more than 1 (%v)", c3, c1)
	}
	withSummary := base
	withSummary.UseSummary = true
	cs := BottomUpUpdateCost(1, withSummary)
	if cs > c3 {
		t.Fatalf("summary-bounded cost %v should not exceed 3-level climb %v", cs, c3)
	}
}

func TestProfileTreeAndPredictionOrder(t *testing.T) {
	// Build a real tree, profile it, and confirm the model's predicted
	// query cost is within a factor of ~2.5 of the measured disk reads
	// for mid-sized windows (the model over-counts boundary effects).
	io := &stats.IO{}
	store := pagestore.New(1024, io)
	pool := buffer.New(store, 0)
	tr := rtree.New(pool, rtree.Config{})
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	for i := 0; i < n; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		if err := tr.Insert(rtree.OID(i), geom.RectFromPoint(p)); err != nil {
			t.Fatal(err)
		}
	}
	prof, err := ProfileTree(tr)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Height() != tr.Height() {
		t.Fatalf("profile height %d, tree %d", prof.Height(), tr.Height())
	}
	nodesInProfile := 0
	for _, l := range prof.Levels {
		nodesInProfile += len(l)
	}
	ts, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if nodesInProfile != ts.Nodes {
		t.Fatalf("profile nodes %d, tree nodes %d", nodesInProfile, ts.Nodes)
	}

	const q = 0.1
	predicted := ExpectedQueryAccesses(prof, q, q)
	const queries = 300
	base := io.Snapshot()
	for i := 0; i < queries; i++ {
		x, y := rng.Float64()*(1-q), rng.Float64()*(1-q)
		if err := tr.Search(geom.Rect{MinX: x, MinY: y, MaxX: x + q, MaxY: y + q},
			func(rtree.OID, geom.Rect) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	measured := float64(io.Snapshot().Sub(base).Reads) / queries
	if predicted < measured/2.5 || predicted > measured*2.5 {
		t.Fatalf("predicted %.1f reads vs measured %.1f: model out of range", predicted, measured)
	}
	if prof.String() == "" {
		t.Fatal("empty profile string")
	}
}

func TestQuickProbabilitiesInRange(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		x1, y1 := math.Abs(a), math.Abs(b)
		x2, y2 := math.Abs(c), math.Abs(d)
		p1 := ProbPointInWindow(x1, y1)
		p2 := ProbWindowsOverlap(x1, y1, x2, y2)
		return p1 >= 0 && p1 <= 1 && p2 >= 0 && p2 <= 1 && p2 >= ProbPointInWindow(x1, y1)*0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
