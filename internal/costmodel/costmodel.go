// Package costmodel implements the analytical cost model of the paper's
// §4: the expected number of disk accesses for window queries over an
// R-tree (Lemmas 1–2, Theorem 1), the derived cost of a top-down update,
// and the expected cost of a generalized bottom-up update as a function
// of the distance moved.
//
// The data space is the unit square; window and node extents are given
// as side lengths. The model's punchline, reproduced by the tests and
// the cost benchmarks: the worst case of the bottom-up update is bounded
// by the best case of the top-down update (B ≤ T when T = 2h+1 and the
// object moves the maximum distance √2).
package costmodel

import (
	"fmt"
	"math"

	"burtree/internal/rtree"
)

// ProbPointInWindow is Lemma 1: the probability that a uniformly placed
// point falls inside a window of size x × y in the unit square.
func ProbPointInWindow(x, y float64) float64 {
	return clampProb(x * y)
}

// ProbWindowsOverlap is Lemma 2: the probability that two uniformly
// placed windows of sizes x1 × y1 and x2 × y2 overlap.
func ProbWindowsOverlap(x1, y1, x2, y2 float64) float64 {
	return clampProb((x1 + x2) * (y1 + y2))
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// NodeExtent is the size of one node's MBR.
type NodeExtent struct {
	W, H float64
}

// TreeProfile captures the per-level node extents of a tree: Levels[l]
// lists the MBR sizes of all nodes at level l (0 = leaves).
type TreeProfile struct {
	Levels [][]NodeExtent
}

// Height returns the number of levels in the profile.
func (p *TreeProfile) Height() int { return len(p.Levels) }

// ProfileTree walks a live tree and extracts its level profile.
func ProfileTree(t *rtree.Tree) (*TreeProfile, error) {
	p := &TreeProfile{Levels: make([][]NodeExtent, t.Height())}
	if t.Height() == 0 {
		return p, nil
	}
	var walk func(page rtree.PageID) error
	walk = func(page rtree.PageID) error {
		n, err := t.ReadNode(page)
		if err != nil {
			return err
		}
		p.Levels[n.Level] = append(p.Levels[n.Level], NodeExtent{W: n.Self.Width(), H: n.Self.Height()})
		if n.IsLeaf() {
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root()); err != nil {
		return nil, err
	}
	return p, nil
}

// ExpectedQueryAccesses is Theorem 1: the expected number of node pages
// read by a window query of size qx × qy, summed over every node of
// every level using Lemma 2.
func ExpectedQueryAccesses(p *TreeProfile, qx, qy float64) float64 {
	total := 0.0
	for _, level := range p.Levels {
		for _, n := range level {
			total += ProbWindowsOverlap(n.W, n.H, qx, qy)
		}
	}
	return total
}

// TopDownUpdateCost follows §4.1: a top-down update performs one
// traversal to locate and delete the entry and a second to insert the
// new one — 2 × the expected accesses of a point query — plus one I/O to
// write the leaf page back.
func TopDownUpdateCost(p *TreeProfile) float64 {
	return 2*ExpectedQueryAccesses(p, 0, 0) + 1
}

// TopDownBestCase is the paper's best case for the top-down update: a
// single root-to-leaf path for both traversals, 2h + 1.
func TopDownBestCase(height int) float64 {
	return float64(2*height + 1)
}

// BottomUpParams carries the knobs of the §4.2 bottom-up cost model.
type BottomUpParams struct {
	// LeafW, LeafH are the extents of the object's leaf MBR.
	LeafW, LeafH float64
	// Height is the number of tree levels.
	Height int
	// UseSummary selects the direct-access-table bound: the upward
	// traversal costs a constant instead of climbing node by node.
	UseSummary bool
	// AscendLevels is the expected number of levels climbed when the
	// update leaves the leaf (only used without the summary structure).
	AscendLevels int
}

// BottomUpUpdateCost follows §4.2: with probability pIn (the chance that
// a move of distance d stays inside the leaf MBR, worst-cased by placing
// the object at the MBR corner) the update costs 3 I/Os; otherwise it
// costs the extension path (4 I/Os) or the sibling path (6 I/Os one
// level up, plus 2 per extra level climbed, or a constant 7 with the
// summary structure).
func BottomUpUpdateCost(d float64, prm BottomUpParams) float64 {
	pIn := ProbStayInLeaf(d, prm.LeafW, prm.LeafH)
	pOut := 1 - pIn

	const (
		costIn     = 3 // hash read + leaf read/write
		costExtend = 4 // + parent read
	)
	var costSibling float64
	if prm.UseSummary {
		costSibling = 7 // hash + leaf R/W + sibling R/W + 2 parent reads
	} else {
		up := prm.AscendLevels
		if up < 1 {
			up = 1
		}
		costSibling = 5 + 2*float64(up) // 1+2+2 + 2 per level climbed
	}
	// The paper splits the out-of-leaf mass evenly between the extension
	// and sibling cases in its worst-case analysis.
	return pIn*costIn + pOut*0.5*costExtend + pOut*0.5*costSibling
}

// ProbStayInLeaf is the §4.2 worst-case probability that an object at
// the corner of its leaf MBR remains inside after moving distance d:
// (w-d)(h-d)/(w·h), floored at 0.
func ProbStayInLeaf(d, w, h float64) float64 {
	if w <= 0 || h <= 0 {
		return 0
	}
	if d >= w || d >= h {
		return 0
	}
	return clampProb((w - d) * (h - d) / (w * h))
}

// MaxMoveDistance is the diameter of the unit square.
var MaxMoveDistance = math.Sqrt2

// WorstCaseBound verifies the paper's headline inequality for a tree of
// the given height: the bottom-up worst case (object moves the maximum
// distance, summary in use) does not exceed the top-down best case
// 2h + 1. It returns both sides.
func WorstCaseBound(height int) (bottomUp, topDownBest float64) {
	prm := BottomUpParams{LeafW: 0.01, LeafH: 0.01, Height: height, UseSummary: true}
	return BottomUpUpdateCost(MaxMoveDistance, prm), TopDownBestCase(height)
}

// String renders the profile compactly.
func (p *TreeProfile) String() string {
	s := fmt.Sprintf("profile h=%d:", p.Height())
	for l, nodes := range p.Levels {
		s += fmt.Sprintf(" L%d=%d", l, len(nodes))
	}
	return s
}
