package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersAndSnapshot(t *testing.T) {
	io := &IO{}
	io.CountRead()
	io.CountRead()
	io.CountWrite()
	io.CountBufferHit()
	io.CountSplit()
	io.CountReinserts(7)
	s := io.Snapshot()
	if s.Reads != 2 || s.Writes != 1 || s.BufferHits != 1 || s.Splits != 1 || s.Reinserts != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if io.Total() != 3 || s.Total() != 3 {
		t.Fatalf("total = %d / %d", io.Total(), s.Total())
	}
}

func TestSubAndHitRate(t *testing.T) {
	io := &IO{}
	io.CountRead()
	base := io.Snapshot()
	io.CountRead()
	io.CountBufferHit()
	io.CountBufferHit()
	io.CountBufferHit()
	d := io.Snapshot().Sub(base)
	if d.Reads != 1 || d.BufferHits != 3 {
		t.Fatalf("delta = %+v", d)
	}
	if got := d.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
	if (Snapshot{}).HitRate() != 0 {
		t.Fatal("empty snapshot hit rate should be 0")
	}
}

func TestReset(t *testing.T) {
	io := &IO{}
	io.CountRead()
	io.CountWrite()
	io.Reset()
	if io.Total() != 0 || io.BufferHits() != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestStringContainsFields(t *testing.T) {
	s := Snapshot{Reads: 1, Writes: 2, BufferHits: 3, Splits: 4, Reinserts: 5}
	str := s.String()
	for _, want := range []string{"reads=1", "writes=2", "hits=3", "splits=4", "reinserts=5"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestConcurrentCounting(t *testing.T) {
	io := &IO{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				io.CountRead()
				io.CountWrite()
			}
		}()
	}
	wg.Wait()
	if io.Reads() != 8000 || io.Writes() != 8000 {
		t.Fatalf("reads=%d writes=%d", io.Reads(), io.Writes())
	}
}
