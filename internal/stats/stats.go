// Package stats provides the performance counters used throughout the
// library: physical disk reads/writes, buffer hits, and split/reinsert
// activity. All counters are safe for concurrent use; the throughput
// experiment (paper §5.4) updates them from 50 goroutines.
package stats

import (
	"fmt"
	"sync/atomic"
)

// IO aggregates the disk and buffer counters for one database instance.
// The zero value is ready to use.
type IO struct {
	reads      atomic.Int64 // physical page reads
	writes     atomic.Int64 // physical page writes
	bufferHits atomic.Int64 // logical reads served by the buffer pool
	splits     atomic.Int64 // node splits
	reinserts  atomic.Int64 // entries force-reinserted
}

// CountRead records one physical page read.
func (io *IO) CountRead() { io.reads.Add(1) }

// CountWrite records one physical page write.
func (io *IO) CountWrite() { io.writes.Add(1) }

// CountBufferHit records a logical read served from the buffer pool.
func (io *IO) CountBufferHit() { io.bufferHits.Add(1) }

// CountSplit records one node split.
func (io *IO) CountSplit() { io.splits.Add(1) }

// CountReinserts records n entries scheduled for forced reinsertion.
func (io *IO) CountReinserts(n int) { io.reinserts.Add(int64(n)) }

// Reads returns the physical read count.
func (io *IO) Reads() int64 { return io.reads.Load() }

// Writes returns the physical write count.
func (io *IO) Writes() int64 { return io.writes.Load() }

// BufferHits returns the buffer hit count.
func (io *IO) BufferHits() int64 { return io.bufferHits.Load() }

// Splits returns the node split count.
func (io *IO) Splits() int64 { return io.splits.Load() }

// Reinserts returns the count of force-reinserted entries.
func (io *IO) Reinserts() int64 { return io.reinserts.Load() }

// Total returns reads+writes, the paper's "disk I/O" metric.
func (io *IO) Total() int64 { return io.Reads() + io.Writes() }

// Snapshot is an immutable copy of the counters, used to compute
// per-phase deltas.
type Snapshot struct {
	Reads, Writes, BufferHits, Splits, Reinserts int64
}

// Snapshot returns the current counter values.
func (io *IO) Snapshot() Snapshot {
	return Snapshot{
		Reads:      io.Reads(),
		Writes:     io.Writes(),
		BufferHits: io.BufferHits(),
		Splits:     io.Splits(),
		Reinserts:  io.Reinserts(),
	}
}

// Reset zeroes all counters.
func (io *IO) Reset() {
	io.reads.Store(0)
	io.writes.Store(0)
	io.bufferHits.Store(0)
	io.splits.Store(0)
	io.reinserts.Store(0)
}

// Sub returns the component-wise difference s - t.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		Reads:      s.Reads - t.Reads,
		Writes:     s.Writes - t.Writes,
		BufferHits: s.BufferHits - t.BufferHits,
		Splits:     s.Splits - t.Splits,
		Reinserts:  s.Reinserts - t.Reinserts,
	}
}

// Total returns reads+writes for the snapshot.
func (s Snapshot) Total() int64 { return s.Reads + s.Writes }

// HitRate returns the fraction of logical reads served by the buffer,
// or 0 when there were no logical reads.
func (s Snapshot) HitRate() float64 {
	logical := s.Reads + s.BufferHits
	if logical == 0 {
		return 0
	}
	return float64(s.BufferHits) / float64(logical)
}

// String implements fmt.Stringer.
func (s Snapshot) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d splits=%d reinserts=%d",
		s.Reads, s.Writes, s.BufferHits, s.Splits, s.Reinserts)
}
