// Package geom provides the two-dimensional geometric primitives used by
// the R-tree: points and axis-aligned rectangles (MBRs).
//
// The data space follows the paper's convention: coordinates are float64
// and workloads are generated in the unit square, although nothing in this
// package assumes unit bounds. Rectangles are closed intervals on both
// axes; a degenerate rectangle (zero width and/or height) is valid and is
// how point data is stored in leaf entries.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in 2-D space.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
// The zero value is the degenerate rectangle at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{p.X, p.Y, p.X, p.Y}
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
}

// Valid reports whether r has MinX <= MaxX and MinY <= MaxY and no NaNs.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY // NaN comparisons are false
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have area zero.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r (the R*-tree "margin" measure).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// ContainsPoint reports whether p lies within r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r (boundary
// inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point
// (touching boundaries count as intersecting, as in Guttman's R-tree).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the minimum bounding rectangle of r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Intersection returns the overlap of r and s. If they do not intersect
// the second result is false and the rectangle is the zero value.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}, true
}

// OverlapArea returns the area of the intersection of r and s, or zero if
// they are disjoint.
func (r Rect) OverlapArea(s Rect) float64 {
	w := math.Min(r.MaxX, s.MaxX) - math.Max(r.MinX, s.MinX)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.MaxY, s.MaxY) - math.Max(r.MinY, s.MinY)
	if h <= 0 {
		return 0
	}
	return w * h
}

// Enlargement returns the increase in area needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// EnlargementPoint returns the increase in area needed for r to cover p.
func (r Rect) EnlargementPoint(p Point) float64 {
	return r.UnionPoint(p).Area() - r.Area()
}

// Expand returns r grown by eps in every direction (the LBU / Kwon-style
// uniform enlargement). A negative eps shrinks the rectangle; callers must
// ensure the result remains valid.
func (r Rect) Expand(eps float64) Rect {
	return Rect{r.MinX - eps, r.MinY - eps, r.MaxX + eps, r.MaxY + eps}
}

// ClipTo returns r clipped so that it lies within bound. If r and bound
// are disjoint the result is degenerate but still inside bound.
func (r Rect) ClipTo(bound Rect) Rect {
	c := Rect{
		MinX: clamp(r.MinX, bound.MinX, bound.MaxX),
		MinY: clamp(r.MinY, bound.MinY, bound.MaxY),
		MaxX: clamp(r.MaxX, bound.MinX, bound.MaxX),
		MaxY: clamp(r.MaxY, bound.MinY, bound.MaxY),
	}
	return c
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Equal reports exact equality of all four coordinates.
func (r Rect) Equal(s Rect) bool { return r == s }

// AlmostEqual reports coordinate-wise equality within tol.
func (r Rect) AlmostEqual(s Rect, tol float64) bool {
	return math.Abs(r.MinX-s.MinX) <= tol &&
		math.Abs(r.MinY-s.MinY) <= tol &&
		math.Abs(r.MaxX-s.MaxX) <= tol &&
		math.Abs(r.MaxY-s.MaxY) <= tol
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// DistSq returns the squared Euclidean distance between two points.
func DistSq(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// MinDistPoint returns the minimum distance from p to any point of r
// (zero when p is inside r). Used by nearest-neighbour search.
func (r Rect) MinDistPoint(p Point) float64 {
	dx := axisDist(p.X, r.MinX, r.MaxX)
	dy := axisDist(p.Y, r.MinY, r.MaxY)
	return math.Hypot(dx, dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6g,%.6g)", p.X, p.Y)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g | %.6g,%.6g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// UnionAll returns the MBR of all given rectangles. It panics on an empty
// slice: an empty set has no meaningful bounding rectangle.
func UnionAll(rects []Rect) Rect {
	if len(rects) == 0 {
		panic("geom: UnionAll of empty slice")
	}
	u := rects[0]
	for _, r := range rects[1:] {
		u = u.Union(r)
	}
	return u
}

// WorldRect is a rectangle large enough to contain any workload this
// library generates; used as the clip bound when no parent constraint
// applies.
var WorldRect = Rect{-math.MaxFloat64 / 4, -math.MaxFloat64 / 4, math.MaxFloat64 / 4, math.MaxFloat64 / 4}

// ClampCell quantizes a coordinate in the unit interval onto an n-cell
// grid, clamping everything outside [0, 1) onto the boundary cells.
// Used by every grid-routing layer (DGL granules, shard partitioning),
// which must clamp identically for "the cell of a point inside a
// window is among the cells covering that window" to hold.
//
// The clamping happens BEFORE the int conversion: converting a huge
// float (beyond ~9.2e18) to int yields minInt64, which would route
// far-out coordinates to cell 0 and make covering ranges empty or of
// negative size. NaN (for which v > 0 is false) routes to cell 0.
func ClampCell(v float64, n int) int {
	if !(v > 0) {
		return 0
	}
	if v >= 1 {
		return n - 1
	}
	c := int(v * float64(n))
	if c >= n { // v just below 1 can still round up
		return n - 1
	}
	return c
}
