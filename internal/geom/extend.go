package geom

import "math"

// ExtendToward implements the paper's Algorithm 4 (iExtendMBR): it enlarges
// leaf toward p only in the direction(s) of movement, by at most eps per
// side, and never beyond parent. The enlargement is also "only enough to
// bound the object": a side moves the minimum of (eps, distance needed),
// still clipped by the parent MBR.
//
// The returned rectangle is not guaranteed to contain p; callers must check
// ContainsPoint on the result (the paper issues a sibling shift or an
// ascent when the extension fails to cover the new location).
func ExtendToward(leaf Rect, p Point, eps float64, parent Rect) Rect {
	out := leaf
	if p.X > leaf.MaxX {
		out.MaxX = math.Min(math.Min(leaf.MaxX+eps, p.X), parent.MaxX)
	} else if p.X < leaf.MinX {
		out.MinX = math.Max(math.Max(leaf.MinX-eps, p.X), parent.MinX)
	}
	if p.Y > leaf.MaxY {
		out.MaxY = math.Min(math.Min(leaf.MaxY+eps, p.Y), parent.MaxY)
	} else if p.Y < leaf.MinY {
		out.MinY = math.Max(math.Max(leaf.MinY-eps, p.Y), parent.MinY)
	}
	return out
}

// ExpandWithin implements the LBU-style uniform enlargement (Kwon et al.):
// leaf grown by eps equally in all four directions, but only if the result
// stays inside parent. The boolean result reports whether the enlargement
// was permitted.
func ExpandWithin(leaf Rect, eps float64, parent Rect) (Rect, bool) {
	e := leaf.Expand(eps)
	if !parent.ContainsRect(e) {
		return leaf, false
	}
	return e, true
}
