package geom

import (
	"math"
	"testing"
)

// FuzzGeomIntersect cross-checks the rectangle algebra: for any two
// rectangles built from fuzzed corners, the predicates and constructors
// must agree with each other (Intersects ⇔ Intersection ⇔ OverlapArea,
// containment implies intersection, unions contain their arguments,
// intersections are contained in theirs, MinDistPoint is zero exactly
// on containment).
func FuzzGeomIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 0.5, 0.5, 2.0, 2.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0) // degenerate point rect
	f.Add(0.1, 0.2, 0.4, 0.3, 0.4, 0.3, 0.9, 0.9) // touching corners
	f.Add(-1.0, -1.0, -0.5, -0.5, 0.5, 0.5, 1.0, 1.0)
	f.Add(0.25, 0.25, 0.75, 0.75, 0.4, 0.4, 0.6, 0.6) // nested
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3, x4, y4 float64) {
		for _, v := range []float64{x1, y1, x2, y2, x3, y3, x4, y4} {
			// Non-finite and near-overflow coordinates have no defined
			// rectangle algebra (midpoints and areas overflow); the tree
			// never produces them.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				t.Skip()
			}
		}
		r := NewRect(x1, y1, x2, y2)
		s := NewRect(x3, y3, x4, y4)
		if !r.Valid() || !s.Valid() {
			t.Fatalf("NewRect produced invalid rect: %v %v", r, s)
		}

		if r.Intersects(s) != s.Intersects(r) {
			t.Fatalf("Intersects not symmetric: %v vs %v", r, s)
		}
		inter, ok := r.Intersection(s)
		if ok != r.Intersects(s) {
			t.Fatalf("Intersection ok=%v disagrees with Intersects=%v for %v %v", ok, r.Intersects(s), r, s)
		}
		if ok {
			if !inter.Valid() {
				t.Fatalf("invalid intersection %v of %v %v", inter, r, s)
			}
			if !r.ContainsRect(inter) || !s.ContainsRect(inter) {
				t.Fatalf("intersection %v not contained in both %v %v", inter, r, s)
			}
			if got, want := r.OverlapArea(s), inter.Area(); got != want {
				t.Fatalf("OverlapArea %g != Intersection area %g for %v %v", got, want, r, s)
			}
			c := inter.Center()
			if !r.ContainsPoint(c) || !s.ContainsPoint(c) {
				t.Fatalf("intersection center %v outside %v or %v", c, r, s)
			}
		} else {
			if r.OverlapArea(s) != 0 {
				t.Fatalf("disjoint rects %v %v have overlap area %g", r, s, r.OverlapArea(s))
			}
		}
		if r.ContainsRect(s) && !r.Intersects(s) {
			t.Fatalf("%v contains %v but does not intersect it", r, s)
		}

		u := r.Union(s)
		if !u.ContainsRect(r) || !u.ContainsRect(s) {
			t.Fatalf("union %v does not contain %v and %v", u, r, s)
		}
		if u.Area() < r.Area() || u.Area() < s.Area() {
			t.Fatalf("union area %g below argument areas %g %g", u.Area(), r.Area(), s.Area())
		}

		p := Point{X: x3, Y: y3}
		d := r.MinDistPoint(p)
		if r.ContainsPoint(p) != (d == 0) {
			t.Fatalf("MinDistPoint(%v, %v) = %g disagrees with containment %v", r, p, d, r.ContainsPoint(p))
		}
		if up := r.UnionPoint(p); !up.ContainsPoint(p) || !up.ContainsRect(r) {
			t.Fatalf("UnionPoint %v misses %v or %v", up, p, r)
		}

		clipped := r.ClipTo(s)
		if !clipped.Valid() || !s.ContainsRect(clipped) {
			t.Fatalf("ClipTo(%v, %v) = %v escapes the bound", r, s, clipped)
		}
	})
}
