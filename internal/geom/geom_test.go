package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectFromPoint(t *testing.T) {
	p := Point{3, -4}
	r := RectFromPoint(p)
	if r.MinX != 3 || r.MaxX != 3 || r.MinY != -4 || r.MaxY != -4 {
		t.Fatalf("RectFromPoint(%v) = %v", p, r)
	}
	if r.Area() != 0 {
		t.Fatalf("point rect area = %v, want 0", r.Area())
	}
	if !r.ContainsPoint(p) {
		t.Fatalf("point rect does not contain its point")
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect reported invalid")
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, true},
		{Rect{0, 0, 0, 0}, true},
		{Rect{1, 0, 0, 1}, false},
		{Rect{0, 1, 1, 0}, false},
		{Rect{math.NaN(), 0, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.r.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestAreaMarginCenter(t *testing.T) {
	r := Rect{1, 2, 4, 6}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %v, want 7", got)
	}
	if got := r.Center(); got != (Point{2.5, 4}) {
		t.Errorf("Center = %v, want (2.5,4)", got)
	}
}

func TestContainment(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	inner := Rect{2, 2, 5, 5}
	if !outer.ContainsRect(inner) {
		t.Errorf("outer should contain inner")
	}
	if inner.ContainsRect(outer) {
		t.Errorf("inner should not contain outer")
	}
	if !outer.ContainsRect(outer) {
		t.Errorf("containment must be reflexive")
	}
	// Boundary inclusive.
	if !outer.ContainsPoint(Point{10, 10}) {
		t.Errorf("boundary point should be contained")
	}
	if outer.ContainsPoint(Point{10.000001, 10}) {
		t.Errorf("exterior point should not be contained")
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},
		{Rect{2, 2, 3, 3}, true}, // touching corner counts
		{Rect{3, 3, 4, 4}, false},
		{Rect{0, 2, 2, 4}, true}, // touching edge counts
		{Rect{-1, -1, -0.1, -0.1}, false},
		{a, true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects must be symmetric for %v", c.b)
		}
	}
}

func TestUnionIntersection(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 4}
	u := a.Union(b)
	if u != (Rect{0, 0, 3, 4}) {
		t.Fatalf("Union = %v", u)
	}
	i, ok := a.Intersection(b)
	if !ok || i != (Rect{1, 1, 2, 2}) {
		t.Fatalf("Intersection = %v, %v", i, ok)
	}
	if _, ok := a.Intersection(Rect{5, 5, 6, 6}); ok {
		t.Fatalf("disjoint rects reported intersecting")
	}
}

func TestOverlapArea(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	if got := a.OverlapArea(Rect{1, 1, 3, 3}); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	if got := a.OverlapArea(Rect{2, 0, 3, 2}); got != 0 {
		t.Errorf("touching overlap area = %v, want 0", got)
	}
	if got := a.OverlapArea(Rect{9, 9, 10, 10}); got != 0 {
		t.Errorf("disjoint overlap area = %v, want 0", got)
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	if got := a.Enlargement(Rect{1, 1, 1.5, 1.5}); got != 0 {
		t.Errorf("enlargement for contained rect = %v, want 0", got)
	}
	if got := a.EnlargementPoint(Point{4, 2}); got != 4 {
		t.Errorf("enlargement for point = %v, want 4", got)
	}
}

func TestExpandAndClip(t *testing.T) {
	r := Rect{1, 1, 2, 2}
	e := r.Expand(0.5)
	if e != (Rect{0.5, 0.5, 2.5, 2.5}) {
		t.Fatalf("Expand = %v", e)
	}
	bound := Rect{0, 0, 2.2, 10}
	c := e.ClipTo(bound)
	if !bound.ContainsRect(c) {
		t.Fatalf("clip result %v escapes bound %v", c, bound)
	}
	if c != (Rect{0.5, 0.5, 2.2, 2.5}) {
		t.Fatalf("ClipTo = %v", c)
	}
}

func TestDist(t *testing.T) {
	if got := Dist(Point{0, 0}, Point{3, 4}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := DistSq(Point{1, 1}, Point{4, 5}); got != 25 {
		t.Errorf("DistSq = %v, want 25", got)
	}
}

func TestMinDistPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},
		{Point{3, 1}, 1},
		{Point{1, -2}, 2},
		{Point{5, 6}, 5},
	}
	for _, c := range cases {
		if got := r.MinDistPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDistPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestUnionAll(t *testing.T) {
	rects := []Rect{{0, 0, 1, 1}, {2, -1, 3, 0.5}, {0.5, 0.5, 0.6, 4}}
	u := UnionAll(rects)
	if u != (Rect{0, -1, 3, 4}) {
		t.Fatalf("UnionAll = %v", u)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("UnionAll(empty) did not panic")
		}
	}()
	UnionAll(nil)
}

func TestExtendTowardDirections(t *testing.T) {
	parent := Rect{0, 0, 10, 10}
	leaf := Rect{4, 4, 6, 6}
	eps := 1.0

	// Moving NE: only MaxX / MaxY may grow.
	got := ExtendToward(leaf, Point{6.5, 6.5}, eps, parent)
	if got != (Rect{4, 4, 6.5, 6.5}) {
		t.Errorf("NE extend = %v", got)
	}
	// Only enough to bound: target closer than eps.
	got = ExtendToward(leaf, Point{6.2, 5}, eps, parent)
	if got != (Rect{4, 4, 6.2, 6}) {
		t.Errorf("E extend = %v", got)
	}
	// Movement beyond eps: capped at eps, may fail to cover.
	got = ExtendToward(leaf, Point{9, 5}, eps, parent)
	if got != (Rect{4, 4, 7, 6}) {
		t.Errorf("capped extend = %v", got)
	}
	if got.ContainsPoint(Point{9, 5}) {
		t.Errorf("capped extension should not cover far target")
	}
	// Clipped by the parent MBR.
	leafEdge := Rect{8, 8, 9.8, 9.8}
	got = ExtendToward(leafEdge, Point{10.5, 9}, eps, parent)
	if got.MaxX != 10 {
		t.Errorf("parent clip: MaxX = %v, want 10", got.MaxX)
	}
	// Moving SW grows Min sides only.
	got = ExtendToward(leaf, Point{3.5, 3.2}, eps, parent)
	if got != (Rect{3.5, 3.2, 6, 6}) {
		t.Errorf("SW extend = %v", got)
	}
	// Point already inside: unchanged.
	got = ExtendToward(leaf, Point{5, 5}, eps, parent)
	if got != leaf {
		t.Errorf("interior point changed rect: %v", got)
	}
}

func TestExpandWithin(t *testing.T) {
	parent := Rect{0, 0, 10, 10}
	leaf := Rect{4, 4, 6, 6}
	got, ok := ExpandWithin(leaf, 1, parent)
	if !ok || got != (Rect{3, 3, 7, 7}) {
		t.Fatalf("ExpandWithin = %v, %v", got, ok)
	}
	// Too close to the parent boundary: refused, leaf unchanged.
	edge := Rect{0.5, 4, 6, 6}
	got, ok = ExpandWithin(edge, 1, parent)
	if ok || got != edge {
		t.Fatalf("ExpandWithin near edge = %v, %v; want refusal", got, ok)
	}
}

// randRect produces a valid rectangle from four random floats.
func randRect(r *rand.Rand) Rect {
	return NewRect(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5)
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		return a.Union(b) == b.Union(a) && a.Union(a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectionSymmetricAndContained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		i1, ok1 := a.Intersection(b)
		i2, ok2 := b.Intersection(a)
		if ok1 != ok2 || i1 != i2 {
			return false
		}
		if !ok1 {
			return !a.Intersects(b)
		}
		return a.ContainsRect(i1) && b.ContainsRect(i1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapAreaMatchesIntersection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		i, ok := a.Intersection(b)
		want := 0.0
		if ok {
			want = i.Area()
		}
		return math.Abs(a.OverlapArea(b)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnlargementNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRect(rng), randRect(rng)
		return a.Enlargement(b) >= 0 && a.Union(b).Area() >= a.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtendTowardInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewRect(-10, -10, 10, 10)
		leaf := randRect(rng).ClipTo(parent)
		p := Point{rng.Float64()*24 - 12, rng.Float64()*24 - 12}
		eps := rng.Float64() * 2
		out := ExtendToward(leaf, p, eps, parent)
		if !out.Valid() {
			return false
		}
		// Never shrinks, never escapes parent, each side grows <= eps.
		if !out.ContainsRect(leaf) {
			return false
		}
		if !parent.ContainsRect(out) {
			return false
		}
		const tol = 1e-9
		return leaf.MinX-out.MinX <= eps+tol &&
			leaf.MinY-out.MinY <= eps+tol &&
			out.MaxX-leaf.MaxX <= eps+tol &&
			out.MaxY-leaf.MaxY <= eps+tol
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtendTowardCoversNearbyPoints(t *testing.T) {
	// If the point is within eps of the leaf on each axis and inside the
	// parent, the extension must cover it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewRect(-10, -10, 10, 10)
		leaf := NewRect(-2, -2, 2, 2)
		eps := 0.5
		p := Point{rng.Float64()*(4+2*eps) - 2 - eps, rng.Float64()*(4+2*eps) - 2 - eps}
		out := ExtendToward(leaf, p, eps, parent)
		return out.ContainsPoint(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClipToStaysInside(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := randRect(rng)
		r := randRect(rng)
		c := r.ClipTo(bound)
		return c.Valid() && bound.ContainsRect(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	if s := (Point{1, 2}).String(); s == "" {
		t.Fatal("empty point string")
	}
	if s := (Rect{1, 2, 3, 4}).String(); s == "" {
		t.Fatal("empty rect string")
	}
}
