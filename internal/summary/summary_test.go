package summary

import (
	"math/rand"
	"testing"

	"burtree/internal/buffer"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
)

func newTrackedTree(t testing.TB, pageSize int, cfg rtree.Config) (*rtree.Tree, *Structure) {
	t.Helper()
	store := pagestore.New(pageSize, &stats.IO{})
	pool := buffer.New(store, 0)
	tr := rtree.New(pool, cfg)
	s := New(tr.MaxEntries())
	tr.SetListener(s)
	return tr, s
}

func pt(rng *rand.Rand) geom.Point {
	return geom.Point{X: rng.Float64(), Y: rng.Float64()}
}

func TestSummaryTracksInserts(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1500; i++ {
		if err := tr.Insert(rtree.OID(i), geom.RectFromPoint(pt(rng))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	root, height := s.Root()
	if root != tr.Root() || height != tr.Height() {
		t.Fatalf("summary root/height (%d,%d) vs tree (%d,%d)", root, height, tr.Root(), tr.Height())
	}
	mbr, ok := s.RootMBR()
	if !ok {
		t.Fatal("RootMBR not available for multi-level tree")
	}
	want, err := tr.RootMBR()
	if err != nil {
		t.Fatal(err)
	}
	if mbr != want {
		t.Fatalf("summary root MBR %v, tree %v", mbr, want)
	}
}

func TestSummaryTracksDeletes(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{})
	rng := rand.New(rand.NewSource(2))
	rects := map[rtree.OID]geom.Rect{}
	const n = 1000
	for i := 0; i < n; i++ {
		r := geom.RectFromPoint(pt(rng))
		if err := tr.Insert(rtree.OID(i), r); err != nil {
			t.Fatal(err)
		}
		rects[rtree.OID(i)] = r
	}
	order := rng.Perm(n)
	for k, idx := range order {
		oid := rtree.OID(idx)
		if err := tr.Delete(oid, rects[oid]); err != nil {
			t.Fatal(err)
		}
		if k%211 == 0 {
			if err := s.Validate(tr); err != nil {
				t.Fatalf("step %d: %v", k, err)
			}
		}
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if in, lf := s.Counts(); in != 0 || lf != 0 {
		t.Fatalf("counts after emptying = %d internal, %d leaves", in, lf)
	}
}

func TestSummaryWithReinsertAndUpdates(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{ReinsertFraction: 0.3})
	rng := rand.New(rand.NewSource(3))
	rects := map[rtree.OID]geom.Rect{}
	const n = 800
	for i := 0; i < n; i++ {
		r := geom.RectFromPoint(pt(rng))
		if err := tr.Insert(rtree.OID(i), r); err != nil {
			t.Fatal(err)
		}
		rects[rtree.OID(i)] = r
	}
	for step := 0; step < 1500; step++ {
		oid := rtree.OID(rng.Intn(n))
		old := rects[oid]
		c := old.Center()
		nr := geom.RectFromPoint(geom.Point{X: c.X + (rng.Float64()-0.5)*0.08, Y: c.Y + (rng.Float64()-0.5)*0.08})
		if err := tr.Update(oid, old, nr); err != nil {
			t.Fatal(err)
		}
		rects[oid] = nr
		if step%307 == 0 {
			if err := s.Validate(tr); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
}

func TestParentOfAndChainAbove(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1200; i++ {
		if err := tr.Insert(rtree.OID(i), geom.RectFromPoint(pt(rng))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d", tr.Height())
	}
	// Verify ParentOf and ChainAbove against a manual walk.
	root, err := tr.ReadNode(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := tr.ReadNode(root.Entries[1].Child)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := s.ParentOf(mid.Page); !ok || p != root.Page {
		t.Fatalf("ParentOf(mid) = %d, %v; want %d", p, ok, root.Page)
	}
	leafPage := mid.Entries[0].Child
	for !midIsLeafParent(t, tr, mid) {
		// Descend until mid is a parent of leaves.
		mid, err = tr.ReadNode(mid.Entries[0].Child)
		if err != nil {
			t.Fatal(err)
		}
		leafPage = mid.Entries[0].Child
	}
	chain, err := s.ChainAbove(leafPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != tr.Height()-1 {
		t.Fatalf("chain length = %d, want %d", len(chain), tr.Height()-1)
	}
	if chain[0] != tr.Root() {
		t.Fatalf("chain[0] = %d, want root %d", chain[0], tr.Root())
	}
	if chain[len(chain)-1] != mid.Page {
		t.Fatalf("chain tail = %d, want %d", chain[len(chain)-1], mid.Page)
	}
}

func midIsLeafParent(t *testing.T, tr *rtree.Tree, n *rtree.Node) bool {
	t.Helper()
	return n.Level == 1
}

func TestFindParentContainment(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1500; i++ {
		if err := tr.Insert(rtree.OID(i), geom.RectFromPoint(pt(rng))); err != nil {
			t.Fatal(err)
		}
	}
	h := tr.Height()
	if h < 3 {
		t.Fatalf("height = %d", h)
	}
	// Pick a random leaf by descending.
	n, err := tr.ReadNode(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	for !n.IsLeaf() {
		n, err = tr.ReadNode(n.Entries[rng.Intn(len(n.Entries))].Child)
		if err != nil {
			t.Fatal(err)
		}
	}
	leaf := n.Page

	// A point inside the leaf's parent MBR must resolve to the parent.
	parentPage, ok := s.ParentOf(leaf)
	if !ok {
		t.Fatal("leaf has no parent in summary")
	}
	pmbr, ok := s.MBROf(parentPage)
	if !ok {
		t.Fatal("parent MBR missing")
	}
	res, err := s.FindParent(leaf, pmbr.Center(), h-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ancestor != parentPage || res.Level != 1 {
		t.Fatalf("FindParent = %+v, want parent %d at level 1", res, parentPage)
	}
	if len(res.PathAbove) != h-2 {
		t.Fatalf("PathAbove length = %d, want %d", len(res.PathAbove), h-2)
	}
	if h >= 3 && res.PathAbove[0] != tr.Root() {
		t.Fatalf("PathAbove[0] = %d, want root", res.PathAbove[0])
	}

	// A point far outside everything must fall through to the root.
	far := geom.Point{X: 50, Y: 50}
	res, err = s.FindParent(leaf, far, h-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ancestor != tr.Root() {
		t.Fatalf("far point ancestor = %d, want root %d", res.Ancestor, tr.Root())
	}

	// Level threshold 0 forbids any ascent: even a contained point
	// resolves to the root fallback.
	res, err = s.FindParent(leaf, pmbr.Center(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ancestor != tr.Root() {
		t.Fatalf("λ=0 ancestor = %d, want root", res.Ancestor)
	}
}

func TestLeafFullBitVector(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{})
	rng := rand.New(rand.NewSource(6))
	// Fill one tight cluster so some leaf fills completely.
	for i := 0; i < 60; i++ {
		p := geom.Point{X: 0.5 + rng.Float64()*0.001, Y: 0.5 + rng.Float64()*0.001}
		if err := tr.Insert(rtree.OID(i), geom.RectFromPoint(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	// Unknown leaves read as full (conservative).
	if !s.IsLeafFull(pagestore.PageID(99999)) {
		t.Fatal("unknown leaf reported non-full")
	}
}

func TestOverlappingAtLevel(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1500; i++ {
		if err := tr.Insert(rtree.OID(i), geom.RectFromPoint(pt(rng))); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}
	got := s.OverlappingAtLevel(1, q, nil)
	// Cross-check against a tree walk.
	want := map[pagestore.PageID]bool{}
	var walk func(page pagestore.PageID) error
	walk = func(page pagestore.PageID) error {
		n, err := tr.ReadNode(page)
		if err != nil {
			return err
		}
		if n.Level == 1 && n.Self.Intersects(q) {
			want[page] = true
		}
		if n.Level <= 1 {
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tr.Root()); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("overlapping level-1 = %d nodes, want %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("page %d not expected", p)
		}
	}
}

func TestSizeBytesRatio(t *testing.T) {
	// The paper reports the table consuming a tiny fraction of the tree
	// (0.16% at fanout 204). With our smaller fanout the ratio is larger
	// but must still be far below 10%.
	tr, s := newTrackedTree(t, 1024, rtree.Config{})
	rng := rand.New(rand.NewSource(8))
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tr.Insert(rtree.OID(i), geom.RectFromPoint(pt(rng))); err != nil {
			t.Fatal(err)
		}
	}
	treeBytes := tr.Pool().Store().NumPages() * 1024
	ratio := float64(s.SizeBytes()) / float64(treeBytes)
	if ratio > 0.10 {
		t.Fatalf("summary/tree size ratio = %.4f, want < 0.10", ratio)
	}
	if s.SizeBytes() == 0 {
		t.Fatal("summary reports zero size")
	}
}

func TestBulkLoadPopulatesSummary(t *testing.T) {
	tr, s := newTrackedTree(t, 512, rtree.Config{})
	rng := rand.New(rand.NewSource(9))
	items := make([]rtree.Item, 3000)
	for i := range items {
		items[i] = rtree.Item{OID: rtree.OID(i), Rect: geom.RectFromPoint(pt(rng))}
	}
	if err := tr.BulkLoad(items, 0.66); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
}
