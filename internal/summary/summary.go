// Package summary implements the paper's compact main-memory summary
// structure (§3.2, Figure 3): a direct-access table over the R-tree's
// internal nodes — each entry holding the node's single bounding MBR, its
// level, and its child page pointers — plus a bit vector over the leaf
// nodes recording whether they are full.
//
// The structure is maintained through the rtree.Listener hooks, so its
// upkeep costs no disk I/O: "We only need to update the direct access
// table when there is an MBR modification or node split." The GBU
// strategy uses it to (a) test the root MBR without touching disk,
// (b) find a node's parent and the lowest ancestor bounding a new
// location (Algorithm 3, FindParent), (c) screen sibling leaves for
// fullness before reading any of them, and (d) answer the internal-level
// overlap tests of a window query entirely in memory.
package summary

import (
	"fmt"
	"sync"

	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
)

// NodeInfo is one direct-access-table entry: the summary of an internal
// node.
type NodeInfo struct {
	Page     pagestore.PageID
	Level    int
	MBR      geom.Rect
	Children []pagestore.PageID
}

// Structure is the main-memory summary. It is safe for concurrent use;
// the throughput experiment updates it from many goroutines.
type Structure struct {
	mu sync.RWMutex

	maxLeafEntries int

	root   pagestore.PageID
	height int

	internal map[pagestore.PageID]*NodeInfo
	byLevel  map[int]map[pagestore.PageID]*NodeInfo
	parent   map[pagestore.PageID]pagestore.PageID // child -> parent (internal + leaf children)

	leafFull  map[pagestore.PageID]bool // the paper's bit vector
	leafCount map[pagestore.PageID]int
}

var _ rtree.Listener = (*Structure)(nil)

// New creates an empty summary for a tree whose leaves hold at most
// maxLeafEntries entries.
func New(maxLeafEntries int) *Structure {
	return &Structure{
		maxLeafEntries: maxLeafEntries,
		internal:       make(map[pagestore.PageID]*NodeInfo),
		byLevel:        make(map[int]map[pagestore.PageID]*NodeInfo),
		parent:         make(map[pagestore.PageID]pagestore.PageID),
		leafFull:       make(map[pagestore.PageID]bool),
		leafCount:      make(map[pagestore.PageID]int),
	}
}

// NodeWritten maintains the table and bit vector (rtree.Listener).
func (s *Structure) NodeWritten(page pagestore.PageID, level int, self geom.Rect, children []pagestore.PageID, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if level == 0 {
		s.leafFull[page] = count >= s.maxLeafEntries
		s.leafCount[page] = count
		return
	}
	info := s.internal[page]
	if info == nil {
		info = &NodeInfo{Page: page, Level: level}
		s.internal[page] = info
	} else if info.Level != level {
		// A recycled page id changed roles; evict from the old level.
		delete(s.byLevel[info.Level], page)
		info.Level = level
	}
	lvl := s.byLevel[level]
	if lvl == nil {
		lvl = make(map[pagestore.PageID]*NodeInfo)
		s.byLevel[level] = lvl
	}
	lvl[page] = info
	info.MBR = self

	// Diff children to keep the reverse parent map exact.
	old := info.Children
	info.Children = append(info.Children[:0:0], children...)
	for _, c := range children {
		s.parent[c] = page
	}
	for _, c := range old {
		if s.parent[c] == page && !contains(children, c) {
			delete(s.parent, c)
		}
	}
}

func contains(pages []pagestore.PageID, p pagestore.PageID) bool {
	for _, q := range pages {
		if q == p {
			return true
		}
	}
	return false
}

// NodeFreed drops a node from the table (rtree.Listener).
func (s *Structure) NodeFreed(page pagestore.PageID, level int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if level == 0 {
		delete(s.leafFull, page)
		delete(s.leafCount, page)
		delete(s.parent, page)
		return
	}
	if info := s.internal[page]; info != nil {
		for _, c := range info.Children {
			if s.parent[c] == page {
				delete(s.parent, c)
			}
		}
		delete(s.byLevel[info.Level], page)
		delete(s.internal, page)
	}
	delete(s.parent, page)
}

// RootChanged records the new root (rtree.Listener).
func (s *Structure) RootChanged(root pagestore.PageID, height int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.root = root
	s.height = height
	delete(s.parent, root)
}

// DataPlaced is a no-op; the summary tracks nodes, not objects.
func (s *Structure) DataPlaced(oid rtree.OID, leaf pagestore.PageID) {}

// DataRemoved is a no-op.
func (s *Structure) DataRemoved(oid rtree.OID) {}

// Root returns the current root page and tree height.
func (s *Structure) Root() (pagestore.PageID, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root, s.height
}

// RootMBR returns the MBR of the root node without disk access. For a
// leaf root (height 1) the table has no entry and ok is false; GBU then
// falls back to reading the root, which is a single page anyway.
func (s *Structure) RootMBR() (geom.Rect, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if info, ok := s.internal[s.root]; ok {
		return info.MBR, true
	}
	return geom.Rect{}, false
}

// ParentOf returns the parent page of node, resolved entirely in memory.
func (s *Structure) ParentOf(node pagestore.PageID) (pagestore.PageID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.parent[node]
	return p, ok
}

// MBROf returns the table MBR of an internal node.
func (s *Structure) MBROf(page pagestore.PageID) (geom.Rect, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.internal[page]
	if !ok {
		return geom.Rect{}, false
	}
	return info.MBR, true
}

// IsLeafFull consults the bit vector; a missing leaf reads as full so
// that a stale sibling candidate is never chosen.
func (s *Structure) IsLeafFull(page pagestore.PageID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	full, ok := s.leafFull[page]
	return full || !ok
}

// LeafCount returns the recorded entry count of a leaf.
func (s *Structure) LeafCount(page pagestore.PageID) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.leafCount[page]
	return c, ok
}

// FindParentResult is the outcome of Algorithm 3.
type FindParentResult struct {
	// Ancestor is the chosen insertion root: the lowest ancestor of the
	// starting leaf whose MBR contains the new location, subject to the
	// level threshold; the tree root when no ancestor qualifies.
	Ancestor pagestore.PageID
	// Level is the ancestor's tree level.
	Level int
	// PathAbove lists the ancestors of Ancestor from the root down to its
	// parent, for split/MBR propagation during the insert.
	PathAbove []pagestore.PageID
}

// FindParent implements Algorithm 3 with the paper's level threshold λ:
// starting from the leaf's parent, ascend while the ancestor's table MBR
// does not contain p, visiting at most maxLevel levels above the leaf
// (maxLevel ≥ height-1 means unrestricted). If no ancestor within the
// threshold contains p, the root is returned, matching the algorithm's
// "return(root offset)".
func (s *Structure) FindParent(leaf pagestore.PageID, p geom.Point, maxLevel int) (FindParentResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.root == pagestore.InvalidPage {
		return FindParentResult{}, fmt.Errorf("summary: FindParent on empty tree")
	}
	// Climb to the root collecting the chain leaf-parent..root.
	var chain []pagestore.PageID
	cur := leaf
	for cur != s.root {
		par, ok := s.parent[cur]
		if !ok {
			return FindParentResult{}, fmt.Errorf("summary: no parent recorded for page %d", cur)
		}
		chain = append(chain, par)
		cur = par
	}
	// chain[0] is the leaf's parent (level 1), chain[len-1] the root.
	for i, page := range chain {
		level := i + 1
		if level > maxLevel {
			break
		}
		info := s.internal[page]
		if info == nil {
			return FindParentResult{}, fmt.Errorf("summary: internal node %d missing from table", page)
		}
		if info.MBR.ContainsPoint(p) {
			return FindParentResult{
				Ancestor:  page,
				Level:     level,
				PathAbove: reversedTail(chain, i+1),
			}, nil
		}
	}
	return FindParentResult{
		Ancestor:  s.root,
		Level:     s.height - 1,
		PathAbove: nil,
	}, nil
}

// reversedTail returns chain[from:] reversed into root-first order.
func reversedTail(chain []pagestore.PageID, from int) []pagestore.PageID {
	n := len(chain) - from
	if n <= 0 {
		return nil
	}
	out := make([]pagestore.PageID, n)
	for i := 0; i < n; i++ {
		out[i] = chain[len(chain)-1-i]
	}
	return out
}

// ChainAbove returns the ancestors of node from the root down to node's
// parent. GBU passes this to InsertEntryAt so split propagation above the
// insertion root needs no search.
func (s *Structure) ChainAbove(node pagestore.PageID) ([]pagestore.PageID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var chain []pagestore.PageID
	cur := node
	for cur != s.root {
		par, ok := s.parent[cur]
		if !ok {
			return nil, fmt.Errorf("summary: no parent recorded for page %d", cur)
		}
		chain = append(chain, par)
		cur = par
	}
	// Reverse to root-first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// OverlappingAtLevel appends to dst the pages of internal nodes at the
// given level whose MBR intersects q. The query assist uses level 1 to
// decide which parent-of-leaf nodes to read from disk, skipping all
// higher internal levels entirely.
func (s *Structure) OverlappingAtLevel(level int, q geom.Rect, dst []pagestore.PageID) []pagestore.PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for page, info := range s.byLevel[level] {
		if info.MBR.Intersects(q) {
			dst = append(dst, page)
		}
	}
	return dst
}

// Counts returns the number of internal entries and tracked leaves.
func (s *Structure) Counts() (internal, leaves int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.internal), len(s.leafFull)
}

// SizeBytes estimates the memory footprint of the table and bit vector
// using the paper's accounting: each internal entry stores one MBR
// (4 float64), a level tag, and its child pointers; each leaf costs one
// bit (rounded up here to a byte for the count-tracking variant).
func (s *Structure) SizeBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bytes := 0
	for _, info := range s.internal {
		bytes += 8 /*page*/ + 2 /*level*/ + 32 /*MBR*/ + 8*len(info.Children)
	}
	bytes += (len(s.leafFull) + 7) / 8 // bit vector
	return bytes
}

// Validate cross-checks the summary against the live tree: every internal
// node must be present with the exact MBR and children, every leaf's
// fullness bit must match its entry count, and parent links must mirror
// the tree. Tests run it after random operation sequences.
func (s *Structure) Validate(t *rtree.Tree) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t.Root() != s.root || t.Height() != s.height {
		return fmt.Errorf("summary: root/height (%d,%d) != tree (%d,%d)", s.root, s.height, t.Root(), t.Height())
	}
	if t.Root() == pagestore.InvalidPage {
		if len(s.internal) != 0 || len(s.leafFull) != 0 {
			return fmt.Errorf("summary: leftovers after tree emptied: %d internal, %d leaves", len(s.internal), len(s.leafFull))
		}
		return nil
	}
	seenInternal := 0
	seenLeaves := 0
	var walk func(page pagestore.PageID, parent pagestore.PageID) error
	walk = func(page pagestore.PageID, parent pagestore.PageID) error {
		n, err := t.ReadNode(page)
		if err != nil {
			return err
		}
		if parent != pagestore.InvalidPage {
			if got, ok := s.parent[page]; !ok || got != parent {
				return fmt.Errorf("summary: parent of %d = %d (ok=%v), want %d", page, got, ok, parent)
			}
		}
		if n.IsLeaf() {
			seenLeaves++
			wantFull := len(n.Entries) >= s.maxLeafEntries
			if got, ok := s.leafFull[page]; !ok || got != wantFull {
				return fmt.Errorf("summary: leaf %d full-bit = %v (ok=%v), want %v", page, got, ok, wantFull)
			}
			if got := s.leafCount[page]; got != len(n.Entries) {
				return fmt.Errorf("summary: leaf %d count = %d, want %d", page, got, len(n.Entries))
			}
			return nil
		}
		seenInternal++
		info := s.internal[page]
		if info == nil {
			return fmt.Errorf("summary: internal node %d missing", page)
		}
		if info.MBR != n.Self {
			return fmt.Errorf("summary: node %d MBR %v, tree has %v", page, info.MBR, n.Self)
		}
		if info.Level != n.Level {
			return fmt.Errorf("summary: node %d level %d, tree has %d", page, info.Level, n.Level)
		}
		if len(info.Children) != len(n.Entries) {
			return fmt.Errorf("summary: node %d has %d children, tree has %d", page, len(info.Children), len(n.Entries))
		}
		for i, e := range n.Entries {
			if info.Children[i] != e.Child {
				return fmt.Errorf("summary: node %d child %d = %d, tree has %d", page, i, info.Children[i], e.Child)
			}
			if err := walk(e.Child, page); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root(), pagestore.InvalidPage); err != nil {
		return err
	}
	if seenInternal != len(s.internal) {
		return fmt.Errorf("summary: %d internal entries tracked, tree has %d", len(s.internal), seenInternal)
	}
	if seenLeaves != len(s.leafFull) {
		return fmt.Errorf("summary: %d leaves tracked, tree has %d", len(s.leafFull), seenLeaves)
	}
	return nil
}

// Rebuild reconstructs the summary from a live tree, as after loading a
// persisted index: the direct-access table, parent map and leaf bit
// vector are repopulated by one tree walk (main-memory work only; the
// walk's page reads go through the normal buffer path).
func (s *Structure) Rebuild(t *rtree.Tree) error {
	s.mu.Lock()
	s.internal = make(map[pagestore.PageID]*NodeInfo)
	s.byLevel = make(map[int]map[pagestore.PageID]*NodeInfo)
	s.parent = make(map[pagestore.PageID]pagestore.PageID)
	s.leafFull = make(map[pagestore.PageID]bool)
	s.leafCount = make(map[pagestore.PageID]int)
	s.mu.Unlock()

	s.RootChanged(t.Root(), t.Height())
	if t.Root() == pagestore.InvalidPage {
		return nil
	}
	var walk func(page pagestore.PageID) error
	walk = func(page pagestore.PageID) error {
		n, err := t.ReadNode(page)
		if err != nil {
			return fmt.Errorf("summary: rebuild: %w", err)
		}
		s.NodeWritten(n.Page, n.Level, n.Self, n.ChildPages(), len(n.Entries))
		if n.IsLeaf() {
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root())
}
