package workload

import (
	"bytes"
	"math"
	"testing"

	"burtree/internal/geom"
)

func TestDefaults(t *testing.T) {
	s := Spec{}.WithDefaults()
	if s.NumObjects != 100_000 || s.MaxDistance != 0.03 || s.QueryMaxSize != 0.1 || s.Seed != 1 {
		t.Fatalf("defaults = %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	spec := Spec{NumObjects: 500, Seed: 42}
	g1 := NewGenerator(spec)
	g2 := NewGenerator(spec)
	for i := range g1.Positions() {
		if g1.Positions()[i] != g2.Positions()[i] {
			t.Fatalf("initial positions differ at %d", i)
		}
	}
	for i := 0; i < 1000; i++ {
		u1, u2 := g1.NextUpdate(), g2.NextUpdate()
		if u1 != u2 {
			t.Fatalf("update %d differs: %+v vs %+v", i, u1, u2)
		}
		q1, q2 := g1.NextQuery(), g2.NextQuery()
		if q1 != q2 {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestInitialDistributions(t *testing.T) {
	const n = 20000
	for _, d := range []Distribution{Uniform, Gaussian, Skewed} {
		g := NewGenerator(Spec{NumObjects: n, Distribution: d, Seed: 7})
		var sumX, sumY float64
		inUnit := 0
		for _, p := range g.Positions() {
			sumX += p.X
			sumY += p.Y
			if p.X >= 0 && p.X <= 1 && p.Y >= 0 && p.Y <= 1 {
				inUnit++
			}
		}
		if inUnit != n {
			t.Fatalf("%v: %d/%d points outside unit square", d, n-inUnit, n)
		}
		meanX, meanY := sumX/n, sumY/n
		switch d {
		case Uniform:
			if math.Abs(meanX-0.5) > 0.02 || math.Abs(meanY-0.5) > 0.02 {
				t.Fatalf("uniform mean = (%.3f, %.3f)", meanX, meanY)
			}
		case Gaussian:
			if math.Abs(meanX-0.5) > 0.02 || math.Abs(meanY-0.5) > 0.02 {
				t.Fatalf("gaussian mean = (%.3f, %.3f)", meanX, meanY)
			}
			// Gaussian is far more concentrated than uniform.
			spread := 0.0
			for _, p := range g.Positions() {
				spread += (p.X - 0.5) * (p.X - 0.5)
			}
			if sd := math.Sqrt(spread / n); sd > 0.15 {
				t.Fatalf("gaussian x std = %.3f, want ~0.1", sd)
			}
		case Skewed:
			// Cubed uniforms have mean 0.25.
			if meanX > 0.3 || meanY > 0.3 {
				t.Fatalf("skewed mean = (%.3f, %.3f), want ~0.25", meanX, meanY)
			}
		}
	}
}

func TestUpdatesBoundedDistance(t *testing.T) {
	g := NewGenerator(Spec{NumObjects: 100, MaxDistance: 0.05, Seed: 3})
	for i := 0; i < 5000; i++ {
		u := g.NextUpdate()
		d := geom.Dist(u.Old, u.New)
		if d > 0.05+1e-12 {
			t.Fatalf("update %d moved %.4f > max 0.05", i, d)
		}
		if g.Position(u.OID) != u.New {
			t.Fatalf("generator did not track position of %d", u.OID)
		}
	}
}

func TestQueriesWithinSpec(t *testing.T) {
	g := NewGenerator(Spec{NumObjects: 10, QueryMaxSize: 0.2, Seed: 4})
	for i := 0; i < 2000; i++ {
		q := g.NextQuery()
		if !q.Valid() {
			t.Fatalf("invalid query %v", q)
		}
		if q.Width() > 0.2 || q.Height() > 0.2 {
			t.Fatalf("query too large: %v", q)
		}
	}
}

func TestMixedStreamFractions(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		g := NewGenerator(Spec{NumObjects: 100, Seed: 5})
		ops := g.MixedStream(4000, frac)
		updates := 0
		for _, op := range ops {
			if op.Kind == OpUpdate {
				updates++
			}
		}
		got := float64(updates) / float64(len(ops))
		if math.Abs(got-frac) > 0.03 {
			t.Fatalf("frac %v: got %.3f updates", frac, got)
		}
	}
}

func TestItems(t *testing.T) {
	g := NewGenerator(Spec{NumObjects: 50, Seed: 6})
	items := g.Items()
	if len(items) != 50 {
		t.Fatalf("items = %d", len(items))
	}
	for i, it := range items {
		if it.OID != uint64(i) {
			t.Fatalf("item %d oid = %d", i, it.OID)
		}
		if it.Rect != geom.RectFromPoint(g.Positions()[i]) {
			t.Fatalf("item %d rect mismatch", i)
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Distribution
	}{{"uniform", Uniform}, {"gaussian", Gaussian}, {"skewed", Skewed}, {"skew", Skewed}} {
		got, err := ParseDistribution(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseDistribution(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Fatal("bogus distribution accepted")
	}
	if Uniform.String() != "uniform" || Gaussian.String() != "gaussian" || Skewed.String() != "skewed" {
		t.Fatal("distribution names wrong")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := BuildTrace(Spec{NumObjects: 200, Seed: 8}, 500, 100)
	if len(tr.Initial) != 200 || len(tr.Updates) != 500 || len(tr.Queries) != 100 {
		t.Fatalf("trace shape = %d/%d/%d", len(tr.Initial), len(tr.Updates), len(tr.Queries))
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != tr.Spec {
		t.Fatalf("spec round trip: %+v vs %+v", got.Spec, tr.Spec)
	}
	for i := range tr.Updates {
		if got.Updates[i] != tr.Updates[i] {
			t.Fatalf("update %d differs", i)
		}
	}
	for i := range tr.Queries {
		if got.Queries[i] != tr.Queries[i] {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := BuildTrace(Spec{NumObjects: 50, Seed: 9}, 100, 20)
	path := t.TempDir() + "/trace.gob"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Updates) != 100 || len(got.Queries) != 20 {
		t.Fatalf("file round trip shape wrong")
	}
}

func TestTraceUpdatesAreChained(t *testing.T) {
	// Each update's Old must equal the object's position produced by the
	// prior history (initial or previous update).
	tr := BuildTrace(Spec{NumObjects: 100, Seed: 10}, 2000, 0)
	pos := append([]geom.Point(nil), tr.Initial...)
	for i, u := range tr.Updates {
		if pos[u.OID] != u.Old {
			t.Fatalf("update %d: old = %v, tracked = %v", i, u.Old, pos[u.OID])
		}
		pos[u.OID] = u.New
	}
}
