package workload

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"burtree/internal/geom"
)

// mapFrontend is a brute-force oracle implementation of Frontend used
// to validate the harness itself.
type mapFrontend struct {
	objects map[uint64]geom.Point
}

func newMapFrontend() *mapFrontend { return &mapFrontend{objects: make(map[uint64]geom.Point)} }

func (m *mapFrontend) Insert(id uint64, p geom.Point) error {
	if _, ok := m.objects[id]; ok {
		return fmt.Errorf("duplicate %d", id)
	}
	m.objects[id] = p
	return nil
}

func (m *mapFrontend) Update(id uint64, p geom.Point) error {
	if _, ok := m.objects[id]; !ok {
		return fmt.Errorf("unknown %d", id)
	}
	m.objects[id] = p
	return nil
}

func (m *mapFrontend) Delete(id uint64) error {
	if _, ok := m.objects[id]; !ok {
		return fmt.Errorf("unknown %d", id)
	}
	delete(m.objects, id)
	return nil
}

func (m *mapFrontend) Search(q geom.Rect) ([]uint64, error) {
	var out []uint64
	for id, p := range m.objects {
		if q.ContainsPoint(p) {
			out = append(out, id)
		}
	}
	return out, nil
}

func (m *mapFrontend) Location(id uint64) (geom.Point, bool) {
	p, ok := m.objects[id]
	return p, ok
}

func (m *mapFrontend) Len() int { return len(m.objects) }

func (m *mapFrontend) nearest(p geom.Point, k int) ([]float64, error) {
	dists := make([]float64, 0, len(m.objects))
	for _, q := range m.objects {
		dists = append(dists, geom.Dist(p, q))
	}
	sort.Float64s(dists)
	if len(dists) > k {
		dists = dists[:k]
	}
	return dists, nil
}

func buildTestTrace(t *testing.T, n, ops int, seed int64) *MixedTrace {
	t.Helper()
	return BuildMixedTrace(Spec{NumObjects: n, Seed: seed}, ops, DefaultMixedRatios())
}

// The trace builder must produce applicable traces: replay against the
// oracle must not error, and the mix must contain every op kind.
func TestBuildMixedTraceApplicable(t *testing.T) {
	tr := buildTestTrace(t, 300, 2000, 9)
	counts := make(map[TraceOpKind]int)
	for _, op := range tr.Ops {
		counts[op.Kind]++
	}
	for _, k := range []TraceOpKind{TraceInsert, TraceUpdate, TraceDelete, TraceWindow, TraceNearest} {
		if counts[k] == 0 {
			t.Fatalf("trace contains no %v ops: %v", k, counts)
		}
	}
	m := newMapFrontend()
	prof, err := ReplayTrace(m, m.nearest, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Objects) != m.Len() {
		t.Fatalf("profile has %d objects, oracle %d", len(prof.Objects), m.Len())
	}
	if len(prof.Windows) != counts[TraceWindow] || len(prof.NNDists) != counts[TraceNearest] {
		t.Fatalf("profile recorded %d windows / %d NN, trace has %d / %d",
			len(prof.Windows), len(prof.NNDists), counts[TraceWindow], counts[TraceNearest])
	}
}

// Determinism: the same spec yields the same trace, and replaying it
// twice yields identical profiles; a diverging replay is detected.
func TestReplayDeterminismAndDiff(t *testing.T) {
	tr1 := buildTestTrace(t, 200, 800, 4)
	tr2 := buildTestTrace(t, 200, 800, 4)
	if len(tr1.Ops) != len(tr2.Ops) {
		t.Fatal("trace building is not deterministic")
	}
	for i := range tr1.Ops {
		if tr1.Ops[i] != tr2.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, tr1.Ops[i], tr2.Ops[i])
		}
	}
	m1, m2 := newMapFrontend(), newMapFrontend()
	p1, err := ReplayTrace(m1, m1.nearest, nil, tr1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ReplayTrace(m2, m2.nearest, nil, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Diff(p2); err != nil {
		t.Fatalf("identical replays diff: %v", err)
	}
	// Tamper with one observation; Diff must catch it.
	if len(p2.Windows) == 0 {
		t.Fatal("no windows to tamper with")
	}
	p2.Windows[0] = append(p2.Windows[0], 999_999)
	if err := p1.Diff(p2); err == nil {
		t.Fatal("Diff missed a tampered window result")
	}
}

func TestMixedTraceRoundTrip(t *testing.T) {
	tr := buildTestTrace(t, 100, 400, 12)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMixedTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(tr.Ops) || len(got.Initial) != len(tr.Initial) {
		t.Fatalf("round trip lost data: %d/%d ops, %d/%d initial",
			len(got.Ops), len(tr.Ops), len(got.Initial), len(tr.Initial))
	}
	m1, m2 := newMapFrontend(), newMapFrontend()
	p1, err := ReplayTrace(m1, m1.nearest, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ReplayTrace(m2, m2.nearest, nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Diff(p2); err != nil {
		t.Fatalf("replay of round-tripped trace diverges: %v", err)
	}
}
