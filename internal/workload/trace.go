package workload

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"burtree/internal/atomicfile"
	"burtree/internal/geom"
)

// Trace is a materialized workload: the initial positions plus the exact
// update and query streams. Traces let experiments be archived, diffed
// and replayed against different strategies with guaranteed identity.
type Trace struct {
	Spec    Spec
	Initial []geom.Point
	Updates []Update
	Queries []geom.Rect
}

// BuildTrace materializes a workload of the given size from a fresh
// generator.
func BuildTrace(spec Spec, updates, queries int) *Trace {
	g := NewGenerator(spec)
	tr := &Trace{
		Spec:    g.Spec(),
		Initial: append([]geom.Point(nil), g.Positions()...),
		Updates: make([]Update, updates),
		Queries: make([]geom.Rect, queries),
	}
	for i := range tr.Updates {
		tr.Updates[i] = g.NextUpdate()
	}
	for i := range tr.Queries {
		tr.Queries[i] = g.NextQuery()
	}
	return tr
}

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(t); err != nil {
		return fmt.Errorf("workload: encoding trace: %w", err)
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	return &t, nil
}

// WriteFile saves the trace to a file atomically (temp+fsync+rename):
// a crash mid-write must not leave a torn trace that ReadTraceFile
// misparses, and never clobbers an archived trace with a partial one.
func (t *Trace) WriteFile(path string) error {
	return atomicfile.Write(path, t.Write)
}

// ReadTraceFile loads a trace from a file.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
