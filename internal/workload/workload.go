// Package workload generates the spatio-temporal workloads of the
// paper's performance study (§5), modeled on the GSTD generator it
// cites: an initial distribution of 2-D point objects in the unit square
// (Uniform, Gaussian or Skewed), a movement process that displaces a
// randomly chosen object by a bounded random distance per update, and
// uniformly distributed window queries with side lengths in [0, 0.1].
//
// Every stream is driven by an explicit seed, so experiment runs are
// reproducible bit for bit.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"burtree/internal/geom"
	"burtree/internal/rtree"
)

// Distribution selects the initial placement of objects (§5.1.5).
type Distribution int

const (
	// Uniform scatters objects uniformly over the unit square.
	Uniform Distribution = iota
	// Gaussian clusters objects around the center (0.5, 0.5) with
	// σ = 0.1 per axis, clipped to the unit square.
	Gaussian
	// Skewed concentrates objects toward the origin corner (coordinates
	// are cubes of uniform variates).
	Skewed
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Skewed:
		return "skewed"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution converts a name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "gaussian":
		return Gaussian, nil
	case "skewed", "skew":
		return Skewed, nil
	default:
		return 0, fmt.Errorf("workload: unknown distribution %q", s)
	}
}

// Spec describes a workload (paper Table 1). Zero fields take the
// paper's bold defaults via WithDefaults.
type Spec struct {
	NumObjects   int
	Distribution Distribution
	// MaxDistance is the maximum distance an object moves per update
	// (default 0.03; the paper sweeps 0.003–0.15).
	MaxDistance float64
	// QueryMaxSize is the maximum query-window side (default 0.1).
	QueryMaxSize float64
	// Seed drives all randomness.
	Seed int64
}

// WithDefaults fills unset fields with the paper's defaults.
func (s Spec) WithDefaults() Spec {
	if s.NumObjects == 0 {
		s.NumObjects = 100_000
	}
	if s.MaxDistance == 0 {
		s.MaxDistance = 0.03
	}
	if s.QueryMaxSize == 0 {
		s.QueryMaxSize = 0.1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Update is one movement event: object oid moves from Old to New.
type Update struct {
	OID rtree.OID
	Old geom.Point
	New geom.Point
}

// Generator produces a deterministic stream of initial positions,
// updates and queries, tracking each object's current location.
type Generator struct {
	spec Spec
	rng  *rand.Rand
	pos  []geom.Point
}

// NewGenerator builds the generator and the initial object positions.
func NewGenerator(spec Spec) *Generator {
	spec = spec.WithDefaults()
	g := &Generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		pos:  make([]geom.Point, spec.NumObjects),
	}
	for i := range g.pos {
		g.pos[i] = g.initialPoint()
	}
	return g
}

// Spec returns the (defaulted) specification.
func (g *Generator) Spec() Spec { return g.spec }

// Positions returns the current object positions; index = oid. The slice
// is live — it reflects updates as they are generated.
func (g *Generator) Positions() []geom.Point { return g.pos }

// Position returns the current position of one object.
func (g *Generator) Position(oid rtree.OID) geom.Point { return g.pos[oid] }

func (g *Generator) initialPoint() geom.Point {
	switch g.spec.Distribution {
	case Gaussian:
		return geom.Point{X: clamp01(0.5 + g.rng.NormFloat64()*0.1), Y: clamp01(0.5 + g.rng.NormFloat64()*0.1)}
	case Skewed:
		u, v := g.rng.Float64(), g.rng.Float64()
		return geom.Point{X: u * u * u, Y: v * v * v}
	default:
		return geom.Point{X: g.rng.Float64(), Y: g.rng.Float64()}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// NextUpdate moves a uniformly chosen object a random distance in
// [0, MaxDistance] in a random direction and returns the event. Objects
// may drift outside the unit square; the paper observes exactly this
// ("objects beyond the root MBR"), so positions are not clamped.
func (g *Generator) NextUpdate() Update {
	oid := rtree.OID(g.rng.Intn(len(g.pos)))
	old := g.pos[oid]
	dist := g.rng.Float64() * g.spec.MaxDistance
	angle := g.rng.Float64() * 2 * math.Pi
	np := geom.Point{X: old.X + dist*math.Cos(angle), Y: old.Y + dist*math.Sin(angle)}
	g.pos[oid] = np
	return Update{OID: oid, Old: old, New: np}
}

// NextQuery returns a query window with uniformly distributed corner and
// side lengths in [0, QueryMaxSize].
func (g *Generator) NextQuery() geom.Rect {
	w := g.rng.Float64() * g.spec.QueryMaxSize
	h := g.rng.Float64() * g.spec.QueryMaxSize
	x := g.rng.Float64()
	y := g.rng.Float64()
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// OpKind tags entries of a mixed stream.
type OpKind int

const (
	// OpUpdate is a movement event.
	OpUpdate OpKind = iota
	// OpQuery is a window query.
	OpQuery
)

// Op is one entry of a mixed update/query stream (§5.4 throughput).
type Op struct {
	Kind   OpKind
	Update Update    // valid when Kind == OpUpdate
	Query  geom.Rect // valid when Kind == OpQuery
}

// MixedStream returns n operations with the given update fraction
// (0 ≤ updateFrac ≤ 1), interleaved by coin flips from the generator's
// seed. Updates mutate the tracked positions as they are generated, so
// the stream is consistent for sequential replay; concurrent replay (as
// in the throughput study) must treat Old as a hint.
func (g *Generator) MixedStream(n int, updateFrac float64) []Op {
	ops := make([]Op, n)
	for i := range ops {
		if g.rng.Float64() < updateFrac {
			ops[i] = Op{Kind: OpUpdate, Update: g.NextUpdate()}
		} else {
			ops[i] = Op{Kind: OpQuery, Query: g.NextQuery()}
		}
	}
	return ops
}

// Items returns the current positions in bulk-load form.
func (g *Generator) Items() []rtree.Item {
	items := make([]rtree.Item, len(g.pos))
	for i, p := range g.pos {
		items[i] = rtree.Item{OID: rtree.OID(i), Rect: geom.RectFromPoint(p)}
	}
	return items
}
