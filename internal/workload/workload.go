// Package workload generates the spatio-temporal workloads of the
// paper's performance study (§5), modeled on the GSTD generator it
// cites: an initial distribution of 2-D point objects in the unit square
// (Uniform, Gaussian or Skewed), a movement process that displaces a
// randomly chosen object by a bounded random distance per update, and
// uniformly distributed window queries with side lengths in [0, 0.1].
//
// Every stream is driven by an explicit seed, so experiment runs are
// reproducible bit for bit.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"burtree/internal/geom"
	"burtree/internal/rtree"
)

// Distribution selects the initial placement of objects (§5.1.5).
type Distribution int

const (
	// Uniform scatters objects uniformly over the unit square.
	Uniform Distribution = iota
	// Gaussian clusters objects around the center (0.5, 0.5) with
	// σ = 0.1 per axis, clipped to the unit square.
	Gaussian
	// Skewed concentrates objects toward the origin corner (coordinates
	// are cubes of uniform variates).
	Skewed
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Skewed:
		return "skewed"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution converts a name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "gaussian":
		return Gaussian, nil
	case "skewed", "skew":
		return Skewed, nil
	default:
		return 0, fmt.Errorf("workload: unknown distribution %q", s)
	}
}

// Spec describes a workload (paper Table 1). Zero fields take the
// paper's bold defaults via WithDefaults.
type Spec struct {
	NumObjects   int
	Distribution Distribution
	// MaxDistance is the maximum distance an object moves per update
	// (default 0.03; the paper sweeps 0.003–0.15).
	MaxDistance float64
	// QueryMaxSize is the maximum query-window side (default 0.1).
	QueryMaxSize float64
	// Seed drives all randomness.
	Seed int64

	// ZipfTheta skews which object each update touches: object ranks are
	// drawn with probability ∝ 1/rank^θ (θ = 0, the default, is the
	// paper's uniform selection; θ ≈ 0.6–1.2 models real fleets where a
	// small hot set produces most of the update traffic). Ranks map to
	// object ids through a seeded permutation, so the hot set is spread
	// over the id space, not clustered at low ids.
	ZipfTheta float64
	// Hotspots switches movement from the paper's free random walk to
	// hotspot drift: K attractor points wander slowly through the unit
	// square and each updated object moves toward its attractor
	// (oid mod K) instead of a uniformly random direction. Combined with
	// ZipfTheta this concentrates the update traffic spatially — the
	// city-center / flash-crowd regime. Zero keeps the random walk.
	Hotspots int
	// HotspotPull blends the drift direction: 1 moves straight at the
	// attractor, 0 degenerates to the random walk. Default 0.8 when
	// Hotspots > 0. Step length stays bounded by MaxDistance either way.
	HotspotPull float64
	// HotspotDrift scales how far the attractors themselves wander: each
	// drift step has length uniform in [0, MaxDistance·HotspotDrift].
	// Default 1 when Hotspots > 0; values below 1 model hotspots that
	// move on a much slower timescale than the objects orbiting them
	// (a bench run compresses hours of traffic into seconds, while real
	// city-center hotspots shift on hour timescales); negative values
	// pin the attractors in place.
	HotspotDrift float64
}

// WithDefaults fills unset fields with the paper's defaults.
func (s Spec) WithDefaults() Spec {
	if s.NumObjects == 0 {
		s.NumObjects = 100_000
	}
	if s.MaxDistance == 0 {
		s.MaxDistance = 0.03
	}
	if s.QueryMaxSize == 0 {
		s.QueryMaxSize = 0.1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.ZipfTheta < 0 {
		s.ZipfTheta = 0
	}
	if s.Hotspots > 0 && s.HotspotPull == 0 {
		s.HotspotPull = 0.8
	}
	if s.Hotspots > 0 && s.HotspotDrift == 0 {
		s.HotspotDrift = 1
	}
	if s.HotspotDrift < 0 {
		s.HotspotDrift = 0
	}
	if s.HotspotPull < 0 {
		s.HotspotPull = 0
	}
	if s.HotspotPull > 1 {
		s.HotspotPull = 1
	}
	return s
}

// IsSkewed reports whether the spec departs from the paper's uniform
// selection / free random walk (zipfian object choice or hotspot drift).
func (s Spec) IsSkewed() bool { return s.ZipfTheta > 0 || s.Hotspots > 0 }

// Update is one movement event: object oid moves from Old to New.
type Update struct {
	OID rtree.OID
	Old geom.Point
	New geom.Point
}

// Generator produces a deterministic stream of initial positions,
// updates and queries, tracking each object's current location.
type Generator struct {
	spec Spec
	rng  *rand.Rand
	pos  []geom.Point

	zipf       *zipf        // rank sampler when ZipfTheta > 0
	rankToOID  []rtree.OID  // seeded permutation: rank → object id
	attractors []geom.Point // hotspot attractor points (len == Hotspots)
	moves      int          // updates generated so far (drives attractor drift)
}

// attractorPeriod is how many updates pass between attractor drift
// steps; attractors wander an order of magnitude slower than objects.
const attractorPeriod = 64

// NewGenerator builds the generator and the initial object positions.
func NewGenerator(spec Spec) *Generator {
	spec = spec.WithDefaults()
	g := &Generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		pos:  make([]geom.Point, spec.NumObjects),
	}
	for i := range g.pos {
		g.pos[i] = g.initialPoint()
	}
	if spec.ZipfTheta > 0 {
		g.zipf = newZipf(spec.NumObjects, spec.ZipfTheta)
		g.rankToOID = make([]rtree.OID, spec.NumObjects)
		for i, j := range g.rng.Perm(spec.NumObjects) {
			g.rankToOID[i] = rtree.OID(j)
		}
	}
	if spec.Hotspots > 0 {
		g.attractors = make([]geom.Point, spec.Hotspots)
		for i := range g.attractors {
			g.attractors[i] = geom.Point{X: g.rng.Float64(), Y: g.rng.Float64()}
		}
	}
	return g
}

// zipf samples ranks 0..n-1 with probability ∝ 1/(rank+1)^θ by binary
// search over the precomputed cumulative weights. Self-contained (no
// math/rand.Zipf, which requires θ > 1) and exact for any θ > 0.
type zipf struct {
	cum []float64 // cum[r] = Σ_{i≤r} (i+1)^-θ
}

func newZipf(n int, theta float64) *zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -theta)
		cum[i] = total
	}
	return &zipf{cum: cum}
}

// rank draws one rank using u ∈ [0, 1).
func (z *zipf) rank(u float64) int {
	target := u * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Spec returns the (defaulted) specification.
func (g *Generator) Spec() Spec { return g.spec }

// Positions returns the current object positions; index = oid. The slice
// is live — it reflects updates as they are generated.
func (g *Generator) Positions() []geom.Point { return g.pos }

// Position returns the current position of one object.
func (g *Generator) Position(oid rtree.OID) geom.Point { return g.pos[oid] }

func (g *Generator) initialPoint() geom.Point {
	switch g.spec.Distribution {
	case Gaussian:
		return geom.Point{X: clamp01(0.5 + g.rng.NormFloat64()*0.1), Y: clamp01(0.5 + g.rng.NormFloat64()*0.1)}
	case Skewed:
		u, v := g.rng.Float64(), g.rng.Float64()
		return geom.Point{X: u * u * u, Y: v * v * v}
	default:
		return geom.Point{X: g.rng.Float64(), Y: g.rng.Float64()}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// NextUpdate moves one object a random distance in [0, MaxDistance] and
// returns the event. Selection is uniform, or zipfian over ranks when
// ZipfTheta > 0; the direction is uniformly random, or drawn toward the
// object's attractor when Hotspots > 0. Objects may drift outside the
// unit square; the paper observes exactly this ("objects beyond the
// root MBR"), so positions are not clamped.
func (g *Generator) NextUpdate() Update {
	oid := g.pickOID(len(g.pos))
	old := g.pos[oid]
	np := g.displace(old, oid)
	g.pos[oid] = np
	return Update{OID: oid, Old: old, New: np}
}

// pickOID selects the next object to move among ids 0..n-1 (n may be
// smaller than NumObjects when the caller tracks a shrinking live set).
func (g *Generator) pickOID(n int) rtree.OID {
	if g.zipf == nil {
		return rtree.OID(g.rng.Intn(n))
	}
	r := g.zipf.rank(g.rng.Float64())
	oid := g.rankToOID[r]
	if int(oid) >= n {
		// The permuted id fell outside the caller's live range; fold it
		// back in. The fold preserves determinism and keeps the selection
		// heavily skewed (hot ranks stay hot).
		oid = rtree.OID(int(oid) % n)
	}
	return oid
}

// displace computes one bounded movement step from old for object oid:
// a uniformly random direction, or — in hotspot mode — a blend of the
// direction toward the object's attractor and a random jitter. Every
// attractorPeriod calls the attractors themselves take one small random
// step, so hotspots wander like a slow-moving crowd.
func (g *Generator) displace(old geom.Point, oid rtree.OID) geom.Point {
	dist := g.rng.Float64() * g.spec.MaxDistance
	angle := g.rng.Float64() * 2 * math.Pi
	dx, dy := dist*math.Cos(angle), dist*math.Sin(angle)
	if len(g.attractors) > 0 {
		g.moves++
		if g.moves%attractorPeriod == 0 {
			g.driftAttractors()
		}
		a := g.attractors[int(oid)%len(g.attractors)]
		tx, ty := a.X-old.X, a.Y-old.Y
		if n := math.Hypot(tx, ty); n > 0 {
			// Walk the full step length toward the attractor once far away,
			// but never overshoot it: close objects orbit inside the
			// hotspot instead of oscillating across it.
			toward := dist
			if toward > n {
				toward = n
			}
			pull := g.spec.HotspotPull
			dx = pull*toward*tx/n + (1-pull)*dx
			dy = pull*toward*ty/n + (1-pull)*dy
		}
	}
	return geom.Point{X: old.X + dx, Y: old.Y + dy}
}

// driftAttractors advances every attractor one bounded random step,
// clamped to the unit square so hotspots stay in populated space.
func (g *Generator) driftAttractors() {
	for i, a := range g.attractors {
		d := g.rng.Float64() * g.spec.MaxDistance * g.spec.HotspotDrift
		ang := g.rng.Float64() * 2 * math.Pi
		g.attractors[i] = geom.Point{
			X: clamp01(a.X + d*math.Cos(ang)),
			Y: clamp01(a.Y + d*math.Sin(ang)),
		}
	}
}

// NextQuery returns a query window with uniformly distributed corner and
// side lengths in [0, QueryMaxSize].
func (g *Generator) NextQuery() geom.Rect {
	w := g.rng.Float64() * g.spec.QueryMaxSize
	h := g.rng.Float64() * g.spec.QueryMaxSize
	x := g.rng.Float64()
	y := g.rng.Float64()
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// OpKind tags entries of a mixed stream.
type OpKind int

const (
	// OpUpdate is a movement event.
	OpUpdate OpKind = iota
	// OpQuery is a window query.
	OpQuery
)

// Op is one entry of a mixed update/query stream (§5.4 throughput).
type Op struct {
	Kind   OpKind
	Update Update    // valid when Kind == OpUpdate
	Query  geom.Rect // valid when Kind == OpQuery
}

// MixedStream returns n operations with the given update fraction
// (0 ≤ updateFrac ≤ 1), interleaved by coin flips from the generator's
// seed. Updates mutate the tracked positions as they are generated, so
// the stream is consistent for sequential replay; concurrent replay (as
// in the throughput study) must treat Old as a hint.
func (g *Generator) MixedStream(n int, updateFrac float64) []Op {
	ops := make([]Op, n)
	for i := range ops {
		if g.rng.Float64() < updateFrac {
			ops[i] = Op{Kind: OpUpdate, Update: g.NextUpdate()}
		} else {
			ops[i] = Op{Kind: OpQuery, Query: g.NextQuery()}
		}
	}
	return ops
}

// Items returns the current positions in bulk-load form.
func (g *Generator) Items() []rtree.Item {
	items := make([]rtree.Item, len(g.pos))
	for i, p := range g.pos {
		items[i] = rtree.Item{OID: rtree.OID(i), Rect: geom.RectFromPoint(p)}
	}
	return items
}
