package workload

import (
	"math"
	"sort"
	"testing"
)

func TestSkewDefaults(t *testing.T) {
	s := Spec{ZipfTheta: -1, Hotspots: 3}.WithDefaults()
	if s.ZipfTheta != 0 {
		t.Fatalf("negative theta not zeroed: %v", s.ZipfTheta)
	}
	if s.HotspotPull != 0.8 {
		t.Fatalf("hotspot pull default = %v, want 0.8", s.HotspotPull)
	}
	s = Spec{Hotspots: 2, HotspotPull: 3}.WithDefaults()
	if s.HotspotPull != 1 {
		t.Fatalf("pull not clamped to 1: %v", s.HotspotPull)
	}
	if (Spec{}).WithDefaults().IsSkewed() {
		t.Fatal("default spec reports skewed")
	}
	if !(Spec{ZipfTheta: 0.9}).WithDefaults().IsSkewed() || !(Spec{Hotspots: 1}).WithDefaults().IsSkewed() {
		t.Fatal("skewed spec not reported skewed")
	}
}

func TestZipfDeterminism(t *testing.T) {
	spec := Spec{NumObjects: 400, Seed: 9, ZipfTheta: 0.9, Hotspots: 4}
	g1, g2 := NewGenerator(spec), NewGenerator(spec)
	for i := 0; i < 2000; i++ {
		u1, u2 := g1.NextUpdate(), g2.NextUpdate()
		if u1 != u2 {
			t.Fatalf("update %d differs: %+v vs %+v", i, u1, u2)
		}
	}
}

// TestZipfSelectionSkew checks the shape of the selection distribution:
// at θ = 0.9 a small fraction of objects must receive the majority of
// updates, and at θ = 0 selection must stay near-uniform.
func TestZipfSelectionSkew(t *testing.T) {
	const n, updates = 1000, 50000
	countTop := func(theta float64) float64 {
		g := NewGenerator(Spec{NumObjects: n, Seed: 3, ZipfTheta: theta})
		counts := make([]int, n)
		for i := 0; i < updates; i++ {
			counts[g.pickOID(n)]++
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for _, c := range counts[:n/10] { // hottest 10% of objects
			top += c
		}
		return float64(top) / updates
	}
	if share := countTop(0.9); share < 0.35 {
		t.Fatalf("θ=0.9: hottest 10%% got only %.2f of updates, want ≥ 0.35", share)
	}
	if share := countTop(0); share > 0.15 {
		t.Fatalf("θ=0: hottest 10%% got %.2f of updates, want ≈ 0.10", share)
	}
}

// TestZipfRankPermutation: the hot ranks must be spread over the id
// space by the seeded permutation, not clustered at low ids.
func TestZipfRankPermutation(t *testing.T) {
	g := NewGenerator(Spec{NumObjects: 1000, Seed: 5, ZipfTheta: 1.1})
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		seen[int(g.pickOID(1000))] = true
	}
	high := 0
	for id := range seen {
		if id >= 500 {
			high++
		}
	}
	if high == 0 {
		t.Fatal("all hot ids in the low half: rank permutation not applied")
	}
}

// TestPickOIDFoldback: when the live set is smaller than NumObjects the
// pick must stay in range.
func TestPickOIDFoldback(t *testing.T) {
	g := NewGenerator(Spec{NumObjects: 100, Seed: 2, ZipfTheta: 1.0})
	for i := 0; i < 1000; i++ {
		if oid := g.pickOID(7); int(oid) >= 7 {
			t.Fatalf("pickOID(7) = %d out of range", oid)
		}
	}
}

// TestHotspotDrift: with strong pull, objects must converge near their
// attractors; step lengths stay bounded by MaxDistance.
func TestHotspotDrift(t *testing.T) {
	spec := Spec{NumObjects: 200, Seed: 11, Hotspots: 2, HotspotPull: 1, MaxDistance: 0.05}
	g := NewGenerator(spec)
	maxStep := 0.0
	for i := 0; i < 20000; i++ {
		u := g.NextUpdate()
		step := math.Hypot(u.New.X-u.Old.X, u.New.Y-u.Old.Y)
		if step > maxStep {
			maxStep = step
		}
	}
	if maxStep > spec.MaxDistance+1e-12 {
		t.Fatalf("step %g exceeds MaxDistance %g", maxStep, spec.MaxDistance)
	}
	// After many updates every object should sit close to its attractor
	// (attractors drift, but an order of magnitude slower than objects).
	far := 0
	for oid, p := range g.Positions() {
		a := g.attractors[oid%len(g.attractors)]
		if math.Hypot(p.X-a.X, p.Y-a.Y) > 0.2 {
			far++
		}
	}
	if far > len(g.Positions())/10 {
		t.Fatalf("%d/%d objects far from their attractor after drift", far, len(g.Positions()))
	}
}

// TestHotspotSpatialConcentration: hotspot drift must concentrate
// objects spatially relative to the free random walk.
func TestHotspotSpatialConcentration(t *testing.T) {
	spread := func(hotspots int) float64 {
		g := NewGenerator(Spec{NumObjects: 300, Seed: 21, Hotspots: hotspots})
		for i := 0; i < 30000; i++ {
			g.NextUpdate()
		}
		var cx, cy float64
		for _, p := range g.Positions() {
			cx += p.X
			cy += p.Y
		}
		n := float64(len(g.Positions()))
		cx, cy = cx/n, cy/n
		varSum := 0.0
		for _, p := range g.Positions() {
			varSum += (p.X-cx)*(p.X-cx) + (p.Y-cy)*(p.Y-cy)
		}
		return varSum / n
	}
	walk, hot := spread(0), spread(1)
	if hot > walk/2 {
		t.Fatalf("hotspot spread %.4f not well below random-walk spread %.4f", hot, walk)
	}
}

// TestSkewedMixedTrace: a zipfian mixed trace must skew its update
// stream the same way the plain generator does.
func TestSkewedMixedTrace(t *testing.T) {
	spec := Spec{NumObjects: 500, Seed: 13, ZipfTheta: 1.1}
	tr := BuildMixedTrace(spec, 5000, MixedTraceRatios{})
	counts := map[uint64]int{}
	updates := 0
	for _, op := range tr.Ops {
		if op.Kind == TraceUpdate {
			counts[op.ID]++
			updates++
		}
	}
	if updates == 0 {
		t.Fatal("no updates in trace")
	}
	freq := make([]int, 0, len(counts))
	for _, c := range counts {
		freq = append(freq, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	top := 0
	for _, c := range freq[:min(50, len(freq))] {
		top += c
	}
	if share := float64(top) / float64(updates); share < 0.4 {
		t.Fatalf("hottest 50 ids got %.2f of trace updates, want ≥ 0.4 at θ=1.1", share)
	}
	// Determinism: same spec, same trace.
	tr2 := BuildMixedTrace(spec, 5000, MixedTraceRatios{})
	if len(tr.Ops) != len(tr2.Ops) {
		t.Fatalf("trace lengths differ: %d vs %d", len(tr.Ops), len(tr2.Ops))
	}
	for i := range tr.Ops {
		if tr.Ops[i] != tr2.Ops[i] {
			t.Fatalf("trace op %d differs", i)
		}
	}
}

func TestAttractorsStayInUnitSquare(t *testing.T) {
	g := NewGenerator(Spec{NumObjects: 50, Seed: 6, Hotspots: 5})
	for i := 0; i < 10000; i++ {
		g.NextUpdate()
	}
	for i, a := range g.attractors {
		if a.X < 0 || a.X > 1 || a.Y < 0 || a.Y > 1 {
			t.Fatalf("attractor %d left the unit square: %v", i, a)
		}
	}
}
