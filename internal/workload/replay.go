package workload

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"burtree/internal/atomicfile"
	"burtree/internal/geom"
	"burtree/internal/rtree"
)

// This file is the trace-replay equivalence harness: a recorded mixed
// trace — inserts, updates, deletes, window queries and k-NN queries —
// is replayed against any index front-end through the Frontend
// interface, producing a Profile of everything observable (final object
// table, window-query id sets, NN distance profiles). Two front-ends
// are equivalent on a trace iff their profiles Diff clean. The burtree
// test suites replay one trace against Index, ConcurrentIndex and
// ShardedIndex and require all three profiles to be identical.

// TraceOpKind tags one operation of a mixed trace.
type TraceOpKind uint8

const (
	// TraceInsert adds object ID at P.
	TraceInsert TraceOpKind = iota
	// TraceUpdate moves object ID to P.
	TraceUpdate
	// TraceDelete removes object ID.
	TraceDelete
	// TraceWindow runs a window query Q; the result id set is recorded.
	TraceWindow
	// TraceNearest runs a K-nearest query at P; the distance profile is
	// recorded.
	TraceNearest
)

func (k TraceOpKind) String() string {
	switch k {
	case TraceInsert:
		return "insert"
	case TraceUpdate:
		return "update"
	case TraceDelete:
		return "delete"
	case TraceWindow:
		return "window"
	case TraceNearest:
		return "nearest"
	default:
		return fmt.Sprintf("TraceOpKind(%d)", int(k))
	}
}

// TraceOp is one recorded operation.
type TraceOp struct {
	Kind TraceOpKind
	ID   uint64     // Insert, Update, Delete
	P    geom.Point // Insert, Update, Nearest
	Q    geom.Rect  // Window
	K    int        // Nearest
}

// MixedTrace is a fully materialized recorded workload: initial
// positions (ids 0..len(Initial)-1, bulk-loadable) plus a mixed
// operation stream. Traces serialize with gob, so a run can be
// archived and replayed bit-for-bit later.
type MixedTrace struct {
	Spec Spec
	// Initial holds the starting positions; object i has id i.
	Initial []geom.Point
	Ops     []TraceOp
}

// MixedTraceRatios sets the operation mix of BuildMixedTrace; the
// fields must sum to at most 1, the remainder becomes updates.
type MixedTraceRatios struct {
	Insert  float64
	Delete  float64
	Window  float64
	Nearest float64
}

// DefaultMixedRatios is the canonical equivalence-test mix: mostly
// updates, with enough churn and reads to exercise every code path.
func DefaultMixedRatios() MixedTraceRatios {
	return MixedTraceRatios{Insert: 0.08, Delete: 0.08, Window: 0.15, Nearest: 0.05}
}

// BuildMixedTrace materializes a deterministic mixed trace of nOps
// operations over a workload spec. Updates move a live object by the
// spec's bounded random distance; inserts allocate fresh ids; deletes
// pick a random live object. The builder tracks liveness so the trace
// is always applicable: no update/delete of a dead id, no duplicate
// insert.
func BuildMixedTrace(spec Spec, nOps int, mix MixedTraceRatios) *MixedTrace {
	g := NewGenerator(spec)
	tr := &MixedTrace{
		Spec:    g.Spec(),
		Initial: append([]geom.Point(nil), g.Positions()...),
		Ops:     make([]TraceOp, 0, nOps),
	}
	rng := g.rng
	live := make([]uint64, len(tr.Initial))
	pos := make(map[uint64]geom.Point, len(tr.Initial))
	for i, p := range tr.Initial {
		live[i] = uint64(i)
		pos[uint64(i)] = p
	}
	nextID := uint64(len(tr.Initial))
	for len(tr.Ops) < nOps {
		r := rng.Float64()
		switch {
		case r < mix.Insert:
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			tr.Ops = append(tr.Ops, TraceOp{Kind: TraceInsert, ID: nextID, P: p})
			live = append(live, nextID)
			pos[nextID] = p
			nextID++
		case r < mix.Insert+mix.Delete && len(live) > 1:
			i := rng.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(pos, id)
			tr.Ops = append(tr.Ops, TraceOp{Kind: TraceDelete, ID: id})
		case r < mix.Insert+mix.Delete+mix.Window:
			w := rng.Float64() * tr.Spec.QueryMaxSize
			h := rng.Float64() * tr.Spec.QueryMaxSize
			x, y := rng.Float64(), rng.Float64()
			tr.Ops = append(tr.Ops, TraceOp{Kind: TraceWindow, Q: geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}})
		case r < mix.Insert+mix.Delete+mix.Window+mix.Nearest:
			tr.Ops = append(tr.Ops, TraceOp{
				Kind: TraceNearest,
				P:    geom.Point{X: rng.Float64(), Y: rng.Float64()},
				K:    1 + rng.Intn(10),
			})
		default:
			// Selection and movement route through the generator so a
			// zipfian / hotspot spec skews mixed traces exactly as it skews
			// the plain update stream (the pick is an index into the live
			// set; the drift is keyed by the stable object id).
			i := int(g.pickOID(len(live)))
			id := live[i]
			old := pos[id]
			np := g.displace(old, rtree.OID(id))
			pos[id] = np
			tr.Ops = append(tr.Ops, TraceOp{Kind: TraceUpdate, ID: id, P: np})
		}
	}
	return tr
}

// Write serializes the trace.
func (t *MixedTrace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(t); err != nil {
		return fmt.Errorf("workload: encoding mixed trace: %w", err)
	}
	return bw.Flush()
}

// ReadMixedTrace deserializes a trace.
func ReadMixedTrace(r io.Reader) (*MixedTrace, error) {
	var t MixedTrace
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding mixed trace: %w", err)
	}
	return &t, nil
}

// WriteFile saves the trace to a file atomically (temp+fsync+rename):
// a crash mid-write must not leave a torn trace that
// ReadMixedTraceFile misparses, and never clobbers an archived trace
// with a partial one.
func (t *MixedTrace) WriteFile(path string) error {
	return atomicfile.Write(path, t.Write)
}

// ReadMixedTraceFile loads a trace from a file.
func ReadMixedTraceFile(path string) (*MixedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMixedTrace(f)
}

// Frontend is the index surface the replay runner drives. burtree's
// Index, ConcurrentIndex and ShardedIndex all satisfy it directly
// (their Point/Rect types alias geom's).
type Frontend interface {
	Insert(id uint64, p geom.Point) error
	Update(id uint64, p geom.Point) error
	Delete(id uint64) error
	Search(q geom.Rect) ([]uint64, error)
	Location(id uint64) (geom.Point, bool)
	Len() int
}

// NearestFunc answers a k-NN query with the ascending distance profile.
// It is a separate hook because the front-ends' Nearest methods return
// their own result type.
type NearestFunc func(p geom.Point, k int) ([]float64, error)

// BulkFunc loads the initial positions. When nil, ReplayTrace falls
// back to one Insert per object.
type BulkFunc func(ids []uint64, pts []geom.Point) error

// Profile is everything observable about one replay: the final object
// table as reported by the index, each window query's sorted id set,
// and each NN query's distance profile. Two front-ends are equivalent
// on a trace iff their profiles are identical.
type Profile struct {
	Objects map[uint64]geom.Point
	Windows [][]uint64
	NNDists [][]float64
}

// ReplayTrace replays the trace sequentially against f and returns the
// observation profile. Every operation must succeed: the builder
// guarantees applicability, so an error means the index under test is
// broken.
func ReplayTrace(f Frontend, nearest NearestFunc, bulk BulkFunc, t *MixedTrace) (*Profile, error) {
	ids := make([]uint64, len(t.Initial))
	for i := range ids {
		ids[i] = uint64(i)
	}
	if bulk != nil {
		if err := bulk(ids, t.Initial); err != nil {
			return nil, fmt.Errorf("workload: replay bulk load: %w", err)
		}
	} else {
		for i, p := range t.Initial {
			if err := f.Insert(uint64(i), p); err != nil {
				return nil, fmt.Errorf("workload: replay insert %d: %w", i, err)
			}
		}
	}
	prof := &Profile{Objects: make(map[uint64]geom.Point)}
	liveIDs := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		liveIDs[id] = true
	}
	for i, op := range t.Ops {
		switch op.Kind {
		case TraceInsert:
			if err := f.Insert(op.ID, op.P); err != nil {
				return nil, fmt.Errorf("workload: replay op %d (%v %d): %w", i, op.Kind, op.ID, err)
			}
			liveIDs[op.ID] = true
		case TraceUpdate:
			if err := f.Update(op.ID, op.P); err != nil {
				return nil, fmt.Errorf("workload: replay op %d (%v %d): %w", i, op.Kind, op.ID, err)
			}
		case TraceDelete:
			if err := f.Delete(op.ID); err != nil {
				return nil, fmt.Errorf("workload: replay op %d (%v %d): %w", i, op.Kind, op.ID, err)
			}
			delete(liveIDs, op.ID)
		case TraceWindow:
			got, err := f.Search(op.Q)
			if err != nil {
				return nil, fmt.Errorf("workload: replay op %d (window %v): %w", i, op.Q, err)
			}
			got = append([]uint64(nil), got...)
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			prof.Windows = append(prof.Windows, got)
		case TraceNearest:
			dists, err := nearest(op.P, op.K)
			if err != nil {
				return nil, fmt.Errorf("workload: replay op %d (nearest %v k=%d): %w", i, op.P, op.K, err)
			}
			prof.NNDists = append(prof.NNDists, dists)
		default:
			return nil, fmt.Errorf("workload: replay op %d: unknown kind %d", i, op.Kind)
		}
	}
	for id := range liveIDs {
		p, ok := f.Location(id)
		if !ok {
			return nil, fmt.Errorf("workload: replay: live object %d missing at end of trace", id)
		}
		prof.Objects[id] = p
	}
	if f.Len() != len(prof.Objects) {
		return nil, fmt.Errorf("workload: replay: index reports %d objects, trace expects %d", f.Len(), len(prof.Objects))
	}
	return prof, nil
}

// Diff compares two profiles and describes the first divergence, or
// returns nil when they are identical. Distances compare exactly: every
// front-end computes them from the same coordinates with the same
// arithmetic, so equivalence is bitwise.
func (p *Profile) Diff(o *Profile) error {
	if len(p.Objects) != len(o.Objects) {
		return fmt.Errorf("object tables differ in size: %d vs %d", len(p.Objects), len(o.Objects))
	}
	for id, pt := range p.Objects {
		opt, ok := o.Objects[id]
		if !ok {
			return fmt.Errorf("object %d missing from second profile", id)
		}
		if pt != opt {
			return fmt.Errorf("object %d at %v vs %v", id, pt, opt)
		}
	}
	if len(p.Windows) != len(o.Windows) {
		return fmt.Errorf("window query counts differ: %d vs %d", len(p.Windows), len(o.Windows))
	}
	for i := range p.Windows {
		a, b := p.Windows[i], o.Windows[i]
		if len(a) != len(b) {
			return fmt.Errorf("window %d: %d vs %d results", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				return fmt.Errorf("window %d: result %d: id %d vs %d", i, j, a[j], b[j])
			}
		}
	}
	if len(p.NNDists) != len(o.NNDists) {
		return fmt.Errorf("NN query counts differ: %d vs %d", len(p.NNDists), len(o.NNDists))
	}
	for i := range p.NNDists {
		a, b := p.NNDists[i], o.NNDists[i]
		if len(a) != len(b) {
			return fmt.Errorf("NN query %d: %d vs %d results", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				return fmt.Errorf("NN query %d: dist %d: %g vs %g", i, j, a[j], b[j])
			}
		}
	}
	return nil
}
