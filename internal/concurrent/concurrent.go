// Package concurrent provides the multi-threaded access layer for the
// paper's throughput experiment (§5.4): operations lock DGL granules —
// a tree-level intention lock plus fine-grained leaf-region granules —
// before touching the index.
//
// Granule layout: granule 0 is the whole tree ("external" granule); the
// unit square is tiled into an N×N grid whose cells stand in for the
// paper's leaf granules. Updates take IX on the tree and X on the cells
// covering the old and new positions; queries take IS on the tree and S
// on the cells covering the window. Cell ids are acquired in sorted
// order, which makes the protocol deadlock-free; timeouts remain as a
// safety net and are surfaced in the stats.
//
// Physical integrity is provided by a coarse reader-writer latch: the
// paper's interest is the throughput effect of cheaper updates (shorter
// exclusive sections), which this preserves, while queries — the
// read-heavy end of the mix — run fully in parallel. DESIGN.md records
// this substitution.
package concurrent

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"burtree/internal/core"
	"burtree/internal/dgl"
	"burtree/internal/geom"
	"burtree/internal/rtree"
)

// TreeGranule is the whole-index granule (DGL's external granule).
const TreeGranule = dgl.GranuleID(0)

// DB wraps an update strategy with DGL locking and a physical latch.
type DB struct {
	u       core.Updater
	lm      *dgl.Manager
	latch   sync.RWMutex
	gridN   int
	timeout time.Duration

	updates   atomic.Int64
	queries   atomic.Int64
	timeouts  atomic.Int64
	retries   atomic.Int64
	local     atomic.Int64
	escalated atomic.Int64
	batched   atomic.Int64
}

// New wraps u with an N×N granule grid. A gridN of 0 defaults to 32.
func New(u core.Updater, gridN int) *DB {
	if gridN <= 0 {
		gridN = 32
	}
	return &DB{
		u:       u,
		lm:      dgl.NewManager(),
		gridN:   gridN,
		timeout: 2 * time.Second,
	}
}

// Updater returns the wrapped strategy.
func (d *DB) Updater() core.Updater { return d.u }

// LockManager exposes the DGL table (for stats and tests).
func (d *DB) LockManager() *dgl.Manager { return d.lm }

// Stats reports operation and contention counters.
type Stats struct {
	Updates   int64
	Queries   int64
	Timeouts  int64
	Retries   int64
	Local     int64 // updates resolved on the fine-grained path
	Escalated int64 // updates that required exclusive access
	Batched   int64 // updates resolved under a leaf-group lock (UpdateBatch)
}

// Stats returns a snapshot of the counters.
func (d *DB) Stats() Stats {
	return Stats{
		Updates:   d.updates.Load(),
		Queries:   d.queries.Load(),
		Timeouts:  d.timeouts.Load(),
		Retries:   d.retries.Load(),
		Local:     d.local.Load(),
		Escalated: d.escalated.Load(),
		Batched:   d.batched.Load(),
	}
}

// cellOf maps a point to its grid granule id (1-based; 0 is the tree).
func (d *DB) cellOf(p geom.Point) dgl.GranuleID {
	x := geom.ClampCell(p.X, d.gridN)
	y := geom.ClampCell(p.Y, d.gridN)
	return dgl.GranuleID(1 + y*d.gridN + x)
}

// cellsOfRect lists the granules covering r, sorted ascending. An
// inverted (or NaN) rectangle covers nothing: the query that carries it
// matches no objects, needs no cell locks, and must not compute a
// negative covering-range size.
func (d *DB) cellsOfRect(r geom.Rect) []dgl.GranuleID {
	if !r.Valid() {
		return nil
	}
	x0 := geom.ClampCell(r.MinX, d.gridN)
	x1 := geom.ClampCell(r.MaxX, d.gridN)
	y0 := geom.ClampCell(r.MinY, d.gridN)
	y1 := geom.ClampCell(r.MaxY, d.gridN)
	out := make([]dgl.GranuleID, 0, (x1-x0+1)*(y1-y0+1))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			out = append(out, dgl.GranuleID(1+y*d.gridN+x))
		}
	}
	return out
}

// pageGranule maps a tree page id into the granule space, above the grid
// cells so the global acquisition order (tree, cells, pages) is total.
func (d *DB) pageGranule(p rtree.PageID) dgl.GranuleID {
	return dgl.GranuleID(1<<32) + dgl.GranuleID(p)
}

// Update moves an object. Bottom-up strategies first attempt the local
// path in parallel: IX on the tree, X on the movement cells, X on the
// object's leaf and parent page granules, all under the shared physical
// latch — two local updates below different parents proceed
// concurrently, which is the behaviour that gives GBU its throughput
// edge in the paper's §5.4 study. When the strategy cannot resolve the
// update locally (ascent, top-down fallback) or does not support local
// updates at all (TD), the operation escalates to X on the tree granule
// plus the exclusive latch.
func (d *DB) Update(oid rtree.OID, old, new geom.Point) error {
	cells := []dgl.GranuleID{d.cellOf(old), d.cellOf(new)}
	if cells[0] == cells[1] {
		cells = cells[:1]
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })

	if lu, ok := d.u.(core.LocalUpdater); ok {
		done, err := d.tryLocal(lu, oid, old, new, cells)
		if done || err != nil {
			if err == nil {
				d.updates.Add(1)
				d.local.Add(1)
			}
			return err
		}
	}

	// Escalate: exclusive over the whole index.
	const maxAttempts = 8
	for attempt := 0; ; attempt++ {
		txn := d.lm.Begin()
		err := d.lm.Acquire(txn, TreeGranule, dgl.X, d.timeout)
		if err == nil {
			d.latch.Lock()
			err = d.u.Update(oid, old, new)
			d.latch.Unlock()
			d.lm.ReleaseAll(txn)
			if err == nil {
				d.updates.Add(1)
				d.escalated.Add(1)
			}
			return err
		}
		d.lm.ReleaseAll(txn)
		d.timeouts.Add(1)
		if attempt+1 >= maxAttempts {
			return fmt.Errorf("concurrent: update %d: %w", oid, err)
		}
		d.retries.Add(1)
	}
}

// tryLocal attempts the fine-grained path: lock the movement cells and
// the leaf/parent page granules, re-validate the scope (the object may
// have moved leaves between lookup and lock), then run the strategy's
// local update under the shared latch.
func (d *DB) tryLocal(lu core.LocalUpdater, oid rtree.OID, old, new geom.Point, cells []dgl.GranuleID) (bool, error) {
	const maxAttempts = 8
	for attempt := 0; attempt < maxAttempts; attempt++ {
		d.latch.RLock()
		scope, err := lu.LocalScope(oid)
		d.latch.RUnlock()
		if err != nil {
			// Unknown object or bookkeeping failure: let the exclusive
			// path produce the definitive error.
			return false, nil
		}
		granules := make([]dgl.GranuleID, 0, len(scope))
		for _, p := range scope {
			granules = append(granules, d.pageGranule(p))
		}
		sort.Slice(granules, func(i, j int) bool { return granules[i] < granules[j] })

		txn := d.lm.Begin()
		if err := d.lockAll(txn, dgl.IX, dgl.X, append(append([]dgl.GranuleID{}, cells...), granules...)); err != nil {
			d.lm.ReleaseAll(txn)
			d.timeouts.Add(1)
			d.retries.Add(1)
			continue
		}
		// Re-validate under the locks.
		d.latch.RLock()
		scope2, err := lu.LocalScope(oid)
		if err != nil || !samePages(scope, scope2) {
			d.latch.RUnlock()
			d.lm.ReleaseAll(txn)
			if err != nil {
				return false, nil
			}
			d.retries.Add(1)
			continue
		}
		done, err := lu.TryLocalUpdate(oid, old, new)
		d.latch.RUnlock()
		d.lm.ReleaseAll(txn)
		return done, err
	}
	return false, nil // give up on the fine path; escalate
}

func samePages(a, b []rtree.PageID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Insert adds an object under IX(tree) + X(cell).
func (d *DB) Insert(oid rtree.OID, p geom.Point) error {
	txn := d.lm.Begin()
	defer d.lm.ReleaseAll(txn)
	if err := d.lockAll(txn, dgl.IX, dgl.X, []dgl.GranuleID{d.cellOf(p)}); err != nil {
		return err
	}
	d.latch.Lock()
	defer d.latch.Unlock()
	return d.u.Insert(oid, p)
}

// Delete removes an object under IX(tree) + X(cell).
func (d *DB) Delete(oid rtree.OID, at geom.Point) error {
	txn := d.lm.Begin()
	defer d.lm.ReleaseAll(txn)
	if err := d.lockAll(txn, dgl.IX, dgl.X, []dgl.GranuleID{d.cellOf(at)}); err != nil {
		return err
	}
	d.latch.Lock()
	defer d.latch.Unlock()
	return d.u.Delete(oid, at)
}

// Search visits the objects in the window under IS(tree) + S(cells) and
// the shared physical latch, delegating to the strategy's Search (so
// GBU's memory-assisted query planning stays active). Phantom
// protection: any update that could move an object into or out of the
// window must take X on one of these cells first. The visit callback
// runs with the locks held and must not call back into the DB.
func (d *DB) Search(q geom.Rect, visit func(rtree.OID, geom.Rect) bool) error {
	txn := d.lm.Begin()
	defer d.lm.ReleaseAll(txn)
	if err := d.lockAll(txn, dgl.IS, dgl.S, d.cellsOfRect(q)); err != nil {
		return err
	}
	d.latch.RLock()
	defer d.latch.RUnlock()
	err := d.u.Search(q, visit)
	d.queries.Add(1)
	return err
}

// Query counts the objects in the window through Search.
func (d *DB) Query(q geom.Rect) (int, error) {
	count := 0
	err := d.Search(q, func(rtree.OID, geom.Rect) bool {
		count++
		return true
	})
	return count, err
}

// Nearest answers a k-nearest-neighbour query. A best-first NN
// traversal has no a-priori granule footprint — the search region grows
// until k results bound it — so the query takes S on the whole-tree
// granule (every updater holds at least IX there, which conflicts)
// plus the shared physical latch. Readers still run in parallel with
// each other; only updates are held off, exactly DGL's escalation rule
// for operations whose scope cannot be pre-declared.
func (d *DB) Nearest(p geom.Point, k int) ([]rtree.Neighbor, error) {
	txn := d.lm.Begin()
	defer d.lm.ReleaseAll(txn)
	if err := d.lm.Acquire(txn, TreeGranule, dgl.S, d.timeout); err != nil {
		return nil, err
	}
	d.latch.RLock()
	defer d.latch.RUnlock()
	res, err := d.u.Nearest(p, k)
	d.queries.Add(1)
	return res, err
}

// Exclusive runs fn with the whole index locked out: X on the tree
// granule plus the exclusive physical latch. It is the hook for
// operations that restructure or snapshot the entire index (bulk
// loading, persistence, buffer flushes).
func (d *DB) Exclusive(fn func(core.Updater) error) error {
	txn := d.lm.Begin()
	defer d.lm.ReleaseAll(txn)
	if err := d.lm.Acquire(txn, TreeGranule, dgl.X, d.timeout); err != nil {
		return err
	}
	d.latch.Lock()
	defer d.latch.Unlock()
	return fn(d.u)
}

// View runs fn under the shared physical latch with no granule locks:
// the snapshot it sees is physically consistent (no update is mid-way
// through a page write) but not phantom-protected. Stats readers use
// it; anything that must not observe concurrent movement takes Search
// or Exclusive instead.
func (d *DB) View(fn func(core.Updater)) {
	d.latch.RLock()
	defer d.latch.RUnlock()
	fn(d.u)
}

// lockAll takes the tree intention lock then the cell locks in order.
func (d *DB) lockAll(txn *dgl.Txn, treeMode, cellMode dgl.Mode, cells []dgl.GranuleID) error {
	if err := d.lm.Acquire(txn, TreeGranule, treeMode, d.timeout); err != nil {
		return err
	}
	for _, c := range cells {
		if err := d.lm.Acquire(txn, c, cellMode, d.timeout); err != nil {
			return err
		}
	}
	return nil
}

// UpdateBatch applies an already-coalesced batch of moves, acquiring
// granule locks per leaf-group instead of per object: the changes are
// grouped by target leaf under the shared latch, then each group locks
// the union of its movement cells plus the group's leaf and parent page
// granules once, applies the whole group bottom-up (the strategy's
// group pass, then per-object local attempts on the still-buffered
// leaf), and only the changes that need an ascent or a top-down pass
// escalate to the exclusive path. Strategies without batch support run
// change by change through Update.
//
// done, when non-nil, is invoked after each change is applied; on error
// the batch stops, so done has been called exactly for the applied
// prefix (a batch is not atomic).
func (d *DB) UpdateBatch(changes []core.BatchChange, done func(core.BatchChange)) (core.BatchStats, error) {
	var st core.BatchStats
	ga, gok := d.u.(core.GroupApplier)
	lu, lok := d.u.(core.LocalUpdater)
	if !gok || !lok {
		return st, d.applySequential(changes, &st, done)
	}

	// Group by leaf under the shared latch (hash reads only).
	type group struct {
		leaf    rtree.PageID
		changes []core.BatchChange
	}
	at := make(map[rtree.PageID]int)
	var groups []group
	var loose []core.BatchChange
	d.latch.RLock()
	for _, c := range core.OrderForGrouping(d.u, changes) {
		leaf, err := ga.LeafOf(c.OID)
		if err != nil {
			loose = append(loose, c) // let Update produce the definitive error
			continue
		}
		j, ok := at[leaf]
		if !ok {
			j = len(groups)
			at[leaf] = j
			groups = append(groups, group{leaf: leaf})
		}
		groups[j].changes = append(groups[j].changes, c)
	}
	d.latch.RUnlock()
	sort.Slice(groups, func(i, j int) bool { return groups[i].leaf < groups[j].leaf })

	for _, g := range groups {
		st.Groups++
		if err := d.applyGroup(ga, lu, g.leaf, g.changes, &st, done); err != nil {
			return st, err
		}
	}
	return st, d.applySequential(loose, &st, done)
}

// applySequential applies changes one by one through the per-object
// Update path (which does its own locking and escalation), keeping the
// batch accounting.
func (d *DB) applySequential(cs []core.BatchChange, st *core.BatchStats, done func(core.BatchChange)) error {
	for _, c := range cs {
		if err := d.Update(c.OID, c.Old, c.New); err != nil {
			return err
		}
		st.Changes++
		st.Sequential++
		if done != nil {
			done(c)
		}
	}
	return nil
}

// applyGroup locks one leaf-group's scope — IX on the tree, X on the
// movement cells of every member, X on the leaf and parent page
// granules — and resolves as much of the group as possible under the
// shared latch. Members that moved leaves in the meantime or need
// non-local work are handed to the per-object Update path afterwards.
func (d *DB) applyGroup(ga core.GroupApplier, lu core.LocalUpdater, leaf rtree.PageID, group []core.BatchChange, st *core.BatchStats, done func(core.BatchChange)) error {
	escalateAll := func(cs []core.BatchChange) error { return d.applySequential(cs, st, done) }

	// The union of the group's movement cells, sorted and deduplicated.
	cellSet := make(map[dgl.GranuleID]bool, 2*len(group))
	for _, c := range group {
		cellSet[d.cellOf(c.Old)] = true
		cellSet[d.cellOf(c.New)] = true
	}
	cells := make([]dgl.GranuleID, 0, len(cellSet))
	for id := range cellSet {
		cells = append(cells, id)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })

	const maxAttempts = 8
	for attempt := 0; attempt < maxAttempts; attempt++ {
		d.latch.RLock()
		scope, err := lu.LocalScope(group[0].OID)
		d.latch.RUnlock()
		if err != nil {
			return escalateAll(group)
		}
		// The granules to lock are the GROUP's leaf and its parent. If
		// group[0]'s object has already moved to another leaf, its scope
		// no longer names this group's pages — locking it would let the
		// remaining members write the original leaf without holding its
		// granule. Escalate instead; each member then locks for itself.
		if len(scope) == 0 || scope[0] != leaf {
			return escalateAll(group)
		}
		granules := make([]dgl.GranuleID, 0, len(scope))
		for _, p := range scope {
			granules = append(granules, d.pageGranule(p))
		}
		sort.Slice(granules, func(i, j int) bool { return granules[i] < granules[j] })

		txn := d.lm.Begin()
		if err := d.lockAll(txn, dgl.IX, dgl.X, append(append([]dgl.GranuleID{}, cells...), granules...)); err != nil {
			d.lm.ReleaseAll(txn)
			d.timeouts.Add(1)
			d.retries.Add(1)
			continue
		}
		// Re-validate under the locks: the scope must be unchanged and
		// every member must still live in this leaf; stragglers escalate.
		d.latch.RLock()
		scope2, err := lu.LocalScope(group[0].OID)
		if err != nil || !samePages(scope, scope2) {
			d.latch.RUnlock()
			d.lm.ReleaseAll(txn)
			if err != nil {
				return escalateAll(group)
			}
			d.retries.Add(1)
			continue
		}
		var members, stale []core.BatchChange
		for _, c := range group {
			if pg, err := ga.LeafOf(c.OID); err == nil && pg == leaf {
				members = append(members, c)
			} else {
				stale = append(stale, c)
			}
		}
		var groupResolved, localResolved, unresolved []core.BatchChange
		if len(members) > 0 {
			un, err := ga.ApplyLeafGroup(leaf, members)
			if err != nil {
				d.latch.RUnlock()
				d.lm.ReleaseAll(txn)
				return err
			}
			declined := make(map[rtree.OID]bool, len(un))
			for _, c := range un {
				declined[c.OID] = true
			}
			for _, c := range members {
				if !declined[c.OID] {
					groupResolved = append(groupResolved, c)
				}
			}
			// Per-object local attempts while the leaf is still buffered
			// and the granules are still held.
			for _, c := range un {
				ok, err := ga.UpdateAtLeaf(leaf, c, true)
				if err != nil {
					d.latch.RUnlock()
					d.lm.ReleaseAll(txn)
					return err
				}
				if ok {
					localResolved = append(localResolved, c)
				} else {
					unresolved = append(unresolved, c)
				}
			}
		}
		d.latch.RUnlock()
		d.lm.ReleaseAll(txn)

		st.GroupResolved += len(groupResolved)
		st.LocalFallback += len(localResolved)
		for _, c := range append(groupResolved, localResolved...) {
			d.updates.Add(1)
			d.local.Add(1)
			d.batched.Add(1)
			st.Changes++
			if done != nil {
				done(c)
			}
		}
		if err := escalateAll(stale); err != nil {
			return err
		}
		return escalateAll(unresolved)
	}
	// Lock acquisition kept failing; take the per-object path.
	return escalateAll(group)
}
