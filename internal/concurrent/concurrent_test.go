package concurrent

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"burtree/internal/buffer"
	"burtree/internal/core"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
)

func newDB(t testing.TB, kind core.Kind, n int) (*DB, []geom.Point) {
	t.Helper()
	store := pagestore.New(1024, &stats.IO{})
	pool := buffer.New(store, 64)
	u, err := core.New(pool, core.Options{Strategy: kind, ExpectedObjects: n, Tree: rtree.Config{ReinsertFraction: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	db := New(u, 16)
	rng := rand.New(rand.NewSource(5))
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		if err := db.Insert(rtree.OID(i), pos[i]); err != nil {
			t.Fatal(err)
		}
	}
	return db, pos
}

func TestCellMapping(t *testing.T) {
	db := New(nil, 4)
	if c := db.cellOf(geom.Point{X: 0, Y: 0}); c != 1 {
		t.Fatalf("cell(0,0) = %d, want 1", c)
	}
	if c := db.cellOf(geom.Point{X: 0.99, Y: 0.99}); int(c) != 1+3*4+3 {
		t.Fatalf("cell(.99,.99) = %d", c)
	}
	// Out-of-square positions clamp to edge cells.
	if c := db.cellOf(geom.Point{X: -5, Y: 2}); int(c) != 1+3*4+0 {
		t.Fatalf("cell(-5,2) = %d", c)
	}
	// The rect spans x cells 0-1 and y cells 0-1 at N=4: four granules.
	cells := db.cellsOfRect(geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.4, MaxY: 0.3})
	if len(cells) != 4 {
		t.Fatalf("cells covering rect = %v", cells)
	}
	for i := 1; i < len(cells); i++ {
		if cells[i] <= cells[i-1] {
			t.Fatalf("cells not sorted: %v", cells)
		}
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	for _, kind := range []core.Kind{core.TD, core.GBU} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const n = 1500
			db, pos := newDB(t, kind, n)
			var oidLocks [64]sync.Mutex
			var wg sync.WaitGroup
			const workers = 8
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < 150; i++ {
						if rng.Float64() < 0.5 {
							oid := rng.Intn(n)
							lk := &oidLocks[oid%len(oidLocks)]
							lk.Lock()
							old := pos[oid]
							np := geom.Point{X: old.X + (rng.Float64()-0.5)*0.05, Y: old.Y + (rng.Float64()-0.5)*0.05}
							if err := db.Update(rtree.OID(oid), old, np); err != nil {
								t.Error(err)
								lk.Unlock()
								return
							}
							pos[oid] = np
							lk.Unlock()
						} else {
							x, y := rng.Float64(), rng.Float64()
							q := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05}
							if _, err := db.Query(q); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if err := db.Updater().Err(); err != nil {
				t.Fatal(err)
			}
			if err := db.Updater().Tree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if db.Updater().Tree().Size() != n {
				t.Fatalf("size = %d, want %d", db.Updater().Tree().Size(), n)
			}
			s := db.Stats()
			if s.Updates == 0 || s.Queries == 0 {
				t.Fatalf("stats = %+v", s)
			}
			if s.Timeouts > s.Updates/10 {
				t.Fatalf("excessive lock timeouts: %+v", s)
			}
		})
	}
}

func TestQueryCountsMatchAfterQuiescence(t *testing.T) {
	const n = 800
	db, pos := newDB(t, core.GBU, n)
	// Serial correctness check through the locked interface.
	q := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}
	want := 0
	for _, p := range pos {
		if q.ContainsPoint(p) {
			want++
		}
	}
	got, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("query = %d, want %d", got, want)
	}
}

func TestInsertDeleteUnderLocks(t *testing.T) {
	db, _ := newDB(t, core.GBU, 200)
	p := geom.Point{X: 0.5, Y: 0.5}
	if err := db.Insert(9999, p); err != nil {
		t.Fatal(err)
	}
	if db.Updater().Tree().Size() != 201 {
		t.Fatalf("size after insert = %d", db.Updater().Tree().Size())
	}
	if err := db.Delete(9999, p); err != nil {
		t.Fatal(err)
	}
	if db.Updater().Tree().Size() != 200 {
		t.Fatalf("size after delete = %d", db.Updater().Tree().Size())
	}
}

func TestTDAlwaysEscalates(t *testing.T) {
	db, pos := newDB(t, core.TD, 300)
	for i := 0; i < 50; i++ {
		old := pos[i]
		np := geom.Point{X: old.X + 0.01, Y: old.Y}
		if err := db.Update(rtree.OID(i), old, np); err != nil {
			t.Fatal(err)
		}
		pos[i] = np
	}
	s := db.Stats()
	if s.Local != 0 || s.Escalated != 50 {
		t.Fatalf("TD stats = %+v; every update must escalate", s)
	}
}

func TestGBUMostlyLocalUnderLocality(t *testing.T) {
	db, pos := newDB(t, core.GBU, 2000)
	for i := 0; i < 400; i++ {
		old := pos[i]
		np := geom.Point{X: old.X + 0.001, Y: old.Y + 0.001}
		if err := db.Update(rtree.OID(i), old, np); err != nil {
			t.Fatal(err)
		}
		pos[i] = np
	}
	s := db.Stats()
	if s.Local < 300 {
		t.Fatalf("GBU local = %d of 400 tiny moves; want most local (%+v)", s.Local, s)
	}
	if err := db.Updater().Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchUpdateUnderConcurrency mixes batched updates, per-object
// updates and queries from many goroutines, then checks invariants and
// the batched-resolution accounting after quiescence.
func TestBatchUpdateUnderConcurrency(t *testing.T) {
	for _, kind := range []core.Kind{core.TD, core.LBU, core.GBU} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const n = 2000
			db, pos := newDB(t, kind, n)
			var mu sync.Mutex // guards pos

			const workers = 8
			var wg sync.WaitGroup
			var firstErr error
			var errOnce sync.Once
			fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(900 + w)))
					for round := 0; round < 10; round++ {
						switch {
						case w%4 == 3: // one in four workers queries
							c := geom.Point{X: rng.Float64(), Y: rng.Float64()}
							if _, err := db.Query(geom.Rect{MinX: c.X, MinY: c.Y, MaxX: c.X + 0.05, MaxY: c.Y + 0.05}); err != nil {
								fail(err)
								return
							}
						default:
							// Each worker owns a disjoint id range: as with
							// Update, concurrent moves of the same object
							// require caller-side serialization.
							lo, hi := w*n/workers, (w+1)*n/workers
							batch := make([]core.BatchChange, 0, 40)
							mu.Lock()
							seen := map[rtree.OID]bool{}
							for len(batch) < 40 {
								oid := rtree.OID(lo + rng.Intn(hi-lo))
								if seen[oid] {
									continue // UpdateBatch expects coalesced input
								}
								seen[oid] = true
								old := pos[oid]
								np := geom.Point{
									X: old.X + (rng.Float64()*2-1)*0.02,
									Y: old.Y + (rng.Float64()*2-1)*0.02,
								}
								batch = append(batch, core.BatchChange{OID: oid, Old: old, New: np})
							}
							mu.Unlock()
							st, err := db.UpdateBatch(batch, func(c core.BatchChange) {
								mu.Lock()
								pos[c.OID] = c.New
								mu.Unlock()
							})
							if err != nil {
								fail(err)
								return
							}
							if st.Changes != len(batch) {
								fail(fmt.Errorf("%v: batch applied %d of %d", kind, st.Changes, len(batch)))
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}

			u := db.Updater()
			if err := u.Err(); err != nil {
				t.Fatalf("sticky error: %v", err)
			}
			if err := u.Tree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if u.Tree().Size() != n {
				t.Fatalf("tree size %d, want %d", u.Tree().Size(), n)
			}
			// Every tracked position must be findable where we think it is.
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < 50; i++ {
				p := pos[rtree.OID(i)]
				got, err := db.Query(geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
				if err != nil {
					t.Fatal(err)
				}
				if got == 0 {
					t.Fatalf("object %d not found at %v", i, p)
				}
			}
			st := db.Stats()
			if kind == core.TD {
				if st.Batched != 0 {
					t.Fatalf("TD reported %d batched resolutions", st.Batched)
				}
			} else if st.Batched == 0 {
				t.Fatalf("%v resolved nothing under leaf-group locks: %+v", kind, st)
			}
		})
	}
}
