package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"burtree/internal/geom"
)

func TestHilbertValueBasics(t *testing.T) {
	// The four corners of the first-order curve visit in the canonical
	// order; at full resolution the origin cell maps to distance 0.
	if hilbertValue(0, 0) != 0 {
		t.Fatalf("h(0,0) = %d", hilbertValue(0, 0))
	}
	// Distinct cells map to distinct distances (bijection spot check).
	seen := map[uint64]bool{}
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			v := hilbertValue(x<<12, y<<12)
			if seen[v] {
				t.Fatalf("collision at (%d,%d)", x, y)
			}
			seen[v] = true
		}
	}
}

func TestHilbertLocality(t *testing.T) {
	// Adjacent cells on the curve must be adjacent in space (the curve's
	// defining property): walk consecutive curve positions via sorting.
	rng := rand.New(rand.NewSource(1))
	type pt struct {
		x, y uint32
		h    uint64
	}
	var pts []pt
	for i := 0; i < 2000; i++ {
		x, y := uint32(rng.Intn(1<<hilbertBits)), uint32(rng.Intn(1<<hilbertBits))
		pts = append(pts, pt{x, y, hilbertValue(x, y)})
	}
	// Spearman-style check: points close on the curve should be close in
	// space on average. Compare mean spatial distance of curve-adjacent
	// pairs against random pairs.
	bySpace := func(a, b pt) float64 {
		dx := float64(a.x) - float64(b.x)
		dy := float64(a.y) - float64(b.y)
		return dx*dx + dy*dy
	}
	sortByH := append([]pt(nil), pts...)
	for i := 1; i < len(sortByH); i++ {
		for j := i; j > 0 && sortByH[j].h < sortByH[j-1].h; j-- {
			sortByH[j], sortByH[j-1] = sortByH[j-1], sortByH[j]
		}
	}
	var curveAdj, randomPair float64
	for i := 1; i < len(sortByH); i++ {
		curveAdj += bySpace(sortByH[i], sortByH[i-1])
	}
	for i := 0; i < len(pts)-1; i++ {
		randomPair += bySpace(pts[rng.Intn(len(pts))], pts[rng.Intn(len(pts))])
	}
	if curveAdj >= randomPair/4 {
		t.Fatalf("curve locality weak: adjacent %g vs random %g", curveAdj, randomPair)
	}
}

func TestBulkLoadHilbertBasic(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(2))
	items, o := bulkItems(rng, 2500)
	if err := tr.BulkLoadHilbert(items, 0.66); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2500 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, tr, o, 25, rng)
}

func TestBulkLoadHilbertSmallAndErrors(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 30} {
		tr := newTestTree(t, 512, 0, Config{})
		rng := rand.New(rand.NewSource(int64(n)))
		items, o := bulkItems(rng, n)
		if err := tr.BulkLoadHilbert(items, 0.7); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 0 {
			checkAgainstOracle(t, tr, o, 8, rng)
		}
	}
	tr := newTestTree(t, 512, 0, Config{})
	if err := tr.BulkLoadHilbert([]Item{{OID: 1, Rect: geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}}}, 0.7); err == nil {
		t.Fatal("invalid rect accepted")
	}
	if err := tr.BulkLoadHilbert([]Item{{OID: 1, Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}}, 1.5); err == nil {
		t.Fatal("bad fill accepted")
	}
	if err := tr.Insert(9, geom.RectFromPoint(geom.Point{X: 0.1, Y: 0.1})); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoadHilbert([]Item{{OID: 1, Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}}, 0.7); err == nil {
		t.Fatal("non-empty tree accepted")
	}
}

func TestBulkLoadHilbertVsSTRQuality(t *testing.T) {
	// On skewed data Hilbert packing should not be worse than STR on
	// query I/O by any meaningful margin (and is often better).
	rng := rand.New(rand.NewSource(3))
	var items []Item
	for i := 0; i < 4000; i++ {
		u, v := rng.Float64(), rng.Float64()
		items = append(items, Item{OID: OID(i), Rect: geom.RectFromPoint(geom.Point{X: u * u * u, Y: v * v * v})})
	}
	measure := func(load func(*Tree) error) float64 {
		tr := newTestTree(t, 512, 0, Config{})
		if err := load(tr); err != nil {
			t.Fatal(err)
		}
		io := tr.IO()
		base := io.Snapshot()
		q := rand.New(rand.NewSource(4))
		const queries = 300
		for i := 0; i < queries; i++ {
			x, y := q.Float64()*0.5, q.Float64()*0.5
			if err := tr.Search(geom.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05},
				func(OID, geom.Rect) bool { return true }); err != nil {
				t.Fatal(err)
			}
		}
		return float64(io.Snapshot().Sub(base).Reads) / queries
	}
	str := measure(func(tr *Tree) error { return tr.BulkLoad(append([]Item(nil), items...), 0.66) })
	hil := measure(func(tr *Tree) error { return tr.BulkLoadHilbert(append([]Item(nil), items...), 0.66) })
	if hil > str*1.35 {
		t.Fatalf("hilbert query reads %.2f much worse than STR %.2f", hil, str)
	}
}

func TestQuickHilbertBulkLoadValid(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		n := int(size%2000) + 1
		rng := rand.New(rand.NewSource(seed))
		tr := newTestTree(t, 512, 0, Config{})
		items, _ := bulkItems(rng, n)
		if err := tr.BulkLoadHilbert(items, 0.7); err != nil {
			return false
		}
		return tr.CheckInvariants() == nil && tr.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
