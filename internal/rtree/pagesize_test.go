package rtree

import (
	"math/rand"
	"testing"

	"burtree/internal/geom"
)

// TestPageSizeSweep exercises the tree across page sizes (and hence
// fanouts) with mixed operations and full validation: small pages force
// deep trees and frequent splits, large pages force wide nodes.
func TestPageSizeSweep(t *testing.T) {
	for _, ps := range []int{256, 512, 1024, 4096} {
		ps := ps
		t.Run(pageSizeName(ps), func(t *testing.T) {
			tr := newTestTree(t, ps, 4, Config{ReinsertFraction: 0.3})
			rng := rand.New(rand.NewSource(int64(ps)))
			o := oracle{}
			n := 900
			for i := 0; i < n; i++ {
				r := geom.RectFromPoint(uniformPoint(rng))
				if err := tr.Insert(OID(i), r); err != nil {
					t.Fatal(err)
				}
				o[OID(i)] = r
			}
			for step := 0; step < 800; step++ {
				oid := OID(rng.Intn(n))
				old := o[oid]
				c := old.Center()
				nr := geom.RectFromPoint(geom.Point{X: c.X + (rng.Float64()-0.5)*0.2, Y: c.Y + (rng.Float64()-0.5)*0.2})
				if err := tr.Update(oid, old, nr); err != nil {
					t.Fatal(err)
				}
				o[oid] = nr
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, tr, o, 15, rng)
			// Deep trees with small pages.
			if ps == 256 && tr.Height() < 3 {
				t.Fatalf("height %d with 256B pages; expected deep tree", tr.Height())
			}
		})
	}
}

func pageSizeName(ps int) string {
	switch ps {
	case 256:
		return "256B"
	case 512:
		return "512B"
	case 1024:
		return "1KB"
	default:
		return "4KB"
	}
}

// TestDuplicatePointsStress inserts many objects at identical positions:
// splits of indistinguishable entries must still produce valid trees.
func TestDuplicatePointsStress(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	p := geom.RectFromPoint(geom.Point{X: 0.5, Y: 0.5})
	const n = 300
	for i := 0; i < n; i++ {
		if err := tr.Insert(OID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.SearchCollect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("found %d of %d co-located objects", len(got), n)
	}
	// Delete them all again.
	for i := 0; i < n; i++ {
		if err := tr.Delete(OID(i), p); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d", tr.Size())
	}
}

// TestClusteredThenScattered migrates a clustered dataset to a scattered
// one via updates, which exercises MBR growth, splits and condensation
// in sequence.
func TestClusteredThenScattered(t *testing.T) {
	tr := newTestTree(t, 512, 8, Config{ReinsertFraction: 0.3})
	rng := rand.New(rand.NewSource(99))
	o := oracle{}
	const n = 700
	for i := 0; i < n; i++ {
		r := geom.RectFromPoint(geom.Point{X: 0.5 + rng.NormFloat64()*0.01, Y: 0.5 + rng.NormFloat64()*0.01})
		if err := tr.Insert(OID(i), r); err != nil {
			t.Fatal(err)
		}
		o[OID(i)] = r
	}
	// Scatter.
	for i := 0; i < n; i++ {
		oid := OID(i)
		nr := geom.RectFromPoint(uniformPoint(rng))
		if err := tr.Update(oid, o[oid], nr); err != nil {
			t.Fatal(err)
		}
		o[oid] = nr
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, tr, o, 20, rng)
	// Re-cluster.
	for i := 0; i < n; i++ {
		oid := OID(i)
		nr := geom.RectFromPoint(geom.Point{X: 0.2 + rng.NormFloat64()*0.01, Y: 0.8 + rng.NormFloat64()*0.01})
		if err := tr.Update(oid, o[oid], nr); err != nil {
			t.Fatal(err)
		}
		o[oid] = nr
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, tr, o, 20, rng)
}

// TestListenerEventsConsistency installs a recording listener and
// verifies that replaying its DataPlaced/DataRemoved stream yields the
// exact leaf assignment of the final tree.
func TestListenerEventsConsistency(t *testing.T) {
	rec := &recordingListener{placed: map[OID]PageID{}}
	tr := newTestTree(t, 512, 0, Config{ReinsertFraction: 0.3})
	tr.SetListener(rec)
	rng := rand.New(rand.NewSource(123))
	o := oracle{}
	const n = 500
	for i := 0; i < n; i++ {
		r := geom.RectFromPoint(uniformPoint(rng))
		if err := tr.Insert(OID(i), r); err != nil {
			t.Fatal(err)
		}
		o[OID(i)] = r
	}
	for step := 0; step < 1500; step++ {
		oid := OID(rng.Intn(n))
		old := o[oid]
		nr := geom.RectFromPoint(uniformPoint(rng))
		if err := tr.Update(oid, old, nr); err != nil {
			t.Fatal(err)
		}
		o[oid] = nr
	}
	// The recorded assignment must match a fresh walk.
	actual := map[OID]PageID{}
	var walk func(page PageID) error
	walk = func(page PageID) error {
		n, err := tr.ReadNode(page)
		if err != nil {
			return err
		}
		if n.IsLeaf() {
			for _, e := range n.Entries {
				actual[e.OID] = page
			}
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tr.Root()); err != nil {
		t.Fatal(err)
	}
	if len(actual) != len(rec.placed) {
		t.Fatalf("listener tracked %d objects, tree has %d", len(rec.placed), len(actual))
	}
	for oid, page := range actual {
		if rec.placed[oid] != page {
			t.Fatalf("listener maps %d to %d, tree stores it in %d", oid, rec.placed[oid], page)
		}
	}
	if rec.rootChanges == 0 || rec.writes == 0 {
		t.Fatalf("listener events missing: %+v", rec)
	}
}

type recordingListener struct {
	placed      map[OID]PageID
	writes      int
	frees       int
	rootChanges int
}

func (r *recordingListener) NodeWritten(page PageID, level int, self geom.Rect, children []PageID, count int) {
	r.writes++
}
func (r *recordingListener) NodeFreed(page PageID, level int) { r.frees++ }
func (r *recordingListener) RootChanged(root PageID, height int) {
	r.rootChanges++
}
func (r *recordingListener) DataPlaced(oid OID, leaf PageID) { r.placed[oid] = leaf }
func (r *recordingListener) DataRemoved(oid OID)             { delete(r.placed, oid) }
