package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"burtree/internal/geom"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		c := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		out[i] = Entry{
			Rect: geom.Rect{MinX: c.X, MinY: c.Y, MaxX: c.X + rng.Float64()*0.1, MaxY: c.Y + rng.Float64()*0.1},
			OID:  OID(i),
		}
	}
	return out
}

func checkSplit(t *testing.T, alg SplitAlgorithm, entries []Entry, minFill int) {
	t.Helper()
	orig := make(map[OID]bool, len(entries))
	for _, e := range entries {
		orig[e.OID] = true
	}
	in := make([]Entry, len(entries))
	copy(in, entries)
	g1, g2 := splitEntries(in, minFill, alg)
	if len(g1)+len(g2) != len(entries) {
		t.Fatalf("%v: split lost entries: %d + %d != %d", alg, len(g1), len(g2), len(entries))
	}
	if len(g1) < minFill || len(g2) < minFill {
		t.Fatalf("%v: group below min fill: %d / %d (min %d)", alg, len(g1), len(g2), minFill)
	}
	seen := make(map[OID]bool)
	for _, e := range append(append([]Entry{}, g1...), g2...) {
		if seen[e.OID] {
			t.Fatalf("%v: duplicate entry %d after split", alg, e.OID)
		}
		if !orig[e.OID] {
			t.Fatalf("%v: foreign entry %d after split", alg, e.OID)
		}
		seen[e.OID] = true
	}
}

func TestSplitAlgorithmsPreserveEntries(t *testing.T) {
	algs := []SplitAlgorithm{SplitQuadratic, SplitLinear, SplitRStar}
	rng := rand.New(rand.NewSource(1))
	for _, alg := range algs {
		for trial := 0; trial < 50; trial++ {
			n := 5 + rng.Intn(60)
			minFill := 2 + rng.Intn(n/2-1)
			if minFill > n/2 {
				minFill = n / 2
			}
			checkSplit(t, alg, randomEntries(rng, n), minFill)
		}
	}
}

func TestSplitDegenerateIdenticalRects(t *testing.T) {
	// All entries identical: split must still terminate with valid fills.
	r := geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}
	entries := make([]Entry, 25)
	for i := range entries {
		entries[i] = Entry{Rect: r, OID: OID(i)}
	}
	for _, alg := range []SplitAlgorithm{SplitQuadratic, SplitLinear, SplitRStar} {
		checkSplit(t, alg, entries, 10)
	}
}

func TestSplitCollinearPoints(t *testing.T) {
	entries := make([]Entry, 30)
	for i := range entries {
		entries[i] = Entry{Rect: geom.RectFromPoint(geom.Point{X: float64(i) / 30, Y: 0.5}), OID: OID(i)}
	}
	for _, alg := range []SplitAlgorithm{SplitQuadratic, SplitLinear, SplitRStar} {
		checkSplit(t, alg, entries, 12)
	}
}

func TestQuadraticSeparatesClusters(t *testing.T) {
	// Two well-separated clusters should end up in different groups.
	var entries []Entry
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		entries = append(entries, Entry{Rect: geom.RectFromPoint(geom.Point{X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1}), OID: OID(i)})
	}
	for i := 10; i < 20; i++ {
		entries = append(entries, Entry{Rect: geom.RectFromPoint(geom.Point{X: 0.9 + rng.Float64()*0.1, Y: 0.9 + rng.Float64()*0.1}), OID: OID(i)})
	}
	g1, g2 := splitQuadratic(entries, 4)
	low1, low2 := 0, 0
	for _, e := range g1 {
		if e.OID < 10 {
			low1++
		}
	}
	for _, e := range g2 {
		if e.OID < 10 {
			low2++
		}
	}
	// One group should be (nearly) all-low, the other all-high.
	if !(low1 == len(g1) && low2 == 0) && !(low2 == len(g2) && low1 == 0) {
		t.Fatalf("clusters mixed: g1 has %d/%d low, g2 has %d/%d low", low1, len(g1), low2, len(g2))
	}
}

func TestRStarSplitLowOverlap(t *testing.T) {
	// R* split should produce groups whose MBRs overlap no more than the
	// quadratic split's on a grid workload.
	rng := rand.New(rand.NewSource(3))
	entries := randomEntries(rng, 40)
	in1 := make([]Entry, len(entries))
	copy(in1, entries)
	in2 := make([]Entry, len(entries))
	copy(in2, entries)
	q1, q2 := splitQuadratic(in1, 16)
	r1, r2 := splitRStar(in2, 16)
	qOv := geom.UnionAll(rectsOf(q1)).OverlapArea(geom.UnionAll(rectsOf(q2)))
	rOv := geom.UnionAll(rectsOf(r1)).OverlapArea(geom.UnionAll(rectsOf(r2)))
	if rOv > qOv*1.5+1e-9 {
		t.Fatalf("R* overlap %v much worse than quadratic %v", rOv, qOv)
	}
}

func TestQuickSplitProperties(t *testing.T) {
	f := func(seed int64, algPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := []SplitAlgorithm{SplitQuadratic, SplitLinear, SplitRStar}[int(algPick)%3]
		n := 6 + rng.Intn(40)
		minFill := 2 + rng.Intn(n/3)
		if minFill > n/2 {
			minFill = n / 2
		}
		entries := randomEntries(rng, n)
		orig := len(entries)
		g1, g2 := splitEntries(entries, minFill, alg)
		if len(g1)+len(g2) != orig || len(g1) < minFill || len(g2) < minFill {
			return false
		}
		seen := map[OID]bool{}
		for _, e := range g1 {
			seen[e.OID] = true
		}
		for _, e := range g2 {
			if seen[e.OID] {
				return false
			}
			seen[e.OID] = true
		}
		return len(seen) == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAlgorithmString(t *testing.T) {
	if SplitQuadratic.String() != "quadratic" || SplitLinear.String() != "linear" || SplitRStar.String() != "rstar" {
		t.Fatal("split algorithm names wrong")
	}
	if SplitAlgorithm(9).String() == "" {
		t.Fatal("unknown algorithm has empty name")
	}
}
