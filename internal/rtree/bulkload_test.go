package rtree

import (
	"math/rand"
	"testing"

	"burtree/internal/geom"
)

func bulkItems(rng *rand.Rand, n int) ([]Item, oracle) {
	items := make([]Item, n)
	o := oracle{}
	for i := range items {
		r := geom.RectFromPoint(uniformPoint(rng))
		items[i] = Item{OID: OID(i), Rect: r}
		o[OID(i)] = r
	}
	return items, o
}

func TestBulkLoadBasic(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(1))
	items, o := bulkItems(rng, 2000)
	if err := tr.BulkLoad(items, 0.66); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2000 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, tr, o, 30, rng)
}

func TestBulkLoadUtilization(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(2))
	items, _ := bulkItems(rng, 3000)
	if err := tr.BulkLoad(items, 0.66); err != nil {
		t.Fatal(err)
	}
	s, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	leaf := s.Levels[0]
	if leaf.AvgFill < 0.55 || leaf.AvgFill > 0.75 {
		t.Fatalf("leaf fill = %v, want ~0.66", leaf.AvgFill)
	}
}

func TestBulkLoadSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 11, 12, 13, 25} {
		tr := newTestTree(t, 512, 0, Config{})
		rng := rand.New(rand.NewSource(int64(n)))
		items, o := bulkItems(rng, n)
		if err := tr.BulkLoad(items, 0.7); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Size() != n {
			t.Fatalf("n=%d: size=%d", n, tr.Size())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 0 {
			checkAgainstOracle(t, tr, o, 10, rng)
		}
	}
}

func TestBulkLoadParentPointers(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{ParentPointers: true})
	rng := rand.New(rand.NewSource(3))
	items, o := bulkItems(rng, 1500)
	if err := tr.BulkLoad(items, 0.66); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, tr, o, 20, rng)
}

func TestBulkLoadThenUpdates(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{ReinsertFraction: 0.3})
	rng := rand.New(rand.NewSource(4))
	items, o := bulkItems(rng, 1500)
	if err := tr.BulkLoad(items, 0.66); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 1000; step++ {
		oid := OID(rng.Intn(1500))
		old := o[oid]
		p := old.Center()
		np := geom.Point{X: p.X + (rng.Float64()-0.5)*0.06, Y: p.Y + (rng.Float64()-0.5)*0.06}
		nr := geom.RectFromPoint(np)
		if err := tr.Update(oid, old, nr); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		o[oid] = nr
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, tr, o, 25, rng)
}

func TestBulkLoadErrors(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	if err := tr.BulkLoad([]Item{{OID: 1, Rect: geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}}}, 0.7); err == nil {
		t.Fatal("invalid rect accepted")
	}
	tr2 := newTestTree(t, 512, 0, Config{})
	if err := tr2.BulkLoad([]Item{{OID: 1, Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}}, 0); err == nil {
		t.Fatal("zero fill factor accepted")
	}
	if err := tr2.BulkLoad([]Item{{OID: 1, Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}}, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := tr2.BulkLoad([]Item{{OID: 2, Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}}, 0.7); err == nil {
		t.Fatal("bulk load on non-empty tree accepted")
	}
}
