package rtree

import (
	"fmt"
	"sort"

	"burtree/internal/geom"
	"burtree/internal/hilbert"
	"burtree/internal/pagestore"
)

// Hilbert-curve bulk loading, after Kamel & Faloutsos's Hilbert R-tree
// (cited by the paper as one of the R-tree variants its bottom-up
// techniques apply to). Entries are ordered by the Hilbert value of
// their center point and packed sequentially; compared with STR this
// tends to give better leaf locality on skewed data.

// hilbertBits is the curve resolution: 2^16 cells per axis gives 32-bit
// keys, ample for float64 coordinates of any workload here.
const hilbertBits = 16

// hilbertValue converts (x, y) cell coordinates to the distance along
// the Hilbert curve (internal/hilbert holds the shared walk).
func hilbertValue(x, y uint32) uint64 {
	return hilbert.D(x, y, hilbertBits)
}

// hilbertOf maps a point within bounds to its curve position.
func hilbertOf(p geom.Point, bounds geom.Rect) uint64 {
	const cells = 1<<hilbertBits - 1
	w := bounds.Width()
	h := bounds.Height()
	var cx, cy uint32
	if w > 0 {
		cx = uint32((p.X - bounds.MinX) / w * cells)
	}
	if h > 0 {
		cy = uint32((p.Y - bounds.MinY) / h * cells)
	}
	if cx > cells {
		cx = cells
	}
	if cy > cells {
		cy = cells
	}
	return hilbertValue(cx, cy)
}

// BulkLoadHilbert builds the tree by Hilbert-sorting the items and
// packing nodes sequentially at the given fill factor (0 < f <= 1). The
// tree must be empty.
func (t *Tree) BulkLoadHilbert(items []Item, fillFactor float64) error {
	if t.root != pagestore.InvalidPage {
		return fmt.Errorf("rtree: BulkLoadHilbert on non-empty tree")
	}
	if len(items) == 0 {
		return nil
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return fmt.Errorf("rtree: BulkLoadHilbert fill factor %v outside (0,1]", fillFactor)
	}
	cap := int(float64(t.maxEntries) * fillFactor)
	if cap < t.minEntries {
		cap = t.minEntries
	}

	entries := make([]Entry, len(items))
	rects := make([]geom.Rect, len(items))
	for i, it := range items {
		if !it.Rect.Valid() {
			return fmt.Errorf("rtree: BulkLoadHilbert item %d: invalid rect %v", it.OID, it.Rect)
		}
		entries[i] = Entry{Rect: it.Rect, OID: it.OID}
		rects[i] = it.Rect
	}
	bounds := geom.UnionAll(rects)
	keys := make([]uint64, len(entries))
	for i := range entries {
		keys[i] = hilbertOf(entries[i].Rect.Center(), bounds)
	}
	sort.Sort(&hilbertSorter{entries: entries, keys: keys})

	level := 0
	for {
		nodes, err := t.packSequential(entries, level, cap)
		if err != nil {
			return err
		}
		if len(nodes) == 1 {
			t.setRoot(nodes[0].Page, level+1)
			if t.cfg.ParentPointers {
				if err := t.fixParents(nodes[0]); err != nil {
					return err
				}
			}
			break
		}
		entries = make([]Entry, len(nodes))
		for i, n := range nodes {
			entries[i] = Entry{Rect: n.Self, Child: n.Page}
		}
		level++
	}
	t.size = len(items)
	return nil
}

type hilbertSorter struct {
	entries []Entry
	keys    []uint64
}

func (h *hilbertSorter) Len() int           { return len(h.entries) }
func (h *hilbertSorter) Less(i, j int) bool { return h.keys[i] < h.keys[j] }
func (h *hilbertSorter) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
}

// packSequential chunks already-ordered entries into nodes of the given
// level, borrowing from the previous node if the tail would underfill.
func (t *Tree) packSequential(entries []Entry, level, cap int) ([]*Node, error) {
	var nodes []*Node
	for start := 0; start < len(entries); start += cap {
		end := start + cap
		if end > len(entries) {
			end = len(entries)
		}
		node := t.allocNode(level)
		node.Entries = append(node.Entries, entries[start:end]...)
		node.Self = node.EntriesMBR()
		if err := t.WriteNode(node); err != nil {
			return nil, err
		}
		if level == 0 {
			for _, e := range node.Entries {
				t.notifyPlaced(e.OID, node.Page)
			}
		}
		nodes = append(nodes, node)
	}
	return t.fixTrailingUnderfull(nodes, level, true)
}
