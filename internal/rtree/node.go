// Package rtree implements a disk-resident R-tree over the simulated page
// store: Guttman's dynamic index structure with quadratic/linear splits,
// optional R*-style forced reinsertion, top-down insert/delete/update,
// range search, and STR bulk loading.
//
// This package is the substrate for the paper's three update strategies:
// the traditional top-down update (TD) lives here, while the bottom-up
// strategies (LBU, GBU) in internal/core drive the tree through the
// lower-level node operations it exposes.
//
// Layout: each node occupies exactly one page. The node header stores the
// node's level, entry count and its official MBR (the paper's "leaf MBR",
// which bottom-up updates may enlarge beyond the tight bound of the
// entries). Trees configured with parent pointers (the LBU variant)
// additionally store the parent page id in every node header, paying for
// it with reduced fanout and extra maintenance writes — exactly the
// overhead the paper attributes to Kwon-style localized updates.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"burtree/internal/geom"
	"burtree/internal/pagestore"
)

// OID identifies a data object stored in the tree.
type OID = uint64

// PageID aliases pagestore.PageID so that dependents of this package can
// speak about node pages without importing pagestore directly.
type PageID = pagestore.PageID

// Entry is one slot of a node: a bounding rectangle plus either a child
// page reference (internal nodes) or an object id (leaves).
type Entry struct {
	Rect  geom.Rect
	Child pagestore.PageID // meaningful in internal nodes
	OID   OID              // meaningful in leaf nodes
}

// Node is the decoded in-memory form of one R-tree page.
type Node struct {
	Page    pagestore.PageID
	Level   int // 0 = leaf
	Self    geom.Rect
	Parent  pagestore.PageID // maintained only in parent-pointer trees
	Entries []Entry
}

// IsLeaf reports whether the node is at leaf level.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// EntriesMBR returns the tight bounding rectangle of the node's entries.
// It panics on an empty node; empty nodes never persist.
func (n *Node) EntriesMBR() geom.Rect {
	if len(n.Entries) == 0 {
		panic("rtree: EntriesMBR of empty node")
	}
	mbr := n.Entries[0].Rect
	for _, e := range n.Entries[1:] {
		mbr = mbr.Union(e.Rect)
	}
	return mbr
}

// FindOID returns the index of the entry with the given oid, or -1.
func (n *Node) FindOID(oid OID) int {
	for i := range n.Entries {
		if n.Entries[i].OID == oid {
			return i
		}
	}
	return -1
}

// FindChild returns the index of the entry referencing child, or -1.
func (n *Node) FindChild(child pagestore.PageID) int {
	for i := range n.Entries {
		if n.Entries[i].Child == child {
			return i
		}
	}
	return -1
}

// RemoveEntry deletes the entry at index i, preserving order of the rest.
func (n *Node) RemoveEntry(i int) {
	n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
}

// ChildPages returns the child page ids of an internal node.
func (n *Node) ChildPages() []pagestore.PageID {
	if n.IsLeaf() {
		return nil
	}
	out := make([]pagestore.PageID, len(n.Entries))
	for i := range n.Entries {
		out[i] = n.Entries[i].Child
	}
	return out
}

// Node serialization. All integers are little-endian.
const (
	nodeMagic = 0xA7

	flagLeaf   = 1 << 0
	flagParent = 1 << 1 // header carries a parent pointer

	baseHeaderSize   = 8 + 4*8 // magic,flags,level,count,pad + self MBR
	parentFieldSize  = 8
	entrySize        = 8 + 4*8 // child/oid + rect
	minFanoutForPage = 4
)

// headerSize returns the encoded header length for the given tree mode.
func headerSize(parentPointers bool) int {
	if parentPointers {
		return baseHeaderSize + parentFieldSize
	}
	return baseHeaderSize
}

// MaxEntriesFor returns the node fanout for a page size and tree mode.
func MaxEntriesFor(pageSize int, parentPointers bool) int {
	m := (pageSize - headerSize(parentPointers)) / entrySize
	if m < minFanoutForPage {
		panic(fmt.Sprintf("rtree: page size %d too small (fanout %d < %d)", pageSize, m, minFanoutForPage))
	}
	return m
}

func putRect(b []byte, r geom.Rect) {
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(r.MinX))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.MinY))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(r.MaxX))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(r.MaxY))
}

func getRect(b []byte) geom.Rect {
	return geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
	}
}

// encodeNode serializes n into buf (one full page). parentPointers selects
// the header layout; it must match the tree configuration.
func encodeNode(n *Node, buf []byte, parentPointers bool) error {
	need := headerSize(parentPointers) + len(n.Entries)*entrySize
	if need > len(buf) {
		return fmt.Errorf("rtree: node %d with %d entries exceeds page size %d", n.Page, len(n.Entries), len(buf))
	}
	if n.Level > math.MaxUint16 || len(n.Entries) > math.MaxUint16 {
		return fmt.Errorf("rtree: node %d level/count out of range", n.Page)
	}
	var flags byte
	if n.Level == 0 {
		flags |= flagLeaf
	}
	if parentPointers {
		flags |= flagParent
	}
	buf[0] = nodeMagic
	buf[1] = flags
	binary.LittleEndian.PutUint16(buf[2:], uint16(n.Level))
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.Entries)))
	buf[6], buf[7] = 0, 0
	putRect(buf[8:], n.Self)
	off := baseHeaderSize
	if parentPointers {
		binary.LittleEndian.PutUint64(buf[off:], uint64(n.Parent))
		off += parentFieldSize
	}
	for i := range n.Entries {
		e := &n.Entries[i]
		id := e.OID
		if n.Level > 0 {
			id = uint64(e.Child)
		}
		binary.LittleEndian.PutUint64(buf[off:], id)
		putRect(buf[off+8:], e.Rect)
		off += entrySize
	}
	// Zero the tail so page contents are deterministic.
	for i := off; i < len(buf); i++ {
		buf[i] = 0
	}
	return nil
}

// decodeNode parses one page into n. The node's Page field must be set by
// the caller.
func decodeNode(n *Node, buf []byte, parentPointers bool) error {
	if buf[0] != nodeMagic {
		return fmt.Errorf("rtree: page is not a node (magic %#x)", buf[0])
	}
	flags := buf[1]
	if got := flags&flagParent != 0; got != parentPointers {
		return fmt.Errorf("rtree: node parent-pointer layout mismatch (page has %v, tree wants %v)", got, parentPointers)
	}
	n.Level = int(binary.LittleEndian.Uint16(buf[2:]))
	count := int(binary.LittleEndian.Uint16(buf[4:]))
	if isLeaf := flags&flagLeaf != 0; isLeaf != (n.Level == 0) {
		return fmt.Errorf("rtree: leaf flag inconsistent with level %d", n.Level)
	}
	n.Self = getRect(buf[8:])
	off := baseHeaderSize
	n.Parent = pagestore.InvalidPage
	if parentPointers {
		n.Parent = pagestore.PageID(binary.LittleEndian.Uint64(buf[off:]))
		off += parentFieldSize
	}
	if off+count*entrySize > len(buf) {
		return fmt.Errorf("rtree: node count %d exceeds page capacity", count)
	}
	if cap(n.Entries) < count {
		n.Entries = make([]Entry, count)
	} else {
		n.Entries = n.Entries[:count]
	}
	for i := 0; i < count; i++ {
		id := binary.LittleEndian.Uint64(buf[off:])
		r := getRect(buf[off+8:])
		e := Entry{Rect: r}
		if n.Level > 0 {
			e.Child = pagestore.PageID(id)
		} else {
			e.OID = id
		}
		n.Entries[i] = e
		off += entrySize
	}
	return nil
}
