package rtree

import (
	"fmt"

	"burtree/internal/geom"
	"burtree/internal/pagestore"
)

// Delete removes the data entry for oid whose rectangle is at. The
// rectangle is the search hint (the paper's updates always know the old
// location); deletion descends every path whose bounding rectangles
// contain it, as in Guttman's FindLeaf. Underfull nodes are condensed and
// their entries reinserted.
func (t *Tree) Delete(oid OID, at geom.Rect) error {
	if t.root == pagestore.InvalidPage {
		return ErrNotFound
	}
	root, err := t.ReadNode(t.root)
	if err != nil {
		return err
	}
	path, found, err := t.findLeaf(root, oid, at, nil)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: oid %d at %v", ErrNotFound, oid, at)
	}
	leaf := path[len(path)-1]
	leaf.RemoveEntry(leaf.FindOID(oid))
	t.notifyRemoved(oid)
	if err := t.condense(path); err != nil {
		return err
	}
	t.size--
	return nil
}

// Update is the traditional top-down update (the paper's TD baseline):
// one top-down traversal to locate and delete the old entry, then a
// separate top-down insertion of the new one.
func (t *Tree) Update(oid OID, old, new geom.Rect) error {
	if err := t.Delete(oid, old); err != nil {
		return err
	}
	return t.Insert(oid, new)
}

// findLeaf performs a depth-first containment search for the entry,
// returning the full node path from n to the owning leaf.
func (t *Tree) findLeaf(n *Node, oid OID, at geom.Rect, path []*Node) ([]*Node, bool, error) {
	path = append(path, n)
	if n.IsLeaf() {
		for i := range n.Entries {
			if n.Entries[i].OID == oid && n.Entries[i].Rect == at {
				return path, true, nil
			}
		}
		return path[:len(path)-1], false, nil
	}
	for i := range n.Entries {
		if !n.Entries[i].Rect.ContainsRect(at) {
			continue
		}
		child, err := t.ReadNode(n.Entries[i].Child)
		if err != nil {
			return nil, false, err
		}
		sub, found, err := t.findLeaf(child, oid, at, path)
		if err != nil {
			return nil, false, err
		}
		if found {
			return sub, true, nil
		}
	}
	return path[:len(path)-1], false, nil
}

// condense implements Guttman's CondenseTree: walking from the leaf back
// to the root, underfull nodes are removed and their entries queued for
// reinsertion at their original level; surviving nodes have their MBRs
// tightened. Orphans are reinserted and finally the root is collapsed
// while it is an internal node with a single child.
func (t *Tree) condense(path []*Node) error {
	var orphans []pendingReinsert
	dirty := make([]bool, len(path))
	dirty[len(path)-1] = true // the leaf lost an entry

	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		idx := parent.FindChild(n.Page)
		if idx < 0 {
			return fmt.Errorf("rtree: condense: node %d missing child %d", parent.Page, n.Page)
		}
		if len(n.Entries) < t.minEntries {
			parent.RemoveEntry(idx)
			dirty[i-1] = true
			for _, e := range n.Entries {
				orphans = append(orphans, pendingReinsert{e, n.Level})
			}
			if err := t.freeNode(n); err != nil {
				return err
			}
			continue
		}
		if dirty[i] {
			if len(n.Entries) > 0 {
				if tight := n.EntriesMBR(); tight != n.Self {
					n.Self = tight
				}
			}
			if err := t.WriteNode(n); err != nil {
				return err
			}
			if parent.Entries[idx].Rect != n.Self {
				parent.Entries[idx].Rect = n.Self
				dirty[i-1] = true
			}
		}
	}

	// Root: tighten and write if touched.
	root := path[0]
	if dirty[0] {
		if len(root.Entries) > 0 {
			root.Self = root.EntriesMBR()
		}
		if err := t.WriteNode(root); err != nil {
			return err
		}
	}

	// Reinsert orphans at their original levels.
	if len(orphans) > 0 {
		op := &insertOp{reinserted: make(map[int]bool), pending: orphans}
		if err := t.drainReinserts(op); err != nil {
			return err
		}
	}

	return t.collapseRoot()
}

// collapseRoot shrinks the tree while the root is an internal node with a
// single child, or empties it when the last entry is gone.
func (t *Tree) collapseRoot() error {
	for {
		if t.root == pagestore.InvalidPage {
			return nil
		}
		root, err := t.ReadNode(t.root)
		if err != nil {
			return err
		}
		if root.IsLeaf() {
			if len(root.Entries) == 0 {
				if err := t.freeNode(root); err != nil {
					return err
				}
				t.setRoot(pagestore.InvalidPage, 0)
			}
			return nil
		}
		if len(root.Entries) > 1 {
			return nil
		}
		child := root.Entries[0].Child
		if err := t.freeNode(root); err != nil {
			return err
		}
		t.setRoot(child, t.height-1)
		if t.cfg.ParentPointers {
			if err := t.setParent(child, pagestore.InvalidPage); err != nil {
				return err
			}
		}
	}
}
