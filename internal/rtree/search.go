package rtree

import (
	"container/heap"

	"burtree/internal/geom"
	"burtree/internal/pagestore"
)

// Search visits every data entry whose rectangle intersects q. The visit
// callback returns false to stop early. Traversal order is unspecified.
func (t *Tree) Search(q geom.Rect, visit func(oid OID, r geom.Rect) bool) error {
	if t.root == pagestore.InvalidPage {
		return nil
	}
	stack := []pagestore.PageID{t.root}
	n := &Node{}
	for len(stack) > 0 {
		page := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := t.readNodeInto(page, n); err != nil {
			return err
		}
		if n.IsLeaf() {
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					if !visit(e.OID, e.Rect) {
						return nil
					}
				}
			}
			continue
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, e.Child)
			}
		}
	}
	return nil
}

// SearchCollect returns the ids of all objects intersecting q.
func (t *Tree) SearchCollect(q geom.Rect) ([]OID, error) {
	var out []OID
	err := t.Search(q, func(oid OID, _ geom.Rect) bool {
		out = append(out, oid)
		return true
	})
	return out, err
}

// SearchCount returns the number of objects intersecting q.
func (t *Tree) SearchCount(q geom.Rect) (int, error) {
	count := 0
	err := t.Search(q, func(OID, geom.Rect) bool {
		count++
		return true
	})
	return count, err
}

// Contains reports whether an entry with the given oid exists at the
// given rectangle.
func (t *Tree) Contains(oid OID, at geom.Rect) (bool, error) {
	if t.root == pagestore.InvalidPage {
		return false, nil
	}
	root, err := t.ReadNode(t.root)
	if err != nil {
		return false, err
	}
	_, found, err := t.findLeaf(root, oid, at, nil)
	return found, err
}

// Neighbor is one result of a nearest-neighbour query.
type Neighbor struct {
	OID  OID
	Rect geom.Rect
	Dist float64
}

// NearestK returns the k data entries nearest to p in increasing distance
// order, using the standard best-first MinDist traversal. It is an
// extension beyond the paper's evaluation, provided for library
// completeness.
func (t *Tree) NearestK(p geom.Point, k int) ([]Neighbor, error) {
	if t.root == pagestore.InvalidPage || k <= 0 {
		return nil, nil
	}
	pq := &nnHeap{}
	heap.Init(pq)
	heap.Push(pq, nnItem{dist: 0, page: t.root, isNode: true})
	var out []Neighbor
	n := &Node{}
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(nnItem)
		if !it.isNode {
			out = append(out, Neighbor{OID: it.oid, Rect: it.rect, Dist: it.dist})
			continue
		}
		if err := t.readNodeInto(it.page, n); err != nil {
			return nil, err
		}
		for _, e := range n.Entries {
			d := e.Rect.MinDistPoint(p)
			if n.IsLeaf() {
				heap.Push(pq, nnItem{dist: d, oid: e.OID, rect: e.Rect})
			} else {
				heap.Push(pq, nnItem{dist: d, page: e.Child, isNode: true})
			}
		}
	}
	return out, nil
}

type nnItem struct {
	dist   float64
	page   pagestore.PageID
	oid    OID
	rect   geom.Rect
	isNode bool
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
