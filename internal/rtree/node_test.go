package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"burtree/internal/geom"
	"burtree/internal/pagestore"
)

func TestMaxEntriesFor(t *testing.T) {
	// 1024-byte pages: (1024-40)/40 = 24 plain, (1024-48)/40 = 24 with
	// parent pointers.
	if got := MaxEntriesFor(1024, false); got != 24 {
		t.Errorf("fanout(1024, plain) = %d, want 24", got)
	}
	if got := MaxEntriesFor(1024, true); got != 24 {
		t.Errorf("fanout(1024, parent) = %d, want 24", got)
	}
	// 4 KB pages: (4096-40)/40 = 101.
	if got := MaxEntriesFor(4096, false); got != 101 {
		t.Errorf("fanout(4096, plain) = %d, want 101", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("tiny page fanout did not panic")
		}
	}()
	MaxEntriesFor(128, false)
}

func TestNodeEncodeDecodeLeaf(t *testing.T) {
	n := &Node{
		Page:  7,
		Level: 0,
		Self:  geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.4},
		Entries: []Entry{
			{Rect: geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.15, MaxY: 0.25}, OID: 42},
			{Rect: geom.Rect{MinX: 0.2, MinY: 0.3, MaxX: 0.3, MaxY: 0.4}, OID: 99},
		},
	}
	buf := make([]byte, 1024)
	if err := encodeNode(n, buf, false); err != nil {
		t.Fatal(err)
	}
	got := &Node{Page: 7}
	if err := decodeNode(got, buf, false); err != nil {
		t.Fatal(err)
	}
	if got.Level != 0 || got.Self != n.Self || len(got.Entries) != 2 {
		t.Fatalf("decoded node = %+v", got)
	}
	for i := range n.Entries {
		if got.Entries[i].OID != n.Entries[i].OID || got.Entries[i].Rect != n.Entries[i].Rect {
			t.Fatalf("entry %d = %+v, want %+v", i, got.Entries[i], n.Entries[i])
		}
	}
}

func TestNodeEncodeDecodeInternalWithParent(t *testing.T) {
	n := &Node{
		Page:   3,
		Level:  2,
		Self:   geom.Rect{MinX: -1, MinY: -2, MaxX: 3, MaxY: 4},
		Parent: pagestore.PageID(17),
		Entries: []Entry{
			{Rect: geom.Rect{MinX: -1, MinY: -2, MaxX: 0, MaxY: 0}, Child: 11},
			{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 4}, Child: 12},
			{Rect: geom.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, Child: 13},
		},
	}
	buf := make([]byte, 1024)
	if err := encodeNode(n, buf, true); err != nil {
		t.Fatal(err)
	}
	got := &Node{Page: 3}
	if err := decodeNode(got, buf, true); err != nil {
		t.Fatal(err)
	}
	if got.Parent != 17 || got.Level != 2 || len(got.Entries) != 3 {
		t.Fatalf("decoded = %+v", got)
	}
	for i := range n.Entries {
		if got.Entries[i].Child != n.Entries[i].Child {
			t.Fatalf("child %d = %d, want %d", i, got.Entries[i].Child, n.Entries[i].Child)
		}
	}
}

func TestNodeDecodeLayoutMismatch(t *testing.T) {
	n := &Node{Page: 1, Level: 0, Entries: []Entry{{OID: 1}}}
	buf := make([]byte, 1024)
	if err := encodeNode(n, buf, false); err != nil {
		t.Fatal(err)
	}
	if err := decodeNode(&Node{}, buf, true); err == nil {
		t.Fatal("layout mismatch not detected")
	}
	buf[0] = 0 // corrupt magic
	if err := decodeNode(&Node{}, buf, false); err == nil {
		t.Fatal("bad magic not detected")
	}
}

func TestNodeEncodeOverflowRejected(t *testing.T) {
	n := &Node{Page: 1, Level: 0}
	for i := 0; i < 100; i++ {
		n.Entries = append(n.Entries, Entry{OID: OID(i)})
	}
	buf := make([]byte, 1024)
	if err := encodeNode(n, buf, false); err == nil {
		t.Fatal("oversized node encoded without error")
	}
}

func TestQuickNodeRoundTrip(t *testing.T) {
	f := func(seed int64, parentPtr bool) bool {
		rng := rand.New(rand.NewSource(seed))
		level := rng.Intn(4)
		count := 1 + rng.Intn(20)
		n := &Node{
			Page:   pagestore.PageID(1 + rng.Intn(1000)),
			Level:  level,
			Self:   geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()),
			Parent: pagestore.PageID(rng.Intn(100)),
		}
		if !parentPtr {
			n.Parent = pagestore.InvalidPage
		}
		for i := 0; i < count; i++ {
			e := Entry{Rect: geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())}
			if level > 0 {
				e.Child = pagestore.PageID(1 + rng.Intn(1<<30))
			} else {
				e.OID = rng.Uint64()
			}
			n.Entries = append(n.Entries, e)
		}
		buf := make([]byte, 1024)
		if err := encodeNode(n, buf, parentPtr); err != nil {
			return false
		}
		got := &Node{Page: n.Page}
		if err := decodeNode(got, buf, parentPtr); err != nil {
			return false
		}
		if got.Level != n.Level || got.Self != n.Self || len(got.Entries) != len(n.Entries) {
			return false
		}
		if parentPtr && got.Parent != n.Parent {
			return false
		}
		for i := range n.Entries {
			if got.Entries[i] != n.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeHelpers(t *testing.T) {
	n := &Node{Level: 0, Entries: []Entry{
		{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, OID: 1},
		{Rect: geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}, OID: 2},
	}}
	if n.FindOID(2) != 1 || n.FindOID(5) != -1 {
		t.Fatal("FindOID wrong")
	}
	if got := n.EntriesMBR(); got != (geom.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}) {
		t.Fatalf("EntriesMBR = %v", got)
	}
	n.RemoveEntry(0)
	if len(n.Entries) != 1 || n.Entries[0].OID != 2 {
		t.Fatalf("RemoveEntry left %+v", n.Entries)
	}
	in := &Node{Level: 1, Entries: []Entry{{Child: 5}, {Child: 9}}}
	if in.FindChild(9) != 1 || in.FindChild(4) != -1 {
		t.Fatal("FindChild wrong")
	}
	if got := in.ChildPages(); len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("ChildPages = %v", got)
	}
	if n.ChildPages() != nil {
		t.Fatal("leaf ChildPages should be nil")
	}
}
