package rtree

import (
	"math"
	"sort"

	"burtree/internal/geom"
)

// splitEntries divides an overflowing entry set (M+1 entries) into two
// groups, each with at least minFill entries, using the configured
// algorithm. The input slice is consumed.
func splitEntries(entries []Entry, minFill int, alg SplitAlgorithm) (g1, g2 []Entry) {
	switch alg {
	case SplitLinear:
		return splitLinear(entries, minFill)
	case SplitRStar:
		return splitRStar(entries, minFill)
	default:
		return splitQuadratic(entries, minFill)
	}
}

// splitQuadratic is Guttman's quadratic split: pick the pair of entries
// that would waste the most area together as seeds, then assign the rest
// by greatest affinity difference.
func splitQuadratic(entries []Entry, minFill int) (g1, g2 []Entry) {
	s1, s2 := pickSeedsQuadratic(entries)
	g1 = append(g1, entries[s1])
	g2 = append(g2, entries[s2])
	mbr1, mbr2 := entries[s1].Rect, entries[s2].Rect

	rest := make([]Entry, 0, len(entries)-2)
	for i := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, entries[i])
		}
	}

	for len(rest) > 0 {
		// If one group must take all remaining entries to reach minFill,
		// assign them wholesale.
		if len(g1)+len(rest) == minFill {
			g1 = append(g1, rest...)
			return g1, g2
		}
		if len(g2)+len(rest) == minFill {
			g2 = append(g2, rest...)
			return g1, g2
		}
		// PickNext: entry with maximum preference difference.
		best, bestDiff := -1, -1.0
		var bestD1, bestD2 float64
		for i := range rest {
			d1 := mbr1.Enlargement(rest[i].Rect)
			d2 := mbr2.Enlargement(rest[i].Rect)
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				best, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		e := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		// Resolve ties by smaller area, then smaller count.
		toFirst := bestD1 < bestD2
		if bestD1 == bestD2 {
			a1, a2 := mbr1.Area(), mbr2.Area()
			if a1 != a2 {
				toFirst = a1 < a2
			} else {
				toFirst = len(g1) <= len(g2)
			}
		}
		if toFirst {
			g1 = append(g1, e)
			mbr1 = mbr1.Union(e.Rect)
		} else {
			g2 = append(g2, e)
			mbr2 = mbr2.Union(e.Rect)
		}
	}
	return g1, g2
}

func pickSeedsQuadratic(entries []Entry) (int, int) {
	worst := -math.MaxFloat64
	s1, s2 := 0, 1
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].Rect.Union(entries[j].Rect)
			waste := u.Area() - entries[i].Rect.Area() - entries[j].Rect.Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	return s1, s2
}

// splitLinear is Guttman's linear split: seeds are the pair with the
// greatest normalized separation along any dimension; the rest are
// assigned by least enlargement.
func splitLinear(entries []Entry, minFill int) (g1, g2 []Entry) {
	s1, s2 := pickSeedsLinear(entries)
	g1 = append(g1, entries[s1])
	g2 = append(g2, entries[s2])
	mbr1, mbr2 := entries[s1].Rect, entries[s2].Rect
	for i := range entries {
		if i == s1 || i == s2 {
			continue
		}
		e := entries[i]
		remaining := len(entries) - i - 1 // not counting seeds precisely; conservative fill guard below
		_ = remaining
		switch {
		case len(g1)+1 < minFill && len(g2) >= minFill:
			g1 = append(g1, e)
			mbr1 = mbr1.Union(e.Rect)
			continue
		case len(g2)+1 < minFill && len(g1) >= minFill:
			g2 = append(g2, e)
			mbr2 = mbr2.Union(e.Rect)
			continue
		}
		d1 := mbr1.Enlargement(e.Rect)
		d2 := mbr2.Enlargement(e.Rect)
		if d1 < d2 || (d1 == d2 && len(g1) <= len(g2)) {
			g1 = append(g1, e)
			mbr1 = mbr1.Union(e.Rect)
		} else {
			g2 = append(g2, e)
			mbr2 = mbr2.Union(e.Rect)
		}
	}
	return rebalanceMin(g1, g2, minFill)
}

func pickSeedsLinear(entries []Entry) (int, int) {
	// For each dimension find the entry with the highest low side and the
	// one with the lowest high side; normalize separation by the width.
	var (
		bestSep  = -math.MaxFloat64
		bs1, bs2 = 0, 1
		loX, hiX = math.MaxFloat64, -math.MaxFloat64
		loY, hiY = math.MaxFloat64, -math.MaxFloat64
		maxLoX   = -math.MaxFloat64
		minHiX   = math.MaxFloat64
		maxLoY   = -math.MaxFloat64
		minHiY   = math.MaxFloat64
		iMaxLoX  int
		iMinHiX  int
		iMaxLoY  int
		iMinHiY  int
	)
	for i, e := range entries {
		r := e.Rect
		loX = math.Min(loX, r.MinX)
		hiX = math.Max(hiX, r.MaxX)
		loY = math.Min(loY, r.MinY)
		hiY = math.Max(hiY, r.MaxY)
		if r.MinX > maxLoX {
			maxLoX, iMaxLoX = r.MinX, i
		}
		if r.MaxX < minHiX {
			minHiX, iMinHiX = r.MaxX, i
		}
		if r.MinY > maxLoY {
			maxLoY, iMaxLoY = r.MinY, i
		}
		if r.MaxY < minHiY {
			minHiY, iMinHiY = r.MaxY, i
		}
	}
	if w := hiX - loX; w > 0 && iMaxLoX != iMinHiX {
		if sep := (maxLoX - minHiX) / w; sep > bestSep {
			bestSep, bs1, bs2 = sep, iMinHiX, iMaxLoX
		}
	}
	if h := hiY - loY; h > 0 && iMaxLoY != iMinHiY {
		if sep := (maxLoY - minHiY) / h; sep > bestSep {
			bestSep, bs1, bs2 = sep, iMinHiY, iMaxLoY
		}
	}
	if bs1 == bs2 {
		bs2 = (bs1 + 1) % len(entries)
	}
	return bs1, bs2
}

// splitRStar implements the R*-tree split: choose the axis with the
// minimum total margin over all valid distributions, then the
// distribution with minimum overlap (ties by minimum area).
func splitRStar(entries []Entry, minFill int) (g1, g2 []Entry) {
	type axisSort struct {
		byMin func(i, j int) bool
		byMax func(i, j int) bool
	}
	es := entries
	sortBy := func(less func(i, j int) bool) { sort.SliceStable(es, less) }

	axes := []axisSort{
		{ // x axis
			byMin: func(i, j int) bool { return es[i].Rect.MinX < es[j].Rect.MinX },
			byMax: func(i, j int) bool { return es[i].Rect.MaxX < es[j].Rect.MaxX },
		},
		{ // y axis
			byMin: func(i, j int) bool { return es[i].Rect.MinY < es[j].Rect.MinY },
			byMax: func(i, j int) bool { return es[i].Rect.MaxY < es[j].Rect.MaxY },
		},
	}

	n := len(es)
	marginOf := func() float64 {
		total := 0.0
		for k := minFill; k <= n-minFill; k++ {
			l := geom.UnionAll(rectsOf(es[:k]))
			r := geom.UnionAll(rectsOf(es[k:]))
			total += l.Margin() + r.Margin()
		}
		return total
	}

	bestAxis, bestMargin := 0, math.MaxFloat64
	bestUseMax := false
	for a, ax := range axes {
		sortBy(ax.byMin)
		if m := marginOf(); m < bestMargin {
			bestMargin, bestAxis, bestUseMax = m, a, false
		}
		sortBy(ax.byMax)
		if m := marginOf(); m < bestMargin {
			bestMargin, bestAxis, bestUseMax = m, a, true
		}
	}
	if bestUseMax {
		sortBy(axes[bestAxis].byMax)
	} else {
		sortBy(axes[bestAxis].byMin)
	}

	bestK, bestOverlap, bestArea := minFill, math.MaxFloat64, math.MaxFloat64
	for k := minFill; k <= n-minFill; k++ {
		l := geom.UnionAll(rectsOf(es[:k]))
		r := geom.UnionAll(rectsOf(es[k:]))
		ov := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	g1 = append(g1, es[:bestK]...)
	g2 = append(g2, es[bestK:]...)
	return g1, g2
}

func rectsOf(es []Entry) []geom.Rect {
	out := make([]geom.Rect, len(es))
	for i := range es {
		out[i] = es[i].Rect
	}
	return out
}

// rebalanceMin moves entries from the larger group to the smaller until
// both meet minFill. Movement picks the entry whose removal shrinks the
// donor least (by enlargement of the recipient).
func rebalanceMin(g1, g2 []Entry, minFill int) ([]Entry, []Entry) {
	for len(g1) < minFill && len(g2) > minFill {
		i := cheapestDonor(g2, g1)
		g1 = append(g1, g2[i])
		g2 = append(g2[:i], g2[i+1:]...)
	}
	for len(g2) < minFill && len(g1) > minFill {
		i := cheapestDonor(g1, g2)
		g2 = append(g2, g1[i])
		g1 = append(g1[:i], g1[i+1:]...)
	}
	return g1, g2
}

func cheapestDonor(from, to []Entry) int {
	mbr := geom.UnionAll(rectsOf(to))
	best, bestCost := 0, math.MaxFloat64
	for i := range from {
		if c := mbr.Enlargement(from[i].Rect); c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}
