package rtree

import (
	"fmt"
	"sort"

	"burtree/internal/geom"
	"burtree/internal/pagestore"
)

// Insert adds a data object with the given bounding rectangle, descending
// top-down from the root (Guttman's algorithm, with optional R*-style
// forced reinsertion on the first overflow per level).
//
// Insert does not check for duplicate object ids; callers that need
// uniqueness enforce it above this layer (the facade keeps an object
// table).
func (t *Tree) Insert(oid OID, rect geom.Rect) error {
	if !rect.Valid() {
		return fmt.Errorf("rtree: insert %d: invalid rect %v", oid, rect)
	}
	if t.root == pagestore.InvalidPage {
		root := t.allocNode(0)
		root.Entries = append(root.Entries, Entry{Rect: rect, OID: oid})
		root.Self = rect
		if err := t.WriteNode(root); err != nil {
			return err
		}
		t.setRoot(root.Page, 1)
		t.notifyPlaced(oid, root.Page)
		t.size++
		return nil
	}
	op := &insertOp{reinserted: make(map[int]bool)}
	if err := t.insertEntry(nil, t.root, Entry{Rect: rect, OID: oid}, 0, op); err != nil {
		return err
	}
	if err := t.drainReinserts(op); err != nil {
		return err
	}
	t.size++
	return nil
}

// InsertEntryAt performs a standard R-tree insertion of e at targetLevel,
// descending from the node on page start instead of the root. abovePath
// lists the ancestor chain from the root down to start's parent; it is
// consulted (and those pages read) only when a split or MBR change must
// propagate above start. The GBU strategy supplies this chain from its
// main-memory summary structure, which is what makes ascending cheaper
// than a full top-down insert.
//
// The caller is responsible for accounting (size) when e is a data entry
// that is logically new; for GBU updates the object count is unchanged.
func (t *Tree) InsertEntryAt(abovePath []pagestore.PageID, start pagestore.PageID, e Entry, targetLevel int) error {
	op := &insertOp{reinserted: make(map[int]bool)}
	if err := t.insertEntry(abovePath, start, e, targetLevel, op); err != nil {
		return err
	}
	return t.drainReinserts(op)
}

// insertOp carries per-operation state: the set of levels already treated
// with forced reinsertion and the queue of entries awaiting reinsertion.
type insertOp struct {
	reinserted map[int]bool
	pending    []pendingReinsert
}

type pendingReinsert struct {
	e     Entry
	level int
}

func (t *Tree) drainReinserts(op *insertOp) error {
	for len(op.pending) > 0 {
		p := op.pending[0]
		op.pending = op.pending[1:]
		if err := t.insertEntry(nil, t.root, p.e, p.level, op); err != nil {
			return err
		}
	}
	return nil
}

// insertEntry descends from start to targetLevel, adds e, and repairs the
// tree on the way back up. abovePath (root first) is consulted only when
// changes propagate above start.
func (t *Tree) insertEntry(abovePath []pagestore.PageID, start pagestore.PageID, e Entry, targetLevel int, op *insertOp) error {
	// Descend, choosing the subtree needing least enlargement.
	var path []*Node
	cur := start
	for {
		n, err := t.ReadNode(cur)
		if err != nil {
			return err
		}
		path = append(path, n)
		if n.Level == targetLevel {
			break
		}
		if n.Level < targetLevel || n.IsLeaf() {
			return fmt.Errorf("rtree: insert at level %d: descent hit level %d", targetLevel, n.Level)
		}
		cur = n.Entries[chooseSubtree(n, e.Rect)].Child
	}

	target := path[len(path)-1]
	target.Entries = append(target.Entries, e)
	target.Self = target.Self.Union(e.Rect)
	if target.IsLeaf() {
		t.notifyPlaced(e.OID, target.Page)
	} else if t.cfg.ParentPointers {
		if err := t.setParent(e.Child, target.Page); err != nil {
			return err
		}
	}
	return t.adjustUp(path, abovePath, op)
}

// adjustUp writes the deepest node of path and propagates MBR changes and
// splits toward the root, continuing into abovePath if necessary.
func (t *Tree) adjustUp(path []*Node, abovePath []pagestore.PageID, op *insertOp) error {
	child := path[len(path)-1]
	isRoot := len(path) == 1 && len(abovePath) == 0 && child.Page == t.root

	split, err := t.resolveOverflow(child, isRoot, op)
	if err != nil {
		return err
	}
	if err := t.WriteNode(child); err != nil {
		return err
	}

	// Walk up through the in-memory path, then lazily through abovePath.
	above := len(abovePath)
	for i := len(path) - 2; i >= -above; i-- {
		var parent *Node
		if i >= 0 {
			parent = path[i]
		} else {
			parent, err = t.ReadNode(abovePath[above+i])
			if err != nil {
				return err
			}
		}
		idx := parent.FindChild(child.Page)
		if idx < 0 {
			return fmt.Errorf("rtree: node %d missing child entry for %d", parent.Page, child.Page)
		}
		changed := false
		if parent.Entries[idx].Rect != child.Self {
			parent.Entries[idx].Rect = child.Self
			changed = true
		}
		if split != nil {
			parent.Entries = append(parent.Entries, Entry{Rect: split.Self, Child: split.Page})
			if t.cfg.ParentPointers {
				if err := t.setParent(split.Page, parent.Page); err != nil {
					return err
				}
			}
			changed = true
		}
		if !changed {
			return nil // nothing to propagate further
		}
		parent.Self = parent.EntriesMBR()
		parentIsRoot := (i == -above) && parent.Page == t.root
		split, err = t.resolveOverflow(parent, parentIsRoot, op)
		if err != nil {
			return err
		}
		if err := t.WriteNode(parent); err != nil {
			return err
		}
		child = parent
	}

	if split != nil {
		// The split reached the top of the chain; child must be the root.
		if child.Page != t.root {
			return fmt.Errorf("rtree: split escaped the ancestor chain at node %d", child.Page)
		}
		return t.growRoot(child, split)
	}
	return nil
}

// resolveOverflow handles an over-full node: forced reinsertion on the
// first overflow of a level per operation, a split otherwise. It returns
// the new sibling node (already written) when a split occurred. The caller
// writes n itself.
func (t *Tree) resolveOverflow(n *Node, isRoot bool, op *insertOp) (*Node, error) {
	if len(n.Entries) <= t.maxEntries {
		return nil, nil
	}
	if t.cfg.ReinsertFraction > 0 && !isRoot && !op.reinserted[n.Level] {
		op.reinserted[n.Level] = true
		t.forceReinsert(n, op)
		return nil, nil
	}
	return t.splitNode(n)
}

// forceReinsert removes the ReinsertFraction of entries whose centers lie
// farthest from the node's center and queues them for reinsertion at the
// same level (R*-tree overflow treatment).
func (t *Tree) forceReinsert(n *Node, op *insertOp) {
	k := int(t.cfg.ReinsertFraction * float64(len(n.Entries)))
	if k < 1 {
		k = 1
	}
	if max := len(n.Entries) - t.minEntries; k > max {
		k = max
	}
	c := n.EntriesMBR().Center()
	type distEntry struct {
		d float64
		e Entry
	}
	ds := make([]distEntry, len(n.Entries))
	for i, e := range n.Entries {
		ds[i] = distEntry{geom.DistSq(c, e.Rect.Center()), e}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d > ds[j].d })
	n.Entries = n.Entries[:0]
	for _, de := range ds[k:] {
		n.Entries = append(n.Entries, de.e)
	}
	n.Self = n.EntriesMBR()
	for _, de := range ds[:k] {
		op.pending = append(op.pending, pendingReinsert{de.e, n.Level})
	}
	t.io.CountReinserts(k)
}

// splitNode divides n, writes the new sibling, and returns it. n keeps
// the first group; the caller writes n.
func (t *Tree) splitNode(n *Node) (*Node, error) {
	g1, g2 := splitEntries(n.Entries, t.minEntries, t.cfg.Split)
	nn := t.allocNode(n.Level)
	nn.Parent = n.Parent
	n.Entries = g1
	n.Self = n.EntriesMBR()
	nn.Entries = g2
	nn.Self = nn.EntriesMBR()
	t.io.CountSplit()

	// Bookkeeping for the entries that moved to the new node: secondary
	// index updates for data entries, parent-pointer rewrites for child
	// nodes (the LBU maintenance cost the paper calls out).
	if nn.IsLeaf() {
		for _, e := range nn.Entries {
			t.notifyPlaced(e.OID, nn.Page)
		}
	} else if t.cfg.ParentPointers {
		for _, e := range nn.Entries {
			if err := t.setParent(e.Child, nn.Page); err != nil {
				return nil, err
			}
		}
	}
	if err := t.WriteNode(nn); err != nil {
		return nil, err
	}
	return nn, nil
}

// growRoot installs a new root above the two nodes of a root split.
func (t *Tree) growRoot(oldRoot, sibling *Node) error {
	root := t.allocNode(oldRoot.Level + 1)
	root.Entries = []Entry{
		{Rect: oldRoot.Self, Child: oldRoot.Page},
		{Rect: sibling.Self, Child: sibling.Page},
	}
	root.Self = root.EntriesMBR()
	if err := t.WriteNode(root); err != nil {
		return err
	}
	if t.cfg.ParentPointers {
		if err := t.setParent(oldRoot.Page, root.Page); err != nil {
			return err
		}
		if err := t.setParent(sibling.Page, root.Page); err != nil {
			return err
		}
	}
	t.setRoot(root.Page, t.height+1)
	return nil
}

// setParent rewrites the parent pointer of the node on page child. Each
// call costs one read and one write, which is exactly the maintenance
// overhead the paper attributes to parent-pointer schemes.
func (t *Tree) setParent(child, parent pagestore.PageID) error {
	n, err := t.ReadNode(child)
	if err != nil {
		return err
	}
	if n.Parent == parent {
		return nil
	}
	n.Parent = parent
	return t.WriteNode(n)
}

// chooseSubtree returns the index of the entry needing least area
// enlargement to cover r, breaking ties by smaller area (Guttman).
func chooseSubtree(n *Node, r geom.Rect) int {
	best := 0
	bestEnl := n.Entries[0].Rect.Enlargement(r)
	bestArea := n.Entries[0].Rect.Area()
	for i := 1; i < len(n.Entries); i++ {
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}
