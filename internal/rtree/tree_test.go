package rtree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"burtree/internal/buffer"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/stats"
)

// newTestTree builds a tree over a fresh simulated disk. bufferPages == 0
// disables caching so I/O assertions are deterministic.
func newTestTree(t testing.TB, pageSize, bufferPages int, cfg Config) *Tree {
	t.Helper()
	store := pagestore.New(pageSize, &stats.IO{})
	pool := buffer.New(store, bufferPages)
	return New(pool, cfg)
}

// oracle is a brute-force mirror of the tree contents.
type oracle map[OID]geom.Rect

func (o oracle) search(q geom.Rect) []OID {
	var out []OID
	for oid, r := range o {
		if q.Intersects(r) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIDs(ids []OID) []OID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func checkAgainstOracle(t *testing.T, tr *Tree, o oracle, queries int, rng *rand.Rand) {
	t.Helper()
	for q := 0; q < queries; q++ {
		query := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		got, err := tr.SearchCollect(query)
		if err != nil {
			t.Fatal(err)
		}
		want := o.search(query)
		got = sortedIDs(got)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", query, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: result %d = %d, want %d", query, i, got[i], want[i])
			}
		}
	}
}

func uniformPoint(rng *rand.Rand) geom.Point {
	return geom.Point{X: rng.Float64(), Y: rng.Float64()}
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	if tr.Height() != 0 || tr.Size() != 0 {
		t.Fatalf("fresh tree height=%d size=%d", tr.Height(), tr.Size())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ids, err := tr.SearchCollect(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if err != nil || ids != nil {
		t.Fatalf("search on empty tree = %v, %v", ids, err)
	}
	if _, err := tr.RootMBR(); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("RootMBR on empty tree err = %v", err)
	}
	if err := tr.Delete(1, geom.Rect{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete on empty tree err = %v", err)
	}
}

func TestSingleInsert(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	p := geom.Point{X: 0.5, Y: 0.5}
	if err := tr.Insert(1, geom.RectFromPoint(p)); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.Size() != 1 {
		t.Fatalf("height=%d size=%d", tr.Height(), tr.Size())
	}
	mbr, err := tr.RootMBR()
	if err != nil {
		t.Fatal(err)
	}
	if mbr != geom.RectFromPoint(p) {
		t.Fatalf("root MBR = %v", mbr)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertInvalidRect(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	if err := tr.Insert(1, geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}); err == nil {
		t.Fatal("invalid rect accepted")
	}
}

func TestManyInsertsInvariantsAndOracle(t *testing.T) {
	for _, cfg := range []Config{
		{Split: SplitQuadratic},
		{Split: SplitLinear},
		{Split: SplitRStar},
		{Split: SplitQuadratic, ReinsertFraction: 0.3},
		{Split: SplitQuadratic, ParentPointers: true},
		{Split: SplitQuadratic, ReinsertFraction: 0.3, ParentPointers: true},
	} {
		cfg := cfg
		t.Run(cfg.Split.String()+reinsertTag(cfg), func(t *testing.T) {
			tr := newTestTree(t, 512, 0, cfg)
			rng := rand.New(rand.NewSource(7))
			o := oracle{}
			const n = 1200
			for i := 0; i < n; i++ {
				p := uniformPoint(rng)
				r := geom.RectFromPoint(p)
				if err := tr.Insert(OID(i), r); err != nil {
					t.Fatal(err)
				}
				o[OID(i)] = r
			}
			if tr.Size() != n {
				t.Fatalf("size = %d, want %d", tr.Size(), n)
			}
			if tr.Height() < 3 {
				t.Fatalf("height = %d; expected a multi-level tree", tr.Height())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, tr, o, 30, rng)
		})
	}
}

func reinsertTag(cfg Config) string {
	tag := ""
	if cfg.ReinsertFraction > 0 {
		tag += "+reinsert"
	}
	if cfg.ParentPointers {
		tag += "+parent"
	}
	return tag
}

func TestRectDataInsertSearch(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(11))
	o := oracle{}
	for i := 0; i < 600; i++ {
		c := uniformPoint(rng)
		r := geom.Rect{MinX: c.X, MinY: c.Y, MaxX: c.X + rng.Float64()*0.05, MaxY: c.Y + rng.Float64()*0.05}
		if err := tr.Insert(OID(i), r); err != nil {
			t.Fatal(err)
		}
		o[OID(i)] = r
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, tr, o, 40, rng)
}

func TestDeleteAll(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(3))
	o := oracle{}
	const n = 800
	for i := 0; i < n; i++ {
		r := geom.RectFromPoint(uniformPoint(rng))
		if err := tr.Insert(OID(i), r); err != nil {
			t.Fatal(err)
		}
		o[OID(i)] = r
	}
	// Delete in random order, validating periodically.
	order := rng.Perm(n)
	for k, idx := range order {
		oid := OID(idx)
		if err := tr.Delete(oid, o[oid]); err != nil {
			t.Fatalf("delete %d (step %d): %v", oid, k, err)
		}
		delete(o, oid)
		if k%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", k, err)
			}
		}
	}
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Fatalf("after delete-all: size=%d height=%d", tr.Size(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNotFound(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	r := geom.RectFromPoint(geom.Point{X: 0.5, Y: 0.5})
	if err := tr.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(2, r); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing oid delete err = %v", err)
	}
	// Wrong location hint: containment search cannot find it.
	if err := tr.Delete(1, geom.RectFromPoint(geom.Point{X: 0.1, Y: 0.1})); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wrong-hint delete err = %v", err)
	}
	if tr.Size() != 1 {
		t.Fatalf("failed deletes changed size to %d", tr.Size())
	}
}

func TestMixedInsertDeleteRandomized(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{ReinsertFraction: 0.3},
		{ParentPointers: true},
		{Split: SplitRStar, ReinsertFraction: 0.3},
	} {
		cfg := cfg
		t.Run(cfg.Split.String()+reinsertTag(cfg), func(t *testing.T) {
			tr := newTestTree(t, 512, 8, cfg)
			rng := rand.New(rand.NewSource(29))
			o := oracle{}
			next := OID(0)
			live := []OID{}
			for step := 0; step < 3000; step++ {
				if len(live) == 0 || rng.Float64() < 0.6 {
					r := geom.RectFromPoint(uniformPoint(rng))
					if err := tr.Insert(next, r); err != nil {
						t.Fatal(err)
					}
					o[next] = r
					live = append(live, next)
					next++
				} else {
					i := rng.Intn(len(live))
					oid := live[i]
					if err := tr.Delete(oid, o[oid]); err != nil {
						t.Fatalf("step %d delete %d: %v", step, oid, err)
					}
					delete(o, oid)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				if step%499 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Size() != len(o) {
				t.Fatalf("size = %d, oracle has %d", tr.Size(), len(o))
			}
			checkAgainstOracle(t, tr, o, 25, rng)
		})
	}
}

func TestTopDownUpdate(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(5))
	o := oracle{}
	const n = 500
	for i := 0; i < n; i++ {
		r := geom.RectFromPoint(uniformPoint(rng))
		if err := tr.Insert(OID(i), r); err != nil {
			t.Fatal(err)
		}
		o[OID(i)] = r
	}
	for step := 0; step < 2000; step++ {
		oid := OID(rng.Intn(n))
		old := o[oid]
		c := old.Center()
		p := geom.Point{X: c.X + (rng.Float64()-0.5)*0.1, Y: c.Y + (rng.Float64()-0.5)*0.1}
		newRect := geom.RectFromPoint(p)
		if err := tr.Update(oid, old, newRect); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		o[oid] = newRect
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != n {
		t.Fatalf("size after updates = %d", tr.Size())
	}
	checkAgainstOracle(t, tr, o, 30, rng)
}

func TestContains(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	r := geom.RectFromPoint(geom.Point{X: 0.3, Y: 0.3})
	if err := tr.Insert(9, r); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr.Contains(9, r); err != nil || !ok {
		t.Fatalf("Contains(9) = %v, %v", ok, err)
	}
	if ok, err := tr.Contains(8, r); err != nil || ok {
		t.Fatalf("Contains(8) = %v, %v", ok, err)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		if err := tr.Insert(OID(i), geom.RectFromPoint(uniformPoint(rng))); err != nil {
			t.Fatal(err)
		}
	}
	visits := 0
	err := tr.Search(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, func(OID, geom.Rect) bool {
		visits++
		return visits < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 5 {
		t.Fatalf("early stop visited %d, want 5", visits)
	}
}

func TestNearestK(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(17))
	o := oracle{}
	const n = 400
	for i := 0; i < n; i++ {
		r := geom.RectFromPoint(uniformPoint(rng))
		if err := tr.Insert(OID(i), r); err != nil {
			t.Fatal(err)
		}
		o[OID(i)] = r
	}
	for trial := 0; trial < 20; trial++ {
		p := uniformPoint(rng)
		k := 1 + rng.Intn(10)
		got, err := tr.NearestK(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("NearestK returned %d, want %d", len(got), k)
		}
		// Brute-force the k nearest.
		type cand struct {
			oid OID
			d   float64
		}
		var all []cand
		for oid, r := range o {
			all = append(all, cand{oid, r.MinDistPoint(p)})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < k; i++ {
			if got[i].Dist != all[i].d {
				t.Fatalf("neighbor %d dist = %v, want %v", i, got[i].Dist, all[i].d)
			}
		}
		// Results must be sorted.
		for i := 1; i < k; i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("results not sorted at %d", i)
			}
		}
	}
	if res, err := tr.NearestK(geom.Point{}, 0); err != nil || res != nil {
		t.Fatalf("NearestK(k=0) = %v, %v", res, err)
	}
}

func TestSplitCountersAdvance(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{ReinsertFraction: 0.3})
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		if err := tr.Insert(OID(i), geom.RectFromPoint(uniformPoint(rng))); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.IO().Snapshot()
	if snap.Splits == 0 {
		t.Fatal("no splits recorded after 500 inserts on 512B pages")
	}
	if snap.Reinserts == 0 {
		t.Fatal("no reinserts recorded with ReinsertFraction 0.3")
	}
	if snap.Reads == 0 || snap.Writes == 0 {
		t.Fatalf("io counters not advancing: %v", snap)
	}
}

func TestComputeStats(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(31))
	const n = 600
	for i := 0; i < n; i++ {
		if err := tr.Insert(OID(i), geom.RectFromPoint(uniformPoint(rng))); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Size != n || s.Height != tr.Height() || len(s.Levels) != tr.Height() {
		t.Fatalf("stats = %+v", s)
	}
	totalEntries := 0
	for _, l := range s.Levels {
		if l.Nodes == 0 {
			t.Fatalf("level %d has no nodes", l.Level)
		}
		if l.AvgFill <= 0 || l.AvgFill > 1 {
			t.Fatalf("level %d fill = %v", l.Level, l.AvgFill)
		}
		if l.Level == 0 {
			totalEntries = l.Entries
		}
	}
	if totalEntries != n {
		t.Fatalf("leaf entries = %d, want %d", totalEntries, n)
	}
}

func TestInsertEntryAtSubtree(t *testing.T) {
	// Build a 3-level tree, then insert directly below a level-1 node
	// using an explicit ancestor chain, as GBU does.
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 900; i++ {
		if err := tr.Insert(OID(i), geom.RectFromPoint(uniformPoint(rng))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, want >= 3", tr.Height())
	}
	root, err := tr.ReadNode(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := tr.ReadNode(root.Entries[0].Child)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a point inside mid's MBR, starting at mid.
	c := mid.Self.Center()
	e := Entry{Rect: geom.RectFromPoint(c), OID: 99999}
	if err := tr.InsertEntryAt([]pagestore.PageID{tr.Root()}, mid.Page, e, 0); err != nil {
		t.Fatal(err)
	}
	tr.size++ // InsertEntryAt leaves accounting to the caller
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.SearchCollect(geom.RectFromPoint(c))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, oid := range got {
		if oid == 99999 {
			found = true
		}
	}
	if !found {
		t.Fatal("entry inserted at subtree not found by search")
	}
}

func TestInsertEntryAtPropagatesSplitsThroughAbovePath(t *testing.T) {
	// Repeatedly insert into the same subtree until splits must propagate
	// through the supplied ancestor chain; the tree must stay valid.
	tr := newTestTree(t, 512, 0, Config{})
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 900; i++ {
		if err := tr.Insert(OID(i), geom.RectFromPoint(uniformPoint(rng))); err != nil {
			t.Fatal(err)
		}
	}
	base := tr.Size()
	root, err := tr.ReadNode(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	target := root.Entries[0].Child
	mid, err := tr.ReadNode(target)
	if err != nil {
		t.Fatal(err)
	}
	c := mid.Self.Center()
	added := 0
	for i := 0; i < 400; i++ {
		// Root page may change when the root splits; re-resolve the chain
		// each iteration like the summary structure would.
		root, err := tr.ReadNode(tr.Root())
		if err != nil {
			t.Fatal(err)
		}
		// Find the current ancestor chain of `target` by descent.
		chain, ok := findChain(t, tr, root, target, nil)
		if !ok {
			// The node may have been split away; pick a fresh target.
			target = root.Entries[0].Child
			chain = []pagestore.PageID{tr.Root()}
		}
		p := geom.Point{X: c.X + (rng.Float64()-0.5)*0.01, Y: c.Y + (rng.Float64()-0.5)*0.01}
		e := Entry{Rect: geom.RectFromPoint(p), OID: OID(100000 + i)}
		if err := tr.InsertEntryAt(chain, target, e, 0); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		tr.size++
		added++
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != base+added {
		t.Fatalf("size = %d, want %d", tr.Size(), base+added)
	}
}

// findChain returns the page-id chain from the root down to (but not
// including) target, or ok=false if target is not reachable.
func findChain(t *testing.T, tr *Tree, n *Node, target pagestore.PageID, acc []pagestore.PageID) ([]pagestore.PageID, bool) {
	t.Helper()
	acc = append(acc, n.Page)
	if n.IsLeaf() {
		return nil, false
	}
	for _, e := range n.Entries {
		if e.Child == target {
			out := make([]pagestore.PageID, len(acc))
			copy(out, acc)
			return out, true
		}
		child, err := tr.ReadNode(e.Child)
		if err != nil {
			t.Fatal(err)
		}
		if child.IsLeaf() {
			continue
		}
		if chain, ok := findChain(t, tr, child, target, acc); ok {
			return chain, true
		}
	}
	return nil, false
}

func TestSetListenerOnNonEmptyTreePanics(t *testing.T) {
	tr := newTestTree(t, 512, 0, Config{})
	if err := tr.Insert(1, geom.RectFromPoint(geom.Point{X: 0.5, Y: 0.5})); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetListener on non-empty tree did not panic")
		}
	}()
	tr.SetListener(nil)
}
