package rtree

import (
	"fmt"

	"burtree/internal/pagestore"
)

// CheckInvariants walks the whole tree and verifies its structural
// invariants. It is used pervasively by the test suite after random
// operation sequences.
//
// Invariants checked:
//   - levels decrease by exactly one from parent to child; leaves are
//     level 0 and all at the same depth;
//   - every parent entry rectangle equals the child's official MBR
//     (the mirror invariant — bottom-up MBR extensions update both ends);
//   - every node's official MBR contains the MBR of its entries (leaves
//     may be ε-extended beyond the tight bound, never the reverse);
//   - non-root nodes hold between MinEntries and MaxEntries entries, the
//     root holds at least 2 when internal, at least 1 when leaf;
//   - no page is referenced twice; object ids are unique;
//   - parent pointers (when configured) name the actual parent;
//   - the tree's cached size and height match reality.
func (t *Tree) CheckInvariants() error {
	if t.root == pagestore.InvalidPage {
		if t.height != 0 || t.size != 0 {
			return fmt.Errorf("rtree: empty tree with height %d size %d", t.height, t.size)
		}
		return nil
	}
	seenPages := make(map[pagestore.PageID]bool)
	seenOIDs := make(map[OID]bool)
	count := 0

	root, err := t.ReadNode(t.root)
	if err != nil {
		return err
	}
	if root.Level != t.height-1 {
		return fmt.Errorf("rtree: root level %d does not match height %d", root.Level, t.height)
	}
	if root.IsLeaf() {
		if len(root.Entries) < 1 {
			return fmt.Errorf("rtree: empty leaf root persisted")
		}
	} else if len(root.Entries) < 2 {
		return fmt.Errorf("rtree: internal root with %d entries", len(root.Entries))
	}

	var walk func(n *Node, parent pagestore.PageID) error
	walk = func(n *Node, parent pagestore.PageID) error {
		if seenPages[n.Page] {
			return fmt.Errorf("rtree: page %d referenced twice", n.Page)
		}
		seenPages[n.Page] = true
		if len(n.Entries) > t.maxEntries {
			return fmt.Errorf("rtree: node %d overflows: %d > %d", n.Page, len(n.Entries), t.maxEntries)
		}
		if n.Page != t.root && len(n.Entries) < t.minEntries {
			return fmt.Errorf("rtree: node %d underfull: %d < %d", n.Page, len(n.Entries), t.minEntries)
		}
		if len(n.Entries) > 0 && !n.Self.ContainsRect(n.EntriesMBR()) {
			return fmt.Errorf("rtree: node %d self MBR %v does not contain entries MBR %v", n.Page, n.Self, n.EntriesMBR())
		}
		if t.cfg.ParentPointers && n.Parent != parent {
			return fmt.Errorf("rtree: node %d parent pointer %d, want %d", n.Page, n.Parent, parent)
		}
		if n.IsLeaf() {
			for _, e := range n.Entries {
				if seenOIDs[e.OID] {
					return fmt.Errorf("rtree: oid %d appears twice", e.OID)
				}
				seenOIDs[e.OID] = true
				count++
			}
			return nil
		}
		for _, e := range n.Entries {
			child, err := t.ReadNode(e.Child)
			if err != nil {
				return err
			}
			if child.Level != n.Level-1 {
				return fmt.Errorf("rtree: node %d (level %d) has child %d at level %d", n.Page, n.Level, child.Page, child.Level)
			}
			if e.Rect != child.Self {
				return fmt.Errorf("rtree: node %d entry rect %v != child %d self MBR %v", n.Page, e.Rect, child.Page, child.Self)
			}
			if err := walk(child, n.Page); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, pagestore.InvalidPage); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: cached size %d, counted %d entries", t.size, count)
	}
	return nil
}

// LevelStats summarizes one level of the tree.
type LevelStats struct {
	Level     int
	Nodes     int
	Entries   int
	AvgFill   float64 // mean entries per node / fanout
	AreaSum   float64 // total MBR area at this level
	Overlap   float64 // total pairwise overlap area between sibling MBRs
	Perimeter float64
}

// Stats describes the current shape of the tree.
type Stats struct {
	Height      int
	Size        int
	Nodes       int
	Levels      []LevelStats
	RootMBRArea float64
}

// ComputeStats walks the tree and returns occupancy and overlap
// statistics per level. Sibling overlap is computed within each parent
// only (the quantity that drives multi-path descents).
func (t *Tree) ComputeStats() (Stats, error) {
	s := Stats{Height: t.height, Size: t.size}
	if t.root == pagestore.InvalidPage {
		return s, nil
	}
	byLevel := make(map[int]*LevelStats)
	var walk func(page pagestore.PageID) error
	walk = func(page pagestore.PageID) error {
		n, err := t.ReadNode(page)
		if err != nil {
			return err
		}
		ls := byLevel[n.Level]
		if ls == nil {
			ls = &LevelStats{Level: n.Level}
			byLevel[n.Level] = ls
		}
		ls.Nodes++
		ls.Entries += len(n.Entries)
		ls.AreaSum += n.Self.Area()
		ls.Perimeter += n.Self.Margin()
		s.Nodes++
		if n.IsLeaf() {
			return nil
		}
		for i := range n.Entries {
			for j := i + 1; j < len(n.Entries); j++ {
				ls.Overlap += n.Entries[i].Rect.OverlapArea(n.Entries[j].Rect)
			}
		}
		for _, e := range n.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return s, err
	}
	for l := 0; l < t.height; l++ {
		ls := byLevel[l]
		if ls == nil {
			continue
		}
		if ls.Nodes > 0 {
			ls.AvgFill = float64(ls.Entries) / float64(ls.Nodes) / float64(t.maxEntries)
		}
		s.Levels = append(s.Levels, *ls)
	}
	root, err := t.ReadNode(t.root)
	if err != nil {
		return s, err
	}
	s.RootMBRArea = root.Self.Area()
	return s, nil
}
