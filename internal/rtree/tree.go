package rtree

import (
	"errors"
	"fmt"
	"sync"

	"burtree/internal/buffer"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/stats"
)

// SplitAlgorithm selects how overflowing nodes are divided.
type SplitAlgorithm int

const (
	// SplitQuadratic is Guttman's quadratic-cost split (the paper's
	// baseline implementation).
	SplitQuadratic SplitAlgorithm = iota
	// SplitLinear is Guttman's linear-cost split.
	SplitLinear
	// SplitRStar is the R*-tree topological split (margin-driven axis
	// choice, minimum-overlap distribution).
	SplitRStar
)

func (s SplitAlgorithm) String() string {
	switch s {
	case SplitQuadratic:
		return "quadratic"
	case SplitLinear:
		return "linear"
	case SplitRStar:
		return "rstar"
	default:
		return fmt.Sprintf("SplitAlgorithm(%d)", int(s))
	}
}

// Config carries the structural parameters of a tree.
type Config struct {
	// MinFillRatio is the minimum node occupancy as a fraction of the
	// fanout (Guttman's m/M). Zero means the default 0.4.
	MinFillRatio float64
	// Split selects the overflow split algorithm.
	Split SplitAlgorithm
	// ReinsertFraction is the share of entries force-reinserted on the
	// first overflow of a level per operation (R*-style). Zero disables
	// forced reinsertion; the paper's baseline R-tree uses reinsertion,
	// so the harness default is 0.3.
	ReinsertFraction float64
	// ParentPointers stores a parent page id in every node. Required by
	// the LBU strategy; costs header space and maintenance writes.
	ParentPointers bool
}

func (c Config) withDefaults() Config {
	if c.MinFillRatio == 0 {
		c.MinFillRatio = 0.4
	}
	if c.MinFillRatio < 0.05 || c.MinFillRatio > 0.5 {
		panic(fmt.Sprintf("rtree: MinFillRatio %v outside (0.05, 0.5]", c.MinFillRatio))
	}
	if c.ReinsertFraction < 0 || c.ReinsertFraction > 0.5 {
		panic(fmt.Sprintf("rtree: ReinsertFraction %v outside [0, 0.5]", c.ReinsertFraction))
	}
	return c
}

// Listener observes structural changes to the tree. The summary structure
// and the secondary object-id index register through it; a nil listener
// turns the tree into the plain top-down baseline with zero bookkeeping
// overhead.
type Listener interface {
	// NodeWritten fires after a node page is (re)written. children is nil
	// for leaves; for internal nodes it lists the child pages in entry
	// order and must not be retained.
	NodeWritten(page pagestore.PageID, level int, self geom.Rect, children []pagestore.PageID, count int)
	// NodeFreed fires when a node page is released.
	NodeFreed(page pagestore.PageID, level int)
	// RootChanged fires when the root page or tree height changes.
	RootChanged(root pagestore.PageID, height int)
	// DataPlaced fires when a data entry is written into a leaf, both on
	// first insertion and whenever it moves between leaves.
	DataPlaced(oid OID, leaf pagestore.PageID)
	// DataRemoved fires when a data entry permanently leaves the tree.
	DataRemoved(oid OID)
}

// Common sentinel errors.
var (
	ErrNotFound  = errors.New("rtree: object not found")
	ErrDuplicate = errors.New("rtree: object id already present")
	ErrEmptyTree = errors.New("rtree: tree is empty")
)

// Tree is a disk-resident R-tree. It is not safe for concurrent use by
// itself; the DGL lock manager in internal/dgl provides isolation for the
// multi-threaded throughput experiment.
type Tree struct {
	pool       *buffer.Pool
	io         *stats.IO
	cfg        Config
	maxEntries int
	minEntries int
	root       pagestore.PageID
	height     int // number of levels; 0 = empty tree
	size       int // number of data entries
	listener   Listener

	// bufPool recycles page-sized scratch buffers. Reads may run
	// concurrently (under a shared latch above this package), so scratch
	// space must not be shared between calls.
	bufPool sync.Pool
}

// New creates an empty tree on the given pool.
func New(pool *buffer.Pool, cfg Config) *Tree {
	cfg = cfg.withDefaults()
	ps := pool.Store().PageSize()
	maxE := MaxEntriesFor(ps, cfg.ParentPointers)
	minE := int(float64(maxE) * cfg.MinFillRatio)
	if minE < 2 {
		minE = 2
	}
	return &Tree{
		pool:       pool,
		io:         pool.Store().IO(),
		cfg:        cfg,
		maxEntries: maxE,
		minEntries: minE,
		root:       pagestore.InvalidPage,
		bufPool:    sync.Pool{New: func() interface{} { return make([]byte, ps) }},
	}
}

// SetListener installs l; pass nil to detach. Must be called before any
// data is inserted so bookkeeping stays consistent.
func (t *Tree) SetListener(l Listener) {
	if t.size > 0 {
		panic("rtree: SetListener on non-empty tree")
	}
	t.listener = l
}

// Config returns the tree's configuration (with defaults applied).
func (t *Tree) Config() Config { return t.cfg }

// MaxEntries returns the node fanout M.
func (t *Tree) MaxEntries() int { return t.maxEntries }

// MinEntries returns the minimum fill m.
func (t *Tree) MinEntries() int { return t.minEntries }

// Height returns the number of levels (0 for an empty tree; leaves are
// level 0, the root of a tree with height h is at level h-1).
func (t *Tree) Height() int { return t.height }

// Size returns the number of data entries.
func (t *Tree) Size() int { return t.size }

// Root returns the root page id, or pagestore.InvalidPage when empty.
func (t *Tree) Root() pagestore.PageID { return t.root }

// Pool returns the buffer pool the tree performs I/O through.
func (t *Tree) Pool() *buffer.Pool { return t.pool }

// IO returns the counter set shared with the pool and store.
func (t *Tree) IO() *stats.IO { return t.io }

// RootMBR returns the MBR of the whole tree.
func (t *Tree) RootMBR() (geom.Rect, error) {
	if t.root == pagestore.InvalidPage {
		return geom.Rect{}, ErrEmptyTree
	}
	n, err := t.ReadNode(t.root)
	if err != nil {
		return geom.Rect{}, err
	}
	return n.Self, nil
}

// ReadNode fetches and decodes the node stored on the given page. Each
// call performs one logical page read (a disk read or a buffer hit).
func (t *Tree) ReadNode(page pagestore.PageID) (*Node, error) {
	n := &Node{Page: page}
	if err := t.readNodeInto(page, n); err != nil {
		return nil, err
	}
	return n, nil
}

func (t *Tree) readNodeInto(page pagestore.PageID, n *Node) error {
	buf := t.bufPool.Get().([]byte)
	defer t.bufPool.Put(buf)
	if err := t.pool.ReadPage(page, buf); err != nil {
		return fmt.Errorf("rtree: reading node %d: %w", page, err)
	}
	n.Page = page
	if err := decodeNode(n, buf, t.cfg.ParentPointers); err != nil {
		return fmt.Errorf("rtree: decoding node %d: %w", page, err)
	}
	return nil
}

// WriteNode encodes and writes the node back to its page, firing the
// listener. Exposed for the bottom-up strategies in internal/core.
func (t *Tree) WriteNode(n *Node) error {
	buf := t.bufPool.Get().([]byte)
	defer t.bufPool.Put(buf)
	if err := encodeNode(n, buf, t.cfg.ParentPointers); err != nil {
		return err
	}
	if err := t.pool.WritePage(n.Page, buf); err != nil {
		return fmt.Errorf("rtree: writing node %d: %w", n.Page, err)
	}
	if t.listener != nil {
		t.listener.NodeWritten(n.Page, n.Level, n.Self, n.ChildPages(), len(n.Entries))
	}
	return nil
}

// allocNode creates a new empty node at the given level.
func (t *Tree) allocNode(level int) *Node {
	return &Node{
		Page:   t.pool.Store().Alloc(),
		Level:  level,
		Parent: pagestore.InvalidPage,
	}
}

// freeNode releases the node's page.
func (t *Tree) freeNode(n *Node) error {
	t.pool.Discard(n.Page)
	if err := t.pool.Store().Free(n.Page); err != nil {
		return err
	}
	if t.listener != nil {
		t.listener.NodeFreed(n.Page, n.Level)
	}
	return nil
}

func (t *Tree) setRoot(page pagestore.PageID, height int) {
	t.root = page
	t.height = height
	if t.listener != nil {
		t.listener.RootChanged(page, height)
	}
}

func (t *Tree) notifyPlaced(oid OID, leaf pagestore.PageID) {
	if t.listener != nil {
		t.listener.DataPlaced(oid, leaf)
	}
}

func (t *Tree) notifyRemoved(oid OID) {
	if t.listener != nil {
		t.listener.DataRemoved(oid)
	}
}

// Flush writes all buffered dirty pages to the store.
func (t *Tree) Flush() error { return t.pool.Flush() }

// AdjustSize corrects the cached entry count when a caller adds or
// removes data entries through the low-level node interface (ReadNode /
// WriteNode / InsertEntryAt) instead of Insert/Delete. The bottom-up
// strategies in internal/core use it.
func (t *Tree) AdjustSize(delta int) { t.size += delta }

// NotifyDataPlaced fires the DataPlaced listener hook on behalf of a
// caller that moved a data entry through the low-level node interface.
func (t *Tree) NotifyDataPlaced(oid OID, leaf pagestore.PageID) {
	t.notifyPlaced(oid, leaf)
}

// NotifyDataRemoved fires the DataRemoved listener hook on behalf of a
// caller that removed a data entry through the low-level node interface.
func (t *Tree) NotifyDataRemoved(oid OID) {
	t.notifyRemoved(oid)
}

// Restore attaches the tree to existing pages (e.g. after loading a
// persisted store): the root page, the height and the entry count are
// taken on trust and then spot-checked by reading the root node. The
// listener RootChanged hook fires so rebuilt auxiliary structures see
// the root. Full verification is available via CheckInvariants.
func (t *Tree) Restore(root pagestore.PageID, height, size int) error {
	if root == pagestore.InvalidPage {
		if height != 0 || size != 0 {
			return fmt.Errorf("rtree: restore of empty tree with height %d size %d", height, size)
		}
		t.setRoot(pagestore.InvalidPage, 0)
		t.size = 0
		return nil
	}
	n, err := t.ReadNode(root)
	if err != nil {
		return fmt.Errorf("rtree: restore: %w", err)
	}
	if n.Level != height-1 {
		return fmt.Errorf("rtree: restore: root level %d does not match height %d", n.Level, height)
	}
	if size < 0 {
		return fmt.Errorf("rtree: restore: negative size %d", size)
	}
	t.setRoot(root, height)
	t.size = size
	return nil
}
