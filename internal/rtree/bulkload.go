package rtree

import (
	"fmt"
	"math"
	"sort"

	"burtree/internal/geom"
	"burtree/internal/pagestore"
)

// Item is one data object for bulk loading.
type Item struct {
	OID  OID
	Rect geom.Rect
}

// BulkLoad builds the tree from scratch using Sort-Tile-Recursive (STR)
// packing. fillFactor (0 < f <= 1) controls node occupancy; the harness
// uses 0.66 to mimic the utilization the paper quotes for grown trees.
// The tree must be empty.
func (t *Tree) BulkLoad(items []Item, fillFactor float64) error {
	if t.root != pagestore.InvalidPage {
		return fmt.Errorf("rtree: BulkLoad on non-empty tree")
	}
	if len(items) == 0 {
		return nil
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return fmt.Errorf("rtree: BulkLoad fill factor %v outside (0,1]", fillFactor)
	}
	cap := int(float64(t.maxEntries) * fillFactor)
	if cap < t.minEntries {
		cap = t.minEntries
	}

	entries := make([]Entry, len(items))
	for i, it := range items {
		if !it.Rect.Valid() {
			return fmt.Errorf("rtree: BulkLoad item %d: invalid rect %v", it.OID, it.Rect)
		}
		entries[i] = Entry{Rect: it.Rect, OID: it.OID}
	}

	level := 0
	for {
		nodes, err := t.packLevel(entries, level, cap)
		if err != nil {
			return err
		}
		if len(nodes) == 1 {
			t.setRoot(nodes[0].Page, level+1)
			if t.cfg.ParentPointers {
				if err := t.fixParents(nodes[0]); err != nil {
					return err
				}
			}
			break
		}
		entries = make([]Entry, len(nodes))
		for i, n := range nodes {
			entries[i] = Entry{Rect: n.Self, Child: n.Page}
		}
		level++
	}
	t.size = len(items)
	return nil
}

// packLevel tiles the entries into nodes of the given level using STR:
// sort by x-center, cut into vertical slices, sort each slice by
// y-center, and chunk.
func (t *Tree) packLevel(entries []Entry, level, cap int) ([]*Node, error) {
	n := len(entries)
	nodeCount := (n + cap - 1) / cap
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	sliceSize := sliceCount * cap

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.Center().X < entries[j].Rect.Center().X
	})

	var nodes []*Node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := entries[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for s := 0; s < len(slice); s += cap {
			e := s + cap
			if e > len(slice) {
				e = len(slice)
			}
			node := t.allocNode(level)
			node.Entries = append(node.Entries, slice[s:e]...)
			node.Self = node.EntriesMBR()
			if err := t.WriteNode(node); err != nil {
				return nil, err
			}
			if level == 0 {
				for _, en := range node.Entries {
					t.notifyPlaced(en.OID, node.Page)
				}
			}
			nodes = append(nodes, node)
		}
	}
	return t.fixTrailingUnderfull(nodes, level, false)
}

// fixTrailingUnderfull repairs the last node of a packed level when it
// holds fewer than minEntries (only the globally last node can be
// underfull: every other slice and chunk is packed exactly full). The
// runt is merged into its predecessor when the union fits in one node;
// otherwise the two are rebalanced evenly — the union then exceeds
// maxEntries ≥ 2·minEntries, so both halves satisfy the minimum.
// prepend keeps curve order for sequentially packed levels (Hilbert):
// entries borrowed from the predecessor go in front of the runt's own.
func (t *Tree) fixTrailingUnderfull(nodes []*Node, level int, prepend bool) ([]*Node, error) {
	if len(nodes) < 2 {
		return nodes, nil
	}
	last := nodes[len(nodes)-1]
	prev := nodes[len(nodes)-2]
	if len(last.Entries) >= t.minEntries {
		return nodes, nil
	}
	total := len(prev.Entries) + len(last.Entries)
	if total <= t.maxEntries {
		moved := last.Entries
		prev.Entries = append(prev.Entries, moved...)
		prev.Self = prev.EntriesMBR()
		if err := t.WriteNode(prev); err != nil {
			return nil, err
		}
		if level == 0 {
			for _, en := range moved {
				t.notifyPlaced(en.OID, prev.Page)
			}
		}
		if err := t.freeNode(last); err != nil {
			return nil, err
		}
		return nodes[:len(nodes)-1], nil
	}
	if total/2 < t.minEntries {
		return nodes, nil // unreachable while maxEntries >= 2*minEntries
	}
	need := total/2 - len(last.Entries)
	moved := prev.Entries[len(prev.Entries)-need:]
	prev.Entries = prev.Entries[:len(prev.Entries)-need]
	if prepend {
		last.Entries = append(append([]Entry(nil), moved...), last.Entries...)
	} else {
		last.Entries = append(last.Entries, moved...)
	}
	prev.Self = prev.EntriesMBR()
	last.Self = last.EntriesMBR()
	if err := t.WriteNode(prev); err != nil {
		return nil, err
	}
	if err := t.WriteNode(last); err != nil {
		return nil, err
	}
	if level == 0 {
		for _, en := range moved {
			t.notifyPlaced(en.OID, last.Page)
		}
	}
	return nodes, nil
}

// fixParents rewrites parent pointers for the whole subtree after a bulk
// load of a parent-pointer tree.
func (t *Tree) fixParents(root *Node) error {
	var walk func(n *Node, parent pagestore.PageID) error
	walk = func(n *Node, parent pagestore.PageID) error {
		n.Parent = parent
		if err := t.WriteNode(n); err != nil {
			return err
		}
		if n.IsLeaf() {
			return nil
		}
		for _, e := range n.Entries {
			child, err := t.ReadNode(e.Child)
			if err != nil {
				return err
			}
			if err := walk(child, n.Page); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, pagestore.InvalidPage)
}
