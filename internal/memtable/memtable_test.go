package memtable

import (
	"errors"
	"testing"
	"time"

	"burtree/internal/geom"
)

func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

// TestEntryTransitions walks the delta state machine for a single
// object through every documented transition.
func TestEntryTransitions(t *testing.T) {
	tb := New(Config{MaxObjects: 100})

	// Fresh insert: not in tree.
	tb.Insert(1, pt(1, 1))
	e, ok := tb.Get(1)
	if !ok || e.InTree || e.Tombstone || e.Pos != pt(1, 1) {
		t.Fatalf("after insert: %+v ok=%v", e, ok)
	}

	// Update of a buffered live entry rewrites Pos only.
	tb.Update(1, pt(2, 2), pt(1, 1))
	e, _ = tb.Get(1)
	if e.InTree || e.Pos != pt(2, 2) {
		t.Fatalf("after update: %+v", e)
	}

	// Delete of a never-in-tree entry cancels outright.
	tb.Delete(1, pt(2, 2))
	if _, ok := tb.Get(1); ok {
		t.Fatal("delete of pending insert should cancel the entry")
	}

	// Update of a tree-resident object (no buffered delta): cur is
	// authoritative.
	tb.Update(7, pt(5, 5), pt(4, 4))
	e, _ = tb.Get(7)
	if !e.InTree || e.Base != pt(4, 4) || e.Pos != pt(5, 5) {
		t.Fatalf("update of tree object: %+v", e)
	}

	// Delete of that entry leaves a tombstone at the original base.
	tb.Delete(7, pt(5, 5))
	e, _ = tb.Get(7)
	if !e.Tombstone || !e.InTree || e.Base != pt(4, 4) {
		t.Fatalf("tombstone: %+v", e)
	}

	// Re-insert over a pending tombstone: the tree-resident copy is
	// revived as a move.
	tb.Insert(7, pt(6, 6))
	e, _ = tb.Get(7)
	if e.Tombstone || !e.InTree || e.Base != pt(4, 4) || e.Pos != pt(6, 6) {
		t.Fatalf("revive: %+v", e)
	}
}

// TestDrainLifecycle checks BeginDrain/EndDrain bookkeeping and the
// two-generation overlay.
func TestDrainLifecycle(t *testing.T) {
	tb := New(Config{MaxObjects: 100})
	tb.Insert(3, pt(3, 3))
	tb.Update(1, pt(1, 1), pt(0, 0))
	tb.Delete(2, pt(2, 2))

	entries := tb.BeginDrain()
	if len(entries) != 3 {
		t.Fatalf("drain entries = %d, want 3", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].ID >= entries[i].ID {
			t.Fatalf("entries not sorted by id: %+v", entries)
		}
	}
	// A second BeginDrain while one is in flight returns nil.
	if tb.BeginDrain() != nil {
		t.Fatal("nested BeginDrain should return nil")
	}
	// Draining entries stay visible.
	if e, ok := tb.Get(2); !ok || !e.Tombstone {
		t.Fatalf("draining tombstone invisible: %+v ok=%v", e, ok)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len=%d during drain, want 3", tb.Len())
	}

	// A write landing mid-drain goes to the new mutable generation and
	// shadows the draining entry; its base comes from the draining
	// entry's post-merge state.
	tb.Update(1, pt(9, 9), pt(1, 1))
	e, _ := tb.Get(1)
	if !e.InTree || e.Base != pt(1, 1) || e.Pos != pt(9, 9) {
		t.Fatalf("mid-drain update: %+v", e)
	}
	snap := tb.Snapshot()
	if snap[1].Pos != pt(9, 9) {
		t.Fatalf("snapshot should prefer mutable generation: %+v", snap[1])
	}
	if len(snap) != 3 {
		t.Fatalf("snapshot size = %d, want 3", len(snap))
	}

	// Insert over a draining tombstone: the tree copy is still
	// condemned post-merge, so the new entry is a fresh insert.
	tb.Insert(2, pt(8, 8))
	e, _ = tb.Get(2)
	if e.InTree || e.Tombstone {
		t.Fatalf("insert over draining tombstone: %+v", e)
	}
	// And deleting it again cancels; the draining tombstone already
	// condemns the tree copy.
	tb.Delete(2, pt(8, 8))
	if e, _ := tb.Get(2); !e.Tombstone {
		t.Fatalf("draining tombstone should show through: %+v", e)
	}

	tb.EndDrain()
	st := tb.Stats()
	if st.Merges != 1 || st.Merged != 3 {
		t.Fatalf("stats after drain: %+v", st)
	}
	// Only id 1 survives in the new mutable generation: id 2's
	// insert+delete cancelled, id 3 drained.
	if tb.Len() != 1 {
		t.Fatalf("Len=%d after drain, want 1", tb.Len())
	}
}

func TestNeedsMerge(t *testing.T) {
	tb := New(Config{MaxObjects: 2})
	now := time.Now()
	if tb.NeedsMerge(now) {
		t.Fatal("empty table should not need a merge")
	}
	tb.Insert(1, pt(1, 1))
	if tb.NeedsMerge(now) {
		t.Fatal("below size threshold")
	}
	tb.Insert(2, pt(2, 2))
	if !tb.NeedsMerge(now) {
		t.Fatal("size threshold tripped")
	}

	aged := New(Config{MaxObjects: 100, MaxAge: time.Millisecond})
	aged.Insert(1, pt(1, 1))
	if aged.NeedsMerge(time.Now()) {
		t.Fatal("age threshold should not trip immediately")
	}
	if !aged.NeedsMerge(time.Now().Add(10 * time.Millisecond)) {
		t.Fatal("age threshold should trip")
	}
}

func TestFailIsSticky(t *testing.T) {
	tb := New(Config{MaxObjects: 1})
	tb.Insert(1, pt(1, 1))
	entries := tb.BeginDrain()
	if len(entries) != 1 {
		t.Fatalf("drain = %v", entries)
	}
	sentinel := errors.New("apply failed")
	tb.Fail(sentinel)
	tb.Fail(errors.New("later")) // first error wins
	if !errors.Is(tb.Err(), sentinel) {
		t.Fatalf("Err = %v", tb.Err())
	}
	// The draining generation is retained for reads...
	if _, ok := tb.Get(1); !ok {
		t.Fatal("failed drain should keep entries visible")
	}
	// ...and all further merging stops.
	tb.Insert(2, pt(2, 2))
	if tb.NeedsMerge(time.Now()) {
		t.Fatal("NeedsMerge after Fail")
	}
	if tb.BeginDrain() != nil {
		t.Fatal("BeginDrain after Fail")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	tb := New(Config{MaxObjects: 4})
	if tb.Snapshot() != nil {
		t.Fatal("empty table should snapshot to nil")
	}
	tb.Insert(1, pt(1, 1))
	tb.Delete(1, pt(1, 1))
	if tb.Snapshot() != nil {
		t.Fatal("cancelled delta should leave table empty")
	}
}
