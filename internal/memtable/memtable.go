// Package memtable implements the in-memory delta tier that fronts the
// disk-resident R-tree: an LSM-style leaf-delta buffer keyed by object
// id, holding each object's latest absorbed position (or a tombstone)
// until a background merge drains it down to the tree through the
// batched bottom-up update path.
//
// The tier exists to decouple the durable acknowledgement of an update
// from the tree pass it eventually costs: with a write-ahead log in
// front, an update is durable as soon as its record is synced, so the
// index can ack after the log append alone and absorb the tree work
// here — the design of the update-intensive LSM-based R-tree follow-up
// work, with the buffer-tree amortization argument backing it.
//
// A Table holds two generations:
//
//   - the mutable table, which absorbs writes;
//   - the draining table (non-nil only while a merge is applying),
//     whose entries are mid-flight into the tree.
//
// Readers overlay both generations on top of the tree (mutable wins
// over draining wins over tree), and the drain only discards the
// draining generation after every entry has been applied, so a reader
// that snapshots the overlay before scanning the tree observes each
// object exactly once no matter how a concurrent merge interleaves.
//
// Each entry records, besides the object's latest position, what the
// tree will hold for that object once all earlier generations have
// merged (InTree/Base): that is exactly the information the merge
// needs to turn the entry into a bottom-up tree operation — an insert
// for objects the tree has never seen, a Base→Pos move for objects it
// has, a delete-at-Base for tombstones.
package memtable

import (
	"sort"
	"sync"
	"time"

	"burtree/internal/geom"
)

// Config bounds the tier.
type Config struct {
	// MaxObjects is the entry count at which the table asks for a
	// merge-down.
	MaxObjects int
	// MaxAge bounds how long an absorbed update may stay memory-only
	// before a merge is requested; zero disables the age trigger.
	MaxAge time.Duration
}

// Entry is one buffered delta: the latest absorbed state of one object
// relative to the tree.
type Entry struct {
	// ID names the object.
	ID uint64
	// Pos is the object's latest absorbed position (meaningless when
	// Tombstone is set).
	Pos geom.Point
	// InTree reports whether the tree holds this object once every
	// earlier generation has merged; Base is its position there. The
	// merge turns the entry into Update(Base→Pos) when InTree, and into
	// Insert(Pos) otherwise.
	InTree bool
	Base   geom.Point
	// Tombstone marks a deleted object the tree still holds (at Base);
	// the merge deletes it. Deltas for objects the tree never saw are
	// simply dropped, so a stored tombstone always has InTree set.
	Tombstone bool
}

// Stats is a snapshot of the tier's counters.
type Stats struct {
	// Entries is the current number of buffered deltas (mutable plus
	// draining generation).
	Entries int
	// Absorbed counts write operations absorbed since creation.
	Absorbed int64
	// Merges counts completed merge-downs.
	Merges int64
	// Merged counts entries merged down to the tree.
	Merged int64
	// MergePages counts physical page accesses incurred by merge-downs
	// — the background half of the tier's I/O, attributed here so
	// foreground load accounting can exclude it.
	MergePages int64
}

// Table is the delta tier. All methods are safe for concurrent use; the
// drain protocol (BeginDrain → apply → EndDrain) is serialized by the
// caller (the front-ends hold a merge mutex across it).
type Table struct {
	mu  sync.Mutex
	cfg Config

	mut    map[uint64]Entry
	flush  map[uint64]Entry // non-nil only while a drain is applying
	oldest time.Time        // arrival time of the mutable generation's first entry

	absorbed   int64
	merges     int64
	merged     int64
	mergePages int64
	err        error // sticky merge failure; see Fail
}

// New returns an empty table.
func New(cfg Config) *Table {
	return &Table{cfg: cfg, mut: make(map[uint64]Entry)}
}

// treeState reports what the tree will hold for id once every earlier
// generation has merged, given the entry chain visible now (caller
// holds t.mu). With no entry anywhere, the caller's current-position
// table is authoritative: a live object without deltas lives in the
// tree at its current position.
func (t *Table) treeState(id uint64, cur geom.Point, haveCur bool) (inTree bool, base geom.Point) {
	if e, ok := t.flush[id]; ok {
		if e.Tombstone {
			return false, geom.Point{}
		}
		return true, e.Pos
	}
	if haveCur {
		return true, cur
	}
	return false, geom.Point{}
}

// touch stamps the mutable generation's age clock.
func (t *Table) touch() {
	if len(t.mut) == 0 {
		t.oldest = time.Now()
	}
}

// Insert absorbs the insertion of a fresh object at p. The caller has
// already established that no live object with this id exists.
//
//burlint:hotpath
func (t *Table) Insert(id uint64, p geom.Point) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.absorbed++
	t.touch()
	if e, ok := t.mut[id]; ok {
		// A pending tombstone: the tree still holds the object, so the
		// re-insert becomes a move of the tree-resident copy.
		t.mut[id] = Entry{ID: id, Pos: p, InTree: e.InTree, Base: e.Base}
		return
	}
	inTree, base := t.treeState(id, geom.Point{}, false)
	t.mut[id] = Entry{ID: id, Pos: p, InTree: inTree, Base: base}
}

// Update absorbs a move of a live object to p; cur is the object's
// current position from the caller's object table (the tree's position
// when no delta is buffered).
//
//burlint:hotpath
func (t *Table) Update(id uint64, p, cur geom.Point) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.absorbed++
	t.touch()
	if e, ok := t.mut[id]; ok && !e.Tombstone {
		e.Pos = p
		t.mut[id] = e
		return
	}
	inTree, base := t.treeState(id, cur, true)
	t.mut[id] = Entry{ID: id, Pos: p, InTree: inTree, Base: base}
}

// Delete absorbs the removal of a live object; cur is its current
// position, as for Update. Deltas for objects the tree never saw
// cancel outright; tree-resident objects leave a tombstone for the
// merge to delete.
//
//burlint:hotpath
func (t *Table) Delete(id uint64, cur geom.Point) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.absorbed++
	t.touch()
	if e, ok := t.mut[id]; ok {
		if !e.InTree {
			delete(t.mut, id)
			return
		}
		t.mut[id] = Entry{ID: id, InTree: true, Base: e.Base, Tombstone: true}
		return
	}
	inTree, base := t.treeState(id, cur, true)
	if !inTree {
		// Only possible while the draining generation holds a tombstone
		// for id and the object was re-inserted and re-deleted since:
		// the tree copy is already condemned, nothing more to buffer.
		return
	}
	t.mut[id] = Entry{ID: id, InTree: true, Base: base, Tombstone: true}
}

// Get returns the buffered delta for id, newest generation first.
func (t *Table) Get(id uint64) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.mut[id]; ok {
		return e, true
	}
	e, ok := t.flush[id]
	return e, ok
}

// Len returns the number of buffered deltas across both generations
// (an object mid-drain with a fresh mutable delta counts twice; the
// value is an upper bound on the number of distinct buffered ids,
// which is what read-path sizing needs).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.mut) + len(t.flush)
}

// NeedsMerge reports whether the mutable generation has tripped the
// size or age threshold.
func (t *Table) NeedsMerge(now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return false // merging is stuck; see Fail
	}
	if len(t.mut) == 0 {
		return false
	}
	if t.cfg.MaxObjects > 0 && len(t.mut) >= t.cfg.MaxObjects {
		return true
	}
	return t.cfg.MaxAge > 0 && now.Sub(t.oldest) >= t.cfg.MaxAge
}

// BeginDrain promotes the mutable generation to draining and returns
// its entries sorted by id, or nil when there is nothing to drain, a
// drain is already in flight, or a previous drain failed. The entries
// stay visible to readers (via Snapshot/Get) until EndDrain.
func (t *Table) BeginDrain() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.flush != nil || len(t.mut) == 0 || t.err != nil {
		return nil
	}
	t.flush = t.mut
	t.mut = make(map[uint64]Entry)
	out := make([]Entry, 0, len(t.flush))
	for _, e := range t.flush {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddMergePages attributes pages physical page accesses to merge-down
// work; called by the front-end that measured the drain it ran.
func (t *Table) AddMergePages(pages uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mergePages += int64(pages)
}

// EndDrain discards the draining generation after every entry has been
// applied to the tree.
func (t *Table) EndDrain() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.merges++
	t.merged += int64(len(t.flush))
	t.flush = nil
}

// Fail records a merge failure. The draining generation is retained —
// its entries were only partially applied, and re-deriving their tree
// base state is not possible — so reads stay correct through the
// overlay while all further merging stops; the error surfaces through
// Err on every invariant check and checkpoint. A merge failure
// indicates a bug (an acknowledged operation must apply cleanly), not
// a user error.
func (t *Table) Fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = err
	}
}

// Err returns the sticky merge failure, if any.
func (t *Table) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Snapshot returns the current overlay: every buffered delta, mutable
// generation winning over draining. Read paths take the snapshot
// before scanning the tree; because a drain discards its generation
// only after fully applying it, every object is observed exactly once
// regardless of how a concurrent merge interleaves with the scan.
func (t *Table) Snapshot() map[uint64]Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.mut) == 0 && len(t.flush) == 0 {
		return nil
	}
	out := make(map[uint64]Entry, len(t.mut)+len(t.flush))
	for id, e := range t.flush {
		out[id] = e
	}
	for id, e := range t.mut {
		out[id] = e
	}
	return out
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Entries:    len(t.mut) + len(t.flush),
		Absorbed:   t.absorbed,
		Merges:     t.merges,
		Merged:     t.merged,
		MergePages: t.mergePages,
	}
}
