package lint_test

import (
	"path/filepath"
	"testing"

	"burtree/internal/lint"
	"burtree/internal/lint/analysistest"
)

// run applies the named analyzer to the same-named fixture package
// under testdata/src. Each fixture mixes positive lines (with // want
// expectations) and negative lines (clean code the test asserts stays
// clean).
func run(t *testing.T, name string) {
	t.Helper()
	a := lint.ByName(name)
	if a == nil {
		t.Fatalf("no analyzer named %q in the registry", name)
	}
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, a, name)
}

func TestAtomicwrite(t *testing.T)     { run(t, "atomicwrite") }
func TestClosecheck(t *testing.T)      { run(t, "closecheck") }
func TestErrflow(t *testing.T)         { run(t, "errflow") }
func TestGoroutinelife(t *testing.T)   { run(t, "goroutinelife") }
func TestGranulecopy(t *testing.T)     { run(t, "granulecopy") }
func TestHotpath(t *testing.T)         { run(t, "hotpath") }
func TestLockorder(t *testing.T)       { run(t, "lockorder") }
func TestWalack(t *testing.T)          { run(t, "walack") }
func TestIgnoreDirective(t *testing.T) { run(t, "ignoredirective") }

// TestRegistry pins the suite's composition: eight invariant analyzers
// plus the directive validator, all with docs.
func TestRegistry(t *testing.T) {
	all := lint.All()
	want := []string{"atomicwrite", "closecheck", "errflow", "goroutinelife", "granulecopy", "hotpath", "lockorder", "walack", "ignoredirective"}
	if len(all) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("analyzer %d = %q, want %q", i, all[i].Name, name)
		}
		if all[i].Doc == "" {
			t.Errorf("analyzer %q has no doc", name)
		}
		if all[i].Run == nil {
			t.Errorf("analyzer %q has no run function", name)
		}
	}
}
