package framework

import (
	"go/ast"
	"go/types"
)

// RootObject resolves the base object of a selector/index/deref chain
// (x.objects[id] → x's object), nil for expressions that are not
// rooted in a single identifier.
func RootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// WritesThrough reports whether node n assigns, deletes, or
// increments through root — a state write on the object. With
// intoFuncLits, writes arranged inside nested function literals count
// at the node (the spawn/build point), matching how the logging
// analyses attribute closures.
func WritesThrough(info *types.Info, n ast.Node, root types.Object, intoFuncLits bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return intoFuncLits
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if RootObject(info, lhs) == root {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if RootObject(info, m.X) == root {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "delete" && len(m.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && RootObject(info, m.Args[0]) == root {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// ReceiverVar returns the declared receiver variable of a method, nil
// for functions and unnamed receivers.
func ReceiverVar(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[decl.Recv.List[0].Names[0]]
}
