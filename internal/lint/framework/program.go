package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Program is the interprocedural view of one package under analysis:
// every declared function with its (lazily built) CFG, a call graph
// whose edges are resolved statically — including devirtualized calls
// through interfaces to their package-local implementations — and a
// facts store so analyzers can share computed summaries within one
// RunAnalyzers invocation.
//
// The graph covers the package under analysis: calls into other
// packages appear as call sites with no targets (the vet unitchecker
// protocol analyzes one package at a time, so cross-package bodies are
// not available). Analyzers treat target-less calls according to their
// own soundness needs.
type Program struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	// Funcs indexes every function and method declared in the package.
	Funcs map[*types.Func]*Func

	facts map[string]any
}

// A Func is one declared function or method with its call sites.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	// Calls lists every call expression syntactically inside the
	// function, including inside its function literals (attributed to
	// the declaring function: if the literal runs, it runs on the
	// declarer's behalf).
	Calls []*CallSite

	cfg *CFG
}

// A CallSite is one call expression with its resolved targets.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the statically resolved function or method, nil for
	// calls through function values. For interface method calls this
	// is the interface's method object.
	Callee *types.Func
	// Targets lists the package-local functions the call can reach:
	// the callee itself if declared here, or — for interface method
	// calls — every package-local implementation's method.
	Targets []*Func
	// Deferred and Spawned record whether the call is the operand of a
	// defer or go statement.
	Deferred bool
	Spawned  bool
}

// NewProgram indexes the package's functions and resolves the call
// graph. It is built once per RunAnalyzers invocation and shared by
// every analyzer through Pass.Prog.
func NewProgram(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Program {
	p := &Program{
		Fset:  fset,
		Pkg:   pkg,
		Info:  info,
		Files: files,
		Funcs: make(map[*types.Func]*Func),
		facts: make(map[string]any),
	}
	if pkg == nil || info == nil {
		return p // untyped run (framework tests): no call graph
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.Funcs[obj] = &Func{Obj: obj, Decl: fd}
		}
	}
	for _, fn := range p.Funcs {
		p.resolveCalls(fn)
	}
	return p
}

// FuncOf returns the Func for a declared function object, or nil.
func (p *Program) FuncOf(obj *types.Func) *Func {
	return p.Funcs[obj]
}

// CFGOf returns fn's control-flow graph, building it on first use.
// Nil for functions without bodies.
func (p *Program) CFGOf(fn *Func) *CFG {
	if fn.cfg == nil && fn.Decl.Body != nil {
		fn.cfg = NewCFG(fn.Decl.Body)
	}
	return fn.cfg
}

// SortedFuncs returns the package's functions in source order, so
// analyzer output is deterministic.
func (p *Program) SortedFuncs() []*Func {
	out := make([]*Func, 0, len(p.Funcs))
	for _, fn := range p.Funcs {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Reachable returns the functions reachable from roots through the
// static call graph, roots included.
func (p *Program) Reachable(roots []*Func) map[*Func]bool {
	seen := make(map[*Func]bool)
	var walk func(*Func)
	walk = func(fn *Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		for _, cs := range fn.Calls {
			for _, t := range cs.Targets {
				walk(t)
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// Transitive computes the least fixed point of a boolean summary: the
// returned set holds every function for which base holds directly, or
// that can reach — through the static call graph — a function for
// which base holds. This is the common callee-to-caller propagation
// shape ("transitively appends to the WAL", "transitively calls
// Done").
func (p *Program) Transitive(base func(*Func) bool) map[*Func]bool {
	holds := make(map[*Func]bool)
	for _, fn := range p.Funcs {
		if base(fn) {
			holds[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range p.Funcs {
			if holds[fn] {
				continue
			}
			for _, cs := range fn.Calls {
				for _, t := range cs.Targets {
					if holds[t] {
						holds[fn] = true
						changed = true
						break
					}
				}
				if holds[fn] {
					break
				}
			}
		}
	}
	return holds
}

// FactOnce returns the fact stored under key, computing and caching it
// on first request. Facts live for one RunAnalyzers invocation, so an
// expensive summary (the WAL-logging closure, the hot-path reachable
// set) is computed by whichever analyzer asks first and reused by the
// rest.
func (p *Program) FactOnce(key string, compute func() any) any {
	if v, ok := p.facts[key]; ok {
		return v
	}
	v := compute()
	p.facts[key] = v
	return v
}

// StaticCallee resolves the function or method a call names
// statically: a plain function, a concrete method, or an interface
// method. Nil for calls through function-typed values and type
// conversions.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// resolveCalls walks fn's body, recording every call with its
// package-local targets, devirtualizing interface method calls to
// local implementations.
func (p *Program) resolveCalls(fn *Func) {
	if fn.Decl.Body == nil {
		return
	}
	deferred := make(map[*ast.CallExpr]bool)
	spawned := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			spawned[n.Call] = true
		}
		return true
	})
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := StaticCallee(p.Info, call)
		cs := &CallSite{Call: call, Callee: callee, Deferred: deferred[call], Spawned: spawned[call]}
		if callee != nil {
			if target := p.Funcs[callee]; target != nil {
				cs.Targets = []*Func{target}
			} else if isInterfaceMethod(callee) {
				cs.Targets = p.devirtualize(callee)
			}
		}
		fn.Calls = append(fn.Calls, cs)
		return true
	})
}

// devirtualize returns the package-local methods that can satisfy a
// call to the interface method m: for each named local type whose
// (pointer) method set implements m's interface, the concrete method
// with m's name.
func (p *Program) devirtualize(m *types.Func) []*Func {
	iface, ok := m.Signature().Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Func
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		n, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ptr := types.NewPointer(n)
		if !types.Implements(ptr, iface) && !types.Implements(n, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(m.Pkg(), m.Name())
		if sel == nil {
			continue
		}
		if obj, ok := sel.Obj().(*types.Func); ok {
			if fn := p.Funcs[obj]; fn != nil {
				out = append(out, fn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

func isInterfaceMethod(f *types.Func) bool {
	recv := f.Signature().Recv()
	if recv == nil {
		return false
	}
	_, ok := recv.Type().Underlying().(*types.Interface)
	return ok
}
