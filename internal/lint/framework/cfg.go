package framework

import (
	"go/ast"
	"go/token"
)

// A CFG is a conservative per-function control-flow graph built over
// go/ast alone (no SSA): blocks hold the statements and control
// expressions executed on entry to them, in source order, and edges
// over-approximate the possible transfers of control. It is
// branch-aware (if/switch/type-switch/select), loop-aware
// (for/range, break/continue/goto with labels, fallthrough) and
// defer-aware (defers are collected in Defers and also appear, at
// their syntactic position, in the block that registers them).
//
// The graph is deliberately coarse — one bit of precision per path
// question, answered by the analyzers themselves — but it is sound
// for the queries the suite needs: "does some path reach X without
// passing an event of kind Y" (walack, errflow) and "does every path
// from here fail" (hotpath's cold-branch exemption).
type CFG struct {
	Entry *Block
	Exit  *Block
	// Blocks lists every block, Entry first, Exit second. Blocks
	// created for unreachable continuations (code after return) stay in
	// the list with no predecessors.
	Blocks []*Block
	// Defers collects every defer statement in the function, outermost
	// first. Deferred calls run on every exit path, so path queries
	// that care about defers consult this list rather than the edges.
	Defers []*ast.DeferStmt
}

// A Block is a straight-line run of statements: control enters at the
// first node and leaves through one of Succs after the last.
type Block struct {
	Index int
	// Nodes holds, in execution order, the statements of the run plus
	// the control expressions (if/switch conditions, range operands,
	// case expressions) evaluated on entry. Nested statements are not
	// duplicated: an if body's statements live in the then-block, not
	// under the IfStmt.
	Nodes []ast.Node
	Succs []*Block
}

// Return reports the return statement terminating b, if any.
func (b *Block) Return() (*ast.ReturnStmt, bool) {
	if len(b.Nodes) == 0 {
		return nil, false
	}
	r, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return r, ok
}

// Fails reports whether b itself ends the function on a failure: its
// own trailing return carries a non-nil-literal final result, or its
// last node panics. Unlike MustFail this does not aggregate over
// successor paths, so it stays meaningful inside loops — a loop body
// whose function eventually forwards an error variable would be
// vacuously "must fail" on every path, while Fails still distinguishes
// the error-construction branch from the loop's steady state.
func (b *Block) Fails() bool {
	if r, ok := b.Return(); ok {
		return returnsNonNil(r)
	}
	return len(b.Nodes) > 0 && isPanicNode(b.Nodes[len(b.Nodes)-1])
}

// NewCFG builds the graph for one function or function-literal body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.jump(b.cfg.Exit) // falling off the end
	return b.cfg
}

// Predecessors returns the reverse edge map, for must-style forward
// dataflow (every path to a block).
func (c *CFG) Predecessors() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// MustFail reports whether every terminating path from b leaves the
// function through panic or through a return whose final result is not
// the nil literal — i.e. b is an error/cold branch. Paths that never
// terminate (infinite loops) hold vacuously. Used by hotpath to exempt
// error-construction branches from the allocation rules and by errflow
// to recognize failure paths.
func (c *CFG) MustFail(b *Block) bool {
	return c.mustFail(b, make(map[*Block]bool))
}

func (c *CFG) mustFail(b *Block, inProgress map[*Block]bool) bool {
	if b == c.Exit {
		return false // fell off the end: a no-result return, not a failure
	}
	if inProgress[b] {
		return true // cycle: the path never terminates, vacuously failing
	}
	if r, ok := b.Return(); ok {
		return returnsNonNil(r)
	}
	if len(b.Nodes) > 0 && isPanicNode(b.Nodes[len(b.Nodes)-1]) {
		return true
	}
	if len(b.Succs) == 0 {
		return true // dead continuation: vacuous
	}
	inProgress[b] = true
	defer delete(inProgress, b)
	for _, s := range b.Succs {
		if !c.mustFail(s, inProgress) {
			return false
		}
	}
	return true
}

// returnsNonNil reports whether r's final result expression is
// syntactically not the nil literal (so `return err`,
// `return fmt.Errorf(...)` and `return x.log(...)` all count as
// possibly-failing; only `return nil`/`return v, nil` do not).
func returnsNonNil(r *ast.ReturnStmt) bool {
	if len(r.Results) == 0 {
		return false
	}
	last := ast.Unparen(r.Results[len(r.Results)-1])
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

func isPanicNode(n ast.Node) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

type builder struct {
	cfg *CFG
	cur *Block
	// frames tracks enclosing breakable/continuable constructs,
	// innermost last.
	frames []frame
	// labels maps label name to its target block, created on demand so
	// forward gotos resolve.
	labels map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select, for
	// labeled break/continue.
	pendingLabel string
	// fallthroughTo is the next case block while building a switch
	// clause body.
	fallthroughTo *Block
}

type frame struct {
	label      string
	isLoop     bool
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) jump(to *Block) {
	for _, s := range b.cur.Succs {
		if s == to {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, to)
}

// kill ends the current path: subsequent statements go to a fresh
// block with no predecessors (unreachable continuation).
func (b *builder) kill() {
	b.cur = b.newBlock()
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) labelBlock(name string) *Block {
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

func (b *builder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTo
		}
	}
	return b.cfg.Exit // malformed code; stay total
}

func (b *builder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.isLoop && (label == "" || f.label == label) {
			return f.continueTo
		}
	}
	return b.cfg.Exit
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		then, after := b.newBlock(), b.newBlock()
		b.jump(then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock()
			b.jump(els)
		} else {
			b.jump(after)
		}
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.jump(after)
		}
		b.jump(body)
		b.frames = append(b.frames, frame{label: label, isLoop: true, breakTo: after, continueTo: post})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		b.jump(head)
		b.cur = head
		b.jump(body)
		b.jump(after)
		b.frames = append(b.frames, frame{label: label, isLoop: true, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		head := b.cur
		b.frames = append(b.frames, frame{label: label, breakTo: after})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			b.cur = blk
			if clause.Comm != nil {
				b.stmt(clause.Comm)
			}
			b.stmtList(clause.Body)
			b.jump(after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.jump(b.findBreak(labelName(s)))
			b.kill()
		case token.CONTINUE:
			b.jump(b.findContinue(labelName(s)))
			b.kill()
		case token.GOTO:
			b.jump(b.labelBlock(labelName(s)))
			b.kill()
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.jump(b.fallthroughTo)
			}
			b.kill()
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
		b.kill()

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicNode(s) {
			b.jump(b.cfg.Exit)
			b.kill()
		}

	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch shape: the current
// block branches to every case (and to after, if there is no default),
// each case body jumps to after, and fallthrough jumps to the next
// case body.
func (b *builder) caseClauses(label string, list []ast.Stmt) {
	after := b.newBlock()
	head := b.cur
	blocks := make([]*Block, len(list))
	hasDefault := false
	for i, cc := range list {
		blocks[i] = b.newBlock()
		head.Succs = append(head.Succs, blocks[i])
		if len(cc.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	savedFT := b.fallthroughTo
	for i, cc := range list {
		clause := cc.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range clause.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(clause.Body)
		b.jump(after)
	}
	b.fallthroughTo = savedFT
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}
