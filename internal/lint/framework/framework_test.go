package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

func f() {
	//burlint:ignore closecheck error path: open failure is the one to surface
	a()
	//burlint:ignore walack
	b()
	//burlint:ignore
	c()
	//burlint:ignoreXXX not a directive at all
	d()
}
`

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestDirectives(t *testing.T) {
	fset, f := parse(t, directiveSrc)
	got := Directives(fset, f)
	want := []struct {
		analyzer, reason string
	}{
		{"closecheck", "error path: open failure is the one to surface"},
		{"walack", ""},
		{"", ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d directives, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Analyzer != w.analyzer || got[i].Reason != w.reason {
			t.Errorf("directive %d = {%q %q}, want {%q %q}", i, got[i].Analyzer, got[i].Reason, w.analyzer, w.reason)
		}
	}
}

const suppressSrc = `package p

func f() {
	//burlint:ignore demo covered by the integration harness
	a()
	b()
	c() //burlint:ignore demo same-line form
	d() //burlint:ignore other directive for a different analyzer
}
`

// TestSuppression checks the two directive placements (line above,
// same line) and that a directive only silences its own analyzer.
func TestSuppression(t *testing.T) {
	fset, f := parse(t, suppressSrc)

	// A fake analyzer that reports on every call statement.
	demo := &Analyzer{
		Name: "demo",
		Doc:  "reports every call, for suppression testing",
		Run: func(pass *Pass) error {
			ast.Inspect(pass.Files[0], func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call")
				}
				return true
			})
			return nil
		},
	}

	diags, err := RunAnalyzers(fset, []*ast.File{f}, nil, nil, []*Analyzer{demo})
	if err != nil {
		t.Fatal(err)
	}
	// a() suppressed by the line above, c() by the same line; b() and
	// d() (wrong analyzer name) survive.
	var lines []int
	for _, d := range diags {
		lines = append(lines, fset.Position(d.Pos).Line)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics on lines %v, want 2", len(diags), lines)
	}
	bLine, dLine := 6, 8
	if lines[0] != bLine || lines[1] != dLine {
		t.Errorf("diagnostics on lines %v, want [%d %d]", lines, bLine, dLine)
	}
}
