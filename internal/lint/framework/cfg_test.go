package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one source file, returning what
// NewProgram needs.
func typecheck(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, pkg, info
}

func funcDecl(files []*ast.File, name string) *ast.FuncDecl {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

func TestCFGShapes(t *testing.T) {
	_, files, _, _ := typecheck(t, `package p

import "errors"

func branches(n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		total += i
		if total > 100 {
			break
		}
	}
	switch {
	case n < 0:
		return 0, errors.New("negative")
	case n == 0:
		goto done
	}
	total++
done:
	return total, nil
}
`)
	cfg := NewCFG(funcDecl(files, "branches").Body)
	if cfg.Entry == nil || cfg.Exit == nil || len(cfg.Blocks) < 6 {
		t.Fatalf("implausible CFG: %d blocks", len(cfg.Blocks))
	}
	// Every reachable block's successors must be in the block list, and
	// the exit must be reachable from the entry.
	index := make(map[*Block]bool)
	for _, b := range cfg.Blocks {
		index[b] = true
	}
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			if !index[s] {
				t.Fatalf("block %d has successor outside Blocks", b.Index)
			}
			walk(s)
		}
	}
	walk(cfg.Entry)
	if !seen[cfg.Exit] {
		t.Fatal("exit unreachable from entry")
	}
}

func TestCFGMustFail(t *testing.T) {
	_, files, _, _ := typecheck(t, `package p

import "fmt"

func f(xs []int) (int, error) {
	sum := 0
	for _, x := range xs {
		if x < 0 {
			return 0, fmt.Errorf("negative %d", x)
		}
		if x == 0 {
			sum--
			continue
		}
		sum += x
	}
	if sum > 1000 {
		panic("overflow")
	}
	return sum, nil
}
`)
	cfg := NewCFG(funcDecl(files, "f").Body)

	failing, ok := 0, 0
	for _, b := range cfg.Blocks {
		if r, has := b.Return(); has {
			if cfg.MustFail(b) {
				failing++
				if !returnsNonNil(r) {
					t.Errorf("block %d must-fails but returns nil", b.Index)
				}
			} else {
				ok++
			}
		}
	}
	if failing != 1 {
		t.Errorf("want exactly 1 failing return block, got %d", failing)
	}
	if ok != 1 {
		t.Errorf("want exactly 1 succeeding return block, got %d", ok)
	}
	// The panic block must-fails even though it is not a return.
	found := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if isPanicNode(n) && cfg.MustFail(b) {
				found = true
			}
		}
	}
	if !found {
		t.Error("panic block not recognized as must-fail")
	}
}

func TestProgramCallGraph(t *testing.T) {
	fset, files, pkg, info := typecheck(t, `package p

type applier interface{ apply(int) int }

type double struct{}

func (double) apply(x int) int { return 2 * x }

type negate struct{}

func (*negate) apply(x int) int { return helper(-x) }

func helper(x int) int { return x }

func root(a applier, xs []int) int {
	total := 0
	for _, x := range xs {
		total += a.apply(x)
	}
	return total
}

func unrelated() {}
`)
	prog := NewProgram(fset, files, pkg, info)
	if len(prog.Funcs) != 5 {
		t.Fatalf("want 5 funcs, got %d", len(prog.Funcs))
	}
	var root *Func
	for _, fn := range prog.Funcs {
		if fn.Obj.Name() == "root" {
			root = fn
		}
	}
	if root == nil {
		t.Fatal("root not indexed")
	}

	// The interface call in root must devirtualize to both local
	// implementations, making helper reachable through *negate.
	reach := prog.Reachable([]*Func{root})
	names := make(map[string]bool)
	for fn := range reach {
		names[fn.Obj.Name()] = true
	}
	for _, want := range []string{"root", "apply", "helper"} {
		if !names[want] {
			t.Errorf("%s not reachable from root; reachable: %v", want, names)
		}
	}
	if names["unrelated"] {
		t.Error("unrelated spuriously reachable")
	}

	// Transitive: "calls helper" holds for negate.apply and root (via
	// devirtualization), not for double.apply or unrelated.
	callsHelper := prog.Transitive(func(fn *Func) bool { return fn.Obj.Name() == "helper" })
	byName := func(name string, recvPtr bool) *Func {
		for _, fn := range prog.Funcs {
			if fn.Obj.Name() != name {
				continue
			}
			recv := fn.Obj.Signature().Recv()
			if (recv != nil && types.IsInterface(recv.Type())) != false {
				continue
			}
			if name == "apply" {
				_, isPtr := recv.Type().(*types.Pointer)
				if isPtr != recvPtr {
					continue
				}
			}
			return fn
		}
		return nil
	}
	if fn := byName("apply", true); fn == nil || !callsHelper[fn] {
		t.Error("(*negate).apply should transitively call helper")
	}
	if fn := byName("apply", false); fn != nil && callsHelper[fn] {
		t.Error("double.apply should not transitively call helper")
	}
	if !callsHelper[root] {
		t.Error("root should transitively call helper via devirtualized apply")
	}

	// Facts: computed once, shared.
	calls := 0
	get := func() any {
		return prog.FactOnce("k", func() any { calls++; return 42 })
	}
	if get() != 42 || get() != 42 || calls != 1 {
		t.Errorf("FactOnce recomputed: calls=%d", calls)
	}
}
