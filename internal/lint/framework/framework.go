// Package framework is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver-independent
// structure to write this repo's invariant analyzers and run them from
// three drivers (the go vet -vettool protocol, a standalone package
// loader, and the analysistest fixture runner). The API mirrors
// go/analysis deliberately — Analyzer{Name, Doc, Run}, Pass with
// Fset/Files/Pkg/TypesInfo and Reportf — so the suite can be rebased
// onto x/tools wholesale if the dependency ever becomes available.
//
// Suppression: a diagnostic is suppressed by a
//
//	//burlint:ignore <analyzer> <reason>
//
// comment on the same line as the diagnostic or on the line directly
// above it. The reason is mandatory; the ignoredirective analyzer
// rejects directives without one (and directives naming no known
// analyzer), so an ignore can never silently widen.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //burlint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by burlint help: the
	// invariant encoded and where it came from.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the package's interprocedural view — functions, CFGs,
	// call graph, shared facts — built once per RunAnalyzers invocation
	// and shared by every analyzer in the suite.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos unless an ignore directive covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file declaring pos is a _test.go
// file. The invariant analyzers skip test files: the contracts they
// encode (ack ordering, lock order, artifact atomicity) bind the
// engine, not its test harnesses, and test idiom (deferred unchecked
// closes, scratch files) would otherwise drown the signal.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// IgnorePrefix introduces an ignore directive comment.
const IgnorePrefix = "//burlint:ignore"

// A Directive is one parsed //burlint:ignore comment.
type Directive struct {
	Pos      token.Pos
	Line     int    // line the comment is on
	Target   int    // line the suppression covers (0 for file-scope)
	File     bool   // directive precedes the package clause: whole file
	Analyzer string // first word after the prefix ("" if missing)
	Reason   string // rest of the comment ("" if missing)
}

// Directives parses every //burlint:ignore comment in f. A trailing
// directive (code earlier on its line) covers its own line; a
// directive standing alone on a line covers the next one — each form
// covers exactly one line, so a suppression can never silently widen
// to a neighbor. A directive above the package clause is file-scope:
// it suppresses the named analyzer for the whole file (the
// ignoredirective analyzer rejects this form for analyzers that
// demand per-statement audits, e.g. hotpath).
func Directives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, IgnorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //burlint:ignoreXXX — not a directive
			}
			d := Directive{Pos: c.Pos(), Line: fset.Position(c.Pos()).Line}
			switch {
			case c.Pos() < f.Package:
				d.File = true
			case hasCodeBefore(fset, f, c):
				d.Target = d.Line
			default:
				d.Target = d.Line + 1
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				d.Analyzer = fields[0]
				d.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			out = append(out, d)
		}
	}
	return out
}

// hasCodeBefore reports whether any code ends on c's line before c —
// i.e. c is a trailing comment.
func hasCodeBefore(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == line {
			found = true
		}
		return !found
	})
	return found
}

// ignoreKey addresses a directive by file and line.
type ignoreKey struct {
	file string
	line int
}

// RunAnalyzers applies the analyzers to one type-checked package and
// returns the surviving diagnostics sorted by position. Suppression is
// applied here so every driver gets identical semantics.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := make(map[ignoreKey][]Directive)
	fileIgnores := make(map[string]map[string]bool)
	for _, f := range files {
		name := fset.File(f.Pos()).Name()
		for _, d := range Directives(fset, f) {
			if d.File {
				if fileIgnores[name] == nil {
					fileIgnores[name] = make(map[string]bool)
				}
				fileIgnores[name][d.Analyzer] = true
				continue
			}
			k := ignoreKey{file: name, line: d.Target}
			ignores[k] = append(ignores[k], d)
		}
	}
	suppressed := func(d Diagnostic) bool {
		posn := fset.Position(d.Pos)
		if fileIgnores[posn.Filename][d.Analyzer] {
			return true
		}
		for _, dir := range ignores[ignoreKey{file: posn.Filename, line: posn.Line}] {
			if dir.Analyzer == d.Analyzer {
				return true
			}
		}
		return false
	}

	prog := NewProgram(fset, files, pkg, info)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Prog:      prog,
			report: func(d Diagnostic) {
				if !suppressed(d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// PkgTail reports whether the package path's last segment equals tail
// ("burtree/internal/dgl" matches "dgl"). Analyzers match collaborator
// packages this way so analysistest fixtures can declare small local
// stand-ins ("dgl", "wal") with the real packages' shapes.
func PkgTail(pkg *types.Package, tail string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == tail || strings.HasSuffix(path, "/"+tail)
}

// NamedFrom reports whether t (after pointer indirection) is a named
// type with the given name declared in a package whose path ends in
// pkgTail.
func NamedFrom(t types.Type, pkgTail, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && PkgTail(obj.Pkg(), pkgTail)
}

// ReceiverOf resolves the method called by a selector call expression,
// returning the receiver expression's type and the method name. ok is
// false for non-selector calls.
func ReceiverOf(info *types.Info, call *ast.CallExpr) (types.Type, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil, "", false
	}
	return tv.Type, sel.Sel.Name, true
}
