// Package errflow enforces the rollback contract on the mutation
// path: an error produced after state mutation must reach an undo
// before it escapes.
//
// The bug class is PR 8's WAL-append-failure shape: Insert/Update/
// Delete mutate the object table (and the tree), then call a fallible
// step — the WAL append, or the tree apply (PR 2's compare-and-restore
// shape) — and return its error. If the failure path returns without
// restoring the mutated state, the in-memory index diverges from what
// recovery will rebuild: the caller saw an error, but the object
// table kept the move. ShardedIndex got hand-written rollbacks in
// PR 8; this analyzer makes the shape load-bearing for every
// front-end.
//
// Scope: the mutation methods (Insert/Update/Delete/UpdateBatch) on
// WAL-carrying types — walack's surface, via the shared facts store —
// plus same-package receiver methods reachable from them that both
// mutate their receiver and log (the absorb helpers). In each, the
// analyzer tracks, over the CFG:
//
//   - state mutation: an assignment, delete, or ++/-- through the
//     receiver (x.objects[id] = p);
//   - tracked fallible calls: error-returning calls to same-package
//     functions that mutate or log, direct wal.Append/AppendAsync, or
//     methods on receiver-reachable state (x.tree.Insert);
//   - acks: walack's logging summary. A fallible call that every path
//     reaches only after a completed logging call is post-ack — the op
//     is already durable, so its failure needs no rollback
//     (maybeMerge tails).
//
// A tracked call that can execute after a mutation and before the ack
// is checked on its failure path: the branch taken when its error is
// non-nil must contain an undo — a receiver state write, a method
// call on receiver state, or a same-package call that mutates — before
// the error returns. Returning the error directly (`return
// x.logAppend(...)`) after mutation is flagged: there is no failure
// branch to undo in.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"burtree/internal/lint/analyzers/walack"
	"burtree/internal/lint/framework"
)

// Analyzer is the errflow analyzer.
var Analyzer = &framework.Analyzer{
	Name: "errflow",
	Doc: "an error produced after state mutation must reach a rollback before it escapes: mutation methods on " +
		"WAL-carrying types must undo receiver state on every pre-ack failure path (the PR 8 WAL-append and " +
		"PR 2 compare-and-restore shapes)",
	Run: run,
}

func run(pass *framework.Pass) error {
	carriers := walack.Carriers(pass)
	if len(carriers) == 0 {
		return nil
	}
	mutates := mutatesSummary(pass)

	var cands []*framework.Func
	isCand := make(map[*framework.Func]bool)
	for _, fn := range pass.Prog.SortedFuncs() {
		decl := fn.Decl
		if decl.Recv == nil || decl.Body == nil || !walack.MutationMethods[decl.Name.Name] {
			continue
		}
		recv := fn.Obj.Signature().Recv()
		if recv == nil || !carriers[deref(recv.Type())] {
			continue
		}
		cands = append(cands, fn)
		isCand[fn] = true
	}
	if len(cands) == 0 {
		return nil
	}
	// Helpers the mutation methods delegate to (absorbBatch): receiver
	// methods reachable from a candidate that both mutate and log.
	logging := walack.Logging(pass)
	reach := pass.Prog.Reachable(cands)
	for _, fn := range pass.Prog.SortedFuncs() {
		if reach[fn] && !isCand[fn] && fn.Decl.Recv != nil && mutates[fn] && logging[fn] {
			cands = append(cands, fn)
		}
	}

	for _, fn := range cands {
		if !pass.IsTestFile(fn.Decl.Pos()) {
			checkFunc(pass, fn, mutates)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fn *framework.Func, mutates map[*framework.Func]bool) {
	recv := framework.ReceiverVar(pass.TypesInfo, fn.Decl)
	if recv == nil {
		return
	}
	info := pass.TypesInfo
	cfg := pass.Prog.CFGOf(fn)
	name := fn.Decl.Name.Name

	isMutNode := func(n ast.Node) bool { return framework.WritesThrough(info, n, recv, false) }
	isLogNode := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok && walack.IsLoggingCall(pass, call) {
				found = true
			}
			return true
		})
		return found
	}

	// Both analyses run over the blocks reachable from entry: the
	// builder can leave orphan join blocks behind, and an unreachable
	// "path" must neither add mutations nor break the acked-on-every-
	// path property.
	reach := map[*framework.Block]bool{}
	var mark func(b *framework.Block)
	mark = func(b *framework.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			mark(s)
		}
	}
	mark(cfg.Entry)

	// Forward may-analysis: mutated[b] = some path reaches b's start
	// after a receiver write. Forward must-analysis: acked[b] = every
	// path to b's start passed a logging call.
	preds := cfg.Predecessors()
	mutated := map[*framework.Block]bool{}
	acked := map[*framework.Block]bool{}
	hasMut := map[*framework.Block]bool{}
	hasLog := map[*framework.Block]bool{}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if isMutNode(n) {
				hasMut[b] = true
			}
			if isLogNode(n) {
				hasLog[b] = true
			}
		}
		acked[b] = b != cfg.Entry // optimistic init for the must-analysis
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if !reach[b] {
				continue
			}
			m := mutated[b] || hasMut[b]
			for _, s := range b.Succs {
				if m && !mutated[s] {
					mutated[s] = true
					changed = true
				}
			}
			if b == cfg.Entry {
				continue
			}
			a := false
			for _, p := range preds[b] {
				if !reach[p] {
					continue
				}
				if !acked[p] && !hasLog[p] {
					a = false
					break
				}
				a = true
			}
			if a != acked[b] {
				acked[b] = a
				changed = true
			}
		}
	}

	for _, b := range cfg.Blocks {
		if !reach[b] {
			continue
		}
		mutNow := mutated[b]
		ackNow := acked[b]
		for i, n := range b.Nodes {
			call, inReturn := trackedCallIn(pass, n, recv, mutates)
			if call != nil && mutNow && !ackNow {
				checkCall(pass, fn, cfg, b, i, n, call, inReturn, recv, mutates, name)
			}
			if isMutNode(n) {
				mutNow = true
			}
			if isLogNode(n) {
				ackNow = true
			}
		}
	}
}

// checkCall verifies one pre-ack fallible call executed after a
// mutation: its failure path must undo receiver state.
func checkCall(pass *framework.Pass, fn *framework.Func, cfg *framework.CFG, b *framework.Block, i int, n ast.Node, call *ast.CallExpr, inReturn bool, recv types.Object, mutates map[*framework.Func]bool, name string) {
	if inReturn {
		pass.Reportf(call.Pos(), "%s returns the error of %s directly after mutating receiver state: there is no failure branch to roll back in; test the error and undo before returning", name, callName(call))
		return
	}
	errObj, discarded := errBinding(pass.TypesInfo, n, call)
	if discarded {
		pass.Reportf(call.Pos(), "%s discards the error of %s after mutating receiver state: a failed step would leave the mutation unrolled-back and unreported", name, callName(call))
		return
	}
	if errObj == nil {
		return // unrecognized binding shape: stay quiet
	}
	// Find the branch on the error in this block: the last node must
	// be a cond testing errObj, so the failure path is a successor.
	failure := failureSuccessor(cfg, b, i, errObj, pass.TypesInfo)
	if failure == nil {
		return // tested elsewhere (or not at all): out of shape, stay quiet
	}
	if !hasUndoInFailureRegion(pass, cfg, failure, recv, mutates) {
		pass.Reportf(call.Pos(), "%s mutates receiver state before %s but the failure path returns without a rollback; restore the state (compare-and-restore) before propagating the error", name, callName(call))
	}
}

// trackedCallIn returns the tracked fallible call inside node n (top
// level: function literals excluded), and whether n is a return
// statement carrying it.
func trackedCallIn(pass *framework.Pass, n ast.Node, recv types.Object, mutates map[*framework.Func]bool) (*ast.CallExpr, bool) {
	var found *ast.CallExpr
	ast.Inspect(n, func(m ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTracked(pass, call, recv, mutates) {
			found = call
			return false
		}
		return true
	})
	if found == nil {
		return nil, false
	}
	_, isRet := n.(*ast.ReturnStmt)
	return found, isRet
}

// isTracked reports whether the call is a fallible step whose failure
// the invariant cares about: it returns an error and either reaches
// same-package state/log machinery or operates on receiver state.
func isTracked(pass *framework.Pass, call *ast.CallExpr, recv types.Object, mutates map[*framework.Func]bool) bool {
	if !returnsError(pass.TypesInfo, call) {
		return false
	}
	if walack.IsDirectWALAppend(pass.TypesInfo, call) {
		return true
	}
	callee := framework.StaticCallee(pass.TypesInfo, call)
	if callee != nil && callee.Pkg() == pass.Pkg {
		if fn := pass.Prog.FuncOf(callee); fn != nil && (mutates[fn] || walack.Logging(pass)[fn]) {
			return true
		}
	}
	// A method on receiver-reachable state (x.tree.Insert(...)).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(ast.Expr); ok && framework.RootObject(pass.TypesInfo, base) == recv {
			return true
		}
	}
	return false
}

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errBinding resolves which object the call's error lands in within
// statement n: `err := call` / `a, err := call` / `if err := call; ...`.
// discarded is true when the error is dropped (`_`, or a bare call
// statement).
func errBinding(info *types.Info, n ast.Node, call *ast.CallExpr) (types.Object, bool) {
	var assign *ast.AssignStmt
	switch s := n.(type) {
	case *ast.AssignStmt:
		assign = s
	case *ast.IfStmt:
		if a, ok := s.Init.(*ast.AssignStmt); ok {
			assign = a
		}
	case *ast.ExprStmt:
		if s.X == call {
			return nil, true
		}
	}
	if assign == nil || len(assign.Rhs) != 1 || assign.Rhs[0] != call || len(assign.Lhs) == 0 {
		return nil, false
	}
	last, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
	if !ok {
		return nil, false
	}
	if last.Name == "_" {
		return nil, true
	}
	if obj := info.Defs[last]; obj != nil {
		return obj, false
	}
	return info.Uses[last], false
}

// failureSuccessor returns the CFG block entered when errObj is
// non-nil, if block b ends (after node index i) with a test of it.
func failureSuccessor(cfg *framework.CFG, b *framework.Block, i int, errObj types.Object, info *types.Info) *framework.Block {
	if len(b.Nodes) == 0 || len(b.Succs) < 1 {
		return nil
	}
	last, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok {
		return nil
	}
	cond, ok := ast.Unparen(last).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.NEQ && cond.Op != token.EQL) {
		return nil
	}
	var other ast.Expr
	switch {
	case identObject(info, cond.X) == errObj:
		other = cond.Y
	case identObject(info, cond.Y) == errObj:
		other = cond.X
	default:
		return nil
	}
	if id, ok := ast.Unparen(other).(*ast.Ident); !ok || id.Name != "nil" {
		return nil
	}
	// If-statement blocks branch to the then-block first (see
	// cfg.go): err != nil takes Succs[0] on failure, err == nil takes
	// the else/after successor.
	if cond.Op == token.NEQ {
		return b.Succs[0]
	}
	if len(b.Succs) > 1 {
		return b.Succs[1]
	}
	return nil
}

// hasUndoInFailureRegion scans the failing region — blocks reachable
// from the failure branch on which every terminating path still fails
// — for an undo: a receiver state write, a method call on receiver
// state, or a same-package mutating call.
func hasUndoInFailureRegion(pass *framework.Pass, cfg *framework.CFG, failure *framework.Block, recv types.Object, mutates map[*framework.Func]bool) bool {
	seen := map[*framework.Block]bool{}
	var walk func(b *framework.Block) bool
	walk = func(b *framework.Block) bool {
		if seen[b] || b == cfg.Exit || !cfg.MustFail(b) {
			return false
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if isUndo(pass, n, recv, mutates) {
				return true
			}
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(failure)
}

// isUndo reports whether node n restores receiver state.
func isUndo(pass *framework.Pass, n ast.Node, recv types.Object, mutates map[*framework.Func]bool) bool {
	if framework.WritesThrough(pass.TypesInfo, n, recv, false) {
		return true
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && framework.RootObject(pass.TypesInfo, sel.X) == recv {
			found = true
			return false
		}
		if callee := framework.StaticCallee(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
			if fn := pass.Prog.FuncOf(callee); fn != nil && mutates[fn] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mutatesSummary is the interprocedural summary "writes state through
// a receiver, directly or transitively", cached in the facts store.
func mutatesSummary(pass *framework.Pass) map[*framework.Func]bool {
	return pass.Prog.FactOnce("errflow.mutates", func() any {
		return pass.Prog.Transitive(func(fn *framework.Func) bool {
			if fn.Decl.Recv == nil || fn.Decl.Body == nil {
				return false
			}
			recv := framework.ReceiverVar(pass.TypesInfo, fn.Decl)
			if recv == nil {
				return false
			}
			found := false
			for _, stmt := range fn.Decl.Body.List {
				if framework.WritesThrough(pass.TypesInfo, stmt, recv, false) {
					found = true
					break
				}
			}
			return found
		})
	}).(map[*framework.Func]bool)
}

func identObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

func deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the call"
}
