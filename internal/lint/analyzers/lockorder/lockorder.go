// Package lockorder statically enforces the DGL acquisition protocol
// in packages that use the internal/dgl lock manager.
//
// Two invariants, both load-bearing for deadlock freedom:
//
//  1. Canonical granule order. A transaction acquires granules in the
//     global order tree → cells → pages (internal/concurrent documents
//     it; the grid cells are additionally taken in sorted id order at
//     runtime). Statically, the analyzer classifies each
//     Manager.Acquire call's granule argument into a tier by the names
//     it mentions — "tree" (tier 0), "cell" (tier 1), "page" (tier 2)
//     — and flags an acquisition whose tier is lower than one already
//     taken since the transaction began (Begin/ReleaseAll reset the
//     tracking). PR 2's rollback race was exactly a path that touched
//     granules out of protocol after a failed update.
//
//  2. No granule waits under the exclusive latch. The physical latch
//     serializes page access and is always taken *after* the granule
//     locks; a Manager.Acquire while holding an exclusive latch can
//     deadlock against a holder waiting for the latch. The analyzer
//     flags any Acquire between a sync .Lock() and its .Unlock() in
//     the same function.
//
// The analysis is a single lexical pass per function body (branches
// are treated as sequential), which matches how the engine's lock
// paths are written; function literals are analyzed independently.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"burtree/internal/lint/framework"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "enforces DGL acquisition order (tree → cell → page granules, by name tier) and forbids " +
		"Manager.Acquire while an exclusive sync lock is held (granules are always taken before the latch)",
	Run: run,
}

// Granule tiers in canonical acquisition order.
const (
	tierUnknown = -1
	tierTree    = 0
	tierCell    = 1
	tierPage    = 2
)

var tierName = map[int]string{tierTree: "tree", tierCell: "cell", tierPage: "page"}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanBody(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				scanBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// scanBody walks one function body in lexical order, tracking the
// latch and the highest granule tier acquired so far. Nested function
// literals get their own scan with fresh state.
func scanBody(pass *framework.Pass, body *ast.BlockStmt) {
	latchHeld := false
	var latchPos token.Pos
	maxTier := tierUnknown

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanBody(pass, lit.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := framework.ReceiverOf(pass.TypesInfo, call)
		if !ok {
			return true
		}
		switch {
		case isSyncLock(recv) && name == "Lock":
			latchHeld, latchPos = true, call.Pos()
		case isSyncLock(recv) && name == "Unlock":
			latchHeld = false
		case isDGLManager(recv):
			switch name {
			case "Acquire":
				if latchHeld {
					pass.Reportf(call.Pos(), "granule lock acquired while holding the exclusive latch (taken at %s); granules must be acquired before the latch", pass.Fset.Position(latchPos))
				}
				if len(call.Args) >= 2 {
					tier := tierOf(call.Args[1])
					if tier != tierUnknown {
						if maxTier != tierUnknown && tier < maxTier {
							pass.Reportf(call.Pos(), "%s granule acquired after a %s granule; canonical DGL order is tree → cell → page", tierName[tier], tierName[maxTier])
						}
						if tier > maxTier {
							maxTier = tier
						}
					}
				}
			case "ReleaseAll", "Begin":
				maxTier = tierUnknown
			}
		}
		return true
	})
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncLock(t types.Type) bool {
	return framework.NamedFrom(t, "sync", "Mutex") || framework.NamedFrom(t, "sync", "RWMutex")
}

// isDGLManager reports whether t is the dgl lock manager.
func isDGLManager(t types.Type) bool {
	return framework.NamedFrom(t, "dgl", "Manager")
}

// tierOf classifies a granule expression by the names it mentions.
// The engine's naming convention carries the tier: TreeGranule and
// tree-granule locals mention "tree", cellOf/cellsOfRect results and
// cell slices mention "cell", pageGranule results mention "page". The
// literal 0 is the tree granule. Mixed mentions take the highest tier
// (a "pageGranule" helper is a page no matter what else it mentions);
// unknown names impose no constraint.
func tierOf(e ast.Expr) int {
	var names []string
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			names = append(names, strings.ToLower(id.Name))
		}
		if lit, ok := n.(*ast.BasicLit); ok && lit.Value == "0" {
			names = append(names, "tree")
		}
		return true
	})
	tier := tierUnknown
	for _, name := range names {
		switch {
		case strings.Contains(name, "page"):
			return tierPage
		case strings.Contains(name, "cell"):
			tier = tierCell
		case strings.Contains(name, "tree") && tier < tierCell:
			tier = tierTree
		}
	}
	return tier
}
