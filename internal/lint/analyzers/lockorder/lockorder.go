// Package lockorder statically enforces the DGL acquisition protocol
// in packages that use the internal/dgl lock manager.
//
// Two invariants, both load-bearing for deadlock freedom:
//
//  1. Canonical granule order. A transaction acquires granules in the
//     global order tree → cells → pages (internal/concurrent documents
//     it; the grid cells are additionally taken in sorted id order at
//     runtime). Statically, the analyzer classifies each
//     Manager.Acquire call's granule argument into a tier by the names
//     it mentions — "tree" (tier 0), "cell" (tier 1), "page" (tier 2)
//     — and flags an acquisition whose tier is lower than one already
//     taken since the transaction began (Begin/ReleaseAll reset the
//     tracking). PR 2's rollback race was exactly a path that touched
//     granules out of protocol after a failed update.
//
//  2. No granule waits under the exclusive latch. The physical latch
//     serializes page access and is always taken *after* the granule
//     locks; a Manager.Acquire while holding an exclusive latch can
//     deadlock against a holder waiting for the latch. The analyzer
//     flags any Acquire between a sync .Lock() and its .Unlock() in
//     the same function.
//
// The analysis is a single lexical pass per function body (branches
// are treated as sequential), which matches how the engine's lock
// paths are written; function literals are analyzed independently.
// Calls to same-package helpers participate through an interprocedural
// summary: each function's transitively-acquired granule tiers are
// computed over the package call graph, so `x.lockPages(...)` after a
// page acquisition, or any acquiring helper called under the latch, is
// checked without name heuristics.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"burtree/internal/lint/framework"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "enforces DGL acquisition order (tree → cell → page granules, by name tier) and forbids " +
		"Manager.Acquire while an exclusive sync lock is held (granules are always taken before the latch)",
	Run: run,
}

// Granule tiers in canonical acquisition order.
const (
	tierUnknown = -1
	tierTree    = 0
	tierCell    = 1
	tierPage    = 2
)

var tierName = map[int]string{tierTree: "tree", tierCell: "cell", tierPage: "page"}

func run(pass *framework.Pass) error {
	acq := acquireSummary(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanBody(pass, n.Body, acq)
				}
				return false
			case *ast.FuncLit:
				scanBody(pass, n.Body, acq)
				return false
			}
			return true
		})
	}
	return nil
}

// acquireSummary computes, for every function in the package, the
// bitmask of granule tiers it (transitively) acquires, by fixed point
// over the call graph. Shared through the facts store.
func acquireSummary(pass *framework.Pass) map[*framework.Func]int {
	return pass.Prog.FactOnce("lockorder.acquires", func() any {
		masks := make(map[*framework.Func]int)
		for _, fn := range pass.Prog.SortedFuncs() {
			if fn.Decl.Body == nil {
				continue
			}
			mask := 0
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, name, ok := framework.ReceiverOf(pass.TypesInfo, call)
				if ok && isDGLManager(recv) && name == "Acquire" && len(call.Args) >= 2 {
					if tier := tierOf(call.Args[1]); tier != tierUnknown {
						mask |= 1 << tier
					}
				}
				return true
			})
			masks[fn] = mask
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range pass.Prog.SortedFuncs() {
				for _, cs := range fn.Calls {
					for _, t := range cs.Targets {
						if merged := masks[fn] | masks[t]; merged != masks[fn] {
							masks[fn] = merged
							changed = true
						}
					}
				}
			}
		}
		return masks
	}).(map[*framework.Func]int)
}

// summaryOf returns the acquired-tier mask of a call's same-package
// static callee, 0 otherwise.
func summaryOf(pass *framework.Pass, call *ast.CallExpr, acq map[*framework.Func]int) int {
	callee := framework.StaticCallee(pass.TypesInfo, call)
	if callee == nil {
		return 0
	}
	fn := pass.Prog.FuncOf(callee)
	if fn == nil {
		return 0
	}
	return acq[fn]
}

// scanBody walks one function body in lexical order, tracking the
// latch and the highest granule tier acquired so far. Nested function
// literals get their own scan with fresh state. Same-package calls
// acquire their summary tiers at the call site.
func scanBody(pass *framework.Pass, body *ast.BlockStmt, acq map[*framework.Func]int) {
	latchHeld := false
	var latchPos token.Pos
	maxTier := tierUnknown

	acquire := func(pos token.Pos, tier int, via string) {
		if latchHeld {
			pass.Reportf(pos, "granule lock acquired%s while holding the exclusive latch (taken at %s); granules must be acquired before the latch", via, pass.Fset.Position(latchPos))
		}
		if maxTier != tierUnknown && tier < maxTier {
			pass.Reportf(pos, "%s granule acquired%s after a %s granule; canonical DGL order is tree → cell → page", tierName[tier], via, tierName[maxTier])
		}
		if tier > maxTier {
			maxTier = tier
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanBody(pass, lit.Body, acq)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := framework.ReceiverOf(pass.TypesInfo, call)
		if !ok {
			if mask := summaryOf(pass, call, acq); mask != 0 {
				for tier := tierTree; tier <= tierPage; tier++ {
					if mask&(1<<tier) != 0 {
						acquire(call.Pos(), tier, " by the called helper")
					}
				}
			}
			return true
		}
		switch {
		case isSyncLock(recv) && name == "Lock":
			latchHeld, latchPos = true, call.Pos()
		case isSyncLock(recv) && name == "Unlock":
			latchHeld = false
		case isDGLManager(recv):
			switch name {
			case "Acquire":
				if latchHeld {
					pass.Reportf(call.Pos(), "granule lock acquired while holding the exclusive latch (taken at %s); granules must be acquired before the latch", pass.Fset.Position(latchPos))
				}
				if len(call.Args) >= 2 {
					tier := tierOf(call.Args[1])
					if tier != tierUnknown {
						if maxTier != tierUnknown && tier < maxTier {
							pass.Reportf(call.Pos(), "%s granule acquired after a %s granule; canonical DGL order is tree → cell → page", tierName[tier], tierName[maxTier])
						}
						if tier > maxTier {
							maxTier = tier
						}
					}
				}
			case "ReleaseAll", "Begin":
				maxTier = tierUnknown
			}
		default:
			if mask := summaryOf(pass, call, acq); mask != 0 {
				for tier := tierTree; tier <= tierPage; tier++ {
					if mask&(1<<tier) != 0 {
						acquire(call.Pos(), tier, " by the called helper")
					}
				}
			}
		}
		return true
	})
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncLock(t types.Type) bool {
	return framework.NamedFrom(t, "sync", "Mutex") || framework.NamedFrom(t, "sync", "RWMutex")
}

// isDGLManager reports whether t is the dgl lock manager.
func isDGLManager(t types.Type) bool {
	return framework.NamedFrom(t, "dgl", "Manager")
}

// tierOf classifies a granule expression by the names it mentions.
// The engine's naming convention carries the tier: TreeGranule and
// tree-granule locals mention "tree", cellOf/cellsOfRect results and
// cell slices mention "cell", pageGranule results mention "page". The
// literal 0 is the tree granule. Mixed mentions take the highest tier
// (a "pageGranule" helper is a page no matter what else it mentions);
// unknown names impose no constraint.
func tierOf(e ast.Expr) int {
	var names []string
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			names = append(names, strings.ToLower(id.Name))
		}
		if lit, ok := n.(*ast.BasicLit); ok && lit.Value == "0" {
			names = append(names, "tree")
		}
		return true
	})
	tier := tierUnknown
	for _, name := range names {
		switch {
		case strings.Contains(name, "page"):
			return tierPage
		case strings.Contains(name, "cell"):
			tier = tierCell
		case strings.Contains(name, "tree") && tier < tierCell:
			tier = tierTree
		}
	}
	return tier
}
