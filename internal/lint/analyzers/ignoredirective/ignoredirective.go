// Package ignoredirective polices the //burlint:ignore escape hatch
// itself.
//
// A suppression is a debt the codebase takes on knowingly, so every
// directive must name a real analyzer and carry a written reason:
//
//	//burlint:ignore closecheck error path: the open failure is the one to surface
//
// Directives with no analyzer name, an unknown analyzer name, or no
// reason are themselves diagnostics — an ignore can never silently
// widen or rot into a bare comment. Unlike the invariant analyzers,
// this one runs on _test.go files too: a malformed directive is
// malformed wherever it lives.
//
// File-scope directives (above the package clause) are rejected for
// hotpath: the allocation budget is audited per statement, so each
// exemption must sit on the line it excuses.
package ignoredirective

import (
	"fmt"
	"sort"
	"strings"

	"burtree/internal/lint/framework"
)

// New returns the directive validator. It takes the known analyzer
// names (rather than importing the registry) to avoid an import cycle
// with the package that assembles the full suite.
func New(known []string) *framework.Analyzer {
	names := make(map[string]bool, len(known)+1)
	for _, n := range known {
		names[n] = true
	}
	names["ignoredirective"] = true
	sorted := append([]string(nil), known...)
	sort.Strings(sorted)
	list := strings.Join(sorted, ", ")

	return &framework.Analyzer{
		Name: "ignoredirective",
		Doc: "validates //burlint:ignore directives: each must name a known analyzer and carry a " +
			"non-empty reason, so suppressions stay auditable",
		Run: func(pass *framework.Pass) error {
			return run(pass, names, list)
		},
	}
}

func run(pass *framework.Pass, known map[string]bool, list string) error {
	for _, f := range pass.Files {
		for _, d := range framework.Directives(pass.Fset, f) {
			switch {
			case d.Analyzer == "":
				pass.Reportf(d.Pos, "burlint:ignore directive names no analyzer; write %s", usage())
			case !known[d.Analyzer]:
				pass.Reportf(d.Pos, "burlint:ignore names unknown analyzer %q (known: %s)", d.Analyzer, list)
			case d.Reason == "":
				pass.Reportf(d.Pos, "burlint:ignore %s has no reason; every suppression must say why it is sound", d.Analyzer)
			case d.File && d.Analyzer == "hotpath":
				pass.Reportf(d.Pos, "burlint:ignore hotpath cannot be file-scope: the allocation budget is audited per statement, so put the directive on the line it excuses")
			}
		}
	}
	return nil
}

func usage() string {
	return fmt.Sprintf("`%s <analyzer> <reason>`", framework.IgnorePrefix)
}
