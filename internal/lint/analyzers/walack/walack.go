// Package walack enforces the write-ahead-log acknowledgement
// contract on the index front-ends.
//
// Invariant: a mutation that can be acknowledged as durable must reach
// the WAL before the ack. Concretely, every exported mutation method
// (Insert, Update, Delete, UpdateBatch) on a type that carries a
// *wal.Log (or a slice of them, like ShardedIndex's per-shard logs)
// must, on every path that returns a nil error, first call a logging
// function — wal.Append / wal.AppendAsync directly, or a same-package
// helper (logAppend, logTo) that transitively reaches one. The
// durability-off case is inside the helpers (`if x.wal == nil`), so
// the mutation paths log unconditionally; a new mutation path that
// skips the log is exactly the bug this analyzer exists to catch: it
// acknowledges state recovery cannot replay.
//
// The check is lexical per method: a `return nil` (in the error
// position) is flagged unless a logging call appears earlier in the
// method source (function literals included), or the return value is
// itself a logging call. Returns of non-nil/unknown error expressions
// are never flagged — they are failure paths or cannot be proven to
// ack. BulkInsert is exempt by contract: it checkpoints instead of
// logging.
package walack

import (
	"go/ast"
	"go/token"
	"go/types"

	"burtree/internal/lint/framework"
)

// Analyzer is the walack analyzer.
var Analyzer = &framework.Analyzer{
	Name: "walack",
	Doc: "exported mutation methods (Insert/Update/Delete/UpdateBatch) on WAL-carrying index types must reach " +
		"wal.Append/AppendAsync (directly or via a logging helper) before acknowledging success, " +
		"so no acked state is invisible to recovery",
	Run: run,
}

// mutationMethods are the acking mutation surface of the front-ends.
var mutationMethods = map[string]bool{
	"Insert": true, "Update": true, "Delete": true, "UpdateBatch": true,
}

func run(pass *framework.Pass) error {
	carriers := walCarriers(pass.Pkg)
	if len(carriers) == 0 {
		return nil
	}
	logging := loggingFuncs(pass)

	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !mutationMethods[fn.Name.Name] {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Signature().Recv()
			if recv == nil || !carriers[deref(recv.Type())] {
				continue
			}
			checkMethod(pass, fn, logging)
		}
	}
	return nil
}

// checkMethod flags success returns not preceded by a logging call.
func checkMethod(pass *framework.Pass, fn *ast.FuncDecl, logging map[*types.Func]bool) {
	// Lexical positions of every call that reaches the WAL, including
	// inside function literals (the sharded batch path logs from its
	// per-shard goroutines).
	var logPositions []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isLoggingCall(pass, call, logging) {
			logPositions = append(logPositions, call.Pos())
		}
		return true
	})
	loggedBefore := func(pos token.Pos) bool {
		for _, p := range logPositions {
			if p < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		errExpr := ret.Results[len(ret.Results)-1]
		switch e := errExpr.(type) {
		case *ast.Ident:
			if e.Name == "nil" && !loggedBefore(ret.Pos()) {
				pass.Reportf(ret.Pos(), "%s acknowledges success without reaching the WAL: no wal.Append/AppendAsync (or logging helper) call precedes this return", fn.Name.Name)
			}
		case *ast.CallExpr:
			// A returned call can be the ack itself (`return
			// x.logAppend(...)`) or a same-package tail that may
			// succeed (`return x.maybeMerge()`); the latter must come
			// after the log call. Foreign constructors (fmt.Errorf,
			// errors.New) only build failures and are never acks.
			callee := calleeFunc(pass.TypesInfo, e)
			samePkg := callee != nil && callee.Pkg() == pass.Pkg
			if samePkg && !isLoggingCall(pass, e, logging) && !loggedBefore(ret.Pos()) {
				pass.Reportf(ret.Pos(), "%s acknowledges success without reaching the WAL: the returned helper does not log and no logging call precedes it", fn.Name.Name)
			}
		}
		return true
	})
}

// walCarriers returns the package-level named types that carry a
// *wal.Log (directly, or as a slice/array of per-shard logs).
func walCarriers(pkg *types.Package) map[types.Type]bool {
	out := map[types.Type]bool{}
	if pkg == nil {
		return out
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			switch t := ft.(type) {
			case *types.Slice:
				ft = t.Elem()
			case *types.Array:
				ft = t.Elem()
			}
			if isWALLog(ft) {
				out[tn.Type()] = true
				break
			}
		}
	}
	return out
}

// loggingFuncs computes the same-package functions that (transitively)
// call Append/AppendAsync on a *wal.Log.
func loggingFuncs(pass *framework.Pass) map[*types.Func]bool {
	logging := map[*types.Func]bool{}
	// calls[f] lists the same-package functions f calls.
	calls := map[*types.Func][]*types.Func{}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isDirectWALAppend(pass.TypesInfo, call) {
					logging[obj] = true
					return true
				}
				if callee := calleeFunc(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
					calls[obj] = append(calls[obj], callee)
				}
				return true
			})
		}
	}
	// Fixed point: a function that calls a logging function logs.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if logging[fn] {
				continue
			}
			for _, c := range callees {
				if logging[c] {
					logging[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return logging
}

// isLoggingCall reports whether the call reaches the WAL: a direct
// Append/AppendAsync on a *wal.Log, or a call to a known logging
// function.
func isLoggingCall(pass *framework.Pass, call *ast.CallExpr, logging map[*types.Func]bool) bool {
	if isDirectWALAppend(pass.TypesInfo, call) {
		return true
	}
	callee := calleeFunc(pass.TypesInfo, call)
	return callee != nil && logging[callee]
}

// isDirectWALAppend matches l.Append(...) / l.AppendAsync(...) where l
// is a *wal.Log.
func isDirectWALAppend(info *types.Info, call *ast.CallExpr) bool {
	recv, name, ok := framework.ReceiverOf(info, call)
	if !ok || (name != "Append" && name != "AppendAsync") {
		return false
	}
	return isWALLog(recv)
}

// calleeFunc resolves the called function or method, if statically
// known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isWALLog reports whether t is wal.Log (possibly behind a pointer)
// from a package whose path ends in "wal".
func isWALLog(t types.Type) bool {
	return framework.NamedFrom(t, "wal", "Log")
}

func deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
