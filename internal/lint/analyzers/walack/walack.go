// Package walack enforces the write-ahead-log acknowledgement
// contract on the index front-ends.
//
// Invariant: a mutation that can be acknowledged as durable must reach
// the WAL before the ack. Concretely, every exported mutation method
// (Insert, Update, Delete, UpdateBatch) on a type that carries a
// *wal.Log (or a slice of them, like ShardedIndex's per-shard logs)
// must, on every path that returns a nil error, first call a logging
// function — wal.Append / wal.AppendAsync directly, or a same-package
// helper (logAppend, logTo) that transitively reaches one. The
// durability-off case is inside the helpers (`if x.wal == nil`), so
// the mutation paths log unconditionally; a new mutation path that
// skips the log is exactly the bug this analyzer exists to catch: it
// acknowledges state recovery cannot replay.
//
// The check is path-sensitive over the function's CFG: a `return nil`
// (in the error position) is flagged if some path from the function
// entry mutates receiver state and reaches the return without passing
// a logging call. Paths that mutate nothing — empty-batch early
// returns, the zero-iteration side of a fan-out loop — acknowledge
// nothing, so they need no log. Spawning a function literal that logs
// (the sharded batch path logs from its per-shard goroutines) counts
// as logging at the spawn point, and closure-held receiver writes
// count as mutations the same way. The logging-helper set is the
// interprocedural summary "transitively reaches
// wal.Append/AppendAsync", computed on the package call graph and
// shared with errflow through the facts store. Returns of
// non-nil/unknown error expressions are never flagged — they are
// failure paths or cannot be proven to ack. BulkInsert is exempt by
// contract: it checkpoints instead of logging.
package walack

import (
	"go/ast"
	"go/types"

	"burtree/internal/lint/framework"
)

// Analyzer is the walack analyzer.
var Analyzer = &framework.Analyzer{
	Name: "walack",
	Doc: "exported mutation methods (Insert/Update/Delete/UpdateBatch) on WAL-carrying index types must reach " +
		"wal.Append/AppendAsync (directly or via a logging helper) on every path that acknowledges success, " +
		"so no acked state is invisible to recovery",
	Run: run,
}

// MutationMethods are the acking mutation surface of the front-ends,
// shared with errflow (same surface, complementary invariant).
var MutationMethods = map[string]bool{
	"Insert": true, "Update": true, "Delete": true, "UpdateBatch": true,
}

func run(pass *framework.Pass) error {
	carriers := Carriers(pass)
	if len(carriers) == 0 {
		return nil
	}
	for _, fn := range pass.Prog.SortedFuncs() {
		decl := fn.Decl
		if decl.Recv == nil || decl.Body == nil || !MutationMethods[decl.Name.Name] {
			continue
		}
		if pass.IsTestFile(decl.Pos()) {
			continue
		}
		recv := fn.Obj.Signature().Recv()
		if recv == nil || !carriers[deref(recv.Type())] {
			continue
		}
		checkMethod(pass, fn)
	}
	return nil
}

// Path states for the product dataflow: each path through the method
// carries one of four states; a block holds the set of states paths
// reach it in.
const (
	stMut      = 1 << 0 // a receiver write happened on this path
	stUnlogged = 1 << 1 // no logging call has happened on this path
	numStates  = 4
)

// checkMethod flags success returns some path reaches having mutated
// receiver state without a logging call.
func checkMethod(pass *framework.Pass, fn *framework.Func) {
	cfg := pass.Prog.CFGOf(fn)
	name := fn.Decl.Name.Name
	recv := framework.ReceiverVar(pass.TypesInfo, fn.Decl)

	logsAt := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok && IsLoggingCall(pass, call) {
				found = true
			}
			return true
		})
		return found
	}
	mutatesAt := func(n ast.Node) bool {
		return recv != nil && framework.WritesThrough(pass.TypesInfo, n, recv, true)
	}
	// step applies one node's events to a path state.
	step := func(state uint8, n ast.Node) uint8 {
		if mutatesAt(n) {
			state |= stMut
		}
		if logsAt(n) {
			state &^= stUnlogged
		}
		return state
	}
	// blockStep applies a whole block.
	blockStep := func(states uint16, b *framework.Block) uint16 {
		var out uint16
		for s := uint8(0); s < numStates; s++ {
			if states&(1<<s) == 0 {
				continue
			}
			cur := s
			for _, n := range b.Nodes {
				cur = step(cur, n)
			}
			out |= 1 << cur
		}
		return out
	}

	// Forward propagation of reachable path-state sets.
	states := map[*framework.Block]uint16{cfg.Entry: 1 << stUnlogged}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			in, ok := states[b]
			if !ok {
				continue
			}
			out := blockStep(in, b)
			for _, s := range b.Succs {
				if merged := states[s] | out; merged != states[s] {
					states[s] = merged
					changed = true
				}
			}
		}
	}

	for _, b := range cfg.Blocks {
		ret, ok := b.Return()
		if !ok || len(ret.Results) == 0 {
			continue
		}
		// State set at the return: entry states advanced through the
		// block's earlier nodes.
		bad := false
		for s := uint8(0); s < numStates; s++ {
			if states[b]&(1<<s) == 0 {
				continue
			}
			cur := s
			for _, n := range b.Nodes[:len(b.Nodes)-1] {
				cur = step(cur, n)
			}
			if cur&stMut != 0 && cur&stUnlogged != 0 {
				bad = true
			}
		}
		if !bad {
			continue
		}
		errExpr := ret.Results[len(ret.Results)-1]
		switch e := errExpr.(type) {
		case *ast.Ident:
			if e.Name == "nil" {
				pass.Reportf(ret.Pos(), "%s acknowledges success without reaching the WAL: a path mutates state and reaches this return with no wal.Append/AppendAsync (or logging helper) call", name)
			}
		case *ast.CallExpr:
			// A returned call can be the ack itself (`return
			// x.logAppend(...)`) or a same-package tail that may
			// succeed (`return x.maybeMerge()`); the latter must come
			// after the log call. Foreign constructors (fmt.Errorf,
			// errors.New) only build failures and are never acks.
			callee := framework.StaticCallee(pass.TypesInfo, e)
			samePkg := callee != nil && callee.Pkg() == pass.Pkg
			if samePkg && !IsLoggingCall(pass, e) {
				pass.Reportf(ret.Pos(), "%s acknowledges success without reaching the WAL: the returned helper does not log and a mutating path reaches it with no logging call", name)
			}
		}
	}
}

// Carriers returns the package-level named types that carry a
// *wal.Log (directly, or as a slice/array of per-shard logs). Cached
// in the facts store and shared with errflow.
func Carriers(pass *framework.Pass) map[types.Type]bool {
	return pass.Prog.FactOnce("walack.carriers", func() any {
		out := map[types.Type]bool{}
		pkg := pass.Pkg
		if pkg == nil {
			return out
		}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				ft := st.Field(i).Type()
				switch t := ft.(type) {
				case *types.Slice:
					ft = t.Elem()
				case *types.Array:
					ft = t.Elem()
				}
				if isWALLog(ft) {
					out[tn.Type()] = true
					break
				}
			}
		}
		return out
	}).(map[types.Type]bool)
}

// Logging returns the summary "transitively calls Append/AppendAsync
// on a *wal.Log", computed over the package call graph. Cached in the
// facts store and shared with errflow.
func Logging(pass *framework.Pass) map[*framework.Func]bool {
	return pass.Prog.FactOnce("walack.logging", func() any {
		return pass.Prog.Transitive(func(fn *framework.Func) bool {
			if fn.Decl.Body == nil {
				return false
			}
			direct := false
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				if direct {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && IsDirectWALAppend(pass.TypesInfo, call) {
					direct = true
				}
				return true
			})
			return direct
		})
	}).(map[*framework.Func]bool)
}

// IsLoggingCall reports whether the call reaches the WAL: a direct
// Append/AppendAsync on a *wal.Log, or a call to a function whose
// summary says it transitively logs.
func IsLoggingCall(pass *framework.Pass, call *ast.CallExpr) bool {
	if IsDirectWALAppend(pass.TypesInfo, call) {
		return true
	}
	callee := framework.StaticCallee(pass.TypesInfo, call)
	if callee == nil {
		return false
	}
	fn := pass.Prog.FuncOf(callee)
	return fn != nil && Logging(pass)[fn]
}

// IsDirectWALAppend matches l.Append(...) / l.AppendAsync(...) where l
// is a *wal.Log.
func IsDirectWALAppend(info *types.Info, call *ast.CallExpr) bool {
	recv, name, ok := framework.ReceiverOf(info, call)
	if !ok || (name != "Append" && name != "AppendAsync") {
		return false
	}
	return isWALLog(recv)
}

// isWALLog reports whether t is wal.Log (possibly behind a pointer)
// from a package whose path ends in "wal".
func isWALLog(t types.Type) bool {
	return framework.NamedFrom(t, "wal", "Log")
}

func deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
