// Package hotpath enforces the per-op allocation budget on the
// bottom-up update path.
//
// The paper's result — and ROADMAP item 3 — hold only while one
// update costs a handful of page touches, so the engine's per-op code
// must not heap-allocate per iteration. A function is marked as a
// hot-path root with a
//
//	//burlint:hotpath
//
// line in its doc comment (UpdateBatch's group-apply pass, the
// memtable absorb methods). The analyzer computes every function
// reachable from a root through the package's static call graph —
// interface calls devirtualized to package-local implementations, so
// the strategy dispatch in core resolves to the real appliers — and
// flags, inside the loop bodies of those functions, each construct
// that allocates per iteration:
//
//   - fmt calls (every fmt call allocates its format state),
//   - function literals (closures capture on the heap),
//   - make of a slice, map, or channel,
//   - slice and map composite literals,
//   - arguments boxed into a variadic ...interface{} parameter.
//
// A function called from inside a hot loop runs per op in its
// entirety, so its whole body is checked, and the marking propagates
// through its own calls.
//
// Error branches are exempt automatically: an allocation in a block
// from which every terminating path returns a non-nil error (or
// panics) is cold by construction, so `return fmt.Errorf(...)` needs
// no annotation. Anything else needs an explicit per-line
// `//burlint:ignore hotpath <reason>`; file-scope ignores are rejected
// for this analyzer (see ignoredirective) so every exemption stays
// auditable.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"burtree/internal/lint/framework"
)

// Marker introduces a hot-path root annotation in a doc comment.
const Marker = "//burlint:hotpath"

// Analyzer is the hotpath analyzer.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc: "functions reachable from //burlint:hotpath roots must not heap-allocate per op: no fmt calls, " +
		"closures, make, slice/map literals, or interface boxing in loop bodies (error branches are exempt)",
	Run: run,
}

func run(pass *framework.Pass) error {
	prog := pass.Prog
	if prog == nil || prog.Pkg == nil {
		return nil
	}
	roots := rootFuncs(prog)
	if len(roots) == 0 {
		return nil
	}

	// hot[fn] names the root that makes fn's loops per-op code.
	hot := make(map[*framework.Func]string)
	var markHot func(fn *framework.Func, root string)
	markHot = func(fn *framework.Func, root string) {
		if _, ok := hot[fn]; ok {
			return
		}
		hot[fn] = root
		for _, cs := range fn.Calls {
			for _, t := range cs.Targets {
				markHot(t, root)
			}
		}
	}
	for _, r := range roots {
		markHot(r, r.Obj.Name())
	}

	// perOp[fn]: fn is invoked from inside a hot loop, so every call of
	// it is one op and its whole body is budgeted — transitively.
	perOp := make(map[*framework.Func]string)
	var markPerOp func(fn *framework.Func, root string)
	markPerOp = func(fn *framework.Func, root string) {
		if _, ok := perOp[fn]; ok {
			return
		}
		perOp[fn] = root
		for _, cs := range fn.Calls {
			for _, t := range cs.Targets {
				markPerOp(t, root)
			}
		}
	}
	for fn, root := range hot {
		if fn.Decl.Body == nil {
			continue
		}
		loops := loopBodies(fn.Decl.Body)
		for _, cs := range fn.Calls {
			if !within(loops, cs.Call.Pos()) {
				continue
			}
			for _, t := range cs.Targets {
				markPerOp(t, root)
			}
		}
	}

	pass.Prog.FactOnce(FactKey, func() any {
		set := make(map[*types.Func]bool, len(hot))
		for fn := range hot {
			set[fn.Obj] = true
		}
		return set
	})

	for _, fn := range prog.SortedFuncs() {
		if fn.Decl.Body == nil || pass.IsTestFile(fn.Decl.Pos()) {
			continue
		}
		if root, ok := perOp[fn]; ok {
			check(pass, fn, nil, root)
		} else if root, ok := hot[fn]; ok {
			if loops := loopBodies(fn.Decl.Body); len(loops) > 0 {
				check(pass, fn, loops, root)
			}
		}
	}
	return nil
}

// FactKey stores the hot function set (map[*types.Func]bool) for other
// analyzers.
const FactKey = "hotpath.hot"

// rootFuncs returns the functions whose doc comment carries the
// //burlint:hotpath marker.
func rootFuncs(prog *framework.Program) []*framework.Func {
	var out []*framework.Func
	for _, fn := range prog.SortedFuncs() {
		if fn.Decl.Doc == nil {
			continue
		}
		for _, c := range fn.Decl.Doc.List {
			if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
				out = append(out, fn)
				break
			}
		}
	}
	return out
}

// check flags per-op allocations in fn. With loops non-nil only nodes
// inside those loop bodies are budgeted (fn itself is hot); with loops
// nil the whole body is (fn is per-op). Cold blocks — every
// terminating path fails — are exempt either way.
func check(pass *framework.Pass, fn *framework.Func, loops []span, root string) {
	cfg := pass.Prog.CFGOf(fn)
	name := fn.Obj.Name()
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if loops != nil && !within(loops, n.Pos()) {
			return true // keep walking: loops may be nested deeper
		}
		if coldAt(cfg, n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated per op in %s (hot via %s); hoist it out of the per-op path", name, root)
		case *ast.CompositeLit:
			switch typeOf(pass.TypesInfo, n).(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "composite literal allocates per op in %s (hot via %s); reuse a buffer or hoist it", name, root)
			}
		case *ast.CallExpr:
			switch {
			case isFmtCall(pass.TypesInfo, n):
				pass.Reportf(n.Pos(), "fmt call allocates per op in %s (hot via %s); format off the hot path or fail the branch", name, root)
			case isAllocatingMake(pass.TypesInfo, n):
				pass.Reportf(n.Pos(), "make allocates per op in %s (hot via %s); hoist the allocation and reuse it", name, root)
			case boxesIntoVariadic(pass.TypesInfo, n):
				pass.Reportf(n.Pos(), "argument boxed into interface per op in %s (hot via %s); avoid the variadic-any call on the hot path", name, root)
			}
		}
		return true
	})
}

type span struct{ lo, hi token.Pos }

func loopBodies(body *ast.BlockStmt) []span {
	var out []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			out = append(out, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			out = append(out, span{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	return out
}

func within(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}

// coldAt reports whether the innermost CFG node covering pos sits in a
// block that itself ends the function on a failure (Block.Fails). The
// check is deliberately block-local rather than MustFail: hot roots
// like batch appliers end by forwarding an error variable, which makes
// every path "possibly failing" and would exempt the whole loop.
func coldAt(cfg *framework.CFG, pos token.Pos) bool {
	if cfg == nil {
		return false
	}
	var best ast.Node
	var blk *framework.Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				if best == nil || n.End()-n.Pos() < best.End()-best.Pos() {
					best, blk = n, b
				}
			}
		}
	}
	return blk != nil && blk.Fails()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

func isFmtCall(info *types.Info, call *ast.CallExpr) bool {
	f := framework.StaticCallee(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt"
}

// isAllocatingMake matches make of a slice, map, or channel.
func isAllocatingMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	switch typeOf(info, call.Args[0]).(type) {
	case *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// boxesIntoVariadic reports whether a non-interface argument is passed
// to a variadic interface parameter (so it is boxed on the heap).
// Spread calls (xs...) pass the slice through unboxed.
func boxesIntoVariadic(info *types.Info, call *ast.CallExpr) bool {
	if call.Ellipsis != token.NoPos {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || !sig.Variadic() {
		return false
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().Underlying().(*types.Slice)
	if !ok || !types.IsInterface(slice.Elem()) {
		return false
	}
	for i := sig.Params().Len() - 1; i < len(call.Args); i++ {
		if t := info.Types[call.Args[i]].Type; t != nil && !types.IsInterface(t) {
			return true
		}
	}
	return false
}
