// Package closecheck flags statements that silently discard the error
// of a Close or Sync call.
//
// Invariant: on the durability path a failed Close/Sync means bytes
// may not be on disk — a WAL segment, snapshot file, or page store
// whose close error is dropped can acknowledge state that a crash then
// loses (the WAL poisons itself on a failed fsync for exactly this
// reason). A discard must therefore be explicit: either handle the
// error, or write `_ = f.Close()` so the decision is visible and
// reviewable. Deferred closes are not flagged — the read-path
// `defer f.Close()` idiom is harmless and the write paths all return
// their close errors through the atomicfile/WAL helpers.
package closecheck

import (
	"go/ast"
	"go/types"

	"burtree/internal/lint/framework"
)

// Analyzer is the closecheck analyzer.
var Analyzer = &framework.Analyzer{
	Name: "closecheck",
	Doc: "flags Close()/Sync() calls whose error result is silently discarded; " +
		"on the durability path a dropped close error can acknowledge state a crash then loses " +
		"(discard explicitly with `_ = f.Close()` if the error truly cannot matter)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, name, ok := framework.ReceiverOf(pass.TypesInfo, call)
			if !ok || (name != "Close" && name != "Sync") || len(call.Args) != 0 {
				return true
			}
			if !returnsOnlyError(pass.TypesInfo, call) {
				return true
			}
			pass.Reportf(call.Pos(), "%s error silently discarded; handle it or discard explicitly with `_ = %s()`", name, exprString(call.Fun))
			return true
		})
	}
	return nil
}

// returnsOnlyError reports whether the call produces exactly one
// value of type error.
func returnsOnlyError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// exprString renders a selector chain like "f.Close" for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "x"
	}
}
