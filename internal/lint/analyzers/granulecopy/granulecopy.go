// Package granulecopy flags value copies of structs that carry
// synchronization state — beyond what vet's copylocks reports.
//
// Invariant: lock state has one home. A copied sync.Mutex (or
// WaitGroup, Once, Cond, sync.Map, sync/atomic value) is a fork of the
// lock: both copies compile, both "work", and they no longer exclude
// each other. The same holds for the DGL descriptors — a dgl.Txn is
// the identity the lock manager grants modes to, and a copied Txn
// makes Release/ReleaseAll operate on a ghost owner; a copied
// dgl.Manager forks the whole lock table. vet's copylocks only flags
// types that implement sync.Locker; this analyzer flags any value
// copy (assignment, initializer, by-value parameter/receiver/result,
// call argument, return, range value) of a type that transitively
// contains one of those components.
package granulecopy

import (
	"go/ast"
	"go/types"

	"burtree/internal/lint/framework"
)

// Analyzer is the granulecopy analyzer.
var Analyzer = &framework.Analyzer{
	Name: "granulecopy",
	Doc: "flags value copies of types transitively containing sync primitives, sync/atomic values, " +
		"or DGL descriptors (dgl.Txn, dgl.Manager); a copied lock no longer excludes its original — " +
		"pass these by pointer",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						checkByValueField(pass, field, "receiver")
					}
				}
				checkFuncType(pass, n.Type)
			case *ast.FuncLit:
				checkFuncType(pass, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// `_ = x` materializes no second copy anyone can
					// lock through.
					if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
						continue
					}
					checkCopiedValue(pass, rhs, "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopiedValue(pass, v, "initializer")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopiedValue(pass, r, "return")
				}
			case *ast.CallExpr:
				if !isNewOrLen(pass.TypesInfo, n) {
					for _, arg := range n.Args {
						checkCopiedValue(pass, arg, "call argument")
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if part, ok := lockComponent(typeOf(pass.TypesInfo, n.Value)); ok {
						pass.Reportf(n.Value.Pos(), "range value copies %s (contains %s); iterate by index or use pointers", typeLabel(pass.TypesInfo, n.Value), part)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkFuncType flags by-value parameters and results of lock-carrying
// types.
func checkFuncType(pass *framework.Pass, ft *ast.FuncType) {
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			checkByValueField(pass, field, "parameter")
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			checkByValueField(pass, field, "result")
		}
	}
}

func checkByValueField(pass *framework.Pass, field *ast.Field, kind string) {
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok || tv.Type == nil {
		return
	}
	if part, ok := lockComponent(tv.Type); ok {
		pass.Reportf(field.Type.Pos(), "by-value %s of type %s copies %s; pass by pointer", kind, tv.Type, part)
	}
}

// checkCopiedValue flags expressions that copy an existing value of a
// lock-carrying type: identifiers, field selections, dereferences, and
// index expressions. Composite literals, & expressions, and call
// results are not existing values being duplicated.
func checkCopiedValue(pass *framework.Pass, e ast.Expr, context string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := typeOf(pass.TypesInfo, e)
	if part, ok := lockComponent(t); ok {
		pass.Reportf(e.Pos(), "%s copies %s (contains %s); the copy and the original no longer exclude each other — use a pointer", context, typeLabel(pass.TypesInfo, e), part)
	}
}

// isNewOrLen reports calls whose arguments are not really copied:
// conversions and the builtins that take a value without duplicating
// its lock state for concurrent use are out of scope; only new/len/cap
// style builtins matter in practice for false positives.
func isNewOrLen(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	// Type conversions like GranuleID(x) do not copy struct state.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	// Idents in define position (range values) live in Defs, not Types.
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// typeLabel renders "a dgl.Txn"-style labels for messages.
func typeLabel(info *types.Info, e ast.Expr) string {
	t := typeOf(info, e)
	if t == nil {
		return "a value"
	}
	return "a " + types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// lockComponent reports whether t transitively contains (by value) a
// component whose copy forks synchronization state, and names it.
func lockComponent(t types.Type) (string, bool) {
	return findLock(t, map[types.Type]bool{})
}

func findLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true

	switch {
	case isSyncPrimitive(t):
		return "sync." + namedName(t), true
	case isAtomicValue(t):
		return "sync/atomic." + namedName(t), true
	case named(t, "dgl", "Txn"):
		return "dgl.Txn (the lock owner identity)", true
	case named(t, "dgl", "Manager"):
		return "dgl.Manager (the lock table)", true
	}

	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if part, ok := findLock(u.Field(i).Type(), seen); ok {
				return part, true
			}
		}
	case *types.Array:
		return findLock(u.Elem(), seen)
	}
	return "", false
}

var syncPrimitives = []string{"Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool"}

func isSyncPrimitive(t types.Type) bool {
	for _, name := range syncPrimitives {
		if named(t, "sync", name) {
			return true
		}
	}
	return false
}

var atomicValues = []string{"Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value"}

func isAtomicValue(t types.Type) bool {
	for _, name := range atomicValues {
		if named(t, "atomic", name) {
			return true
		}
	}
	return false
}

// named matches without pointer indirection: a *sync.Mutex field is
// shared, not copied, so only direct containment counts.
func named(t types.Type, pkgTail, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && framework.PkgTail(obj.Pkg(), pkgTail)
}

func namedName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
