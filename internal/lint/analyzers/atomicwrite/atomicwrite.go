// Package atomicwrite forbids creating durable artifacts with bare
// os.Create / os.OpenFile(O_CREATE) / os.WriteFile outside the shared
// internal/atomicfile helper.
//
// Invariant: an artifact that a loader parses (snapshot, manifest,
// trace, benchmark report) is replaced only by temp+fsync+rename, so a
// crash mid-write can never leave a torn file where a good one stood.
// This is the exact bug class PR 4 fixed in the snapshot writer, which
// used to truncate the old snapshot before writing the new one.
//
// Sanctioned creations that are not flagged:
//   - anything inside the internal/atomicfile package itself;
//   - os.CreateTemp (the first half of the atomic pattern);
//   - os.OpenFile with O_EXCL (creates a fresh name, such as a WAL
//     segment — it can never truncate an existing artifact, and torn
//     tails are the log reader's documented crash semantics).
package atomicwrite

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"

	"burtree/internal/lint/framework"
)

// Analyzer is the atomicwrite analyzer.
var Analyzer = &framework.Analyzer{
	Name: "atomicwrite",
	Doc: "flags artifact creation (os.Create, os.OpenFile(O_CREATE) without O_EXCL, os.WriteFile) " +
		"outside internal/atomicfile; artifacts must be replaced via temp+fsync+rename " +
		"(the PR 4 snapshot truncate-before-write bug class)",
	Run: run,
}

func run(pass *framework.Pass) error {
	if framework.PkgTail(pass.Pkg, "atomicfile") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := osFunc(pass.TypesInfo, call)
			if !ok {
				return true
			}
			switch name {
			case "Create", "WriteFile":
				pass.Reportf(call.Pos(), "artifact created with os.%s; use internal/atomicfile (temp+fsync+rename) so a crash cannot leave a torn artifact", name)
			case "OpenFile":
				if len(call.Args) >= 2 {
					if flags, known := intConst(pass.TypesInfo, call.Args[1]); known {
						if flags&int64(os.O_CREATE) != 0 && flags&int64(os.O_EXCL) == 0 {
							pass.Reportf(call.Pos(), "artifact created with os.OpenFile(O_CREATE) without O_EXCL; use internal/atomicfile (temp+fsync+rename) so a crash cannot leave a torn artifact")
						}
					} else {
						pass.Reportf(call.Args[1].Pos(), "os.OpenFile flags are not a constant; burlint cannot prove the call does not create an artifact (use a constant flag expression)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// osFunc resolves a call to a function of the real os package.
func osFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return "", false
	}
	return sel.Sel.Name, true
}

// intConst evaluates an expression to a constant int if possible.
func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}
