// Package goroutinelife enforces the background-goroutine lifecycle
// contract in library code.
//
// Every long-lived component in this engine owns its goroutines: the
// memtable merger and the shard rebalancer loop select on a stop
// channel and are joined through a WaitGroup by halt/stopRebalancer;
// the batch scatter phases join their workers before returning. A
// goroutine that nothing joins outlives its owner — Close returns
// while the loop still touches freed state, tests leak OS threads,
// and a crash in the orphan is unattributable. The group-commit
// leader in the WAL had exactly this shape before this analyzer.
//
// For each `go` statement in non-main, non-test code the analyzer
// resolves the spawned body (a function literal, or a same-package
// function/method called statically, like `go x.merge.run(...)`) and
// checks two things:
//
//   - Termination: every unconditional `for {}` loop in the body must
//     have a way out — a return or break, typically the stop-channel
//     select case. Ranging over a channel terminates when the owner
//     closes it, so it passes.
//
//   - Join: the goroutine must be tied back to an owner. Evidence is
//     a WaitGroup the body calls Done on (directly or through
//     same-package callees, translated through call arguments) that
//     some function in the package Waits on, or a channel the body
//     sends on or closes that some function in the package receives
//     from. Field-held WaitGroups (x.rebalWG, merger.done) match by
//     field identity, so the Wait may live in Close/Stop far from the
//     spawn.
//
// A goroutine that is deliberately fire-and-forget needs a per-line
// `//burlint:ignore goroutinelife <reason>` stating who bounds its
// lifetime.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"

	"burtree/internal/lint/framework"
)

// Analyzer is the goroutinelife analyzer.
var Analyzer = &framework.Analyzer{
	Name: "goroutinelife",
	Doc: "every go statement in library code must spawn a stoppable goroutine (infinite loops need a " +
		"return/break path, e.g. a stop-channel select) that an owner joins via a WaitGroup Wait or a " +
		"channel receive reachable from Close/Stop",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" {
		return nil
	}
	joins := packageJoinPoints(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, g, joins)
			return true
		})
	}
	return nil
}

func checkSpawn(pass *framework.Pass, g *ast.GoStmt, joins *joinPoints) {
	body := spawnedBody(pass, g.Call)
	if body == nil {
		return // dynamic call: cannot resolve, stay quiet
	}
	if loop := unstoppableLoop(body); loop != nil {
		pass.Reportf(loop.Pos(), "goroutine loops forever with no way out: add a return or break path (select on a stop channel) so Close/Stop can end it")
	}
	if !isJoined(pass, g, joins) {
		pass.Reportf(g.Pos(), "goroutine is never joined: no WaitGroup it marks Done is Waited on and no channel it signals is received from; tie it to its owner's Close/Stop")
	}
}

// spawnedBody resolves the body the go statement runs: a function
// literal's own body, or the declaration of a statically-called
// same-package function.
func spawnedBody(pass *framework.Pass, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := framework.StaticCallee(pass.TypesInfo, call); callee != nil {
		if fn := pass.Prog.FuncOf(callee); fn != nil {
			return fn.Decl.Body
		}
	}
	return nil
}

// unstoppableLoop returns the first `for {}` loop in body (nested
// literals excluded) with no exit: no return, no break out of it, and
// not a range over a channel.
func unstoppableLoop(body *ast.BlockStmt) *ast.ForStmt {
	var bad *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !hasExit(loop) {
			bad = loop
		}
		return true
	})
	return bad
}

// hasExit reports whether the infinite loop contains a return, a
// break that leaves it, or a goto (assumed outward).
func hasExit(loop *ast.ForStmt) bool {
	exit := false
	depth := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if exit {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m != ast.Node(loop) {
					// A nested breakable construct: an unlabeled break
					// inside it does not leave our loop. Walk it with
					// depth+1.
					depth++
					switch s := m.(type) {
					case *ast.ForStmt:
						walk(s.Body)
					case *ast.RangeStmt:
						walk(s.Body)
					case *ast.SwitchStmt:
						walk(s.Body)
					case *ast.TypeSwitchStmt:
						walk(s.Body)
					case *ast.SelectStmt:
						walk(s.Body)
					}
					depth--
					return false
				}
			case *ast.ReturnStmt:
				exit = true
			case *ast.BranchStmt:
				switch {
				case m.Tok == token.GOTO:
					exit = true
				case m.Tok == token.BREAK && (m.Label != nil || depth == 0):
					exit = true
				}
			}
			return true
		})
	}
	walk(loop.Body)
	return exit
}

// joinPoints is the package-wide owner side of the contract: which
// WaitGroup objects are Waited on and which channel objects are
// received from, anywhere in the package (Close/Stop included).
type joinPoints struct {
	waited   map[types.Object]bool
	received map[types.Object]bool
}

func packageJoinPoints(pass *framework.Pass) *joinPoints {
	return pass.Prog.FactOnce("goroutinelife.joins", func() any {
		j := &joinPoints{waited: map[types.Object]bool{}, received: map[types.Object]bool{}}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if recv, name, ok := framework.ReceiverOf(pass.TypesInfo, n); ok && name == "Wait" && isWaitGroup(recv) {
						if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
							if obj := chainObject(pass.TypesInfo, sel.X); obj != nil {
								j.waited[obj] = true
							}
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if obj := chainObject(pass.TypesInfo, n.X); obj != nil {
							j.received[obj] = true
						}
					}
				case *ast.RangeStmt:
					if t, ok := pass.TypesInfo.Types[n.X]; ok && t.Type != nil {
						if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
							if obj := chainObject(pass.TypesInfo, n.X); obj != nil {
								j.received[obj] = true
							}
						}
					}
				}
				return true
			})
		}
		return j
	}).(*joinPoints)
}

// isJoined reports whether the spawned goroutine is tied to an owner:
// it marks Done on a Waited WaitGroup or signals a received channel.
func (j *joinPoints) has(done, signaled map[types.Object]bool) bool {
	for obj := range done {
		if j.waited[obj] {
			return true
		}
	}
	for obj := range signaled {
		if j.received[obj] {
			return true
		}
	}
	return false
}

func isJoined(pass *framework.Pass, g *ast.GoStmt, joins *joinPoints) bool {
	done := map[types.Object]bool{}
	signaled := map[types.Object]bool{}
	collectSignals(pass, g.Call, done, signaled, map[*framework.Func]bool{})
	return joins.has(done, signaled)
}

// collectSignals gathers, from the spawned call, the WaitGroup objects
// the goroutine calls Done on and the channel objects it sends on or
// closes — looking through same-package static callees, translating
// objects that are the callee's parameters back to the caller's
// argument objects.
func collectSignals(pass *framework.Pass, call *ast.CallExpr, done, signaled map[types.Object]bool, seen map[*framework.Func]bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		bodySignals(pass, lit.Body, done, signaled, seen)
		return
	}
	callee := framework.StaticCallee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	fn := pass.Prog.FuncOf(callee)
	if fn == nil || fn.Decl.Body == nil || seen[fn] {
		return
	}
	seen[fn] = true
	subDone := map[types.Object]bool{}
	subSig := map[types.Object]bool{}
	bodySignals(pass, fn.Decl.Body, subDone, subSig, seen)
	translate(pass, fn, call, subDone, done)
	translate(pass, fn, call, subSig, signaled)
}

// translate maps objects collected inside callee back into the
// caller's frame: parameter objects become the corresponding argument
// chains; everything else (fields, captured locals) passes through.
func translate(pass *framework.Pass, callee *framework.Func, call *ast.CallExpr, in, out map[types.Object]bool) {
	params := callee.Obj.Signature().Params()
	for obj := range in {
		idx := -1
		for i := 0; i < params.Len(); i++ {
			if params.At(i) == obj {
				idx = i
				break
			}
		}
		if idx >= 0 && idx < len(call.Args) {
			if arg := chainObject(pass.TypesInfo, call.Args[idx]); arg != nil {
				out[arg] = true
			}
			continue
		}
		out[obj] = true
	}
}

// bodySignals collects Done calls, channel sends, and channel closes
// directly in body, descending into nested literals and same-package
// static callees.
func bodySignals(pass *framework.Pass, body *ast.BlockStmt, done, signaled map[types.Object]bool, seen map[*framework.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := chainObject(pass.TypesInfo, n.Chan); obj != nil {
				signaled[obj] = true
			}
		case *ast.CallExpr:
			if recv, name, ok := framework.ReceiverOf(pass.TypesInfo, n); ok && name == "Done" && isWaitGroup(recv) {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if obj := chainObject(pass.TypesInfo, sel.X); obj != nil {
						done[obj] = true
					}
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if obj := chainObject(pass.TypesInfo, n.Args[0]); obj != nil {
						signaled[obj] = true
					}
					return true
				}
			}
			collectSignals(pass, n, done, signaled, seen)
		}
		return true
	})
}

// chainObject names a selector/index chain by its most specific
// object: the field for x.merge.done (stable across functions), the
// variable for a plain identifier.
func chainObject(info *types.Info, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[v]; obj != nil {
			return obj
		}
		return info.Defs[v]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			return sel.Obj()
		}
		return info.Uses[v.Sel]
	case *ast.IndexExpr:
		return chainObject(info, v.X)
	case *ast.StarExpr:
		return chainObject(info, v.X)
	case *ast.UnaryExpr:
		// &x names the same thing x does (worker(&p.wg, ...)).
		return chainObject(info, v.X)
	}
	return nil
}

func isWaitGroup(t types.Type) bool {
	return framework.NamedFrom(t, "sync", "WaitGroup")
}
