// Package analysistest runs analyzers over fixture packages under a
// testdata/src tree and checks their diagnostics against `// want`
// expectations, following the x/tools analysistest convention:
//
//	testdata/src/<pkg>/fixture.go:
//	    os.Create(path) // want `artifact created with os\.Create`
//
// Each `// want` comment holds one or more backquoted regexps; every
// diagnostic on that line must match one expectation and every
// expectation must be matched by exactly one diagnostic. A line with
// no want comment expects no diagnostics — so negative fixtures are
// just clean code that the test asserts stays clean.
package analysistest

import (
	"go/token"
	"regexp"

	"burtree/internal/lint/framework"
	"burtree/internal/lint/loader"
)

// T is the subset of *testing.T the runner needs.
type T interface {
	Errorf(format string, args ...any)
	Helper()
}

// Run loads the fixture package at dir/src/<path> and applies the
// analyzers, comparing diagnostics against // want expectations.
func Run(t T, dir string, a *framework.Analyzer, path string) {
	t.Helper()
	RunAll(t, dir, []*framework.Analyzer{a}, path)
}

// RunAll is Run for a set of analyzers applied together (used for the
// directive-validation tests, which need the suppression semantics of
// the full pipeline).
func RunAll(t T, dir string, analyzers []*framework.Analyzer, path string) {
	t.Helper()
	l := loader.NewFixtureLoader(dir + "/src")
	pkg, err := l.Load(path)
	if err != nil {
		t.Errorf("loading fixture %s: %v", path, err)
		return
	}
	diags, err := framework.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
	if err != nil {
		t.Errorf("running analyzers on %s: %v", path, err)
		return
	}
	checkWants(t, pkg, diags)
}

// expectation is one backquoted regexp from a want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:`[^`]*`\\s*)+)")
var backquoted = regexp.MustCompile("`([^`]*)`")

// checkWants cross-checks diagnostics against the fixture's want
// comments.
func checkWants(t T, pkg *loader.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, q := range backquoted.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, q[1], err)
						continue
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		if w := findWant(wants, posn, d.Message); w != nil {
			w.matched = true
		} else {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", posn, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// findWant returns the first unmatched expectation whose regexp
// matches the message, on the diagnostic's line or the line directly
// above it. The line-above form exists for diagnostics that land on
// comment-only lines (ignoredirective findings point at the directive
// comment itself, which cannot also carry a want comment).
func findWant(wants []*expectation, posn token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename &&
			(w.line == posn.Line || w.line == posn.Line-1) &&
			w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}
