// Package loader type-checks packages for the burlint drivers without
// golang.org/x/tools: package metadata and compiled export data come
// from `go list -export`, ASTs from go/parser, and types from
// go/types with the stdlib gc-export-data importer — the same pieces
// the go vet unitchecker protocol is built from.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *listedError
}

// listedError is go list's per-package load error.
type listedError struct {
	Err string
}

// goList runs `go list -deps -export -json` over the patterns in dir
// and decodes the object stream.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer over a package-path →
// export-data-file map, caching loaded packages in the underlying gc
// importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check parses nothing and type-checks the given files as one package.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	info := NewInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load type-checks the packages matching the patterns (resolved by the
// go command from dir; "" means the current directory). Dependencies
// are read from compiled export data; only the matched packages get
// ASTs. Test files are not loaded — the vet -vettool path covers test
// compilation units.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		// A matched package that failed to load must fail the run — a
		// lint pass that silently skips a broken package reports "clean"
		// for code it never saw.
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Incomplete {
			return nil, fmt.Errorf("loading %s: package is incomplete (see go list -e output)", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue // e.g. a test-only directory: nothing to analyze
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := Check(p.ImportPath, fset, files, imp, "")
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("go list %v: matched no analyzable packages", patterns)
	}
	return out, nil
}

// stdExports caches export-data paths for non-fixture (stdlib) imports
// across every fixture load in a test process; `go list -export`
// compiles on first use and is pure cache hits afterwards.
var stdExports = struct {
	sync.Mutex
	files map[string]string
}{files: map[string]string{}}

// stdExportFile resolves one stdlib import path to its export data,
// populating the cache with the package's whole dependency closure.
func stdExportFile(path string) (string, error) {
	stdExports.Lock()
	defer stdExports.Unlock()
	if f, ok := stdExports.files[path]; ok {
		return f, nil
	}
	listed, err := goList("", []string{path})
	if err != nil {
		return "", err
	}
	for _, p := range listed {
		if p.Export != "" {
			stdExports.files[p.ImportPath] = p.Export
		}
	}
	f, ok := stdExports.files[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

// FixtureLoader type-checks packages rooted at a testdata/src
// directory, the analysistest convention: an import path resolves to
// root/<path> if that directory exists, and to the real (stdlib)
// package otherwise. Fixture packages are parsed and type-checked from
// source so fixtures can declare small local stand-ins for the
// engine's packages.
type FixtureLoader struct {
	Root string // the testdata/src directory
	Fset *token.FileSet

	loaded map[string]*Package
	std    types.Importer // one gc importer, so shared deps keep one identity
}

// NewFixtureLoader returns a loader rooted at root.
func NewFixtureLoader(root string) *FixtureLoader {
	l := &FixtureLoader{Root: root, Fset: token.NewFileSet(), loaded: map[string]*Package{}}
	l.std = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := stdExportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer over fixture and stdlib packages.
func (l *FixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.Root, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the fixture package at root/<path> (memoized).
func (l *FixtureLoader) Load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	tpkg, info, err := Check(path, l.Fset, files, l, "")
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	return pkg, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
