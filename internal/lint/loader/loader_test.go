package loader_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"burtree/internal/lint/loader"
)

// TestFixtureLoadErrors: a fixture package that does not type-check
// must surface the error — a lint run that skips what it cannot load
// reports "clean" for code it never saw.
func TestFixtureLoadErrors(t *testing.T) {
	dir, err := filepath.Abs("../testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l := loader.NewFixtureLoader(dir)
	if _, err := l.Load("broken"); err == nil {
		t.Error("Load(broken) succeeded, want a type-checking error")
	} else if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("Load(broken) = %v, want a type-checking error", err)
	}
	if _, err := l.Load("no-such-fixture"); err == nil {
		t.Error("Load(no-such-fixture) succeeded, want an error")
	}
}

// TestLoadBrokenPackage: the standalone loader (the bin/burlint entry
// point) must fail, not skip, when a matched package does not compile.
func TestLoadBrokenPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module brokenmod\n\ngo 1.24\n")
	writeFile(t, dir, "main.go", "package brokenmod\n\nfunc f() int { return \"not an int\" }\n")
	if _, err := loader.Load(dir, []string{"./..."}); err == nil {
		t.Fatal("Load on a module with a type error succeeded, want an error")
	}
}

// TestLoadNoPackages: a pattern matching nothing is a configuration
// error, not a clean run.
func TestLoadNoPackages(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module emptymod\n\ngo 1.24\n")
	if _, err := loader.Load(dir, []string{"./..."}); err == nil {
		t.Fatal("Load on an empty module succeeded, want a matched-no-packages error")
	}
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
