// Package dgl is a fixture stand-in for burtree/internal/dgl: same
// shape (Manager, Txn, GranuleID, modes), no behavior. The analyzers
// match collaborator packages by path tail, so this local copy lets
// fixtures exercise lockorder and granulecopy without importing the
// real module.
package dgl

import "time"

// GranuleID names one lockable granule.
type GranuleID uint64

// Mode is a lock mode.
type Mode int

// Lock modes, matching the real lattice's names.
const (
	S Mode = iota
	X
	IS
	IX
)

// Txn is one lock owner.
type Txn struct{ id uint64 }

// Manager is the lock table.
type Manager struct{}

// Begin starts a new lock owner.
func (m *Manager) Begin() *Txn { return &Txn{} }

// Acquire takes g in the given mode on behalf of t.
func (m *Manager) Acquire(t *Txn, g GranuleID, mode Mode, timeout time.Duration) error { return nil }

// Release drops one granule.
func (m *Manager) Release(t *Txn, g GranuleID) {}

// ReleaseAll drops everything t holds.
func (m *Manager) ReleaseAll(t *Txn) {}
