// Package hotpath exercises the hotpath analyzer: functions reachable
// from //burlint:hotpath roots must not heap-allocate per op.
package hotpath

import "fmt"

type op struct {
	id   uint64
	x, y float64
}

type table struct {
	objects map[uint64]op
}

// applier is the strategy hook: the analyzer devirtualizes its calls
// to the package-local implementations.
type applier interface {
	apply(t *table, o op) error
}

// ApplyBatch is the hot-path root: one loop iteration is one update.
// The pre-loop make is hoisted setup (not flagged); the in-loop make
// is the regression this fixture seeds; the error returns are cold by
// construction; the ignore-carrying literal is an audited exemption.
//
//burlint:hotpath
func (t *table) ApplyBatch(a applier, ops []op) error {
	seen := make(map[uint64]bool, len(ops))
	for _, o := range ops {
		if seen[o.id] {
			return fmt.Errorf("duplicate op %d", o.id)
		}
		seen[o.id] = true
		scratch := make([]op, 0, 1) // want `make allocates per op in ApplyBatch \(hot via ApplyBatch\)`
		_ = scratch
		//burlint:ignore hotpath sampling literal is built once per batch epoch in practice
		sample := []uint64{o.id}
		_ = sample
		t.trace(o)
		if err := a.apply(t, o); err != nil {
			return fmt.Errorf("apply %d: %w", o.id, err)
		}
	}
	return nil
}

// bottomUp is the implementation the interface call resolves to: it
// runs per op in its entirety, so its whole body is budgeted.
type bottomUp struct{}

func (bottomUp) apply(t *table, o op) error {
	probe := func() uint64 { return o.id } // want `closure allocated per op in apply \(hot via ApplyBatch\)`
	t.objects[probe()] = o
	return nil
}

// trace is called from the hot loop: per-op transitively.
func (t *table) trace(o op) {
	sink(o.id) // want `argument boxed into interface per op in trace \(hot via ApplyBatch\)`
}

func sink(args ...any) {}

// rebuild is unreachable from any root: allocations here are free.
func rebuild(n int) []op {
	out := make([]op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, op{id: uint64(i)})
		extra := make([]op, 1)
		_ = extra
	}
	return out
}
