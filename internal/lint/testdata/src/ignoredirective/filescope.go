// This file exercises file-scope directives: placed above the package
// clause they suppress an analyzer for the whole file. hotpath rejects
// the file scope (its budget is audited per statement); other
// analyzers accept it when well-formed.

// want `cannot be file-scope`
//burlint:ignore hotpath the whole file is cold

//burlint:ignore closecheck fixture: closes in this file are audited by hand

// want `has no reason`
//burlint:ignore walack

package ignoredirective

import "os"

func fileScoped(f *os.File) {
	_ = f.Close()
}
