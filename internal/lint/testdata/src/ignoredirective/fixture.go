// Package ignoredirective exercises the directive validator: every
// //burlint:ignore must name a known analyzer and carry a reason.
// The want comments sit on the line above each directive because the
// diagnostic lands on the directive comment itself.
package ignoredirective

import "os"

func missingAnalyzer(f *os.File) {
	// want `names no analyzer`
	//burlint:ignore
	_ = f.Close()
}

func unknownAnalyzer(f *os.File) {
	// want `unknown analyzer "nitpick"`
	//burlint:ignore nitpick this analyzer does not exist
	_ = f.Close()
}

func missingReason(f *os.File) {
	// want `has no reason`
	//burlint:ignore closecheck
	_ = f.Close()
}

// wellFormed is a complete directive: known analyzer, written reason.
// Not flagged.
func wellFormed(f *os.File) {
	//burlint:ignore closecheck fixture: open failed; that error is the one to surface
	f.Close()
}
