// Package errflow exercises the errflow analyzer: an error produced
// after receiver mutation must reach a rollback on every pre-ack
// failure path.
package errflow

import "wal"

// tree stands in for the R-tree: a fallible structure the front-ends
// apply mutations to.
type tree struct{}

func (t *tree) Apply(id uint64) error { return nil }

// Index is the PR 8 shape: object table + WAL.
type Index struct {
	log     *wal.Log
	objects map[uint64]uint64
}

func (x *Index) logAppend(typ wal.Type, ops []wal.Op) error {
	if x.log == nil {
		return nil
	}
	return x.log.Append(typ, ops)
}

// Insert is PR 8's bug verbatim: the object table keeps the move when
// the WAL append fails, so the in-memory index diverges from what
// recovery replays.
func (x *Index) Insert(id uint64) error {
	x.objects[id] = id
	if err := x.log.Append(wal.TypeInsert, nil); err != nil { // want `Insert mutates receiver state before Append but the failure path returns without a rollback`
		return err
	}
	return nil
}

// Update hands the helper's error straight to the caller: there is no
// failure branch to roll back in.
func (x *Index) Update(id uint64) error {
	prev := x.objects[id]
	x.objects[id] = prev + 1
	return x.logAppend(wal.TypeUpdate, nil) // want `Update returns the error of logAppend directly after mutating receiver state`
}

// Delete drops the append error on the floor after mutating.
func (x *Index) Delete(id uint64) error {
	delete(x.objects, id)
	x.log.Append(wal.TypeDelete, nil) // want `Delete discards the error of Append after mutating receiver state`
	return nil
}

// UpdateBatch is the PR 8 fix shape: the failure branch restores the
// previous value before propagating. Not flagged.
func (x *Index) UpdateBatch(ids []uint64) error {
	for _, id := range ids {
		prev, had := x.objects[id]
		x.objects[id] = prev + 1
		if err := x.log.Append(wal.TypeUpdate, nil); err != nil {
			if had {
				x.objects[id] = prev
			} else {
				delete(x.objects, id)
			}
			return err
		}
	}
	return nil
}

// Logged is a second carrier exercising ack ordering and the
// compare-and-restore shape on structure applies.
type Logged struct {
	log     *wal.Log
	tree    *tree
	objects map[uint64]uint64
}

// Insert restores the previous value when the tree apply fails: PR 2's
// compare-and-restore shape. Not flagged.
func (l *Logged) Insert(id uint64) error {
	prev, had := l.objects[id]
	l.objects[id] = id
	if err := l.tree.Apply(id); err != nil {
		if had {
			l.objects[id] = prev
		} else {
			delete(l.objects, id)
		}
		return err
	}
	return nil
}

// Delete loses the table entry even when the tree apply fails.
func (l *Logged) Delete(id uint64) error {
	delete(l.objects, id)
	if err := l.tree.Apply(id); err != nil { // want `Delete mutates receiver state before Apply but the failure path returns without a rollback`
		return err
	}
	return nil
}

// Update logs before mutating: the merge failure is post-ack — the op
// is already durable, so no rollback is owed. Not flagged.
func (l *Logged) Update(id uint64) error {
	if err := l.log.Append(wal.TypeUpdate, nil); err != nil {
		return err
	}
	l.objects[id] = id
	return l.merge()
}

func (l *Logged) merge() error {
	l.objects = map[uint64]uint64{}
	return nil
}

// UpdateBatch delegates to absorb, which both mutates and logs: the
// helper inherits the contract interprocedurally.
func (l *Logged) UpdateBatch(ids []uint64) error {
	return l.absorb(ids)
}

func (l *Logged) absorb(ids []uint64) error {
	for _, id := range ids {
		l.objects[id] = id
	}
	if err := l.log.Append(wal.TypeUpdate, nil); err != nil { // want `absorb mutates receiver state before Append but the failure path returns without a rollback`
		return err
	}
	return nil
}

// Plain carries no WAL: out of scope even though it mutates and can
// fail. Not flagged.
type Plain struct {
	t *tree
	n map[uint64]uint64
}

func (p *Plain) Insert(id uint64) error {
	p.n[id] = id
	return p.t.Apply(id)
}
