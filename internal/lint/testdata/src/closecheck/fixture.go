// Package closecheck exercises the closecheck analyzer: silently
// discarded Close/Sync errors are flagged; handled, returned,
// deferred, and explicitly discarded ones are not.
package closecheck

import (
	"os"

	"wal"
)

func silentDiscards(f *os.File, l *wal.Log) {
	f.Close() // want `Close error silently discarded`
	f.Sync()  // want `Sync error silently discarded`
	l.Close() // want `Close error silently discarded`
	l.Sync()  // want `Sync error silently discarded`
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func deferred(f *os.File) {
	defer f.Close()
}

func explicit(f *os.File) {
	_ = f.Close()
}

func suppressed(f *os.File) {
	//burlint:ignore closecheck fixture: open failed; that error is the one to surface
	f.Close()
}

// quiet has a Close that returns nothing; there is no error to drop.
type quiet struct{}

func (quiet) Close() {}

func noError(q quiet) {
	q.Close()
}
