// Package goroutinelife exercises the goroutinelife analyzer: spawned
// goroutines must be stoppable and joined by an owner.
package goroutinelife

import "sync"

// Rebalancer is the shard-rebalancer shape: the loop selects on a stop
// channel, Stop closes it and Waits on the WaitGroup the loop marks
// Done. Not flagged.
type Rebalancer struct {
	stop chan struct{}
	work chan int
	wg   sync.WaitGroup
}

func (r *Rebalancer) Start() {
	r.wg.Add(1)
	go r.loop()
}

func (r *Rebalancer) loop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case n := <-r.work:
			_ = n
		}
	}
}

func (r *Rebalancer) Stop() {
	close(r.stop)
	r.wg.Wait()
}

// Leaky is the rebalance loop before it grew a stop channel: the loop
// has no way out and nothing joins it, so Close-ing the owner leaves
// the goroutine running against freed state.
type Leaky struct {
	work chan int
}

func (l *Leaky) Start() {
	go func() { // want `goroutine is never joined`
		for { // want `goroutine loops forever with no way out`
			n := <-l.work
			_ = n
		}
	}()
}

// Flusher drains a channel the owner closes; the loop therefore
// terminates, but only the joined variant ties the exit back to the
// owner.
type Flusher struct {
	ch   chan int
	done chan struct{}
}

// StartOrphan's goroutine stops when ch closes, but nothing observes
// its exit: Close returns while the last flush may still run.
func (f *Flusher) StartOrphan() {
	go func() { // want `goroutine is never joined`
		for n := range f.ch {
			_ = n
		}
	}()
}

// StartJoined signals completion by closing done, which Close receives.
// Not flagged.
func (f *Flusher) StartJoined() {
	go func() {
		for n := range f.ch {
			_ = n
		}
		close(f.done)
	}()
}

func (f *Flusher) Close() {
	close(f.ch)
	<-f.done
}

// Scatter joins its workers before returning: the batch fan-out shape.
// Not flagged.
func Scatter(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// worker marks Done through a parameter; the analyzer translates it
// back to the owner's field at the spawn site.
func worker(wg *sync.WaitGroup, ch chan int) {
	defer wg.Done()
	for range ch {
	}
}

// Pool spawns worker with its own WaitGroup and joins it in Drain.
// Not flagged.
type Pool struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *Pool) Start() {
	p.wg.Add(1)
	go worker(&p.wg, p.ch)
}

func (p *Pool) Drain() {
	close(p.ch)
	p.wg.Wait()
}
