// Package walack exercises the walack analyzer: exported mutation
// methods on WAL-carrying types must reach the log before acking.
package walack

import (
	"errors"

	"wal"
)

var errUnknown = errors.New("unknown object")

// Index carries a WAL, so its mutation methods are checked.
type Index struct {
	log     *wal.Log
	objects map[uint64]struct{}
}

// logAppend is the logging helper; the durability-off case lives here.
func (x *Index) logAppend(typ wal.Type, ops []wal.Op) error {
	if x.log == nil {
		return nil
	}
	return x.log.Append(typ, ops)
}

func (x *Index) rebalance() error { return nil }

// Insert acks without ever reaching the WAL — the bug walack exists
// for: a crash forgets an insert the caller was told is durable.
func (x *Index) Insert(id uint64) error {
	x.objects[id] = struct{}{}
	return nil // want `Insert acknowledges success without reaching the WAL`
}

// Update logs, then acks. Not flagged.
func (x *Index) Update(id uint64) error {
	if _, ok := x.objects[id]; !ok {
		return errUnknown
	}
	if err := x.logAppend(wal.TypeUpdate, nil); err != nil {
		return err
	}
	return nil
}

// Delete acks with the log call itself. Not flagged.
func (x *Index) Delete(id uint64) error {
	if _, ok := x.objects[id]; !ok {
		return errUnknown
	}
	delete(x.objects, id)
	return x.logAppend(wal.TypeDelete, nil)
}

// UpdateBatch mutates inside its loop, then tails into a same-package
// helper that never logs.
func (x *Index) UpdateBatch(ids []uint64) error {
	for _, id := range ids {
		x.objects[id] = struct{}{}
	}
	return x.rebalance() // want `UpdateBatch acknowledges success without reaching the WAL`
}

// Batched is a second carrier whose UpdateBatch logs each mutation
// in-loop: the final `return nil` is reached either with zero
// iterations (nothing mutated, nothing to log) or after mutate+log
// pairs. The mutation gate keeps both exempt. Not flagged.
type Batched struct {
	log     *wal.Log
	objects map[uint64]struct{}
}

func (b *Batched) UpdateBatch(ids []uint64) error {
	for _, id := range ids {
		b.objects[id] = struct{}{}
		if err := b.log.Append(wal.TypeUpdate, nil); err != nil {
			return err
		}
	}
	return nil
}

// Sharded logs per shard from inside goroutine closures, like the
// real ShardedIndex batch path; the lexical check sees those calls.
type Sharded struct {
	logs []*wal.Log
}

func (s *Sharded) logTo(shard int, typ wal.Type, ops []wal.Op) error {
	return s.logs[shard].AppendAsync(typ, ops)
}

// Update fans out and logs inside the closures. Not flagged.
func (s *Sharded) Update(id uint64) error {
	done := make(chan error, len(s.logs))
	for i := range s.logs {
		go func(i int) { done <- s.logTo(i, wal.TypeUpdate, nil) }(i)
	}
	for range s.logs {
		if err := <-done; err != nil {
			return err
		}
	}
	return nil
}

// Plain carries no WAL; its mutation methods are out of scope.
type Plain struct {
	n int
}

// Insert on a WAL-less type is not checked. Not flagged.
func (p *Plain) Insert(id uint64) error {
	p.n++
	return nil
}
