// Package lockorder exercises the lockorder analyzer: granules in
// canonical tree → cell → page order, and never under the exclusive
// latch.
package lockorder

import (
	"sync"

	"dgl"
)

const treeGranule = dgl.GranuleID(0)

func cellGranule(i int) dgl.GranuleID { return dgl.GranuleID(1 + i) }
func pageGranule(i int) dgl.GranuleID { return dgl.GranuleID(1<<32) + dgl.GranuleID(i) }

// canonicalOrder is the engine's protocol. Not flagged.
func canonicalOrder(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID) error {
	if err := m.Acquire(txn, treeGranule, dgl.IX, 0); err != nil {
		return err
	}
	if err := m.Acquire(txn, cells[0], dgl.X, 0); err != nil {
		return err
	}
	return m.Acquire(txn, pageGranule(7), dgl.X, 0)
}

// rollbackRace is the PR 2 bug shape: a failed update re-locks the
// tree while still holding cell granules, inverting the order against
// a concurrent forward pass.
func rollbackRace(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID) {
	_ = m.Acquire(txn, cells[0], dgl.X, 0)
	_ = m.Acquire(txn, treeGranule, dgl.IX, 0) // want `tree granule acquired after a cell granule`
}

// pageThenCell inverts the lower tiers.
func pageThenCell(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID) {
	_ = m.Acquire(txn, pageGranule(3), dgl.X, 0)
	_ = m.Acquire(txn, cells[1], dgl.X, 0) // want `cell granule acquired after a page granule`
}

// rollbackAfterRelease is the correct recovery: drop everything, then
// restart from the tree. Not flagged.
func rollbackAfterRelease(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID) {
	_ = m.Acquire(txn, cells[0], dgl.X, 0)
	m.ReleaseAll(txn)
	_ = m.Acquire(txn, treeGranule, dgl.IX, 0)
}

// underLatch waits for a granule while holding the exclusive latch,
// which can deadlock against a holder waiting for that latch.
func underLatch(m *dgl.Manager, txn *dgl.Txn, latch *sync.Mutex) {
	latch.Lock()
	_ = m.Acquire(txn, treeGranule, dgl.X, 0) // want `granule lock acquired while holding the exclusive latch`
	latch.Unlock()
}

// granulesThenLatch is the engine's protocol: granules first, latch
// second. Not flagged.
func granulesThenLatch(m *dgl.Manager, txn *dgl.Txn, latch *sync.Mutex) {
	_ = m.Acquire(txn, pageGranule(1), dgl.X, 0)
	latch.Lock()
	defer latch.Unlock()
}

// afterUnlock re-acquires once the latch is dropped. Not flagged.
func afterUnlock(m *dgl.Manager, txn *dgl.Txn, latch *sync.Mutex) {
	latch.Lock()
	latch.Unlock()
	_ = m.Acquire(txn, treeGranule, dgl.X, 0)
}

// lockCells is a same-package helper: its interprocedural summary
// carries the cell tier to every call site.
func lockCells(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID) {
	for _, cell := range cells {
		_ = m.Acquire(txn, cell, dgl.X, 0)
	}
}

// helperInversion holds a page granule, then calls the cell-acquiring
// helper: the inversion is caught at the call site via the summary.
func helperInversion(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID) {
	_ = m.Acquire(txn, pageGranule(2), dgl.X, 0)
	lockCells(m, txn, cells) // want `cell granule acquired by the called helper after a page granule`
}

// helperUnderLatch waits for granules inside a helper while holding
// the exclusive latch: the same deadlock, one frame removed.
func helperUnderLatch(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID, latch *sync.Mutex) {
	latch.Lock()
	lockCells(m, txn, cells) // want `granule lock acquired by the called helper while holding the exclusive latch`
	latch.Unlock()
}

// helperCanonical calls the helper in protocol order. Not flagged.
func helperCanonical(m *dgl.Manager, txn *dgl.Txn, cells []dgl.GranuleID) {
	_ = m.Acquire(txn, treeGranule, dgl.IX, 0)
	lockCells(m, txn, cells)
	_ = m.Acquire(txn, pageGranule(9), dgl.X, 0)
}

// engine holds the manager; its methods participate through the same
// summary machinery as plain helpers.
type engine struct {
	m *dgl.Manager
}

func (e *engine) lockTree(txn *dgl.Txn) {
	_ = e.m.Acquire(txn, treeGranule, dgl.IX, 0)
}

// methodInversion re-locks the tree through a method while holding
// cell granules: the PR 2 shape hidden behind a call.
func methodInversion(e *engine, txn *dgl.Txn, cells []dgl.GranuleID) {
	_ = e.m.Acquire(txn, cells[0], dgl.X, 0)
	e.lockTree(txn) // want `tree granule acquired by the called helper after a cell granule`
}
