// Package atomicwrite exercises the atomicwrite analyzer: artifact
// creation outside internal/atomicfile is flagged; the sanctioned
// patterns are not.
package atomicwrite

import "os"

// truncateBeforeWrite reproduces the PR 4 snapshot bug: os.Create
// truncates the old artifact before the new bytes exist, so a crash
// mid-write leaves a torn file where a good snapshot stood.
func truncateBeforeWrite(path string, encode func(*os.File) error) error {
	f, err := os.Create(path) // want `artifact created with os\.Create`
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeFileWhole(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `artifact created with os\.WriteFile`
}

func openCreate(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644) // want `os\.OpenFile\(O_CREATE\) without O_EXCL`
}

func unprovableFlags(path string, flags int) (*os.File, error) {
	return os.OpenFile(path, flags, 0o644) // want `flags are not a constant`
}

// freshSegment is the WAL-segment pattern: O_EXCL creates a new name
// and can never truncate an existing artifact. Not flagged.
func freshSegment(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

// tempHalf is the first half of the atomic pattern. Not flagged.
func tempHalf(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "snapshot-*")
}

// readers never create. Not flagged.
func readOnly(path string) (*os.File, error) {
	return os.Open(path)
}

// suppressed shows the escape hatch: the reason is mandatory.
func suppressed(path string, data []byte) error {
	//burlint:ignore atomicwrite fixture: demonstrating a reasoned suppression
	return os.WriteFile(path, data, 0o644)
}
