// Package wal is a fixture stand-in for burtree/internal/wal: the Log
// type with the methods the walack and closecheck analyzers key on.
package wal

// Type tags a logged record.
type Type int

// Record types.
const (
	TypeInsert Type = iota
	TypeUpdate
	TypeDelete
)

// Op is one logged mutation.
type Op struct {
	ID   uint64
	X, Y float64
}

// Log is the write-ahead log handle.
type Log struct{}

// Append logs ops durably.
func (l *Log) Append(typ Type, ops []Op) error { return nil }

// AppendAsync logs ops with group commit.
func (l *Log) AppendAsync(typ Type, ops []Op) error { return nil }

// Sync flushes the log.
func (l *Log) Sync() error { return nil }

// Close closes the log.
func (l *Log) Close() error { return nil }
