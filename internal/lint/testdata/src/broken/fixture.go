// Package broken fails to type-check on purpose: the loader tests
// assert the error surfaces instead of the package being analyzed
// partially (or skipped as "clean").
package broken

func typeError() int {
	return "not an int"
}
