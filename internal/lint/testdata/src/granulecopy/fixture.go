// Package granulecopy exercises the granulecopy analyzer: value
// copies of lock-carrying types fork their synchronization state.
package granulecopy

import (
	"sync"
	"sync/atomic"

	"dgl"
)

// guarded directly embeds a mutex.
type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper only reaches the mutex transitively.
type wrapper struct {
	g guarded
}

// counter carries an atomic value.
type counter struct {
	hits atomic.Int64
}

// shared holds its lock state by pointer; copying it shares, not
// forks. Not flagged.
type shared struct {
	mu *sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // want `by-value parameter`
	return g.n
}

func transitiveParam(w wrapper) int { // want `by-value parameter`
	return w.g.n
}

func atomicParam(c counter) { // want `by-value parameter`
	_ = c
}

func txnParam(t dgl.Txn) { // want `by-value parameter .* dgl\.Txn`
	_ = t
}

func managerResult(m *dgl.Manager) dgl.Manager { // want `by-value result`
	return *m // want `return copies`
}

func assignCopy(w *wrapper) {
	cp := *w // want `assignment copies`
	cp.g.n++
}

func fieldCopy(w *wrapper) {
	g := w.g // want `assignment copies`
	g.n++
}

func initializerCopy(w *wrapper) {
	var cp = *w // want `initializer copies`
	cp.g.n++
}

func rangeCopy(ws []wrapper) int {
	total := 0
	for _, w := range ws { // want `range value copies`
		total += w.g.n
	}
	return total
}

func argCopy(w *wrapper) {
	transitiveParam(*w) // want `call argument copies`
}

// pointers everywhere: nothing is copied. Not flagged.
func byPointer(w *wrapper, t *dgl.Txn, m *dgl.Manager) *wrapper {
	p := w
	return p
}

// composite literals build fresh values; there is no original to
// diverge from. Not flagged.
func fresh() *wrapper {
	w := wrapper{}
	return &w
}

// byValueShared copies a struct whose lock is behind a pointer; both
// copies still exclude through the same mutex. Not flagged.
func byValueShared(s shared) int {
	return s.n
}

// rangeByIndex avoids the copy. Not flagged.
func rangeByIndex(ws []wrapper) int {
	total := 0
	for i := range ws {
		total += ws[i].g.n
	}
	return total
}
