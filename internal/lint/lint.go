// Package lint assembles the burlint analyzer suite: the repo's
// concurrency and durability invariants, encoded as static checks.
//
// Each analyzer's package doc states the invariant it enforces and the
// bug (or PR) it descends from; README.md has the overview table. Run
// the suite with
//
//	go build -o bin/burlint ./cmd/burlint
//	go vet -vettool=$PWD/bin/burlint ./...
//
// or standalone: `bin/burlint ./...`. Suppress a finding with
// `//burlint:ignore <analyzer> <reason>` on the flagged line or the
// line above — the reason is mandatory and machine-checked.
package lint

import (
	"burtree/internal/lint/analyzers/atomicwrite"
	"burtree/internal/lint/analyzers/closecheck"
	"burtree/internal/lint/analyzers/errflow"
	"burtree/internal/lint/analyzers/goroutinelife"
	"burtree/internal/lint/analyzers/granulecopy"
	"burtree/internal/lint/analyzers/hotpath"
	"burtree/internal/lint/analyzers/ignoredirective"
	"burtree/internal/lint/analyzers/lockorder"
	"burtree/internal/lint/analyzers/walack"
	"burtree/internal/lint/framework"
)

// invariant is the eight invariant analyzers, without the directive
// validator.
var invariant = []*framework.Analyzer{
	atomicwrite.Analyzer,
	closecheck.Analyzer,
	errflow.Analyzer,
	goroutinelife.Analyzer,
	granulecopy.Analyzer,
	hotpath.Analyzer,
	lockorder.Analyzer,
	walack.Analyzer,
}

// All returns the full suite: the invariant analyzers plus the
// //burlint:ignore directive validator (which needs their names).
func All() []*framework.Analyzer {
	names := make([]string, len(invariant))
	for i, a := range invariant {
		names[i] = a.Name
	}
	return append(append([]*framework.Analyzer(nil), invariant...), ignoredirective.New(names))
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *framework.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
