// Package hilbert provides the Hilbert curve linearization shared by
// the R-tree bulk loader (internal/rtree) and the sharded-index space
// partitioner (internal/shard). Both must walk the identical curve:
// the partitioner's balance guarantees rely on ordering cells exactly
// the way the bulk loader orders entries.
package hilbert

// D converts (x, y) cell coordinates on a 2^order × 2^order grid to
// the distance along the Hilbert curve (the classic rotate-and-walk
// formulation).
func D(x, y uint32, order uint) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
