package hilbert

import "testing"

// The curve must visit every cell exactly once (it is a bijection) and
// consecutive distances must belong to 4-adjacent cells.
func TestCurveBijectionAndAdjacency(t *testing.T) {
	const order = 4
	const side = 1 << order
	pos := make(map[uint64][2]int, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			d := D(uint32(x), uint32(y), order)
			if d >= side*side {
				t.Fatalf("D(%d,%d) = %d beyond curve length %d", x, y, d, side*side)
			}
			if prev, dup := pos[d]; dup {
				t.Fatalf("distance %d hit twice: %v and (%d,%d)", d, prev, x, y)
			}
			pos[d] = [2]int{x, y}
		}
	}
	for d := uint64(1); d < side*side; d++ {
		a, b := pos[d-1], pos[d]
		manhattan := abs(a[0]-b[0]) + abs(a[1]-b[1])
		if manhattan != 1 {
			t.Fatalf("cells at distances %d and %d are not adjacent: %v %v", d-1, d, a, b)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
