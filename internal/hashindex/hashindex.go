// Package hashindex implements the secondary object-id index of the paper
// (Figure 2): a disk-resident hash table mapping object ids to the leaf
// page currently holding their entry. Bottom-up updates start here —
// "Locate via the secondary object-ID index (e.g., hash table) the leaf
// node with the object" — at a cost of roughly one page access, which is
// exactly how the paper's cost analysis charges it.
//
// The table is a static-directory chained hash: a fixed array of bucket
// head pages, each a chain of slot pages. All traffic flows through the
// buffer pool, so hot buckets may be cached just like hot tree nodes.
package hashindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"burtree/internal/buffer"
	"burtree/internal/pagestore"
)

// ErrNotFound reports a lookup of an unmapped object id.
var ErrNotFound = errors.New("hashindex: oid not mapped")

const (
	pageMagic  = 0xB3
	headerSize = 16 // magic, pad, count u16, pad, next page u64
	slotSize   = 16 // oid u64 + leaf page u64
)

// Index is the oid → leaf-page map. Buckets are guarded by striped
// latches so operations on different buckets — including their (possibly
// simulated-latency) page I/O — proceed in parallel; the index is safe
// for concurrent use. Logical consistency across index and tree remains
// the caller's job (DGL).
type Index struct {
	pool     *buffer.Pool
	buckets  []pagestore.PageID
	slotsPer int
	size     atomic.Int64
	stripes  [64]stripe
}

// stripe is one latch plus its private scratch page.
type stripe struct {
	mu      sync.Mutex
	pageBuf []byte
}

// page is the decoded form of one hash page.
type page struct {
	id    pagestore.PageID
	next  pagestore.PageID
	oids  []uint64
	leafs []pagestore.PageID
}

// New creates an index with capacity sized for expectedSize entries at
// roughly 70% slot occupancy. The directory is allocated eagerly; bucket
// chains grow on demand.
func New(pool *buffer.Pool, expectedSize int) *Index {
	ps := pool.Store().PageSize()
	slots := (ps - headerSize) / slotSize
	if slots < 1 {
		panic(fmt.Sprintf("hashindex: page size %d too small", ps))
	}
	nb := expectedSize / (slots * 7 / 10)
	if nb < 1 {
		nb = 1
	}
	idx := &Index{
		pool:     pool,
		buckets:  make([]pagestore.PageID, nb),
		slotsPer: slots,
	}
	for i := range idx.stripes {
		idx.stripes[i].pageBuf = make([]byte, ps)
	}
	// Bucket heads are created lazily (InvalidPage marks an empty bucket)
	// so small indexes stay small.
	return idx
}

// Size returns the number of mapped object ids.
func (x *Index) Size() int { return int(x.size.Load()) }

// Buckets returns the directory width (for tests and sizing reports).
func (x *Index) Buckets() int { return len(x.buckets) }

// bucketFor hashes the oid into a directory slot. Fibonacci hashing gives
// good spread for sequential oids, which the workloads use.
func (x *Index) bucketFor(oid uint64) int {
	h := oid * 0x9E3779B97F4A7C15
	return int(h % uint64(len(x.buckets)))
}

// Bucket returns the directory slot oid hashes to. The batch pipeline
// clusters its lookup phase by bucket so that lookups landing on the
// same hash page run back to back and hit the buffer instead of paying
// one page read each.
func (x *Index) Bucket(oid uint64) int { return x.bucketFor(oid) }

// Lookup returns the leaf page currently holding oid.
func (x *Index) Lookup(oid uint64) (pagestore.PageID, error) {
	b := x.bucketFor(oid)
	st := &x.stripes[b%len(x.stripes)]
	st.mu.Lock()
	defer st.mu.Unlock()
	head := x.buckets[b]
	for pid := head; pid != pagestore.InvalidPage; {
		p, err := x.readPage(st, pid)
		if err != nil {
			return pagestore.InvalidPage, err
		}
		for i, o := range p.oids {
			if o == oid {
				return p.leafs[i], nil
			}
		}
		pid = p.next
	}
	return pagestore.InvalidPage, fmt.Errorf("%w: %d", ErrNotFound, oid)
}

// Set maps oid to leaf, inserting or updating as needed. Updating an
// entry to the leaf it already maps to performs no write.
func (x *Index) Set(oid uint64, leaf pagestore.PageID) error {
	if leaf == pagestore.InvalidPage {
		return fmt.Errorf("hashindex: mapping oid %d to invalid page", oid)
	}
	b := x.bucketFor(oid)
	st := &x.stripes[b%len(x.stripes)]
	st.mu.Lock()
	defer st.mu.Unlock()
	head := x.buckets[b]

	var (
		firstWithSpace *page
		last           *page
	)
	for pid := head; pid != pagestore.InvalidPage; {
		p, err := x.readPage(st, pid)
		if err != nil {
			return err
		}
		for i, o := range p.oids {
			if o == oid {
				if p.leafs[i] == leaf {
					return nil
				}
				p.leafs[i] = leaf
				return x.writePage(st, p)
			}
		}
		if firstWithSpace == nil && len(p.oids) < x.slotsPer {
			firstWithSpace = p
		}
		last = p
		pid = p.next
	}
	x.size.Add(1)
	if firstWithSpace != nil {
		firstWithSpace.oids = append(firstWithSpace.oids, oid)
		firstWithSpace.leafs = append(firstWithSpace.leafs, leaf)
		return x.writePage(st, firstWithSpace)
	}
	// Allocate a new page: either a new bucket head or an overflow page.
	np := &page{id: x.pool.Store().Alloc(), next: pagestore.InvalidPage}
	np.oids = append(np.oids, oid)
	np.leafs = append(np.leafs, leaf)
	if err := x.writePage(st, np); err != nil {
		return err
	}
	if last == nil {
		x.buckets[b] = np.id
		return nil
	}
	last.next = np.id
	return x.writePage(st, last)
}

// Delete removes the mapping for oid.
func (x *Index) Delete(oid uint64) error {
	b := x.bucketFor(oid)
	st := &x.stripes[b%len(x.stripes)]
	st.mu.Lock()
	defer st.mu.Unlock()
	head := x.buckets[b]
	for pid := head; pid != pagestore.InvalidPage; {
		p, err := x.readPage(st, pid)
		if err != nil {
			return err
		}
		for i, o := range p.oids {
			if o == oid {
				n := len(p.oids) - 1
				p.oids[i], p.oids[n] = p.oids[n], p.oids[i]
				p.leafs[i], p.leafs[n] = p.leafs[n], p.leafs[i]
				p.oids = p.oids[:n]
				p.leafs = p.leafs[:n]
				x.size.Add(-1)
				return x.writePage(st, p)
			}
		}
		pid = p.next
	}
	return fmt.Errorf("%w: %d", ErrNotFound, oid)
}

func (x *Index) readPage(st *stripe, id pagestore.PageID) (*page, error) {
	if err := x.pool.ReadPage(id, st.pageBuf); err != nil {
		return nil, fmt.Errorf("hashindex: reading page %d: %w", id, err)
	}
	b := st.pageBuf
	if b[0] != pageMagic {
		return nil, fmt.Errorf("hashindex: page %d is not a hash page (magic %#x)", id, b[0])
	}
	count := int(binary.LittleEndian.Uint16(b[2:]))
	if count > x.slotsPer {
		return nil, fmt.Errorf("hashindex: page %d count %d exceeds capacity %d", id, count, x.slotsPer)
	}
	p := &page{
		id:    id,
		next:  pagestore.PageID(binary.LittleEndian.Uint64(b[8:])),
		oids:  make([]uint64, count),
		leafs: make([]pagestore.PageID, count),
	}
	off := headerSize
	for i := 0; i < count; i++ {
		p.oids[i] = binary.LittleEndian.Uint64(b[off:])
		p.leafs[i] = pagestore.PageID(binary.LittleEndian.Uint64(b[off+8:]))
		off += slotSize
	}
	return p, nil
}

func (x *Index) writePage(st *stripe, p *page) error {
	b := st.pageBuf
	for i := range b {
		b[i] = 0
	}
	b[0] = pageMagic
	binary.LittleEndian.PutUint16(b[2:], uint16(len(p.oids)))
	binary.LittleEndian.PutUint64(b[8:], uint64(p.next))
	off := headerSize
	for i := range p.oids {
		binary.LittleEndian.PutUint64(b[off:], p.oids[i])
		binary.LittleEndian.PutUint64(b[off+8:], uint64(p.leafs[i]))
		off += slotSize
	}
	if err := x.pool.WritePage(p.id, b); err != nil {
		return fmt.Errorf("hashindex: writing page %d: %w", p.id, err)
	}
	return nil
}

// Stats summarizes the physical shape of the index.
type Stats struct {
	Buckets       int
	Pages         int
	Entries       int
	MaxChainPages int
	AvgChainPages float64
}

// ComputeStats scans every bucket chain.
func (x *Index) ComputeStats() (Stats, error) {
	s := Stats{Buckets: len(x.buckets), Entries: x.Size()}
	used := 0
	for b, head := range x.buckets {
		st := &x.stripes[b%len(x.stripes)]
		st.mu.Lock()
		chain := 0
		for pid := head; pid != pagestore.InvalidPage; {
			p, err := x.readPage(st, pid)
			if err != nil {
				st.mu.Unlock()
				return s, err
			}
			chain++
			pid = p.next
		}
		st.mu.Unlock()
		if chain > 0 {
			used++
			s.Pages += chain
			if chain > s.MaxChainPages {
				s.MaxChainPages = chain
			}
		}
	}
	if used > 0 {
		s.AvgChainPages = float64(s.Pages) / float64(used)
	}
	return s, nil
}

// Directory returns a copy of the bucket-head page directory, for
// persistence alongside the page store.
func (x *Index) Directory() []pagestore.PageID {
	return append([]pagestore.PageID(nil), x.buckets...)
}

// RestoreDirectory replaces the directory and entry count after the
// backing pages have been reloaded. The index must not have been used.
func (x *Index) RestoreDirectory(dir []pagestore.PageID, size int) error {
	if x.Size() != 0 {
		return errors.New("hashindex: RestoreDirectory on non-empty index")
	}
	if len(dir) == 0 {
		return errors.New("hashindex: empty directory")
	}
	x.buckets = append([]pagestore.PageID(nil), dir...)
	x.size.Store(int64(size))
	return nil
}
