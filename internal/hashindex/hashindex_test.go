package hashindex

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"burtree/internal/buffer"
	"burtree/internal/pagestore"
	"burtree/internal/stats"
)

func newIndex(t testing.TB, pageSize, bufferPages, expected int) (*Index, *stats.IO) {
	t.Helper()
	io := &stats.IO{}
	store := pagestore.New(pageSize, io)
	pool := buffer.New(store, bufferPages)
	return New(pool, expected), io
}

func TestSetLookupDelete(t *testing.T) {
	x, _ := newIndex(t, 256, 0, 100)
	if err := x.Set(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := x.Set(2, 20); err != nil {
		t.Fatal(err)
	}
	if got, err := x.Lookup(1); err != nil || got != 10 {
		t.Fatalf("Lookup(1) = %d, %v", got, err)
	}
	if got, err := x.Lookup(2); err != nil || got != 20 {
		t.Fatalf("Lookup(2) = %d, %v", got, err)
	}
	if _, err := x.Lookup(3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(3) err = %v", err)
	}
	if x.Size() != 2 {
		t.Fatalf("size = %d", x.Size())
	}
	if err := x.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Lookup(1); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted oid still mapped")
	}
	if err := x.Delete(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	if x.Size() != 1 {
		t.Fatalf("size after delete = %d", x.Size())
	}
}

func TestUpdateInPlace(t *testing.T) {
	x, io := newIndex(t, 256, 0, 10)
	if err := x.Set(5, 50); err != nil {
		t.Fatal(err)
	}
	if err := x.Set(5, 51); err != nil {
		t.Fatal(err)
	}
	if got, _ := x.Lookup(5); got != 51 {
		t.Fatalf("updated mapping = %d", got)
	}
	if x.Size() != 1 {
		t.Fatalf("size = %d, update must not grow", x.Size())
	}
	// No-op update performs no write.
	base := io.Snapshot()
	if err := x.Set(5, 51); err != nil {
		t.Fatal(err)
	}
	if d := io.Snapshot().Sub(base); d.Writes != 0 {
		t.Fatalf("no-op set wrote pages: %v", d)
	}
}

func TestSetInvalidLeafRejected(t *testing.T) {
	x, _ := newIndex(t, 256, 0, 10)
	if err := x.Set(1, pagestore.InvalidPage); err == nil {
		t.Fatal("invalid leaf accepted")
	}
}

func TestOverflowChains(t *testing.T) {
	// Single bucket forces long chains: 256B pages hold 15 slots.
	x, _ := newIndex(t, 256, 0, 1)
	if x.Buckets() != 1 {
		t.Fatalf("buckets = %d, want 1", x.Buckets())
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := x.Set(uint64(i), pagestore.PageID(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := x.Lookup(uint64(i))
		if err != nil || got != pagestore.PageID(1000+i) {
			t.Fatalf("Lookup(%d) = %d, %v", i, got, err)
		}
	}
	s, err := x.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxChainPages < 2 {
		t.Fatalf("expected overflow chains, stats = %+v", s)
	}
	// Deleting from the middle of a chain keeps the rest reachable.
	for i := 0; i < n; i += 3 {
		if err := x.Delete(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		_, err := x.Lookup(uint64(i))
		if i%3 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("Lookup(%d) after delete err = %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("Lookup(%d) = %v", i, err)
		}
	}
}

func TestLookupCostIsOnePageTypical(t *testing.T) {
	// With a properly sized directory and no buffer, a lookup should cost
	// ~1 physical read — the paper charges exactly 1 I/O for it.
	const n = 5000
	x, io := newIndex(t, 1024, 0, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if err := x.Set(uint64(i), pagestore.PageID(1+rng.Intn(1<<20))); err != nil {
			t.Fatal(err)
		}
	}
	base := io.Snapshot()
	const probes = 2000
	for i := 0; i < probes; i++ {
		if _, err := x.Lookup(uint64(rng.Intn(n))); err != nil {
			t.Fatal(err)
		}
	}
	d := io.Snapshot().Sub(base)
	avg := float64(d.Reads) / probes
	if avg > 1.2 {
		t.Fatalf("avg lookup reads = %.3f, want ~1", avg)
	}
}

func TestManyEntriesRandomized(t *testing.T) {
	x, _ := newIndex(t, 512, 16, 2000)
	rng := rand.New(rand.NewSource(2))
	shadow := map[uint64]pagestore.PageID{}
	for step := 0; step < 10000; step++ {
		oid := uint64(rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			leaf := pagestore.PageID(1 + rng.Intn(1<<16))
			if err := x.Set(oid, leaf); err != nil {
				t.Fatal(err)
			}
			shadow[oid] = leaf
		case 2:
			err := x.Delete(oid)
			if _, ok := shadow[oid]; ok {
				if err != nil {
					t.Fatalf("delete mapped oid %d: %v", oid, err)
				}
				delete(shadow, oid)
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete unmapped oid %d err = %v", oid, err)
			}
		}
	}
	if x.Size() != len(shadow) {
		t.Fatalf("size = %d, shadow = %d", x.Size(), len(shadow))
	}
	for oid, want := range shadow {
		got, err := x.Lookup(oid)
		if err != nil || got != want {
			t.Fatalf("Lookup(%d) = %d, %v; want %d", oid, got, err, want)
		}
	}
}

func TestQuickIndexMatchesMap(t *testing.T) {
	type op struct {
		OID  uint16
		Leaf uint16
		Del  bool
	}
	f := func(ops []op) bool {
		x, _ := newIndex(t, 256, 4, 64)
		shadow := map[uint64]pagestore.PageID{}
		for _, o := range ops {
			oid := uint64(o.OID % 64)
			if o.Del {
				err := x.Delete(oid)
				if _, ok := shadow[oid]; ok {
					if err != nil {
						return false
					}
					delete(shadow, oid)
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
				continue
			}
			leaf := pagestore.PageID(uint64(o.Leaf) + 1)
			if err := x.Set(oid, leaf); err != nil {
				return false
			}
			shadow[oid] = leaf
		}
		if x.Size() != len(shadow) {
			return false
		}
		for oid, want := range shadow {
			got, err := x.Lookup(oid)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	x, _ := newIndex(t, 256, 0, 100)
	s, err := x.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Pages != 0 || s.Entries != 0 || s.MaxChainPages != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}
