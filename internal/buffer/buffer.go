// Package buffer implements the LRU buffer pool that sits between the
// R-tree and the simulated disk. The paper (§5, following Leutenegger &
// Lopez) runs every experiment with a buffer sized as a percentage of the
// database, so all page traffic in this library flows through a Pool.
//
// The pool is a classic write-back cache: logical reads that hit a frame
// cost no disk access; misses read the page and may evict the
// least-recently-used frame, writing it out first if dirty. Logical writes
// dirty the frame and cost nothing until eviction or Flush. With capacity
// zero the pool degrades to direct disk access, which reproduces the
// paper's 0 %-buffer configuration.
//
// The pool latch is never held across physical I/O: misses read the disk
// after releasing it, and dirty evictions move the victim to an in-flight
// table that readers consult, so concurrent operations overlap their disk
// time — essential for the multi-threaded throughput study, where page
// latency is simulated.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"burtree/internal/pagestore"
	"burtree/internal/stats"
)

// Pool is an LRU write-back buffer pool over a pagestore.Store. It is safe
// for concurrent use; the mutex plays the role of a buffer-manager latch
// while higher-level consistency is the job of the DGL lock manager.
type Pool struct {
	mu       sync.Mutex
	store    *pagestore.Store
	io       *stats.IO
	cap      int
	frames   map[pagestore.PageID]*list.Element
	lru      *list.List // front = most recently used
	inflight map[pagestore.PageID]*inflightWrite
	// version counts disk-content events per page (write-back
	// completions and discards). A read miss snapshots it before its
	// unlatched disk read and re-checks after: a bump means the disk
	// may have changed under the read, so caching it could serve stale
	// bytes forever.
	version map[pagestore.PageID]uint64
}

type frame struct {
	id    pagestore.PageID
	data  []byte
	dirty bool
}

// inflightWrite is a dirty victim on its way to disk. Readers serve from
// it; a newer eviction of the same page chains behind it so disk writes
// of one page are totally ordered.
//
// The entry stays in the in-flight table until its write-back completes
// — even when canceled by Discard — so Flush's drain and later
// evictions of the same page keep their ordering against it.
type inflightWrite struct {
	id       pagestore.PageID
	data     []byte
	done     chan struct{}
	prev     *inflightWrite // earlier write of the same page, if still running
	canceled bool           // set under p.mu: the page was discarded; skip the disk write
}

// New creates a pool of at most capacity pages over store. Physical
// accesses are charged to the store's counters; buffer hits are charged to
// the same counter set. Capacity zero disables caching entirely.
func New(store *pagestore.Store, capacity int) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	return &Pool{
		store:    store,
		io:       store.IO(),
		cap:      capacity,
		frames:   make(map[pagestore.PageID]*list.Element, capacity),
		lru:      list.New(),
		inflight: make(map[pagestore.PageID]*inflightWrite),
		version:  make(map[pagestore.PageID]uint64),
	}
}

// Capacity returns the configured frame count.
func (p *Pool) Capacity() int { return p.cap }

// Len returns the number of resident frames.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Store returns the underlying page store.
func (p *Pool) Store() *pagestore.Store { return p.store }

// ReadPage copies the page into dst, serving from the buffer when
// possible. dst must be exactly one page long.
func (p *Pool) ReadPage(id pagestore.PageID, dst []byte) error {
	if p.cap == 0 {
		return p.store.ReadInto(id, dst)
	}
	if len(dst) != p.store.PageSize() {
		return pagestore.ErrPageSize
	}
	for attempt := 0; ; attempt++ {
		p.mu.Lock()
		if el, ok := p.frames[id]; ok {
			p.lru.MoveToFront(el)
			copy(dst, el.Value.(*frame).data)
			p.mu.Unlock()
			p.io.CountBufferHit()
			return nil
		}
		if iw, ok := p.inflight[id]; ok && !iw.canceled {
			// The latest contents are on their way to disk; serve them and
			// re-cache without any physical read. (A canceled write holds
			// discarded data and must never resurface.)
			f := &frame{id: id, data: append([]byte(nil), iw.data...)}
			copy(dst, f.data)
			victim := p.insertLocked(f)
			p.mu.Unlock()
			p.io.CountBufferHit()
			return p.writeBack(victim)
		}
		ver := p.version[id]
		if attempt >= 2 {
			// Repeated disk-content changes raced the unlatched reads
			// below; read under the latch, which is totally ordered
			// against write-back completions. Rare, so the lost overlap
			// does not matter.
			data := make([]byte, p.store.PageSize())
			if err := p.store.ReadInto(id, data); err != nil {
				p.mu.Unlock()
				return err
			}
			copy(dst, data)
			victim := p.insertLocked(&frame{id: id, data: data})
			p.mu.Unlock()
			return p.writeBack(victim)
		}
		p.mu.Unlock()

		// Miss: fetch from disk with no latch held.
		data := make([]byte, p.store.PageSize())
		if err := p.store.ReadInto(id, data); err != nil {
			return err
		}

		p.mu.Lock()
		if el, ok := p.frames[id]; ok {
			// Another thread cached the page meanwhile; its copy may be
			// newer (a logical write could have landed), so prefer it.
			p.lru.MoveToFront(el)
			copy(dst, el.Value.(*frame).data)
			p.mu.Unlock()
			return nil
		}
		if iw, ok := p.inflight[id]; ok && !iw.canceled {
			copy(data, iw.data)
		} else if p.version[id] != ver {
			// A write-back or discard completed between the two latch
			// holds: the bytes read may predate it. Caching them would
			// serve stale data until the next eviction; retry instead.
			p.mu.Unlock()
			continue
		}
		f := &frame{id: id, data: data}
		copy(dst, data)
		victim := p.insertLocked(f)
		p.mu.Unlock()
		return p.writeBack(victim)
	}
}

// WritePage stores the page contents in the buffer, deferring the
// physical write until eviction or Flush. src must be exactly one page
// long.
func (p *Pool) WritePage(id pagestore.PageID, src []byte) error {
	if p.cap == 0 {
		return p.store.Write(id, src)
	}
	if len(src) != p.store.PageSize() {
		return pagestore.ErrPageSize
	}
	p.mu.Lock()
	if el, ok := p.frames[id]; ok {
		f := el.Value.(*frame)
		copy(f.data, src)
		f.dirty = true
		p.lru.MoveToFront(el)
		p.mu.Unlock()
		return nil
	}
	f := &frame{id: id, data: append([]byte(nil), src...), dirty: true}
	victim := p.insertLocked(f)
	p.mu.Unlock()
	return p.writeBack(victim)
}

// insertLocked adds f as the most recently used frame. If the pool is
// full it detaches the LRU frame; a dirty victim is published to the
// in-flight table and returned for physical write-back by the caller
// after the latch is released. Caller holds p.mu.
func (p *Pool) insertLocked(f *frame) *inflightWrite {
	var iw *inflightWrite
	if p.lru.Len() >= p.cap {
		if tail := p.lru.Back(); tail != nil {
			victim := tail.Value.(*frame)
			p.lru.Remove(tail)
			delete(p.frames, victim.id)
			if victim.dirty {
				iw = &inflightWrite{
					id:   victim.id,
					data: victim.data,
					done: make(chan struct{}),
					prev: p.inflight[victim.id],
				}
				p.inflight[victim.id] = iw
			}
		}
	}
	p.frames[f.id] = p.lru.PushFront(f)
	return iw
}

// writeBack performs the physical write of an evicted dirty frame with
// no latch held, after any earlier write of the same page completes. A
// write canceled by Discard skips the disk entirely — its data belongs
// to a freed page that may since have been reallocated, and landing it
// late would clobber the new page behind Flush's back.
func (p *Pool) writeBack(iw *inflightWrite) error {
	if iw == nil {
		return nil
	}
	if iw.prev != nil {
		<-iw.prev.done
	}
	p.mu.Lock()
	canceled := iw.canceled
	p.mu.Unlock()
	var err error
	if !canceled {
		err = p.store.Write(iw.id, iw.data)
	}
	p.mu.Lock()
	if p.inflight[iw.id] == iw {
		delete(p.inflight, iw.id)
	}
	p.version[iw.id]++
	p.mu.Unlock()
	close(iw.done)
	if err != nil && !errors.Is(err, pagestore.ErrPageFreed) {
		// A freed page means the node was released while its last
		// eviction was in flight; the contents are irrelevant.
		return fmt.Errorf("buffer: evicting page %d: %w", iw.id, err)
	}
	return nil
}

// drainInflightLocked waits for all in-flight writes to finish. The
// latch is released while waiting and re-acquired before returning.
func (p *Pool) drainInflightLocked() {
	for {
		var iw *inflightWrite
		for _, w := range p.inflight {
			iw = w
			break
		}
		if iw == nil {
			return
		}
		p.mu.Unlock()
		<-iw.done
		p.mu.Lock()
	}
}

// Discard drops the page from the pool without writing it back. Used when
// a page is freed: its contents must not resurface.
//
// An in-flight eviction of the page is canceled, not forgotten: the
// entry stays in the table until its write-back completes, so Flush
// still drains it and a later eviction of a reallocated page with the
// same id still orders behind it — but the discarded bytes themselves
// never reach the disk. (Dropping the entry instead would let the
// stale write land after the page is reallocated and rewritten,
// invisible to Flush: a snapshot taken then would miss the newest
// version of the page.)
func (p *Pool) Discard(id pagestore.PageID) {
	if p.cap == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.frames[id]; ok {
		p.lru.Remove(el)
		delete(p.frames, id)
	}
	for iw := p.inflight[id]; iw != nil; iw = iw.prev {
		iw.canceled = true
	}
	p.version[id]++
}

// Flush writes all dirty frames to disk. Frames stay resident (clean).
// Any in-flight eviction writes are drained first so the flushed
// contents are the final disk state.
func (p *Pool) Flush() error {
	if p.cap == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drainInflightLocked()
	for el := p.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if !f.dirty {
			continue
		}
		if err := p.store.Write(f.id, f.data); err != nil {
			return fmt.Errorf("buffer: flushing page %d: %w", f.id, err)
		}
		f.dirty = false
	}
	return nil
}

// Invalidate drops every frame without writing anything back. Tests use it
// to force cold-cache behaviour.
func (p *Pool) Invalidate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[pagestore.PageID]*list.Element, p.cap)
	p.lru.Init()
	// Cancel (rather than drop) in-flight evictions so their stale data
	// cannot land after the invalidation point.
	for _, iw := range p.inflight {
		for w := iw; w != nil; w = w.prev {
			w.canceled = true
		}
	}
}

// Resident reports whether the page currently occupies a frame.
func (p *Pool) Resident(id pagestore.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}
