package buffer

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"burtree/internal/pagestore"
	"burtree/internal/stats"
)

// TestDiscardCancelsZombieWriteBack reproduces the snapshot-corruption
// scenario the in-flight table used to allow: a dirty eviction of page
// P is pending behind an earlier slow write of P when the page is
// discarded, freed and reallocated. Discard used to remove the entry
// from the in-flight table, so Flush could not drain the pending write
// — it landed the stale bytes on the reallocated page after Flush had
// written the new contents, and a snapshot (store dump) taken then
// missed the newest version. Discard must instead cancel the write
// while keeping it drainable.
func TestDiscardCancelsZombieWriteBack(t *testing.T) {
	io := &stats.IO{}
	store := pagestore.New(pageSize, io)
	p := New(store, 2)
	p1 := store.Alloc()
	pa := store.Alloc()
	pb := store.Alloc()
	pc := store.Alloc()
	pd := store.Alloc()

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.WritePage(p1, page(1))) // frame P1 dirty (v1)
	must(p.WritePage(pa, page(0xaa)))

	var wg sync.WaitGroup
	step := func(lat time.Duration, f func()) {
		store.SetLatency(lat)
		wg.Add(1)
		go func() { defer wg.Done(); f() }()
		time.Sleep(10 * time.Millisecond)
	}
	// Each write below evicts the pool's LRU dirty frame; the evictor
	// blocks in its write-back for the latency in force when it started.
	// The first eviction (P1's old contents) is made very slow, so the
	// later re-eviction of P1 — which must order behind it — is still
	// queued long after everything else drained.
	const slow = 300 * time.Millisecond
	step(slow, func() { must(p.WritePage(pb, page(0xbb))) })                // evicts P1(v1) -> iw1, very slow
	step(20*time.Millisecond, func() { must(p.WritePage(p1, page(2))) })    // re-cache P1 dirty (v2); evicts Pa
	step(20*time.Millisecond, func() { must(p.WritePage(pc, page(0xcc))) }) // evicts Pb
	step(20*time.Millisecond, func() { must(p.WritePage(pd, page(0xdd))) }) // evicts P1(v2) -> iw2 chained behind iw1
	store.SetLatency(0)

	// Let the unrelated write-backs finish; only the chained P1 writes
	// (v1 still sleeping, v2 queued behind it) remain in flight.
	time.Sleep(60 * time.Millisecond)

	// Free the page mid-flight and reallocate it, as a node merge +
	// split would.
	p.Discard(p1)
	must(store.Free(p1))
	realloc := store.Alloc()
	if realloc != p1 {
		t.Fatalf("allocator did not recycle page %d (got %d)", p1, realloc)
	}
	must(p.WritePage(p1, page(3))) // the page's real new contents (v3)

	// Flush must drain the canceled writes and leave v3 on disk; the
	// zombie v2 write must never land — not even after the flush
	// returns, which is exactly when a snapshot dumps the store.
	must(p.Flush())
	wg.Wait()
	must(p.Flush()) // anything evicted while joining

	got := make([]byte, pageSize)
	must(store.ReadInto(p1, got))
	if !bytes.Equal(got, page(3)) {
		t.Fatalf("store holds stale page contents %d after flush, want %d (zombie write-back resurfaced)", got[0], 3)
	}
}

// TestFlushRacesEvictionsAndDiscardRealloc races writers (with
// discard/free/realloc churn) against concurrent Flush calls on a tiny
// pool, then verifies the flushed store holds the newest version of
// every live page. Run with -race this also exercises the in-flight
// table's latching.
func TestFlushRacesEvictionsAndDiscardRealloc(t *testing.T) {
	io := &stats.IO{}
	store := pagestore.New(pageSize, io)
	p := New(store, 3)
	const workers = 4
	rounds := 300
	if testing.Short() {
		rounds = 120
	}

	stop := make(chan struct{})
	var flushWg sync.WaitGroup
	flushWg.Add(1)
	go func() {
		defer flushWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := p.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	finalID := make([]pagestore.PageID, workers)
	finalVal := make([]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			id := store.Alloc()
			val := byte(rng.Intn(250) + 1)
			buf := make([]byte, pageSize)
			for r := 0; r < rounds; r++ {
				if err := p.WritePage(id, page(val)); err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(3) == 0 {
					if err := p.ReadPage(id, buf); err != nil {
						t.Error(err)
						return
					}
					if buf[0] != val {
						t.Errorf("worker %d round %d: read %d, wrote %d (stale cache)", w, r, buf[0], val)
						return
					}
				}
				if rng.Intn(4) == 0 {
					// Retire the page mid-churn and start over on a
					// recycled one.
					p.Discard(id)
					if err := store.Free(id); err != nil {
						t.Error(err)
						return
					}
					id = store.Alloc()
				}
				val = byte(rng.Intn(250) + 1)
			}
			if err := p.WritePage(id, page(val)); err != nil {
				t.Error(err)
				return
			}
			finalID[w], finalVal[w] = id, val
		}(w)
	}
	wg.Wait()
	close(stop)
	flushWg.Wait()
	if t.Failed() {
		return
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// The flushed store must hold each worker's final page contents —
	// this is exactly what a snapshot dumps.
	buf := make([]byte, pageSize)
	for w := 0; w < workers; w++ {
		if err := store.ReadInto(finalID[w], buf); err != nil {
			t.Fatalf("worker %d final page: %v", w, err)
		}
		if buf[0] != finalVal[w] {
			t.Fatalf("worker %d: store holds %d after flush, want %d (snapshot would miss the newest version)", w, buf[0], finalVal[w])
		}
	}
}
