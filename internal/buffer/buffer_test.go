package buffer

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"burtree/internal/pagestore"
	"burtree/internal/stats"
)

const pageSize = 128

func newPool(t *testing.T, capacity, pages int) (*Pool, []pagestore.PageID, *stats.IO) {
	t.Helper()
	io := &stats.IO{}
	store := pagestore.New(pageSize, io)
	ids := make([]pagestore.PageID, pages)
	for i := range ids {
		ids[i] = store.Alloc()
	}
	return New(store, capacity), ids, io
}

func page(fill byte) []byte {
	p := make([]byte, pageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestReadMissThenHit(t *testing.T) {
	p, ids, io := newPool(t, 4, 1)
	if err := p.Store().Write(ids[0], page(7)); err != nil {
		t.Fatal(err)
	}
	base := io.Snapshot()
	buf := make([]byte, pageSize)
	if err := p.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatalf("read wrong data: %d", buf[0])
	}
	d := io.Snapshot().Sub(base)
	if d.Reads != 1 || d.BufferHits != 0 {
		t.Fatalf("first read: %v; want 1 physical read", d)
	}
	if err := p.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	d = io.Snapshot().Sub(base)
	if d.Reads != 1 || d.BufferHits != 1 {
		t.Fatalf("second read: %v; want buffer hit", d)
	}
}

func TestWriteBackOnEvict(t *testing.T) {
	p, ids, io := newPool(t, 2, 3)
	base := io.Snapshot()
	// Fill pool with dirty pages A, B.
	if err := p.WritePage(ids[0], page(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(ids[1], page(2)); err != nil {
		t.Fatal(err)
	}
	if d := io.Snapshot().Sub(base); d.Writes != 0 {
		t.Fatalf("writes before eviction: %v", d)
	}
	// Touch C: evicts A (LRU) with one physical write.
	if err := p.WritePage(ids[2], page(3)); err != nil {
		t.Fatal(err)
	}
	if d := io.Snapshot().Sub(base); d.Writes != 1 {
		t.Fatalf("after eviction: %v; want 1 write", d)
	}
	// A's data must be on disk now.
	buf := make([]byte, pageSize)
	if err := p.Store().ReadInto(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("evicted page content = %d, want 1", buf[0])
	}
}

func TestLRUOrderRespectsReads(t *testing.T) {
	p, ids, _ := newPool(t, 2, 3)
	if err := p.WritePage(ids[0], page(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(ids[1], page(2)); err != nil {
		t.Fatal(err)
	}
	// Touch A so that B becomes LRU.
	buf := make([]byte, pageSize)
	if err := p.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(ids[2], page(3)); err != nil {
		t.Fatal(err)
	}
	if !p.Resident(ids[0]) || p.Resident(ids[1]) || !p.Resident(ids[2]) {
		t.Fatalf("residency after eviction: A=%v B=%v C=%v; want A,C resident",
			p.Resident(ids[0]), p.Resident(ids[1]), p.Resident(ids[2]))
	}
}

func TestZeroCapacityPassesThrough(t *testing.T) {
	p, ids, io := newPool(t, 0, 1)
	base := io.Snapshot()
	if err := p.WritePage(ids[0], page(9)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pageSize)
	if err := p.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	d := io.Snapshot().Sub(base)
	if d.Writes != 1 || d.Reads != 1 || d.BufferHits != 0 {
		t.Fatalf("pass-through io = %v; want direct 1R/1W", d)
	}
	if p.Len() != 0 {
		t.Fatalf("zero-cap pool holds %d frames", p.Len())
	}
}

func TestFlush(t *testing.T) {
	p, ids, io := newPool(t, 4, 2)
	if err := p.WritePage(ids[0], page(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(ids[1], page(2)); err != nil {
		t.Fatal(err)
	}
	base := io.Snapshot()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := io.Snapshot().Sub(base); d.Writes != 2 {
		t.Fatalf("flush wrote %d pages, want 2", d.Writes)
	}
	// Second flush is a no-op: frames now clean.
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := io.Snapshot().Sub(base); d.Writes != 2 {
		t.Fatalf("idempotent flush wrote extra pages: %v", d)
	}
	buf := make([]byte, pageSize)
	if err := p.Store().ReadInto(ids[1], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("flushed content = %d, want 2", buf[0])
	}
}

func TestDiscardDropsDirtyData(t *testing.T) {
	p, ids, io := newPool(t, 4, 1)
	if err := p.WritePage(ids[0], page(5)); err != nil {
		t.Fatal(err)
	}
	p.Discard(ids[0])
	base := io.Snapshot()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := io.Snapshot().Sub(base); d.Writes != 0 {
		t.Fatalf("discarded page still flushed: %v", d)
	}
	if p.Resident(ids[0]) {
		t.Fatal("discarded page still resident")
	}
}

func TestInvalidate(t *testing.T) {
	p, ids, io := newPool(t, 4, 2)
	if err := p.WritePage(ids[0], page(1)); err != nil {
		t.Fatal(err)
	}
	p.Invalidate()
	if p.Len() != 0 {
		t.Fatalf("after invalidate Len = %d", p.Len())
	}
	// Reading again must go to disk (and see stale disk data, since the
	// dirty frame was dropped).
	base := io.Snapshot()
	buf := make([]byte, pageSize)
	if err := p.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if d := io.Snapshot().Sub(base); d.Reads != 1 {
		t.Fatalf("read after invalidate: %v", d)
	}
}

func TestReadWriteConsistencyThroughPool(t *testing.T) {
	// The pool must always return the most recent logical write,
	// regardless of eviction pattern.
	p, ids, _ := newPool(t, 3, 8)
	rng := rand.New(rand.NewSource(42))
	shadow := make(map[pagestore.PageID]byte)
	buf := make([]byte, pageSize)
	for i := 0; i < 2000; i++ {
		id := ids[rng.Intn(len(ids))]
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if err := p.WritePage(id, page(v)); err != nil {
				t.Fatal(err)
			}
			shadow[id] = v
		} else {
			if err := p.ReadPage(id, buf); err != nil {
				t.Fatal(err)
			}
			if want, ok := shadow[id]; ok && buf[0] != want {
				t.Fatalf("iteration %d: page %d = %d, want %d", i, id, buf[0], want)
			}
		}
	}
}

func TestConcurrentPoolAccess(t *testing.T) {
	p, ids, _ := newPool(t, 4, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, pageSize)
			for i := 0; i < 300; i++ {
				id := ids[(w*7+i)%len(ids)]
				if i%3 == 0 {
					if err := p.WritePage(id, page(byte(w))); err != nil {
						t.Error(err)
						return
					}
				} else if err := p.ReadPage(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestQuickPoolMatchesDirectStore(t *testing.T) {
	// Property: a pool-mediated database has the same observable contents
	// as a directly written store after Flush.
	f := func(ops []uint16, capacity uint8) bool {
		io := &stats.IO{}
		store := pagestore.New(pageSize, io)
		mirror := pagestore.New(pageSize, &stats.IO{})
		const n = 6
		ids := make([]pagestore.PageID, n)
		mids := make([]pagestore.PageID, n)
		for i := range ids {
			ids[i] = store.Alloc()
			mids[i] = mirror.Alloc()
		}
		pool := New(store, int(capacity%5))
		for _, op := range ops {
			slot := int(op) % n
			val := byte(op >> 8)
			if err := pool.WritePage(ids[slot], page(val)); err != nil {
				return false
			}
			if err := mirror.Write(mids[slot], page(val)); err != nil {
				return false
			}
		}
		if err := pool.Flush(); err != nil {
			return false
		}
		got := make([]byte, pageSize)
		want := make([]byte, pageSize)
		for i := range ids {
			if err := store.ReadInto(ids[i], got); err != nil {
				return false
			}
			if err := mirror.ReadInto(mids[i], want); err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentEvictionConsistency(t *testing.T) {
	// Hammer a tiny pool from many goroutines with disjoint page sets so
	// each page has one writer; every read must observe that writer's
	// latest value even while evictions stream pages to disk. Exercises
	// the in-flight write-back protocol under simulated latency.
	io := &stats.IO{}
	store := pagestore.New(pageSize, io)
	store.SetLatency(50 * time.Microsecond)
	const (
		workers        = 8
		pagesPerWorker = 6
	)
	ids := make([]pagestore.PageID, workers*pagesPerWorker)
	for i := range ids {
		ids[i] = store.Alloc()
	}
	pool := New(store, 4) // tiny: constant eviction churn
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := ids[w*pagesPerWorker : (w+1)*pagesPerWorker]
			last := make(map[pagestore.PageID]byte)
			buf := make([]byte, pageSize)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				id := mine[rng.Intn(len(mine))]
				if rng.Intn(2) == 0 {
					v := byte(rng.Intn(256))
					if err := pool.WritePage(id, page(v)); err != nil {
						t.Error(err)
						return
					}
					last[id] = v
				} else {
					if err := pool.ReadPage(id, buf); err != nil {
						t.Error(err)
						return
					}
					if want, ok := last[id]; ok && buf[0] != want {
						t.Errorf("worker %d: page %d = %d, want %d", w, id, buf[0], want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	store.SetLatency(0)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// After a drained flush, disk state must match the pool view.
	buf := make([]byte, pageSize)
	disk := make([]byte, pageSize)
	for _, id := range ids {
		if err := pool.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if err := store.ReadInto(id, disk); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, disk) {
			t.Fatalf("page %d: pool and disk disagree after flush", id)
		}
	}
}

func TestInflightServesLatestData(t *testing.T) {
	// A page evicted dirty must be readable (with its newest contents)
	// while its write-back is still in flight.
	io := &stats.IO{}
	store := pagestore.New(pageSize, io)
	store.SetLatency(2 * time.Millisecond) // slow disk: wide in-flight window
	a := store.Alloc()
	b := store.Alloc()
	c := store.Alloc()
	pool := New(store, 2)
	if err := pool.WritePage(a, page(1)); err != nil {
		t.Fatal(err)
	}
	if err := pool.WritePage(b, page(2)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Evicts a (LRU, dirty): its write-back sleeps 2ms.
		done <- pool.WritePage(c, page(3))
	}()
	// Concurrent read of a must return 1 whether it hits the frame, the
	// in-flight entry, or the post-write disk state.
	buf := make([]byte, pageSize)
	for i := 0; i < 20; i++ {
		if err := pool.ReadPage(a, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 1 {
			t.Fatalf("iteration %d: page a = %d, want 1", i, buf[0])
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
