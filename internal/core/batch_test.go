package core

import (
	"testing"

	"burtree/internal/geom"
	"burtree/internal/rtree"
)

func TestCoalesce(t *testing.T) {
	p := func(x float64) geom.Point { return geom.Point{X: x, Y: x} }
	in := []BatchChange{
		{OID: 1, Old: p(0.1), New: p(0.2)},
		{OID: 2, Old: p(0.5), New: p(0.6)},
		{OID: 1, Old: p(0.2), New: p(0.3)},
		{OID: 1, Old: p(0.3), New: p(0.4)},
	}
	out, dropped := Coalesce(in)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	// First-occurrence order, first Old, last New.
	if out[0].OID != 1 || out[0].Old != p(0.1) || out[0].New != p(0.4) {
		t.Fatalf("coalesced change 0 = %+v", out[0])
	}
	if out[1].OID != 2 || out[1].Old != p(0.5) || out[1].New != p(0.6) {
		t.Fatalf("coalesced change 1 = %+v", out[1])
	}
	if len(in) != 4 || in[0].New != p(0.2) {
		t.Fatal("Coalesce modified its input")
	}
	if out2, d2 := Coalesce(nil); len(out2) != 0 || d2 != 0 {
		t.Fatalf("Coalesce(nil) = %v, %d", out2, d2)
	}
}

// batchMoves draws one batch of random bounded moves (with intentional
// object repeats), returning the raw change list; the world's positions
// are NOT advanced — the caller applies via done.
func (w *world) batchMoves(size int, maxDist float64) []BatchChange {
	shadow := make(map[rtree.OID]geom.Point, size)
	changes := make([]BatchChange, 0, size)
	for i := 0; i < size; i++ {
		oid := w.ids[w.rng.Intn(len(w.ids))]
		old, ok := shadow[oid]
		if !ok {
			old = w.pos[oid]
		}
		np := geom.Point{
			X: old.X + (w.rng.Float64()*2-1)*maxDist,
			Y: old.Y + (w.rng.Float64()*2-1)*maxDist,
		}
		changes = append(changes, BatchChange{OID: oid, Old: old, New: np})
		shadow[oid] = np
	}
	return changes
}

// TestApplyBatchMatchesOracle drives every strategy through the batch
// pipeline with randomized workloads (including repeated moves of the
// same object within a batch) and checks invariants, hash and summary
// consistency, and query results against a positional oracle after
// every batch.
func TestApplyBatchMatchesOracle(t *testing.T) {
	for _, opts := range append(allStrategies(), Options{Strategy: Naive, ExpectedObjects: 2000}) {
		opts := opts
		t.Run(opts.Strategy.String(), func(t *testing.T) {
			u := newUpdater(t, 1024, 16, opts)
			w := newWorld(int64(500 + int(opts.Strategy)))
			w.populate(t, u, 1200)
			for round := 0; round < 12; round++ {
				maxDist := 0.01
				if round%3 == 2 {
					maxDist = 0.2 // force shifts, ascents and top-down work
				}
				raw := w.batchMoves(150, maxDist)
				changes, _ := Coalesce(raw)
				st, err := ApplyBatch(u, changes, func(c BatchChange) {
					w.pos[c.OID] = c.New
				})
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if st.Changes != len(changes) {
					t.Fatalf("round %d: applied %d of %d changes", round, st.Changes, len(changes))
				}
				if got := st.GroupResolved + st.LocalFallback + st.Sequential; got != st.Changes {
					t.Fatalf("round %d: resolution counts %d do not sum to %d (%+v)", round, got, st.Changes, st)
				}
				validateAll(t, u)
				checkSearchMatches(t, u, w, 10)
			}
		})
	}
}

// TestApplyBatchStats checks the resolution accounting: bottom-up
// strategies must resolve tiny-move batches through the group pass,
// while TD (no GroupApplier) runs everything sequentially.
func TestApplyBatchStats(t *testing.T) {
	for _, opts := range allStrategies() {
		opts := opts
		t.Run(opts.Strategy.String(), func(t *testing.T) {
			u := newUpdater(t, 1024, 16, opts)
			w := newWorld(7)
			w.populate(t, u, 1500)
			changes, _ := Coalesce(w.batchMoves(400, 0.002))
			st, err := ApplyBatch(u, changes, func(c BatchChange) { w.pos[c.OID] = c.New })
			if err != nil {
				t.Fatal(err)
			}
			if opts.Strategy == TD {
				if st.Groups != 0 || st.GroupResolved != 0 || st.Sequential != st.Changes {
					t.Fatalf("TD stats = %+v", st)
				}
				return
			}
			if st.Groups == 0 || st.Groups > len(changes) {
				t.Fatalf("groups = %d for %d changes", st.Groups, len(changes))
			}
			if st.GroupResolved == 0 {
				t.Fatalf("no changes resolved by the group pass: %+v", st)
			}
			if st.Sequential != 0 {
				t.Fatalf("bottom-up strategy fell back to the plain path: %+v", st)
			}
			out := u.Outcomes()
			if out.InLeaf == 0 {
				t.Fatalf("tiny moves recorded no in-leaf outcomes: %+v", out)
			}
		})
	}
}

// TestBatchSharesLeafAccesses is the pipeline's reason to exist: two
// updates landing in the same leaf must cost fewer page accesses
// batched than sequential. A height-2 tree with co-located objects
// makes the sharing deterministic.
func TestBatchSharesLeafAccesses(t *testing.T) {
	build := func() (Updater, *world) {
		u := newUpdater(t, 1024, 0, Options{Strategy: GBU, ExpectedObjects: 256})
		w := newWorld(11)
		w.populate(t, u, 200)
		return u, w
	}

	// Pick two objects stored in the same leaf.
	u, w := build()
	g := u.(*gbuStrategy)
	leafA, err := g.LeafOf(0)
	if err != nil {
		t.Fatal(err)
	}
	var partner rtree.OID
	found := false
	for oid := rtree.OID(1); oid < 200; oid++ {
		pg, err := g.LeafOf(oid)
		if err != nil {
			t.Fatal(err)
		}
		if pg == leafA {
			partner, found = oid, true
			break
		}
	}
	if !found {
		t.Skip("no co-located pair (degenerate layout)")
	}
	mkChanges := func(w *world) []BatchChange {
		return []BatchChange{
			{OID: 0, Old: w.pos[0], New: w.pos[0]},
			{OID: partner, Old: w.pos[partner], New: w.pos[partner]},
		}
	}

	io := u.Tree().IO()
	before := io.Snapshot()
	if _, err := ApplyBatch(u, mkChanges(w), nil); err != nil {
		t.Fatal(err)
	}
	batched := io.Snapshot().Sub(before).Total()

	u2, w2 := build()
	io2 := u2.Tree().IO()
	before = io2.Snapshot()
	for _, c := range mkChanges(w2) {
		if err := u2.Update(c.OID, c.Old, c.New); err != nil {
			t.Fatal(err)
		}
	}
	sequential := io2.Snapshot().Sub(before).Total()

	if batched >= sequential {
		t.Fatalf("batched same-leaf pair cost %d accesses, sequential cost %d", batched, sequential)
	}
}
