package core

import (
	"sync/atomic"

	"burtree/internal/geom"
	"burtree/internal/rtree"
)

// tdStrategy is the traditional top-down update: the paper's baseline.
// Every update performs a full top-down delete followed by a full
// top-down insert; no secondary structures are maintained.
type tdStrategy struct {
	tree    *rtree.Tree
	topDown atomic.Int64
}

var _ Updater = (*tdStrategy)(nil)

func (s *tdStrategy) Name() string { return "TD" }

func (s *tdStrategy) Insert(oid rtree.OID, p geom.Point) error {
	return s.tree.Insert(oid, geom.RectFromPoint(p))
}

func (s *tdStrategy) Update(oid rtree.OID, old, new geom.Point) error {
	s.topDown.Add(1)
	return s.tree.Update(oid, geom.RectFromPoint(old), geom.RectFromPoint(new))
}

func (s *tdStrategy) Delete(oid rtree.OID, at geom.Point) error {
	return s.tree.Delete(oid, geom.RectFromPoint(at))
}

func (s *tdStrategy) Search(q geom.Rect, visit func(rtree.OID, geom.Rect) bool) error {
	return s.tree.Search(q, visit)
}

func (s *tdStrategy) Nearest(p geom.Point, k int) ([]rtree.Neighbor, error) {
	return s.tree.NearestK(p, k)
}

func (s *tdStrategy) Tree() *rtree.Tree { return s.tree }

func (s *tdStrategy) Outcomes() Outcomes {
	return Outcomes{TopDown: s.topDown.Load()}
}

func (s *tdStrategy) Err() error { return nil }
