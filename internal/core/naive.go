package core

import (
	"fmt"

	"burtree/internal/geom"
	"burtree/internal/hashindex"
	"burtree/internal/rtree"
)

// naiveStrategy is the paper's initial bottom-up idea (§3.1, Figure 2):
// reach the leaf through the secondary index and update in place when
// the new location stays inside the leaf MBR — otherwise fall back to a
// full top-down update. The paper reports that on a uniform million-point
// dataset 82% of updates remain top-down, which motivates the ε
// extension and sibling shifts of LBU/GBU. Provided as a measurable
// baseline for that observation.
type naiveStrategy struct {
	tree    *rtree.Tree
	hash    *hashindex.Index
	adapter *hashAdapter

	out outcomeCounters
}

var _ Updater = (*naiveStrategy)(nil)

func (s *naiveStrategy) Name() string { return "NAIVE" }

func (s *naiveStrategy) Tree() *rtree.Tree { return s.tree }

func (s *naiveStrategy) Outcomes() Outcomes { return s.out.snapshot() }

func (s *naiveStrategy) Err() error { return s.adapter.Err() }

func (s *naiveStrategy) Insert(oid rtree.OID, p geom.Point) error {
	if err := s.tree.Insert(oid, geom.RectFromPoint(p)); err != nil {
		return err
	}
	return s.adapter.Err()
}

func (s *naiveStrategy) Delete(oid rtree.OID, at geom.Point) error {
	if err := s.tree.Delete(oid, geom.RectFromPoint(at)); err != nil {
		return err
	}
	return s.adapter.Err()
}

func (s *naiveStrategy) Search(q geom.Rect, visit func(rtree.OID, geom.Rect) bool) error {
	return s.tree.Search(q, visit)
}

func (s *naiveStrategy) Nearest(p geom.Point, k int) ([]rtree.Neighbor, error) {
	return s.tree.NearestK(p, k)
}

func (s *naiveStrategy) Update(oid rtree.OID, old, new geom.Point) error {
	t := s.tree
	newRect := geom.RectFromPoint(new)
	if t.Height() <= 1 {
		s.out.topDown.Add(1)
		return t.Update(oid, geom.RectFromPoint(old), newRect)
	}
	leafPage, err := s.hash.Lookup(oid)
	if err != nil {
		return fmt.Errorf("naive: update %d: %w", oid, err)
	}
	leaf, err := t.ReadNode(leafPage)
	if err != nil {
		return err
	}
	li := leaf.FindOID(oid)
	if li < 0 {
		return fmt.Errorf("naive: update %d: hash points to leaf %d but entry is missing", oid, leafPage)
	}
	if leaf.Self.ContainsPoint(new) {
		leaf.Entries[li].Rect = newRect
		s.out.inLeaf.Add(1)
		if err := t.WriteNode(leaf); err != nil {
			return err
		}
		return s.adapter.Err()
	}
	s.out.topDown.Add(1)
	if err := t.Update(oid, leaf.Entries[li].Rect, newRect); err != nil {
		return err
	}
	return s.adapter.Err()
}
