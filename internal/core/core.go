// Package core implements the paper's primary contribution: the three
// R-tree update strategies evaluated in its performance study.
//
//   - TD — the traditional top-down update (baseline): a top-down delete
//     traversal followed by a separate top-down insert.
//   - LBU — the Localized Bottom-Up update (Algorithm 1): direct leaf
//     access through a secondary object-id hash index, Kwon-style uniform
//     ε-enlargement of the leaf MBR bounded by the parent (which requires
//     leaf parent pointers), sibling shifts, and a top-down fallback.
//   - GBU — the Generalized Bottom-Up update (Algorithm 2): keeps the
//     R-tree intact and adds the main-memory summary structure;
//     directional, capped MBR extension (Algorithm 4), bit-vector
//     screened sibling shifts with piggybacking, and ascent to the
//     lowest bounding ancestor via FindParent (Algorithm 3) under the
//     distance threshold δ and level threshold λ tuning parameters.
//
// All strategies expose the same Updater interface so the experiment
// harness can swap them freely, exactly as the paper's figures do.
package core

import (
	"errors"
	"fmt"
	"sync"

	"burtree/internal/buffer"
	"burtree/internal/geom"
	"burtree/internal/hashindex"
	"burtree/internal/rtree"
	"burtree/internal/summary"
)

// Kind selects an update strategy.
type Kind int

const (
	// TD is the traditional top-down update.
	TD Kind = iota
	// LBU is the localized bottom-up update (Algorithm 1).
	LBU
	// GBU is the generalized bottom-up update (Algorithm 2).
	GBU
	// Naive is the §3.1 direct-leaf-access scheme with no extension or
	// shift: update in place when possible, otherwise top-down.
	Naive
)

func (k Kind) String() string {
	switch k {
	case TD:
		return "TD"
	case LBU:
		return "LBU"
	case GBU:
		return "GBU"
	case Naive:
		return "NAIVE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a strategy name ("TD", "LBU", "GBU", "NAIVE",
// case-sensitive) to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "TD", "td":
		return TD, nil
	case "LBU", "lbu":
		return LBU, nil
	case "GBU", "gbu":
		return GBU, nil
	case "NAIVE", "naive":
		return Naive, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// UnrestrictedLevels selects λ = height-1 (the paper's default: ascend as
// far as necessary).
const UnrestrictedLevels = -1

// Options configures a strategy instance. The zero value gives the
// paper's defaults (bold entries of Table 1) for everything except the
// strategy itself, which defaults to TD.
type Options struct {
	// Strategy picks TD, LBU or GBU.
	Strategy Kind
	// Epsilon is the ε MBR-enlargement cap. Default 0.003.
	Epsilon float64
	// DistanceThreshold is δ: objects that moved farther than δ since
	// their last position try a sibling shift before an MBR extension.
	// Default 0.03.
	DistanceThreshold float64
	// LevelThreshold is λ, the number of levels GBU may ascend above the
	// leaves. UnrestrictedLevels (or any negative value) means height-1.
	// Note λ = 0 disables ascent, reducing GBU to an optimized localized
	// scheme. Default: unrestricted.
	LevelThreshold int
	// NoPiggyback disables moving additional co-located objects during a
	// sibling shift (GBU optimization 4). Ablation knob.
	NoPiggyback bool
	// NoSummaryQueries disables the summary-assisted window query and
	// uses the plain top-down search. Ablation knob.
	NoSummaryQueries bool
	// ExpectedObjects sizes the secondary hash index. Default 1024.
	ExpectedObjects int
	// Tree carries the structural R-tree parameters. LBU forces
	// ParentPointers on.
	Tree rtree.Config
}

func (o Options) withDefaults() Options {
	switch {
	case o.Epsilon == 0:
		o.Epsilon = 0.003
	case o.Epsilon < 0: // explicit ε = 0 (see ZeroValue)
		o.Epsilon = 0
	}
	switch {
	case o.DistanceThreshold == 0:
		o.DistanceThreshold = 0.03
	case o.DistanceThreshold < 0: // explicit δ = 0
		o.DistanceThreshold = 0
	}
	if o.LevelThreshold == 0 {
		// Zero is a meaningful λ, but as a zero-value default it would be
		// surprising; explicit GBU-0 runs set it via LevelThresholdZero.
		o.LevelThreshold = UnrestrictedLevels
	}
	if o.ExpectedObjects == 0 {
		o.ExpectedObjects = 1024
	}
	return o
}

// LevelThresholdZero is the explicit spelling of λ = 0 (GBU-0): ascent
// disabled, failed local repairs re-insert from the root. Assign it to
// Options.LevelThreshold.
const LevelThresholdZero = -2

// ZeroValue is the explicit spelling of "literally zero" for Epsilon and
// DistanceThreshold, whose zero value means "use the paper's default".
// The ε and δ sweeps of the evaluation need true zeros.
const ZeroValue = -1.0

// Updater is the uniform operation surface of the three strategies.
type Updater interface {
	// Name returns "TD", "LBU" or "GBU".
	Name() string
	// Insert adds a new point object.
	Insert(oid rtree.OID, p geom.Point) error
	// Update moves an existing object from old to new.
	Update(oid rtree.OID, old, new geom.Point) error
	// Delete removes an object at its current location.
	Delete(oid rtree.OID, at geom.Point) error
	// Search visits all objects intersecting q.
	Search(q geom.Rect, visit func(rtree.OID, geom.Rect) bool) error
	// Nearest returns the k objects nearest to p in increasing distance
	// order. It is part of the interface so locked access layers
	// (internal/concurrent) route every read — window queries and
	// nearest-neighbour queries alike — through one strategy surface.
	Nearest(p geom.Point, k int) ([]rtree.Neighbor, error)
	// Tree exposes the underlying R-tree (for stats and validation).
	Tree() *rtree.Tree
	// Outcomes reports how updates were resolved.
	Outcomes() Outcomes
	// Err returns the first bookkeeping error recorded by the listener
	// plumbing, if any. A non-nil value indicates a bug, not a user
	// error.
	Err() error
}

// LocalUpdater is the optional fine-grained-concurrency surface of the
// bottom-up strategies. A local update touches only the object's leaf
// and that leaf's parent (sibling shifts stay below the same parent), so
// the DGL layer can run such updates in parallel under page granule
// locks, escalating to exclusive access only when TryLocalUpdate
// declines. TD does not implement it: top-down updates always need the
// whole root-to-leaf scope, which is exactly why their throughput
// suffers in the paper's §5.4 study.
type LocalUpdater interface {
	// LocalScope returns the page granules a local update of oid would
	// touch (leaf, then parent).
	LocalScope(oid rtree.OID) ([]rtree.PageID, error)
	// TryLocalUpdate performs the update if it can be resolved within
	// the local scope, reporting false with no tree modification
	// otherwise.
	TryLocalUpdate(oid rtree.OID, old, new geom.Point) (bool, error)
}

// Outcomes counts how each update was resolved; the paper's discussion
// (e.g. "82% of the updates remains top-down" for the naive scheme)
// is reproduced from these counters.
type Outcomes struct {
	InLeaf    int64 // new location inside the leaf MBR
	Extended  int64 // leaf MBR enlarged (ε)
	Shifted   int64 // moved to a sibling leaf
	Piggyback int64 // extra objects carried along on shifts
	Ascended  int64 // re-inserted below a bounding ancestor
	TopDown   int64 // full top-down fallback
}

// Total returns the number of updates resolved (excluding piggybacked
// passengers, which ride along with a Shifted update).
func (o Outcomes) Total() int64 {
	return o.InLeaf + o.Extended + o.Shifted + o.Ascended + o.TopDown
}

// New builds the requested strategy over the given buffer pool.
func New(pool *buffer.Pool, opts Options) (Updater, error) {
	opts = opts.withDefaults()
	switch opts.Strategy {
	case TD:
		t := rtree.New(pool, opts.Tree)
		return &tdStrategy{tree: t}, nil
	case LBU:
		cfg := opts.Tree
		cfg.ParentPointers = true
		t := rtree.New(pool, cfg)
		h := hashindex.New(pool, opts.ExpectedObjects)
		ad := &hashAdapter{index: h}
		t.SetListener(ad)
		return &lbuStrategy{tree: t, hash: h, adapter: ad, eps: opts.Epsilon}, nil
	case GBU:
		t := rtree.New(pool, opts.Tree)
		h := hashindex.New(pool, opts.ExpectedObjects)
		s := summary.New(t.MaxEntries())
		ad := &hashAdapter{index: h}
		t.SetListener(&fanoutListener{listeners: []rtree.Listener{s, ad}})
		return &gbuStrategy{
			tree:    t,
			hash:    h,
			sum:     s,
			adapter: ad,
			opts:    opts,
		}, nil
	case Naive:
		t := rtree.New(pool, opts.Tree)
		h := hashindex.New(pool, opts.ExpectedObjects)
		ad := &hashAdapter{index: h}
		t.SetListener(ad)
		return &naiveStrategy{tree: t, hash: h, adapter: ad}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", opts.Strategy)
	}
}

// effectiveLevelThreshold decodes the λ encoding in Options.
func effectiveLevelThreshold(raw, height int) int {
	switch {
	case raw == LevelThresholdZero:
		return 0
	case raw < 0:
		return height - 1
	default:
		return raw
	}
}

// hashAdapter routes the tree's data-placement events into the hash
// index. Listener hooks cannot return errors, so the first failure is
// recorded and surfaced through Updater.Err.
type hashAdapter struct {
	index *hashindex.Index

	mu  sync.Mutex
	err error
}

var _ rtree.Listener = (*hashAdapter)(nil)

func (a *hashAdapter) NodeWritten(rtreePage rtree.PageID, level int, self geom.Rect, children []rtree.PageID, count int) {
}
func (a *hashAdapter) NodeFreed(page rtree.PageID, level int)    {}
func (a *hashAdapter) RootChanged(root rtree.PageID, height int) {}

func (a *hashAdapter) DataPlaced(oid rtree.OID, leaf rtree.PageID) {
	if err := a.index.Set(oid, leaf); err != nil {
		a.record(err)
	}
}

func (a *hashAdapter) DataRemoved(oid rtree.OID) {
	if err := a.index.Delete(oid); err != nil && !errors.Is(err, hashindex.ErrNotFound) {
		a.record(err)
	}
}

func (a *hashAdapter) record(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

func (a *hashAdapter) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// fanoutListener broadcasts tree events to several listeners.
type fanoutListener struct {
	listeners []rtree.Listener
}

var _ rtree.Listener = (*fanoutListener)(nil)

func (f *fanoutListener) NodeWritten(page rtree.PageID, level int, self geom.Rect, children []rtree.PageID, count int) {
	for _, l := range f.listeners {
		l.NodeWritten(page, level, self, children, count)
	}
}

func (f *fanoutListener) NodeFreed(page rtree.PageID, level int) {
	for _, l := range f.listeners {
		l.NodeFreed(page, level)
	}
}

func (f *fanoutListener) RootChanged(root rtree.PageID, height int) {
	for _, l := range f.listeners {
		l.RootChanged(root, height)
	}
}

func (f *fanoutListener) DataPlaced(oid rtree.OID, leaf rtree.PageID) {
	for _, l := range f.listeners {
		l.DataPlaced(oid, leaf)
	}
}

func (f *fanoutListener) DataRemoved(oid rtree.OID) {
	for _, l := range f.listeners {
		l.DataRemoved(oid)
	}
}
