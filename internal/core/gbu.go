package core

import (
	"burtree/internal/pagestore"
	"errors"
	"fmt"
	"math"

	"burtree/internal/geom"
	"burtree/internal/hashindex"
	"burtree/internal/rtree"
	"burtree/internal/summary"
)

// gbuStrategy is the Generalized Bottom-Up update of Algorithm 2. It
// keeps the R-tree structure intact and adds the main-memory summary
// structure for parent access, sibling screening and query planning.
type gbuStrategy struct {
	tree    *rtree.Tree
	hash    *hashindex.Index
	sum     *summary.Structure
	adapter *hashAdapter
	opts    Options

	out outcomeCounters
}

var (
	_ Updater      = (*gbuStrategy)(nil)
	_ LocalUpdater = (*gbuStrategy)(nil)
	_ GroupApplier = (*gbuStrategy)(nil)
)

func (s *gbuStrategy) Name() string { return "GBU" }

func (s *gbuStrategy) Tree() *rtree.Tree { return s.tree }

func (s *gbuStrategy) Summary() *summary.Structure { return s.sum }

func (s *gbuStrategy) Outcomes() Outcomes { return s.out.snapshot() }

func (s *gbuStrategy) Err() error { return s.adapter.Err() }

func (s *gbuStrategy) Insert(oid rtree.OID, p geom.Point) error {
	if err := s.tree.Insert(oid, geom.RectFromPoint(p)); err != nil {
		return err
	}
	return s.adapter.Err()
}

// Delete removes an object bottom-up when no underflow threatens,
// falling back to the standard top-down delete otherwise.
func (s *gbuStrategy) Delete(oid rtree.OID, at geom.Point) error {
	t := s.tree
	if t.Height() <= 1 {
		return t.Delete(oid, geom.RectFromPoint(at))
	}
	leafPage, err := s.hash.Lookup(oid)
	if err != nil {
		return fmt.Errorf("gbu: delete %d: %w", oid, err)
	}
	leaf, err := t.ReadNode(leafPage)
	if err != nil {
		return err
	}
	li := leaf.FindOID(oid)
	if li < 0 {
		return fmt.Errorf("gbu: delete %d: hash points to leaf %d but entry is missing", oid, leafPage)
	}
	if len(leaf.Entries)-1 < t.MinEntries() {
		if err := t.Delete(oid, leaf.Entries[li].Rect); err != nil {
			return err
		}
		return s.adapter.Err()
	}
	leaf.RemoveEntry(li)
	if err := t.WriteNode(leaf); err != nil {
		return err
	}
	t.AdjustSize(-1)
	t.NotifyDataRemoved(oid)
	return s.adapter.Err()
}

// Search answers a window query. With the summary structure enabled, all
// internal-level overlap tests are resolved in memory (§3.2: "Equipped
// with knowledge of which index nodes above the leaf level to read from
// disk, we carry on with the query as usual"), so only the overlapping
// parent-of-leaf nodes and leaves are read.
func (s *gbuStrategy) Search(q geom.Rect, visit func(rtree.OID, geom.Rect) bool) error {
	t := s.tree
	if s.opts.NoSummaryQueries || t.Height() <= 1 {
		return t.Search(q, visit)
	}
	pages := s.sum.OverlappingAtLevel(1, q, nil)
	for _, pg := range pages {
		n, err := t.ReadNode(pg)
		if err != nil {
			return err
		}
		for _, e := range n.Entries {
			if !q.Intersects(e.Rect) {
				continue
			}
			leaf, err := t.ReadNode(e.Child)
			if err != nil {
				return err
			}
			for _, le := range leaf.Entries {
				if q.Intersects(le.Rect) {
					if !visit(le.OID, le.Rect) {
						return nil
					}
				}
			}
		}
	}
	return nil
}

// Nearest answers a k-nearest-neighbour query through the tree's
// best-first search. The summary structure holds the MBRs of internal
// nodes but not of the leaf entries that decide the final ranking, so
// unlike Search there is no memory-assisted variant; the traversal is
// the plain MinDist descent.
func (s *gbuStrategy) Nearest(p geom.Point, k int) ([]rtree.Neighbor, error) {
	return s.tree.NearestK(p, k)
}

// localOutcome classifies the result of the local phase of Algorithm 2.
type localOutcome int

const (
	localDone   localOutcome = iota // resolved in-leaf / extend / shift
	needTopDown                     // full top-down fallback required
	needAscend                      // must re-insert below a bounding ancestor
)

// Update implements Algorithm 2 (Generalized Bottom-Up Update).
func (s *gbuStrategy) Update(oid rtree.OID, old, new geom.Point) error {
	if err := s.update(oid, old, new); err != nil {
		return err
	}
	return s.adapter.Err()
}

func (s *gbuStrategy) update(oid rtree.OID, old, new geom.Point) error {
	t := s.tree
	newRect := geom.RectFromPoint(new)

	res, leaf, li, err := s.attemptLocal(oid, old, new, newRect)
	if err != nil {
		return err
	}
	switch res {
	case localDone:
		return nil
	case needTopDown:
		s.out.topDown.Add(1)
		oldRect := geom.RectFromPoint(old)
		if leaf != nil {
			oldRect = leaf.Entries[li].Rect // authoritative stored location
		}
		return t.Update(oid, oldRect, newRect)
	}
	return s.ascend(oid, new, newRect, leaf, li)
}

// ascend re-inserts the object below its lowest bounding ancestor:
// "ancestor = FindParent(node, newLocation); issue a standard R-tree
// insert at the ancestor node." The ancestor chain comes from the
// summary table, so the ascent itself costs no disk reads.
func (s *gbuStrategy) ascend(oid rtree.OID, new geom.Point, newRect geom.Rect, leaf *rtree.Node, li int) error {
	t := s.tree
	lambda := effectiveLevelThreshold(s.opts.LevelThreshold, t.Height())
	fp, err := s.sum.FindParent(leaf.Page, new, lambda)
	if err != nil {
		return err
	}
	leaf.RemoveEntry(li)
	if err := t.WriteNode(leaf); err != nil {
		return err
	}
	if err := t.InsertEntryAt(fp.PathAbove, fp.Ancestor, rtree.Entry{Rect: newRect, OID: oid}, 0); err != nil {
		return err
	}
	s.out.ascended.Add(1)
	return nil
}

// attemptLocal runs the local phase of Algorithm 2: the root-MBR check,
// the in-leaf case, and the δ-ordered extension/shift attempts. It
// performs no tree mutation unless it fully resolves the update
// (returning localDone); for the other outcomes the returned leaf/index
// (when non-nil) locate the still-unmodified entry.
func (s *gbuStrategy) attemptLocal(oid rtree.OID, old, new geom.Point, newRect geom.Rect) (localOutcome, *rtree.Node, int, error) {
	t := s.tree

	// Trees of height 1 have no internal structure to exploit.
	if t.Height() <= 1 {
		return needTopDown, nil, 0, nil
	}

	// "Access the root entry in direct access table; if newLocation lies
	// outside rootMBR: issue a top-down update." No disk access needed.
	rootMBR, ok := s.sum.RootMBR()
	if !ok {
		return needTopDown, nil, 0, fmt.Errorf("gbu: update %d: summary has no root MBR", oid)
	}
	if !rootMBR.ContainsPoint(new) {
		return needTopDown, nil, 0, nil
	}

	// "Locate via the secondary object-ID index the leaf node."
	leafPage, err := s.hash.Lookup(oid)
	if err != nil {
		return needTopDown, nil, 0, fmt.Errorf("gbu: update %d: %w", oid, err)
	}
	leaf, err := t.ReadNode(leafPage)
	if err != nil {
		return needTopDown, nil, 0, err
	}
	li := leaf.FindOID(oid)
	if li < 0 {
		return needTopDown, nil, 0, fmt.Errorf("gbu: update %d: hash points to leaf %d but entry is missing", oid, leafPage)
	}
	res, err := s.attemptLocalAt(old, new, newRect, leaf, li)
	return res, leaf, li, err
}

// attemptLocalAt is the tail of attemptLocal once the leaf holding the
// object is in hand (entry li of leaf): the in-leaf case and the
// δ-ordered extension/shift attempts. The batch pipeline enters here
// directly with the group's leaf, skipping the hash lookup.
func (s *gbuStrategy) attemptLocalAt(old, new geom.Point, newRect geom.Rect, leaf *rtree.Node, li int) (localOutcome, error) {
	t := s.tree

	// "if newLocation lies within leafMBR: update in place."
	if leaf.Self.ContainsPoint(new) {
		leaf.Entries[li].Rect = newRect
		s.out.inLeaf.Add(1)
		return localDone, t.WriteNode(leaf)
	}

	// Distance threshold δ: slow movers extend first, fast movers try a
	// sibling shift first (§3.2.1 optimization 2).
	slow := geom.Dist(old, new) <= s.opts.DistanceThreshold
	wouldUnderflow := len(leaf.Entries)-1 < t.MinEntries()

	if slow {
		done, err := s.tryExtend(leaf, li, new, newRect)
		if err != nil {
			return needTopDown, err
		}
		if done {
			return localDone, nil
		}
		if wouldUnderflow {
			return needTopDown, nil
		}
		done, err = s.tryShift(leaf, li, new, newRect)
		if err != nil {
			return needTopDown, err
		}
		if done {
			return localDone, nil
		}
		return needAscend, nil
	}

	if !wouldUnderflow {
		done, err := s.tryShift(leaf, li, new, newRect)
		if err != nil {
			return needTopDown, err
		}
		if done {
			return localDone, nil
		}
	}
	done, err := s.tryExtend(leaf, li, new, newRect)
	if err != nil {
		return needTopDown, err
	}
	if done {
		return localDone, nil
	}
	if wouldUnderflow {
		return needTopDown, nil
	}
	return needAscend, nil
}

// LocalScope returns the page granules a local update of oid would
// touch — the object's leaf and its parent (sibling shifts stay within
// the same parent, so the parent granule covers them). Used by the DGL
// concurrency layer to lock before calling TryLocalUpdate.
func (s *gbuStrategy) LocalScope(oid rtree.OID) ([]rtree.PageID, error) {
	leafPage, err := s.hash.Lookup(oid)
	if err != nil {
		return nil, err
	}
	parent, ok := s.sum.ParentOf(leafPage)
	if !ok {
		return []rtree.PageID{leafPage}, nil
	}
	return []rtree.PageID{leafPage, parent}, nil
}

// TryLocalUpdate attempts the local phase only (in-leaf, ε-extension,
// sibling shift). It reports false without modifying the tree when the
// update needs an ascent or a top-down fallback; the caller then retries
// under exclusive access with Update.
func (s *gbuStrategy) TryLocalUpdate(oid rtree.OID, old, new geom.Point) (bool, error) {
	res, _, _, err := s.attemptLocal(oid, old, new, geom.RectFromPoint(new))
	if err != nil {
		return false, err
	}
	if res != localDone {
		return false, nil
	}
	return true, s.adapter.Err()
}

// tryExtend is Algorithm 4 (iExtendMBR): enlarge the leaf MBR only in
// the direction of movement, by at most ε per side, clipped by the
// parent's MBR — which the summary table provides without disk access.
// On success both the leaf and its parent's mirroring entry are written.
func (s *gbuStrategy) tryExtend(leaf *rtree.Node, li int, new geom.Point, newRect geom.Rect) (bool, error) {
	t := s.tree
	parentPage, ok := s.sum.ParentOf(leaf.Page)
	if !ok {
		return false, fmt.Errorf("gbu: no parent recorded for leaf %d", leaf.Page)
	}
	parentMBR, ok := s.sum.MBROf(parentPage)
	if !ok {
		return false, fmt.Errorf("gbu: no summary MBR for node %d", parentPage)
	}
	iMBR := geom.ExtendToward(leaf.Self, new, s.opts.Epsilon, parentMBR)
	if !iMBR.ContainsPoint(new) {
		return false, nil
	}
	leaf.Self = iMBR
	leaf.Entries[li].Rect = newRect
	if err := t.WriteNode(leaf); err != nil {
		return false, err
	}
	parent, err := t.ReadNode(parentPage)
	if err != nil {
		return false, err
	}
	pi := parent.FindChild(leaf.Page)
	if pi < 0 {
		return false, fmt.Errorf("gbu: parent %d missing child %d", parentPage, leaf.Page)
	}
	parent.Entries[pi].Rect = iMBR
	if err := t.WriteNode(parent); err != nil {
		return false, err
	}
	s.out.extended.Add(1)
	return true, nil
}

// tryShift moves the object into a sibling leaf whose MBR already covers
// the new location. The summary bit vector screens out full siblings
// before any disk access; co-located objects are piggybacked across and
// the source leaf's MBR is tightened (§3.2.1 optimization 4).
func (s *gbuStrategy) tryShift(leaf *rtree.Node, li int, new geom.Point, newRect geom.Rect) (bool, error) {
	t := s.tree
	parentPage, ok := s.sum.ParentOf(leaf.Page)
	if !ok {
		return false, fmt.Errorf("gbu: no parent recorded for leaf %d", leaf.Page)
	}
	// The summary table answers "could any sibling contain the new
	// location?" without disk access: every sibling MBR lies inside the
	// parent's MBR, so a location outside it cannot be shifted to — skip
	// the parent read entirely (§3.2: the table gives quick access to a
	// node's parent).
	if pmbr, ok := s.sum.MBROf(parentPage); ok && !pmbr.ContainsPoint(new) {
		return false, nil
	}
	parent, err := t.ReadNode(parentPage)
	if err != nil {
		return false, err
	}

	best, bestArea := -1, math.MaxFloat64
	for i := range parent.Entries {
		pg := parent.Entries[i].Child
		if pg == leaf.Page || !parent.Entries[i].Rect.ContainsPoint(new) {
			continue
		}
		if s.sum.IsLeafFull(pg) {
			continue
		}
		if a := parent.Entries[i].Rect.Area(); a < bestArea {
			best, bestArea = i, a
		}
	}
	if best < 0 {
		return false, nil
	}
	sibPage := parent.Entries[best].Child
	sib, err := t.ReadNode(sibPage)
	if err != nil {
		return false, err
	}
	if len(sib.Entries) >= t.MaxEntries() {
		return false, nil // stale bit; never overflow a sibling
	}

	oid := leaf.Entries[li].OID
	leaf.RemoveEntry(li)
	sib.Entries = append(sib.Entries, rtree.Entry{Rect: newRect, OID: oid})

	var passengers []rtree.OID
	if !s.opts.NoPiggyback {
		for j := len(leaf.Entries) - 1; j >= 0; j-- {
			if len(sib.Entries) >= t.MaxEntries() || len(leaf.Entries) <= t.MinEntries() {
				break
			}
			if sib.Self.ContainsRect(leaf.Entries[j].Rect) {
				sib.Entries = append(sib.Entries, leaf.Entries[j])
				passengers = append(passengers, leaf.Entries[j].OID)
				leaf.RemoveEntry(j)
			}
		}
	}

	// "After a shift, the leaf's MBR is tightened to reduce overlap."
	// The sibling is written before the source leaf so a concurrent
	// query (running under the DGL cell locks of its own window) can
	// never observe a moment where the shifted objects are in neither
	// page; a transient duplicate is the benign direction.
	leaf.Self = leaf.EntriesMBR()
	if err := t.WriteNode(sib); err != nil {
		return false, err
	}
	if err := t.WriteNode(leaf); err != nil {
		return false, err
	}
	pi := parent.FindChild(leaf.Page)
	if pi < 0 {
		return false, fmt.Errorf("gbu: parent %d missing child %d", parentPage, leaf.Page)
	}
	parent.Entries[pi].Rect = leaf.Self
	if err := t.WriteNode(parent); err != nil {
		return false, err
	}

	if err := s.hash.Set(oid, sibPage); err != nil {
		return false, err
	}
	for _, p := range passengers {
		if err := s.hash.Set(p, sibPage); err != nil {
			return false, err
		}
	}
	s.out.shifted.Add(1)
	s.out.piggyback.Add(int64(len(passengers)))
	return true, nil
}

// LeafOf resolves the leaf currently holding the object (GroupApplier).
func (s *gbuStrategy) LeafOf(oid rtree.OID) (rtree.PageID, error) {
	return s.hash.Lookup(oid)
}

// ApplyLeafGroup applies one leaf's share of a batch in a single
// bottom-up pass. The leaf is read once; every in-leaf move rewrites
// its entry in place; the remaining slow movers (δ) share one
// directional extension decision — the candidate MBR grows by at most ε
// per change toward each new location, clipped by the parent MBR from
// the summary table, exactly the cumulative shape a sequence of
// per-object Algorithm 4 extensions would produce — and the leaf and
// its parent entry are written back once for the whole group. Fast
// movers, underflow risks and points beyond the achievable extension
// are returned unresolved, untouched, for the per-object path.
//
//burlint:hotpath
func (s *gbuStrategy) ApplyLeafGroup(leafPage rtree.PageID, group []BatchChange) ([]BatchChange, error) {
	t := s.tree
	if t.Height() <= 1 {
		return group, nil // no internal structure to exploit
	}
	leaf, err := t.ReadNode(leafPage)
	if err != nil {
		if errors.Is(err, pagestore.ErrPageFreed) {
			return group, nil // leaf freed by an earlier change in the batch
		}
		return nil, err
	}
	if !leaf.IsLeaf() {
		return group, nil // page recycled as an internal node
	}

	var unresolved, outside []BatchChange
	oldSelf := leaf.Self
	dirty := false
	for _, c := range group {
		li := leaf.FindOID(c.OID)
		if li < 0 {
			// The object left this leaf between grouping and application
			// (possible under concurrency); per-object handling re-resolves.
			unresolved = append(unresolved, c)
			continue
		}
		if leaf.Self.ContainsPoint(c.New) {
			leaf.Entries[li].Rect = geom.RectFromPoint(c.New)
			s.out.inLeaf.Add(1)
			dirty = true
			continue
		}
		outside = append(outside, c)
	}

	// One extension decision for the group's slow movers. The summary
	// table provides the parent MBR bound without disk access.
	if len(outside) > 0 {
		parentPage, okP := s.sum.ParentOf(leafPage)
		parentMBR, okM := geom.Rect{}, false
		if okP {
			parentMBR, okM = s.sum.MBROf(parentPage)
		}
		rest := outside[:0]
		for _, c := range outside {
			if !okM || geom.Dist(c.Old, c.New) > s.opts.DistanceThreshold {
				rest = append(rest, c) // fast movers try a shift first (δ)
				continue
			}
			ext := geom.ExtendToward(leaf.Self, c.New, s.opts.Epsilon, parentMBR)
			if !ext.ContainsPoint(c.New) {
				rest = append(rest, c)
				continue
			}
			leaf.Self = ext
			leaf.Entries[leaf.FindOID(c.OID)].Rect = geom.RectFromPoint(c.New)
			s.out.extended.Add(1)
			dirty = true
		}
		outside = rest
	}

	if dirty {
		if err := t.WriteNode(leaf); err != nil {
			return nil, err
		}
	}
	if leaf.Self != oldSelf {
		// Mirror the enlarged leaf MBR in the parent once per group
		// instead of once per extension.
		parentPage, ok := s.sum.ParentOf(leafPage)
		if !ok {
			return nil, fmt.Errorf("gbu: no parent recorded for leaf %d", leafPage)
		}
		parent, err := t.ReadNode(parentPage)
		if err != nil {
			return nil, err
		}
		pi := parent.FindChild(leafPage)
		if pi < 0 {
			return nil, fmt.Errorf("gbu: parent %d missing child %d", parentPage, leafPage)
		}
		parent.Entries[pi].Rect = leaf.Self
		if err := t.WriteNode(parent); err != nil {
			return nil, err
		}
	}
	return append(unresolved, outside...), nil
}

// UpdateAtLeaf applies one change whose object lives in leaf, skipping
// the secondary-index lookup (GroupApplier). Directly after a group
// pass the leaf is still buffered, so the read costs no disk access.
func (s *gbuStrategy) UpdateAtLeaf(leafPage rtree.PageID, c BatchChange, localOnly bool) (bool, error) {
	t := s.tree
	newRect := geom.RectFromPoint(c.New)
	if t.Height() <= 1 {
		if localOnly {
			return false, nil
		}
		return s.topDownEscalate(c.OID, geom.RectFromPoint(c.Old), newRect)
	}
	leaf, err := t.ReadNode(leafPage)
	if err != nil && !errors.Is(err, pagestore.ErrPageFreed) {
		return false, err
	}
	li := -1
	if err == nil && leaf.IsLeaf() {
		li = leaf.FindOID(c.OID)
	}
	if li < 0 {
		if localOnly {
			return false, nil // moved concurrently; the caller escalates
		}
		// The batch's own shifts (piggybacked passengers), splits and
		// top-down deletes can relocate objects — or free or recycle the
		// leaf page — between grouping and application; re-resolve
		// through the always-current hash index.
		return true, s.Update(c.OID, c.Old, c.New)
	}
	if rootMBR, ok := s.sum.RootMBR(); !ok || !rootMBR.ContainsPoint(c.New) {
		if localOnly {
			return false, nil
		}
		return s.topDownEscalate(c.OID, leaf.Entries[li].Rect, newRect)
	}
	res, err := s.attemptLocalAt(c.Old, c.New, newRect, leaf, li)
	if err != nil {
		return false, err
	}
	switch res {
	case localDone:
		return true, s.adapter.Err()
	case needTopDown:
		if localOnly {
			return false, nil
		}
		return s.topDownEscalate(c.OID, leaf.Entries[li].Rect, newRect)
	}
	if localOnly {
		return false, nil
	}
	if err := s.ascend(c.OID, c.New, newRect, leaf, li); err != nil {
		return false, err
	}
	return true, s.adapter.Err()
}

// topDownEscalate hands one change to the tree's top-down update path,
// counting the escalation. A method rather than a closure inside
// UpdateAtLeaf: the closure allocated per fallback op on the batch hot
// path.
func (s *gbuStrategy) topDownEscalate(oid rtree.OID, oldRect, newRect geom.Rect) (bool, error) {
	s.out.topDown.Add(1)
	if err := s.tree.Update(oid, oldRect, newRect); err != nil {
		return false, err
	}
	return true, s.adapter.Err()
}

// HashBucket names the secondary-index bucket of an object without I/O
// (batch lookup clustering).
func (s *gbuStrategy) HashBucket(oid rtree.OID) int { return s.hash.Bucket(oid) }
