package core

// I/O accounting tests: pin the per-path page-access costs of the
// bottom-up strategies against the paper's §4 cost analysis, with no
// buffer so every logical access is a physical one.

import (
	"math/rand"
	"testing"

	"burtree/internal/geom"
	"burtree/internal/rtree"
)

// findExtensionCandidate locates an object whose leaf MBR does not cover
// a point just outside it, but whose parent MBR does — so a directional
// ε-extension must succeed.
func findExtensionCandidate(t *testing.T, g *gbuStrategy) (rtree.OID, geom.Point, geom.Point) {
	t.Helper()
	tr := g.tree
	for oid := rtree.OID(0); oid < rtree.OID(tr.Size()); oid++ {
		leafPage, err := g.hash.Lookup(oid)
		if err != nil {
			continue
		}
		leaf, err := tr.ReadNode(leafPage)
		if err != nil {
			t.Fatal(err)
		}
		li := leaf.FindOID(oid)
		if li < 0 {
			continue
		}
		parentPage, ok := g.sum.ParentOf(leafPage)
		if !ok {
			continue
		}
		pmbr, _ := g.sum.MBROf(parentPage)
		// Step just east of the leaf MBR.
		target := geom.Point{X: leaf.Self.MaxX + 0.0005, Y: leaf.Self.Center().Y}
		if leaf.Self.ContainsPoint(target) || !pmbr.ContainsPoint(target) {
			continue
		}
		if len(leaf.Entries)-1 < tr.MinEntries() {
			continue
		}
		old := leaf.Entries[li].Rect.Center()
		return oid, old, target
	}
	t.Skip("no extension candidate found at this seed")
	return 0, geom.Point{}, geom.Point{}
}

func TestGBUExtensionCostExact(t *testing.T) {
	u := newUpdater(t, 1024, 0, Options{Strategy: GBU, Epsilon: 0.01, ExpectedObjects: 4000})
	g := u.(*gbuStrategy)
	w := newWorld(999)
	w.populate(t, u, 4000)
	io := g.tree.IO()

	oid, old, target := findExtensionCandidate(t, g)
	outBefore := g.Outcomes()
	base := io.Snapshot()
	if err := u.Update(oid, old, target); err != nil {
		t.Fatal(err)
	}
	d := io.Snapshot().Sub(base)
	out := g.Outcomes()
	if out.Extended != outBefore.Extended+1 {
		t.Fatalf("update did not extend: %+v -> %+v", outBefore, out)
	}
	// Paper §4 case 2 charges 4 I/Os (hash + leaf R/W + parent R); our
	// implementation adds the parent write that keeps the parent entry
	// mirroring the extended MBR: 3 reads + 2 writes.
	if d.Reads != 3 || d.Writes != 2 {
		t.Fatalf("extension cost = %dR+%dW, want 3R+2W", d.Reads, d.Writes)
	}
	validateAll(t, u)
	w.pos[oid] = target
}

func TestLBUInPlaceCostExact(t *testing.T) {
	u := newUpdater(t, 1024, 0, Options{Strategy: LBU, ExpectedObjects: 4000})
	l := u.(*lbuStrategy)
	w := newWorld(888)
	w.populate(t, u, 4000)
	io := l.tree.IO()

	// Move an object to its own leaf's MBR center: guaranteed in place.
	oid := w.ids[17]
	leafPage, err := l.hash.Lookup(oid)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := l.tree.ReadNode(leafPage)
	if err != nil {
		t.Fatal(err)
	}
	target := leaf.Self.Center()
	base := io.Snapshot()
	if err := u.Update(oid, w.pos[oid], target); err != nil {
		t.Fatal(err)
	}
	d := io.Snapshot().Sub(base)
	// 1 hash read + leaf read + leaf write.
	if d.Reads != 2 || d.Writes != 1 {
		t.Fatalf("in-place cost = %dR+%dW, want 2R+1W", d.Reads, d.Writes)
	}
	w.pos[oid] = target
	validateAll(t, u)
}

func TestGBUOutsideRootFallsBackTopDown(t *testing.T) {
	u := newUpdater(t, 1024, 0, Options{Strategy: GBU, ExpectedObjects: 1000})
	w := newWorld(777)
	w.populate(t, u, 1000)
	g := u.(*gbuStrategy)
	before := g.Outcomes()
	oid := w.ids[0]
	// Far outside the unit square, hence outside the root MBR.
	target := geom.Point{X: 50, Y: 50}
	if err := u.Update(oid, w.pos[oid], target); err != nil {
		t.Fatal(err)
	}
	w.pos[oid] = target
	after := g.Outcomes()
	if after.TopDown != before.TopDown+1 {
		t.Fatalf("outside-root update not top-down: %+v -> %+v", before, after)
	}
	validateAll(t, u)
	// And the object is findable at its new position.
	found, err := g.tree.SearchCollect(geom.RectFromPoint(target))
	if err != nil || len(found) != 1 || found[0] != oid {
		t.Fatalf("object lost after outside-root update: %v, %v", found, err)
	}
}

func TestGBUShiftSkipsParentReadWhenOutsideParentMBR(t *testing.T) {
	// The summary-table check must prevent a parent read when the new
	// location lies outside the parent MBR entirely (fast-path ascends).
	u := newUpdater(t, 1024, 0, Options{Strategy: GBU, DistanceThreshold: 1e-12, ExpectedObjects: 4000})
	g := u.(*gbuStrategy)
	w := newWorld(666)
	w.populate(t, u, 4000)

	// Find an object and a target outside its parent's MBR but inside
	// the root MBR.
	rootMBR, _ := g.sum.RootMBR()
	var oid rtree.OID
	var target geom.Point
	found := false
	for _, id := range w.ids {
		leafPage, err := g.hash.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		parentPage, ok := g.sum.ParentOf(leafPage)
		if !ok {
			continue
		}
		pmbr, _ := g.sum.MBROf(parentPage)
		cand := geom.Point{X: pmbr.MaxX + 0.05, Y: pmbr.Center().Y}
		leaf, err := g.tree.ReadNode(leafPage)
		if err != nil {
			t.Fatal(err)
		}
		if len(leaf.Entries)-1 < g.tree.MinEntries() {
			continue
		}
		if rootMBR.ContainsPoint(cand) && !pmbr.ContainsPoint(cand) {
			oid, target, found = id, cand, true
			break
		}
	}
	if !found {
		t.Skip("no suitable candidate at this seed")
	}
	before := g.Outcomes()
	if err := u.Update(oid, w.pos[oid], target); err != nil {
		t.Fatal(err)
	}
	w.pos[oid] = target
	after := g.Outcomes()
	if after.Shifted != before.Shifted {
		t.Fatalf("shift happened despite target outside parent MBR")
	}
	if after.Ascended+after.TopDown+after.Extended == before.Ascended+before.TopDown+before.Extended {
		t.Fatalf("update unaccounted: %+v -> %+v", before, after)
	}
	validateAll(t, u)
}

func TestNaiveStrategyBasics(t *testing.T) {
	u := newUpdater(t, 512, 0, Options{Strategy: Naive, ExpectedObjects: 1500})
	w := newWorld(555)
	w.populate(t, u, 1200)
	for i := 0; i < 3000; i++ {
		w.move(t, u, 0.05)
	}
	validateAll(t, u)
	checkSearchMatches(t, u, w, 20)
	out := u.Outcomes()
	if out.InLeaf == 0 || out.TopDown == 0 {
		t.Fatalf("naive outcomes = %+v; expected both paths exercised", out)
	}
	if out.Extended+out.Shifted+out.Ascended != 0 {
		t.Fatalf("naive used repair paths it does not have: %+v", out)
	}
	if u.Name() != "NAIVE" {
		t.Fatalf("name = %q", u.Name())
	}
}

func TestParseKind(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Kind
	}{{"TD", TD}, {"td", TD}, {"LBU", LBU}, {"GBU", GBU}, {"gbu", GBU}, {"NAIVE", Naive}} {
		got, err := ParseKind(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseKind(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestGBUDeleteBottomUpCost(t *testing.T) {
	u := newUpdater(t, 1024, 0, Options{Strategy: GBU, ExpectedObjects: 4000})
	g := u.(*gbuStrategy)
	w := newWorld(444)
	w.populate(t, u, 4000)
	io := g.tree.IO()

	// Find an object in a leaf with slack (no underflow on removal).
	var oid rtree.OID
	found := false
	for _, id := range w.ids {
		leafPage, err := g.hash.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		leaf, err := g.tree.ReadNode(leafPage)
		if err != nil {
			t.Fatal(err)
		}
		if len(leaf.Entries)-1 >= g.tree.MinEntries() {
			oid, found = id, true
			break
		}
	}
	if !found {
		t.Skip("no slack leaf at this seed")
	}
	base := io.Snapshot()
	if err := u.Delete(oid, w.pos[oid]); err != nil {
		t.Fatal(err)
	}
	d := io.Snapshot().Sub(base)
	// hash read + leaf read + leaf write + hash write (mapping removal).
	if d.Reads > 3 || d.Writes > 2 {
		t.Fatalf("bottom-up delete cost = %dR+%dW, want <= 3R+2W", d.Reads, d.Writes)
	}
	delete(w.pos, oid)
	if g.tree.Size() != 3999 {
		t.Fatalf("size = %d", g.tree.Size())
	}
	if err := g.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSeedsSweepGBU(t *testing.T) {
	// Fuzz-style: several seeds, moderate workloads, full validation.
	for seed := int64(1); seed <= 5; seed++ {
		u := newUpdater(t, 512, 4, Options{Strategy: GBU, ExpectedObjects: 800})
		w := newWorld(seed)
		w.populate(t, u, 600)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1200; i++ {
			w.move(t, u, 0.02+0.2*rng.Float64())
		}
		validateAll(t, u)
	}
}
