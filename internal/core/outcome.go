package core

import "sync/atomic"

// outcomeCounters is the concurrent-safe backing store for Outcomes.
type outcomeCounters struct {
	inLeaf    atomic.Int64
	extended  atomic.Int64
	shifted   atomic.Int64
	piggyback atomic.Int64
	ascended  atomic.Int64
	topDown   atomic.Int64
}

func (c *outcomeCounters) snapshot() Outcomes {
	return Outcomes{
		InLeaf:    c.inLeaf.Load(),
		Extended:  c.extended.Load(),
		Shifted:   c.shifted.Load(),
		Piggyback: c.piggyback.Load(),
		Ascended:  c.ascended.Load(),
		TopDown:   c.topDown.Load(),
	}
}
