package core

import (
	"math/rand"
	"sort"
	"testing"

	"burtree/internal/buffer"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
)

func newUpdater(t testing.TB, pageSize, bufferPages int, opts Options) Updater {
	t.Helper()
	store := pagestore.New(pageSize, &stats.IO{})
	pool := buffer.New(store, bufferPages)
	u, err := New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// world tracks object positions and drives random movement.
type world struct {
	rng *rand.Rand
	pos map[rtree.OID]geom.Point
	ids []rtree.OID
}

func newWorld(seed int64) *world {
	return &world{rng: rand.New(rand.NewSource(seed)), pos: map[rtree.OID]geom.Point{}}
}

func (w *world) populate(t *testing.T, u Updater, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := geom.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
		oid := rtree.OID(i)
		if err := u.Insert(oid, p); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		w.pos[oid] = p
		w.ids = append(w.ids, oid)
	}
}

// move performs one random bounded move of a random object.
func (w *world) move(t *testing.T, u Updater, maxDist float64) {
	t.Helper()
	oid := w.ids[w.rng.Intn(len(w.ids))]
	old := w.pos[oid]
	np := geom.Point{
		X: old.X + (w.rng.Float64()*2-1)*maxDist,
		Y: old.Y + (w.rng.Float64()*2-1)*maxDist,
	}
	if err := u.Update(oid, old, np); err != nil {
		t.Fatalf("update %d %v -> %v: %v", oid, old, np, err)
	}
	w.pos[oid] = np
}

func (w *world) searchOracle(q geom.Rect) []rtree.OID {
	var out []rtree.OID
	for oid, p := range w.pos {
		if q.ContainsPoint(p) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkSearchMatches(t *testing.T, u Updater, w *world, queries int) {
	t.Helper()
	for i := 0; i < queries; i++ {
		c := geom.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
		size := w.rng.Float64() * 0.1
		q := geom.Rect{MinX: c.X, MinY: c.Y, MaxX: c.X + size, MaxY: c.Y + size}
		var got []rtree.OID
		if err := u.Search(q, func(oid rtree.OID, _ geom.Rect) bool {
			got = append(got, oid)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := w.searchOracle(q)
		if len(got) != len(want) {
			t.Fatalf("%s query %v: got %d results, want %d", u.Name(), q, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("%s query %v: result %d = %d, want %d", u.Name(), q, j, got[j], want[j])
			}
		}
	}
}

// checkHashConsistency verifies that every object's hash entry names the
// leaf that actually stores it.
func checkHashConsistency(t *testing.T, u Updater) {
	t.Helper()
	type hashed interface {
		lookup(oid rtree.OID) (pagestore.PageID, error)
	}
	var look func(oid rtree.OID) (pagestore.PageID, error)
	switch s := u.(type) {
	case *lbuStrategy:
		look = func(oid rtree.OID) (pagestore.PageID, error) { return s.hash.Lookup(oid) }
	case *gbuStrategy:
		look = func(oid rtree.OID) (pagestore.PageID, error) { return s.hash.Lookup(oid) }
	default:
		return
	}
	tr := u.Tree()
	if tr.Root() == pagestore.InvalidPage {
		return
	}
	// Walk all leaves recording oid -> page.
	actual := map[rtree.OID]pagestore.PageID{}
	var walk func(page pagestore.PageID) error
	walk = func(page pagestore.PageID) error {
		n, err := tr.ReadNode(page)
		if err != nil {
			return err
		}
		if n.IsLeaf() {
			for _, e := range n.Entries {
				actual[e.OID] = page
			}
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(tr.Root()); err != nil {
		t.Fatal(err)
	}
	for oid, page := range actual {
		got, err := look(oid)
		if err != nil {
			t.Fatalf("hash lookup %d: %v", oid, err)
		}
		if got != page {
			t.Fatalf("hash maps %d to page %d, tree stores it in %d", oid, got, page)
		}
	}
	var _ hashed // documentation: the interface shape checked above
}

func validateAll(t *testing.T, u Updater) {
	t.Helper()
	if err := u.Err(); err != nil {
		t.Fatalf("%s sticky error: %v", u.Name(), err)
	}
	if err := u.Tree().CheckInvariants(); err != nil {
		t.Fatalf("%s invariants: %v", u.Name(), err)
	}
	checkHashConsistency(t, u)
	if g, ok := u.(*gbuStrategy); ok {
		if err := g.sum.Validate(g.tree); err != nil {
			t.Fatalf("GBU summary: %v", err)
		}
	}
}

func allStrategies() []Options {
	return []Options{
		{Strategy: TD, Tree: rtree.Config{ReinsertFraction: 0.3}},
		{Strategy: LBU, Tree: rtree.Config{ReinsertFraction: 0.3}, ExpectedObjects: 2000},
		{Strategy: GBU, Tree: rtree.Config{ReinsertFraction: 0.3}, ExpectedObjects: 2000},
	}
}

func TestStrategiesRandomMovement(t *testing.T) {
	for _, opts := range allStrategies() {
		opts := opts
		t.Run(opts.Strategy.String(), func(t *testing.T) {
			u := newUpdater(t, 512, 16, opts)
			w := newWorld(101)
			const n = 1000
			w.populate(t, u, n)
			validateAll(t, u)
			for step := 0; step < 4000; step++ {
				w.move(t, u, 0.03)
				if step%971 == 0 {
					validateAll(t, u)
				}
			}
			validateAll(t, u)
			if u.Tree().Size() != n {
				t.Fatalf("size = %d, want %d", u.Tree().Size(), n)
			}
			checkSearchMatches(t, u, w, 40)
			out := u.Outcomes()
			if out.Total() != 4000 {
				t.Fatalf("outcomes total = %d, want 4000 (%+v)", out.Total(), out)
			}
		})
	}
}

func TestStrategiesFastMovement(t *testing.T) {
	// Large moves force the non-local paths: ascents and top-down
	// fallbacks must still preserve all invariants.
	for _, opts := range allStrategies() {
		opts := opts
		t.Run(opts.Strategy.String(), func(t *testing.T) {
			u := newUpdater(t, 512, 0, opts)
			w := newWorld(202)
			w.populate(t, u, 600)
			for step := 0; step < 2500; step++ {
				w.move(t, u, 0.3)
				if step%733 == 0 {
					validateAll(t, u)
				}
			}
			validateAll(t, u)
			checkSearchMatches(t, u, w, 30)
		})
	}
}

func TestGBUOutcomeMixUnderLocality(t *testing.T) {
	u := newUpdater(t, 512, 0, Options{Strategy: GBU, ExpectedObjects: 2000})
	w := newWorld(303)
	w.populate(t, u, 1500)
	const moves = 5000
	for step := 0; step < moves; step++ {
		w.move(t, u, 0.01) // strong locality
	}
	validateAll(t, u)
	out := u.Outcomes()
	local := out.InLeaf + out.Extended + out.Shifted
	if frac := float64(local) / float64(moves); frac < 0.7 {
		t.Fatalf("local resolutions = %.2f of updates, want >= 0.7 (%+v)", frac, out)
	}
	if out.TopDown > moves/10 {
		t.Fatalf("top-down fallbacks = %d, want < 10%% (%+v)", out.TopDown, out)
	}
}

func TestGBULevelThresholdZero(t *testing.T) {
	// λ = 0 disables ascent: no update may resolve as "ascended" below
	// the root... ascents still count, but they must all target the root.
	u := newUpdater(t, 512, 0, Options{Strategy: GBU, LevelThreshold: LevelThresholdZero, ExpectedObjects: 1000})
	w := newWorld(404)
	w.populate(t, u, 800)
	for step := 0; step < 3000; step++ {
		w.move(t, u, 0.1)
	}
	validateAll(t, u)
	checkSearchMatches(t, u, w, 20)
}

func TestGBULevelThresholdSweepStaysValid(t *testing.T) {
	for _, lambda := range []int{LevelThresholdZero, 1, 2, 3, UnrestrictedLevels} {
		u := newUpdater(t, 512, 0, Options{Strategy: GBU, LevelThreshold: lambda, ExpectedObjects: 1000})
		w := newWorld(505)
		w.populate(t, u, 700)
		for step := 0; step < 1500; step++ {
			w.move(t, u, 0.08)
		}
		validateAll(t, u)
		checkSearchMatches(t, u, w, 10)
	}
}

func TestGBUDistanceThresholdOrdersPaths(t *testing.T) {
	// δ = 3 (larger than any possible move) forces extend-first; δ = 0
	// forces shift-first. Both must remain correct; the shift-first run
	// should resolve at least as many updates by shifting.
	shiftFirst := newUpdater(t, 512, 0, Options{Strategy: GBU, DistanceThreshold: 1e-12, ExpectedObjects: 1000})
	extendFirst := newUpdater(t, 512, 0, Options{Strategy: GBU, DistanceThreshold: 3, ExpectedObjects: 1000})
	for _, u := range []Updater{shiftFirst, extendFirst} {
		w := newWorld(606)
		w.populate(t, u, 800)
		for step := 0; step < 2500; step++ {
			w.move(t, u, 0.05)
		}
		validateAll(t, u)
	}
	sf, ef := shiftFirst.Outcomes(), extendFirst.Outcomes()
	if sf.Shifted < ef.Shifted {
		t.Fatalf("shift-first shifted %d < extend-first %d", sf.Shifted, ef.Shifted)
	}
	if ef.Extended < sf.Extended {
		t.Fatalf("extend-first extended %d < shift-first %d", ef.Extended, sf.Extended)
	}
}

func TestGBUPiggybackAblation(t *testing.T) {
	with := newUpdater(t, 512, 0, Options{Strategy: GBU, ExpectedObjects: 1000})
	without := newUpdater(t, 512, 0, Options{Strategy: GBU, NoPiggyback: true, ExpectedObjects: 1000})
	for _, u := range []Updater{with, without} {
		w := newWorld(707)
		w.populate(t, u, 800)
		for step := 0; step < 2500; step++ {
			w.move(t, u, 0.05)
		}
		validateAll(t, u)
	}
	if without.Outcomes().Piggyback != 0 {
		t.Fatalf("NoPiggyback still carried %d passengers", without.Outcomes().Piggyback)
	}
	if with.Outcomes().Shifted > 0 && with.Outcomes().Piggyback == 0 {
		t.Log("note: no piggyback passengers occurred despite shifts (workload-dependent)")
	}
}

func TestGBUSummaryQueryMatchesPlain(t *testing.T) {
	u := newUpdater(t, 512, 0, Options{Strategy: GBU, ExpectedObjects: 1500})
	g := u.(*gbuStrategy)
	w := newWorld(808)
	w.populate(t, u, 1200)
	for step := 0; step < 2000; step++ {
		w.move(t, u, 0.05)
	}
	validateAll(t, u)
	for i := 0; i < 50; i++ {
		c := geom.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
		size := w.rng.Float64() * 0.15
		q := geom.Rect{MinX: c.X, MinY: c.Y, MaxX: c.X + size, MaxY: c.Y + size}
		var viaSummary, viaPlain []rtree.OID
		if err := g.Search(q, func(oid rtree.OID, _ geom.Rect) bool {
			viaSummary = append(viaSummary, oid)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if err := g.tree.Search(q, func(oid rtree.OID, _ geom.Rect) bool {
			viaPlain = append(viaPlain, oid)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(viaSummary, func(i, j int) bool { return viaSummary[i] < viaSummary[j] })
		sort.Slice(viaPlain, func(i, j int) bool { return viaPlain[i] < viaPlain[j] })
		if len(viaSummary) != len(viaPlain) {
			t.Fatalf("query %v: summary %d results, plain %d", q, len(viaSummary), len(viaPlain))
		}
		for j := range viaPlain {
			if viaSummary[j] != viaPlain[j] {
				t.Fatalf("query %v: result %d differs", q, j)
			}
		}
	}
}

func TestGBUSummaryQuerySavesInternalReads(t *testing.T) {
	u := newUpdater(t, 512, 0, Options{Strategy: GBU, ExpectedObjects: 3000})
	g := u.(*gbuStrategy)
	w := newWorld(909)
	w.populate(t, u, 2500)
	if g.tree.Height() < 3 {
		t.Fatalf("height = %d, want >= 3 for this test", g.tree.Height())
	}
	io := g.tree.IO()
	q := geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.5, MaxY: 0.5}

	base := io.Snapshot()
	if err := g.tree.Search(q, func(rtree.OID, geom.Rect) bool { return true }); err != nil {
		t.Fatal(err)
	}
	plain := io.Snapshot().Sub(base).Reads

	base = io.Snapshot()
	if err := g.Search(q, func(rtree.OID, geom.Rect) bool { return true }); err != nil {
		t.Fatal(err)
	}
	assisted := io.Snapshot().Sub(base).Reads

	if assisted >= plain {
		t.Fatalf("summary-assisted query reads %d >= plain %d", assisted, plain)
	}
}

func TestGBUUpdateBeatsTDOnIO(t *testing.T) {
	// The headline claim: on a locality-preserving workload without a
	// buffer, GBU's average update I/O must be well below TD's.
	// Locality is relative to leaf extent: with 3000 points a leaf spans
	// roughly 0.07 of the unit square, so moves of 0.01 mostly stay local,
	// mirroring the paper's default (moves of 0.03 against 1M points).
	run := func(opts Options) float64 {
		u := newUpdater(t, 1024, 0, opts)
		w := newWorld(111)
		w.populate(t, u, 3000)
		io := u.Tree().IO()
		base := io.Snapshot()
		const moves = 3000
		for i := 0; i < moves; i++ {
			w.move(t, u, 0.01)
		}
		validateAll(t, u)
		return float64(io.Snapshot().Sub(base).Total()) / moves
	}
	td := run(Options{Strategy: TD, Tree: rtree.Config{ReinsertFraction: 0.3}})
	gbu := run(Options{Strategy: GBU, Tree: rtree.Config{ReinsertFraction: 0.3}, ExpectedObjects: 3000})
	if gbu >= td*0.7 {
		t.Fatalf("GBU avg update I/O %.2f not clearly below TD %.2f", gbu, td)
	}
}

func TestStrategyInsertDeleteLifecycle(t *testing.T) {
	for _, opts := range allStrategies() {
		opts := opts
		t.Run(opts.Strategy.String(), func(t *testing.T) {
			u := newUpdater(t, 512, 8, opts)
			w := newWorld(121)
			w.populate(t, u, 600)
			// Delete half, move the rest, re-insert new ones.
			for i := 0; i < 300; i++ {
				oid := rtree.OID(i)
				if err := u.Delete(oid, w.pos[oid]); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
				delete(w.pos, oid)
			}
			w.ids = w.ids[300:]
			for step := 0; step < 1000; step++ {
				w.move(t, u, 0.05)
			}
			for i := 600; i < 900; i++ {
				p := geom.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
				if err := u.Insert(rtree.OID(i), p); err != nil {
					t.Fatal(err)
				}
				w.pos[rtree.OID(i)] = p
				w.ids = append(w.ids, rtree.OID(i))
			}
			validateAll(t, u)
			if u.Tree().Size() != 600 {
				t.Fatalf("size = %d, want 600", u.Tree().Size())
			}
			checkSearchMatches(t, u, w, 20)
		})
	}
}

func TestUpdateUnknownObject(t *testing.T) {
	for _, opts := range allStrategies() {
		u := newUpdater(t, 512, 0, opts)
		w := newWorld(131)
		w.populate(t, u, 50)
		err := u.Update(9999, geom.Point{X: 0.5, Y: 0.5}, geom.Point{X: 0.6, Y: 0.6})
		if err == nil {
			t.Fatalf("%s: update of unknown object succeeded", u.Name())
		}
	}
}

func TestKindString(t *testing.T) {
	if TD.String() != "TD" || LBU.String() != "LBU" || GBU.String() != "GBU" {
		t.Fatal("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestNewUnknownStrategy(t *testing.T) {
	store := pagestore.New(512, &stats.IO{})
	pool := buffer.New(store, 0)
	if _, err := New(pool, Options{Strategy: Kind(99)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestLBUUsesParentPointers(t *testing.T) {
	u := newUpdater(t, 512, 0, Options{Strategy: LBU, ExpectedObjects: 500})
	if !u.Tree().Config().ParentPointers {
		t.Fatal("LBU tree must have parent pointers")
	}
	// TD and GBU must not pay for them.
	td := newUpdater(t, 512, 0, Options{Strategy: TD})
	gbu := newUpdater(t, 512, 0, Options{Strategy: GBU})
	if td.Tree().Config().ParentPointers || gbu.Tree().Config().ParentPointers {
		t.Fatal("TD/GBU trees must not have parent pointers")
	}
}

func TestGBUInLeafUpdateCost(t *testing.T) {
	// Paper cost analysis, case 1: an in-leaf update costs exactly 3 I/O
	// with no buffer — one hash-index read, one leaf read, one leaf
	// write. Move an object to the center of its own leaf MBR so the
	// in-leaf path is guaranteed.
	u := newUpdater(t, 1024, 0, Options{Strategy: GBU, ExpectedObjects: 4000})
	g := u.(*gbuStrategy)
	w := newWorld(141)
	w.populate(t, u, 4000)
	io := g.tree.IO()

	for trial := 0; trial < 25; trial++ {
		oid := w.ids[w.rng.Intn(len(w.ids))]
		leafPage, err := g.hash.Lookup(oid)
		if err != nil {
			t.Fatal(err)
		}
		leaf, err := g.tree.ReadNode(leafPage)
		if err != nil {
			t.Fatal(err)
		}
		target := leaf.Self.Center()
		base := io.Snapshot()
		if err := u.Update(oid, w.pos[oid], target); err != nil {
			t.Fatal(err)
		}
		w.pos[oid] = target
		d := io.Snapshot().Sub(base)
		if d.Reads != 2 || d.Writes != 1 {
			t.Fatalf("in-leaf update cost = %dR+%dW, want 2R+1W (hash + leaf R/W)", d.Reads, d.Writes)
		}
	}
	validateAll(t, u)
}
