package core

import (
	"fmt"

	"burtree/internal/buffer"
	"burtree/internal/rtree"
)

// RestoreState carries the metadata needed to re-attach a strategy to a
// reloaded page store: the tree's root/height/size and, for the
// bottom-up strategies, the hash-index directory. The summary structure
// is not persisted — it is main-memory only in the paper too — and is
// rebuilt from the tree in one walk.
type RestoreState struct {
	Root   rtree.PageID
	Height int
	Size   int

	HashDirectory []rtree.PageID
	HashSize      int
}

// Restore builds a strategy over an existing page store (reachable
// through pool) and re-attaches it to the persisted structures.
func Restore(pool *buffer.Pool, opts Options, st RestoreState) (Updater, error) {
	u, err := New(pool, opts)
	if err != nil {
		return nil, err
	}
	if err := u.Tree().Restore(st.Root, st.Height, st.Size); err != nil {
		return nil, err
	}
	switch s := u.(type) {
	case *tdStrategy:
		// No auxiliary structures.
	case *lbuStrategy:
		if err := s.hash.RestoreDirectory(st.HashDirectory, st.HashSize); err != nil {
			return nil, err
		}
	case *naiveStrategy:
		if err := s.hash.RestoreDirectory(st.HashDirectory, st.HashSize); err != nil {
			return nil, err
		}
	case *gbuStrategy:
		if err := s.hash.RestoreDirectory(st.HashDirectory, st.HashSize); err != nil {
			return nil, err
		}
		if err := s.sum.Rebuild(s.tree); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: restore: unsupported strategy %T", u)
	}
	return u, nil
}

// SaveState extracts the RestoreState of a live strategy. The caller is
// responsible for flushing the buffer pool before dumping the store.
func SaveState(u Updater) (RestoreState, error) {
	st := RestoreState{
		Root:   u.Tree().Root(),
		Height: u.Tree().Height(),
		Size:   u.Tree().Size(),
	}
	switch s := u.(type) {
	case *tdStrategy:
	case *lbuStrategy:
		st.HashDirectory = s.hash.Directory()
		st.HashSize = s.hash.Size()
	case *naiveStrategy:
		st.HashDirectory = s.hash.Directory()
		st.HashSize = s.hash.Size()
	case *gbuStrategy:
		st.HashDirectory = s.hash.Directory()
		st.HashSize = s.hash.Size()
	default:
		return st, fmt.Errorf("core: save: unsupported strategy %T", u)
	}
	return st, nil
}
