package core

import (
	"errors"
	"fmt"

	"burtree/internal/geom"
	"burtree/internal/hashindex"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
)

// lbuStrategy is the Localized Bottom-Up update of Algorithm 1. The leaf
// holding the object is reached directly through the secondary hash
// index; the leaf MBR may be enlarged by ε uniformly in all directions
// (Kwon et al.), bounded by the parent MBR — which is why this tree
// variant stores parent pointers in every node and pays their
// maintenance cost on splits — or the object may be shifted into a
// sibling whose MBR already covers the new location. Anything else falls
// back to a top-down path.
type lbuStrategy struct {
	tree    *rtree.Tree
	hash    *hashindex.Index
	adapter *hashAdapter
	eps     float64

	out outcomeCounters
}

var (
	_ Updater      = (*lbuStrategy)(nil)
	_ LocalUpdater = (*lbuStrategy)(nil)
	_ GroupApplier = (*lbuStrategy)(nil)
)

func (s *lbuStrategy) Name() string { return "LBU" }

func (s *lbuStrategy) Insert(oid rtree.OID, p geom.Point) error {
	if err := s.tree.Insert(oid, geom.RectFromPoint(p)); err != nil {
		return err
	}
	return s.adapter.Err()
}

func (s *lbuStrategy) Delete(oid rtree.OID, at geom.Point) error {
	if err := s.tree.Delete(oid, geom.RectFromPoint(at)); err != nil {
		return err
	}
	return s.adapter.Err()
}

func (s *lbuStrategy) Search(q geom.Rect, visit func(rtree.OID, geom.Rect) bool) error {
	return s.tree.Search(q, visit)
}

func (s *lbuStrategy) Nearest(p geom.Point, k int) ([]rtree.Neighbor, error) {
	return s.tree.NearestK(p, k)
}

func (s *lbuStrategy) Tree() *rtree.Tree { return s.tree }

func (s *lbuStrategy) Outcomes() Outcomes { return s.out.snapshot() }

func (s *lbuStrategy) Err() error { return s.adapter.Err() }

// Update implements Algorithm 1 (Localized Bottom-Up Update).
func (s *lbuStrategy) Update(oid rtree.OID, old, new geom.Point) error {
	if err := s.update(oid, old, new); err != nil {
		return err
	}
	return s.adapter.Err()
}

func (s *lbuStrategy) update(oid rtree.OID, old, new geom.Point) error {
	t := s.tree
	newRect := geom.RectFromPoint(new)

	res, leaf, li, err := s.attemptLocal(oid, new, newRect)
	if err != nil {
		return err
	}
	switch res {
	case localDone:
		return nil
	case needTopDown:
		s.out.topDown.Add(1)
		oldRect := geom.RectFromPoint(old)
		if leaf != nil {
			// The stored rectangle is the authoritative old location for
			// the top-down delete traversal.
			oldRect = leaf.Entries[li].Rect
		}
		return t.Update(oid, oldRect, newRect)
	}

	return s.reinsertFromRoot(oid, newRect, leaf, li)
}

// reinsertFromRoot is Algorithm 1's non-local ending: "Delete old index
// entry for the object from leaf node; write out leaf node. ... Issue a
// standard R-tree insert at the root."
func (s *lbuStrategy) reinsertFromRoot(oid rtree.OID, newRect geom.Rect, leaf *rtree.Node, li int) error {
	t := s.tree
	leaf.RemoveEntry(li)
	if err := t.WriteNode(leaf); err != nil {
		return err
	}
	s.out.topDown.Add(1)
	if err := t.Insert(oid, newRect); err != nil {
		return err
	}
	t.AdjustSize(-1) // the object was already counted; Insert re-counted it
	return nil
}

// attemptLocal performs the local portion of Algorithm 1: in-place
// update, uniform ε-enlargement, and a sibling shift. It mutates the
// tree only when it fully resolves the update (localDone); needAscend
// here means "delete bottom-up and re-insert from the root".
func (s *lbuStrategy) attemptLocal(oid rtree.OID, new geom.Point, newRect geom.Rect) (localOutcome, *rtree.Node, int, error) {
	t := s.tree

	// "Locate via the secondary object-ID index the leaf node with the
	// object."
	leafPage, err := s.hash.Lookup(oid)
	if err != nil {
		return needTopDown, nil, 0, fmt.Errorf("lbu: update %d: %w", oid, err)
	}
	leaf, err := t.ReadNode(leafPage)
	if err != nil {
		return needTopDown, nil, 0, err
	}
	li := leaf.FindOID(oid)
	if li < 0 {
		return needTopDown, nil, 0, fmt.Errorf("lbu: update %d: hash points to leaf %d but entry is missing", oid, leafPage)
	}
	res, err := s.attemptLocalAt(oid, new, newRect, leaf, li)
	return res, leaf, li, err
}

// attemptLocalAt is the tail of attemptLocal once the leaf holding the
// object is in hand (entry li of leaf). The batch pipeline enters here
// directly with the group's leaf, skipping the hash lookup.
func (s *lbuStrategy) attemptLocalAt(oid rtree.OID, new geom.Point, newRect geom.Rect, leaf *rtree.Node, li int) (localOutcome, error) {
	t := s.tree

	// "if newLocation lies within the leaf MBR: update in place."
	if leaf.Self.ContainsPoint(new) {
		leaf.Entries[li].Rect = newRect
		s.out.inLeaf.Add(1)
		return localDone, t.WriteNode(leaf)
	}

	// "Retrieve the parent of the leaf node. Let eMBR be the leaf MBR
	// enlarged by ε; if eMBR is contained in the parent MBR and
	// newLocation is within eMBR: enlarge."
	var parent *rtree.Node
	if leaf.Parent != pagestore.InvalidPage {
		var err error
		parent, err = t.ReadNode(leaf.Parent)
		if err != nil {
			return needTopDown, err
		}
		eMBR, ok := geom.ExpandWithin(leaf.Self, s.eps, parent.Self)
		if ok && eMBR.ContainsPoint(new) {
			leaf.Self = eMBR
			leaf.Entries[li].Rect = newRect
			if err := t.WriteNode(leaf); err != nil {
				return needTopDown, err
			}
			// Keep the parent's entry mirroring the enlarged leaf MBR so
			// queries keep finding the extension region. (The paper's
			// cost analysis charges only the parent read; the write is
			// required for correctness and is charged here.)
			pi := parent.FindChild(leaf.Page)
			if pi < 0 {
				return needTopDown, fmt.Errorf("lbu: parent %d missing child %d", parent.Page, leaf.Page)
			}
			parent.Entries[pi].Rect = eMBR
			s.out.extended.Add(1)
			return localDone, t.WriteNode(parent)
		}
	}

	// "if deletion of the object from the leaf node leads to underflow:
	// issue a top-down update."
	if len(leaf.Entries)-1 < t.MinEntries() {
		return needTopDown, nil
	}

	// "if newLocation is contained in the MBR of some sibling node which
	// is not full: insert there." Without the summary structure's bit
	// vector, LBU must read each candidate sibling to learn whether it is
	// full — the extra disk accesses the paper charges this scheme.
	if parent != nil {
		for i := range parent.Entries {
			sibPage := parent.Entries[i].Child
			if sibPage == leaf.Page || !parent.Entries[i].Rect.ContainsPoint(new) {
				continue
			}
			sib, err := t.ReadNode(sibPage)
			if err != nil {
				return needTopDown, err
			}
			if len(sib.Entries) >= t.MaxEntries() {
				continue // full; keep scanning
			}
			// Sibling first, then the source leaf: a concurrent reader
			// may transiently see the object twice but never zero times.
			sib.Entries = append(sib.Entries, rtree.Entry{Rect: newRect, OID: oid})
			if err := t.WriteNode(sib); err != nil {
				return needTopDown, err
			}
			leaf.RemoveEntry(li)
			if err := t.WriteNode(leaf); err != nil {
				return needTopDown, err
			}
			if err := s.hash.Set(oid, sibPage); err != nil {
				return needTopDown, err
			}
			s.out.shifted.Add(1)
			return localDone, nil
		}
	}
	return needAscend, nil
}

// LocalScope returns the page granules a local LBU update would touch:
// the object's leaf and its parent (read through the leaf's parent
// pointer).
func (s *lbuStrategy) LocalScope(oid rtree.OID) ([]rtree.PageID, error) {
	leafPage, err := s.hash.Lookup(oid)
	if err != nil {
		return nil, err
	}
	leaf, err := s.tree.ReadNode(leafPage)
	if err != nil {
		return nil, err
	}
	if leaf.Parent == pagestore.InvalidPage {
		return []rtree.PageID{leafPage}, nil
	}
	return []rtree.PageID{leafPage, leaf.Parent}, nil
}

// TryLocalUpdate attempts the local phase of Algorithm 1 only.
func (s *lbuStrategy) TryLocalUpdate(oid rtree.OID, old, new geom.Point) (bool, error) {
	res, _, _, err := s.attemptLocal(oid, new, geom.RectFromPoint(new))
	if err != nil {
		return false, err
	}
	if res != localDone {
		return false, nil
	}
	return true, s.adapter.Err()
}

// LeafOf resolves the leaf currently holding the object (GroupApplier).
func (s *lbuStrategy) LeafOf(oid rtree.OID) (rtree.PageID, error) {
	return s.hash.Lookup(oid)
}

// ApplyLeafGroup applies one leaf's share of a batch in a single
// bottom-up pass. The leaf is read once and every in-leaf move rewrites
// its entry in place. For the rest the parent is read once (through the
// leaf's parent pointer) and the uniform ε-enlargement is decided once
// for the whole group — LBU's enlargement does not depend on the
// movement direction, so a single Kwon-style eMBR covers every change
// the sequential path could have resolved by extension. The leaf and
// the parent's mirroring entry are written back once for the group.
//
//burlint:hotpath
func (s *lbuStrategy) ApplyLeafGroup(leafPage rtree.PageID, group []BatchChange) ([]BatchChange, error) {
	t := s.tree
	leaf, err := t.ReadNode(leafPage)
	if err != nil {
		if errors.Is(err, pagestore.ErrPageFreed) {
			return group, nil // leaf freed by an earlier change in the batch
		}
		return nil, err
	}
	if !leaf.IsLeaf() {
		return group, nil // page recycled as an internal node
	}

	var unresolved, outside []BatchChange
	dirty := false
	for _, c := range group {
		li := leaf.FindOID(c.OID)
		if li < 0 {
			unresolved = append(unresolved, c) // moved since grouping
			continue
		}
		if leaf.Self.ContainsPoint(c.New) {
			leaf.Entries[li].Rect = geom.RectFromPoint(c.New)
			s.out.inLeaf.Add(1)
			dirty = true
			continue
		}
		outside = append(outside, c)
	}

	// One uniform enlargement decision for the whole group.
	var parent *rtree.Node
	enlarged := false
	if len(outside) > 0 && leaf.Parent != pagestore.InvalidPage {
		parent, err = t.ReadNode(leaf.Parent)
		if err != nil {
			return nil, err
		}
		if eMBR, ok := geom.ExpandWithin(leaf.Self, s.eps, parent.Self); ok {
			rest := outside[:0]
			for _, c := range outside {
				if !eMBR.ContainsPoint(c.New) {
					rest = append(rest, c)
					continue
				}
				leaf.Entries[leaf.FindOID(c.OID)].Rect = geom.RectFromPoint(c.New)
				s.out.extended.Add(1)
				enlarged = true
				dirty = true
			}
			if enlarged {
				leaf.Self = eMBR
			}
			outside = rest
		}
	}

	if dirty {
		if err := t.WriteNode(leaf); err != nil {
			return nil, err
		}
	}
	if enlarged {
		pi := parent.FindChild(leaf.Page)
		if pi < 0 {
			return nil, fmt.Errorf("lbu: parent %d missing child %d", parent.Page, leaf.Page)
		}
		parent.Entries[pi].Rect = leaf.Self
		if err := t.WriteNode(parent); err != nil {
			return nil, err
		}
	}
	return append(unresolved, outside...), nil
}

// UpdateAtLeaf applies one change whose object lives in leaf, skipping
// the secondary-index lookup (GroupApplier). Directly after a group
// pass the leaf is still buffered, so the read costs no disk access.
func (s *lbuStrategy) UpdateAtLeaf(leafPage rtree.PageID, c BatchChange, localOnly bool) (bool, error) {
	t := s.tree
	newRect := geom.RectFromPoint(c.New)
	leaf, err := t.ReadNode(leafPage)
	if err != nil && !errors.Is(err, pagestore.ErrPageFreed) {
		return false, err
	}
	li := -1
	if err == nil && leaf.IsLeaf() {
		li = leaf.FindOID(c.OID)
	}
	if li < 0 {
		if localOnly {
			return false, nil // moved concurrently; the caller escalates
		}
		// The batch's own shifts, splits and top-down deletes can
		// relocate objects — or free or recycle the leaf page — between
		// grouping and application; re-resolve through the always-current
		// hash index.
		return true, s.Update(c.OID, c.Old, c.New)
	}
	res, err := s.attemptLocalAt(c.OID, c.New, newRect, leaf, li)
	if err != nil {
		return false, err
	}
	switch res {
	case localDone:
		return true, s.adapter.Err()
	case needTopDown:
		if localOnly {
			return false, nil
		}
		s.out.topDown.Add(1)
		if err := t.Update(c.OID, leaf.Entries[li].Rect, newRect); err != nil {
			return false, err
		}
		return true, s.adapter.Err()
	}
	if localOnly {
		return false, nil
	}
	if err := s.reinsertFromRoot(c.OID, newRect, leaf, li); err != nil {
		return false, err
	}
	return true, s.adapter.Err()
}

// HashBucket names the secondary-index bucket of an object without I/O
// (batch lookup clustering).
func (s *lbuStrategy) HashBucket(oid rtree.OID) int { return s.hash.Bucket(oid) }
