package core

// Batched bottom-up updates. A batch coalesces repeated moves of the
// same object to the final position, groups the surviving changes by
// target leaf through the secondary object-id hash index, and applies
// each leaf's group in one bottom-up pass: one leaf read, one MBR
// extension decision covering the whole group, one leaf write and one
// parent sync. Changes the group pass cannot resolve fall back to the
// configured strategy's per-object path — with the leaf already in the
// buffer, so the fallback never re-pays the direct-access I/O the
// sequential path charges every update.
//
// The pipeline generalizes the paper's bottom-up premise the way the
// LSM- and batch-dynamic lines of follow-up work do: when updates are
// frequent enough to arrive in groups, the summary-structure and leaf
// accesses can be amortized across the group instead of being repaid
// per update.

import (
	"fmt"
	"sort"

	"burtree/internal/geom"
	"burtree/internal/rtree"
)

// BatchChange is one object move inside a batch: the object's position
// before the batch and its final position. Batches are expressed after
// coalescing, so each OID appears at most once.
type BatchChange struct {
	OID rtree.OID
	Old geom.Point
	New geom.Point
}

// BatchStats reports how ApplyBatch resolved a batch.
type BatchStats struct {
	// Changes is the number of coalesced changes applied.
	Changes int
	// Groups is the number of leaf groups formed.
	Groups int
	// GroupResolved counts changes resolved by the shared per-leaf pass
	// (in-leaf rewrite or the group extension decision).
	GroupResolved int
	// LocalFallback counts changes handed to the strategy's per-object
	// path after the group pass declined them (shift, ascent, top-down).
	LocalFallback int
	// Sequential counts changes applied through the plain Update path:
	// the strategy has no batch support (TD) or the object had no
	// secondary-index entry.
	Sequential int
}

// Add accumulates o into s; the experiment harness sums the stats of
// every batch window of a run this way.
func (s *BatchStats) Add(o BatchStats) {
	s.Changes += o.Changes
	s.Groups += o.Groups
	s.GroupResolved += o.GroupResolved
	s.LocalFallback += o.LocalFallback
	s.Sequential += o.Sequential
}

// Coalesce collapses repeated moves of the same object into a single
// change to the last position, preserving first-occurrence order. The
// surviving change keeps the Old of the first occurrence, so it still
// describes the net move across the whole batch. It returns the number
// of superseded input changes alongside the compacted slice (a new
// slice; the input is not modified).
func Coalesce(changes []BatchChange) ([]BatchChange, int) {
	out := make([]BatchChange, 0, len(changes))
	at := make(map[rtree.OID]int, len(changes))
	dropped := 0
	for _, c := range changes {
		if j, ok := at[c.OID]; ok {
			out[j].New = c.New
			dropped++
			continue
		}
		at[c.OID] = len(out)
		out = append(out, c)
	}
	return out, dropped
}

// GroupApplier is the optional batch surface of the bottom-up
// strategies. LBU and GBU implement it; TD does not (a top-down update
// shares no state between objects, so there is nothing to amortize).
type GroupApplier interface {
	// LeafOf resolves the leaf currently holding the object through the
	// secondary hash index.
	LeafOf(oid rtree.OID) (rtree.PageID, error)
	// ApplyLeafGroup applies one leaf's group in a single bottom-up
	// pass — one leaf read, one extension decision for the whole group,
	// one leaf write, one parent sync — and returns the changes it could
	// not resolve group-wise. Unresolved changes are not modified.
	ApplyLeafGroup(leaf rtree.PageID, group []BatchChange) (unresolved []BatchChange, err error)
	// UpdateAtLeaf applies one change whose object lives in leaf using
	// the strategy's per-object path, skipping the secondary-index
	// lookup (the caller already resolved the leaf). With localOnly set
	// it attempts only outcomes confined to the leaf and its parent
	// (in-leaf, extension, sibling shift), reporting false with no tree
	// modification when the update needs an ascent or a top-down pass.
	UpdateAtLeaf(leaf rtree.PageID, c BatchChange, localOnly bool) (bool, error)
}

// leafGroup is one group of changes targeting the same leaf.
type leafGroup struct {
	leaf    rtree.PageID
	changes []BatchChange
}

// bucketHinter is implemented by strategies whose secondary index can
// name the hash bucket of an object without I/O.
type bucketHinter interface {
	HashBucket(oid rtree.OID) int
}

// OrderForGrouping returns the changes in the order the lookup phase
// should resolve them: clustered by secondary-index bucket when the
// strategy can hint it, so lookups landing on the same hash page run
// back to back and all but the first hit the buffer. The input is not
// modified; without a hint it is returned as is.
func OrderForGrouping(u Updater, changes []BatchChange) []BatchChange {
	bh, ok := u.(bucketHinter)
	if !ok || len(changes) < 2 {
		return changes
	}
	out := append([]BatchChange(nil), changes...)
	sort.SliceStable(out, func(i, j int) bool {
		return bh.HashBucket(out[i].OID) < bh.HashBucket(out[j].OID)
	})
	return out
}

// groupByLeaf partitions changes by their current leaf. Groups come
// back in reverse encounter order: the lookup phase read the hash and
// leaf pages of late groups most recently, so applying those first
// turns the trailing secondary-index writes of shifts and ascents into
// buffer hits instead of re-reads — measurably cheaper than either
// encounter or leaf-page order under the paper's 1%-of-database buffer.
// Changes whose leaf cannot be resolved are returned separately.
func groupByLeaf(ga GroupApplier, changes []BatchChange) (groups []leafGroup, loose []BatchChange) {
	at := make(map[rtree.PageID]int)
	for _, c := range changes {
		leaf, err := ga.LeafOf(c.OID)
		if err != nil {
			loose = append(loose, c)
			continue
		}
		j, ok := at[leaf]
		if !ok {
			j = len(groups)
			at[leaf] = j
			groups = append(groups, leafGroup{leaf: leaf})
		}
		groups[j].changes = append(groups[j].changes, c)
	}
	for i, j := 0, len(groups)-1; i < j; i, j = i+1, j-1 {
		groups[i], groups[j] = groups[j], groups[i]
	}
	return groups, loose
}

// containsOID reports whether changes holds an entry for oid. A linear
// scan: group slices are leaf-fanout-sized, and the scan keeps the
// per-group membership check allocation-free on the hot batch path
// (indexing into a map here cost one map allocation per leaf group).
func containsOID(changes []BatchChange, oid rtree.OID) bool {
	for _, c := range changes {
		if c.OID == oid {
			return true
		}
	}
	return false
}

// ApplyBatch applies an already-coalesced batch of changes through u.
// When the strategy supports group application, changes are grouped by
// target leaf and each group is applied in one bottom-up pass, falling
// back to the per-object path only for the changes the group pass
// declines; otherwise every change runs through the plain Update path.
//
// done, when non-nil, is invoked after each change is applied; on error
// the batch stops, so done has been called exactly for the applied
// prefix (a batch is not atomic).
//
//burlint:hotpath
func ApplyBatch(u Updater, changes []BatchChange, done func(BatchChange)) (BatchStats, error) {
	var st BatchStats
	applySequential := func(cs []BatchChange) error {
		for _, c := range cs {
			if err := u.Update(c.OID, c.Old, c.New); err != nil {
				return err
			}
			st.Changes++
			st.Sequential++
			if done != nil {
				done(c)
			}
		}
		return nil
	}

	ga, ok := u.(GroupApplier)
	if !ok {
		return st, applySequential(changes)
	}

	groups, loose := groupByLeaf(ga, OrderForGrouping(u, changes))
	for _, g := range groups {
		st.Groups++
		unresolved, err := ga.ApplyLeafGroup(g.leaf, g.changes)
		if err != nil {
			return st, err
		}
		for _, c := range g.changes {
			if containsOID(unresolved, c.OID) {
				continue
			}
			st.Changes++
			st.GroupResolved++
			if done != nil {
				done(c)
			}
		}
		for _, c := range unresolved {
			applied, err := ga.UpdateAtLeaf(g.leaf, c, false)
			if err != nil {
				return st, err
			}
			if !applied {
				return st, fmt.Errorf("core: batch update %d: per-object pass declined a full update", c.OID)
			}
			st.Changes++
			st.LocalFallback++
			if done != nil {
				done(c)
			}
		}
	}
	// Changes without a secondary-index entry take the plain path, which
	// surfaces the same error the sequential API would.
	return st, applySequential(loose)
}
