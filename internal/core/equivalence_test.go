package core

// Cross-strategy equivalence: the paper's strategies differ only in HOW
// the index is maintained, never in WHAT it answers. Replaying one
// workload trace against TD, LBU, GBU and Naive must give identical
// query results at every checkpoint.

import (
	"sort"
	"testing"

	"burtree/internal/geom"
	"burtree/internal/rtree"
	"burtree/internal/workload"
)

func TestStrategiesAnswerIdentically(t *testing.T) {
	trace := workload.BuildTrace(workload.Spec{
		NumObjects:  1500,
		MaxDistance: 0.05,
		Seed:        31,
	}, 6000, 120)

	kinds := []Options{
		{Strategy: TD, ExpectedObjects: 1500},
		{Strategy: LBU, ExpectedObjects: 1500},
		{Strategy: GBU, ExpectedObjects: 1500},
		{Strategy: Naive, ExpectedObjects: 1500},
	}
	// Results per strategy: query index -> sorted oids.
	results := make([][][]rtree.OID, len(kinds))
	for ki, opts := range kinds {
		u := newUpdater(t, 1024, 16, opts)
		for i, p := range trace.Initial {
			if err := u.Insert(rtree.OID(i), p); err != nil {
				t.Fatal(err)
			}
		}
		for i, up := range trace.Updates {
			if err := u.Update(up.OID, up.Old, up.New); err != nil {
				t.Fatalf("%s update %d: %v", u.Name(), i, err)
			}
		}
		validateAll(t, u)
		for _, q := range trace.Queries {
			var got []rtree.OID
			if err := u.Search(q, func(oid rtree.OID, _ geom.Rect) bool {
				got = append(got, oid)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			results[ki] = append(results[ki], got)
		}
	}
	for ki := 1; ki < len(kinds); ki++ {
		for qi := range trace.Queries {
			a, b := results[0][qi], results[ki][qi]
			if len(a) != len(b) {
				t.Fatalf("query %d: %v returned %d results, TD returned %d",
					qi, kinds[ki].Strategy, len(b), len(a))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("query %d result %d: %v says %d, TD says %d",
						qi, kinds[ki].Strategy, j, b[j], a[j])
				}
			}
		}
	}
}

func TestStrategiesAnswerIdenticallyFastMovers(t *testing.T) {
	// Same equivalence under a hostile workload: fast movement forcing
	// ascents, top-down fallbacks and root expansion beyond the unit
	// square.
	trace := workload.BuildTrace(workload.Spec{
		NumObjects:  800,
		MaxDistance: 0.4,
		Seed:        37,
	}, 3000, 80)

	var reference [][]rtree.OID
	for _, opts := range []Options{
		{Strategy: TD, ExpectedObjects: 800},
		{Strategy: GBU, ExpectedObjects: 800},
		{Strategy: GBU, ExpectedObjects: 800, LevelThreshold: LevelThresholdZero},
		{Strategy: GBU, ExpectedObjects: 800, NoPiggyback: true, NoSummaryQueries: true},
		{Strategy: LBU, ExpectedObjects: 800, Epsilon: 0.05},
	} {
		u := newUpdater(t, 512, 8, opts)
		for i, p := range trace.Initial {
			if err := u.Insert(rtree.OID(i), p); err != nil {
				t.Fatal(err)
			}
		}
		for i, up := range trace.Updates {
			if err := u.Update(up.OID, up.Old, up.New); err != nil {
				t.Fatalf("%s update %d: %v", u.Name(), i, err)
			}
		}
		validateAll(t, u)
		var all [][]rtree.OID
		for _, q := range trace.Queries {
			var got []rtree.OID
			if err := u.Search(q, func(oid rtree.OID, _ geom.Rect) bool {
				got = append(got, oid)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			all = append(all, got)
		}
		if reference == nil {
			reference = all
			continue
		}
		for qi := range all {
			if len(all[qi]) != len(reference[qi]) {
				t.Fatalf("query %d: %d vs reference %d results", qi, len(all[qi]), len(reference[qi]))
			}
			for j := range all[qi] {
				if all[qi][j] != reference[qi][j] {
					t.Fatalf("query %d result %d differs from reference", qi, j)
				}
			}
		}
	}
}
