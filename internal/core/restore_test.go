package core

import (
	"testing"

	"burtree/internal/buffer"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
)

// rebuildStore round-trips a store through Dump/NewFromDump.
func rebuildStore(t *testing.T, s *pagestore.Store) *pagestore.Store {
	t.Helper()
	ps, pages, freed := s.Dump()
	out, err := pagestore.NewFromDump(ps, pages, freed, &stats.IO{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCoreSaveRestoreEveryStrategy(t *testing.T) {
	for _, kind := range []Kind{TD, LBU, GBU, Naive} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			opts := Options{Strategy: kind, ExpectedObjects: 800}
			u := newUpdater(t, 512, 8, opts)
			w := newWorld(71)
			w.populate(t, u, 800)
			for i := 0; i < 1200; i++ {
				w.move(t, u, 0.04)
			}
			if err := u.Tree().Flush(); err != nil {
				t.Fatal(err)
			}
			st, err := SaveState(u)
			if err != nil {
				t.Fatal(err)
			}
			store2 := rebuildStore(t, u.Tree().Pool().Store())
			pool2 := buffer.New(store2, 8)
			u2, err := Restore(pool2, opts, st)
			if err != nil {
				t.Fatal(err)
			}
			validateAll(t, u2)
			if u2.Tree().Size() != 800 {
				t.Fatalf("restored size = %d", u2.Tree().Size())
			}
			// The restored strategy keeps working with full bottom-up
			// machinery: run more moves and compare searches with the
			// original.
			w2 := &world{rng: w.rng, pos: map[rtree.OID]geom.Point{}, ids: w.ids}
			for oid, p := range w.pos {
				w2.pos[oid] = p
			}
			for i := 0; i < 800; i++ {
				oid := w2.ids[w2.rng.Intn(len(w2.ids))]
				old := w2.pos[oid]
				np := geom.Point{X: old.X + 0.01, Y: old.Y - 0.01}
				if err := u2.Update(oid, old, np); err != nil {
					t.Fatalf("post-restore update: %v", err)
				}
				w2.pos[oid] = np
			}
			validateAll(t, u2)
			checkSearchMatches(t, u2, w2, 15)
		})
	}
}

func TestRestoreEmpty(t *testing.T) {
	opts := Options{Strategy: GBU, ExpectedObjects: 16}
	store := pagestore.New(512, &stats.IO{})
	pool := buffer.New(store, 0)
	u, err := Restore(pool, opts, RestoreState{HashDirectory: []rtree.PageID{pagestore.InvalidPage}})
	if err != nil {
		t.Fatal(err)
	}
	if u.Tree().Size() != 0 || u.Tree().Height() != 0 {
		t.Fatalf("empty restore: size=%d height=%d", u.Tree().Size(), u.Tree().Height())
	}
	if err := u.Insert(1, geom.Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	validateAll(t, u)
}

func TestRestoreRejectsBadMetadata(t *testing.T) {
	u := newUpdater(t, 512, 0, Options{Strategy: GBU, ExpectedObjects: 100})
	w := newWorld(72)
	w.populate(t, u, 100)
	if err := u.Tree().Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := SaveState(u)
	if err != nil {
		t.Fatal(err)
	}
	store2 := rebuildStore(t, u.Tree().Pool().Store())
	pool2 := buffer.New(store2, 0)

	bad := st
	bad.Height = st.Height + 2 // root level will not match
	if _, err := Restore(pool2, Options{Strategy: GBU, ExpectedObjects: 100}, bad); err == nil {
		t.Fatal("bad height accepted")
	}

	store3 := rebuildStore(t, u.Tree().Pool().Store())
	pool3 := buffer.New(store3, 0)
	bad2 := st
	bad2.Root = 999999 // out of range page
	if _, err := Restore(pool3, Options{Strategy: GBU, ExpectedObjects: 100}, bad2); err == nil {
		t.Fatal("bad root accepted")
	}
}
