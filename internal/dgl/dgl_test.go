package dgl

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, SIX, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, SIX, false}, {IX, X, false},
		{S, S, true}, {S, SIX, false}, {S, X, false},
		{SIX, SIX, false}, {SIX, X, false},
		{X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Compatible(c.b, c.a); got != c.want {
			t.Errorf("matrix not symmetric at (%v,%v)", c.a, c.b)
		}
	}
}

func TestCoversLattice(t *testing.T) {
	if !Covers(X, S) || !Covers(X, IX) || !Covers(SIX, S) || !Covers(SIX, IX) || !Covers(S, S) {
		t.Fatal("expected coverings missing")
	}
	if Covers(S, X) || Covers(IS, S) || Covers(IX, S) {
		t.Fatal("false coverings")
	}
}

func TestAcquireReleaseBasic(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	if err := m.Acquire(t1, 1, S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, 1, S, 0); err != nil {
		t.Fatal(err) // S-S compatible
	}
	if err := m.Acquire(t2, 1, X, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade to X with S holder present: err = %v, want timeout", err)
	}
	m.ReleaseAll(t1)
	if err := m.Acquire(t2, 1, X, time.Second); err != nil {
		t.Fatal(err)
	}
	if mode, ok := t2.Held(1); !ok || mode != X {
		t.Fatalf("t2 holds %v/%v, want X", mode, ok)
	}
	m.ReleaseAll(t2)
	if s := m.Stats(); s.Granules != 0 || s.Waiters != 0 {
		t.Fatalf("lock table not empty after releases: %+v", s)
	}
}

func TestExclusiveBlocksAndWakes(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	if err := m.Acquire(t1, 7, X, 0); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- m.Acquire(t2, 7, X, time.Second)
	}()
	select {
	case err := <-acquired:
		t.Fatalf("t2 acquired while t1 held X: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.Release(t1, 7)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("t2 never woke")
	}
	m.ReleaseAll(t2)
}

func TestReacquireStrongerIsUpgrade(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	if err := m.Acquire(t1, 3, IS, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, 3, IX, 0); err != nil {
		t.Fatal(err)
	}
	if mode, _ := t1.Held(3); mode != IX {
		t.Fatalf("mode after IS->IX = %v", mode)
	}
	// S + IX = SIX.
	if err := m.Acquire(t1, 3, S, 0); err != nil {
		t.Fatal(err)
	}
	if mode, _ := t1.Held(3); mode != SIX {
		t.Fatalf("mode after +S = %v, want SIX", mode)
	}
	// Weaker re-acquire is a no-op.
	if err := m.Acquire(t1, 3, IS, 0); err != nil {
		t.Fatal(err)
	}
	if mode, _ := t1.Held(3); mode != SIX {
		t.Fatalf("mode degraded to %v", mode)
	}
	m.ReleaseAll(t1)
}

func TestFIFOFairness(t *testing.T) {
	// A queued X request must not be starved by later S requests.
	m := NewManager()
	holder := m.Begin()
	if err := m.Acquire(holder, 9, S, 0); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	record := func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}
	writer := m.Begin()
	wDone := make(chan struct{})
	go func() {
		if err := m.Acquire(writer, 9, X, 5*time.Second); err != nil {
			t.Error(err)
		}
		record(1)
		m.ReleaseAll(writer)
		close(wDone)
	}()
	time.Sleep(20 * time.Millisecond) // writer is now queued
	reader := m.Begin()
	rDone := make(chan struct{})
	go func() {
		if err := m.Acquire(reader, 9, S, 5*time.Second); err != nil {
			t.Error(err)
		}
		record(2)
		m.ReleaseAll(reader)
		close(rDone)
	}()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(holder)
	<-wDone
	<-rDone
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("grant order = %v, want writer first", order)
	}
}

func TestUpgradeDeadlockTimesOut(t *testing.T) {
	// Two S holders both upgrading to X deadlock; timeouts must rescue.
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	if err := m.Acquire(t1, 4, S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, 4, S, 0); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(t1, 4, X, 100*time.Millisecond) }()
	go func() { errs <- m.Acquire(t2, 4, X, 100*time.Millisecond) }()
	timeouts := 0
	for i := 0; i < 2; i++ {
		if err := <-errs; errors.Is(err, ErrTimeout) {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Fatal("upgrade deadlock did not time out")
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t2)
}

func TestIntentionLocksAllowFineGrainedConcurrency(t *testing.T) {
	// Two updaters IX on the tree granule plus X on different leaf
	// granules run concurrently; a whole-tree S blocks both.
	m := NewManager()
	u1, u2, q := m.Begin(), m.Begin(), m.Begin()
	const tree = GranuleID(0)
	if err := m.Acquire(u1, tree, IX, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(u2, tree, IX, 0); err != nil {
		t.Fatal(err) // IX-IX compatible
	}
	if err := m.Acquire(u1, 100, X, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(u2, 101, X, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(q, tree, S, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("tree-S with IX holders: err = %v, want timeout", err)
	}
	m.ReleaseAll(u1)
	m.ReleaseAll(u2)
	if err := m.Acquire(q, tree, S, time.Second); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(q)
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const (
		workers  = 16
		granules = 8
		rounds   = 300
	)
	var active [granules]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				txn := m.Begin()
				g := GranuleID((w*31 + i*17) % granules)
				exclusive := (w+i)%3 == 0
				mode := S
				if exclusive {
					mode = X
				}
				if err := m.Acquire(txn, g, mode, 5*time.Second); err != nil {
					t.Error(err)
					return
				}
				if exclusive {
					if got := active[g].Add(1); got != 1 {
						t.Errorf("X held with %d others active on %d", got-1, g)
					}
					active[g].Add(-1)
				}
				m.ReleaseAll(txn)
			}
		}(w)
	}
	wg.Wait()
	if s := m.Stats(); s.Granules != 0 {
		t.Fatalf("lock table leaked: %+v", s)
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{IS: "IS", IX: "IX", S: "S", SIX: "SIX", X: "X"}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("Mode %d string = %q", int(m), m.String())
		}
	}
	if Mode(17).String() == "" {
		t.Fatal("unknown mode name empty")
	}
}
