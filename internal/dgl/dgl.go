// Package dgl implements a Dynamic-Granular-Locking style lock manager
// (after Chakrabarti & Mehrotra, cited by the paper for concurrency
// control in R-trees): multi-granularity locks with the standard
// IS/IX/S/SIX/X mode lattice, per-granule FIFO wait queues, lock
// upgrades, and timeouts for deadlock recovery.
//
// Granules are opaque 64-bit ids. The throughput experiment (paper §5.4)
// locks a tree-level granule in intention mode plus fine leaf-region
// granules, exactly the two-tier shape DGL prescribes (external granules
// + leaf granules). Bottom-up updates acquire their granules directly at
// the fine level, which is why they "fit naturally into DGL": top-down
// operations meet their locks on the way down.
package dgl

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a multi-granularity lock mode.
type Mode int

const (
	// IS is intention-shared.
	IS Mode = iota
	// IX is intention-exclusive.
	IX
	// S is shared.
	S
	// SIX is shared + intention-exclusive.
	SIX
	// X is exclusive.
	X
)

func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compat[a][b] reports whether a holder in mode a is compatible with a
// requester in mode b.
var compat = [5][5]bool{
	IS:  {IS: true, IX: true, S: true, SIX: true, X: false},
	IX:  {IS: true, IX: true, S: false, SIX: false, X: false},
	S:   {IS: true, IX: false, S: true, SIX: false, X: false},
	SIX: {IS: true, IX: false, S: false, SIX: false, X: false},
	X:   {IS: false, IX: false, S: false, SIX: false, X: false},
}

// Compatible reports whether the two modes may be held simultaneously by
// different transactions.
func Compatible(a, b Mode) bool { return compat[a][b] }

// sup[a][b] is the least mode covering both a and b (lock conversion).
var sup = [5][5]Mode{
	IS:  {IS: IS, IX: IX, S: S, SIX: SIX, X: X},
	IX:  {IS: IX, IX: IX, S: SIX, SIX: SIX, X: X},
	S:   {IS: S, IX: SIX, S: S, SIX: SIX, X: X},
	SIX: {IS: SIX, IX: SIX, S: SIX, SIX: SIX, X: X},
	X:   {IS: X, IX: X, S: X, SIX: X, X: X},
}

// Covers reports whether holding a implies the rights of b.
func Covers(a, b Mode) bool { return sup[a][b] == a }

// GranuleID identifies a lockable granule. The meaning of ids is up to
// the caller (tree granule, grid cells, leaf pages, ...).
type GranuleID uint64

// ErrTimeout reports that a lock request waited past its deadline; the
// caller should release everything and retry (deadlock recovery).
var ErrTimeout = errors.New("dgl: lock wait timed out")

// Txn is one lock owner.
type Txn struct {
	id   uint64
	mu   sync.Mutex
	held map[GranuleID]Mode
}

// Manager is the lock table.
type Manager struct {
	mu       sync.Mutex
	granules map[GranuleID]*granule
	nextTxn  uint64
}

type waiter struct {
	txn     *Txn
	mode    Mode
	upgrade bool
	ready   chan struct{}
	granted bool
}

type granule struct {
	holders map[*Txn]Mode
	queue   []*waiter
}

// NewManager creates an empty lock table.
func NewManager() *Manager {
	return &Manager{granules: make(map[GranuleID]*granule)}
}

// Begin starts a new lock owner.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	m.nextTxn++
	id := m.nextTxn
	m.mu.Unlock()
	return &Txn{id: id, held: make(map[GranuleID]Mode)}
}

// Held returns the mode txn holds on g (and whether it holds anything).
func (t *Txn) Held(g GranuleID) (Mode, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.held[g]
	return m, ok
}

// HeldCount returns the number of granules the transaction holds.
func (t *Txn) HeldCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held)
}

// Acquire obtains (or upgrades to) the given mode on granule g, waiting
// up to timeout (0 means wait forever). On ErrTimeout the request is
// withdrawn; locks already held are untouched.
func (m *Manager) Acquire(txn *Txn, g GranuleID, mode Mode, timeout time.Duration) error {
	txn.mu.Lock()
	cur, holds := txn.held[g]
	txn.mu.Unlock()
	target := mode
	upgrade := false
	if holds {
		if Covers(cur, mode) {
			return nil // already strong enough
		}
		target = sup[cur][mode]
		upgrade = true
	}

	m.mu.Lock()
	gr := m.granules[g]
	if gr == nil {
		gr = &granule{holders: make(map[*Txn]Mode)}
		m.granules[g] = gr
	}
	if m.grantableLocked(gr, txn, target, upgrade) {
		gr.holders[txn] = target
		m.mu.Unlock()
		txn.mu.Lock()
		txn.held[g] = target
		txn.mu.Unlock()
		return nil
	}
	w := &waiter{txn: txn, mode: target, upgrade: upgrade, ready: make(chan struct{})}
	if upgrade {
		// Conversions queue ahead of fresh requests to bound starvation.
		gr.queue = append([]*waiter{w}, gr.queue...)
	} else {
		gr.queue = append(gr.queue, w)
	}
	m.mu.Unlock()

	var timer *time.Timer
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case <-w.ready:
		txn.mu.Lock()
		txn.held[g] = target
		txn.mu.Unlock()
		return nil
	case <-timeoutC:
		m.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed before the withdrawal.
			m.mu.Unlock()
			<-w.ready
			txn.mu.Lock()
			txn.held[g] = target
			txn.mu.Unlock()
			return nil
		}
		for i, q := range gr.queue {
			if q == w {
				gr.queue = append(gr.queue[:i], gr.queue[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		return fmt.Errorf("%w: granule %d mode %v", ErrTimeout, g, target)
	}
}

// grantableLocked reports whether txn may take mode on gr right now.
// Fresh requests respect FIFO: they are granted only when no other
// request is queued. Upgrades only check the other current holders.
func (m *Manager) grantableLocked(gr *granule, txn *Txn, mode Mode, upgrade bool) bool {
	if !upgrade && len(gr.queue) > 0 {
		return false
	}
	for holder, hm := range gr.holders {
		if holder == txn {
			continue
		}
		if !Compatible(hm, mode) {
			return false
		}
	}
	return true
}

// Release drops txn's lock on g and wakes compatible waiters.
func (m *Manager) Release(txn *Txn, g GranuleID) {
	txn.mu.Lock()
	_, ok := txn.held[g]
	if ok {
		delete(txn.held, g)
	}
	txn.mu.Unlock()
	if !ok {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	gr := m.granules[g]
	if gr == nil {
		return
	}
	delete(gr.holders, txn)
	m.wakeLocked(g, gr)
}

// ReleaseAll drops every lock txn holds.
func (m *Manager) ReleaseAll(txn *Txn) {
	txn.mu.Lock()
	ids := make([]GranuleID, 0, len(txn.held))
	for g := range txn.held {
		ids = append(ids, g)
	}
	txn.held = make(map[GranuleID]Mode)
	txn.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range ids {
		gr := m.granules[g]
		if gr == nil {
			continue
		}
		delete(gr.holders, txn)
		m.wakeLocked(g, gr)
	}
}

// wakeLocked grants the longest compatible prefix of the wait queue.
func (m *Manager) wakeLocked(g GranuleID, gr *granule) {
	for len(gr.queue) > 0 {
		w := gr.queue[0]
		if !m.grantableNowLocked(gr, w) {
			break
		}
		gr.queue = gr.queue[1:]
		gr.holders[w.txn] = w.mode
		w.granted = true
		close(w.ready)
	}
	if len(gr.holders) == 0 && len(gr.queue) == 0 {
		delete(m.granules, g)
	}
}

func (m *Manager) grantableNowLocked(gr *granule, w *waiter) bool {
	for holder, hm := range gr.holders {
		if holder == w.txn {
			continue
		}
		if !Compatible(hm, w.mode) {
			return false
		}
	}
	return true
}

// Stats reports the current lock table occupancy.
type Stats struct {
	Granules int
	Waiters  int
}

// Stats returns a snapshot of table occupancy.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Granules: len(m.granules)}
	for _, gr := range m.granules {
		s.Waiters += len(gr.queue)
	}
	return s
}
