// Package pagestore simulates the disk that the paper's experiments
// measure: a flat array of fixed-size pages (1024 bytes in the paper)
// with an access counter for physical reads and writes.
//
// The store is deliberately simple — the evaluation metric of the paper is
// the number of page accesses, not device behaviour — but it enforces the
// discipline a real disk would: whole-page transfers only, pages must be
// allocated before use, and an optional per-access latency can be charged
// to make throughput runs (paper §5.4) I/O-bound rather than CPU-bound.
package pagestore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"burtree/internal/stats"
)

// PageID identifies one page. Page 0 is reserved as the invalid/nil page
// so that zero-valued references never alias real data.
type PageID uint64

// InvalidPage is the reserved nil page id.
const InvalidPage PageID = 0

// DefaultPageSize is the page size used throughout the paper's
// experiments.
const DefaultPageSize = 1024

// MinPageSize is the smallest supported page; anything smaller cannot hold
// a node header plus two entries.
const MinPageSize = 128

var (
	// ErrPageBounds reports an access to an unallocated page.
	ErrPageBounds = errors.New("pagestore: page id out of bounds")
	// ErrPageFreed reports an access to a freed page.
	ErrPageFreed = errors.New("pagestore: page is freed")
	// ErrPageSize reports a buffer whose length does not match the page size.
	ErrPageSize = errors.New("pagestore: buffer length != page size")
)

// Store is an in-memory simulated disk. It is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	freed    map[PageID]bool
	freeList []PageID
	io       *stats.IO
	latency  time.Duration
}

// New creates a store with the given page size, recording physical
// accesses into io. A nil io allocates a private counter set.
func New(pageSize int, io *stats.IO) *Store {
	if pageSize < MinPageSize {
		panic(fmt.Sprintf("pagestore: page size %d below minimum %d", pageSize, MinPageSize))
	}
	if io == nil {
		io = &stats.IO{}
	}
	return &Store{
		pageSize: pageSize,
		pages:    make([][]byte, 1), // index 0 reserved for InvalidPage
		freed:    make(map[PageID]bool),
		io:       io,
	}
}

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// IO returns the counter set physical accesses are charged to.
func (s *Store) IO() *stats.IO { return s.io }

// SetLatency sets a simulated per-access latency; zero disables it.
// The delay is applied outside the store lock so concurrent accesses
// overlap, as they would on a disk array.
func (s *Store) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// Alloc returns a zeroed page. Freed pages are recycled before the store
// grows.
func (s *Store) Alloc() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.freeList); n > 0 {
		id := s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		delete(s.freed, id)
		clearPage(s.pages[id])
		return id
	}
	s.pages = append(s.pages, make([]byte, s.pageSize))
	return PageID(len(s.pages) - 1)
}

// Free returns a page to the allocator. Accessing a freed page is an
// error until it is re-allocated.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(id); err != nil {
		return err
	}
	s.freed[id] = true
	s.freeList = append(s.freeList, id)
	return nil
}

// ReadInto copies page id into dst (which must be exactly one page long)
// and charges one physical read.
func (s *Store) ReadInto(id PageID, dst []byte) error {
	if len(dst) != s.pageSize {
		return ErrPageSize
	}
	s.mu.RLock()
	if err := s.checkLocked(id); err != nil {
		s.mu.RUnlock()
		return err
	}
	copy(dst, s.pages[id])
	lat := s.latency
	s.mu.RUnlock()
	s.io.CountRead()
	simulate(lat)
	return nil
}

// Write copies src (exactly one page) into page id and charges one
// physical write.
func (s *Store) Write(id PageID, src []byte) error {
	if len(src) != s.pageSize {
		return ErrPageSize
	}
	s.mu.Lock()
	if err := s.checkLocked(id); err != nil {
		s.mu.Unlock()
		return err
	}
	copy(s.pages[id], src)
	lat := s.latency
	s.mu.Unlock()
	s.io.CountWrite()
	simulate(lat)
	return nil
}

// NumPages returns the number of live (allocated, not freed) pages —
// the paper's "database size" used to dimension the buffer pool.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages) - 1 - len(s.freeList)
}

// NumAllocated returns the high-water number of pages ever allocated.
func (s *Store) NumAllocated() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages) - 1
}

func (s *Store) checkLocked(id PageID) error {
	if id == InvalidPage || int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if s.freed[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

func clearPage(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// Dump returns a deep copy of the store contents for persistence: every
// allocated page in id order (index 0 = page id 1) plus the free list.
func (s *Store) Dump() (pageSize int, pages [][]byte, freed []PageID) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pages = make([][]byte, len(s.pages)-1)
	for i := 1; i < len(s.pages); i++ {
		pages[i-1] = append([]byte(nil), s.pages[i]...)
	}
	freed = append([]PageID(nil), s.freeList...)
	return s.pageSize, pages, freed
}

// NewFromDump reconstructs a store from Dump output.
func NewFromDump(pageSize int, pages [][]byte, freed []PageID, io *stats.IO) (*Store, error) {
	s := New(pageSize, io)
	s.pages = make([][]byte, len(pages)+1)
	for i, p := range pages {
		if len(p) != pageSize {
			return nil, fmt.Errorf("pagestore: dump page %d has %d bytes, want %d", i+1, len(p), pageSize)
		}
		s.pages[i+1] = append([]byte(nil), p...)
	}
	for _, id := range freed {
		if id == InvalidPage || int(id) >= len(s.pages) {
			return nil, fmt.Errorf("%w: freed id %d", ErrPageBounds, id)
		}
		s.freed[id] = true
		s.freeList = append(s.freeList, id)
	}
	return s, nil
}

// simulate models the page service time. Latencies of 20µs and above
// use the OS timer (they sleep, so many goroutines can overlap their
// "disk" waits, as on a disk array); shorter latencies busy-wait because
// timer granularity would distort them.
func simulate(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 20*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
