package pagestore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"burtree/internal/stats"
)

func TestAllocReadWrite(t *testing.T) {
	io := &stats.IO{}
	s := New(256, io)
	id := s.Alloc()
	if id == InvalidPage {
		t.Fatal("Alloc returned InvalidPage")
	}
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	if err := s.Write(id, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 256)
	if err := s.ReadInto(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("read data differs from written data")
	}
	if io.Reads() != 1 || io.Writes() != 1 {
		t.Fatalf("io counters = %d reads, %d writes; want 1,1", io.Reads(), io.Writes())
	}
}

func TestAllocZeroed(t *testing.T) {
	s := New(128, nil)
	id := s.Alloc()
	buf := make([]byte, 128)
	if err := s.ReadInto(id, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %d, want 0", i, b)
		}
	}
}

func TestFreeAndRecycle(t *testing.T) {
	s := New(128, nil)
	a := s.Alloc()
	dirty := make([]byte, 128)
	dirty[5] = 42
	if err := s.Write(a, dirty); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	// Access to freed page fails.
	buf := make([]byte, 128)
	if err := s.ReadInto(a, buf); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("read freed page: err = %v, want ErrPageFreed", err)
	}
	if err := s.Write(a, buf); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("write freed page: err = %v, want ErrPageFreed", err)
	}
	// Double free fails.
	if err := s.Free(a); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("double free: err = %v, want ErrPageFreed", err)
	}
	// Recycled page is the same id, zeroed again.
	b := s.Alloc()
	if b != a {
		t.Fatalf("recycled id = %d, want %d", b, a)
	}
	if err := s.ReadInto(b, buf); err != nil {
		t.Fatal(err)
	}
	if buf[5] != 0 {
		t.Fatal("recycled page not zeroed")
	}
}

func TestBoundsChecks(t *testing.T) {
	s := New(128, nil)
	buf := make([]byte, 128)
	if err := s.ReadInto(InvalidPage, buf); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("invalid page read err = %v", err)
	}
	if err := s.ReadInto(PageID(99), buf); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("out of range read err = %v", err)
	}
	if err := s.Write(PageID(99), buf); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("out of range write err = %v", err)
	}
	if err := s.Free(PageID(99)); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("out of range free err = %v", err)
	}
}

func TestBufferSizeMismatch(t *testing.T) {
	s := New(128, nil)
	id := s.Alloc()
	if err := s.ReadInto(id, make([]byte, 64)); !errors.Is(err, ErrPageSize) {
		t.Fatalf("short read buffer err = %v", err)
	}
	if err := s.Write(id, make([]byte, 256)); !errors.Is(err, ErrPageSize) {
		t.Fatalf("long write buffer err = %v", err)
	}
}

func TestNumPages(t *testing.T) {
	s := New(128, nil)
	if s.NumPages() != 0 {
		t.Fatalf("empty store NumPages = %d", s.NumPages())
	}
	ids := make([]PageID, 5)
	for i := range ids {
		ids[i] = s.Alloc()
	}
	if s.NumPages() != 5 || s.NumAllocated() != 5 {
		t.Fatalf("NumPages = %d, NumAllocated = %d; want 5,5", s.NumPages(), s.NumAllocated())
	}
	if err := s.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() != 4 {
		t.Fatalf("after free NumPages = %d, want 4", s.NumPages())
	}
	if s.NumAllocated() != 5 {
		t.Fatalf("after free NumAllocated = %d, want 5", s.NumAllocated())
	}
}

func TestTinyPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with tiny page size did not panic")
		}
	}()
	New(16, nil)
}

func TestConcurrentAccess(t *testing.T) {
	s := New(128, nil)
	const pages = 32
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = s.Alloc()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 128)
			for i := 0; i < 200; i++ {
				id := ids[(w*31+i)%pages]
				buf[0] = byte(w)
				if err := s.Write(id, buf); err != nil {
					t.Error(err)
					return
				}
				if err := s.ReadInto(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.IO().Total(); got != 8*200*2 {
		t.Fatalf("total io = %d, want %d", got, 8*200*2)
	}
}

func TestQuickWriteReadRoundTrip(t *testing.T) {
	s := New(MinPageSize, nil)
	id := s.Alloc()
	f := func(data []byte) bool {
		page := make([]byte, MinPageSize)
		copy(page, data)
		if err := s.Write(id, page); err != nil {
			return false
		}
		got := make([]byte, MinPageSize)
		if err := s.ReadInto(id, got); err != nil {
			return false
		}
		return bytes.Equal(page, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
