package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func appendN(t *testing.T, l *Log, n int, base uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := base + uint64(i)
		if _, err := l.Append(TypeBatch, []Op{{ID: id, X: float64(i), Y: float64(i) + 0.5}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeInsert, []Op{{ID: 7, X: 0.25, Y: 0.75}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeBatch, []Op{{ID: 7, X: 0.5, Y: 0.5}, {ID: 9, X: 0.1, Y: 0.9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeDelete, []Op{{ID: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st, err := ReadDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Damaged {
		t.Fatal("clean log reported damaged")
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Type != TypeInsert || recs[0].Ops[0].ID != 7 || recs[0].Ops[0].X != 0.25 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Type != TypeBatch || len(recs[1].Ops) != 2 || recs[1].Ops[1].Y != 0.9 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Type != TypeDelete || recs[2].Ops[0].ID != 9 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}

	// The afterSeq filter skips the covered prefix.
	recs, _, err = ReadDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("afterSeq=2: got %+v", recs)
	}
}

func TestTornTailTruncatedOnReadAndOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record in half.
	if err := os.WriteFile(segs[0].path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, st, err := ReadDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Damaged || len(recs) != 4 {
		t.Fatalf("torn tail: %d records, damaged=%v", len(recs), st.Damaged)
	}

	// Re-opening truncates the torn bytes and appends cleanly after them.
	l2, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastSeq(); got != 4 {
		t.Fatalf("LastSeq after torn open = %d, want 4", got)
	}
	appendN(t, l2, 1, 200)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st, err = ReadDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Damaged || len(recs) != 5 {
		t.Fatalf("after repair: %d records, damaged=%v", len(recs), st.Damaged)
	}
	if recs[4].Seq != 5 || recs[4].Ops[0].ID != 200 {
		t.Fatalf("appended record = %+v", recs[4])
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 6, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file (inside record ~3).
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, st, err := ReadDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Damaged {
		t.Fatal("corrupt middle not reported damaged")
	}
	if len(recs) >= 6 {
		t.Fatalf("replayed %d records across corruption", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: non-prefix replay", i, r.Seq)
		}
	}
}

func TestRotationAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEach, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 40, 0)
	segs, _ := segments(dir)
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	recs, _, err := ReadDir(dir, 0)
	if err != nil || len(recs) != 40 {
		t.Fatalf("read across segments: %d records, %v", len(recs), err)
	}

	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	recs, st, err := ReadDir(dir, 30)
	if err != nil || st.Damaged {
		t.Fatalf("read after truncate: %v damaged=%v", err, st.Damaged)
	}
	if len(recs) != 10 || recs[0].Seq != 31 {
		t.Fatalf("after truncate: %d records, first seq %v", len(recs), recs[0].Seq)
	}
	// Appends continue with increasing sequences.
	appendN(t, l, 3, 500)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = ReadDir(dir, 30)
	if err != nil || len(recs) != 13 {
		t.Fatalf("append after truncate: %d records, %v", len(recs), err)
	}
	if recs[12].Seq != 43 {
		t.Fatalf("last seq = %d, want 43", recs[12].Seq)
	}
}

func TestStartAfterFloorsSequences(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEach, StartAfter: 77})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(TypeInsert, []Op{{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 78 {
		t.Fatalf("first seq = %d, want 78", seq)
	}
	l.Close()
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncGroup, GroupWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	var fail atomic.Value
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				if _, err := l.Append(TypeBatch, []Op{{ID: id, X: 1, Y: 2}}); err != nil {
					fail.Store(fmt.Errorf("append: %w", err))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if v := fail.Load(); v != nil {
		t.Fatal(v)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st, err := ReadDir(dir, 0)
	if err != nil || st.Damaged {
		t.Fatalf("read: %v damaged=%v", err, st.Damaged)
	}
	if len(recs) != goroutines*per {
		t.Fatalf("got %d records, want %d", len(recs), goroutines*per)
	}
	seen := make(map[uint64]bool)
	last := uint64(0)
	for _, r := range recs {
		if r.Seq <= last {
			t.Fatalf("sequence regression at %d", r.Seq)
		}
		last = r.Seq
		if seen[r.Ops[0].ID] {
			t.Fatalf("duplicate op id %d", r.Ops[0].ID)
		}
		seen[r.Ops[0].ID] = true
	}
}

func TestExternalNextSeqMergesAcrossLogs(t *testing.T) {
	var ctr atomic.Uint64
	next := func() uint64 { return ctr.Add(1) }
	dirA, dirB := t.TempDir(), t.TempDir()
	la, err := Open(dirA, Options{Sync: SyncEach, NextSeq: next})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Open(dirB, Options{Sync: SyncEach, NextSeq: next})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		target := la
		if i%3 == 0 {
			target = lb
		}
		if _, err := target.Append(TypeBatch, []Op{{ID: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	la.Close()
	lb.Close()
	ra, _, err := ReadDir(dirA, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := ReadDir(dirB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra)+len(rb) != 10 {
		t.Fatalf("records split %d+%d, want 10", len(ra), len(rb))
	}
	// Merged by sequence, the two streams interleave without collision.
	seen := make(map[uint64]bool)
	for _, r := range append(ra, rb...) {
		if seen[r.Seq] {
			t.Fatalf("sequence %d appears in both logs", r.Seq)
		}
		seen[r.Seq] = true
	}
	for s := uint64(1); s <= 10; s++ {
		if !seen[s] {
			t.Fatalf("sequence %d missing", s)
		}
	}
}

func TestOpenEmptyDirAndHeaderOnlySegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Header-only segment: reopen and append.
	l2, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 1, 0)
	l2.Close()
	recs, _, err := ReadDir(dir, 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("got %d records, %v", len(recs), err)
	}

	// A zero-byte segment (crash during creation) is dropped on open.
	empty := filepath.Join(dir, "wal-00000099.seg")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l3, 1, 5)
	l3.Close()
	recs, st, err := ReadDir(dir, 0)
	if err != nil || st.Damaged {
		t.Fatalf("read: %v damaged=%v", err, st.Damaged)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

func TestReadDirMissingDir(t *testing.T) {
	recs, st, err := ReadDir(filepath.Join(t.TempDir(), "nope"), 0)
	if err != nil || len(recs) != 0 || st.Damaged {
		t.Fatalf("missing dir: %v %v %v", recs, st, err)
	}
}

func TestEncodeDecodeRecordFraming(t *testing.T) {
	ops := []Op{{ID: 42, X: -1.5, Y: 3.25}, {ID: 0, X: 0, Y: 0}}
	buf := encodeRecord(nil, 9, TypeBatch, ops)
	rec, next, ok := decodeRecord(buf, 0)
	if !ok || next != int64(len(buf)) {
		t.Fatalf("decode failed: ok=%v next=%d len=%d", ok, next, len(buf))
	}
	if rec.Seq != 9 || rec.Type != TypeBatch || len(rec.Ops) != 2 {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Ops[0] != ops[0] || rec.Ops[1] != ops[1] {
		t.Fatalf("ops = %+v", rec.Ops)
	}
	// Every single-byte corruption is caught.
	for i := range buf {
		c := bytes.Clone(buf)
		c[i] ^= 0x01
		if rec2, _, ok := decodeRecord(c, 0); ok {
			// A corrupted length that still frames a valid record is
			// impossible: the checksum covers seq, type, count and ops.
			t.Fatalf("corruption at byte %d decoded as %+v", i, rec2)
		}
	}
}

// AppendAsync under group commit must return without waiting for the
// device sync, while the background leader still advances the durable
// horizon over everything appended.
func TestAppendAsyncGroupDoesNotBlock(t *testing.T) {
	dir := t.TempDir()
	const devSync = 50 * time.Millisecond
	l, err := Open(dir, Options{Sync: SyncGroup, SyncDelay: devSync})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := l.AppendAsync(TypeBatch, []Op{{ID: uint64(i), X: 1, Y: 2}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// 20 synchronous appends would cost >= 20 device syncs (1s); async
	// acks must not stack them. A generous bound still proves the point.
	if elapsed > 5*devSync {
		t.Fatalf("%d async appends took %v (device sync %v): acks are waiting for syncs", n, elapsed, devSync)
	}
	// The background leader must cover every appended byte without any
	// caller blocking on it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		l.mu.Lock()
		appended := l.appended
		l.mu.Unlock()
		l.gc.mu.Lock()
		synced := l.gc.syncedTo
		l.gc.mu.Unlock()
		if synced >= appended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durable horizon stuck at %d of %d appended bytes", synced, appended)
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st, err := ReadDir(dir, 0)
	if err != nil || st.Damaged {
		t.Fatalf("read: %v damaged=%v", err, st.Damaged)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
}

// Under SyncEach, AppendAsync keeps the per-record durability contract:
// the record is synced before the call returns, identical to Append.
func TestAppendAsyncSyncEachIsSynchronous(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEach})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.AppendAsync(TypeBatch, []Op{{ID: uint64(i), X: 1, Y: 2}}); err != nil {
			t.Fatal(err)
		}
		l.mu.Lock()
		appended := l.appended
		l.mu.Unlock()
		l.gc.mu.Lock()
		synced := l.gc.syncedTo
		l.gc.mu.Unlock()
		if synced < appended {
			t.Fatalf("after append %d: synced %d < appended %d", i, synced, appended)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// Synchronous waiters must not be starved by a stream of asynchronous
// appends: Append called concurrently with AppendAsync traffic returns
// once its own record is covered.
func TestAppendAsyncMixedWithSyncWaiters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncGroup, GroupWindow: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var asyncErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.AppendAsync(TypeBatch, []Op{{ID: uint64(1000 + i), X: 1, Y: 2}}); err != nil {
				asyncErr.Store(err)
				return
			}
		}
	}()
	for i := 0; i < 25; i++ {
		if _, err := l.Append(TypeBatch, []Op{{ID: uint64(i), X: 3, Y: 4}}); err != nil {
			t.Fatalf("sync append %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if v := asyncErr.Load(); v != nil {
		t.Fatal(v)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, st, err := ReadDir(dir, 0); err != nil || st.Damaged {
		t.Fatalf("read: %v damaged=%v", err, st.Damaged)
	}
}
