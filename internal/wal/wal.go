// Package wal implements the write-ahead log behind the index's
// durability modes: a segmented, checksummed, redo-only log of applied
// changes. Unlike the page store — which simulates a disk to reproduce
// the paper's I/O counts — the log writes real files: together with an
// atomically written snapshot it is the crash-consistency story of the
// index, the way the LSM-based R-tree follow-up work gets durability
// for update-intensive spatial data (log small deltas, never rewrite
// structure on the commit path).
//
// A record is one applied operation (an insert, a delete, or a batch of
// coalesced moves) framed as
//
//	[length u32][crc32c u32][seq u64][type u8][count u32][count × (id u64, x f64, y f64)]
//
// with the checksum covering everything after the crc field. Records
// carry absolute positions, so replay is order-sensitive but
// state-idempotent: re-applying a move lands the object where it
// already is.
//
// Commit policies:
//
//   - SyncEach fsyncs every append before returning — one device sync
//     per batch, the durable baseline.
//   - SyncGroup implements group commit: an appender publishes its
//     record and waits; one committer becomes the sync leader, waits
//     GroupWindow for followers to pile on, then issues a single fsync
//     covering every record appended so far. Concurrent committers
//     piggyback on one device sync, which is what keeps the durable
//     write path O(1) amortized per update.
//
// The reader replays the longest valid prefix: a torn or corrupt record
// ends the log (crash semantics — everything before it is intact,
// everything after was never acknowledged under the sync policy).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Type discriminates log records.
type Type uint8

const (
	// TypeInsert is a single object insertion (one op).
	TypeInsert Type = 1
	// TypeDelete is a single object deletion (one op; position unused).
	TypeDelete Type = 2
	// TypeBatch is a batch of coalesced moves (one op per object, each
	// carrying the object's final position).
	TypeBatch Type = 3
)

// Op is one object in a record: an id plus a position.
type Op struct {
	ID   uint64
	X, Y float64
}

// Record is one decoded log record.
type Record struct {
	Seq  uint64
	Type Type
	Ops  []Op
}

// SyncPolicy selects when Append is durable.
type SyncPolicy int

const (
	// SyncEach fsyncs every record before Append returns.
	SyncEach SyncPolicy = iota
	// SyncGroup batches concurrent commits onto one fsync (group
	// commit); Append returns once a sync covering its record completed.
	SyncGroup
)

// Options configures a Log.
type Options struct {
	// Sync is the commit policy.
	Sync SyncPolicy
	// GroupWindow is how long a group-commit sync leader waits for
	// followers to accumulate before issuing the fsync. Zero still
	// piggybacks naturally: committers that append while a sync is in
	// flight are covered by the next one.
	GroupWindow time.Duration
	// SegmentBytes caps a segment file; the log rotates past it
	// (default 16 MiB).
	SegmentBytes int64
	// SyncDelay simulates a device sync latency on top of the real
	// fsync, so group-commit experiments measure the policy rather than
	// the test machine's page cache. Zero (the default) for real use.
	SyncDelay time.Duration
	// NextSeq, when set, assigns record sequence numbers from an
	// external source (the sharded index shares one atomic counter
	// across its per-shard logs so their streams merge into one total
	// order). It is called with the log's append latch held and must
	// return globally increasing values. Nil uses an internal counter.
	NextSeq func() uint64
	// StartAfter floors the internal sequence counter: new records get
	// sequences strictly greater than both it and anything found in the
	// directory. Recovery passes the snapshot's sequence so a truncated
	// log never re-issues sequences the snapshot already covers.
	StartAfter uint64
}

const (
	defaultSegmentBytes = 16 << 20
	segPrefix           = "wal-"
	segSuffix           = ".seg"
	headerSize          = 8
	recHeaderSize       = 8       // length + crc
	maxRecordBody       = 1 << 26 // sanity bound on the length field
)

var segMagic = [headerSize]byte{'B', 'U', 'R', 'W', 'A', 'L', '0', '1'}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log is closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only segmented log. It is safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // append latch: file, buffer, sequence
	f        *os.File
	buf      []byte // encode scratch
	segIdx   int    // index of the active segment
	segSize  int64  // bytes written to the active segment
	appended int64  // logical bytes appended across all segments
	lastSeq  uint64
	closed   bool

	gc groupCommit
}

// groupCommit tracks how far the log is durably synced, in logical
// bytes. Committers wait until syncedTo covers their record; one of
// them leads each sync round.
type groupCommit struct {
	mu       sync.Mutex
	cond     *sync.Cond
	syncedTo int64
	syncing  bool
	err      error // sticky: a failed fsync poisons the log

	// leaderWG joins the background leader goroutine: Close waits for it
	// (after releasing l.mu, which the leader's exit check needs) so the
	// log never outlives its owner with a sync loop still running.
	leaderWG sync.WaitGroup
}

// Open creates or re-opens the log in dir for appending. Existing
// segments are scanned; a torn or corrupt tail is truncated away (and
// any segments past the damage deleted) so the durable prefix that a
// reader would replay is exactly what the log continues from.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	l.gc.cond = sync.NewCond(&l.gc.mu)
	l.lastSeq = opts.StartAfter

	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	// Scan for the valid prefix — exactly what ReadDir would replay: the
	// last good segment keeps its valid bytes, anything past the first
	// damage (which a reader would never reach) is dropped.
	keep := 0
	var tailEnd int64
	var prev uint64
	for i, seg := range segs {
		recs, end, damaged, err := scanSegment(seg.path, prev)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			prev = r.Seq
			if r.Seq > l.lastSeq {
				l.lastSeq = r.Seq
			}
		}
		keep, tailEnd = i+1, end
		if damaged {
			break
		}
	}
	for i := keep; i < len(segs); i++ {
		if err := os.Remove(segs[i].path); err != nil {
			return nil, fmt.Errorf("wal: dropping segment past damage: %w", err)
		}
	}
	if keep > 0 && tailEnd < headerSize {
		// The last surviving segment does not even hold a header (crash
		// during creation); replace it rather than appending headerless.
		if err := os.Remove(segs[keep-1].path); err != nil {
			return nil, fmt.Errorf("wal: dropping headerless segment: %w", err)
		}
		keep--
		if keep > 0 {
			// Re-open the previous (clean, fully scanned) segment.
			_, end, _, err := scanSegment(segs[keep-1].path, 0)
			if err != nil {
				return nil, err
			}
			tailEnd = end
		}
	}
	if keep > 0 {
		seg := segs[keep-1]
		f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := f.Truncate(tailEnd); err != nil {
			_ = f.Close() // error path: the preceding failure is the one to surface
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			_ = f.Close() // error path: the preceding failure is the one to surface
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.segIdx, l.segSize = f, seg.idx, tailEnd
		l.appended = tailEnd
	} else {
		if err := l.newSegmentLocked(1); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// segRef is one segment file in index order.
type segRef struct {
	idx  int
	path string
}

// segments lists the directory's segment files in index order.
func segments(dir string) ([]segRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segRef
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &idx); err != nil {
			continue
		}
		segs = append(segs, segRef{idx: idx, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	return segs, nil
}

// newSegmentLocked starts segment idx and writes its header. Caller
// holds l.mu (or owns the log exclusively during Open).
func (l *Log) newSegmentLocked(idx int) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		_ = f.Close() // error path: the preceding failure is the one to surface
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // error path: the preceding failure is the one to surface
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close() // error path: the preceding failure is the one to surface
		return err
	}
	l.f, l.segIdx, l.segSize = f, idx, headerSize
	l.appended += headerSize
	return nil
}

// finishSync publishes a sync outcome to the group-commit state: on
// success the durable horizon lifts to covered, on failure the log is
// poisoned (a lost fsync means unknown bytes may be missing — no later
// commit may report success); either way waiters wake. Returns the
// sticky error.
func (l *Log) finishSync(covered int64, err error) error {
	l.gc.mu.Lock()
	if err != nil {
		l.gc.err = fmt.Errorf("wal: sync: %w", err)
	} else if covered > l.gc.syncedTo {
		l.gc.syncedTo = covered
	}
	out := l.gc.err
	l.gc.cond.Broadcast()
	l.gc.mu.Unlock()
	return out
}

// rollbackTailLocked truncates the active segment back to the last
// good record boundary (l.segSize) after a failed record write and
// repositions the file offset there. Caller holds l.mu.
func (l *Log) rollbackTailLocked() error {
	if err := l.f.Truncate(l.segSize); err != nil {
		return err
	}
	_, err := l.f.Seek(l.segSize, io.SeekStart)
	return err
}

// rotateLocked finishes the active segment (fsync, close) and starts
// the next one. Everything appended so far is durable after the fsync,
// so the group-commit horizon lifts and waiters never fsync the closed
// file. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	err := l.f.Sync()
	if serr := l.finishSync(l.appended, err); serr != nil {
		return serr
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.newSegmentLocked(l.segIdx + 1)
}

// encodeRecord appends the framed record to dst and returns it.
func encodeRecord(dst []byte, seq uint64, typ Type, ops []Op) []byte {
	body := 8 + 1 + 4 + len(ops)*24
	dst = dst[:0]
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(body))
	dst = append(dst, u32[:]...)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], seq)
	dst = append(dst, u64[:]...)
	dst = append(dst, byte(typ))
	binary.LittleEndian.PutUint32(u32[:], uint32(len(ops)))
	dst = append(dst, u32[:]...)
	for _, op := range ops {
		binary.LittleEndian.PutUint64(u64[:], op.ID)
		dst = append(dst, u64[:]...)
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(op.X))
		dst = append(dst, u64[:]...)
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(op.Y))
		dst = append(dst, u64[:]...)
	}
	crc := crc32.Checksum(dst[recHeaderSize:], castagnoli)
	binary.LittleEndian.PutUint32(dst[4:8], crc)
	return dst
}

// maxOpsPerRecord keeps every encoded record within maxRecordBody, so
// a record that was acknowledged can never be rejected as damage by
// the reader's length sanity bound.
const maxOpsPerRecord = (maxRecordBody - 13) / 24

// Append logs the ops as one record (split into several when they
// exceed the per-record size bound — the chunks stay adjacent and
// ordered) and returns once everything is durable under the configured
// policy. The last assigned sequence number is returned.
func (l *Log) Append(typ Type, ops []Op) (uint64, error) {
	l.mu.Lock()
	seq, target, err := l.appendLocked(typ, ops)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}

	if l.opts.Sync == SyncEach {
		err := l.f.Sync()
		if err == nil {
			simulateSync(l.opts.SyncDelay)
		}
		err = l.finishSync(target, err)
		l.mu.Unlock()
		return seq, err
	}
	l.mu.Unlock()
	return seq, l.waitSynced(target)
}

// AppendAsync logs the ops like Append but does not wait for the bytes
// to reach disk under SyncGroup: it returns as soon as the record is in
// the OS buffer, after nudging a background group-commit leader that
// advances the durable horizon at the device's pace. The caller's
// durability window is therefore one group-sync cycle. Under SyncEach
// it is identical to Append — every record is synced before the call
// returns — so per-record-durability configurations keep their
// acked-implies-durable guarantee.
func (l *Log) AppendAsync(typ Type, ops []Op) (uint64, error) {
	l.mu.Lock()
	seq, target, err := l.appendLocked(typ, ops)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}

	if l.opts.Sync == SyncEach {
		err := l.f.Sync()
		if err == nil {
			simulateSync(l.opts.SyncDelay)
		}
		err = l.finishSync(target, err)
		l.mu.Unlock()
		return seq, err
	}
	l.mu.Unlock()
	l.kickSync()
	// Surface a poisoned log (earlier sync failure) rather than silently
	// accepting writes that can never become durable.
	g := &l.gc
	g.mu.Lock()
	err = g.err
	g.mu.Unlock()
	return seq, err
}

// appendLocked encodes and writes the ops, splitting into adjacent
// records as needed. Caller holds l.mu in all cases; on success the
// last assigned sequence number and the post-append logical extent are
// returned.
func (l *Log) appendLocked(typ Type, ops []Op) (uint64, int64, error) {
	if l.closed {
		return 0, 0, ErrClosed
	}
	var seq uint64
	rest := ops
	for {
		chunk := rest
		if len(chunk) > maxOpsPerRecord {
			chunk = chunk[:maxOpsPerRecord]
		}
		rest = rest[len(chunk):]
		if l.opts.NextSeq != nil {
			seq = l.opts.NextSeq()
		} else {
			seq = l.lastSeq + 1
		}
		l.buf = encodeRecord(l.buf, seq, typ, chunk)
		if l.segSize > headerSize && l.segSize+int64(len(l.buf)) > l.opts.SegmentBytes {
			if err := l.rotateLocked(); err != nil {
				return 0, 0, err
			}
		}
		if _, err := l.f.Write(l.buf); err != nil {
			// The write may have landed partially, leaving torn bytes at
			// the segment tail. Roll the file back to the last good record
			// boundary so later (acked) appends don't land beyond damage
			// that recovery would truncate at — and if even the rollback
			// fails, poison the log so no later append can claim
			// durability.
			if terr := l.rollbackTailLocked(); terr != nil {
				l.finishSync(0, fmt.Errorf("append failed (%v) and tail rollback failed: %w", err, terr))
			}
			return 0, 0, fmt.Errorf("wal: append: %w", err)
		}
		l.segSize += int64(len(l.buf))
		l.appended += int64(len(l.buf))
		l.lastSeq = seq
		if len(rest) == 0 {
			break
		}
	}
	return seq, l.appended, nil
}

// waitSynced blocks until the log is durably synced through target
// logical bytes, leading a group-commit sync round if nobody else is.
func (l *Log) waitSynced(target int64) error {
	g := &l.gc
	g.mu.Lock()
	for g.err == nil && g.syncedTo < target {
		if g.syncing {
			g.cond.Wait()
			continue
		}
		g.syncing = true
		g.mu.Unlock()

		l.syncRound()
		g.mu.Lock()
		g.syncing = false
		g.cond.Broadcast()
	}
	err := g.err
	g.mu.Unlock()
	return err
}

// syncRound is one group-commit sync: wait the accumulation window,
// snapshot the appended extent, fsync, and publish the new durable
// horizon. Caller holds the gc.syncing leadership flag (not the
// mutexes).
func (l *Log) syncRound() {
	if w := l.opts.GroupWindow; w > 0 {
		time.Sleep(w) // accumulate followers
	}
	l.mu.Lock()
	f := l.f
	covered := l.appended
	closed := l.closed
	l.mu.Unlock()
	var err error
	if !closed {
		err = f.Sync()
		if err == nil {
			simulateSync(l.opts.SyncDelay)
		} else if errors.Is(err, os.ErrClosed) {
			// Rotation or Close took the file between our snapshot of
			// l.f and the fsync. Both fsync everything before closing,
			// so the bytes covered here (appended before our snapshot,
			// hence in that file) are already durable. os.File.Sync on
			// a closed handle is guarded internally — it never touches
			// a reused descriptor.
			err = nil
		}
	}
	l.finishSync(covered, err)
}

// kickSync starts a background group-commit leader unless a sync is
// already in flight. The leader keeps issuing rounds until the durable
// horizon covers every appended byte, so asynchronous appends are
// synced at the device's natural cadence without any committer
// blocking.
func (l *Log) kickSync() {
	g := &l.gc
	g.mu.Lock()
	if g.err != nil || g.syncing {
		g.mu.Unlock()
		return
	}
	g.syncing = true
	g.leaderWG.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.leaderWG.Done()
		for {
			l.syncRound()
			// Exit check with both locks nested (l.mu before gc.mu, the
			// order finishSync already establishes): holding l.mu pins
			// appended, so an append that lands after our read will find
			// syncing == false when it kicks, and starts a new leader
			// rather than being stranded behind a stale exit decision.
			l.mu.Lock()
			appended := l.appended
			closed := l.closed
			g.mu.Lock()
			done := g.err != nil || closed || g.syncedTo >= appended
			if done {
				g.syncing = false
			}
			g.cond.Broadcast() // wake waiters the last round covered
			g.mu.Unlock()
			l.mu.Unlock()
			if done {
				return
			}
		}
	}()
}

// Sync forces everything appended so far to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.finishSync(l.appended, l.f.Sync())
}

// LastSeq returns the sequence of the last appended record (or the
// StartAfter floor if nothing was appended).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// TruncateThrough drops every record with sequence <= seq: the active
// segment is rotated out and every sealed segment whose records are all
// covered is deleted. Called after a checkpoint whose snapshot embeds
// seq, so the log only retains the tail the snapshot does not cover.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.segSize > headerSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	segs, err := segments(l.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, s := range segs {
		if s.idx == l.segIdx {
			continue
		}
		recs, _, _, err := scanSegment(s.path, 0)
		if err != nil {
			return err
		}
		keep := false
		for _, r := range recs {
			if r.Seq > seq {
				keep = true
				break
			}
		}
		if keep {
			continue
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		removed = true
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Close flushes, syncs and closes the log. Further appends fail. A
// failed final fsync poisons the group-commit state before waiters are
// woken, so a concurrent Append blocked on that sync reports the error
// instead of claiming durability (waitSynced's closed-file path relies
// on the close having synced successfully).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	// Publish the sync outcome BEFORE closing the handle: a racing
	// group-commit leader whose fsync hits the closed file treats
	// os.ErrClosed as covered-by-the-closer, which is only sound if a
	// failed close-time sync has already poisoned the state it checks.
	serr := l.finishSync(l.appended, l.f.Sync())
	cerr := l.f.Close()
	l.mu.Unlock()
	// Join the group-commit leader outside l.mu (its exit check takes
	// that lock): it sees l.closed on its next round and terminates, and
	// waiting here keeps the loop from touching the log after Close
	// returns.
	l.gc.leaderWG.Wait()
	if serr != nil {
		return fmt.Errorf("wal: close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// ReadStats reports what a ReadDir scan found.
type ReadStats struct {
	// Records is the number of records returned (after the sequence
	// filter).
	Records int
	// Damaged reports that the scan ended at a torn or corrupt record
	// instead of a clean end of log; everything before it was returned.
	Damaged bool
}

// ReadDir replays the log in dir and returns, in order, every record
// with sequence strictly greater than afterSeq. The scan stops at the
// first torn or corrupt record (crash semantics: the valid prefix is
// the durable log); Damaged reports whether that happened. Records must
// be strictly increasing in sequence — a regression marks the log
// damaged at that point.
func ReadDir(dir string, afterSeq uint64) ([]Record, ReadStats, error) {
	var st ReadStats
	segs, err := segments(dir)
	if err != nil {
		return nil, st, err
	}
	var out []Record
	var lastSeq uint64
	for _, seg := range segs {
		recs, _, damaged, err := scanSegment(seg.path, lastSeq)
		if err != nil {
			return nil, st, err
		}
		for _, r := range recs {
			lastSeq = r.Seq
			if r.Seq > afterSeq {
				out = append(out, r)
			}
		}
		if damaged {
			st.Damaged = true
			break
		}
	}
	st.Records = len(out)
	return out, st, nil
}

// scanSegment decodes one segment file. It returns the records whose
// sequences are strictly increasing from prevSeq, the byte offset of
// the end of the valid prefix, and whether the scan stopped at damage
// (torn tail, checksum mismatch, nonsense framing, or a sequence
// regression) rather than a clean end of file. A missing or short
// header counts as damage at offset 0.
func scanSegment(path string, prevSeq uint64) (recs []Record, validEnd int64, damaged bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerSize || [headerSize]byte(data[:headerSize]) != segMagic {
		return nil, 0, true, nil
	}
	off := int64(headerSize)
	for {
		rec, next, ok := decodeRecord(data, off)
		if !ok {
			// Either a clean end (off == len) or damage.
			return recs, off, off != int64(len(data)), nil
		}
		if rec.Seq <= prevSeq {
			return recs, off, true, nil
		}
		prevSeq = rec.Seq
		recs = append(recs, rec)
		off = next
	}
}

// decodeRecord decodes the record at off; ok is false at end of data or
// on any framing/checksum failure.
func decodeRecord(data []byte, off int64) (rec Record, next int64, ok bool) {
	if off+recHeaderSize > int64(len(data)) {
		return rec, 0, false
	}
	body := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	if body < 13 || body > maxRecordBody || off+recHeaderSize+body > int64(len(data)) {
		return rec, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	payload := data[off+recHeaderSize : off+recHeaderSize+body]
	if crc32.Checksum(payload, castagnoli) != crc {
		return rec, 0, false
	}
	rec.Seq = binary.LittleEndian.Uint64(payload[0:8])
	rec.Type = Type(payload[8])
	count := int64(binary.LittleEndian.Uint32(payload[9:13]))
	if rec.Type != TypeInsert && rec.Type != TypeDelete && rec.Type != TypeBatch {
		return rec, 0, false
	}
	if 13+count*24 != body {
		return rec, 0, false
	}
	rec.Ops = make([]Op, count)
	for i := int64(0); i < count; i++ {
		p := payload[13+i*24:]
		rec.Ops[i] = Op{
			ID: binary.LittleEndian.Uint64(p[0:8]),
			X:  math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])),
			Y:  math.Float64frombits(binary.LittleEndian.Uint64(p[16:24])),
		}
	}
	return rec, off + recHeaderSize + body, true
}

// syncDir fsyncs a directory so segment creates/removes survive a
// crash. Best effort on platforms where directories cannot be synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// simulateSync models extra device sync latency (experiments only).
func simulateSync(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
