// Package exp is the experiment harness: it reproduces every table and
// figure of the paper's performance study (§5). Each experiment is a
// parameter sweep over workload and strategy configurations; the output
// is a table whose rows are strategies and whose columns are the swept
// parameter — the same series the paper plots.
//
// Workload sizes scale relative to the paper through a Scale factor so
// the suite runs on a laptop by default and at paper scale on demand
// (see cmd/burbench).
package exp

import (
	"fmt"
	"time"

	"burtree/internal/buffer"
	"burtree/internal/core"
	"burtree/internal/costmodel"
	"burtree/internal/geom"
	"burtree/internal/pagestore"
	"burtree/internal/rtree"
	"burtree/internal/stats"
	"burtree/internal/workload"
)

// Config is one experiment cell: a strategy plus workload and tuning
// parameters (paper Table 1).
type Config struct {
	Strategy core.Kind

	NumObjects int
	NumUpdates int
	NumQueries int

	PageSize   int     // default 1024 (the paper's page size)
	BufferFrac float64 // buffer pool as a fraction of database pages; default 0.01

	Epsilon           float64 // ε, default 0.003
	DistanceThreshold float64 // δ, default 0.03
	LevelThreshold    int     // λ, default unrestricted
	NoPiggyback       bool
	NoSummaryQueries  bool

	MaxDistance  float64 // max movement per update, default 0.03
	QueryMaxSize float64 // max query side, default 0.1
	Distribution workload.Distribution
	Seed         int64

	ReinsertFraction float64 // default 0.3 (the paper's R-tree uses reinsertion)
	Split            rtree.SplitAlgorithm
	BulkLoad         bool // build the initial tree with STR instead of inserts

	// LengthScale rescales all length parameters (MaxDistance, Epsilon,
	// DistanceThreshold) to preserve the paper's locality regime when
	// the object count is scaled down: leaf MBR extent grows as
	// 1/sqrt(N), so movement distances must shrink by sqrt(N/N_paper)
	// for "distance moved in leaf diameters" to match the paper's
	// setup. Zero means 1 (no scaling). The experiment registry sets it
	// from the workload scale; see EXPERIMENTS.md.
	LengthScale float64

	Validate bool // run invariant checks after the run (tests set this)
}

// WithDefaults fills unset fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.NumObjects == 0 {
		c.NumObjects = 20_000
	}
	if c.NumUpdates == 0 {
		c.NumUpdates = 20_000
	}
	if c.NumQueries == 0 {
		c.NumQueries = 1_000
	}
	if c.PageSize == 0 {
		c.PageSize = pagestore.DefaultPageSize
	}
	switch {
	case c.BufferFrac == 0:
		c.BufferFrac = 0.01
	case c.BufferFrac < 0: // explicit 0% buffer
		c.BufferFrac = 0
	}
	// Epsilon and DistanceThreshold keep core.ZeroValue sentinels so the
	// strategy layer can distinguish "default" from "literally zero".
	if c.Epsilon == 0 {
		c.Epsilon = 0.003
	}
	if c.DistanceThreshold == 0 {
		c.DistanceThreshold = 0.03
	}
	if c.LevelThreshold == 0 {
		c.LevelThreshold = core.UnrestrictedLevels
	}
	if c.MaxDistance == 0 {
		c.MaxDistance = 0.03
	}
	if c.QueryMaxSize == 0 {
		c.QueryMaxSize = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.3
	}
	if c.LengthScale == 0 {
		c.LengthScale = 1
	}
	return c
}

// scaledLengths returns the effective movement/tuning lengths after the
// locality rescaling. Negative sentinels (literal zero) pass through.
func (c Config) scaledLengths() (maxDist, epsilon, distThreshold float64) {
	maxDist = c.MaxDistance * c.LengthScale
	epsilon = c.Epsilon
	if epsilon > 0 {
		epsilon *= c.LengthScale
	}
	distThreshold = c.DistanceThreshold
	if distThreshold > 0 {
		distThreshold *= c.LengthScale
	}
	return maxDist, epsilon, distThreshold
}

// Metrics is the outcome of one run.
type Metrics struct {
	Config Config

	BuildIO  stats.Snapshot
	UpdateIO stats.Snapshot
	QueryIO  stats.Snapshot

	BuildWall  time.Duration
	UpdateWall time.Duration
	QueryWall  time.Duration

	AvgUpdateIO float64 // the paper's "Avg Disk I/O" per update
	AvgQueryIO  float64 // per query

	Outcomes core.Outcomes

	TreeHeight  int
	TreePages   int
	BufferPages int
	QueryHits   int64 // total results returned (sanity/workload density)
}

// estimateDBPages predicts the database size (tree + secondary index)
// for buffer sizing, mirroring the paper's "buffer = 1% of database
// size" setup, which is defined before the database exists.
func estimateDBPages(cfg Config) int {
	parentPtrs := cfg.Strategy == core.LBU
	fanout := rtree.MaxEntriesFor(cfg.PageSize, parentPtrs)
	leaves := float64(cfg.NumObjects) / (float64(fanout) * 0.66)
	treePages := leaves * float64(fanout) / float64(fanout-1)
	hashPages := 0.0
	if cfg.Strategy != core.TD {
		slots := (cfg.PageSize - 16) / 16
		hashPages = float64(cfg.NumObjects) / (float64(slots) * 0.7)
	}
	n := int(treePages + hashPages)
	if n < 1 {
		n = 1
	}
	return n
}

// RunOnce executes one configuration: build the index from the initial
// distribution, apply the update stream, then the query stream, and
// report per-phase I/O and timing. The buffer is flushed between phases
// so deferred writes are charged to the phase that produced them.
func RunOnce(cfg Config) (Metrics, error) {
	cfg = cfg.WithDefaults()
	var m Metrics
	m.Config = cfg

	io := &stats.IO{}
	store := pagestore.New(cfg.PageSize, io)
	bufPages := int(cfg.BufferFrac * float64(estimateDBPages(cfg)))
	pool := buffer.New(store, bufPages)
	m.BufferPages = bufPages

	maxDist, epsilon, distThreshold := cfg.scaledLengths()
	u, err := core.New(pool, core.Options{
		Strategy:          cfg.Strategy,
		Epsilon:           epsilon,
		DistanceThreshold: distThreshold,
		LevelThreshold:    cfg.LevelThreshold,
		NoPiggyback:       cfg.NoPiggyback,
		NoSummaryQueries:  cfg.NoSummaryQueries,
		ExpectedObjects:   cfg.NumObjects,
		Tree: rtree.Config{
			ReinsertFraction: cfg.ReinsertFraction,
			Split:            cfg.Split,
		},
	})
	if err != nil {
		return m, err
	}

	gen := workload.NewGenerator(workload.Spec{
		NumObjects:   cfg.NumObjects,
		Distribution: cfg.Distribution,
		MaxDistance:  maxDist,
		QueryMaxSize: cfg.QueryMaxSize,
		Seed:         cfg.Seed,
	})

	// Phase 1: build.
	start := time.Now()
	if cfg.BulkLoad {
		if err := u.Tree().BulkLoad(gen.Items(), 0.66); err != nil {
			return m, fmt.Errorf("exp: bulk load: %w", err)
		}
	} else {
		for i, p := range gen.Positions() {
			if err := u.Insert(rtree.OID(i), p); err != nil {
				return m, fmt.Errorf("exp: building index: %w", err)
			}
		}
	}
	if err := u.Tree().Flush(); err != nil {
		return m, err
	}
	m.BuildWall = time.Since(start)
	buildSnap := io.Snapshot()
	m.BuildIO = buildSnap

	// Phase 2: updates.
	outBase := u.Outcomes()
	start = time.Now()
	for i := 0; i < cfg.NumUpdates; i++ {
		up := gen.NextUpdate()
		if err := u.Update(up.OID, up.Old, up.New); err != nil {
			return m, fmt.Errorf("exp: update %d: %w", i, err)
		}
	}
	if err := u.Tree().Flush(); err != nil {
		return m, err
	}
	m.UpdateWall = time.Since(start)
	updateSnap := io.Snapshot()
	m.UpdateIO = updateSnap.Sub(buildSnap)
	if cfg.NumUpdates > 0 {
		m.AvgUpdateIO = float64(m.UpdateIO.Total()) / float64(cfg.NumUpdates)
	}
	m.Outcomes = subOutcomes(u.Outcomes(), outBase)

	// Phase 3: queries (run on the post-update index, as in the paper).
	start = time.Now()
	for i := 0; i < cfg.NumQueries; i++ {
		q := gen.NextQuery()
		count := 0
		if err := u.Search(q, func(rtree.OID, geom.Rect) bool { count++; return true }); err != nil {
			return m, fmt.Errorf("exp: query %d: %w", i, err)
		}
		m.QueryHits += int64(count)
	}
	m.QueryWall = time.Since(start)
	querySnap := io.Snapshot()
	m.QueryIO = querySnap.Sub(updateSnap)
	if cfg.NumQueries > 0 {
		m.AvgQueryIO = float64(m.QueryIO.Total()) / float64(cfg.NumQueries)
	}

	m.TreeHeight = u.Tree().Height()
	m.TreePages = store.NumPages()

	if cfg.Validate {
		if err := u.Err(); err != nil {
			return m, fmt.Errorf("exp: sticky strategy error: %w", err)
		}
		if err := u.Tree().CheckInvariants(); err != nil {
			return m, fmt.Errorf("exp: invariants after run: %w", err)
		}
	}
	return m, nil
}

func subOutcomes(a, b core.Outcomes) core.Outcomes {
	return core.Outcomes{
		InLeaf:    a.InLeaf - b.InLeaf,
		Extended:  a.Extended - b.Extended,
		Shifted:   a.Shifted - b.Shifted,
		Piggyback: a.Piggyback - b.Piggyback,
		Ascended:  a.Ascended - b.Ascended,
		TopDown:   a.TopDown - b.TopDown,
	}
}

// PredictCosts runs the §4 cost model against the live tree of a
// finished configuration; used by the cost-validation experiment.
func PredictCosts(cfg Config) (predictedTD float64, measured Metrics, err error) {
	measured, err = RunOnce(cfg)
	if err != nil {
		return 0, measured, err
	}
	// Re-build the same tree to profile it (RunOnce does not retain it).
	cfg2 := cfg.WithDefaults()
	cfg2.NumUpdates = 0
	cfg2.NumQueries = 0
	io := &stats.IO{}
	store := pagestore.New(cfg2.PageSize, io)
	pool := buffer.New(store, 0)
	u, err := core.New(pool, core.Options{Strategy: core.TD, ExpectedObjects: cfg2.NumObjects,
		Tree: rtree.Config{ReinsertFraction: cfg2.ReinsertFraction}})
	if err != nil {
		return 0, measured, err
	}
	gen := workload.NewGenerator(workload.Spec{
		NumObjects: cfg2.NumObjects, Distribution: cfg2.Distribution, Seed: cfg2.Seed,
	})
	for i, p := range gen.Positions() {
		if err := u.Insert(rtree.OID(i), p); err != nil {
			return 0, measured, err
		}
	}
	prof, err := costmodel.ProfileTree(u.Tree())
	if err != nil {
		return 0, measured, err
	}
	return costmodel.TopDownUpdateCost(prof), measured, nil
}
