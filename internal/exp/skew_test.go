package exp

import (
	"testing"
	"time"
)

// A tiny skew cell must complete in both arms; the adaptive arm under a
// heavily skewed stream must actually change boundaries (router epoch
// advances past the static arm's zero) and report the migration cost it
// paid to do so.
func TestRunSkewSweepSmoke(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		r, err := RunSkewSweep(SkewSweepConfig{
			Theta:        1.1,
			Adaptive:     adaptive,
			Shards:       4,
			Workers:      8,
			NumObjects:   2000,
			Updates:      2000,
			BatchSize:    4,
			Hotspots:     2,
			HotspotDrift: 0.1,
			MaxDist:      0.03,
			IOLatency:    20 * time.Microsecond,
			BufferPages:  16,
			Seed:         1,
		})
		if err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
		if r.UpdatesPerSec <= 0 || r.Elapsed <= 0 || r.Updates <= 0 {
			t.Fatalf("adaptive=%v: degenerate result %+v", adaptive, r)
		}
		if adaptive {
			if r.RouterEpoch == 0 {
				t.Fatalf("adaptive arm never rebalanced: %+v", r)
			}
			if r.RebalanceDur <= 0 {
				t.Fatalf("adaptive arm reports no rebalance cost: %+v", r)
			}
		} else if r.RouterEpoch != 0 {
			t.Fatalf("static arm changed boundaries: %+v", r)
		}
	}

	// The θ=1.1 weighted-vs-opcount round: both adaptive signal arms
	// must complete and rebalance under a heavily skewed stream — the
	// op-count arm exercising the pre-cost comparison path, the weighted
	// arm exercising cost-weighted shares plus hot-object phase batching.
	for _, arm := range []struct {
		name     string
		opCounts bool
		window   time.Duration
	}{
		{name: "op-count", opCounts: true},
		{name: "weighted+phase", window: 100 * time.Microsecond},
	} {
		r, err := RunSkewSweep(SkewSweepConfig{
			Theta:        1.1,
			Adaptive:     true,
			OpCounts:     arm.opCounts,
			PhaseWindow:  arm.window,
			Shards:       4,
			Workers:      8,
			NumObjects:   2000,
			Updates:      2000,
			BatchSize:    4,
			Hotspots:     2,
			HotspotDrift: 0.1,
			MaxDist:      0.03,
			IOLatency:    20 * time.Microsecond,
			BufferPages:  16,
			Seed:         1,
		})
		if err != nil {
			t.Fatalf("%s arm: %v", arm.name, err)
		}
		if r.UpdatesPerSec <= 0 || r.Updates <= 0 {
			t.Fatalf("%s arm: degenerate result %+v", arm.name, r)
		}
		if r.RouterEpoch == 0 {
			t.Fatalf("%s arm never rebalanced: %+v", arm.name, r)
		}
	}
}
