package exp

import (
	"strings"
	"testing"

	"burtree/internal/core"
	"burtree/internal/workload"
)

func tinyConfig() Config {
	return Config{
		NumObjects: 3000,
		NumUpdates: 3000,
		NumQueries: 150,
		Seed:       7,
		Validate:   true,
	}
}

func TestRunOnceAllStrategies(t *testing.T) {
	for _, k := range []core.Kind{core.TD, core.LBU, core.GBU, core.Naive} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := tinyConfig()
			cfg.Strategy = k
			m, err := RunOnce(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.AvgUpdateIO <= 0 {
				t.Fatalf("AvgUpdateIO = %v", m.AvgUpdateIO)
			}
			if m.AvgQueryIO <= 0 {
				t.Fatalf("AvgQueryIO = %v", m.AvgQueryIO)
			}
			if m.TreeHeight < 2 {
				t.Fatalf("height = %d", m.TreeHeight)
			}
			if m.Outcomes.Total() != int64(cfg.NumUpdates) {
				t.Fatalf("outcomes %d != updates %d (%+v)", m.Outcomes.Total(), cfg.NumUpdates, m.Outcomes)
			}
			if m.QueryHits == 0 {
				t.Fatal("queries returned nothing")
			}
		})
	}
}

func TestRunOnceBulkLoadEquivalentWorkload(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = core.GBU
	cfg.BulkLoad = true
	m, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgUpdateIO <= 0 || m.TreeHeight < 2 {
		t.Fatalf("bulk-load run: %+v", m)
	}
}

func TestRunOnceDistributions(t *testing.T) {
	for _, d := range []workload.Distribution{workload.Uniform, workload.Gaussian, workload.Skewed} {
		cfg := tinyConfig()
		cfg.Strategy = core.GBU
		cfg.Distribution = d
		if _, err := RunOnce(cfg); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
	}
}

func TestGBUBeatsTDInHarness(t *testing.T) {
	// The paper's headline through the harness path, with the default 1%
	// buffer: GBU updates must be clearly cheaper than TD's.
	cfgTD := tinyConfig()
	cfgTD.Strategy = core.TD
	td, err := RunOnce(cfgTD)
	if err != nil {
		t.Fatal(err)
	}
	cfgG := tinyConfig()
	cfgG.Strategy = core.GBU
	gbu, err := RunOnce(cfgG)
	if err != nil {
		t.Fatal(err)
	}
	if gbu.AvgUpdateIO >= td.AvgUpdateIO {
		t.Fatalf("GBU update I/O %.2f >= TD %.2f", gbu.AvgUpdateIO, td.AvgUpdateIO)
	}
	// Query performance on par or better (paper: GBU queries with the
	// summary structure are at least as good for small ε).
	if gbu.AvgQueryIO > td.AvgQueryIO*1.25 {
		t.Fatalf("GBU query I/O %.2f far above TD %.2f", gbu.AvgQueryIO, td.AvgQueryIO)
	}
}

func TestBufferReducesIO(t *testing.T) {
	noBuf := tinyConfig()
	noBuf.Strategy = core.TD
	noBuf.BufferFrac = -1
	a, err := RunOnce(noBuf)
	if err != nil {
		t.Fatal(err)
	}
	big := tinyConfig()
	big.Strategy = core.TD
	big.BufferFrac = 0.10
	b, err := RunOnce(big)
	if err != nil {
		t.Fatal(err)
	}
	if b.AvgUpdateIO >= a.AvgUpdateIO {
		t.Fatalf("10%% buffer update I/O %.2f >= 0%% buffer %.2f", b.AvgUpdateIO, a.AvgUpdateIO)
	}
	if b.AvgQueryIO >= a.AvgQueryIO {
		t.Fatalf("10%% buffer query I/O %.2f >= 0%% buffer %.2f", b.AvgQueryIO, a.AvgQueryIO)
	}
}

func TestNaiveMostlyTopDownWhenMovesExceedLeaves(t *testing.T) {
	// §3.1: the paper saw 82% of naive updates remain top-down at 1M
	// objects, where leaf MBRs are tiny relative to the movement
	// distance. At test scale the leaves are larger, so the same regime
	// is reached by moving objects farther.
	cfg := tinyConfig()
	cfg.Strategy = core.Naive
	cfg.MaxDistance = 0.15
	m, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	share := float64(m.Outcomes.TopDown) / float64(m.Outcomes.Total())
	if share < 0.5 {
		t.Fatalf("naive top-down share = %.2f; expected the majority path", share)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", XLabel: "a", YLabel: "b", Columns: []string{"1", "2"}}
	tab.AddRow("TD", []float64{1.5, 2.25})
	tab.AddRow("GBU", []float64{0.5, 100000})
	out := tab.Render()
	for _, want := range []string{"TD", "GBU", "1.500", "2.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "series,1,2\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "TD,1.5,2.25") {
		t.Fatalf("csv row wrong: %q", csv)
	}
	if _, ok := tab.Row("TD"); !ok {
		t.Fatal("Row lookup failed")
	}
	if _, ok := tab.Row("nope"); ok {
		t.Fatal("Row lookup of missing label succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity violation not caught")
		}
	}()
	tab.AddRow("bad", []float64{1})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g", "fig5h",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g", "fig6h",
		"fig7a", "fig7b", "fig8", "mixed", "shard", "wal", "memtable", "batch", "naive", "skew", "table-summary-size", "cost",
		"ablation-piggyback", "ablation-summary-queries", "ablation-splits",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
	if _, ok := Find("bogus"); ok {
		t.Fatal("bogus experiment found")
	}
	if len(SortedIDs()) != len(want) {
		t.Fatal("SortedIDs length mismatch")
	}
}
