package exp

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"burtree"
	"burtree/internal/geom"
)

// The wal experiment measures what the durability layer costs and what
// group commit buys back: batched update throughput on a ConcurrentIndex
// under each durability mode, swept against the number of concurrent
// committer goroutines. With per-batch fsync every committer pays a full
// device sync, so throughput is pinned near batch_size/sync_latency no
// matter how many committers there are; with group commit concurrent
// committers piggyback on one shared fsync, so throughput scales with
// the committer count until the log's append bandwidth binds. A
// simulated device-sync latency (Durability.SyncDelay) stands in for a
// real disk's sync cost, exactly as the page store's simulated access
// latency does in the paper's throughput study — otherwise the host's
// page cache would make every policy look free.

// walWorkerCounts is the column sweep (concurrent committers).
var walWorkerCounts = []int{1, 4, 16}

// WalSweepConfig drives one cell of the wal experiment.
type WalSweepConfig struct {
	Mode        burtree.DurabilityMode
	GroupWindow time.Duration
	Workers     int
	NumObjects  int
	Updates     int // total updates across all workers
	BatchSize   int // updates per UpdateBatch call
	SyncDelay   time.Duration
	MaxDist     float64
	Seed        int64
	// Memtable fronts the index with the in-memory delta tier: batches
	// are acknowledged after the log append alone and merged down to
	// the tree in the background (the memtable experiment).
	Memtable burtree.Memtable
}

// WalSweepResult is one cell's outcome.
type WalSweepResult struct {
	UpdatesPerSec float64
	Elapsed       time.Duration
	Updates       int
	// AckMean is the mean latency of one UpdateBatch call — the time
	// from submission to durable acknowledgement, including any group
	// commit wait and (without a memtable) the tree work.
	AckMean time.Duration
}

// RunWalSweep builds a GBU ConcurrentIndex with the configured
// durability (logging to a throwaway directory), bulk-loads the uniform
// workload, then drives batched updates from the worker pool and
// reports durable update throughput.
func RunWalSweep(cfg WalSweepConfig) (WalSweepResult, error) {
	var res WalSweepResult
	if cfg.Workers < 1 || cfg.BatchSize < 1 {
		return res, fmt.Errorf("exp: wal sweep needs Workers and BatchSize >= 1")
	}
	opts := burtree.Options{
		Strategy:        burtree.GeneralizedBottomUp,
		ExpectedObjects: cfg.NumObjects,
		Memtable:        cfg.Memtable,
	}
	if cfg.Mode != burtree.DurabilityOff {
		dir, err := os.MkdirTemp("", "burtree-wal-exp-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		opts.Durability = burtree.Durability{
			Mode:        cfg.Mode,
			Dir:         dir,
			GroupWindow: cfg.GroupWindow,
			SyncDelay:   cfg.SyncDelay,
		}
	}
	idx, err := burtree.OpenConcurrent(opts)
	if err != nil {
		return res, err
	}
	defer idx.Close()

	gen := rand.New(rand.NewSource(cfg.Seed))
	ids := make([]uint64, cfg.NumObjects)
	positions := make([]geom.Point, cfg.NumObjects)
	pts := make([]burtree.Point, cfg.NumObjects)
	for i := range ids {
		ids[i] = uint64(i)
		positions[i] = geom.Point{X: gen.Float64(), Y: gen.Float64()}
		pts[i] = burtree.Point(positions[i])
	}
	if err := idx.BulkInsert(ids, pts, burtree.PackSTR); err != nil {
		return res, err
	}

	workers := cfg.Workers
	if workers > cfg.NumObjects {
		workers = cfg.NumObjects
	}
	perWorker := cfg.Updates / workers
	if perWorker < cfg.BatchSize {
		perWorker = cfg.BatchSize
	}
	var mu sync.Mutex
	total := 0
	var ackNanos, ackCalls atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			// Disjoint id ranges per worker: per-object ordering is
			// externally serialized, as the API requires.
			lo := w * (cfg.NumObjects / workers)
			span := cfg.NumObjects / workers
			done := 0
			for done < perWorker {
				batch := make([]burtree.Change, 0, cfg.BatchSize)
				for j := 0; j < cfg.BatchSize; j++ {
					oid := lo + rng.Intn(span)
					old := positions[oid]
					np := geom.Point{
						X: old.X + (rng.Float64()*2-1)*cfg.MaxDist,
						Y: old.Y + (rng.Float64()*2-1)*cfg.MaxDist,
					}
					positions[oid] = np
					batch = append(batch, burtree.Change{ID: uint64(oid), To: burtree.Point(np)})
				}
				t0 := time.Now()
				br, err := idx.UpdateBatch(batch)
				if err != nil {
					errCh <- err
					return
				}
				ackNanos.Add(time.Since(t0).Nanoseconds())
				ackCalls.Add(1)
				done += br.Applied
				mu.Lock()
				total += br.Applied
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	select {
	case err := <-errCh:
		return res, err
	default:
	}
	if err := idx.CheckInvariants(); err != nil {
		return res, fmt.Errorf("exp: wal sweep invariants: %w", err)
	}
	res.Updates = total
	res.UpdatesPerSec = float64(total) / res.Elapsed.Seconds()
	if calls := ackCalls.Load(); calls > 0 {
		res.AckMean = time.Duration(ackNanos.Load() / calls)
	}
	return res, nil
}

// walRows is the row sweep: the durability modes compared.
var walRows = []struct {
	label  string
	mode   burtree.DurabilityMode
	window time.Duration
}{
	{"off (volatile)", burtree.DurabilityOff, 0},
	{"per-batch fsync", burtree.DurabilityBatch, 0},
	{"group commit w=0", burtree.DurabilityGroup, 0},
	{"group commit w=200us", burtree.DurabilityGroup, 200 * time.Microsecond},
}

// bundleWal runs the durability-mode × goroutine-count sweep and adds
// the group-commit-over-per-batch speedup per column.
func bundleWal(s Scale, seed int64) (map[string]*Table, error) {
	cols := make([]string, len(walWorkerCounts))
	for i, w := range walWorkerCounts {
		cols[i] = fmt.Sprintf("g=%d", w)
	}
	t := &Table{
		ID:      "wal",
		Title:   "Durable updates: throughput (updates/s) vs commit policy x goroutines",
		XLabel:  "committer goroutines",
		YLabel:  "updates/s (batched updates, simulated 2ms device sync)",
		Columns: cols,
	}
	rows := make(map[string][]float64, len(walRows))
	for _, r := range walRows {
		var row []float64
		for _, workers := range walWorkerCounts {
			res, err := RunWalSweep(WalSweepConfig{
				Mode:        r.mode,
				GroupWindow: r.window,
				Workers:     workers,
				NumObjects:  s.Objects,
				Updates:     s.Ops * 2,
				BatchSize:   16,
				SyncDelay:   2 * time.Millisecond,
				MaxDist:     0.03 * lengthScale(s),
				Seed:        seed,
			})
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", r.label, workers, err)
			}
			row = append(row, res.UpdatesPerSec)
		}
		rows[r.label] = row
		t.AddRow(r.label, row)
	}
	if base, group := rows["per-batch fsync"], rows["group commit w=0"]; len(base) == len(group) {
		speedup := make([]float64, len(base))
		for i := range base {
			if base[i] > 0 {
				speedup[i] = group[i] / base[i]
			}
		}
		t.AddRow("group/per-batch speedup", speedup)
	}
	return map[string]*Table{"wal": t}, nil
}
