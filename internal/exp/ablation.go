package exp

import (
	"burtree/internal/core"
	"burtree/internal/rtree"
)

// Ablation experiments: the paper motivates several GBU design choices
// (piggybacked shifts, summary-assisted queries, directional extension);
// these bundles isolate each choice by toggling it off, and compare the
// split algorithms under the TD baseline. They go beyond the paper's own
// sweeps and are referenced from DESIGN.md.

func bundlePiggyback(s Scale, seed int64) (map[string]*Table, error) {
	t := &Table{
		ID:     "ablation-piggyback",
		Title:  "Ablation: GBU with and without piggybacked sibling shifts",
		XLabel: "metric", YLabel: "value",
		Columns: []string{"update I/O", "query I/O", "piggybacked"},
	}
	for _, off := range []bool{false, true} {
		cfg := withStrategy(baseConfig(s, seed), core.GBU)
		cfg.NoPiggyback = off
		m, err := RunOnce(cfg)
		if err != nil {
			return nil, err
		}
		label := "piggyback on"
		if off {
			label = "piggyback off"
		}
		t.AddRow(label, []float64{m.AvgUpdateIO, m.AvgQueryIO, float64(m.Outcomes.Piggyback)})
	}
	return map[string]*Table{"ablation-piggyback": t}, nil
}

func bundleSummaryQueries(s Scale, seed int64) (map[string]*Table, error) {
	t := &Table{
		ID:     "ablation-summary-queries",
		Title:  "Ablation: GBU queries with and without the summary structure",
		XLabel: "metric", YLabel: "value",
		Columns: []string{"update I/O", "query I/O"},
	}
	for _, off := range []bool{false, true} {
		cfg := withStrategy(baseConfig(s, seed), core.GBU)
		cfg.NoSummaryQueries = off
		m, err := RunOnce(cfg)
		if err != nil {
			return nil, err
		}
		label := "summary queries on"
		if off {
			label = "summary queries off"
		}
		t.AddRow(label, []float64{m.AvgUpdateIO, m.AvgQueryIO})
	}
	return map[string]*Table{"ablation-summary-queries": t}, nil
}

func bundleSplits(s Scale, seed int64) (map[string]*Table, error) {
	t := &Table{
		ID:     "ablation-splits",
		Title:  "Ablation: node split algorithms under the TD baseline",
		XLabel: "metric", YLabel: "value",
		Columns: []string{"update I/O", "query I/O", "splits"},
	}
	for _, alg := range []rtree.SplitAlgorithm{rtree.SplitQuadratic, rtree.SplitLinear, rtree.SplitRStar} {
		cfg := withStrategy(baseConfig(s, seed), core.TD)
		cfg.Split = alg
		m, err := RunOnce(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(alg.String(), []float64{m.AvgUpdateIO, m.AvgQueryIO, float64(m.UpdateIO.Splits + m.BuildIO.Splits)})
	}
	return map[string]*Table{"ablation-splits": t}, nil
}

// ablationRegistry lists the extra experiments beyond the paper's own.
func ablationRegistry() []Experiment {
	return []Experiment{
		{"ablation-piggyback", "(extension)", "Ablation: piggybacked sibling shifts", run("ablation-piggyback")},
		{"ablation-summary-queries", "(extension)", "Ablation: summary-assisted queries", run("ablation-summary-queries")},
		{"ablation-splits", "(extension)", "Ablation: split algorithms (TD)", run("ablation-splits")},
	}
}
